package splitbft

import (
	"errors"

	"github.com/splitbft/splitbft/internal/client"
	"github.com/splitbft/splitbft/internal/core"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/transport"
)

// Errors surfaced by Client operations.
var (
	// ErrTimeout is returned when an invocation or attestation exceeds its
	// deadline.
	ErrTimeout = client.ErrTimeout
	// ErrClosed is returned by operations on a closed client.
	ErrClosed = client.ErrClosed
	// ErrNotAttested is returned by confidential invocations before Attest.
	ErrNotAttested = client.ErrNotAttested
)

// Client submits operations to a SplitBFT deployment and waits for a
// reply quorum of matching replies — f+1 under the default trusted
// commit rule, 2f+1 under WithCommitRule("full"). In confidential
// deployments, Attest must complete
// before Invoke: the handshake verifies an attestation quote from every
// Execution enclave and provisions the end-to-end session key (paper
// §4.1).
//
// A Client is safe for concurrent Invokes.
type Client struct {
	id    uint32
	inner *client.Client
	conn  transport.Conn
}

// NewClient builds a client for a deployment. Reach TCP deployments with
// WithTransportTCP + WithKeySeed (both matching the replicas'); reach
// in-process clusters through Cluster.NewClient. The client is connected
// and ready on return.
func NewClient(id uint32, opts ...Option) (*Client, error) {
	o := buildOptions(opts)
	if o.simnet == nil && len(o.tcpAddrs) == 0 {
		return nil, errors.New("splitbft: NewClient requires WithTransportTCP (or construction through Cluster.NewClient)")
	}
	if len(o.tcpAddrs) > 0 && len(o.keySeed) == 0 {
		return nil, errors.New("splitbft: the TCP transport requires WithKeySeed — it derives the deployment's MAC and enclave keys")
	}
	if err := o.resolveGroup(); err != nil {
		return nil, err
	}
	reg := o.registry
	if reg == nil {
		reg = crypto.NewRegistry()
		if len(o.keySeed) > 0 {
			if err := core.RegisterDeterministicKeys(reg, o.keySeed, o.n); err != nil {
				return nil, err
			}
		}
	}
	consensus, err := o.consensusModeVal()
	if err != nil {
		return nil, err
	}
	replyQuorum, err := o.replyQuorum()
	if err != nil {
		return nil, err
	}
	linearizable, err := o.readLinearizable()
	if err != nil {
		return nil, err
	}
	inner, err := client.New(client.Config{
		ID: id, N: o.n, F: o.f,
		MACs:               crypto.NewMACStore(o.secret(), crypto.Identity{ReplicaID: id, Role: crypto.RoleClient}),
		AuthReceivers:      core.RequestAuthReceivers(o.n),
		ReplyRole:          crypto.RoleExecution,
		Consensus:          consensus,
		ReplyQuorum:        replyQuorum,
		Confidential:       o.confidential,
		Registry:           reg,
		ExecMeasurement:    core.ExecutionMeasurement(),
		RetransmitInterval: o.retransmit,
		Timeout:            o.invokeTimeout,
		ReadLeases:         o.readLeases,
		ReadLinearizable:   linearizable,
	})
	if err != nil {
		return nil, err
	}
	c := &Client{id: id, inner: inner}
	if o.simnet != nil {
		conn, err := o.simnet.Join(transport.ClientEndpoint(id), inner.Handler())
		if err != nil {
			return nil, err
		}
		c.conn = conn
	} else {
		addrs := make(map[uint32]string, o.n)
		for i, a := range o.tcpAddrs {
			addrs[uint32(i)] = a
		}
		c.conn = transport.DialTCP(transport.ClientEndpoint(id), addrs, inner.Handler())
	}
	inner.Start(c.conn)
	return c, nil
}

// ID returns the client's identifier.
func (c *Client) ID() uint32 { return c.id }

// Attest runs the attestation and key-provisioning handshake with every
// replica's Execution enclave. It must complete before confidential
// invocations; on non-confidential deployments it is a no-op.
func (c *Client) Attest() error { return c.inner.Attest() }

// Invoke submits one operation and blocks until the configured reply
// quorum of matching replies (see WithCommitRule) arrives or the invoke
// timeout expires. In confidential deployments the
// payload is encrypted end to end and the result decrypted before return.
func (c *Client) Invoke(op []byte) ([]byte, error) { return c.inner.Invoke(op) }

// InvokeRead submits a read-only operation. On deployments built with
// WithReadLeases it tries the lease-anchored local read fast path first —
// one request to one replica, one attested reply — and transparently falls
// back to the ordered path whenever the fast path refuses, so the result
// is never stale (consistency per WithReadConsistency). Without read
// leases it is identical to Invoke. The operation must be side-effect-free;
// applications enforce this and refuse mutating ops on the fast path.
func (c *Client) InvokeRead(op []byte) ([]byte, error) { return c.inner.InvokeRead(op) }

// Put stores value under key in the key-value store application.
func (c *Client) Put(key string, value []byte) ([]byte, error) {
	return c.inner.Invoke(EncodePut(key, value))
}

// Get reads key from the key-value store application, using the local
// read fast path on deployments built with WithReadLeases.
func (c *Client) Get(key string) ([]byte, error) {
	return c.inner.InvokeRead(EncodeGet(key))
}

// Delete removes key from the key-value store application.
func (c *Client) Delete(key string) ([]byte, error) {
	return c.inner.Invoke(EncodeDelete(key))
}

// Close fails pending invocations and detaches the transport.
func (c *Client) Close() {
	c.inner.Close()
	if c.conn != nil {
		_ = c.conn.Close()
	}
}
