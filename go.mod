module github.com/splitbft/splitbft

go 1.22
