// Fault injection: demonstrates SplitBFT's headline resilience properties
// in two scenarios, each on a fresh four-replica cluster:
//
//  1. One faulty enclave of each compartment type on three different
//     replicas (Figure 1 of the paper) — three faults, more than f=1
//     replicas' worth — with the service staying safe and live.
//  2. A primary failure: the primary is partitioned away, the remaining
//     replicas run the view-change subprotocol, and committed state
//     survives into the new view.
//
// Note that combining both scenarios at once (three crashed enclaves AND a
// partitioned primary) exceeds SplitBFT's liveness bound — liveness, like
// classical PBFT's, tolerates at most f faulty replicas; only safety
// extends beyond it. Run with:
//
//	go run ./examples/faultinjection
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/splitbft/splitbft"
)

const n = 4

// harness bundles one running deployment.
type harness struct {
	cluster *splitbft.Cluster
	client  *splitbft.Client
}

func newHarness(seed int64) *harness {
	cluster, err := splitbft.NewCluster(n,
		splitbft.WithBatchSize(1),
		splitbft.WithRequestTimeout(300*time.Millisecond), // fast failure detection
		splitbft.WithNetworkSeed(seed),
	)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cluster.NewClient(100, splitbft.WithInvokeTimeout(15*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	return &harness{cluster: cluster, client: cl}
}

func (h *harness) close() { h.cluster.Close() }

// kvs returns replica i's key-value store state.
func (h *harness) kvs(i int) *splitbft.KVStore {
	return h.cluster.Node(i).App().(*splitbft.KVStore)
}

func (h *harness) mustPut(key, val string) {
	if _, err := h.client.Put(key, []byte(val)); err != nil {
		log.Fatalf("PUT %s: %v", key, err)
	}
	fmt.Printf("  PUT %s=%s ok\n", key, val)
}

func (h *harness) mustGet(key, want string) {
	res, err := h.client.Get(key)
	if err != nil {
		log.Fatalf("GET %s: %v", key, err)
	}
	if string(res) != want {
		log.Fatalf("GET %s = %q, want %q — SAFETY VIOLATION", key, res, want)
	}
	fmt.Printf("  GET %s=%s ok\n", key, res)
}

func scenarioEnclaveFaults() {
	fmt.Println("scenario 1 — one faulty enclave per compartment type (Figure 1)")
	h := newHarness(1)
	defer h.close()

	h.mustPut("account", "100")
	fmt.Println("  crashing Preparation@replica1, Confirmation@replica2, Execution@replica3")
	h.cluster.Node(1).CrashEnclave(splitbft.RolePreparation)
	h.cluster.Node(2).CrashEnclave(splitbft.RoleConfirmation)
	h.cluster.Node(3).CrashEnclave(splitbft.RoleExecution)

	h.mustPut("account", "200")
	h.mustGet("account", "200")
	fmt.Println("  3 enclave faults across 3 replicas tolerated — classical BFT tolerates only f=1 faulty replica")

	// Replicas with healthy Execution enclaves must agree.
	time.Sleep(200 * time.Millisecond)
	d := h.kvs(0).Digest()
	if h.kvs(1).Digest() != d || h.kvs(2).Digest() != d {
		log.Fatal("healthy replicas diverged — SAFETY VIOLATION")
	}
	fmt.Println("  replicas with healthy Execution enclaves hold identical state ✓")
}

func scenarioViewChange() {
	fmt.Println("\nscenario 2 — primary failure and view change")
	h := newHarness(2)
	defer h.close()

	h.mustPut("account", "100")
	fmt.Println("  partitioning replica 0 (the view-0 primary) away")
	h.cluster.Partition(0)

	start := time.Now()
	h.mustPut("account", "300")
	fmt.Printf("  recovered via view change in %v\n", time.Since(start).Round(time.Millisecond))
	h.mustGet("account", "300")

	time.Sleep(200 * time.Millisecond)
	if h.kvs(1).Digest() != h.kvs(2).Digest() || h.kvs(2).Digest() != h.kvs(3).Digest() {
		log.Fatal("replicas diverged across view change — SAFETY VIOLATION")
	}
	fmt.Println("  committed state survived the view change on all connected replicas ✓")
}

func main() {
	scenarioEnclaveFaults()
	scenarioViewChange()
	fmt.Println("\nall fault-injection scenarios passed")
}
