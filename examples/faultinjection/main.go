// Fault injection: demonstrates SplitBFT's headline resilience properties
// in two scenarios, each on a fresh four-replica cluster:
//
//  1. One faulty enclave of each compartment type on three different
//     replicas (Figure 1 of the paper) — three faults, more than f=1
//     replicas' worth — with the service staying safe and live.
//  2. A primary failure: the primary is partitioned away, the remaining
//     replicas run the view-change subprotocol, and committed state
//     survives into the new view.
//
// Note that combining both scenarios at once (three crashed enclaves AND a
// partitioned primary) exceeds SplitBFT's liveness bound — liveness, like
// classical PBFT's, tolerates at most f faulty replicas; only safety
// extends beyond it. Run with:
//
//	go run ./examples/faultinjection
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/client"
	"github.com/splitbft/splitbft/internal/core"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/transport"
)

const (
	n      = 4
	f      = 1
	secret = "faultinjection-secret"
)

// cluster bundles one running deployment.
type cluster struct {
	net      *transport.SimNet
	kvs      []*app.KVS
	replicas []*core.Replica
	client   *client.Client
}

func newCluster(seed int64) *cluster {
	c := &cluster{net: transport.NewSimNet(seed)}
	registry := crypto.NewRegistry()
	for i := 0; i < n; i++ {
		kvs := app.NewKVS()
		c.kvs = append(c.kvs, kvs)
		r, err := core.NewReplica(core.Config{
			N: n, F: f, ID: uint32(i),
			Registry:       registry,
			MACSecret:      []byte(secret),
			App:            kvs,
			BatchSize:      1,
			RequestTimeout: 300 * time.Millisecond,
		})
		if err != nil {
			log.Fatalf("replica %d: %v", i, err)
		}
		c.replicas = append(c.replicas, r)
	}
	for i, r := range c.replicas {
		conn, err := c.net.Join(transport.ReplicaEndpoint(uint32(i)), r.Handler())
		if err != nil {
			log.Fatal(err)
		}
		r.Start(conn)
	}
	cl, err := client.New(client.Config{
		ID: 100, N: n, F: f,
		MACs:          crypto.NewMACStore([]byte(secret), crypto.Identity{ReplicaID: 100, Role: crypto.RoleClient}),
		AuthReceivers: core.RequestAuthReceivers(n),
		ReplyRole:     crypto.RoleExecution,
		Timeout:       15 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	conn, err := c.net.Join(transport.ClientEndpoint(100), cl.Handler())
	if err != nil {
		log.Fatal(err)
	}
	cl.Start(conn)
	c.client = cl
	return c
}

func (c *cluster) close() {
	c.client.Close()
	for _, r := range c.replicas {
		r.Stop()
	}
	c.net.Close()
}

func (c *cluster) mustPut(key, val string) {
	if _, err := c.client.Invoke(app.EncodePut(key, []byte(val))); err != nil {
		log.Fatalf("PUT %s: %v", key, err)
	}
	fmt.Printf("  PUT %s=%s ok\n", key, val)
}

func (c *cluster) mustGet(key, want string) {
	res, err := c.client.Invoke(app.EncodeGet(key))
	if err != nil {
		log.Fatalf("GET %s: %v", key, err)
	}
	if string(res) != want {
		log.Fatalf("GET %s = %q, want %q — SAFETY VIOLATION", key, res, want)
	}
	fmt.Printf("  GET %s=%s ok\n", key, res)
}

func scenarioEnclaveFaults() {
	fmt.Println("scenario 1 — one faulty enclave per compartment type (Figure 1)")
	c := newCluster(1)
	defer c.close()

	c.mustPut("account", "100")
	fmt.Println("  crashing Preparation@replica1, Confirmation@replica2, Execution@replica3")
	c.replicas[1].CrashEnclave(crypto.RolePreparation)
	c.replicas[2].CrashEnclave(crypto.RoleConfirmation)
	c.replicas[3].CrashEnclave(crypto.RoleExecution)

	c.mustPut("account", "200")
	c.mustGet("account", "200")
	fmt.Println("  3 enclave faults across 3 replicas tolerated — classical BFT tolerates only f=1 faulty replica")

	// Replicas with healthy Execution enclaves must agree.
	time.Sleep(200 * time.Millisecond)
	d := c.kvs[0].Digest()
	if c.kvs[1].Digest() != d || c.kvs[2].Digest() != d {
		log.Fatal("healthy replicas diverged — SAFETY VIOLATION")
	}
	fmt.Println("  replicas with healthy Execution enclaves hold identical state ✓")
}

func scenarioViewChange() {
	fmt.Println("\nscenario 2 — primary failure and view change")
	c := newCluster(2)
	defer c.close()

	c.mustPut("account", "100")
	fmt.Println("  partitioning replica 0 (the view-0 primary) away")
	c.net.Isolate(transport.ReplicaEndpoint(0))

	start := time.Now()
	c.mustPut("account", "300")
	fmt.Printf("  recovered via view change in %v\n", time.Since(start).Round(time.Millisecond))
	c.mustGet("account", "300")

	time.Sleep(200 * time.Millisecond)
	if c.kvs[1].Digest() != c.kvs[2].Digest() || c.kvs[2].Digest() != c.kvs[3].Digest() {
		log.Fatal("replicas diverged across view change — SAFETY VIOLATION")
	}
	fmt.Println("  committed state survived the view change on all connected replicas ✓")
}

func main() {
	scenarioEnclaveFaults()
	scenarioViewChange()
	fmt.Println("\nall fault-injection scenarios passed")
}
