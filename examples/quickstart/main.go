// Quickstart: a four-replica SplitBFT cluster with a confidential
// key-value store, all in one process.
//
//	go run ./examples/quickstart
//
// It starts the replicas over the in-process simulated network, attests a
// client against the Execution enclaves, provisions a session key,
// performs encrypted PUT/GET/DELETE round trips, then crash-restarts one
// replica to demonstrate sealed durability — using only the public
// splitbft package.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"github.com/splitbft/splitbft"
)

func main() {
	// 1. Launch four replicas. Each hosts three enclaves (Preparation,
	//    Confirmation, Execution) plus an untrusted broker; the cluster
	//    wires them to a shared in-process network and key registry.
	//    WithPersistence gives every replica a sealed durability store —
	//    a per-compartment write-ahead log plus state snapshots, AEAD-
	//    encrypted under enclave-derived keys — so a crashed replica can
	//    Restart and recover instead of being gone for good. It requires
	//    WithKeySeed: a restarted process must re-derive the same sealing
	//    keys to read its own state back.
	dataDir, err := os.MkdirTemp("", "splitbft-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithConfidential(),                         // end-to-end encrypt payloads
		splitbft.WithCostModel(splitbft.DefaultCostModel()), // charge real enclave-transition costs
		splitbft.WithBatchSize(1),                           // order every request individually
		splitbft.WithKeySeed([]byte("quickstart-secret")),   // deployment trust root
		splitbft.WithPersistence(dataDir),                   // sealed WAL + snapshots per replica
		splitbft.WithCheckpointInterval(4),
		splitbft.WithNetworkSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// 2. Create a client and run the attestation + key-provisioning
	//    handshake with every Execution enclave.
	cl, err := cluster.NewClient(100)
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.Attest(); err != nil {
		log.Fatalf("attestation: %v", err)
	}
	fmt.Println("attested all 4 Execution enclaves, session key provisioned")

	// 3. Invoke operations. Payloads are encrypted end to end: the brokers
	//    and the network only ever see ciphertext.
	ops := []struct {
		name string
		op   func() ([]byte, error)
	}{
		{`PUT balance=42`, func() ([]byte, error) { return cl.Put("balance", []byte("42")) }},
		{`GET balance`, func() ([]byte, error) { return cl.Get("balance") }},
		{`PUT balance=43`, func() ([]byte, error) { return cl.Put("balance", []byte("43")) }},
		{`GET balance`, func() ([]byte, error) { return cl.Get("balance") }},
		{`DEL balance`, func() ([]byte, error) { return cl.Delete("balance") }},
		{`GET balance`, func() ([]byte, error) { return cl.Get("balance") }},
	}
	for _, o := range ops {
		start := time.Now()
		res, err := o.op()
		if err != nil {
			log.Fatalf("%s: %v", o.name, err)
		}
		fmt.Printf("%-16s -> %-10q (%.2f ms, f+1 matching replies)\n",
			o.name, res, float64(time.Since(start))/float64(time.Millisecond))
	}

	// 4. Crash one replica the hard way (SIGKILL analog) and bring it
	//    back: Restart recovers the compartments from the newest sealed
	//    snapshot plus a WAL replay, and peer state transfer closes
	//    whatever committed while it was down.
	cluster.CrashNode(3)
	if _, err := cl.Put("while-down", []byte("survives")); err != nil {
		log.Fatalf("PUT during outage: %v", err)
	}
	if err := cluster.RestartNode(3); err != nil {
		log.Fatalf("restart: %v", err)
	}
	rs := cluster.Node(3).RecoveryStats()
	fmt.Printf("\nreplica 3 crash-restarted: %d sealed snapshots, %d WAL records replayed in %v\n",
		rs.Snapshots, rs.WALRecords, rs.Total.Round(time.Microsecond))

	// 5. Show the per-compartment ecall profile on the leader (the data
	//    behind Figure 4).
	fmt.Println("\nleader enclave ecall profile:")
	for _, s := range cluster.Node(0).EnclaveStats() {
		fmt.Printf("  %-5s %4d ecalls, mean %8v\n", s.Role, s.Count, s.Mean.Round(time.Microsecond))
	}
}
