// Quickstart: a four-replica SplitBFT cluster with a confidential
// key-value store, all in one process.
//
//	go run ./examples/quickstart
//
// It starts the replicas over the in-process simulated network, attests a
// client against the Execution enclaves, provisions a session key, and
// performs encrypted PUT/GET/DELETE round trips.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/client"
	"github.com/splitbft/splitbft/internal/core"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/tee"
	"github.com/splitbft/splitbft/internal/transport"
)

const (
	n      = 4
	f      = 1
	secret = "quickstart-deployment-secret"
)

func main() {
	net := transport.NewSimNet(1)
	defer net.Close()
	registry := crypto.NewRegistry()

	// 1. Launch four replicas. Each hosts three enclaves (Preparation,
	//    Confirmation, Execution) plus an untrusted broker.
	var replicas []*core.Replica
	for i := 0; i < n; i++ {
		r, err := core.NewReplica(core.Config{
			N: n, F: f, ID: uint32(i),
			Registry:     registry,
			MACSecret:    []byte(secret),
			App:          app.NewKVS(),
			Confidential: true,
			Cost:         tee.DefaultCostModel(), // charge real enclave-transition costs
			BatchSize:    1,                      // order every request individually
		})
		if err != nil {
			log.Fatalf("replica %d: %v", i, err)
		}
		replicas = append(replicas, r)
	}
	for i, r := range replicas {
		conn, err := net.Join(transport.ReplicaEndpoint(uint32(i)), r.Handler())
		if err != nil {
			log.Fatal(err)
		}
		r.Start(conn)
		defer r.Stop()
	}

	// 2. Create a client and run the attestation + key-provisioning
	//    handshake with every Execution enclave.
	cl, err := client.New(client.Config{
		ID: 100, N: n, F: f,
		MACs:            crypto.NewMACStore([]byte(secret), crypto.Identity{ReplicaID: 100, Role: crypto.RoleClient}),
		AuthReceivers:   core.RequestAuthReceivers(n),
		ReplyRole:       crypto.RoleExecution,
		Confidential:    true,
		Registry:        registry,
		ExecMeasurement: core.ExecutionMeasurement(),
	})
	if err != nil {
		log.Fatal(err)
	}
	conn, err := net.Join(transport.ClientEndpoint(100), cl.Handler())
	if err != nil {
		log.Fatal(err)
	}
	cl.Start(conn)
	defer cl.Close()
	if err := cl.Attest(); err != nil {
		log.Fatalf("attestation: %v", err)
	}
	fmt.Println("attested all 4 Execution enclaves, session key provisioned")

	// 3. Invoke operations. Payloads are encrypted end to end: the brokers
	//    and the network only ever see ciphertext.
	ops := []struct {
		name string
		op   []byte
	}{
		{`PUT balance=42`, app.EncodePut("balance", []byte("42"))},
		{`GET balance`, app.EncodeGet("balance")},
		{`PUT balance=43`, app.EncodePut("balance", []byte("43"))},
		{`GET balance`, app.EncodeGet("balance")},
		{`DEL balance`, app.EncodeDelete("balance")},
		{`GET balance`, app.EncodeGet("balance")},
	}
	for _, o := range ops {
		start := time.Now()
		res, err := cl.Invoke(o.op)
		if err != nil {
			log.Fatalf("%s: %v", o.name, err)
		}
		fmt.Printf("%-16s -> %-10q (%.2f ms, f+1 matching replies)\n",
			o.name, res, float64(time.Since(start))/float64(time.Millisecond))
	}

	// 4. Show the per-compartment ecall profile on the leader (the data
	//    behind Figure 4).
	stats := replicas[0].EnclaveStats()
	fmt.Println("\nleader enclave ecall profile:")
	for _, role := range []crypto.Role{crypto.RolePreparation, crypto.RoleConfirmation, crypto.RoleExecution} {
		s := stats[role]
		fmt.Printf("  %-5s %4d ecalls, mean %8v\n", role, s.Count, s.Mean.Round(time.Microsecond))
	}
}
