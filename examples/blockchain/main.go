// Blockchain ordering service: SplitBFT as the consensus core of a small
// permissioned ledger, the paper's second use case (§6).
//
//	go run ./examples/blockchain
//
// Three clients submit transactions concurrently; the Execution enclaves
// assemble blocks of five transactions, seal them (AES-GCM under the
// enclave sealing key), and persist them to untrusted storage through an
// ocall — the exact path whose cost makes the blockchain app slower than
// the KVS in Figure 3. The example then verifies that every replica built
// the identical hash-linked chain.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/client"
	"github.com/splitbft/splitbft/internal/core"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/tee"
	"github.com/splitbft/splitbft/internal/transport"
)

const (
	n      = 4
	f      = 1
	secret = "ledger-deployment-secret"
)

func main() {
	net := transport.NewSimNet(7)
	defer net.Close()
	registry := crypto.NewRegistry()

	chains := make([]*app.Blockchain, n)
	replicas := make([]*core.Replica, n)
	for i := 0; i < n; i++ {
		chains[i] = app.NewBlockchain(app.DefaultBlockSize, nil)
		r, err := core.NewReplica(core.Config{
			N: n, F: f, ID: uint32(i),
			Registry:     registry,
			MACSecret:    []byte(secret),
			App:          chains[i],
			Confidential: true,
			Cost:         tee.DefaultCostModel(),
			BatchSize:    1,
		})
		if err != nil {
			log.Fatalf("replica %d: %v", i, err)
		}
		replicas[i] = r
	}
	for i, r := range replicas {
		conn, err := net.Join(transport.ReplicaEndpoint(uint32(i)), r.Handler())
		if err != nil {
			log.Fatal(err)
		}
		r.Start(conn)
		defer r.Stop()
	}

	// Three concurrent clients submit 10 transactions each.
	const clients, txPerClient = 3, 10
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		id := uint32(200 + c)
		cl, err := client.New(client.Config{
			ID: id, N: n, F: f,
			MACs:            crypto.NewMACStore([]byte(secret), crypto.Identity{ReplicaID: id, Role: crypto.RoleClient}),
			AuthReceivers:   core.RequestAuthReceivers(n),
			ReplyRole:       crypto.RoleExecution,
			Confidential:    true,
			Registry:        registry,
			ExecMeasurement: core.ExecutionMeasurement(),
		})
		if err != nil {
			log.Fatal(err)
		}
		conn, err := net.Join(transport.ClientEndpoint(id), cl.Handler())
		if err != nil {
			log.Fatal(err)
		}
		cl.Start(conn)
		defer cl.Close()
		if err := cl.Attest(); err != nil {
			log.Fatalf("client %d attestation: %v", id, err)
		}
		wg.Add(1)
		go func(cl *client.Client, c int) {
			defer wg.Done()
			for t := 0; t < txPerClient; t++ {
				tx := fmt.Sprintf("transfer{from:acct%d, to:acct%d, amount:%d}", c, (c+1)%clients, t+1)
				if _, err := cl.Invoke([]byte(tx)); err != nil {
					log.Fatalf("client %d tx %d: %v", c, t, err)
				}
			}
		}(cl, c)
	}
	wg.Wait()

	// 30 transactions at block size 5 → 6 sealed blocks.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if chains[0].Height() >= (clients*txPerClient)/app.DefaultBlockSize {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Println("per-replica chains:")
	for i, bc := range chains {
		headers := bc.Headers()
		if err := app.VerifyChain(headers); err != nil {
			log.Fatalf("replica %d chain invalid: %v", i, err)
		}
		tip := "genesis"
		if len(headers) > 0 {
			tip = headers[len(headers)-1].Hash.String()
		}
		fmt.Printf("  replica %d: height=%d tip=%s persisted=%d sealed blocks\n",
			i, bc.Height(), tip, replicas[i].PersistedBlocks())
	}
	for i := 1; i < n; i++ {
		if chains[i].Digest() != chains[0].Digest() {
			log.Fatalf("replica %d chain diverged", i)
		}
	}
	fmt.Println("\nall replicas agree on the same hash-linked chain ✓")
	fmt.Println("blocks were sealed inside the Execution enclave before the persist ocall ✓")
}
