// Blockchain ordering service: SplitBFT as the consensus core of a small
// permissioned ledger, the paper's second use case (§6).
//
//	go run ./examples/blockchain
//
// Three clients submit transactions concurrently; the Execution enclaves
// assemble blocks of five transactions, seal them (AES-GCM under the
// enclave sealing key), and persist them to untrusted storage through an
// ocall — the exact path whose cost makes the blockchain app slower than
// the KVS in Figure 3. The example then verifies that every replica built
// the identical hash-linked chain.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/splitbft/splitbft"
)

const (
	n       = 4
	clients = 3
)

func main() {
	cluster, err := splitbft.NewCluster(n,
		splitbft.WithBlockchain(splitbft.DefaultBlockSize),
		splitbft.WithConfidential(),
		splitbft.WithBatchSize(1),
		splitbft.WithNetworkSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Three concurrent clients submit 10 transactions each.
	const txPerClient = 10
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		cl, err := cluster.NewClient(uint32(200 + c))
		if err != nil {
			log.Fatal(err)
		}
		if err := cl.Attest(); err != nil {
			log.Fatalf("client %d attestation: %v", cl.ID(), err)
		}
		wg.Add(1)
		go func(cl *splitbft.Client, c int) {
			defer wg.Done()
			for t := 0; t < txPerClient; t++ {
				tx := fmt.Sprintf("transfer{from:acct%d, to:acct%d, amount:%d}", c, (c+1)%clients, t+1)
				if _, err := cl.Invoke([]byte(tx)); err != nil {
					log.Fatalf("client %d tx %d: %v", c, t, err)
				}
			}
		}(cl, c)
	}
	wg.Wait()

	// Every node's application is the ledger it built.
	chains := make([]*splitbft.Blockchain, n)
	for i := 0; i < n; i++ {
		chains[i] = cluster.Node(i).App().(*splitbft.Blockchain)
	}

	// 30 transactions at block size 5 → 6 sealed blocks. Replicas commit
	// (and thus execute) at slightly different times, so wait until every
	// chain reaches the target height and all digests agree.
	converged := func() bool {
		if chains[0].Height() < (clients*txPerClient)/splitbft.DefaultBlockSize {
			return false
		}
		d := chains[0].Digest()
		for i := 1; i < n; i++ {
			if chains[i].Digest() != d {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !converged() {
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Println("per-replica chains:")
	for i, bc := range chains {
		headers := bc.Headers()
		if err := splitbft.VerifyChain(headers); err != nil {
			log.Fatalf("replica %d chain invalid: %v", i, err)
		}
		tip := "genesis"
		if len(headers) > 0 {
			tip = headers[len(headers)-1].Hash.String()
		}
		fmt.Printf("  replica %d: height=%d tip=%s persisted=%d sealed blocks\n",
			i, bc.Height(), tip, cluster.Node(i).PersistedBlocks())
	}
	for i := 1; i < n; i++ {
		if chains[i].Digest() != chains[0].Digest() {
			log.Fatalf("replica %d chain diverged", i)
		}
	}
	fmt.Println("\nall replicas agree on the same hash-linked chain ✓")
	fmt.Println("blocks were sealed inside the Execution enclave before the persist ocall ✓")
}
