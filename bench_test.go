package splitbft_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/splitbft/splitbft/experiments/bench"
	"github.com/splitbft/splitbft/experiments/faultmodel"
	"github.com/splitbft/splitbft/experiments/loc"
)

// This file holds one benchmark per table and figure of the paper's
// evaluation (§6). The full sweeps (all client counts, 1 s windows) run
// via `go run ./cmd/splitbft-bench`; these testing.B versions use a fixed
// 40-client point and short windows so `go test -bench=.` completes in
// minutes while still reporting the shapes (SplitBFT vs PBFT throughput
// ratio, compartment ecall profile).

// benchPoint runs one experiment point and reports throughput and latency
// as benchmark metrics.
func benchPoint(b *testing.B, sys bench.System, clients int, batched bool) bench.Result {
	b.Helper()
	var last bench.Result
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(bench.RunConfig{
			System:  sys,
			Clients: clients,
			Batched: batched,
			Warmup:  200 * time.Millisecond,
			Measure: 500 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Throughput, "ops/s")
	b.ReportMetric(float64(last.MeanLat)/1e6, "ms/op-mean")
	b.ReportMetric(float64(last.P99Lat)/1e6, "ms/op-p99")
	return last
}

// BenchmarkTable1FaultModel regenerates the Table 1 comparison.
func BenchmarkTable1FaultModel(b *testing.B) {
	var rows []faultmodel.Row
	for i := 0; i < b.N; i++ {
		rows = faultmodel.Table1(1)
	}
	if len(rows) != 3 {
		b.Fatalf("table has %d rows", len(rows))
	}
	b.Logf("\n%s", faultmodel.FormatTable(rows))
}

// BenchmarkTable2TCBSizes regenerates the Table 2 LOC analysis over this
// repository.
func BenchmarkTable2TCBSizes(b *testing.B) {
	var rows []loc.TableRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = loc.Table2(".")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", loc.FormatTable2(rows))
}

// Figure 3(a) — unbatched throughput/latency at the 40-client point, one
// sub-benchmark per series.
func BenchmarkFig3aUnbatched(b *testing.B) {
	results := make(map[bench.System]bench.Result)
	for _, sys := range bench.AllSystems() {
		sys := sys
		b.Run(sys.String(), func(b *testing.B) {
			results[sys] = benchPoint(b, sys, 40, false)
		})
	}
	if split, ok := results[bench.SplitKVS]; ok {
		if base, ok := results[bench.PBFTKVS]; ok && base.Throughput > 0 {
			b.Logf("SplitBFT/PBFT KVS throughput ratio @40 clients: %.2f (paper: 0.43-0.74)",
				split.Throughput/base.Throughput)
		}
	}
}

// Figure 3(b) — batched (200/10 ms, 40 outstanding per client).
func BenchmarkFig3bBatched(b *testing.B) {
	results := make(map[bench.System]bench.Result)
	for _, sys := range []bench.System{bench.SplitKVS, bench.PBFTKVS, bench.SplitBlockchain, bench.PBFTBlockchain} {
		sys := sys
		b.Run(sys.String(), func(b *testing.B) {
			results[sys] = benchPoint(b, sys, 40, true)
		})
	}
	if split, ok := results[bench.SplitKVS]; ok {
		if base, ok := results[bench.PBFTKVS]; ok && base.Throughput > 0 {
			b.Logf("SplitBFT/PBFT KVS throughput ratio @40 clients batched: %.2f (paper: ~0.64)",
				split.Throughput/base.Throughput)
		}
	}
}

// BenchmarkAblationTransitionCost sweeps the enclave-boundary cost on the
// SplitBFT KVS (0 = simulation mode; 8640 = HotCalls default; higher =
// conservative TEEs), isolating the share of overhead attributable to
// transitions (the paper estimates ~20%).
func BenchmarkAblationTransitionCost(b *testing.B) {
	var points []bench.TransitionCostPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = bench.TransitionCostAblation(
			[]uint64{0, 8640, 40000}, 8, 400*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(p.Result.Throughput, fmt.Sprintf("ops/s-%dcyc", p.TransitionCycles))
	}
	b.Logf("\n%s", bench.FormatTransitionAblation(points))
}

// BenchmarkAblationBatchSize fills in the batching curve between the
// paper's two operating points (1 and 200).
func BenchmarkAblationBatchSize(b *testing.B) {
	var points []bench.BatchSizePoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = bench.BatchSizeAblation(
			[]int{10, 50, 200}, 8, 400*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(p.Result.Throughput, fmt.Sprintf("ops/s-b%d", p.BatchSize))
	}
	b.Logf("\n%s", bench.FormatBatchAblation(points))
}

// Figure 4 — mean ecall latency per compartment on the leader with 40
// clients, batched and unbatched.
func BenchmarkFig4EcallLatency(b *testing.B) {
	for _, mode := range []struct {
		name    string
		batched bool
	}{{"NotBatched", false}, {"Batched", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var last bench.Result
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.RunConfig{
					System:  bench.SplitKVS,
					Clients: 40,
					Batched: mode.batched,
					Warmup:  200 * time.Millisecond,
					Measure: 500 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			for _, cs := range last.Compartments {
				b.ReportMetric(float64(cs.Mean)/1e3, fmt.Sprintf("us/ecall-%s", cs.Name))
			}
			b.Logf("mode=%s compartments=%+v", mode.name, last.Compartments)
		})
	}
}

// BenchmarkAgreementAuth compares the Ed25519 baseline against the
// MAC-authenticated fast path (WithAgreementAuth) on the same cluster
// shape: the protocol and scheduling are identical, only the normal-case
// authentication primitive changes. The sig run also reports the verify-
// CPU fraction the MAC run removes.
func BenchmarkAgreementAuth(b *testing.B) {
	results := make(map[string]bench.Result)
	for _, mode := range []string{"sig", "mac"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			var last bench.Result
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.RunConfig{
					System:        bench.SplitKVS,
					Clients:       40,
					Batched:       false,
					Warmup:        200 * time.Millisecond,
					Measure:       500 * time.Millisecond,
					AgreementAuth: mode,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Throughput, "ops/s")
			b.ReportMetric(float64(last.MeanLat)/1e6, "ms/op-mean")
			b.ReportMetric(float64(last.SigVerifies), "sig-verifies")
			b.ReportMetric(100*last.SigCPUFraction, "verify-cpu-%")
			results[mode] = last
		})
	}
	sig, mac := results["sig"], results["mac"]
	if sig.Throughput > 0 && mac.Throughput > 0 {
		b.Logf("MAC fast path speedup: %.2fx (%.0f -> %.0f ops/s; sig run spent %.0f%% of the window in Ed25519 verify)",
			mac.Throughput/sig.Throughput, sig.Throughput, mac.Throughput, 100*sig.SigCPUFraction)
	}
}

// BenchmarkStagedPipeline compares the staged agreement pipeline —
// batched ecalls (WithEcallBatch) plus the enclave-side parallel
// verification pool (WithVerifyWorkers) — against the paper's baseline
// one-message-per-ecall dispatcher on the same hardware and cost model.
// Besides throughput it reports the achieved ecall amortization
// (msgs/ecall) and the verification-cache hit rate, so the speedup is
// measured rather than asserted.
func BenchmarkStagedPipeline(b *testing.B) {
	configs := []struct {
		name           string
		batch, workers int
	}{
		{"Disabled", 0, 0},
		{"Enabled", 32, 8},
	}
	results := make(map[string]bench.Result)
	for _, c := range configs {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var last bench.Result
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.RunConfig{
					System:        bench.SplitKVS,
					Clients:       40,
					Batched:       false,
					Warmup:        200 * time.Millisecond,
					Measure:       500 * time.Millisecond,
					EcallBatch:    c.batch,
					VerifyWorkers: c.workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Throughput, "ops/s")
			b.ReportMetric(float64(last.MeanLat)/1e6, "ms/op-mean")
			b.ReportMetric(last.MsgsPerEcall, "msgs/ecall")
			b.ReportMetric(100*last.VerifyCacheHitRate, "cache-hit-%")
			results[c.name] = last
		})
	}
	base, on := results["Disabled"], results["Enabled"]
	if base.Throughput > 0 && on.Throughput > 0 {
		b.Logf("staged pipeline speedup: %.2fx (%.0f -> %.0f ops/s; %.1f msgs/ecall, %.0f%% verify-cache hits)",
			on.Throughput/base.Throughput, base.Throughput, on.Throughput,
			on.MsgsPerEcall, 100*on.VerifyCacheHitRate)
	}
}
