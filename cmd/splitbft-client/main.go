// Command splitbft-client talks to a SplitBFT deployment over TCP.
//
//	splitbft-client -replicas ":7000,:7001,:7002,:7003" put mykey myvalue
//	splitbft-client -replicas ":7000,:7001,:7002,:7003" get mykey
//	splitbft-client -replicas ":7000,:7001,:7002,:7003" bench -d 10s
//
// The -secret flag must match the replicas' deployment secret.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/splitbft/splitbft"
)

func main() {
	id := flag.Uint("id", 100, "client ID")
	n := flag.Int("n", 4, "number of replicas")
	f := flag.Int("f", 1, "fault threshold")
	replicas := flag.String("replicas", "", "comma-separated replica addresses, indexed by ID")
	secret := flag.String("secret", "splitbft-dev-secret", "shared deployment secret")
	confidential := flag.Bool("confidential", true, "end-to-end encrypt payloads")
	consensus := flag.String("consensus", "classic", "consensus mode: classic (3f+1) or trusted (counter-backed 2f+1); must match the replicas")
	commitRule := flag.String("commit-rule", "trusted", "reply quorum to wait for: trusted (f+1) or full (2f+1)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	flag.Parse()

	addrs := splitbft.SplitAddrs(*replicas)
	if len(addrs) != *n {
		fatalf("need exactly %d -replicas entries, got %d", *n, len(addrs))
	}

	opts := []splitbft.Option{
		splitbft.WithTransportTCP(addrs...),
		splitbft.WithFaults(*f),
		splitbft.WithKeySeed([]byte(*secret)),
		splitbft.WithConsensusMode(*consensus),
		splitbft.WithCommitRule(*commitRule),
		splitbft.WithInvokeTimeout(*timeout),
	}
	if *confidential {
		opts = append(opts, splitbft.WithConfidential())
	}
	cl, err := splitbft.NewClient(uint32(*id), opts...)
	if err != nil {
		fatalf("create client: %v", err)
	}
	defer cl.Close()
	if err := cl.Attest(); err != nil {
		fatalf("attestation: %v", err)
	}

	args := flag.Args()
	if len(args) == 0 {
		fatalf("usage: splitbft-client [flags] put <key> <value> | get <key> | del <key> | bench [-d duration is -timeout]")
	}
	switch args[0] {
	case "put":
		if len(args) != 3 {
			fatalf("usage: put <key> <value>")
		}
		timed(func() ([]byte, error) { return cl.Put(args[1], []byte(args[2])) })
	case "get":
		if len(args) != 2 {
			fatalf("usage: get <key>")
		}
		timed(func() ([]byte, error) { return cl.Get(args[1]) })
	case "del":
		if len(args) != 2 {
			fatalf("usage: del <key>")
		}
		timed(func() ([]byte, error) { return cl.Delete(args[1]) })
	case "bench":
		runBench(cl, *timeout)
	default:
		fatalf("unknown command %q", args[0])
	}
}

func timed(invoke func() ([]byte, error)) {
	start := time.Now()
	res, err := invoke()
	if err != nil {
		fatalf("invoke: %v", err)
	}
	fmt.Printf("%s (%.2f ms)\n", res, float64(time.Since(start))/float64(time.Millisecond))
}

// runBench drives closed-loop PUTs for the timeout duration and reports
// throughput and latency.
func runBench(cl *splitbft.Client, d time.Duration) {
	const workers = 8
	var ops atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			op := splitbft.EncodePut(fmt.Sprintf("bench-%d", w), []byte("0123456789"))
			for !stop.Load() {
				if _, err := cl.Invoke(op); err != nil {
					return
				}
				ops.Add(1)
			}
		}(w)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	total := ops.Load()
	fmt.Printf("%d ops in %v: %.0f ops/s, %.2f ms mean latency\n",
		total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(),
		float64(elapsed)/float64(time.Millisecond)/float64(total)*workers)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "splitbft-client: "+format+"\n", args...)
	os.Exit(1)
}
