// Command splitbft-load drives a SplitBFT deployment with the open-loop,
// coordinated-omission-safe generator from experiments/load and emits a
// versioned JSON result suitable for the committed perf trajectory.
//
//	splitbft-load -rate 300 -duration 10s                 # in-process cluster
//	splitbft-load -rate 300 -auth mac -json out.json      # MAC fast path
//	splitbft-load -peers ":7000,:7001,:7002,:7003" ...    # real TCP replicas
//	splitbft-load -json cur.json -compare perf/BENCH_load_sig.json
//
// Without -peers it spins up an in-process 3f+1 cluster (the simulated-
// enclave deployment the benchmark suite uses); with -peers it connects to
// already-running splitbft-replica processes over TCP. -mode closed runs
// the coordinated-omission-PRONE closed loop for comparison. -compare
// gates the fresh run against a committed trajectory point with a noise
// band and exits non-zero on a hard regression.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/splitbft/splitbft"
	"github.com/splitbft/splitbft/experiments/load"
)

func main() {
	mode := flag.String("mode", "open", "generator mode: open (CO-safe) or closed (comparison only)")
	rate := flag.Float64("rate", 300, "open-loop target arrival rate, ops/s")
	arrival := flag.String("arrival", "fixed", "arrival process: poisson or fixed (fixed for calibrated regression runs)")
	duration := flag.Duration("duration", 10*time.Second, "measurement window")
	warmup := flag.Duration("warmup", 2*time.Second, "untimed ramp-up before the window")
	inflight := flag.Int("inflight", 64, "max concurrent outstanding ops")
	queue := flag.Int("queue", 256, "dispatch-queue depth beyond the in-flight bound")
	nclients := flag.Int("clients", 4, "client connections to fan ops over")
	payload := flag.Int("payload", 10, "PUT value size in bytes")
	seed := flag.Int64("seed", 1, "arrival-schedule seed")

	readFrac := flag.Float64("read-frac", 0, "fraction of ops issued as GETs (0.9 = a 90/10 read/write mix)")
	readLeases := flag.Bool("read-leases", false, "enable the lease-anchored local read fast path")
	readConsistency := flag.String("read-consistency", "linearizable", "leased-read consistency: linearizable or session")

	auth := flag.String("auth", "sig", "agreement authentication: sig or mac")
	consensus := flag.String("consensus", "classic", "consensus mode: classic (3f+1) or trusted (counter-backed 2f+1)")
	batch := flag.Int("batch", 1, "agreement batch size")
	ecallBatch := flag.Int("ecall-batch", 16, "messages per trusted-boundary crossing (<=1 disables)")
	verifyWorkers := flag.Int("verify-workers", 1, "parallel verification workers per enclave (<=1 inline)")
	confidential := flag.Bool("confidential", false, "end-to-end encrypt payloads")

	peers := flag.String("peers", "", "comma-separated replica addresses; empty = in-process cluster")
	n := flag.Int("n", 4, "replica count for the in-process cluster")
	secret := flag.String("secret", "splitbft-dev-secret", "shared deployment secret (TCP mode)")

	jsonPath := flag.String("json", "", "write the versioned result JSON here")
	compare := flag.String("compare", "", "committed trajectory point to gate against")
	band := flag.Float64("band", 0.15, "noise band for -compare (0.15 = ±15%)")
	stageBreakdown := flag.Bool("stage-breakdown", false, "trace request lifecycles and report per-stage latency (in-process cluster only); the JSON result gains an optional stages section")
	flag.Parse()

	wl := load.Workload{
		Transport:     "inproc",
		App:           "kvs",
		Auth:          *auth,
		Confidential:  *confidential,
		BatchSize:     *batch,
		EcallBatch:    *ecallBatch,
		VerifyWorkers: *verifyWorkers,
		ReadFrac:      *readFrac,
		ReadLeases:    *readLeases,
	}
	opts := []splitbft.Option{
		splitbft.WithKVStore(),
		splitbft.WithAgreementAuth(*auth),
		splitbft.WithBatchSize(*batch),
		splitbft.WithEcallBatch(*ecallBatch),
		splitbft.WithVerifyWorkers(*verifyWorkers),
		splitbft.WithReadLeases(*readLeases),
		splitbft.WithReadConsistency(*readConsistency),
	}
	if *consensus == "trusted" {
		// Workload.Consensus stays empty for classic runs so trajectory
		// points committed before the mode existed keep matching.
		wl.Consensus = "trusted"
		opts = append(opts, splitbft.WithConsensusMode("trusted"))
		if *peers == "" && !flagSet("n") {
			*n = 3 // trusted groups are 2f+1; shrink the in-process default
		}
	}
	if *confidential {
		opts = append(opts, splitbft.WithConfidential())
	}
	if *stageBreakdown {
		if *peers != "" {
			// TCP replicas run in other processes; scrape their /metrics
			// endpoints (splitbft-replica -metrics-addr) instead.
			fatalf("-stage-breakdown needs the in-process cluster (drop -peers, or scrape the replicas' -metrics-addr endpoints)")
		}
		opts = append(opts, splitbft.WithObservability())
	}

	var invokers []load.Invoker
	var cluster *splitbft.Cluster
	if *peers == "" {
		var err error
		cluster, err = splitbft.NewCluster(*n, opts...)
		if err != nil {
			fatalf("start cluster: %v", err)
		}
		defer cluster.Close()
		for i := 0; i < *nclients; i++ {
			cl, err := cluster.NewClient(uint32(100 + i))
			if err != nil {
				fatalf("client %d: %v", i, err)
			}
			if err := cl.Attest(); err != nil {
				fatalf("client %d attestation: %v", i, err)
			}
			invokers = append(invokers, cl)
		}
	} else {
		wl.Transport = "tcp"
		addrs := splitbft.SplitAddrs(*peers)
		tcpOpts := append(opts,
			splitbft.WithTransportTCP(addrs...),
			splitbft.WithKeySeed([]byte(*secret)))
		for i := 0; i < *nclients; i++ {
			cl, err := splitbft.NewClient(uint32(100+i), tcpOpts...)
			if err != nil {
				fatalf("client %d: %v", i, err)
			}
			defer cl.Close()
			if err := cl.Attest(); err != nil {
				fatalf("client %d attestation: %v", i, err)
			}
			invokers = append(invokers, cl)
		}
	}

	value := make([]byte, *payload)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	cfg := load.Config{
		Rate:        *rate,
		Arrival:     load.Arrival(*arrival),
		Warmup:      *warmup,
		Duration:    *duration,
		MaxInFlight: *inflight,
		QueueDepth:  *queue,
		Clients:     invokers,
		MakeOp: func(worker int, seq uint64) []byte {
			// One key per worker: overwrites keep the KVS flat while every
			// op still traverses full agreement.
			return splitbft.EncodePut(fmt.Sprintf("load-w%d", worker), value)
		},
		MakeRead: func(worker int, seq uint64) []byte {
			// Reads target the same per-worker key the writes churn, so a
			// mixed run exercises real read-after-write traffic rather
			// than cold misses.
			return splitbft.EncodeGet(fmt.Sprintf("load-w%d", worker))
		},
		ReadFrac:   *readFrac,
		Payload:    *payload,
		Seed:       *seed,
		ClosedLoop: *mode == "closed",
	}
	if *mode != "open" && *mode != "closed" {
		fatalf("unknown -mode %q (want open or closed)", *mode)
	}

	fmt.Printf("splitbft-load: %s loop, %s transport, auth=%s, target %.0f ops/s, window %v (+%v warmup)\n",
		*mode, wl.Transport, *auth, *rate, *duration, *warmup)
	st, err := load.Run(cfg)
	if err != nil {
		fatalf("run: %v", err)
	}
	res := load.NewResult(cfg, st, wl)
	if *stageBreakdown && cluster != nil {
		res.Stages = load.NodeStages(cluster.Node(0))
	}
	printResult(st, res)
	if len(res.Stages) > 0 {
		fmt.Printf("stage latency breakdown (primary's view):\n%s", load.FormatStages(res.Stages))
	}

	if *jsonPath != "" {
		if err := load.WriteResult(*jsonPath, res); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *compare != "" {
		prev, err := load.ReadResult(*compare)
		if err != nil {
			fatalf("%v", err)
		}
		report := load.CompareTrajectory(prev, res, *band)
		fmt.Print(report.String())
		if !report.Pass() {
			os.Exit(1)
		}
	}
}

func printResult(st load.Stats, res load.Result) {
	fmt.Printf("offered  %6d ops (%.0f ops/s)\n", res.Offered, res.OfferedRate)
	fmt.Printf("achieved %6d ops (%.0f ops/s), %d dropped, %d errors\n",
		res.Achieved, res.AchievedRate, res.Dropped, res.Errors)
	fmt.Printf("latency  mean %v  p50 %v  p90 %v  p95 %v  p99 %v  p99.9 %v  max %v\n",
		res.Latency.Mean.Round(time.Microsecond),
		res.Latency.P50.Round(time.Microsecond),
		res.Latency.P90.Round(time.Microsecond),
		res.Latency.P95.Round(time.Microsecond),
		res.Latency.P99.Round(time.Microsecond),
		res.Latency.P999.Round(time.Microsecond),
		res.Latency.Max.Round(time.Microsecond))
	if res.ReadLatency != nil {
		fmt.Printf("reads    %6d ops (%.0f ops/s)  p50 %v  p99 %v  max %v\n",
			res.ReadOps, res.ReadRate,
			res.ReadLatency.P50.Round(time.Microsecond),
			res.ReadLatency.P99.Round(time.Microsecond),
			res.ReadLatency.Max.Round(time.Microsecond))
		fmt.Printf("writes   %6d ops (%.0f ops/s)  p50 %v  p99 %v  max %v\n",
			res.WriteOps, res.WriteRate,
			res.WriteLatency.P50.Round(time.Microsecond),
			res.WriteLatency.P99.Round(time.Microsecond),
			res.WriteLatency.Max.Round(time.Microsecond))
	}
	if st.TailWait > 0 {
		fmt.Printf("drain    %v past the window (in-flight completions)\n", st.TailWait.Round(time.Millisecond))
	}
}

// flagSet reports whether the named flag was given on the command line.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "splitbft-load: "+format+"\n", args...)
	os.Exit(1)
}
