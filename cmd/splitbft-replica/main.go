// Command splitbft-replica runs one SplitBFT replica over TCP.
//
// A four-replica local deployment:
//
//	splitbft-replica -id 0 -listen :7000 -peers ":7000,:7001,:7002,:7003" &
//	splitbft-replica -id 1 -listen :7001 -peers ":7000,:7001,:7002,:7003" &
//	splitbft-replica -id 2 -listen :7002 -peers ":7000,:7001,:7002,:7003" &
//	splitbft-replica -id 3 -listen :7003 -peers ":7000,:7001,:7002,:7003" &
//
// All replicas and clients of one deployment must share -secret: it seeds
// the deterministic enclave keys and client MAC keys, standing in for the
// attestation-based key-exchange ceremony of a real SGX deployment.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/splitbft/splitbft"
)

func main() {
	id := flag.Uint("id", 0, "replica ID in [0, n)")
	n := flag.Int("n", 4, "number of replicas (3f+1)")
	f := flag.Int("f", 1, "fault threshold")
	listen := flag.String("listen", "", "listen address (default: own entry in -peers)")
	peers := flag.String("peers", "", "comma-separated replica addresses, indexed by ID")
	secret := flag.String("secret", "splitbft-dev-secret", "shared deployment secret")
	appName := flag.String("app", "kvs", "application: kvs or blockchain")
	confidential := flag.Bool("confidential", true, "end-to-end encrypt client payloads")
	simulation := flag.Bool("simulation", false, "SGX simulation mode (no transition cost)")
	singleThread := flag.Bool("single-thread", false, "serialize all ecalls through one thread")
	batch := flag.Int("batch", splitbft.DefaultBatchSize, "batch size (1 disables batching)")
	ecallBatch := flag.Int("ecall-batch", 1, "messages delivered per enclave crossing (1 disables batching)")
	verifyWorkers := flag.Int("verify-workers", 1, "enclave-side parallel signature-verification workers (1 = inline)")
	auth := flag.String("auth", "sig", "agreement authentication: sig (Ed25519 baseline) or mac (pairwise-HMAC fast path); must match across the deployment")
	consensus := flag.String("consensus", "classic", "consensus mode: classic (3f+1) or trusted (counter-backed 2f+1); must match across the deployment")
	dataDir := flag.String("data-dir", "", "sealed durability directory: per-compartment WAL + snapshots; the replica recovers from it on start (empty = in-memory only)")
	stats := flag.Duration("stats", 10*time.Second, "stats print interval (0 disables)")
	metricsAddr := flag.String("metrics-addr", "", "HTTP introspection endpoint: /metrics, /healthz, /debug/trace (\":0\" picks a free port; empty disables observability)")
	flag.Parse()

	addrs := splitbft.SplitAddrs(*peers)
	if len(addrs) != *n {
		fatalf("need exactly %d -peers entries, got %d", *n, len(addrs))
	}

	opts := []splitbft.Option{
		splitbft.WithTransportTCP(addrs...),
		splitbft.WithFaults(*f),
		splitbft.WithKeySeed([]byte(*secret)),
		splitbft.WithBatchSize(*batch),
	}
	switch *appName {
	case "kvs":
		opts = append(opts, splitbft.WithKVStore())
	case "blockchain":
		opts = append(opts, splitbft.WithBlockchain(splitbft.DefaultBlockSize))
	default:
		fatalf("unknown app %q", *appName)
	}
	if *confidential {
		opts = append(opts, splitbft.WithConfidential())
	}
	if *simulation {
		opts = append(opts, splitbft.WithCostModel(splitbft.SimulationCostModel()))
	}
	if *singleThread {
		opts = append(opts, splitbft.WithSingleThread())
	}
	if *ecallBatch > 1 {
		opts = append(opts, splitbft.WithEcallBatch(*ecallBatch))
	}
	if *verifyWorkers > 1 {
		opts = append(opts, splitbft.WithVerifyWorkers(*verifyWorkers))
	}
	if *auth != "" {
		opts = append(opts, splitbft.WithAgreementAuth(*auth))
	}
	if *consensus != "" {
		opts = append(opts, splitbft.WithConsensusMode(*consensus))
	}
	if *dataDir != "" {
		opts = append(opts, splitbft.WithPersistence(*dataDir))
	}
	if *listen != "" {
		opts = append(opts, splitbft.WithListenAddr(*listen))
	}
	if *metricsAddr != "" {
		opts = append(opts, splitbft.WithMetricsAddr(*metricsAddr))
	}

	node, err := splitbft.NewNode(uint32(*id), opts...)
	if err != nil {
		fatalf("create replica: %v", err)
	}
	if rs := node.RecoveryStats(); rs.Snapshots > 0 || rs.WALRecords > 0 {
		fmt.Printf("splitbft-replica %d recovered: %d sealed snapshots, %d WAL records replayed in %v (%.0f ops/s)\n",
			*id, rs.Snapshots, rs.WALRecords, rs.Total, rs.ReplayOpsPerSec())
	}
	if err := node.Start(); err != nil {
		fatalf("start: %v", err)
	}
	fmt.Printf("splitbft-replica %d listening on %s (app=%s, confidential=%v)\n",
		*id, node.Addr(), *appName, *confidential)
	if ma := node.MetricsAddr(); ma != "" {
		fmt.Printf("splitbft-replica %d metrics on http://%s/metrics\n", *id, ma)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	if *stats > 0 {
		ticker := time.NewTicker(*stats)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				shutdown(node)
				return
			case <-ticker.C:
				printStats(node)
			}
		}
	}
	<-stop
	shutdown(node)
}

func printStats(node *splitbft.Node) {
	es := node.EnclaveStats()
	fmt.Printf("ops=%d batches=%d suspects=%d ecalls[prep=%d conf=%d exec=%d]\n",
		node.ExecutedOps(), node.Batches(), node.Suspects(),
		es[0].Count, es[1].Count, es[2].Count)
}

func shutdown(node *splitbft.Node) {
	fmt.Println("shutting down")
	node.Stop()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "splitbft-replica: "+format+"\n", args...)
	os.Exit(1)
}
