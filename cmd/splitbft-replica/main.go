// Command splitbft-replica runs one SplitBFT replica over TCP.
//
// A four-replica local deployment:
//
//	splitbft-replica -id 0 -listen :7000 -peers ":7000,:7001,:7002,:7003" &
//	splitbft-replica -id 1 -listen :7001 -peers ":7000,:7001,:7002,:7003" &
//	splitbft-replica -id 2 -listen :7002 -peers ":7000,:7001,:7002,:7003" &
//	splitbft-replica -id 3 -listen :7003 -peers ":7000,:7001,:7002,:7003" &
//
// All replicas and clients of one deployment must share -secret: it seeds
// the deterministic enclave keys and client MAC keys, standing in for the
// attestation-based key-exchange ceremony of a real SGX deployment.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/core"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/tee"
	"github.com/splitbft/splitbft/internal/transport"
)

func main() {
	id := flag.Uint("id", 0, "replica ID in [0, n)")
	n := flag.Int("n", 4, "number of replicas (3f+1)")
	f := flag.Int("f", 1, "fault threshold")
	listen := flag.String("listen", ":7000", "listen address")
	peers := flag.String("peers", "", "comma-separated replica addresses, indexed by ID")
	secret := flag.String("secret", "splitbft-dev-secret", "shared deployment secret")
	appName := flag.String("app", "kvs", "application: kvs or blockchain")
	confidential := flag.Bool("confidential", true, "end-to-end encrypt client payloads")
	simulation := flag.Bool("simulation", false, "SGX simulation mode (no transition cost)")
	singleThread := flag.Bool("single-thread", false, "serialize all ecalls through one thread")
	batch := flag.Int("batch", core.DefaultBatchSize, "batch size (1 disables batching)")
	stats := flag.Duration("stats", 10*time.Second, "stats print interval (0 disables)")
	flag.Parse()

	addrList := strings.Split(*peers, ",")
	if len(addrList) != *n {
		fatalf("need exactly %d -peers entries, got %d", *n, len(addrList))
	}
	addrs := make(map[uint32]string, *n)
	for i, a := range addrList {
		addrs[uint32(i)] = strings.TrimSpace(a)
	}

	var application app.Application
	switch *appName {
	case "kvs":
		application = app.NewKVS()
	case "blockchain":
		application = app.NewBlockchain(app.DefaultBlockSize, nil)
	default:
		fatalf("unknown app %q", *appName)
	}

	reg := crypto.NewRegistry()
	if err := core.RegisterDeterministicKeys(reg, []byte(*secret), *n); err != nil {
		fatalf("derive deployment keys: %v", err)
	}
	cost := tee.DefaultCostModel()
	if *simulation {
		cost = tee.SimulationCostModel()
	}
	replica, err := core.NewReplica(core.Config{
		N: *n, F: *f, ID: uint32(*id),
		Registry:     reg,
		MACSecret:    []byte(*secret),
		KeySeed:      []byte(*secret),
		App:          application,
		Confidential: *confidential,
		Cost:         cost,
		SingleThread: *singleThread,
		BatchSize:    *batch,
	})
	if err != nil {
		fatalf("create replica: %v", err)
	}
	node, err := transport.ListenTCP(transport.ReplicaEndpoint(uint32(*id)), *listen, addrs, replica.Handler())
	if err != nil {
		fatalf("listen: %v", err)
	}
	replica.Start(node)
	fmt.Printf("splitbft-replica %d listening on %s (app=%s, confidential=%v)\n",
		*id, node.Addr(), *appName, *confidential)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	if *stats > 0 {
		ticker := time.NewTicker(*stats)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				shutdown(replica, node)
				return
			case <-ticker.C:
				printStats(replica)
			}
		}
	}
	<-stop
	shutdown(replica, node)
}

func printStats(r *core.Replica) {
	es := r.EnclaveStats()
	fmt.Printf("ops=%d batches=%d suspects=%d ecalls[prep=%d conf=%d exec=%d]\n",
		r.ExecutedOps(), r.Batches(), r.Suspects(),
		es[crypto.RolePreparation].Count,
		es[crypto.RoleConfirmation].Count,
		es[crypto.RoleExecution].Count)
}

func shutdown(r *core.Replica, node *transport.TCPNode) {
	fmt.Println("shutting down")
	r.Stop()
	node.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "splitbft-replica: "+format+"\n", args...)
	os.Exit(1)
}
