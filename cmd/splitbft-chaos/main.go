// splitbft-chaos runs a deterministic, seeded chaos schedule against an
// in-process SplitBFT cluster and verifies safety invariants throughout.
// On a violation it prints the full replayable record — seed, schedule,
// live step, offending history — writes it to -dump if given, and exits 1;
// re-running with the printed seed reproduces the exact fault schedule.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/splitbft/splitbft/experiments/chaos"
)

func main() {
	seed := flag.Int64("seed", 1, "fault-schedule seed; a violation report names the seed that reproduces it")
	plan := flag.String("plan", "kitchen-sink", fmt.Sprintf("fault plan: %s", strings.Join(chaos.PlanNames(), ", ")))
	duration := flag.Duration("duration", 10*time.Second, "fault-schedule window (quiescence checks run after)")
	consensus := flag.String("consensus", "classic", "agreement mode: classic (3f+1) or trusted (2f+1)")
	auth := flag.String("auth", "sig", "agreement authenticator: sig or mac")
	readLeases := flag.Bool("read-leases", true, "enable the lease-anchored local-read fast path")
	persist := flag.Bool("persist", true, "run with durable stores so crash-restarts recover from disk")
	writers := flag.Int("writers", 2, "writer clients (one register each)")
	readers := flag.Int("readers", 2, "reader clients")
	dump := flag.String("dump", "", "directory for the violation report (written only on failure)")
	list := flag.Bool("list", false, "print the generated schedule and exit without running")
	flag.Parse()

	cfg := chaos.Config{
		Seed:       *seed,
		Plan:       *plan,
		Duration:   *duration,
		Consensus:  *consensus,
		Auth:       *auth,
		ReadLeases: *readLeases,
		Writers:    *writers,
		Readers:    *readers,
	}

	if *list {
		n, f := 4, 1
		if *consensus == "trusted" {
			n = 3
		}
		acts, err := chaos.BuildPlan(*plan, *seed, n, f, *duration)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for i, a := range acts {
			fmt.Printf("[%d] %s\n", i, a)
		}
		return
	}

	if *persist {
		dir, err := os.MkdirTemp("", "splitbft-chaos-")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer os.RemoveAll(dir)
		cfg.DataDir = dir
	}

	fmt.Printf("chaos: plan %q seed %d duration %v consensus %s auth %s leases %v persist %v\n",
		cfg.Plan, cfg.Seed, cfg.Duration, cfg.Consensus, cfg.Auth, cfg.ReadLeases, *persist)
	rep, err := chaos.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(2)
	}
	fmt.Print(rep.Dump())
	if !rep.Failed() {
		return
	}
	if *dump != "" {
		if err := os.MkdirAll(*dump, 0o755); err == nil {
			path := filepath.Join(*dump, fmt.Sprintf("chaos-%s-seed%d.txt", rep.Plan, rep.Seed))
			if werr := os.WriteFile(path, []byte(rep.Dump()), 0o644); werr == nil {
				fmt.Fprintf(os.Stderr, "violation report written to %s\n", path)
			}
		}
	}
	os.Exit(1)
}
