// Command splitbft-bench regenerates every table and figure of the paper's
// evaluation (DESIGN.md §4):
//
//	splitbft-bench -exp table1          # fault-model comparison
//	splitbft-bench -exp table2          # TCB sizes (LOC per enclave)
//	splitbft-bench -exp fig3a           # throughput/latency, unbatched
//	splitbft-bench -exp fig3b           # throughput/latency, batched
//	splitbft-bench -exp fig4            # per-compartment ecall latency
//	splitbft-bench -exp auth            # sig-vs-MAC agreement authentication
//	splitbft-bench -exp consensus       # classic-vs-trusted consensus mode
//	splitbft-bench -exp readlease       # local read fast path vs agreement reads
//	splitbft-bench -exp all             # everything
//
// Use -quick for a fast smoke run with fewer client counts and shorter
// measurement windows. With -json <dir>, each experiment additionally
// writes its raw results to <dir>/BENCH_<exp>.json for machine-readable
// perf trajectories.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/splitbft/splitbft/experiments/bench"
	"github.com/splitbft/splitbft/experiments/faultmodel"
	"github.com/splitbft/splitbft/experiments/load"
	"github.com/splitbft/splitbft/experiments/loc"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, fig3a, fig3b, fig4, ablation, pipeline, recovery, auth, consensus, readlease, all")
	quick := flag.Bool("quick", false, "fast smoke run (fewer clients, shorter windows)")
	f := flag.Int("f", 1, "fault threshold for table1")
	root := flag.String("root", ".", "repository root for table2")
	measure := flag.Duration("measure", time.Second, "measurement window per point")
	jsonDir := flag.String("json", "", "directory to write machine-readable BENCH_<exp>.json results into")
	trace := flag.Bool("trace", false, "enable request-lifecycle tracing and print per-stage latency tables (pipeline and readlease experiments)")
	flag.Parse()

	run := func(name string, fn func() error) {
		fmt.Printf("=== %s ===\n\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	writeJSON := func(expName string, v any) error {
		if *jsonDir == "" {
			return nil
		}
		path, err := bench.WriteJSON(*jsonDir, expName, v)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}

	clients := []int{1, 10, 20, 40, 80, 120, 150}
	if *quick {
		clients = []int{1, 10, 40}
		if *measure == time.Second {
			*measure = 400 * time.Millisecond
		}
	}

	all := *exp == "all"
	if all || *exp == "table1" {
		run("Table 1 — fault-model comparison", func() error {
			fmt.Print(faultmodel.FormatTable(faultmodel.Table1(*f)))
			return nil
		})
	}
	if all || *exp == "table2" {
		run("Table 2 — TCB sizes", func() error {
			rows, err := loc.Table2(*root)
			if err != nil {
				return err
			}
			fmt.Print(loc.FormatTable2(rows))
			return nil
		})
	}
	if all || *exp == "fig3a" {
		run("Figure 3(a) — throughput & latency, not batched", func() error {
			series, err := runFigure3(clients, false, *measure)
			if err != nil {
				return err
			}
			return writeJSON("fig3a", series)
		})
	}
	if all || *exp == "fig3b" {
		run("Figure 3(b) — throughput & latency, batched", func() error {
			series, err := runFigure3(clients, true, *measure)
			if err != nil {
				return err
			}
			return writeJSON("fig3b", series)
		})
	}
	if all || *exp == "fig4" {
		run("Figure 4 — ecall latency per compartment", func() error {
			return runFigure4(*measure)
		})
	}
	if all || *exp == "auth" {
		run("Ablation — agreement authentication (sig vs MAC fast path)", func() error {
			authClients := 40
			if *quick {
				authClients = 10
			}
			pts, err := bench.AuthAblation(authClients, *measure)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatAuthAblation(pts))
			return writeJSON("auth", pts)
		})
	}
	if all || *exp == "consensus" {
		run("Ablation — consensus mode (classic vs trusted counter)", func() error {
			cClients := 40
			if *quick {
				cClients = 10
			}
			pts, err := bench.ConsensusAblation(cClients, *measure)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatConsensusAblation(pts))
			return writeJSON("consensus", pts)
		})
	}
	if all || *exp == "readlease" {
		run("Ablation — lease-anchored local reads (90/10 open-loop mix)", func() error {
			cfg := load.ReadLeaseConfig{Trace: *trace}
			if *quick {
				cfg.Rate = 2000
				cfg.Warmup = 400 * time.Millisecond
				cfg.Measure = 1200 * time.Millisecond
			}
			pts, err := load.ReadLeaseAblation(cfg)
			if err != nil {
				return err
			}
			fmt.Print(load.FormatReadLeaseAblation(pts))
			return writeJSON("readlease", pts)
		})
	}
	if all || *exp == "ablation" {
		run("Ablations — transition cost & batch size", func() error {
			tc, err := bench.TransitionCostAblation([]uint64{0, 4000, 8640, 20000, 40000}, 8, *measure)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatTransitionAblation(tc))
			fmt.Println()
			bs, err := bench.BatchSizeAblation([]int{1, 10, 50, 100, 200, 400}, 8, *measure)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatBatchAblation(bs))
			return nil
		})
	}
	if all || *exp == "pipeline" {
		run("Ablation — staged agreement pipeline", func() error {
			pts, err := bench.PipelineAblation(
				[][2]int{{0, 0}, {16, 1}, {16, 8}, {64, 8}}, 40, *measure, *trace)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatPipelineAblation(pts))
			if *trace {
				for _, p := range pts {
					fmt.Printf("\nstage latency breakdown @batch=%d,workers=%d (leader's view):\n",
						p.EcallBatch, p.VerifyWorkers)
					fmt.Print(bench.FormatStages(p.Result.Stages))
				}
			}
			return writeJSON("pipeline", pts)
		})
	}
	if all || *exp == "recovery" {
		run("Ablation — crash recovery (sealed WAL + snapshots)", func() error {
			dir, err := os.MkdirTemp("", "splitbft-recovery-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			ops := 64
			if *quick {
				ops = 24
			}
			res, err := bench.RecoveryAblation(dir, ops)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatRecovery(res))
			return writeJSON("recovery", res)
		})
	}
}

func runFigure3(clients []int, batched bool, measure time.Duration) (map[bench.System][]bench.Result, error) {
	systems := bench.AllSystems()
	if batched {
		systems = []bench.System{bench.SplitKVS, bench.PBFTKVS, bench.SplitBlockchain, bench.PBFTBlockchain}
	}
	series := make(map[bench.System][]bench.Result)
	for _, sys := range systems {
		fmt.Printf("  running %s over %v clients...\n", sys, clients)
		rs, err := bench.Sweep(sys, clients, batched, measure)
		if err != nil {
			return nil, err
		}
		series[sys] = rs
	}
	fmt.Println()
	fmt.Print(bench.FormatFigure3(series, clients, batched))

	ratios := bench.SpeedupVsBaseline(series[bench.SplitKVS], series[bench.PBFTKVS])
	fmt.Printf("\nSplitBFT/PBFT KVS throughput ratio per client count: ")
	for _, r := range ratios {
		fmt.Printf("%.2f ", r)
	}
	fmt.Println()
	if bc, ok := series[bench.SplitBlockchain]; ok {
		ratios = bench.SpeedupVsBaseline(bc, series[bench.PBFTBlockchain])
		fmt.Printf("SplitBFT/PBFT Blockchain throughput ratio per client count: ")
		for _, r := range ratios {
			fmt.Printf("%.2f ", r)
		}
		fmt.Println()
	}
	return series, nil
}

func runFigure4(measure time.Duration) error {
	// Figure 4 uses 40 clients on the KVS, measured on the leader.
	unb, err := bench.Run(bench.RunConfig{System: bench.SplitKVS, Clients: 40, Batched: false, Measure: measure})
	if err != nil {
		return err
	}
	bat, err := bench.Run(bench.RunConfig{System: bench.SplitKVS, Clients: 40, Batched: true, Measure: measure})
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatFigure4(unb, bat))
	return nil
}
