// Command tcbcount regenerates Table 2 of the paper over this repository:
// lines of code per trusted compartment, the untrusted environment, and the
// trusted-counter comparison point. It also prints a per-package breakdown
// (the tokei-style inventory).
//
//	tcbcount [-root <repo>] [-packages]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/splitbft/splitbft/experiments/loc"
)

func main() {
	root := flag.String("root", ".", "repository root")
	packages := flag.Bool("packages", false, "also print the per-package breakdown")
	flag.Parse()

	rows, err := loc.Table2(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcbcount: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("Table 2 — TCB sizes (code lines, tests excluded)")
	fmt.Println()
	fmt.Print(loc.FormatTable2(rows))

	if *packages {
		bd, err := loc.PackageBreakdown(*root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcbcount: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("\nPer-package line counts (code/comment/blank):")
		for _, pkg := range loc.SortedPackages(bd) {
			c := bd[pkg]
			fmt.Printf("  %-40s %6d %6d %6d\n", pkg, c.Code, c.Comments, c.Blanks)
		}
	}
}
