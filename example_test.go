package splitbft_test

import (
	"fmt"
	"log"

	"github.com/splitbft/splitbft"
)

// Example is the library quickstart: a four-replica confidential SplitBFT
// deployment in one process. Each replica runs three compartment enclaves
// (Preparation, Confirmation, Execution); the client attests every
// Execution enclave, provisions a session key, and invokes end-to-end
// encrypted operations.
func Example() {
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithConfidential(),
		splitbft.WithBatchSize(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, err := cluster.NewClient(100)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Attest(); err != nil {
		log.Fatal(err)
	}

	res, err := client.Put("balance", []byte("42"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PUT -> %s\n", res)

	res, err = client.Get("balance")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET -> %s\n", res)

	// Output:
	// PUT -> OK
	// GET -> 42
}
