package splitbft_test

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/splitbft/splitbft"
)

func TestConsensusModeOptionValidation(t *testing.T) {
	if _, err := splitbft.NewCluster(3, splitbft.WithConsensusMode("hybrid-but-wrong")); err == nil {
		t.Fatal("unknown consensus mode accepted")
	}
	// Trusted groups are 2f+1: a 3f+1 group is a configuration error, not
	// a silently over-provisioned deployment.
	if _, err := splitbft.NewCluster(4, splitbft.WithConsensusMode("trusted")); err == nil {
		t.Fatal("trusted mode accepted a 3f+1 group")
	}
	// And the dual: classic consensus cannot run on 2f+1 replicas.
	if _, err := splitbft.NewCluster(3, splitbft.WithConsensusMode("classic")); err == nil {
		t.Fatal("classic mode accepted a 2f+1 group")
	}
	if _, err := splitbft.NewCluster(3, splitbft.WithConsensusMode("trusted"), splitbft.WithCommitRule("eventually")); err == nil {
		t.Fatal("unknown commit rule accepted")
	}
}

// TestTrustedModeFacadeRoundTrip drives the 2f+1 trusted-counter mode over
// the public surface in both auth modes and checks the crypto profile:
// the leader creates counter attestations, every replica verifies them,
// and the cluster stays in agreement.
func TestTrustedModeFacadeRoundTrip(t *testing.T) {
	for _, auth := range []string{"sig", "mac"} {
		t.Run(auth, func(t *testing.T) {
			cluster, err := splitbft.NewCluster(3,
				splitbft.WithConsensusMode("trusted"),
				splitbft.WithAgreementAuth(auth),
				splitbft.WithBatchSize(1),
				splitbft.WithNetworkSeed(17),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()
			if cluster.N() != 3 || cluster.F() != 1 {
				t.Fatalf("got n=%d f=%d, want n=3 f=1", cluster.N(), cluster.F())
			}
			cl, err := cluster.NewClient(100, splitbft.WithInvokeTimeout(20*time.Second))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if _, err := cl.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
			waitForAgreement(t, cluster, []int{0, 1, 2})
			if cs := cluster.Node(0).CryptoStats(); cs.CounterCreates == 0 {
				t.Fatal("trusted-mode leader created no counter attestations")
			}
			for id := 0; id < 3; id++ {
				if cs := cluster.Node(id).CryptoStats(); cs.CounterVerifies == 0 {
					t.Fatalf("replica %d verified no counter attestations", id)
				}
			}
		})
	}
}

// TestCommitRuleFull: the conservative dual-commit rule waits for 2f+1
// matching replies instead of the default f+1 — with all replicas up it
// must still complete.
func TestCommitRuleFull(t *testing.T) {
	cluster, err := splitbft.NewCluster(3,
		splitbft.WithConsensusMode("trusted"),
		splitbft.WithCommitRule("full"),
		splitbft.WithBatchSize(1),
		splitbft.WithNetworkSeed(19),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cl, err := cluster.NewClient(100, splitbft.WithInvokeTimeout(20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put("k", []byte("v")); err != nil {
		t.Fatalf("full-commit PUT: %v", err)
	}
	res, err := cl.Get("k")
	if err != nil || string(res) != "v" {
		t.Fatalf("full-commit GET = %q, %v", res, err)
	}
}

// runConsensusLedger replays the fixed seeded workload from the auth-mode
// parity suite — crash/restart of one replica and a forced view change
// included — on a blockchain cluster in the given consensus mode, and
// returns the surviving replicas' ledger snapshots. Classic runs 3f+1,
// trusted 2f+1; the committed ledger must not care.
func runConsensusLedger(t *testing.T, mode string) [][]byte {
	t.Helper()
	n := 4
	if mode == "trusted" {
		n = 3
	}
	dir := t.TempDir()
	cluster, err := splitbft.NewCluster(n,
		splitbft.WithConsensusMode(mode),
		splitbft.WithBlockchain(4),
		splitbft.WithPersistence(dir),
		splitbft.WithKeySeed([]byte("consensus-parity-seed")),
		splitbft.WithBatchSize(1),
		splitbft.WithCheckpointInterval(4),
		splitbft.WithRequestTimeout(300*time.Millisecond),
		splitbft.WithNetworkSeed(37),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cl, err := cluster.NewClient(700, splitbft.WithInvokeTimeout(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tx := func(i int) {
		t.Helper()
		if _, err := cl.Invoke([]byte(fmt.Sprintf("tx-%02d", i))); err != nil {
			t.Fatalf("tx %d (%s mode): %v", i, mode, err)
		}
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	for i := 0; i < 8; i++ {
		tx(i)
	}
	waitForAgreement(t, cluster, all)

	// Crash the highest replica mid-run, commit more, restart: trusted-mode
	// recovery must restore the sealed counter position alongside the WAL
	// so the replica keeps verifying (and, as a future primary, creating)
	// gap-free attestations.
	cluster.CrashNode(n - 1)
	for i := 8; i < 12; i++ {
		tx(i)
	}
	if err := cluster.RestartNode(n - 1); err != nil {
		t.Fatalf("restart (%s mode): %v", mode, err)
	}
	for i := 12; i < 16; i++ {
		tx(i)
	}
	waitForAgreement(t, cluster, all)

	// Forced view change: partition the primary. In trusted mode the
	// NewView must carry a fresh counter base and counter-attested
	// re-issues or no correct replica would follow it.
	cluster.Partition(0)
	for i := 16; i < 20; i++ {
		tx(i)
	}
	waitForAgreement(t, cluster, all[1:])

	var snaps [][]byte
	for _, id := range all[1:] {
		bc := cluster.Node(id).App().(*splitbft.Blockchain)
		if err := splitbft.VerifyChain(bc.Headers()); err != nil {
			t.Fatalf("replica %d chain (%s mode): %v", id, mode, err)
		}
		snaps = append(snaps, bc.Snapshot())
	}
	return snaps
}

// TestConsensusModeLedgerParity is the acceptance check for the trusted
// fast path: the same seeded workload — crash/restart and a forced view
// change included — must produce ledgers byte-identical across replicas
// AND byte-identical between classic and trusted consensus. Dropping the
// Prepare phase changes how agreement is proven, never what is agreed.
func TestConsensusModeLedgerParity(t *testing.T) {
	trusted := runConsensusLedger(t, "trusted")
	classic := runConsensusLedger(t, "classic")
	for i := 1; i < len(trusted); i++ {
		if !bytes.Equal(trusted[i], trusted[0]) {
			t.Fatalf("trusted-mode replicas diverged: snapshot %d != snapshot 0", i)
		}
	}
	if !bytes.Equal(trusted[0], classic[0]) {
		t.Fatal("trusted-mode ledger differs from classic-mode ledger on the same workload")
	}
}

// TestTrustedModeTCP runs the 2f+1 trusted group over the real TCP
// transport: three in-process nodes on loopback listeners, a client
// reaching them the way cmd/splitbft-client does, MAC agreement auth on
// top to cover the trusted+MAC composition over the wire.
func TestTrustedModeTCP(t *testing.T) {
	addrs := make([]string, 3)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	seed := []byte("trusted-tcp-seed")
	opts := func(extra ...splitbft.Option) []splitbft.Option {
		return append([]splitbft.Option{
			splitbft.WithConsensusMode("trusted"),
			splitbft.WithAgreementAuth("mac"),
			splitbft.WithTransportTCP(addrs...),
			splitbft.WithKeySeed(seed),
			splitbft.WithBatchSize(1),
		}, extra...)
	}
	var nodes []*splitbft.Node
	for i := 0; i < 3; i++ {
		node, err := splitbft.NewNode(uint32(i), opts()...)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		defer node.Stop()
		nodes = append(nodes, node)
	}
	for i, node := range nodes {
		if err := node.Start(); err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
	}
	cl, err := splitbft.NewClient(100, opts(splitbft.WithInvokeTimeout(30*time.Second))...)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 5; i++ {
		if _, err := cl.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("op %d over TCP: %v", i, err)
		}
	}
	res, err := cl.Get("k4")
	if err != nil || string(res) != "v" {
		t.Fatalf("GET over TCP = %q, %v", res, err)
	}
	deadline := time.Now().Add(15 * time.Second)
	ref := nodes[0].App()
	for time.Now().Before(deadline) {
		if nodes[1].App().Digest() == ref.Digest() && nodes[2].App().Digest() == ref.Digest() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("TCP trusted-mode replicas diverged")
}
