#!/usr/bin/env bash
# Crash-restart smoke test over the real TCP binaries:
#
#   1. start a cluster with sealed durability directories
#   2. commit state through splitbft-client
#   3. SIGKILL one replica, commit more state without it
#   4. restart the killed replica over its data directory
#   5. stop a *different* replica, so further progress requires the
#      restarted one to participate in the agreement quorum — a successful
#      put/get then proves it recovered and rejoined.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
BIN="$WORK/bin"
DATA="$WORK/data"
mkdir -p "$BIN" "$DATA"
SECRET="smoke-secret"
# SPLITBFT_AUTH=mac runs the same scenario on the MAC-authenticated
# agreement fast path (pairwise keys derived deterministically across the
# separate processes from -secret).
AUTH="${SPLITBFT_AUTH:-sig}"
# SPLITBFT_CONSENSUS=trusted runs the counter-backed 2f+1 mode: a
# three-replica group whose recovery must also restore the sealed trusted
# counter position before rejoining.
CONSENSUS="${SPLITBFT_CONSENSUS:-classic}"

if [ "$CONSENSUS" = trusted ]; then
    N=3
    PEERS="127.0.0.1:17400,127.0.0.1:17401,127.0.0.1:17402"
else
    N=4
    PEERS="127.0.0.1:17400,127.0.0.1:17401,127.0.0.1:17402,127.0.0.1:17403"
fi
# The crash victim and the later-stopped replica: with both out, progress
# needs the recovered victim back in the quorum for either group shape.
KILL_ID=$((N - 2))
STOP_ID=$((N - 1))
declare -a PIDS
for ((id = 0; id < N; id++)); do PIDS[$id]=0; done

cleanup() {
    for pid in "${PIDS[@]}"; do
        [ "$pid" != 0 ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$BIN/splitbft-replica" ./cmd/splitbft-replica
go build -o "$BIN/splitbft-client" ./cmd/splitbft-client

start_replica() {
    local id=$1
    # -confidential=false: the CLI client attests against all n Execution
    # enclaves before invoking, which cannot complete while one replica is
    # down — and this test runs most of its ops exactly then.
    "$BIN/splitbft-replica" -id "$id" -n "$N" -f 1 \
        -peers "$PEERS" -secret "$SECRET" -confidential=false \
        -auth "$AUTH" -consensus "$CONSENSUS" \
        -data-dir "$DATA/r$id" -stats 0 \
        -metrics-addr "127.0.0.1:$((17500 + id))" \
        >"$WORK/replica-$id.log" 2>&1 &
    PIDS[$id]=$!
    disown "${PIDS[$id]}" # keep bash quiet when we SIGKILL it
}

client() {
    "$BIN/splitbft-client" -id 100 -n "$N" -f 1 \
        -replicas "$PEERS" -secret "$SECRET" -confidential=false \
        -consensus "$CONSENSUS" -timeout 30s "$@"
}

# wait_healthz <id> <want-status> polls a replica's /healthz until it
# answers with the wanted HTTP status or the deadline passes.
wait_healthz() {
    local id=$1 want=$2
    for _ in $(seq 1 80); do
        local got
        got=$(curl -s -o /dev/null -w '%{http_code}' \
            "http://127.0.0.1:$((17500 + id))/healthz" || true)
        [ "$got" = "$want" ] && return 0
        sleep 0.25
    done
    echo "FAIL: replica $id /healthz never reached $want (last: ${got:-none})"
    curl -s "http://127.0.0.1:$((17500 + id))/healthz" || true
    exit 1
}

echo "== starting $N replicas with sealed durability (auth=$AUTH, consensus=$CONSENSUS)"
for ((id = 0; id < N; id++)); do start_replica "$id"; done
sleep 1

echo "== committing state"
client put alpha one
client put beta two

echo "== scraping the introspection endpoint of replica 0"
wait_healthz 0 200
METRICS=$(curl -s "http://127.0.0.1:17500/metrics")
echo "$METRICS" | grep -q '^splitbft_executed_ops_total [1-9]' || {
    echo "FAIL: /metrics missing a non-zero splitbft_executed_ops_total"
    echo "$METRICS" | head -20
    exit 1
}
echo "$METRICS" | grep -q 'splitbft_wal_fsyncs_total{compartment="execution"}' || {
    echo "FAIL: /metrics missing the per-compartment WAL series"
    exit 1
}

echo "== SIGKILL replica $KILL_ID"
kill -9 "${PIDS[$KILL_ID]}"
PIDS[$KILL_ID]=0

echo "== committing during the outage (quorum of survivors)"
client put gamma three

echo "== survivor's /healthz must flip unhealthy while replica $KILL_ID is down"
wait_healthz 0 503
curl -s "http://127.0.0.1:17500/healthz" \
    | grep -q "\"id\":$KILL_ID,\"reachable\":false" || {
    echo "FAIL: /healthz does not name replica $KILL_ID as unreachable"
    curl -s "http://127.0.0.1:17500/healthz"
    exit 1
}

echo "== restarting replica $KILL_ID over its data directory"
start_replica "$KILL_ID"
sleep 1
grep -q "recovered" "$WORK/replica-$KILL_ID.log" || {
    echo "FAIL: restarted replica did not report recovery"
    cat "$WORK/replica-$KILL_ID.log"
    exit 1
}

echo "== survivor's /healthz must recover once replica $KILL_ID rejoins"
wait_healthz 0 200

echo "== stopping replica $STOP_ID: the quorum now needs the restarted replica"
kill "${PIDS[$STOP_ID]}"
PIDS[$STOP_ID]=0
sleep 1

echo "== asserting convergence through the recovered replica"
OUT=$(client put delta four)
echo "$OUT"
OUT=$(client get alpha)
echo "get alpha -> $OUT"
case "$OUT" in
    one*) ;;
    *) echo "FAIL: pre-crash state lost (got: $OUT)"; exit 1 ;;
esac

echo "== crash-restart smoke (auth=$AUTH, consensus=$CONSENSUS): OK"
