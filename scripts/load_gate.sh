#!/usr/bin/env bash
# Load-regression gate: replay the committed load calibration (one sig
# run, one MAC run) with the open-loop generator and compare each fresh
# result against its trajectory point in perf/ with a noise band.
#
# The gate is noise-aware by construction: splitbft-load -compare only
# enforces the thresholds when the fresh run is genuinely comparable to
# the committed point — same schema, same calibration (mode, arrival,
# target rate, payload, in-flight bound), same workload configuration and
# same machine class (CPU count, GOMAXPROCS, OS/arch). Anything else
# downgrades to an advisory report that is printed but cannot fail CI, so
# a runner-class change never masquerades as a regression. Re-seed with
# SPLITBFT_LOAD_SEED_TRAJECTORY=1 (writes perf/ directly) after an
# intentional perf change, then commit the updated JSONs.
set -euo pipefail

cd "$(dirname "$0")/.."

BAND="${SPLITBFT_LOAD_BAND:-0.15}"
DURATION="${SPLITBFT_LOAD_DURATION:-6s}"
WARMUP="${SPLITBFT_LOAD_WARMUP:-1s}"
OUT="${SPLITBFT_LOAD_OUT:-load-results}"
mkdir -p "$OUT"

# CALIBRATION must stay in lockstep with the committed perf/BENCH_load_*
# points: changing any of these fields makes every comparison advisory
# until the trajectory is re-seeded.
CALIBRATION=(
    -mode open -arrival fixed -rate 250 -inflight 64 -queue 256
    -payload 10 -clients 4 -batch 1 -ecall-batch 16 -verify-workers 1
)

for auth in sig mac; do
    echo "== load gate: auth=$auth (band ±$(awk "BEGIN{print $BAND*100}")%)"
    if [ "${SPLITBFT_LOAD_SEED_TRAJECTORY:-0}" = 1 ]; then
        go run ./cmd/splitbft-load "${CALIBRATION[@]}" -auth "$auth" \
            -duration "$DURATION" -warmup "$WARMUP" \
            -json "perf/BENCH_load_$auth.json"
    else
        go run ./cmd/splitbft-load "${CALIBRATION[@]}" -auth "$auth" \
            -duration "$DURATION" -warmup "$WARMUP" \
            -json "$OUT/BENCH_load_$auth.json" \
            -compare "perf/BENCH_load_$auth.json" -band "$BAND"
    fi
done

echo "== load gate: OK"
