#!/usr/bin/env bash
# Load-regression gate: replay the committed load calibration (one sig
# run, one MAC run) with the open-loop generator and compare each fresh
# result against its trajectory point in perf/ with a noise band.
#
# The gate is noise-aware by construction: splitbft-load -compare only
# enforces the thresholds when the fresh run is genuinely comparable to
# the committed point — same schema, same calibration (mode, arrival,
# target rate, payload, in-flight bound), same workload configuration and
# same machine class (CPU count, GOMAXPROCS, OS/arch). Anything else
# downgrades to an advisory report that is printed but cannot fail CI, so
# a runner-class change never masquerades as a regression. Re-seed with
# SPLITBFT_LOAD_SEED_TRAJECTORY=1 (writes perf/ directly) after an
# intentional perf change, then commit the updated JSONs.
set -euo pipefail

cd "$(dirname "$0")/.."

BAND="${SPLITBFT_LOAD_BAND:-0.15}"
DURATION="${SPLITBFT_LOAD_DURATION:-6s}"
WARMUP="${SPLITBFT_LOAD_WARMUP:-1s}"
OUT="${SPLITBFT_LOAD_OUT:-load-results}"
mkdir -p "$OUT"

# CALIBRATION must stay in lockstep with the committed perf/BENCH_load_*
# points: changing any of these fields makes every comparison advisory
# until the trajectory is re-seeded.
CALIBRATION=(
    -mode open -arrival fixed -rate 250 -inflight 64 -queue 256
    -payload 10 -clients 4 -batch 1 -ecall-batch 16 -verify-workers 1
)

run_leg() {
    local name=$1
    shift
    echo "== load gate: $name (band ±$(awk "BEGIN{print $BAND*100}")%)"
    if [ "${SPLITBFT_LOAD_SEED_TRAJECTORY:-0}" = 1 ]; then
        go run ./cmd/splitbft-load "${CALIBRATION[@]}" "$@" \
            -duration "$DURATION" -warmup "$WARMUP" \
            -json "perf/BENCH_load_$name.json"
    else
        go run ./cmd/splitbft-load "${CALIBRATION[@]}" "$@" \
            -duration "$DURATION" -warmup "$WARMUP" \
            -json "$OUT/BENCH_load_$name.json" \
            -compare "perf/BENCH_load_$name.json" -band "$BAND"
    fi
}

# One retry per leg: on a small box a background scheduling burst can put
# 100ms+ on the p99 of an otherwise-quiet run, and with a few thousand
# samples those ops ARE the p99. A transient burst passes the re-run; a
# sustained queueing regression fails both attempts.
gate_leg() {
    run_leg "$@" && return 0
    echo "== load gate: $1 leg failed once — retrying to rule out transient tail noise"
    run_leg "$@"
}

gate_leg sig -auth sig
gate_leg mac -auth mac
# The trusted-consensus leg rides the MAC fast path so its point differs
# from BENCH_load_mac.json only in the consensus mode (and the 2f+1 group
# shape). Its calibration is new: until a trajectory point from the same
# machine class is committed, the comparison stays advisory by design.
gate_leg trusted -auth mac -consensus trusted
# The read-mix leg offers the committed 250 ops/s as a 90/10 GET/PUT mix
# with the lease-anchored local read fast path on: it gates the read
# path's end-to-end latency (the per-class split is in the JSON) and
# catches a fast path that silently stops engaging — leased local reads
# falling back to agreement shows up as a p99 blowout at this rate.
gate_leg readmix -auth sig -read-frac 0.9 -read-leases

# The observability-overhead leg replays the sig calibration with the
# metrics registry and request tracing enabled (-stage-breakdown) and
# gates the instrumented run against the SAME committed sig point: the
# registry is pull-only and tracing stamps are a mutex-guarded map write
# per stage, so the overhead must stay inside the noise band of the
# uninstrumented trajectory. Result.Stages is deliberately not part of
# the workload identity — that is what keeps this a hard comparison
# rather than an advisory one. Never seeds: the sig leg owns the point.
obs_leg() {
    go run ./cmd/splitbft-load "${CALIBRATION[@]}" -auth sig -stage-breakdown \
        -duration "$DURATION" -warmup "$WARMUP" \
        -json "$OUT/BENCH_load_obs.json" \
        -compare "perf/BENCH_load_sig.json" -band "$BAND"
}
if [ "${SPLITBFT_LOAD_SEED_TRAJECTORY:-0}" != 1 ]; then
    echo "== load gate: obs (observability overhead vs committed sig point, band ±$(awk "BEGIN{print $BAND*100}")%)"
    obs_leg || {
        echo "== load gate: obs leg failed once — retrying to rule out transient tail noise"
        obs_leg
    }
fi

echo "== load gate: OK"
