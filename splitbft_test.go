package splitbft_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/splitbft/splitbft"
)

// waitForAgreement polls until every listed node's application digest
// matches node 0's, or the deadline passes.
func waitForAgreement(t *testing.T, cluster *splitbft.Cluster, ids []int) {
	t.Helper()
	ref := cluster.Node(ids[0]).App()
	// Generous: under `go test ./...` these tests share the machine with
	// the CPU-heavy benchmark packages, and the simulated
	// enclave-transition costs spin-wait. A healthy run returns in
	// milliseconds.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		agree := true
		for _, id := range ids[1:] {
			if cluster.Node(id).App().Digest() != ref.Digest() {
				agree = false
				break
			}
		}
		if agree {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, id := range ids[1:] {
		if cluster.Node(id).App().Digest() != ref.Digest() {
			t.Fatalf("replica %d state diverged from replica %d", id, ids[0])
		}
	}
}

// TestClusterRoundTrip is the public-API acceptance path: cluster up →
// attest → confidential PUT/GET → crash one Confirmation enclave → the
// service stays live and the healthy replicas stay in agreement.
func TestClusterRoundTrip(t *testing.T) {
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithConfidential(),
		splitbft.WithBatchSize(1),
		splitbft.WithNetworkSeed(11),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.N() != 4 || cluster.F() != 1 {
		t.Fatalf("got n=%d f=%d, want n=4 f=1", cluster.N(), cluster.F())
	}

	cl, err := cluster.NewClient(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Attest(); err != nil {
		t.Fatalf("attestation: %v", err)
	}
	if _, err := cl.Put("balance", []byte("42")); err != nil {
		t.Fatalf("PUT: %v", err)
	}
	res, err := cl.Get("balance")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	if string(res) != "42" {
		t.Fatalf("GET = %q, want 42", res)
	}

	// One Confirmation enclave down is within every compartment's fault
	// budget: commits still reach the 2f+1 quorum on the other replicas.
	cluster.Node(1).CrashEnclave(splitbft.RoleConfirmation)

	if _, err := cl.Put("balance", []byte("43")); err != nil {
		t.Fatalf("PUT after Confirmation-enclave crash: %v", err)
	}
	res, err = cl.Get("balance")
	if err != nil {
		t.Fatalf("GET after Confirmation-enclave crash: %v", err)
	}
	if string(res) != "43" {
		t.Fatalf("GET after crash = %q, want 43", res)
	}
	waitForAgreement(t, cluster, []int{0, 1, 2, 3})
}

// TestClusterPartitionViewChange drives the other fault-injection handle:
// partitioning the primary forces a view change; committed state survives
// and the cluster accepts writes again after healing.
func TestClusterPartitionViewChange(t *testing.T) {
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithBatchSize(1),
		splitbft.WithRequestTimeout(300*time.Millisecond),
		splitbft.WithNetworkSeed(12),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	cl, err := cluster.NewClient(100, splitbft.WithInvokeTimeout(20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put("account", []byte("100")); err != nil {
		t.Fatalf("PUT: %v", err)
	}

	cluster.Partition(0) // cut the view-0 primary off
	if _, err := cl.Put("account", []byte("200")); err != nil {
		t.Fatalf("PUT across view change: %v", err)
	}
	res, err := cl.Get("account")
	if err != nil {
		t.Fatalf("GET after view change: %v", err)
	}
	if string(res) != "200" {
		t.Fatalf("GET after view change = %q, want 200", res)
	}
	waitForAgreement(t, cluster, []int{1, 2, 3})

	cluster.Heal()
	if _, err := cl.Put("account", []byte("300")); err != nil {
		t.Fatalf("PUT after heal: %v", err)
	}
}

// TestBlockchainCluster checks the ledger application end to end on the
// facade, including sealed persistence through the Execution enclave.
func TestBlockchainCluster(t *testing.T) {
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithBlockchain(splitbft.DefaultBlockSize),
		splitbft.WithConfidential(),
		splitbft.WithBatchSize(1),
		splitbft.WithNetworkSeed(13),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	cl, err := cluster.NewClient(200)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Attest(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*splitbft.DefaultBlockSize; i++ {
		if _, err := cl.Invoke([]byte{byte('a' + i)}); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	waitForAgreement(t, cluster, []int{0, 1, 2, 3})
	bc := cluster.Node(0).App().(*splitbft.Blockchain)
	if bc.Height() != 2 {
		t.Fatalf("height = %d, want 2", bc.Height())
	}
	if err := splitbft.VerifyChain(bc.Headers()); err != nil {
		t.Fatalf("chain: %v", err)
	}
	if got := cluster.Node(0).PersistedBlocks(); got != 2 {
		t.Fatalf("persisted %d sealed blocks, want 2", got)
	}
}

// TestConstructorValidation pins the facade's error behavior.
func TestConstructorValidation(t *testing.T) {
	if _, err := splitbft.NewCluster(5); err == nil {
		t.Error("NewCluster(5) accepted a group size that is not 3f+1")
	}
	if _, err := splitbft.NewCluster(4, splitbft.WithFaults(2)); err == nil {
		t.Error("NewCluster(4, WithFaults(2)) accepted an inconsistent fault threshold")
	}
	if _, err := splitbft.NewNode(0); err == nil {
		t.Error("NewNode without a transport succeeded")
	}
	if _, err := splitbft.NewNode(0, splitbft.WithTransportTCP(":1", ":2", ":3", ":4")); err == nil {
		t.Error("TCP NewNode without WithKeySeed succeeded")
	}
	if _, err := splitbft.NewClient(9, splitbft.WithTransportTCP(":1", ":2", ":3", ":4")); err == nil {
		t.Error("TCP NewClient without WithKeySeed succeeded")
	}
	if _, err := splitbft.NewNode(7, splitbft.WithTransportTCP(":1", ":2", ":3", ":4"), splitbft.WithKeySeed([]byte("s"))); err == nil {
		t.Error("NewNode accepted an out-of-range replica ID")
	}
}

// TestClusterGuards pins the misuse guards: duplicate client IDs are
// rejected (a duplicate would hijack the first client's endpoint on the
// simulated network), and a stopped node refuses to restart (its broker
// threads terminate permanently).
func TestClusterGuards(t *testing.T) {
	cluster, err := splitbft.NewCluster(4, splitbft.WithBatchSize(1), splitbft.WithNetworkSeed(14))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	if _, err := cluster.NewClient(100); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.NewClient(100); err == nil {
		t.Error("duplicate client ID accepted — it would hijack the first client's replies")
	}

	node := cluster.Node(3)
	node.Stop()
	if err := node.Start(); err == nil {
		t.Error("Start after Stop succeeded — the node would silently drop all messages")
	}
}

// TestPublicSurfaceImports is the in-repo guard behind the CI check: the
// cmd/ binaries and examples/ are the library's consumers, so they must
// compile against the public splitbft surface only — no internal/
// packages.
func TestPublicSurfaceImports(t *testing.T) {
	fset := token.NewFileSet()
	for _, root := range []string{"cmd", "examples"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if strings.Contains(p, "/internal/") || strings.HasSuffix(p, "/internal") {
					t.Errorf("%s imports %s — cmd/ and examples/ must use only the public splitbft surface", path, p)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
