package splitbft_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/splitbft/splitbft"
)

func TestAgreementAuthOptionValidation(t *testing.T) {
	_, err := splitbft.NewCluster(4, splitbft.WithAgreementAuth("hmac-but-wrong"))
	if err == nil {
		t.Fatal("unknown agreement auth mode accepted")
	}
}

// TestMACModeFacadeRoundTrip drives the public surface in MAC mode and
// checks the crypto profile: agreement traffic runs on HMACs, with the
// Ed25519 verify load of the fault-free normal case gone.
func TestMACModeFacadeRoundTrip(t *testing.T) {
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithAgreementAuth("mac"),
		splitbft.WithBatchSize(1),
		splitbft.WithNetworkSeed(11),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cl, err := cluster.NewClient(100, splitbft.WithInvokeTimeout(20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := cl.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	waitForAgreement(t, cluster, []int{0, 1, 2, 3})
	cs := cluster.Node(0).CryptoStats()
	if cs.MACVerifies == 0 {
		t.Fatal("MAC mode performed no agreement-MAC verifications")
	}
	if cs.SigVerifies != 0 {
		t.Fatalf("fault-free MAC-mode run performed %d Ed25519 verifications", cs.SigVerifies)
	}
}

// runCrashRestartLedger replays a fixed seeded workload — including a
// crash/restart of one replica and a forced view change — on a blockchain
// cluster and returns the surviving replicas' ledger snapshots. Used to
// pin MAC-mode ledgers byte-identical to sig-mode ones.
func runCrashRestartLedger(t *testing.T, mode string) [][]byte {
	t.Helper()
	dir := t.TempDir()
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithAgreementAuth(mode),
		splitbft.WithBlockchain(4),
		splitbft.WithPersistence(dir),
		splitbft.WithKeySeed([]byte("authmode-parity-seed")),
		splitbft.WithBatchSize(1),
		splitbft.WithCheckpointInterval(4),
		splitbft.WithRequestTimeout(300*time.Millisecond),
		splitbft.WithNetworkSeed(31),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cl, err := cluster.NewClient(700, splitbft.WithInvokeTimeout(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tx := func(i int) {
		t.Helper()
		if _, err := cl.Invoke([]byte(fmt.Sprintf("tx-%02d", i))); err != nil {
			t.Fatalf("tx %d (%s mode): %v", i, mode, err)
		}
	}
	for i := 0; i < 8; i++ {
		tx(i)
	}
	waitForAgreement(t, cluster, []int{0, 1, 2, 3})

	// Crash replica 3 mid-run, commit more, restart: recovery must work
	// under MAC-authenticated WAL contents too.
	cluster.CrashNode(3)
	for i := 8; i < 12; i++ {
		tx(i)
	}
	if err := cluster.RestartNode(3); err != nil {
		t.Fatalf("restart (%s mode): %v", mode, err)
	}
	for i := 12; i < 16; i++ {
		tx(i)
	}
	waitForAgreement(t, cluster, []int{0, 1, 2, 3})

	// Forced view change at a quiescent point: progress needs the
	// recovered replica in the quorum, and in MAC mode the ViewChange
	// certificates are single enclave-signed claims.
	cluster.Partition(0)
	for i := 16; i < 20; i++ {
		tx(i)
	}
	waitForAgreement(t, cluster, []int{1, 2, 3})

	var snaps [][]byte
	for _, id := range []int{1, 2, 3} {
		bc := cluster.Node(id).App().(*splitbft.Blockchain)
		if err := splitbft.VerifyChain(bc.Headers()); err != nil {
			t.Fatalf("replica %d chain (%s mode): %v", id, mode, err)
		}
		snaps = append(snaps, bc.Snapshot())
	}
	return snaps
}

// TestAuthModeLedgerParity is the acceptance check for the MAC fast path:
// the same seeded workload — crash/restart and a forced view change
// included — must produce ledgers byte-identical across replicas AND
// byte-identical between sig and MAC modes. Authentication is transport
// armor; it must never touch agreed bytes.
func TestAuthModeLedgerParity(t *testing.T) {
	mac := runCrashRestartLedger(t, "mac")
	sig := runCrashRestartLedger(t, "sig")
	for i := 1; i < len(mac); i++ {
		if !bytes.Equal(mac[i], mac[0]) {
			t.Fatalf("MAC-mode replicas diverged: snapshot %d != snapshot 0", i)
		}
	}
	if !bytes.Equal(mac[0], sig[0]) {
		t.Fatal("MAC-mode ledger differs from sig-mode ledger on the same workload")
	}
}

// TestIdleClusterRejoinNudge: a replica that crashes, misses committed
// state, and restarts into an otherwise idle cluster must close its
// outage gap without any client traffic — the broker-tick StateProbe asks
// the peers directly (ROADMAP item "idle-cluster rejoin").
func TestIdleClusterRejoinNudge(t *testing.T) {
	dir := t.TempDir()
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithKeySeed([]byte("rejoin-nudge-seed")),
		splitbft.WithPersistence(dir),
		splitbft.WithBatchSize(1),
		splitbft.WithCheckpointInterval(4),
		splitbft.WithRequestTimeout(200*time.Millisecond),
		splitbft.WithNetworkSeed(41),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cl, err := cluster.NewClient(100, splitbft.WithInvokeTimeout(20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	put := func(i int) {
		t.Helper()
		if _, err := cl.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	for i := 0; i < 8; i++ {
		put(i)
	}
	waitForAgreement(t, cluster, []int{0, 1, 2, 3})

	// Crash replica 3, commit past the next checkpoint boundary without
	// it, then go quiet BEFORE restarting: from here on no client traffic
	// flows, so only the rejoin nudge can close the gap.
	cluster.CrashNode(3)
	for i := 8; i < 16; i++ {
		put(i)
	}
	waitForAgreement(t, cluster, []int{0, 1, 2})
	if err := cluster.RestartNode(3); err != nil {
		t.Fatalf("restart: %v", err)
	}

	ref := cluster.Node(0).App().Digest()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cluster.Node(3).App().Digest() == ref {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("recovered replica did not catch up on an idle cluster (rejoin nudge failed)")
}

// TestIdleClusterSubCheckpointTail: like the rejoin nudge above, but the
// outage gap is SMALLER than one checkpoint interval, so no checkpoint
// newer than the crashed replica's state ever becomes stable and a
// snapshot transfer cannot close it. The StateProbe answer path must close
// the tail anyway: peers' Confirmation compartments re-send their Commits
// for the gap slots and the prober fetches the missing bodies over
// BatchFetch/BatchReply — all without client traffic (ROADMAP carry-over
// "sub-checkpoint outage tails").
func TestIdleClusterSubCheckpointTail(t *testing.T) {
	for _, mode := range []string{"sig", "mac"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			cluster, err := splitbft.NewCluster(4,
				splitbft.WithAgreementAuth(mode),
				splitbft.WithKeySeed([]byte("subckpt-tail-seed")),
				splitbft.WithPersistence(dir),
				splitbft.WithBatchSize(1),
				splitbft.WithCheckpointInterval(8),
				splitbft.WithRequestTimeout(200*time.Millisecond),
				splitbft.WithNetworkSeed(43),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()
			cl, err := cluster.NewClient(100, splitbft.WithInvokeTimeout(20*time.Second))
			if err != nil {
				t.Fatal(err)
			}
			put := func(i int) {
				t.Helper()
				if _, err := cl.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
			// Reach the checkpoint boundary at seq 8 so it is stable
			// everywhere, including the replica about to crash.
			for i := 0; i < 8; i++ {
				put(i)
			}
			waitForAgreement(t, cluster, []int{0, 1, 2, 3})

			// Crash replica 3 and commit a tail of 3 ops — well short of
			// the next checkpoint boundary at seq 16 — then go quiet
			// BEFORE restarting: no further checkpoint will stabilize and
			// no client traffic flows, so only the probe-driven Commit
			// resend can close the gap.
			cluster.CrashNode(3)
			for i := 8; i < 11; i++ {
				put(i)
			}
			waitForAgreement(t, cluster, []int{0, 1, 2})
			if err := cluster.RestartNode(3); err != nil {
				t.Fatalf("restart: %v", err)
			}

			ref := cluster.Node(0).App().Digest()
			deadline := time.Now().Add(15 * time.Second)
			for time.Now().Before(deadline) {
				if cluster.Node(3).App().Digest() == ref {
					return
				}
				time.Sleep(20 * time.Millisecond)
			}
			t.Fatal("recovered replica did not close a sub-checkpoint outage tail on an idle cluster")
		})
	}
}
