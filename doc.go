// Package splitbft is a from-scratch Go reproduction of "SplitBFT:
// Improving Byzantine Fault Tolerance Safety Using Trusted Compartments"
// (Messadi et al., MIDDLEWARE 2022).
//
// The implementation lives under internal/: the SplitBFT core
// (internal/core) compartmentalizes PBFT into Preparation, Confirmation
// and Execution enclaves running on a simulated SGX substrate
// (internal/tee); internal/pbft is the non-compartmentalized baseline the
// paper compares against. See README.md for the architecture overview,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// reproduced tables and figures. The benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation.
package splitbft
