// Package splitbft is a from-scratch Go reproduction of "SplitBFT:
// Improving Byzantine Fault Tolerance Safety Using Trusted Compartments"
// (Messadi et al., MIDDLEWARE 2022), packaged as a usable library.
//
// SplitBFT compartmentalizes PBFT into three independently-failing trusted
// compartments per replica — Preparation, Confirmation and Execution —
// each running in its own (simulated) SGX enclave with its own keys, log
// and view state. Compartments change state only on quorum certificates,
// so a compromise of one compartment type cannot undo agreement reached by
// the others; the untrusted broker handles networking, batching and timers
// and can only hurt liveness, never safety.
//
// # Public API
//
// Three entry points cover every deployment shape, all configured through
// functional options. Cluster is an in-process N-replica deployment over a
// simulated network, for tests, examples and benchmarks:
//
//	cluster, err := splitbft.NewCluster(4, splitbft.WithConfidential())
//	defer cluster.Close()
//	cl, err := cluster.NewClient(100)
//	err = cl.Attest() // verify enclaves, provision the session key
//	res, err := cl.Put("balance", []byte("42"))
//
// Node is one replica over TCP, for distributed deployments
// (cmd/splitbft-replica is a thin wrapper):
//
//	node, err := splitbft.NewNode(0,
//		splitbft.WithTransportTCP(":7000", ":7001", ":7002", ":7003"),
//		splitbft.WithKeySeed(secret))
//	err = node.Start()
//
// Client talks to a deployment from anywhere (cmd/splitbft-client wraps
// it):
//
//	cl, err := splitbft.NewClient(100,
//		splitbft.WithTransportTCP(":7000", ":7001", ":7002", ":7003"),
//		splitbft.WithKeySeed(secret))
//
// Fault-injection handles live on the same surface: Node.CrashEnclave
// kills one compartment (the paper's Figure 1 scenario — one faulty
// enclave of each type on three different replicas, tolerated where
// classical BFT tolerates only f faulty replicas), and Cluster.Partition
// cuts replicas off to drive view changes.
//
// # The staged agreement pipeline
//
// Each replica's hot path is a four-stage pipeline between the untrusted
// broker and its three enclaves:
//
//	classify → batch ecall → parallel verify → serial apply
//
// Classify runs on the transport threads, in the untrusted environment:
// every inbound message is fully decoded there — malformed input never
// pays for an enclave crossing — and byte-identical retransmits of
// agreement messages are dropped by a bounded, time-rotated filter. Both
// can only cost liveness (a wrong drop is indistinguishable from a network
// drop), never safety. Surviving messages are framed into pooled,
// reference-counted buffers shared across the compartments' duplicated
// input logs (§3.2) and recycled as soon as the enclave runtime has copied
// them in.
//
// Batch ecall amortizes the enclave-transition cost the paper identifies
// as the dominant overhead: with WithEcallBatch(n), a dispatcher drains up
// to n queued messages and delivers them through one trusted-boundary
// crossing.
//
// Parallel verify runs inside the enclave: with WithVerifyWorkers(n), the
// stateless share of validation — decoding plus Ed25519 signature checks,
// which are independent across distinct messages — fans out to a bounded
// worker pool, warming a per-compartment verification cache that also
// makes retransmits and view-change replays (the same certificates
// verified over and over) nearly free.
//
// Serial apply preserves the paper's execution model: handlers run to
// completion one at a time in submission order on the enclave's single
// logical protocol thread, so every ledger and checkpoint digest is
// byte-identical whether the pipeline is on, off, or fully serialized with
// WithSingleThread.
//
// # Agreement authentication: signatures vs the MAC fast path
//
// Normal-case agreement traffic (PrePrepare, Prepare, Commit, Checkpoint)
// supports two authentication modes, selected with WithAgreementAuth:
//
// "sig" (default) is the paper's baseline: every message carries an
// Ed25519 signature from its sending compartment. Signatures are
// transferable — any third party can re-verify them — which is what makes
// classic PBFT certificates (2f+1 individually signed messages) work, at
// the price of the replica hot path being verify-bound.
//
// "mac" is the trusted-compartment fast path. During registration — the
// stand-in for the attestation ceremony — every enclave's X25519 key is
// exchanged alongside its Ed25519 identity key, and each enclave pair
// derives a symmetric key from it that never exists outside the two
// enclaves. Normal-case messages then carry a vector of HMAC-SHA256
// authenticators, one slot per receiving compartment, in place of a
// signature. HMACs are not transferable, so the protocol keeps Ed25519
// exactly where third-party verifiability is load-bearing: ViewChange and
// NewView messages — and the certificates they carry shrink from 2f+1
// signature bundles to a single enclave signature over the aggregated
// claim ("a prepare certificate for (view, seq, digest) exists"),
// produced by the attested compartment that validated the quorum locally.
//
// The soundness argument is the paper's compartment trust model, the same
// leverage other TEE-BFT systems use: an attested agreement enclave runs
// known-measured code, so its signed claim that it saw a quorum stands in
// for the quorum itself. What degrades if that assumption fails: a
// crashed or isolated enclave still cannot forge anything (vouches are
// signatures under its protected key), but an attacker who fully
// compromises an agreement enclave — extracts keys or alters its logic
// inside the TEE — could vouch for quorums that never existed, a safety
// loss sig mode would confine to confidentiality. Both modes produce
// byte-identical ledgers on the same workload (regression-tested across
// forced view changes and crash/restart recovery); `splitbft-bench -exp
// auth` measures the throughput gap, which on the Ed25519-bound hot path
// is visible even on a single core because the work is removed, not
// parallelized.
//
// # Consensus modes: classic 3f+1 vs the trusted-counter 2f+1 mode
//
// WithConsensusMode selects how much of the agreement protocol leans on
// the trusted compartments. "classic" (default) is the paper's protocol:
// n = 3f+1 replicas, three phases, 2f+1 quorums, primary equivocation
// caught by the Prepare all-to-all. "trusted" rebuilds the
// MinBFT/CheapBFT lineage on SplitBFT's compartments: each replica's TEE
// hosts a trusted monotonic counter, and a PrePrepare is acceptable only
// with a gap-free counter attestation (an Ed25519 signature under the
// counter's attested key binding the counter value to the proposal
// digest, with the value advancing in lockstep with the sequence
// number). A primary cannot assign two batches the same counter value
// and cannot skip values unnoticed, so equivocation is prevented at the
// source: the attested PrePrepare is the prepare certificate, the
// Prepare round (n² messages and their verification) leaves the critical
// path, quorums shrink to f+1, and the group shrinks to n = 2f+1. View
// changes carry each replica's highest attested counter and NewView
// re-pins the counter base, so re-issued proposals stay gap-free across
// views.
//
// WithCommitRule is the DuoBFT-style dual-commit knob, client-local:
// "trusted" (default) returns from Invoke after f+1 matching replies,
// "full" waits for the classical 2f+1. The trade, as with the MAC fast
// path, is throughput bought with the trust the paper already places in
// attested compartments: a fully compromised counter enclave could
// attest conflicting histories and break safety at f+1 quorums, where
// classic mode's cross-checking would catch it. Both modes produce
// byte-identical ledgers on the same workload, regression-tested across
// crash/restart and forced view changes; `splitbft-bench -exp consensus`
// measures the swap — on the Ed25519-bound default path, dropping a
// whole signing-and-verifying round is a ~1.9x single-core throughput
// gain, while under MAC agreement the (necessarily transferable,
// signature-based) attestations cost more than the cheap HMAC round
// they replace.
//
// # The read path: leased local reads with read-index confirmation
//
// WithReadLeases enables a linearizable read fast path that bypasses
// agreement's quorum round. The primary's trusted counter enclave issues
// short-lived read leases to every replica — signed under its attested
// counter key and carrying the view, the granting counter value and an
// expiry. Grants piggyback on PrePrepare and Checkpoint traffic and
// renew on a dedicated lease clock (every TTL/4), so an idle cluster
// keeps its leases fresh. A lease-holding replica's Execution
// compartment answers a read-only request locally: one MAC'd request
// from the client to one replica, one attested reply — no PrePrepare, no
// quorum, no client broadcast. Client.InvokeRead (and Get, which routes
// through it) spreads reads round-robin over the replicas, so read
// throughput scales with the group instead of being serialized through
// agreement.
//
// Why this is linearizable: the lease alone only proves the granter was
// the primary recently — it says nothing about writes committed after
// the grant. So a linearizable read is confirmed with a read index, the
// Raft §6.4 construction: when the read arrives, the holder queries the
// primary's Preparation compartment for its current proposal frontier
// (the highest sequence it has assigned, sampled after the read
// arrived), and serves the read only once its own execution has reached
// that frontier. Every write acknowledged to any client before the read
// began was proposed before the frontier was sampled, so the read
// observes it. Queries are batched — one in flight covers every read
// that arrived before it was sent; reads arriving later wait for the
// next round — so the steady-state cost is one tiny Preparation round
// trip amortized over the batch, not per read.
//
// The lease bounds the other failure axis: a deposed primary answering
// read-index queries with a stale frontier. Grants are fenced by
// acknowledgment — every holder acks each grant back to the granter, and
// the granter issues real (installable) grants only while it holds 2f+1
// fresh acks, falling back to non-installable probe grants otherwise. A
// primary partitioned into a minority can therefore not extend leases
// beyond one TTL, while the majority side must wait out that TTL before
// electing a new primary whose writes could go unseen — enforced by the
// new primary's write fence (2.5×TTL after installing its view, parked
// batches flush when it lifts). WithLeaseTTL is clamped to
// RequestTimeout/4 so fence plus TTL fit inside one failure-detection
// period. Expiry is counter-anchored and holders refuse inside a
// clock-skew guard margin of TTL/8 before expiry, so bounded skew
// between granter and holder cannot stretch a lease past its revocation
// window; a view change additionally invalidates all outstanding leases
// immediately (leaseValid requires the granter to be the current view's
// primary).
//
// WithReadConsistency("session") drops the read-index round for
// read-your-writes consistency: the client sends its last-seen sequence
// as a watermark and any lease-holding replica executed at least that
// far answers immediately — no frontier wait, no wall-clock assumption.
// Leases are deliberately ephemeral — never written to the WAL or sealed
// state — so a restarted replica is leaseless until the primary
// re-grants.
//
// The degradation story is fail-closed: a replica with no lease, an
// expired lease, a deposed view or an application that cannot prove the
// operation read-only refuses explicitly, and the client falls back to
// full agreement (Invoke) — a read is never served stale, it just gets
// slower. Replayed ReadRequests are dropped by a per-client timestamp
// watermark before MAC verification, and leased reads bypass the
// exactly-once reply cache (they are side-effect-free, so
// retransmission is harmless), keeping read-heavy workloads from growing
// server-side client state. `splitbft-bench -exp readlease` measures
// the effect on a 90/10 open-loop mix: on the dev container the fast
// path sustains ~5× the aggregate read throughput of the agreement
// baseline at the same offered load.
//
// # Sealed durability and crash recovery
//
// WithPersistence(dir) gives every replica a per-compartment durable
// store under dir/replica-<id>/: an append-only, segment-rotated
// write-ahead log of the compartment's delivered input messages plus
// sealed state snapshots, both AEAD-encrypted under keys derived from the
// enclave identities (which is why WithPersistence requires WithKeySeed —
// a restarted process must re-derive the same sealing keys). Appends are
// group-committed (one fsync covers a burst of records) and the log is
// garbage collected at stable checkpoints, when a fresh sealed snapshot
// of the compartment state is written.
//
// What is sealed: every WAL record and every snapshot. What is replayed:
// on Node.Restart — or NewNode over an existing directory — each
// compartment restores the newest intact snapshot and re-invokes the
// records after it; compartments are deterministic state machines, so the
// replayed input log reconstructs the pre-crash state up to the last
// durable record. What comes from peers: the un-fsynced tail a crash
// loses and everything committed during the outage, closed through the
// ordinary checkpoint/state-transfer path (plus targeted BatchFetch
// retransmission of committed-but-missing request bodies) once the node
// rejoins. A recovered replica also nudges: while it may still be
// behind, its broker tick broadcasts a StateProbe announcing how far it
// got, and any peer whose stable checkpoint is ahead answers with the
// certified snapshot — so the outage gap closes even on an idle cluster
// where no client traffic would otherwise reveal it. Sub-checkpoint
// gaps — too recent for any peer to own a newer stable checkpoint — are
// closed by the probe too: Confirmation compartments answer with
// re-authenticated Commits for committed slots above the prober's
// watermark (slot state is retained until checkpoint garbage
// collection), and the prober fetches the missing request bodies over
// the self-certifying BatchFetch path.
//
// Each store also keeps a sealed tail marker pinning the highest
// fsync-durable WAL record (refreshed at snapshots and clean close);
// recovery that finds less log than the marker promises refuses with
// store.ErrTailRollback instead of reading a malicious truncation as an
// ordinary crash artifact. The marker never overstates durability, so
// honest crashes with un-fsynced tails are not flagged.
//
// Node.Crash is the SIGKILL-equivalent fault-injection handle (the
// durability stores drop their unflushed tail), Cluster.CrashNode and
// Cluster.RestartNode drive the scenario in-process, and
// Node.RecoveryStats reports snapshots restored, WAL records replayed and
// replay throughput. The recovery ablation is `splitbft-bench -exp
// recovery`.
//
// # Benchmarking and the perf trajectory
//
// The evaluation harness under experiments/bench is closed-loop (N
// blocking clients) and reproduces the paper's tables and figures via
// cmd/splitbft-bench. experiments/load is its open-loop,
// coordinated-omission-safe complement: arrivals are scheduled on a
// wall-clock process (Poisson or fixed-interval) at a target rate and
// latency is measured from each request's intended arrival time, so
// queueing delay during stalls is recorded instead of silently not
// offered. cmd/splitbft-load drives either an in-process Cluster or real
// TCP replicas and emits versioned, environment-stamped JSON; the repo
// commits trajectory points under perf/ and CI replays the calibration
// against them with a noise-aware regression gate (see README
// "Benchmarking & perf trajectory").
//
// # Observability
//
// WithObservability turns on a unified metrics-and-tracing layer;
// WithMetricsAddr additionally serves it over HTTP (/metrics in
// Prometheus text format, /healthz, /debug/trace — stdlib only). All
// instrumentation records on the untrusted side at compartment
// boundaries: the enclaves stay minimal, and what the layer reports is
// exactly the evidence the untrusted environment can see anyway —
// requests classified, batches entering the Preparation ecall, the
// replica's own PrePrepares and Commits leaving, replies going out.
// Request lifecycles become sampled spans over the write chain
// (classify → enqueue → preprepare → prepare-cert → commit → execute →
// reply) and the leased-read chain (arrive → read-index → serve);
// Node.Metrics, Node.StageLatencies and Node.MetricsAddr are the
// programmatic views. Confidential payloads never appear in traces or
// metric labels. Disabled, every hook is a nil-receiver no-op pinned at
// zero allocations by a test; enabled, counters stay lock-free atomics
// read only at scrape time, and the CI load gate replays the committed
// calibration with observability on against the uninstrumented
// trajectory point, bounding the overhead inside the gate's noise band.
// One Node.ResetStats call zeroes every surface — enclave counters,
// protocol counters, tracer — as a single measurement epoch.
//
// # Chaos testing
//
// experiments/chaos (driven by cmd/splitbft-chaos) runs a live workload
// against a Cluster while executing a seeded fault plan over four
// surfaces — network (per-link drop/duplication/reordering/delay,
// symmetric and asymmetric partitions, client-stranding partitions via
// Cluster.PartitionWithClients), disk (Node.DiskFaults write/fsync
// errors and stalls against the sticky-failure barrier), clock
// (Node.SetClockSkew on the lease-safety paths) and enclave/process
// (CrashEnclave, Crash/Restart) — while checking three safety
// invariants online and at quiescence: ledger-prefix parity of a
// chained execution journal across replicas, per-key linearizability of
// the read history, and exactly-once apply across crash-restart. Plans
// are pure functions of (name, seed, shape, duration) and the simulated
// network draws faults from per-link seeded streams, so one seed
// replays one fault sequence exactly; a violation report carries that
// seed, the live plan step and the offending history. See README
// "Chaos testing".
//
// The protocol engine lives under internal/ (internal/core is the
// compartmentalized replica, internal/pbft the monolithic baseline the
// paper compares against); the experiment harness reproducing the paper's
// tables and figures is public under experiments/ and is driven by
// cmd/splitbft-bench. See README.md for the full architecture overview.
package splitbft
