package splitbft_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/splitbft/splitbft"
)

// TestClusterCrashRestartConverges is the end-to-end recovery acceptance
// path: SIGKILL-equivalent crash of one replica mid-run, Restart recovers
// from the sealed snapshot + WAL replay + peer state transfer, and the
// cluster converges to byte-identical application state — including
// across a forced view change after the restart.
func TestClusterCrashRestartConverges(t *testing.T) {
	dir := t.TempDir()
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithKeySeed([]byte("restart-e2e-seed")),
		splitbft.WithPersistence(dir),
		splitbft.WithBatchSize(1),
		splitbft.WithCheckpointInterval(4),
		splitbft.WithRequestTimeout(300*time.Millisecond),
		splitbft.WithNetworkSeed(21),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	cl, err := cluster.NewClient(100, splitbft.WithInvokeTimeout(20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	put := func(i int) {
		t.Helper()
		if _, err := cl.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	for i := 0; i < 10; i++ {
		put(i)
	}
	waitForAgreement(t, cluster, []int{0, 1, 2, 3})

	// Kill replica 3 mid-run. The remaining 2f+1 keep the service live.
	cluster.CrashNode(3)
	for i := 10; i < 16; i++ {
		put(i)
	}

	// Restart: the node recovers locally, then closes the outage gap via
	// the peers' checkpoints and state transfer.
	if err := cluster.RestartNode(3); err != nil {
		t.Fatalf("restart: %v", err)
	}
	rs := cluster.Node(3).RecoveryStats()
	if rs.Snapshots == 0 && rs.WALRecords == 0 {
		t.Fatal("restart recovered nothing from the durability store")
	}
	for i := 16; i < 22; i++ {
		put(i)
	}
	waitForAgreement(t, cluster, []int{0, 1, 2, 3})

	// Force a view change with the recovered replica in the quorum: cut
	// the view-0 primary off. Progress now needs all of 1, 2 and 3 —
	// including the restarted node — to agree.
	cluster.Partition(0)
	for i := 22; i < 26; i++ {
		put(i)
	}
	waitForAgreement(t, cluster, []int{1, 2, 3})
	cluster.Heal()
	// Enough post-heal traffic to cross the next checkpoint boundary: the
	// healed ex-primary catches up via checkpoint-driven state transfer,
	// and checkpoints only fire every CheckpointInterval sequence numbers.
	for i := 26; i < 34; i++ {
		put(i)
	}
	waitForAgreement(t, cluster, []int{0, 1, 2, 3})

	// Byte-identical ledgers, not merely matching digests.
	ref := cluster.Node(0).App().Snapshot()
	for id := 1; id < 4; id++ {
		if !bytes.Equal(cluster.Node(id).App().Snapshot(), ref) {
			t.Fatalf("replica %d state is not byte-identical after recovery", id)
		}
	}
}

// TestConfidentialPersistenceNoPlaintextOnDisk greps every byte the
// durability subsystem wrote: with WithConfidential set, neither client
// payloads nor compartment state may reach untrusted storage in the
// clear — the WAL records and snapshots are sealed, and request payloads
// inside them are additionally end-to-end ciphertext.
func TestConfidentialPersistenceNoPlaintextOnDisk(t *testing.T) {
	dir := t.TempDir()
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithConfidential(),
		splitbft.WithKeySeed([]byte("confidential-disk-seed")),
		splitbft.WithPersistence(dir),
		splitbft.WithBatchSize(1),
		splitbft.WithCheckpointInterval(4),
		splitbft.WithNetworkSeed(22),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	cl, err := cluster.NewClient(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Attest(); err != nil {
		t.Fatal(err)
	}
	secretKey := "classified-key-material"
	secretVal := "top-secret-payload-42"
	if _, err := cl.Put(secretKey, []byte(secretVal)); err != nil {
		t.Fatal(err)
	}
	// Enough follow-up traffic to cross a checkpoint, so sealed snapshots
	// (which contain the application state holding the secret) exist too.
	for i := 0; i < 8; i++ {
		if _, err := cl.Put(fmt.Sprintf("pad%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	cluster.Close() // flush every store

	var files, bytesOnDisk int
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		files++
		bytesOnDisk += len(data)
		if bytes.Contains(data, []byte(secretKey)) || bytes.Contains(data, []byte(secretVal)) {
			t.Errorf("%s contains plaintext client data", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The assertion is only meaningful if the subsystem actually wrote the
	// state somewhere.
	if files == 0 || bytesOnDisk == 0 {
		t.Fatalf("durability subsystem wrote nothing (%d files, %d bytes)", files, bytesOnDisk)
	}
}

// TestConfidentialCrashRestartRestoresSessions crashes a replica before
// any checkpoint, so the client's provisioned session exists only in the
// WAL: replaying the ProvisionKey must restore it (the enclave ECDH key
// re-derives deterministically), or the recovered replica would execute
// every later encrypted request as a no-op and silently diverge.
func TestConfidentialCrashRestartRestoresSessions(t *testing.T) {
	dir := t.TempDir()
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithConfidential(),
		splitbft.WithKeySeed([]byte("confidential-restart-seed")),
		splitbft.WithPersistence(dir),
		splitbft.WithBatchSize(1),
		splitbft.WithCheckpointInterval(8),
		splitbft.WithNetworkSeed(23),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cl, err := cluster.NewClient(100, splitbft.WithInvokeTimeout(20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Attest(); err != nil {
		t.Fatal(err)
	}
	// Two ops only — well below the checkpoint interval, so no sealed
	// snapshot exists yet and recovery is pure WAL replay.
	if _, err := cl.Put("pre", []byte("crash")); err != nil {
		t.Fatal(err)
	}
	waitForAgreement(t, cluster, []int{0, 1, 2, 3})
	cluster.CrashNode(3)
	if err := cluster.RestartNode(3); err != nil {
		t.Fatal(err)
	}
	if rs := cluster.Node(3).RecoveryStats(); rs.WALRecords == 0 {
		t.Fatal("expected a pure WAL-replay recovery")
	}
	// The recovered replica must execute these encrypted requests for
	// real — a lost session would no-op them and its state would diverge
	// from the group forever (equal lastExec, different digest: state
	// transfer never repairs that).
	for i := 0; i < 10; i++ {
		if _, err := cl.Put(fmt.Sprintf("post%d", i), []byte("x")); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	waitForAgreement(t, cluster, []int{0, 1, 2, 3})
}

// TestPersistenceOptionValidation: sealing keys must be re-derivable, so
// WithPersistence without WithKeySeed is a configuration error.
func TestPersistenceOptionValidation(t *testing.T) {
	_, err := splitbft.NewCluster(4, splitbft.WithPersistence(t.TempDir()))
	if err == nil {
		t.Fatal("WithPersistence without WithKeySeed accepted")
	}
}
