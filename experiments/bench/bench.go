// Package bench is the experiment harness reproducing the paper's
// evaluation (§6): throughput/latency sweeps over client counts for
// SplitBFT and the PBFT baseline with KVS and blockchain applications
// (Figure 3a/3b), and per-compartment ecall latency measurements
// (Figure 4). Table 1 and Table 2 are produced by the faultmodel and loc
// packages respectively; cmd/splitbft-bench ties everything together.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/splitbft/splitbft"
)

// System enumerates the evaluated configurations — exactly the series of
// Figure 3.
type System int

// The Figure 3 series.
const (
	SplitKVS System = iota
	PBFTKVS
	SplitKVSSimulation   // SGX simulation mode: no transition cost
	SplitKVSSingleThread // all ecalls through one thread
	SplitBlockchain
	PBFTBlockchain
)

// String implements fmt.Stringer with the paper's legend labels.
func (s System) String() string {
	switch s {
	case SplitKVS:
		return "SplitBFT KVS"
	case PBFTKVS:
		return "PBFT KVS"
	case SplitKVSSimulation:
		return "SplitBFT KVS Simulation"
	case SplitKVSSingleThread:
		return "SplitBFT KVS Single Thread"
	case SplitBlockchain:
		return "SplitBFT Blockchain"
	case PBFTBlockchain:
		return "PBFT Blockchain"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// AllSystems returns every Figure 3 series in display order.
func AllSystems() []System {
	return []System{SplitKVS, PBFTKVS, SplitKVSSimulation, SplitKVSSingleThread, SplitBlockchain, PBFTBlockchain}
}

// IsSplit reports whether the system is a SplitBFT variant.
func (s System) IsSplit() bool { return s != PBFTKVS && s != PBFTBlockchain }

// IsBlockchain reports whether the system runs the ledger application.
func (s System) IsBlockchain() bool { return s == SplitBlockchain || s == PBFTBlockchain }

// RunConfig parameterizes one experiment point.
type RunConfig struct {
	System  System
	Clients int
	// Batched selects the Figure 3b configuration: batches of 200 or 10 ms
	// and 40 outstanding requests per client. Unbatched (3a) orders every
	// request alone with one outstanding request per client.
	Batched bool
	// PayloadSize is the request payload in bytes (paper: 10).
	PayloadSize int
	// Warmup and Measure are the untimed ramp-up and the timed window.
	Warmup  time.Duration
	Measure time.Duration
	// CostOverride replaces the system's default enclave cost model
	// (ablations only; nil keeps the per-system default).
	CostOverride *splitbft.CostModel
	// BatchSizeOverride replaces the batched-mode batch size of 200
	// (ablations only; 0 keeps the default).
	BatchSizeOverride int
	// EcallBatch and VerifyWorkers enable the staged agreement pipeline on
	// SplitBFT systems (WithEcallBatch / WithVerifyWorkers); 0 leaves the
	// paper's one-message-per-ecall, inline-verification behavior.
	EcallBatch    int
	VerifyWorkers int
	// AgreementAuth selects the replica-to-replica authentication mode on
	// SplitBFT systems ("sig" or "mac"; "" keeps the sig default) — the
	// MAC-authenticated fast path of the auth ablation.
	AgreementAuth string
	// ConsensusMode selects the agreement protocol on SplitBFT systems
	// ("classic" or "trusted"; "" keeps the classic default). Trusted runs
	// the counter-backed two-phase protocol on a 2f+1 group — the cluster
	// shrinks from benchN to 2*benchF+1 replicas, matching how the mode
	// would actually be deployed.
	ConsensusMode string
	// Trace enables request-lifecycle tracing on SplitBFT systems
	// (WithObservability): the Result gains the leader's per-stage latency
	// breakdown over the measure window.
	Trace bool
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Clients == 0 {
		c.Clients = 1
	}
	if c.PayloadSize == 0 {
		c.PayloadSize = 10
	}
	if c.Warmup == 0 {
		c.Warmup = 300 * time.Millisecond
	}
	if c.Measure == 0 {
		c.Measure = time.Second
	}
	return c
}

// Outstanding returns the per-client concurrency (paper: 40 when batched).
func (c RunConfig) Outstanding() int {
	if c.Batched {
		return 40
	}
	return 1
}

// CompartmentStat is one bar of Figure 4. Calls counts trusted-boundary
// crossings; Msgs the messages they delivered (Msgs/Calls is the achieved
// ecall batch amortization).
type CompartmentStat struct {
	Name  string
	Calls uint64
	Msgs  uint64
	Mean  time.Duration
	Total time.Duration
}

// Result is one measured experiment point.
type Result struct {
	System     System
	Clients    int
	Batched    bool
	Ops        uint64
	Elapsed    time.Duration
	Throughput float64 // ops/s
	MeanLat    time.Duration
	P50Lat     time.Duration
	P99Lat     time.Duration
	// Compartments holds the leader's per-enclave ecall statistics for
	// SplitBFT systems (Figure 4); nil for the baseline.
	Compartments []CompartmentStat
	// MsgsPerEcall is the achieved ecall batch amortization on the leader
	// across all compartments (1.0 with batching off; 0 for the baseline).
	MsgsPerEcall float64
	// VerifyCacheHitRate is the leader's signature-verification cache hit
	// rate during the measure window (0 for the baseline). Note the
	// semantics differ by configuration: with the pipeline off, hits are
	// genuine retransmits/replays; with VerifyWorkers on, the serial
	// handler consuming the parallel warm pass also counts, so enabled
	// configurations read ~50% by construction.
	VerifyCacheHitRate float64
	// Errors counts failed invocations during the measure window.
	Errors uint64
	// SigVerifies / MACVerifies count the leader's executed Ed25519 and
	// agreement-MAC verifications during the measure window (0 for the
	// baseline); SigCPUFraction is the leader's Ed25519-verify
	// CPU-seconds per wall-clock second — the cost the MAC fast path
	// removes. The three compartments verify concurrently, so on
	// multi-core hosts this can exceed 1.0 (it is CPU load, not a share
	// of the window).
	SigVerifies    uint64
	MACVerifies    uint64
	SigCPUFraction float64
	// CounterCreates / CounterVerifies count the leader's trusted-counter
	// attestations created and verified during the measure window (0 in
	// classic consensus).
	CounterCreates  uint64
	CounterVerifies uint64
	// Stages is the leader's per-stage request-lifecycle latency breakdown
	// over the measure window (RunConfig.Trace only; nil otherwise).
	Stages []splitbft.StageLatency `json:",omitempty"`
}

// FormatStages renders a per-stage latency table from a traced run.
func FormatStages(stages []splitbft.StageLatency) string {
	if len(stages) == 0 {
		return "  (no traced spans — is tracing enabled and traffic flowing?)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %-16s %10s %12s %12s %12s %12s\n", "stage", "spans", "mean", "p50", "p99", "max")
	for _, s := range stages {
		fmt.Fprintf(&b, "  %-16s %10d %12v %12v %12v %12v\n", s.Stage, s.Count, s.Mean, s.P50, s.P99, s.Max)
	}
	return b.String()
}

// recorder collects latencies from concurrent workers.
type recorder struct {
	mu        sync.Mutex
	latencies []time.Duration
	errors    uint64
}

func (r *recorder) record(d time.Duration) {
	r.mu.Lock()
	r.latencies = append(r.latencies, d)
	r.mu.Unlock()
}

func (r *recorder) fail() {
	r.mu.Lock()
	r.errors++
	r.mu.Unlock()
}

// summarize computes the Result statistics from collected latencies.
func (r *recorder) summarize(res *Result, elapsed time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	res.Ops = uint64(len(r.latencies))
	res.Elapsed = elapsed
	res.Errors = r.errors
	if elapsed > 0 {
		res.Throughput = float64(res.Ops) / elapsed.Seconds()
	}
	if len(r.latencies) == 0 {
		return
	}
	sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
	var sum time.Duration
	for _, d := range r.latencies {
		sum += d
	}
	res.MeanLat = sum / time.Duration(len(r.latencies))
	res.P50Lat = r.latencies[len(r.latencies)/2]
	res.P99Lat = r.latencies[len(r.latencies)*99/100]
}
