package bench

import (
	"fmt"
	"sync"
	"time"

	"github.com/splitbft/splitbft"
	"github.com/splitbft/splitbft/internal/client"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/pbft"
	"github.com/splitbft/splitbft/internal/transport"
)

// benchN and benchF fix the replica group size to the paper's deployment
// (four SGX machines, f = 1).
const (
	benchN = 4
	benchF = 1
)

// benchSecret seeds the pairwise MAC keys for a PBFT baseline cluster.
var benchSecret = []byte("splitbft-bench-secret")

// benchClient abstracts over the public SplitBFT client and the internal
// client driving the PBFT baseline.
type benchClient interface {
	Invoke(op []byte) ([]byte, error)
	Close()
}

// clusterHandle owns a running benchmark cluster and its clients.
type clusterHandle struct {
	clients []benchClient
	// splitNodes is non-nil for SplitBFT systems (for enclave stats).
	splitNodes []*splitbft.Node
	shutdown   func()
}

func (h *clusterHandle) close() { h.shutdown() }

// buildApp constructs the application instance for one replica.
func buildApp(sys System) splitbft.Application {
	if sys.IsBlockchain() {
		return splitbft.NewBlockchain(splitbft.DefaultBlockSize, nil)
	}
	return splitbft.NewKVStore()
}

// startCluster launches the replica group for a system configuration and
// attaches cfg.Clients clients, attesting them when confidential. SplitBFT
// systems run on the public splitbft.Cluster facade — the same code path
// as the examples and CLIs; the PBFT baseline keeps its own wiring.
func startCluster(cfg RunConfig) (*clusterHandle, error) {
	batchSize := 1
	batchTimeout := time.Millisecond
	if cfg.Batched {
		batchSize = splitbft.DefaultBatchSize
		if cfg.BatchSizeOverride > 0 {
			batchSize = cfg.BatchSizeOverride
		}
		batchTimeout = splitbft.DefaultBatchTimeout
	}
	// A generous request timeout keeps the failure detector quiet under
	// benchmark load (there are no faults to detect here).
	const requestTimeout = 5 * time.Second

	if cfg.System.IsSplit() {
		return startSplitCluster(cfg, batchSize, batchTimeout, requestTimeout)
	}
	return startPBFTCluster(cfg, batchSize, batchTimeout, requestTimeout)
}

func startSplitCluster(cfg RunConfig, batchSize int, batchTimeout, requestTimeout time.Duration) (*clusterHandle, error) {
	cost := splitbft.DefaultCostModel()
	if cfg.System == SplitKVSSimulation {
		cost = splitbft.SimulationCostModel()
	}
	if cfg.CostOverride != nil {
		cost = *cfg.CostOverride
	}
	opts := []splitbft.Option{
		splitbft.WithFaults(benchF),
		splitbft.WithNetworkSeed(42),
		splitbft.WithApp(func() splitbft.Application { return buildApp(cfg.System) }),
		splitbft.WithConfidential(),
		splitbft.WithCostModel(cost),
		splitbft.WithBatchSize(batchSize),
		splitbft.WithBatchTimeout(batchTimeout),
		splitbft.WithRequestTimeout(requestTimeout),
	}
	if cfg.System == SplitKVSSingleThread {
		opts = append(opts, splitbft.WithSingleThread())
	}
	if cfg.EcallBatch > 0 {
		opts = append(opts, splitbft.WithEcallBatch(cfg.EcallBatch))
	}
	if cfg.VerifyWorkers > 0 {
		opts = append(opts, splitbft.WithVerifyWorkers(cfg.VerifyWorkers))
	}
	if cfg.AgreementAuth != "" {
		opts = append(opts, splitbft.WithAgreementAuth(cfg.AgreementAuth))
	}
	if cfg.Trace {
		opts = append(opts, splitbft.WithObservability())
	}
	n := benchN
	if cfg.ConsensusMode != "" {
		opts = append(opts, splitbft.WithConsensusMode(cfg.ConsensusMode))
		if cfg.ConsensusMode == "trusted" {
			n = 2*benchF + 1
		}
	}
	cluster, err := splitbft.NewCluster(n, opts...)
	if err != nil {
		return nil, fmt.Errorf("bench: cluster: %w", err)
	}
	h := &clusterHandle{splitNodes: cluster.Nodes(), shutdown: cluster.Close}
	clients := make([]*splitbft.Client, 0, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		cl, err := cluster.NewClient(uint32(1000+c),
			splitbft.WithRetransmitInterval(2*time.Second),
			splitbft.WithInvokeTimeout(30*time.Second))
		if err != nil {
			h.close()
			return nil, err
		}
		clients = append(clients, cl)
		h.clients = append(h.clients, cl)
	}
	// Attest concurrently: with 150 clients the handshakes are the setup
	// bottleneck otherwise.
	var wg sync.WaitGroup
	errCh := make(chan error, len(clients))
	for _, cl := range clients {
		wg.Add(1)
		go func(cl *splitbft.Client) {
			defer wg.Done()
			if err := cl.Attest(); err != nil {
				errCh <- err
			}
		}(cl)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		h.close()
		return nil, fmt.Errorf("bench: attestation: %w", err)
	}
	return h, nil
}

func startPBFTCluster(cfg RunConfig, batchSize int, batchTimeout, requestTimeout time.Duration) (*clusterHandle, error) {
	net := transport.NewSimNet(42)
	reg := crypto.NewRegistry()
	var replicas []*pbft.Replica
	h := &clusterHandle{}
	h.shutdown = func() {
		for _, cl := range h.clients {
			cl.Close()
		}
		for _, r := range replicas {
			r.Stop()
		}
		net.Close()
	}

	keys := make([]*crypto.KeyPair, benchN)
	for i := range keys {
		keys[i] = crypto.MustGenerateKeyPair()
		reg.Register(pbft.ReplicaIdentity(uint32(i)), keys[i].Public)
	}
	for i := 0; i < benchN; i++ {
		rcfg := pbft.Config{
			N: benchN, F: benchF, ID: uint32(i),
			Key:            keys[i],
			Registry:       reg,
			MACs:           crypto.NewMACStore(benchSecret, pbft.ReplicaIdentity(uint32(i))),
			App:            buildApp(cfg.System),
			BatchSize:      batchSize,
			BatchTimeout:   batchTimeout,
			RequestTimeout: requestTimeout,
		}
		r, err := pbft.NewReplica(rcfg)
		if err != nil {
			h.close()
			return nil, fmt.Errorf("bench: replica %d: %w", i, err)
		}
		conn, err := net.Join(transport.ReplicaEndpoint(uint32(i)), r.Handler())
		if err != nil {
			h.close()
			return nil, err
		}
		r.Start(conn)
		replicas = append(replicas, r)
	}

	for c := 0; c < cfg.Clients; c++ {
		id := uint32(1000 + c)
		cl, err := client.New(client.Config{
			ID: id, N: benchN, F: benchF,
			MACs:               crypto.NewMACStore(benchSecret, crypto.Identity{ReplicaID: id, Role: crypto.RoleClient}),
			AuthReceivers:      pbft.BaselineAuthReceivers(benchN),
			ReplyRole:          crypto.RoleReplica,
			RetransmitInterval: 2 * time.Second,
			Timeout:            30 * time.Second,
		})
		if err != nil {
			h.close()
			return nil, err
		}
		conn, err := net.Join(transport.ClientEndpoint(id), cl.Handler())
		if err != nil {
			h.close()
			return nil, err
		}
		cl.Start(conn)
		h.clients = append(h.clients, cl)
	}
	return h, nil
}
