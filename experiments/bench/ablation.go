package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/splitbft/splitbft"
)

// Ablations isolate the contribution of individual design parameters:
// the enclave-transition cost (how much of SplitBFT's overhead is the
// SGX boundary itself) and the batch size (how transition costs amortize
// over batches, §6's central performance argument).

// TransitionCostPoint is one measurement of the transition-cost ablation.
type TransitionCostPoint struct {
	TransitionCycles uint64
	Result           Result
}

// TransitionCostAblation sweeps the per-transition cycle cost of the
// enclave boundary on the SplitBFT KVS: 0 cycles is simulation mode, 8640
// the HotCalls default, higher values model older or more conservative
// TEE implementations.
func TransitionCostAblation(cycles []uint64, clients int, measure time.Duration) ([]TransitionCostPoint, error) {
	out := make([]TransitionCostPoint, 0, len(cycles))
	for _, c := range cycles {
		cost := splitbft.DefaultCostModel()
		cost.TransitionCycles = c
		res, err := Run(RunConfig{
			System:       SplitKVS,
			Clients:      clients,
			Batched:      false,
			Measure:      measure,
			CostOverride: &cost,
		})
		if err != nil {
			return out, fmt.Errorf("transition ablation @%d cycles: %w", c, err)
		}
		out = append(out, TransitionCostPoint{TransitionCycles: c, Result: res})
	}
	return out, nil
}

// BatchSizePoint is one measurement of the batch-size ablation.
type BatchSizePoint struct {
	BatchSize int
	Result    Result
}

// BatchSizeAblation sweeps the batch size on the SplitBFT KVS with a fixed
// offered load, showing how the per-batch enclave costs amortize (the
// paper jumps from 1 to 200; the sweep fills in the curve).
func BatchSizeAblation(sizes []int, clients int, measure time.Duration) ([]BatchSizePoint, error) {
	out := make([]BatchSizePoint, 0, len(sizes))
	for _, s := range sizes {
		res, err := Run(RunConfig{
			System:            SplitKVS,
			Clients:           clients,
			Batched:           true, // 40 outstanding per client
			Measure:           measure,
			BatchSizeOverride: s,
		})
		if err != nil {
			return out, fmt.Errorf("batch ablation @%d: %w", s, err)
		}
		out = append(out, BatchSizePoint{BatchSize: s, Result: res})
	}
	return out, nil
}

// PipelinePoint is one measurement of the staged-pipeline ablation.
type PipelinePoint struct {
	EcallBatch    int
	VerifyWorkers int
	Result        Result
}

// PipelineAblation measures the staged agreement pipeline — batched ecalls
// plus the parallel verification pool — against the paper's baseline
// dispatcher on the SplitBFT KVS. Both points run the identical protocol
// on the same hardware; only the untrusted scheduling and the intra-batch
// verification parallelism differ.
func PipelineAblation(configs [][2]int, clients int, measure time.Duration, trace bool) ([]PipelinePoint, error) {
	out := make([]PipelinePoint, 0, len(configs))
	for _, c := range configs {
		res, err := Run(RunConfig{
			System:        SplitKVS,
			Clients:       clients,
			Batched:       false,
			Measure:       measure,
			EcallBatch:    c[0],
			VerifyWorkers: c[1],
			Trace:         trace,
		})
		if err != nil {
			return out, fmt.Errorf("pipeline ablation @batch=%d,workers=%d: %w", c[0], c[1], err)
		}
		out = append(out, PipelinePoint{EcallBatch: c[0], VerifyWorkers: c[1], Result: res})
	}
	return out, nil
}

// AuthPoint is one measurement of the agreement-authentication ablation.
type AuthPoint struct {
	Mode   string // "sig" or "mac"
	Result Result
}

// AuthAblation measures the MAC-authenticated agreement fast path against
// the Ed25519 baseline on the SplitBFT KVS: identical protocol, identical
// scheduling, only the normal-case authentication primitive differs. The
// sig-mode replica hot path is Ed25519-bound, so this is the rare
// optimization whose win is visible even on a single core — it removes
// the work instead of parallelizing it.
func AuthAblation(clients int, measure time.Duration) ([]AuthPoint, error) {
	out := make([]AuthPoint, 0, 2)
	for _, mode := range []string{"sig", "mac"} {
		res, err := Run(RunConfig{
			System:        SplitKVS,
			Clients:       clients,
			Batched:       false,
			Measure:       measure,
			AgreementAuth: mode,
		})
		if err != nil {
			return out, fmt.Errorf("auth ablation @%s: %w", mode, err)
		}
		out = append(out, AuthPoint{Mode: mode, Result: res})
	}
	return out, nil
}

// AuthSpeedup returns the mac/sig throughput ratio (0 when either point
// is missing).
func AuthSpeedup(points []AuthPoint) float64 {
	var sig, mac float64
	for _, p := range points {
		switch p.Mode {
		case "sig":
			sig = p.Result.Throughput
		case "mac":
			mac = p.Result.Throughput
		}
	}
	if sig == 0 {
		return 0
	}
	return mac / sig
}

// ConsensusPoint is one measurement of the consensus-mode ablation.
type ConsensusPoint struct {
	Consensus string // "classic" or "trusted"
	Auth      string // "sig" or "mac"
	Result    Result
}

// ConsensusAblation measures the trusted-counter consensus mode against
// classic SplitBFT across both authentication modes: a 2×2 grid. The
// trusted rows replace the all-to-all Prepare round (and its per-message
// verification) with one counter attestation on each PrePrepare, so on a
// single core the win shows up as removed crypto and messaging work, not
// as parallelism. The group shrinks to 2f+1 alongside, which is the other
// half of the mode's resource argument.
func ConsensusAblation(clients int, measure time.Duration) ([]ConsensusPoint, error) {
	out := make([]ConsensusPoint, 0, 4)
	for _, consensus := range []string{"classic", "trusted"} {
		for _, auth := range []string{"sig", "mac"} {
			res, err := Run(RunConfig{
				System:        SplitKVS,
				Clients:       clients,
				Batched:       false,
				Measure:       measure,
				AgreementAuth: auth,
				ConsensusMode: consensus,
			})
			if err != nil {
				return out, fmt.Errorf("consensus ablation @%s/%s: %w", consensus, auth, err)
			}
			out = append(out, ConsensusPoint{Consensus: consensus, Auth: auth, Result: res})
		}
	}
	return out, nil
}

// TrustedSpeedup returns the trusted/classic throughput ratio for one auth
// mode (0 when either point is missing).
func TrustedSpeedup(points []ConsensusPoint, auth string) float64 {
	var classic, trusted float64
	for _, p := range points {
		if p.Auth != auth {
			continue
		}
		switch p.Consensus {
		case "classic":
			classic = p.Result.Throughput
		case "trusted":
			trusted = p.Result.Throughput
		}
	}
	if classic == 0 {
		return 0
	}
	return trusted / classic
}

// FormatConsensusAblation renders the 2×2 consensus×auth grid with the
// leader's crypto-op profile: what verification work the dropped Prepare
// round removed, and what counter-attestation work replaced it.
func FormatConsensusAblation(points []ConsensusPoint) string {
	var sb strings.Builder
	sb.WriteString("Ablation — consensus mode (SplitBFT KVS, unbatched; classic n=4, trusted n=3)\n\n")
	fmt.Fprintf(&sb, "%-9s %-5s %12s %14s %12s %12s %11s %11s\n",
		"Consensus", "Auth", "ops/s", "mean latency", "sig-verifies", "MAC-verifies", "ctr-creates", "ctr-verifies")
	sb.WriteString(strings.Repeat("-", 94) + "\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-9s %-5s %12.0f %14v %12d %12d %11d %11d\n",
			p.Consensus, p.Auth, p.Result.Throughput,
			p.Result.MeanLat.Round(time.Microsecond),
			p.Result.SigVerifies, p.Result.MACVerifies,
			p.Result.CounterCreates, p.Result.CounterVerifies)
	}
	for _, auth := range []string{"sig", "mac"} {
		if s := TrustedSpeedup(points, auth); s > 0 {
			fmt.Fprintf(&sb, "\ntrusted/classic throughput ratio (%s): %.2fx", auth, s)
		}
	}
	sb.WriteString("\n")
	return sb.String()
}

// FormatAuthAblation renders the sig-vs-MAC comparison with the leader's
// crypto-op profile: how many Ed25519 verifications ran, what share of
// the measure window they consumed, and how many agreement-MAC checks
// replaced them.
func FormatAuthAblation(points []AuthPoint) string {
	var sb strings.Builder
	sb.WriteString("Ablation — agreement authentication (SplitBFT KVS, unbatched)\n\n")
	// "verify-CPU" is Ed25519-verify CPU-seconds per wall-clock second on
	// the leader; the compartments verify concurrently, so >100% is
	// possible on multi-core hosts.
	fmt.Fprintf(&sb, "%-6s %12s %14s %12s %12s %12s\n",
		"Mode", "ops/s", "mean latency", "sig-verifies", "verify-CPU", "MAC-verifies")
	sb.WriteString(strings.Repeat("-", 74) + "\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-6s %12.0f %14v %12d %11.1f%% %12d\n",
			p.Mode, p.Result.Throughput,
			p.Result.MeanLat.Round(time.Microsecond),
			p.Result.SigVerifies, 100*p.Result.SigCPUFraction, p.Result.MACVerifies)
	}
	if s := AuthSpeedup(points); s > 0 {
		fmt.Fprintf(&sb, "\nMAC/sig throughput ratio: %.2fx\n", s)
	}
	return sb.String()
}

// FormatPipelineAblation renders the staged-pipeline comparison, including
// the achieved ecall amortization and verify-cache effectiveness.
func FormatPipelineAblation(points []PipelinePoint) string {
	var sb strings.Builder
	sb.WriteString("Ablation — staged agreement pipeline (SplitBFT KVS, unbatched)\n\n")
	fmt.Fprintf(&sb, "%-12s %-14s %12s %14s %14s %12s\n",
		"Ecall batch", "Verify workers", "ops/s", "mean latency", "msgs/ecall", "cache hits")
	sb.WriteString(strings.Repeat("-", 84) + "\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-12d %-14d %12.0f %14v %14.2f %11.0f%%\n",
			p.EcallBatch, p.VerifyWorkers, p.Result.Throughput,
			p.Result.MeanLat.Round(time.Microsecond),
			p.Result.MsgsPerEcall, 100*p.Result.VerifyCacheHitRate)
	}
	return sb.String()
}

// FormatTransitionAblation renders the transition-cost sweep.
func FormatTransitionAblation(points []TransitionCostPoint) string {
	var sb strings.Builder
	sb.WriteString("Ablation — enclave transition cost (SplitBFT KVS, unbatched)\n\n")
	fmt.Fprintf(&sb, "%-18s %14s %14s\n", "Transition cycles", "ops/s", "mean latency")
	sb.WriteString(strings.Repeat("-", 50) + "\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-18d %14.0f %14v\n",
			p.TransitionCycles, p.Result.Throughput, p.Result.MeanLat.Round(time.Microsecond))
	}
	return sb.String()
}

// FormatBatchAblation renders the batch-size sweep.
func FormatBatchAblation(points []BatchSizePoint) string {
	var sb strings.Builder
	sb.WriteString("Ablation — batch size (SplitBFT KVS, 40 outstanding per client)\n\n")
	fmt.Fprintf(&sb, "%-12s %14s %14s\n", "Batch size", "ops/s", "mean latency")
	sb.WriteString(strings.Repeat("-", 44) + "\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-12d %14.0f %14v\n",
			p.BatchSize, p.Result.Throughput, p.Result.MeanLat.Round(time.Microsecond))
	}
	return sb.String()
}
