package bench

import (
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// Env is the environment metadata stamped onto every machine-readable
// benchmark result. Perf trajectory points are committed to the repo and
// compared across PRs; without knowing what machine and commit produced a
// point, a comparison is numerology. NumCPU in particular drives the
// regression gate's noise handling: points from differently sized machines
// are compared advisorily, not gated hard.
type Env struct {
	GitSHA     string `json:"git_sha"`
	Date       string `json:"date"` // RFC3339, UTC
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CollectEnv gathers the environment metadata for a benchmark run. The
// commit hash comes from git when available, falling back to the CI-provided
// GITHUB_SHA, then "unknown" — metadata collection must never fail a run.
func CollectEnv() Env {
	return Env{
		GitSHA:     gitSHA(),
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Comparable reports whether two environments are similar enough for a
// hard throughput gate: same CPU budget, same OS/architecture. Differing
// Go versions stay comparable — catching a toolchain-induced regression is
// a feature, not noise.
func (e Env) Comparable(other Env) bool {
	return e.NumCPU == other.NumCPU &&
		e.GOMAXPROCS == other.GOMAXPROCS &&
		e.GOOS == other.GOOS &&
		e.GOARCH == other.GOARCH
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err == nil {
		if sha := strings.TrimSpace(string(out)); sha != "" {
			return sha
		}
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	return "unknown"
}
