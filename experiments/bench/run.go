package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/splitbft/splitbft"
)

// Run executes one experiment point: it builds the cluster, drives
// closed-loop clients through a warmup and a timed measurement window, and
// returns throughput/latency statistics plus (for SplitBFT) the leader's
// per-compartment ecall profile.
func Run(cfg RunConfig) (Result, error) {
	cfg = cfg.withDefaults()
	h, err := startCluster(cfg)
	if err != nil {
		return Result{}, err
	}
	defer h.close()

	res := Result{System: cfg.System, Clients: cfg.Clients, Batched: cfg.Batched}
	rec := &recorder{}
	var measuring atomic.Bool
	var stop atomic.Bool

	payload := make([]byte, cfg.PayloadSize)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}

	// Closed-loop workers: each performs synchronous PUT operations
	// (blockchain: raw transactions) back to back. In batched mode each
	// client runs Outstanding() workers sharing its timestamp counter.
	var wg sync.WaitGroup
	for ci, cl := range h.clients {
		for w := 0; w < cfg.Outstanding(); w++ {
			wg.Add(1)
			go func(cl benchClient, ci, w int) {
				defer wg.Done()
				key := fmt.Sprintf("key-%d-%d", ci, w)
				var op []byte
				if cfg.System.IsBlockchain() {
					op = payload
				} else {
					op = splitbft.EncodePut(key, payload)
				}
				for !stop.Load() {
					start := time.Now()
					_, err := cl.Invoke(op)
					if measuring.Load() {
						if err != nil {
							rec.fail()
						} else {
							rec.record(time.Since(start))
						}
					}
				}
			}(cl, ci, w)
		}
	}

	time.Sleep(cfg.Warmup)
	// Reset the leader's enclave stats so Figure 4 reflects steady state.
	if len(h.splitNodes) > 0 {
		h.splitNodes[0].ResetEnclaveStats()
	}
	measuring.Store(true)
	begin := time.Now()
	time.Sleep(cfg.Measure)
	measuring.Store(false)
	elapsed := time.Since(begin)
	stop.Store(true)
	// Unblock workers stuck in Invoke by closing clients.
	for _, cl := range h.clients {
		cl.Close()
	}
	wg.Wait()

	rec.summarize(&res, elapsed)
	if len(h.splitNodes) > 0 {
		var calls, msgs uint64
		for _, s := range h.splitNodes[0].EnclaveStats() {
			res.Compartments = append(res.Compartments, CompartmentStat{
				Name:  s.Role.String(),
				Calls: s.Count,
				Msgs:  s.Msgs,
				Mean:  s.Mean,
				Total: s.Total,
			})
			calls += s.Count
			msgs += s.Msgs
		}
		if calls > 0 {
			res.MsgsPerEcall = float64(msgs) / float64(calls)
		}
		res.VerifyCacheHitRate = h.splitNodes[0].VerifyCacheStats().HitRate()
		cs := h.splitNodes[0].CryptoStats()
		res.SigVerifies = cs.SigVerifies
		res.MACVerifies = cs.MACVerifies
		res.SigCPUFraction = cs.SigCPUFraction(elapsed)
		res.CounterCreates = cs.CounterCreates
		res.CounterVerifies = cs.CounterVerifies
		if cfg.Trace {
			res.Stages = h.splitNodes[0].StageLatencies()
		}
	}
	return res, nil
}

// Sweep runs one system over several client counts.
func Sweep(sys System, clients []int, batched bool, measure time.Duration) ([]Result, error) {
	out := make([]Result, 0, len(clients))
	for _, c := range clients {
		r, err := Run(RunConfig{System: sys, Clients: c, Batched: batched, Measure: measure})
		if err != nil {
			return out, fmt.Errorf("%v @%d clients: %w", sys, c, err)
		}
		out = append(out, r)
	}
	return out, nil
}
