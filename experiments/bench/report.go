package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// EnvelopeSchema versions the machine-readable benchmark file format.
// Bump it when the envelope shape changes incompatibly; trajectory tooling
// refuses files whose schema it does not understand rather than
// misinterpreting them.
const EnvelopeSchema = "splitbft-bench/v1"

// Envelope is the on-disk shape of a BENCH_<exp>.json file: the raw
// experiment results wrapped with a schema tag and the environment
// metadata that makes trajectory points comparable across machines and
// PRs.
type Envelope struct {
	Schema  string `json:"schema"`
	Exp     string `json:"exp"`
	Env     Env    `json:"env"`
	Results any    `json:"results"`
}

// WriteJSON writes one experiment's results as indented JSON to
// dir/BENCH_<exp>.json (creating dir if needed) and returns the path —
// the machine-readable sibling of the Format* renderers. Results are
// wrapped in a versioned Envelope with environment metadata so the files
// can be committed as the repo's perf trajectory (and compared by the CI
// regression gate), not just uploaded as throwaway CI artifacts.
func WriteJSON(dir, exp string, v any) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("bench: json output dir: %w", err)
	}
	env := Envelope{Schema: EnvelopeSchema, Exp: exp, Env: CollectEnv(), Results: v}
	data, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return "", fmt.Errorf("bench: marshal %s results: %w", exp, err)
	}
	path := filepath.Join(dir, "BENCH_"+exp+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("bench: write %s: %w", path, err)
	}
	return path, nil
}

// FormatFigure3 renders a sweep as the two panels of Figure 3: throughput
// (ops/s) and latency (ms) per client count, one column per system.
func FormatFigure3(series map[System][]Result, clients []int, batched bool) string {
	var sb strings.Builder
	label := "Figure 3(a) — not batched"
	if batched {
		label = "Figure 3(b) — batched (200 / 10ms, 40 outstanding per client)"
	}
	systems := AllSystems()
	if batched {
		// The paper's 3(b) omits the simulation/single-thread series.
		systems = []System{SplitKVS, PBFTKVS, SplitBlockchain, PBFTBlockchain}
	}

	sb.WriteString(label + "\n\nThroughput (ops/s)\n")
	fmt.Fprintf(&sb, "%-9s", "#clients")
	for _, sys := range systems {
		fmt.Fprintf(&sb, " %26s", sys)
	}
	sb.WriteString("\n")
	for i, c := range clients {
		fmt.Fprintf(&sb, "%-9d", c)
		for _, sys := range systems {
			rs := series[sys]
			if i < len(rs) {
				fmt.Fprintf(&sb, " %26.0f", rs[i].Throughput)
			} else {
				fmt.Fprintf(&sb, " %26s", "-")
			}
		}
		sb.WriteString("\n")
	}

	sb.WriteString("\nLatency (ms, mean)\n")
	fmt.Fprintf(&sb, "%-9s", "#clients")
	for _, sys := range systems {
		fmt.Fprintf(&sb, " %26s", sys)
	}
	sb.WriteString("\n")
	for i, c := range clients {
		fmt.Fprintf(&sb, "%-9d", c)
		for _, sys := range systems {
			rs := series[sys]
			if i < len(rs) {
				fmt.Fprintf(&sb, " %26.2f", float64(rs[i].MeanLat)/float64(time.Millisecond))
			} else {
				fmt.Fprintf(&sb, " %26s", "-")
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// FormatFigure4 renders the per-compartment ecall profile for the leader,
// batched and unbatched, as in Figure 4.
func FormatFigure4(unbatched, batched Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 4 — mean ecall latency per compartment (leader, KVS, 40 clients)\n\n")
	fmt.Fprintf(&sb, "%-12s %-14s %-12s %-12s\n", "Mode", "Compartment", "Mean ecall", "Calls")
	sb.WriteString(strings.Repeat("-", 54) + "\n")
	for _, pair := range []struct {
		mode string
		res  Result
	}{{"Not Batched", unbatched}, {"Batched", batched}} {
		for _, cs := range pair.res.Compartments {
			fmt.Fprintf(&sb, "%-12s %-14s %-12s %-12d\n", pair.mode, cs.Name, cs.Mean.Round(time.Microsecond), cs.Calls)
		}
	}
	return sb.String()
}

// SpeedupVsBaseline returns the SplitBFT-to-PBFT throughput ratio per
// client count: the headline overhead numbers of §6 (e.g. unbatched KVS
// 43–74 %).
func SpeedupVsBaseline(split, baseline []Result) []float64 {
	n := len(split)
	if len(baseline) < n {
		n = len(baseline)
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if baseline[i].Throughput == 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, split[i].Throughput/baseline[i].Throughput)
	}
	return out
}
