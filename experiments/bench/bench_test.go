package bench

import (
	"strings"
	"testing"
	"time"
)

// shortRun is a fast experiment configuration for tests.
func shortRun(t *testing.T, sys System, clients int, batched bool) Result {
	t.Helper()
	res, err := Run(RunConfig{
		System:  sys,
		Clients: clients,
		Batched: batched,
		Warmup:  150 * time.Millisecond,
		Measure: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("run %v: %v", sys, err)
	}
	return res
}

func TestRunSplitKVSUnbatched(t *testing.T) {
	res := shortRun(t, SplitKVS, 4, false)
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.Errors > 0 {
		t.Fatalf("%d errors during measurement", res.Errors)
	}
	if res.Throughput <= 0 || res.MeanLat <= 0 {
		t.Fatalf("implausible stats: %+v", res)
	}
	if len(res.Compartments) != 3 {
		t.Fatalf("expected 3 compartment stats, got %d", len(res.Compartments))
	}
	for _, cs := range res.Compartments {
		if cs.Calls == 0 {
			t.Fatalf("compartment %s recorded no ecalls", cs.Name)
		}
	}
}

func TestRecoveryAblation(t *testing.T) {
	res, err := RecoveryAblation(t.TempDir(), 24)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshots == 0 && res.WALRecords == 0 {
		t.Fatal("restart recovered nothing from the durability store")
	}
	if res.Downtime <= 0 {
		t.Fatalf("implausible downtime: %+v", res)
	}
	out := FormatRecovery(res)
	for _, want := range []string{"WAL replay ops/s", "downtime"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunPBFTKVSUnbatched(t *testing.T) {
	res := shortRun(t, PBFTKVS, 4, false)
	if res.Ops == 0 || res.Errors > 0 {
		t.Fatalf("baseline failed: %+v", res)
	}
	if res.Compartments != nil {
		t.Fatal("baseline must not report compartment stats")
	}
}

func TestRunBatchedModes(t *testing.T) {
	split := shortRun(t, SplitKVS, 4, true)
	base := shortRun(t, PBFTKVS, 4, true)
	if split.Ops == 0 || base.Ops == 0 {
		t.Fatalf("batched runs incomplete: split=%d base=%d", split.Ops, base.Ops)
	}
	// Batching must beat unbatched throughput substantially.
	unsplit := shortRun(t, SplitKVS, 4, false)
	if split.Throughput < 2*unsplit.Throughput {
		t.Fatalf("batching did not help: %f vs %f", split.Throughput, unsplit.Throughput)
	}
}

func TestRunBlockchainSystems(t *testing.T) {
	res := shortRun(t, SplitBlockchain, 2, false)
	if res.Ops == 0 || res.Errors > 0 {
		t.Fatalf("split blockchain: %+v", res)
	}
	res = shortRun(t, PBFTBlockchain, 2, false)
	if res.Ops == 0 || res.Errors > 0 {
		t.Fatalf("pbft blockchain: %+v", res)
	}
}

func TestSimulationModeFasterThanHardware(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	// Simulation mode omits transition costs; it must not be slower by
	// more than noise. (The paper attributes ~20% of overhead to
	// transitions.) Timing comparisons on a shared machine are noisy, so
	// allow a couple of retries before declaring the invariant broken.
	var hw, sim Result
	for attempt := 0; attempt < 3; attempt++ {
		hw = shortRun(t, SplitKVS, 8, false)
		sim = shortRun(t, SplitKVSSimulation, 8, false)
		if sim.Throughput >= hw.Throughput*0.8 {
			return
		}
		t.Logf("attempt %d: simulation %.0f vs hardware %.0f ops/s, retrying", attempt, sim.Throughput, hw.Throughput)
	}
	t.Fatalf("simulation mode consistently slower than hardware mode: %.0f vs %.0f",
		sim.Throughput, hw.Throughput)
}

func TestSingleThreadModeWorks(t *testing.T) {
	res := shortRun(t, SplitKVSSingleThread, 4, false)
	if res.Ops == 0 || res.Errors > 0 {
		t.Fatalf("single-thread mode: %+v", res)
	}
}

func TestSweepAndReports(t *testing.T) {
	clients := []int{1, 2}
	series := make(map[System][]Result)
	for _, sys := range []System{SplitKVS, PBFTKVS} {
		rs, err := Sweep(sys, clients, false, 250*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		series[sys] = rs
	}
	text := FormatFigure3(series, clients, false)
	if !strings.Contains(text, "SplitBFT KVS") || !strings.Contains(text, "Throughput") {
		t.Fatalf("figure 3 table incomplete:\n%s", text)
	}
	ratios := SpeedupVsBaseline(series[SplitKVS], series[PBFTKVS])
	if len(ratios) != 2 {
		t.Fatalf("ratios = %v", ratios)
	}
	// Sanity bound only: with 250ms windows on a loaded single-CPU host a
	// scheduling blip during one side's run can swing the ratio past 3, so
	// the ceiling is generous — it exists to catch a broken measurement
	// (zero or 100×), not to assert the paper's numbers.
	for _, r := range ratios {
		if r <= 0 || r > 8 {
			t.Fatalf("implausible split/pbft ratio %f", r)
		}
	}

	unb := shortRun(t, SplitKVS, 2, false)
	bat := shortRun(t, SplitKVS, 2, true)
	fig4 := FormatFigure4(unb, bat)
	if !strings.Contains(fig4, "Not Batched") || !strings.Contains(fig4, "prep") {
		t.Fatalf("figure 4 table incomplete:\n%s", fig4)
	}
}

func TestSystemLabels(t *testing.T) {
	for _, sys := range AllSystems() {
		if sys.String() == "" || strings.HasPrefix(sys.String(), "System(") {
			t.Fatalf("missing label for %d", int(sys))
		}
	}
	if !SplitBlockchain.IsBlockchain() || PBFTKVS.IsBlockchain() {
		t.Fatal("IsBlockchain misclassifies")
	}
	if !SplitKVSSimulation.IsSplit() || PBFTBlockchain.IsSplit() {
		t.Fatal("IsSplit misclassifies")
	}
}
