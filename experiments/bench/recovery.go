package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/splitbft/splitbft"
)

// RecoveryResult is one measurement of the crash-recovery ablation: a
// replica is SIGKILL-crashed mid-run, restarted over its sealed durability
// store, and timed until its application state matches the group again.
type RecoveryResult struct {
	// OpsBeforeCrash is how many client operations committed before the
	// crash; OpsDuringOutage how many the surviving 2f+1 committed while
	// the replica was down (the gap state transfer must close).
	OpsBeforeCrash  int
	OpsDuringOutage int

	// Snapshots is how many compartments restored a sealed snapshot (0-3);
	// WALRecords the total log records replayed across them.
	Snapshots  int
	WALRecords uint64
	// ReplayTime is the WAL replay share of recovery; RecoveryTime the
	// full local recovery (open + unseal + import + replay).
	ReplayTime   time.Duration
	RecoveryTime time.Duration
	// Downtime is crash-visible unavailability of the replica: restart
	// call until its state digest matches the group again (local recovery
	// plus the state-transfer gap close).
	Downtime time.Duration
}

// ReplayOpsPerSec is the WAL replay throughput.
func (r RecoveryResult) ReplayOpsPerSec() float64 {
	if r.ReplayTime <= 0 || r.WALRecords == 0 {
		return 0
	}
	return float64(r.WALRecords) / r.ReplayTime.Seconds()
}

// RecoveryAblation runs the recovery scenario end to end on a 4-replica
// SplitBFT KVS cluster with sealed persistence under dataDir: ops client
// operations, SIGKILL of replica 3, ops/2 more operations during the
// outage, restart, and convergence. It reports downtime and replay
// throughput — the durability analog of the paper's fault-injection
// scenarios.
func RecoveryAblation(dataDir string, ops int) (RecoveryResult, error) {
	if ops <= 0 {
		ops = 64
	}
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithKeySeed([]byte("bench-recovery-seed")),
		splitbft.WithPersistence(dataDir),
		splitbft.WithBatchSize(1),
		splitbft.WithCheckpointInterval(8),
	)
	if err != nil {
		return RecoveryResult{}, err
	}
	defer cluster.Close()
	cl, err := cluster.NewClient(100, splitbft.WithInvokeTimeout(30*time.Second))
	if err != nil {
		return RecoveryResult{}, err
	}

	var res RecoveryResult
	put := func(i int) error {
		_, err := cl.Put(fmt.Sprintf("key-%d", i), []byte("recovery-ablation-value"))
		return err
	}
	for i := 0; i < ops; i++ {
		if err := put(i); err != nil {
			return res, fmt.Errorf("pre-crash op %d: %w", i, err)
		}
	}
	res.OpsBeforeCrash = ops
	if err := waitDigests(cluster, []int{0, 1, 2, 3}, 30*time.Second); err != nil {
		return res, err
	}

	cluster.CrashNode(3)
	for i := ops; i < ops+ops/2; i++ {
		if err := put(i); err != nil {
			return res, fmt.Errorf("outage op %d: %w", i, err)
		}
	}
	res.OpsDuringOutage = ops / 2

	begin := time.Now()
	if err := cluster.RestartNode(3); err != nil {
		return res, fmt.Errorf("restart: %w", err)
	}
	rs := cluster.Node(3).RecoveryStats()
	res.Snapshots = rs.Snapshots
	res.WALRecords = rs.WALRecords
	res.ReplayTime = rs.Replay
	res.RecoveryTime = rs.Total
	// Post-restart traffic crosses checkpoint boundaries so the recovered
	// replica's state transfer can trigger. It runs concurrently with the
	// convergence poll: the downtime window must measure the recovery
	// subsystem, not the pacing of the bench's own serial load.
	putErr := make(chan error, 1)
	go func() {
		for i := ops + ops/2; i < ops+ops/2+16; i++ {
			if err := put(i); err != nil {
				putErr <- fmt.Errorf("post-restart op %d: %w", i, err)
				return
			}
		}
		putErr <- nil
	}()
	convergeErr := waitDigests(cluster, []int{0, 3}, 60*time.Second)
	res.Downtime = time.Since(begin)
	if err := <-putErr; err != nil {
		return res, err
	}
	return res, convergeErr
}

// waitDigests polls until the listed nodes' application digests agree.
func waitDigests(cluster *splitbft.Cluster, ids []int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ref := cluster.Node(ids[0]).App().Digest()
		agree := true
		for _, id := range ids[1:] {
			if cluster.Node(id).App().Digest() != ref {
				agree = false
				break
			}
		}
		if agree {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("bench: replicas %v did not converge within %v", ids, timeout)
}

// FormatRecovery renders the recovery ablation.
func FormatRecovery(r RecoveryResult) string {
	var sb strings.Builder
	sb.WriteString("Ablation — crash recovery (SplitBFT KVS, sealed WAL + snapshots)\n\n")
	fmt.Fprintf(&sb, "%-34s %d\n", "ops before crash", r.OpsBeforeCrash)
	fmt.Fprintf(&sb, "%-34s %d\n", "ops during outage", r.OpsDuringOutage)
	fmt.Fprintf(&sb, "%-34s %d of 3\n", "sealed snapshots restored", r.Snapshots)
	fmt.Fprintf(&sb, "%-34s %d\n", "WAL records replayed", r.WALRecords)
	fmt.Fprintf(&sb, "%-34s %v\n", "WAL replay time", r.ReplayTime.Round(time.Microsecond))
	fmt.Fprintf(&sb, "%-34s %.0f\n", "WAL replay ops/s", r.ReplayOpsPerSec())
	fmt.Fprintf(&sb, "%-34s %v\n", "local recovery time", r.RecoveryTime.Round(time.Microsecond))
	fmt.Fprintf(&sb, "%-34s %v\n", "downtime to reconvergence", r.Downtime.Round(time.Millisecond))
	return sb.String()
}
