package chaos

import (
	"fmt"
	"sync"
	"time"
)

// history records the live workload's operation history per key and checks
// per-key linearizability online, as each read completes.
//
// The workload gives the checker a tractable shape: each key has a single
// writer that writes strictly increasing integer values and keeps at most
// one write outstanding (it retries a value until acknowledged before
// moving on). Over such a register, linearizability reduces to four
// checkable conditions on every read:
//
//  1. the value returned was actually written (it is ≤ the highest value
//     whose write had begun before the read returned);
//  2. the value is ≥ the highest value acknowledged before the read began
//     (acknowledged writes are visible in real-time order);
//  3. reads ordered in real time are monotonic: a read starting after an
//     earlier read completed must not observe less;
//  4. values regress nowhere else — implied by 1–3 and the single-writer
//     discipline.
//
// Timestamps are taken conservatively (write acknowledgements stamped
// after Invoke returns, read invocations stamped before the call), so
// every condition errs lenient: the checker can miss a marginal
// violation but never fabricates one.
type history struct {
	mu   sync.Mutex
	keys map[string]*keyHistory
}

type keyHistory struct {
	// maxInvoked is the highest value whose write has begun.
	maxInvoked uint64
	// acks is the acknowledgement frontier: (time, value) pairs, both
	// strictly increasing — the single writer acks in value order.
	acks []ackPoint
	// maxObserved is the highest value any completed read returned, and
	// observedAt when that read completed: later-starting reads must not
	// observe less.
	maxObserved uint64
	observedAt  time.Time
}

type ackPoint struct {
	at time.Time
	v  uint64
}

func newHistory() *history {
	return &history{keys: make(map[string]*keyHistory)}
}

func (h *history) forKey(key string) *keyHistory {
	kh := h.keys[key]
	if kh == nil {
		kh = &keyHistory{}
		h.keys[key] = kh
	}
	return kh
}

// writeInvoked records that the writer began writing value v to key.
func (h *history) writeInvoked(key string, v uint64) {
	h.mu.Lock()
	kh := h.forKey(key)
	if v > kh.maxInvoked {
		kh.maxInvoked = v
	}
	h.mu.Unlock()
}

// writeAcked records that the write of value v to key was acknowledged.
func (h *history) writeAcked(key string, v uint64) {
	now := time.Now()
	h.mu.Lock()
	kh := h.forKey(key)
	if len(kh.acks) == 0 || v > kh.acks[len(kh.acks)-1].v {
		kh.acks = append(kh.acks, ackPoint{at: now, v: v})
	}
	h.mu.Unlock()
}

// lastAcked returns the newest acknowledged value for key.
func (h *history) lastAcked(key string) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	kh := h.keys[key]
	if kh == nil || len(kh.acks) == 0 {
		return 0
	}
	return kh.acks[len(kh.acks)-1].v
}

// readDone checks a completed read of key that began at start and
// returned value v (0 = key absent). A nil return means the read is
// consistent; otherwise the returned string describes the offending
// history fragment.
func (h *history) readDone(key string, start time.Time, v uint64) *string {
	now := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	kh := h.forKey(key)
	// Condition 1: the value must have been written (invocation order:
	// maxInvoked is read after the read completed, so it can only
	// overestimate what was available — lenient).
	if v > kh.maxInvoked {
		s := fmt.Sprintf("read %q=%d but the highest value ever written is %d — value from nowhere", key, v, kh.maxInvoked)
		return &s
	}
	// Condition 2: every write acknowledged before the read began must be
	// visible. Find the newest ack at or before start.
	floor := uint64(0)
	for i := len(kh.acks) - 1; i >= 0; i-- {
		if !kh.acks[i].at.After(start) {
			floor = kh.acks[i].v
			break
		}
	}
	if v < floor {
		s := fmt.Sprintf("read %q=%d began after value %d was acknowledged — stale read (acked frontier %d entries, maxInvoked %d)",
			key, v, floor, len(kh.acks), kh.maxInvoked)
		return &s
	}
	// Condition 3: reads ordered in real time are monotonic.
	if v < kh.maxObserved && start.After(kh.observedAt) {
		s := fmt.Sprintf("read %q=%d began after an earlier read observed %d — non-monotonic reads", key, v, kh.maxObserved)
		return &s
	}
	if v > kh.maxObserved {
		kh.maxObserved = v
		kh.observedAt = now
	}
	return nil
}

// summary renders the per-key frontier state for violation dumps.
func (h *history) summary() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.keys))
	for key, kh := range h.keys {
		acked := uint64(0)
		if len(kh.acks) > 0 {
			acked = kh.acks[len(kh.acks)-1].v
		}
		out = append(out, fmt.Sprintf("key %q: invoked≤%d acked≤%d observed≤%d", key, kh.maxInvoked, acked, kh.maxObserved))
	}
	return out
}
