package chaos

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/splitbft/splitbft/internal/obs"
)

// render builds a plan and returns its deterministic textual schedule.
func render(t *testing.T, name string, seed int64) []string {
	t.Helper()
	plan, err := BuildPlan(name, seed, 4, 1, 10*time.Second)
	if err != nil {
		t.Fatalf("BuildPlan(%q, %d): %v", name, seed, err)
	}
	out := make([]string, len(plan))
	for i, a := range plan {
		out[i] = a.String()
	}
	return out
}

// TestPlanReplayEquality pins the harness's replay guarantee: the same
// (plan, seed, shape) inputs yield a byte-identical fault schedule, and a
// different seed yields a different one.
func TestPlanReplayEquality(t *testing.T) {
	for _, name := range PlanNames() {
		a := render(t, name, 42)
		b := render(t, name, 42)
		if len(a) == 0 {
			t.Fatalf("plan %q: empty schedule", name)
		}
		if strings.Join(a, "\n") != strings.Join(b, "\n") {
			t.Errorf("plan %q: same seed produced different schedules:\n%v\nvs\n%v", name, a, b)
		}
	}
	// Seed sensitivity: flaky-links draws every fault parameter from the
	// seed, so distinct seeds must diverge.
	if x, y := render(t, "flaky-links", 1), render(t, "flaky-links", 2); strings.Join(x, "\n") == strings.Join(y, "\n") {
		t.Error("flaky-links: different seeds produced identical schedules")
	}
}

func TestBuildPlanUnknown(t *testing.T) {
	if _, err := BuildPlan("no-such-plan", 1, 4, 1, time.Second); err == nil {
		t.Fatal("expected error for unknown plan name")
	}
}

// TestRunShortClean runs a short schedule end to end and expects every
// invariant to hold.
func TestRunShortClean(t *testing.T) {
	reg := obs.NewRegistry()
	rep, err := Run(Config{
		Seed:       7,
		Plan:       "partition-storm",
		Duration:   2 * time.Second,
		ReadLeases: true,
		DataDir:    t.TempDir(),
		Registry:   reg,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Failed() {
		t.Fatalf("invariant violations on a clean run:\n%s", rep.Dump())
	}
	if rep.Writes == 0 || rep.Reads == 0 {
		t.Fatalf("workload made no progress: %d writes, %d reads", rep.Writes, rep.Reads)
	}
	if got := reg.Counter("chaos_actions_total").Value(); got == 0 {
		t.Fatal("chaos_actions_total stayed 0 — fault actions not counted")
	}
	if got := reg.Counter("chaos_violations_total").Value(); got != 0 {
		t.Fatalf("chaos_violations_total = %d on a clean run", got)
	}
}

// TestBrokenInvariantDetected proves the checkers actually check: a run
// whose journal is deliberately corrupted mid-schedule must fail, and the
// report must name the seed, the live plan step and the offending history.
func TestBrokenInvariantDetected(t *testing.T) {
	rep, err := Run(Config{
		Seed:           99,
		Plan:           "flaky-links",
		Duration:       2 * time.Second,
		BreakInvariant: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Failed() {
		t.Fatal("sabotaged run reported no violations")
	}
	var ledger *Violation
	for i := range rep.Violations {
		if rep.Violations[i].Invariant == "ledger-prefix" {
			ledger = &rep.Violations[i]
			break
		}
	}
	if ledger == nil {
		t.Fatalf("no ledger-prefix violation recorded:\n%s", rep.Dump())
	}
	if ledger.Step == "" || len(ledger.History) == 0 {
		t.Fatalf("violation missing step or history: %+v", ledger)
	}
	dump := rep.Dump()
	for _, want := range []string{fmt.Sprintf("seed %d", rep.Seed), "ledger-prefix", "history:"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}
