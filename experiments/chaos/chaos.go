package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/splitbft/splitbft"
	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/obs"
	"github.com/splitbft/splitbft/internal/transport"
)

// Config parameterises one chaos run. Seed and Plan fully determine the
// fault schedule; the workload itself is concurrent (its interleaving is
// not replayed), which is why violations carry the full frontier history
// and the live plan step rather than relying on re-execution alone.
type Config struct {
	// Seed drives the plan generator, the simulated network's per-link
	// fault randomness, and the workload's key selection.
	Seed int64
	// Plan names the fault schedule (see PlanNames).
	Plan string
	// Duration is the fault-schedule window; quiescence checks run after.
	Duration time.Duration
	// Consensus is the agreement mode: "classic" (3f+1) or "trusted"
	// (2f+1).
	Consensus string
	// Auth is the agreement authenticator: "sig" or "mac".
	Auth string
	// ReadLeases enables the lease-anchored local-read fast path.
	ReadLeases bool
	// DataDir, when set, enables persistence rooted there: each node gets
	// DataDir/node<i> and crash-restarts recover from disk.
	DataDir string
	// Writers and Readers size the workload (defaults 2 and 2).
	Writers, Readers int
	// Registry, when set, receives chaos counters (actions, operations,
	// violations) alongside whatever the nodes export.
	Registry *obs.Registry
	// BreakInvariant, when positive, deliberately corrupts replica 0's
	// execution journal at that offset into the run — the test hook proving
	// the checkers catch a violated invariant (report must fail and name
	// the live step).
	BreakInvariant time.Duration
}

func (c *Config) fill() {
	if c.Plan == "" {
		c.Plan = "kitchen-sink"
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Consensus == "" {
		c.Consensus = "classic"
	}
	if c.Auth == "" {
		c.Auth = "sig"
	}
	if c.Writers <= 0 {
		c.Writers = 2
	}
	if c.Readers <= 0 {
		c.Readers = 2
	}
}

// Violation is one invariant breach: which invariant, which plan step was
// live, and the history fragment that convicts it.
type Violation struct {
	// Invariant is "ledger-prefix", "linearizability", "exactly-once" or
	// "harness" (fault actions that themselves failed).
	Invariant string
	// Step is the rendered plan action that was live when the violation
	// surfaced, StepIndex its position ( -1 before the first action).
	Step      string
	StepIndex int
	// Detail describes the breach.
	Detail string
	// History is the per-key frontier state at detection time.
	History []string
}

// maxViolations caps how many violations one run records; a systemic
// breach would otherwise flood the report with echoes of itself.
const maxViolations = 32

// Report is the outcome of a chaos run. Replay the fault schedule by
// re-running with the same Config (seed, plan, duration, cluster shape).
type Report struct {
	Seed       int64
	Plan       string
	N, F       int
	Steps      []string
	Violations []Violation
	// Writes/Reads are completed workload operations; Resends the total
	// client retransmissions the schedule provoked.
	Writes, Reads, Resends uint64
}

// Failed reports whether any invariant was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Dump renders the full replayable record: seed, schedule, violations.
func (r *Report) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos plan %q seed %d (n=%d f=%d): %d writes, %d reads, %d resends\n", r.Plan, r.Seed, r.N, r.F, r.Writes, r.Reads, r.Resends)
	b.WriteString("schedule:\n")
	for i, s := range r.Steps {
		fmt.Fprintf(&b, "  [%d] %s\n", i, s)
	}
	if !r.Failed() {
		b.WriteString("invariants: all held\n")
		return b.String()
	}
	fmt.Fprintf(&b, "VIOLATIONS (%d):\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  invariant %s at step [%d] %s\n    %s\n", v.Invariant, v.StepIndex, v.Step, v.Detail)
		for _, h := range v.History {
			fmt.Fprintf(&b, "    history: %s\n", h)
		}
	}
	return b.String()
}

// harness is one live run: cluster, workload, checker state.
type harness struct {
	cfg     Config
	cluster *splitbft.Cluster
	n, f    int
	planLen int
	hist    *history

	mu         sync.Mutex
	stepIdx    int
	step       string
	violations []Violation
	down       map[int]bool
	oneWay     [][2]int

	settle  *splitbft.Client
	stop    chan struct{}
	writes  counter
	reads   counter
	actions *obs.Counter // nil without a registry
	viol    *obs.Counter
}

type counter struct {
	mu sync.Mutex
	v  uint64
}

func (c *counter) inc() {
	c.mu.Lock()
	c.v++
	c.mu.Unlock()
}

func (c *counter) value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Run executes one chaos run to completion: build the cluster, start the
// workload, drive the fault plan with online invariant checks, then heal
// everything and verify quiescence. The returned error covers harness
// failures (bad config, cluster construction); invariant violations are in
// the Report, not the error.
func Run(cfg Config) (*Report, error) {
	cfg.fill()
	n, f := 4, 1
	if cfg.Consensus == "trusted" {
		n = 3
	}
	plan, err := BuildPlan(cfg.Plan, cfg.Seed, n, f, cfg.Duration)
	if err != nil {
		return nil, err
	}

	opts := []splitbft.Option{
		splitbft.WithConsensusMode(cfg.Consensus),
		splitbft.WithAgreementAuth(cfg.Auth),
		splitbft.WithReadLeases(cfg.ReadLeases),
		splitbft.WithRequestTimeout(300 * time.Millisecond),
		// Frequent checkpoints: restarted replicas close their outage gap
		// through the checkpoint/state-transfer path, and the workload is
		// small enough that the default interval might never be crossed.
		splitbft.WithCheckpointInterval(8),
		splitbft.WithNetworkSeed(cfg.Seed),
		splitbft.WithApp(func() splitbft.Application { return NewLedgerApp() }),
		splitbft.WithInvokeTimeout(cfg.Duration + 30*time.Second),
	}
	if cfg.DataDir != "" {
		// Persistence needs stable enclave keys across restarts; derive
		// them from the run's seed so replays unseal identically.
		opts = append(opts,
			splitbft.WithPersistence(cfg.DataDir),
			splitbft.WithKeySeed([]byte(fmt.Sprintf("chaos-keyseed-%d", cfg.Seed))))
	}
	cluster, err := splitbft.NewCluster(n, opts...)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	h := &harness{
		cfg:     cfg,
		cluster: cluster,
		n:       n,
		f:       f,
		planLen: len(plan),
		hist:    newHistory(),
		stepIdx: -1,
		step:    "(before schedule)",
		down:    make(map[int]bool),
		stop:    make(chan struct{}),
	}
	if cfg.Registry != nil {
		h.actions = cfg.Registry.Counter("chaos_actions_total")
		h.viol = cfg.Registry.Counter("chaos_violations_total")
	}

	report := &Report{Seed: cfg.Seed, Plan: cfg.Plan, N: n, F: f}
	for _, a := range plan {
		report.Steps = append(report.Steps, a.String())
	}

	// The settle client drives traffic during the quiescence convergence
	// wait: replicas that were down catch up via checkpoints, and
	// checkpoints need the sequence space to keep advancing.
	if h.settle, err = cluster.NewClient(99, splitbft.WithInvokeTimeout(2*time.Second)); err != nil {
		return nil, err
	}

	// Workload: one client per writer and per reader. Writer i owns key
	// chaos-w<i> exclusively; readers sample those keys.
	var wg sync.WaitGroup
	writers := make([]*splitbft.Client, cfg.Writers)
	for i := range writers {
		cl, err := cluster.NewClient(uint32(100 + i))
		if err != nil {
			return nil, err
		}
		writers[i] = cl
		wg.Add(1)
		go h.writer(&wg, cl, i)
	}
	for i := 0; i < cfg.Readers; i++ {
		cl, err := cluster.NewClient(uint32(200 + i))
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go h.reader(&wg, cl, int64(i))
	}

	h.drive(plan)

	// Heal before waiting: writers stranded by a partition sit inside
	// Invoke until their requests can commit again.
	close(h.stop)
	h.healAll()
	wg.Wait()
	h.verifyQuiescence()

	h.mu.Lock()
	report.Violations = h.violations
	h.mu.Unlock()
	report.Writes = h.writes.value()
	report.Reads = h.reads.value()
	for _, cl := range writers {
		report.Resends += cl.Resends()
	}
	return report, nil
}

func writerKey(i int) string { return fmt.Sprintf("chaos-w%d", i) }

// writer drives key chaos-w<i> as a single-writer monotonic register: one
// outstanding write, each value retried (with fresh op bytes, so protocol
// retries and client retries stay distinguishable to the exactly-once
// checker) until acknowledged before the next value starts.
func (h *harness) writer(wg *sync.WaitGroup, cl *splitbft.Client, i int) {
	defer wg.Done()
	key := writerKey(i)
	var v uint64
	for {
		select {
		case <-h.stop:
			return
		default:
		}
		v++
		h.hist.writeInvoked(key, v)
		for attempt := 0; ; attempt++ {
			_, err := cl.Invoke(app.EncodePut(key, []byte(fmt.Sprintf("%d.%d", v, attempt))))
			if err == nil {
				break
			}
			select {
			case <-h.stop:
				// The value stays un-acknowledged; the quiescence check
				// only requires acknowledged writes to survive.
				return
			case <-time.After(50 * time.Millisecond):
			}
		}
		h.hist.writeAcked(key, v)
		h.writes.inc()
		select {
		case <-h.stop:
			return
		case <-time.After(15 * time.Millisecond):
		}
	}
}

// parseValue decodes a register value ("<v>.<attempt>"); absent keys read
// as 0.
func parseValue(raw []byte) (uint64, error) {
	s := string(raw)
	if s == "" || s == "NOTFOUND" {
		// The KVS answers reads of absent keys with a NOTFOUND sentinel;
		// for a monotonic register that reads as "nothing written yet".
		return 0, nil
	}
	if i := strings.IndexByte(s, '.'); i >= 0 {
		s = s[:i]
	}
	return strconv.ParseUint(s, 10, 64)
}

// reader issues linearizable reads over the writer keys and feeds every
// completed read to the online checker. Key choice rotates deterministically
// per reader; failed reads (timeouts during partitions) are fine — only
// completed reads make linearizability claims.
func (h *harness) reader(wg *sync.WaitGroup, cl *splitbft.Client, salt int64) {
	defer wg.Done()
	for turn := salt; ; turn++ {
		select {
		case <-h.stop:
			return
		default:
		}
		key := writerKey(int(turn) % h.cfg.Writers)
		start := time.Now()
		raw, err := cl.InvokeRead(app.EncodeGet(key))
		if err == nil {
			v, perr := parseValue(raw)
			if perr != nil {
				h.violate("linearizability", fmt.Sprintf("read %q returned unparseable value %q: %v", key, raw, perr))
			} else if msg := h.hist.readDone(key, start, v); msg != nil {
				h.violate("linearizability", *msg)
			}
			h.reads.inc()
		}
		select {
		case <-h.stop:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// violate records one invariant breach with the live plan step and the
// frontier history.
func (h *harness) violate(invariant, detail string) {
	if h.viol != nil {
		h.viol.Inc()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.violations) >= maxViolations {
		return
	}
	h.violations = append(h.violations, Violation{
		Invariant: invariant,
		Step:      h.step,
		StepIndex: h.stepIdx,
		Detail:    detail,
		History:   h.hist.summary(),
	})
}

// drive executes the plan: a single goroutine applies due actions and runs
// the periodic ledger checks, so fault application, restarts and journal
// inspection never race each other.
func (h *harness) drive(plan []Action) {
	start := time.Now()
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	next := 0
	broke := false
	lastCheck := start
	for {
		now := <-tick.C
		elapsed := now.Sub(start)
		for next < len(plan) && plan[next].At <= elapsed {
			a := plan[next]
			h.mu.Lock()
			h.stepIdx, h.step = next, a.String()
			h.mu.Unlock()
			h.apply(a)
			if h.actions != nil {
				h.actions.Inc()
			}
			next++
		}
		if h.cfg.BreakInvariant > 0 && !broke && elapsed >= h.cfg.BreakInvariant {
			broke = true
			if la, ok := h.cluster.Node(0).App().(*LedgerApp); ok && !h.isDown(0) {
				la.Sabotage()
			}
		}
		if now.Sub(lastCheck) >= 200*time.Millisecond {
			lastCheck = now
			h.checkLedgers()
		}
		if elapsed >= h.cfg.Duration {
			return
		}
	}
}

func (h *harness) isDown(i int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.down[i]
}

func (h *harness) setDown(i int, d bool) {
	h.mu.Lock()
	h.down[i] = d
	h.mu.Unlock()
}

// apply executes one plan action against the cluster.
func (h *harness) apply(a Action) {
	c := h.cluster
	switch a.Op {
	case OpPartition:
		if a.StrandClient {
			c.PartitionWithClients([]uint32{100}, a.Nodes...)
		} else {
			c.Partition(a.Nodes...)
		}
	case OpHeal:
		c.Heal()
	case OpCrash:
		c.CrashNode(a.Node)
		h.setDown(a.Node, true)
	case OpRestart:
		if err := c.RestartNode(a.Node); err != nil {
			h.violate("harness", fmt.Sprintf("restart node %d: %v", a.Node, err))
			return
		}
		h.setDown(a.Node, false)
	case OpCrashEnclave:
		if !h.isDown(a.Node) {
			c.Node(a.Node).CrashEnclave(roleFromString(a.Role))
		}
	case OpGlobalFaults:
		c.SetNetFaults(splitbft.NetFaults{DropProb: a.Drop, DupProb: a.Dup, ReorderProb: a.Reorder, Delay: a.Delay, Jitter: a.Jitter})
	case OpLinkFaults:
		c.Net().SetLinkFaults(transport.ReplicaEndpoint(uint32(a.Node)), transport.ReplicaEndpoint(uint32(a.Node2)),
			transport.Faults{DropProb: a.Drop, DupProb: a.Dup, ReorderProb: a.Reorder, Delay: a.Delay, Jitter: a.Jitter})
	case OpBlockOneWay:
		c.Net().BlockOneWay(transport.ReplicaEndpoint(uint32(a.Node)), transport.ReplicaEndpoint(uint32(a.Node2)))
		h.mu.Lock()
		h.oneWay = append(h.oneWay, [2]int{a.Node, a.Node2})
		h.mu.Unlock()
	case OpClearNet:
		h.clearNet()
	case OpSkew:
		c.Node(a.Node).SetClockSkew(a.Dur)
	case OpDiskStall:
		c.Node(a.Node).DiskFaults().Stall(a.Dur)
	case OpDiskFail:
		c.Node(a.Node).DiskFaults().FailWrites(fmt.Errorf("chaos: injected write error"))
	case OpDiskClear:
		c.Node(a.Node).DiskFaults().Clear()
	default:
		h.violate("harness", fmt.Sprintf("unknown plan op %q", a.Op))
	}
}

// clearNet removes probabilistic faults and one-way blocks (partitions are
// healed separately, through Heal, which owns that bookkeeping).
func (h *harness) clearNet() {
	h.cluster.ClearNetFaults()
	h.mu.Lock()
	blocks := h.oneWay
	h.oneWay = nil
	h.mu.Unlock()
	for _, b := range blocks {
		h.cluster.Net().UnblockOneWay(transport.ReplicaEndpoint(uint32(b[0])), transport.ReplicaEndpoint(uint32(b[1])))
	}
}

func roleFromString(s string) splitbft.Role {
	switch s {
	case "confirmation":
		return splitbft.RoleConfirmation
	case "execution":
		return splitbft.RoleExecution
	default:
		return splitbft.RolePreparation
	}
}

// ledger returns node i's journaled application, nil while the node is
// down.
func (h *harness) ledger(i int) *LedgerApp {
	if h.isDown(i) {
		return nil
	}
	la, _ := h.cluster.Node(i).App().(*LedgerApp)
	return la
}

// checkLedgers verifies ledger-prefix parity and exactly-once apply across
// every live replica pair. Heads are sampled per replica and compared as
// prefixes, so concurrent execution never yields a false positive: in a
// correct run any two journal states are prefix-ordered regardless of when
// each was sampled.
func (h *harness) checkLedgers() {
	type head struct {
		node  int
		app   *LedgerApp
		count uint64
		chain crypto.Digest
	}
	var heads []head
	for i := 0; i < h.n; i++ {
		la := h.ledger(i)
		if la == nil {
			continue
		}
		if d := la.Duplicate(); d != "" {
			h.violate("exactly-once", fmt.Sprintf("node %d: %s", i, d))
		}
		cnt, chain := la.Head()
		heads = append(heads, head{node: i, app: la, count: cnt, chain: chain})
	}
	for i := 0; i < len(heads); i++ {
		for j := i + 1; j < len(heads); j++ {
			lo, hi := heads[i], heads[j]
			if lo.count > hi.count {
				lo, hi = hi, lo
			}
			if lo.count == hi.count {
				if lo.chain != hi.chain {
					h.violate("ledger-prefix", fmt.Sprintf("nodes %d and %d diverge at count %d: %x vs %x\n    node %d ops: %v\n    node %d ops: %v",
						lo.node, hi.node, lo.count, lo.chain[:8], hi.chain[:8],
						lo.node, lo.app.OpsAround(lo.count, 4), hi.node, hi.app.OpsAround(lo.count, 4)))
				}
				continue
			}
			// hi must contain lo's head as a prefix — if it still retains
			// that point (a freshly restored replica may not; skip then).
			if at, ok := hi.app.ChainAt(lo.count); ok && at != lo.chain {
				h.violate("ledger-prefix", fmt.Sprintf("node %d's journal at count %d (%x) is not a prefix of node %d's (%x)\n    node %d ops: %v\n    node %d ops: %v",
					lo.node, lo.count, lo.chain[:8], hi.node, at[:8],
					lo.node, lo.app.OpsAround(lo.count, 4), hi.node, hi.app.OpsAround(lo.count, 4)))
			}
		}
	}
}

// healAll clears every outstanding fault and restarts anything down,
// returning the cluster to a fault-free steady state.
func (h *harness) healAll() {
	h.mu.Lock()
	h.stepIdx, h.step = h.planLen, "(quiescence)"
	h.mu.Unlock()

	h.cluster.Heal()
	h.clearNet()
	for i := 0; i < h.n; i++ {
		h.cluster.Node(i).SetClockSkew(0)
		h.cluster.Node(i).DiskFaults().Clear()
		if h.isDown(i) {
			if err := h.cluster.RestartNode(i); err != nil {
				h.violate("harness", fmt.Sprintf("quiescence restart node %d: %v", i, err))
				continue
			}
			h.setDown(i, false)
		}
	}
}

// verifyQuiescence checks the end state once the workload has drained:
// journals converge to one head, every acknowledged write is readable, and
// no replica double-applied.
func (h *harness) verifyQuiescence() {
	// Journal convergence: all replicas reach one identical head. Settle
	// writes keep the sequence space advancing so laggards cross a
	// checkpoint boundary and state-transfer the gap; once they stop the
	// journals are stable.
	deadline := time.Now().Add(30 * time.Second)
	settleSeq := 0
	for {
		settleSeq++
		_, _ = h.settle.Invoke(app.EncodePut("chaos-settle", []byte(strconv.Itoa(settleSeq))))
		h.checkLedgers()
		counts := make(map[uint64]int)
		var minC, maxC uint64
		first := true
		for i := 0; i < h.n; i++ {
			if la := h.ledger(i); la != nil {
				c, _ := la.Head()
				counts[c]++
				if first || c < minC {
					minC = c
				}
				if first || c > maxC {
					maxC = c
				}
				first = false
			}
		}
		if len(counts) == 1 && !first {
			break
		}
		if time.Now().After(deadline) {
			h.violate("ledger-prefix", fmt.Sprintf("quiescence: journals did not converge within 30s (heads %d..%d)", minC, maxC))
			return
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Every acknowledged write survived: read each register off replica
	// 0's final state and run it through the same read checker.
	la := h.ledger(0)
	if la == nil {
		return
	}
	now := time.Now()
	for i := 0; i < h.cfg.Writers; i++ {
		key := writerKey(i)
		raw, _ := la.Get(key)
		v, err := parseValue(raw)
		if err != nil {
			h.violate("linearizability", fmt.Sprintf("final state of %q unparseable: %q", key, raw))
			continue
		}
		if msg := h.hist.readDone(key, now, v); msg != nil {
			h.violate("linearizability", "final state: "+*msg)
		}
	}
}
