// Package chaos is a deterministic, seeded chaos harness for SplitBFT
// clusters: it runs a live workload against a splitbft.Cluster while
// executing a fault plan — composable timed actions over the network,
// disk, clock and enclave fault surfaces — and continuously verifies
// safety invariants, reporting a replayable seed on any violation.
//
// Three invariants are checked online during the schedule and again at
// quiescence:
//
//   - ledger-prefix parity: the journaled execution histories of any two
//     live replicas must be prefixes of one another (compared by chained
//     digest, so a single diverging operation is caught);
//   - per-key linearizability of the read history: every read must
//     observe at least the newest write acknowledged before it began and
//     never a value that was never written, and real-time-ordered reads
//     must be monotonic;
//   - exactly-once apply: no replica may execute the same client
//     operation twice within one application instance, across any
//     combination of crash, restart, WAL replay and state transfer.
//
// A violation aborts nothing: the harness records it with the seed, the
// plan step that was live, and the offending history, so the run is
// replayable bit-for-bit from the report alone.
package chaos

import (
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/crypto"
)

// chainRing bounds how many (count, chain) pairs a LedgerApp retains for
// prefix comparison. A checker comparing two replicas whose journals
// differ by more than this many operations skips the pair (it cannot
// anchor the prefix) and catches up at the next round.
const chainRing = 8192

// dupTrackMax bounds the duplicate-detection map; when the bound is hit
// the map resets, trading detection of duplicates more than dupTrackMax
// operations apart for bounded memory.
const dupTrackMax = 1 << 17

// LedgerApp wraps the key-value store with an execution journal: a chained
// digest over every applied operation plus an apply-count, both part of
// the replicated state (snapshot/restore carries them), so two replicas
// whose journals agree at a count have executed byte-identical histories
// up to it. The journal is what the ledger-prefix-parity and exactly-once
// invariant checkers read.
type LedgerApp struct {
	mu  sync.Mutex
	kvs *app.KVS
	// count and chain are replicated state: the length of the applied
	// history and the running digest over it.
	count uint64
	chain crypto.Digest
	// recent is observer-only: the last chainRing (count, chain) points,
	// for anchoring prefix comparisons between replicas at different
	// counts. Reset (not restored) on snapshot restore.
	recent []chainPoint
	// seen is observer-only: per-instance apply counts keyed by operation
	// digest. The workload makes every write operation unique, so a count
	// of 2 within one instance is a duplicate execution.
	seen map[crypto.Digest]uint32
	dup  string // first duplicate detected, "" when none
}

type chainPoint struct {
	count uint64
	chain crypto.Digest
	desc  string // rendered operation, for divergence dumps
}

// describeOp renders a KVS operation compactly for violation dumps.
func describeOp(clientID uint32, op []byte) string {
	if len(op) == 0 {
		return fmt.Sprintf("c%d:empty", clientID)
	}
	kind := "op"
	switch op[0] {
	case 1:
		kind = "put"
	case 2:
		kind = "get"
	case 3:
		kind = "del"
	}
	body := op[1:]
	if len(body) > 24 {
		body = body[:24]
	}
	return fmt.Sprintf("c%d:%s:%q", clientID, kind, body)
}

// NewLedgerApp returns an empty journaled KVS.
func NewLedgerApp() *LedgerApp {
	return &LedgerApp{kvs: app.NewKVS(), seen: make(map[crypto.Digest]uint32)}
}

// Execute implements app.Application: journal the operation, then apply it
// to the underlying store.
func (l *LedgerApp) Execute(clientID uint32, op []byte) []byte {
	var idBuf [4]byte
	binary.BigEndian.PutUint32(idBuf[:], clientID)
	h := crypto.HashData(append(append([]byte(nil), idBuf[:]...), op...))
	l.mu.Lock()
	// Reads are exempt from duplicate tracking: a client re-issuing an
	// identical GET is a new, identical request, and ordered-read
	// fallbacks route those through Execute.
	if !app.IsRead(op) {
		if n := l.seen[h] + 1; n > 1 && l.dup == "" {
			l.dup = fmt.Sprintf("op %x (client %d) applied %d times in one instance", h[:8], clientID, n)
		} else {
			l.seen[h] = n
		}
		if len(l.seen) > dupTrackMax {
			l.seen = make(map[crypto.Digest]uint32)
		}
	}
	l.chain = crypto.HashData(append(l.chain[:], h[:]...))
	l.count++
	l.recent = append(l.recent, chainPoint{count: l.count, chain: l.chain, desc: describeOp(clientID, op)})
	if len(l.recent) > chainRing {
		l.recent = l.recent[len(l.recent)-chainRing:]
	}
	res := l.kvs.Execute(clientID, op)
	l.mu.Unlock()
	return res
}

// ExecuteRead implements app.ReadExecutor: reads bypass the journal (they
// mutate nothing) and go straight to the store.
func (l *LedgerApp) ExecuteRead(clientID uint32, op []byte) ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.kvs.ExecuteRead(clientID, op)
}

// Digest implements app.Application: the KVS digest chained with the
// journal head, so replicas disagree the moment their histories do even
// if their final key-value states happen to collide.
func (l *LedgerApp) Digest() crypto.Digest {
	l.mu.Lock()
	defer l.mu.Unlock()
	inner := l.kvs.Digest()
	var cnt [8]byte
	binary.BigEndian.PutUint64(cnt[:], l.count)
	sum := make([]byte, 0, len(inner)+len(l.chain)+8)
	sum = append(sum, inner[:]...)
	sum = append(sum, l.chain[:]...)
	sum = append(sum, cnt[:]...)
	return crypto.HashData(sum)
}

// Snapshot implements app.Application: journal head plus the inner store.
func (l *LedgerApp) Snapshot() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	inner := l.kvs.Snapshot()
	out := make([]byte, 0, 8+len(l.chain)+len(inner))
	var cnt [8]byte
	binary.BigEndian.PutUint64(cnt[:], l.count)
	out = append(out, cnt[:]...)
	out = append(out, l.chain[:]...)
	return append(out, inner...)
}

// Restore implements app.Application. The observer-side surfaces (recent
// ring, duplicate tracking) reset: a restored instance starts a fresh
// observation epoch.
func (l *LedgerApp) Restore(snapshot []byte) error {
	if len(snapshot) < 8+len(crypto.Digest{}) {
		return fmt.Errorf("chaos: ledger snapshot too short (%d bytes)", len(snapshot))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.count = binary.BigEndian.Uint64(snapshot)
	copy(l.chain[:], snapshot[8:])
	l.recent = append(l.recent[:0], chainPoint{count: l.count, chain: l.chain, desc: "restore"})
	l.seen = make(map[crypto.Digest]uint32)
	l.dup = ""
	return l.kvs.Restore(snapshot[8+len(l.chain):])
}

// Head returns the journal head: how many operations this instance's
// history holds and the chained digest over them.
func (l *LedgerApp) Head() (count uint64, chain crypto.Digest) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count, l.chain
}

// ChainAt returns the chained digest after count operations, if this
// instance still retains that point (the ring holds chainRing entries).
func (l *LedgerApp) ChainAt(count uint64) (crypto.Digest, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if count == 0 {
		return crypto.Digest{}, true
	}
	for i := len(l.recent) - 1; i >= 0; i-- {
		if l.recent[i].count == count {
			return l.recent[i].chain, true
		}
		if l.recent[i].count < count {
			break
		}
	}
	return crypto.Digest{}, false
}

// OpsAround renders the retained journal entries within k positions of
// count — the divergence neighborhood for ledger-prefix violation dumps.
func (l *LedgerApp) OpsAround(count uint64, k uint64) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for _, p := range l.recent {
		if p.count+k >= count && p.count <= count+k {
			out = append(out, fmt.Sprintf("#%d %s %x", p.count, p.desc, p.chain[:4]))
		}
	}
	return out
}

// Duplicate returns the first duplicate execution this instance observed,
// or "" — the exactly-once invariant's surface.
func (l *LedgerApp) Duplicate() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dup
}

// Get returns the current value of key, for quiescence checks.
func (l *LedgerApp) Get(key string) ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.kvs.Get(key)
}

// Sabotage deliberately corrupts this instance's journal — chain digest
// and retained ring — bypassing consensus entirely. It exists as the test
// hook behind the harness's BreakInvariant option: a correct checker must
// flag ledger-prefix divergence on the next comparison. Never called
// outside tests.
func (l *LedgerApp) Sabotage() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.chain = crypto.HashData([]byte("sabotage"))
	for i := range l.recent {
		l.recent[i].chain = l.chain
	}
}
