package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Action is one timed fault-plan step. Actions are plain data — the plan
// generator produces them deterministically from (name, seed, n, f,
// duration), and their rendered form is the replay pin: two runs with the
// same inputs must produce byte-identical action lists.
type Action struct {
	// At is the action's offset from workload start.
	At time.Duration
	// Op selects the fault; the remaining fields are its operands.
	Op string
	// Node and Node2 name replica IDs (Node2 for directed link ops).
	Node, Node2 int
	// Nodes names a replica group (partitions).
	Nodes []int
	// Role is the compartment for enclave crashes.
	Role string
	// Dur is a duration operand (disk stall, clock skew).
	Dur time.Duration
	// Drop/Dup/Reorder/Delay/Jitter are fault probabilities and latencies
	// for link-fault ops.
	Drop, Dup, Reorder float64
	Delay, Jitter      time.Duration
	// StrandClient marks a partition that also strands the workload's
	// first writer client inside the minority.
	StrandClient bool
}

// Action ops.
const (
	OpPartition    = "partition"     // Nodes [+ StrandClient]
	OpHeal         = "heal"          // heal partitions
	OpCrash        = "crash"         // Node
	OpRestart      = "restart"       // Node
	OpCrashEnclave = "crash-enclave" // Node, Role
	OpGlobalFaults = "net-faults"    // Drop/Dup/Reorder/Delay/Jitter, all links
	OpLinkFaults   = "link-faults"   // Node→Node2 directed
	OpBlockOneWay  = "block-one-way" // Node→Node2
	OpClearNet     = "clear-net"     // remove all probabilistic faults + one-way blocks
	OpSkew         = "clock-skew"    // Node, Dur (may be negative)
	OpDiskStall    = "disk-stall"    // Node, Dur per flush
	OpDiskFail     = "disk-fail"     // Node: sticky write errors
	OpDiskClear    = "disk-clear"    // Node: clear injector (store stays failed until restart)
)

// String renders the action deterministically; the rendered schedule is
// what the replay-equality test compares.
func (a Action) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%v %s", a.At, a.Op)
	switch a.Op {
	case OpPartition:
		fmt.Fprintf(&b, " nodes=%v strand-client=%v", a.Nodes, a.StrandClient)
	case OpCrash, OpRestart, OpDiskFail, OpDiskClear:
		fmt.Fprintf(&b, " node=%d", a.Node)
	case OpCrashEnclave:
		fmt.Fprintf(&b, " node=%d role=%s", a.Node, a.Role)
	case OpGlobalFaults:
		fmt.Fprintf(&b, " drop=%.3f dup=%.3f reorder=%.3f delay=%v jitter=%v", a.Drop, a.Dup, a.Reorder, a.Delay, a.Jitter)
	case OpLinkFaults:
		fmt.Fprintf(&b, " link=%d>%d drop=%.3f dup=%.3f reorder=%.3f delay=%v jitter=%v", a.Node, a.Node2, a.Drop, a.Dup, a.Reorder, a.Delay, a.Jitter)
	case OpBlockOneWay:
		fmt.Fprintf(&b, " link=%d>%d", a.Node, a.Node2)
	case OpSkew:
		fmt.Fprintf(&b, " node=%d skew=%v", a.Node, a.Dur)
	case OpDiskStall:
		fmt.Fprintf(&b, " node=%d stall=%v", a.Node, a.Dur)
	}
	return b.String()
}

// PlanNames lists the named plans BuildPlan accepts.
func PlanNames() []string {
	return []string{"rolling-crashes", "flaky-links", "partition-storm", "disk-degraded", "skewed-clocks", "kitchen-sink"}
}

// BuildPlan generates the named plan's action schedule for an n-replica
// group tolerating f faults over the given duration. The schedule is a
// pure function of its arguments: same inputs, byte-identical schedule.
// All randomness comes from one rand.Rand seeded with seed.
func BuildPlan(name string, seed int64, n, f int, duration time.Duration) ([]Action, error) {
	rng := rand.New(rand.NewSource(seed))
	var acts []Action
	switch name {
	case "rolling-crashes":
		acts = planRollingCrashes(rng, n, duration)
	case "flaky-links":
		acts = planFlakyLinks(rng, n, duration)
	case "partition-storm":
		acts = planPartitionStorm(rng, n, f, duration)
	case "disk-degraded":
		acts = planDiskDegraded(rng, n, duration)
	case "skewed-clocks":
		acts = planSkewedClocks(rng, n, duration)
	case "kitchen-sink":
		acts = planKitchenSink(rng, n, f, duration)
	default:
		return nil, fmt.Errorf("chaos: unknown plan %q (have %s)", name, strings.Join(PlanNames(), ", "))
	}
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].At < acts[j].At })
	return acts, nil
}

// frac positions an action at a fraction of the run.
func frac(d time.Duration, num, den int64) time.Duration {
	return d * time.Duration(num) / time.Duration(den)
}

// jitterFrac perturbs a schedule offset by up to ±d/den.
func jitterFrac(rng *rand.Rand, at, d time.Duration, den int64) time.Duration {
	span := int64(d) / den
	if span <= 0 {
		return at
	}
	off := at + time.Duration(rng.Int63n(2*span)-span)
	if off < 0 {
		off = 0
	}
	return off
}

// planRollingCrashes cycles crash → recover across the replicas, one down
// at a time (staying within f), alternating whole-node crashes with
// single-enclave crashes.
func planRollingCrashes(rng *rand.Rand, n int, d time.Duration) []Action {
	roles := []string{"preparation", "confirmation", "execution"}
	var acts []Action
	const rounds = 3
	for r := 0; r < rounds; r++ {
		node := rng.Intn(n)
		start := frac(d, int64(2*r), 2*rounds)
		if r%2 == 1 {
			// An enclave crash leaves the node up but mute in one
			// compartment; the node restarts to recover it.
			acts = append(acts, Action{At: jitterFrac(rng, start, d, 24), Op: OpCrashEnclave, Node: node, Role: roles[rng.Intn(len(roles))]})
		} else {
			acts = append(acts, Action{At: jitterFrac(rng, start, d, 24), Op: OpCrash, Node: node})
		}
		acts = append(acts, Action{At: frac(d, int64(2*r+1), 2*rounds), Op: OpRestart, Node: node})
	}
	return acts
}

// planFlakyLinks degrades individual directed links — drop, duplication,
// bounded reordering, jittered delay — re-rolling the affected set midway,
// plus one asymmetric one-way cut, healing everything before the end.
func planFlakyLinks(rng *rand.Rand, n int, d time.Duration) []Action {
	var acts []Action
	linkFault := func(at time.Duration, from, to int) Action {
		return Action{
			At: at, Op: OpLinkFaults, Node: from, Node2: to,
			Drop:    0.05 + 0.15*rng.Float64(),
			Dup:     0.10 * rng.Float64(),
			Reorder: 0.30 * rng.Float64(),
			Delay:   time.Duration(rng.Int63n(int64(2 * time.Millisecond))),
			Jitter:  time.Millisecond + time.Duration(rng.Int63n(int64(3*time.Millisecond))),
		}
	}
	for phase := int64(0); phase < 2; phase++ {
		at := frac(d, phase*2, 5)
		for k := 0; k < n; k++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from == to {
				continue
			}
			acts = append(acts, linkFault(at, from, to))
		}
	}
	// One asymmetric cut for a slice of the run: from can't reach to,
	// while to still reaches from.
	from, to := rng.Intn(n), rng.Intn(n)
	if from == to {
		to = (to + 1) % n
	}
	acts = append(acts,
		Action{At: frac(d, 1, 5), Op: OpBlockOneWay, Node: from, Node2: to},
		Action{At: frac(d, 4, 5), Op: OpClearNet},
	)
	return acts
}

// planPartitionStorm runs repeated minority partitions with heals between
// them, ending healed.
func planPartitionStorm(rng *rand.Rand, n, f int, d time.Duration) []Action {
	var acts []Action
	const waves = 3
	for w := 0; w < waves; w++ {
		size := 1 + rng.Intn(f) // minority: ≤ f replicas cut off
		if size > f {
			size = f
		}
		perm := rng.Perm(n)[:size]
		group := append([]int(nil), perm...)
		sort.Ints(group)
		acts = append(acts,
			Action{At: frac(d, int64(3*w), 3*waves), Op: OpPartition, Nodes: group},
			Action{At: frac(d, int64(3*w+2), 3*waves), Op: OpHeal},
		)
	}
	return acts
}

// planDiskDegraded stalls flushes on rotating replicas, then injects a
// sticky write error on one replica and later clears + restarts it (the
// restart reopens the stores; recovery and state transfer close the gap).
func planDiskDegraded(rng *rand.Rand, n int, d time.Duration) []Action {
	victim := rng.Intn(n)
	slow := (victim + 1 + rng.Intn(n-1)) % n
	return []Action{
		{At: frac(d, 1, 10), Op: OpDiskStall, Node: slow, Dur: 5*time.Millisecond + time.Duration(rng.Int63n(int64(20*time.Millisecond)))},
		{At: frac(d, 2, 10), Op: OpDiskFail, Node: victim},
		{At: frac(d, 5, 10), Op: OpDiskClear, Node: victim},
		{At: frac(d, 5, 10), Op: OpRestart, Node: victim},
		{At: frac(d, 7, 10), Op: OpDiskClear, Node: slow},
	}
}

// planSkewedClocks offsets replica lease clocks in both directions, within
// and slightly beyond the protocol's documented TTL/8 skew allowance
// (leases may be refused — reads then fall back — but safety must hold),
// then re-centers everything.
func planSkewedClocks(rng *rand.Rand, n int, d time.Duration) []Action {
	var acts []Action
	// Skews are expressed as fractions of the default 300ms request
	// timeout's TTL (75ms): ±TTL/8 ≈ ±9ms, one outlier at ±TTL/4.
	ttl := 75 * time.Millisecond
	outlier := rng.Intn(n)
	for i := 0; i < n; i++ {
		skew := time.Duration(rng.Int63n(int64(ttl/4))) - ttl/8
		if i == outlier {
			skew = ttl / 4
			if rng.Intn(2) == 0 {
				skew = -skew
			}
		}
		acts = append(acts, Action{At: jitterFrac(rng, frac(d, 1, 8), d, 16), Op: OpSkew, Node: i, Dur: skew})
	}
	for i := 0; i < n; i++ {
		acts = append(acts, Action{At: frac(d, 6, 8), Op: OpSkew, Node: i, Dur: 0})
	}
	return acts
}

// planKitchenSink composes every fault surface in one schedule: global
// link flakiness, a minority partition stranding a client, a clock skew, a
// disk stall, an enclave crash, and a crash-restart — partition +
// crash-restart + disk-stall in a single run.
func planKitchenSink(rng *rand.Rand, n, f int, d time.Duration) []Action {
	crashNode := rng.Intn(n)
	stallNode := (crashNode + 1) % n
	skewNode := (crashNode + 2) % n
	encNode := (crashNode + 1 + rng.Intn(n-1)) % n
	part := []int{(crashNode + 1) % n}
	return []Action{
		{At: 0, Op: OpGlobalFaults, Drop: 0.02, Dup: 0.02, Reorder: 0.10, Jitter: 2 * time.Millisecond},
		{At: frac(d, 1, 10), Op: OpDiskStall, Node: stallNode, Dur: 5 * time.Millisecond},
		{At: frac(d, 1, 8), Op: OpSkew, Node: skewNode, Dur: 9 * time.Millisecond},
		{At: frac(d, 2, 10), Op: OpPartition, Nodes: part, StrandClient: true},
		{At: frac(d, 4, 10), Op: OpHeal},
		{At: frac(d, 5, 10), Op: OpCrash, Node: crashNode},
		{At: frac(d, 6, 10), Op: OpRestart, Node: crashNode},
		{At: frac(d, 65, 100), Op: OpCrashEnclave, Node: encNode, Role: "execution"},
		{At: frac(d, 7, 10), Op: OpRestart, Node: encNode},
		{At: frac(d, 3, 4), Op: OpDiskClear, Node: stallNode},
		{At: frac(d, 4, 5), Op: OpClearNet},
		{At: frac(d, 4, 5), Op: OpSkew, Node: skewNode, Dur: 0},
	}
}
