package loc

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestCountSourceBasics(t *testing.T) {
	src := `package x

// a comment
func F() int {
	return 1 // trailing comments count the line as code
}
`
	c := CountSource(src)
	if c.Code != 4 {
		t.Fatalf("code = %d, want 4", c.Code)
	}
	if c.Comments != 1 {
		t.Fatalf("comments = %d, want 1", c.Comments)
	}
	if c.Blanks != 1 {
		t.Fatalf("blanks = %d, want 1", c.Blanks)
	}
	if c.Total() != 6 {
		t.Fatalf("total = %d, want 6", c.Total())
	}
}

func TestCountSourceBlockComments(t *testing.T) {
	src := `package x
/* one
two
three */
var A = 1
/* inline */ var B = 2
`
	c := CountSource(src)
	if c.Comments != 4 {
		t.Fatalf("comments = %d, want 4 (3 block + 1 inline-open)", c.Comments)
	}
	if c.Code != 2 {
		t.Fatalf("code = %d, want 2", c.Code)
	}
}

func TestCountSourceCodeAfterBlockClose(t *testing.T) {
	src := "package x\n/* c\nc */ var A = 1\n"
	c := CountSource(src)
	if c.Code != 2 {
		t.Fatalf("code = %d, want 2 (package + closing line with code)", c.Code)
	}
	if c.Comments != 1 {
		t.Fatalf("comments = %d, want 1", c.Comments)
	}
}

func TestCountDirAndFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.go", "package a\nvar X = 1\n")
	write("a_test.go", "package a\nfunc TestX() {}\n")
	write("notgo.txt", "hello\n")

	noTests, err := CountDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if noTests.Files != 1 || noTests.Code != 2 {
		t.Fatalf("without tests: %+v", noTests)
	}
	withTests, err := CountDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if withTests.Files != 2 || withTests.Code != 4 {
		t.Fatalf("with tests: %+v", withTests)
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/loc -> repo root
}

func TestTable2OverThisRepo(t *testing.T) {
	rows, err := Table2(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("table has %d rows, want 5", len(rows))
	}
	byName := make(map[string]TableRow)
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Structural properties the paper's Table 2 exhibits:
	// 1. Enclaves share a common types base, so SharedLOC is equal across
	//    the three enclaves and nonzero.
	prep, conf, exec := byName["Preparation Enc."], byName["Confirmation Enc."], byName["Execution Enc."]
	if prep.SharedLOC == 0 || prep.SharedLOC != conf.SharedLOC || conf.SharedLOC != exec.SharedLOC {
		t.Fatalf("shared LOC should match across enclaves: %d %d %d",
			prep.SharedLOC, conf.SharedLOC, exec.SharedLOC)
	}
	// 2. The execution enclave is the largest (it contains the apps).
	if exec.TotalLOC <= prep.TotalLOC || exec.TotalLOC <= conf.TotalLOC {
		t.Fatalf("execution enclave should be largest: prep=%d conf=%d exec=%d",
			prep.TotalLOC, conf.TotalLOC, exec.TotalLOC)
	}
	// 3. The trusted counter is far smaller than any enclave.
	tc := byName["Trusted Counter"]
	if tc.TotalLOC == 0 || tc.TotalLOC*3 > prep.TotalLOC {
		t.Fatalf("trusted counter should be much smaller than an enclave: %d vs %d",
			tc.TotalLOC, prep.TotalLOC)
	}
	// 4. Individual enclaves are significantly smaller than the whole
	//    codebase (the attack-surface argument of §5).
	whole, err := CountDir(repoRoot(t), false)
	if err != nil {
		t.Fatal(err)
	}
	if exec.TotalLOC*2 > whole.Code {
		t.Fatalf("an enclave (%d LOC) should be well under half the codebase (%d LOC)",
			exec.TotalLOC, whole.Code)
	}
	text := FormatTable2(rows)
	if !strings.Contains(text, "Preparation Enc.") || !strings.Contains(text, "Trusted Counter") {
		t.Fatalf("formatted table incomplete:\n%s", text)
	}
}

func TestPackageBreakdown(t *testing.T) {
	bd, err := PackageBreakdown(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, pkg := range SortedPackages(bd) {
		if strings.Contains(pkg, "internal/core") {
			found = true
			if bd[pkg].Code == 0 {
				t.Fatal("core package counted zero code lines")
			}
		}
	}
	if !found {
		t.Fatal("breakdown missing internal/core")
	}
}

func TestQuickCountSourceTotalsConsistent(t *testing.T) {
	f := func(lines []string) bool {
		src := strings.Join(lines, "\n")
		c := CountSource(src)
		// Total classified lines must equal the number of lines in the
		// input (modulo the trailing-newline adjustment).
		want := strings.Count(src, "\n") + 1
		if strings.HasSuffix(src, "\n") {
			want--
		}
		return c.Total() == want || c.Total() == want+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
