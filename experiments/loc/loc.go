// Package loc is a small tokei-style line counter for Go sources, used to
// regenerate Table 2 of the paper (TCB sizes per compartment): it splits
// files into code, comment and blank lines and groups this repository's
// packages into the paper's TCB categories (shared types, per-compartment
// logic, untrusted environment, trusted counter).
package loc

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Counts is a code/comment/blank line tally.
type Counts struct {
	Files    int
	Code     int
	Comments int
	Blanks   int
}

// Total returns all lines.
func (c Counts) Total() int { return c.Code + c.Comments + c.Blanks }

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Files += other.Files
	c.Code += other.Code
	c.Comments += other.Comments
	c.Blanks += other.Blanks
}

// CountSource tallies one Go source text. It understands line comments,
// block comments (including multi-line), and leaves string-literal edge
// cases approximate — the same fidelity class as tokei's fast path.
func CountSource(src string) Counts {
	c := Counts{Files: 1}
	inBlock := false
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case inBlock:
			c.Comments++
			if idx := strings.Index(trimmed, "*/"); idx >= 0 {
				inBlock = false
				rest := strings.TrimSpace(trimmed[idx+2:])
				if rest != "" {
					// Code after the closing delimiter: count as code
					// instead (the line did real work).
					c.Comments--
					c.Code++
				}
			}
		case trimmed == "":
			c.Blanks++
		case strings.HasPrefix(trimmed, "//"):
			c.Comments++
		case strings.HasPrefix(trimmed, "/*"):
			c.Comments++
			if !strings.Contains(trimmed[2:], "*/") {
				inBlock = true
			}
		default:
			c.Code++
		}
	}
	// Split produces one extra element for the trailing newline; don't
	// count a final empty line as blank.
	if strings.HasSuffix(src, "\n") && c.Blanks > 0 {
		c.Blanks--
	}
	return c
}

// CountFile tallies one file on disk.
func CountFile(path string) (Counts, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Counts{}, fmt.Errorf("loc: %w", err)
	}
	return CountSource(string(data)), nil
}

// CountDir tallies all non-test Go files under root, recursively.
// includeTests controls whether _test.go files are counted.
func CountDir(root string, includeTests bool) (Counts, error) {
	var total Counts
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		if !includeTests && strings.HasSuffix(path, "_test.go") {
			return nil
		}
		c, err := CountFile(path)
		if err != nil {
			return err
		}
		total.Add(c)
		return nil
	})
	return total, err
}

// Component is one row of the Table 2 analysis: a named TCB component and
// the files that make it up.
type Component struct {
	Name  string
	Files []string // paths relative to the repo root
}

// TCBComponents maps this repository onto the paper's Table 2 rows.
//
// "Shared types" are the packages linked into every enclave (message
// definitions, codec, crypto); the per-enclave logic is each compartment's
// source file plus the shared compartment state; the untrusted environment
// is the broker, transport, and client plumbing; the trusted counter is the
// hybrid-BFT comparison subsystem.
func TCBComponents() []Component {
	shared := []string{
		"internal/messages/codec.go",
		"internal/messages/types.go",
		"internal/messages/viewchange.go",
		"internal/messages/attest.go",
		"internal/messages/envelope.go",
		"internal/messages/validate.go",
		"internal/crypto/keys.go",
		"internal/crypto/hmac.go",
		"internal/crypto/session.go",
		"internal/core/comstate.go",
		"internal/core/config.go",
	}
	return []Component{
		{Name: "Preparation Enc.", Files: append([]string{"internal/core/preparation.go"}, shared...)},
		{Name: "Confirmation Enc.", Files: append([]string{"internal/core/confirmation.go"}, shared...)},
		{Name: "Execution Enc.", Files: append([]string{
			"internal/core/execution.go",
			"internal/app/app.go",
			"internal/app/kvs.go",
			"internal/app/blockchain.go",
		}, shared...)},
		{Name: "Untrusted Env.", Files: []string{
			"internal/core/broker.go",
			"internal/core/replica.go",
			"internal/transport/transport.go",
			"internal/transport/simnet.go",
			"internal/transport/tcp.go",
		}},
		{Name: "Trusted Counter", Files: []string{"internal/tee/counter.go"}},
	}
}

// sharedFiles returns the set of files appearing in more than one enclave
// component — the "shared types" column of Table 2.
func sharedFiles(components []Component) map[string]bool {
	seen := make(map[string]int)
	for _, comp := range components {
		if !strings.Contains(comp.Name, "Enc.") {
			continue
		}
		for _, f := range comp.Files {
			seen[f]++
		}
	}
	shared := make(map[string]bool)
	for f, n := range seen {
		if n > 1 {
			shared[f] = true
		}
	}
	return shared
}

// TableRow is one line of the regenerated Table 2.
type TableRow struct {
	Name      string
	SharedLOC int
	LogicLOC  int
	TotalLOC  int
}

// Table2 computes the TCB analysis over the repository rooted at root.
func Table2(root string) ([]TableRow, error) {
	components := TCBComponents()
	shared := sharedFiles(components)
	rows := make([]TableRow, 0, len(components))
	for _, comp := range components {
		var row TableRow
		row.Name = comp.Name
		for _, f := range comp.Files {
			c, err := CountFile(filepath.Join(root, f))
			if err != nil {
				return nil, fmt.Errorf("component %s: %w", comp.Name, err)
			}
			if shared[f] && strings.Contains(comp.Name, "Enc.") {
				row.SharedLOC += c.Code
			} else {
				row.LogicLOC += c.Code
			}
		}
		row.TotalLOC = row.SharedLOC + row.LogicLOC
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable2 renders the analysis in the paper's Table 2 layout.
func FormatTable2(rows []TableRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %12s %8s %10s\n", "Component", "Shared types", "Logic", "Total LOC")
	sb.WriteString(strings.Repeat("-", 54) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-20s %12d %8d %10d\n", r.Name, r.SharedLOC, r.LogicLOC, r.TotalLOC)
	}
	return sb.String()
}

// PackageBreakdown counts every package under root, for the repository
// inventory in the README.
func PackageBreakdown(root string) (map[string]Counts, error) {
	out := make(map[string]Counts)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		pkg := filepath.Dir(rel)
		c, err := CountFile(path)
		if err != nil {
			return err
		}
		cur := out[pkg]
		cur.Add(c)
		out[pkg] = cur
		return nil
	})
	return out, err
}

// SortedPackages returns breakdown keys in deterministic order.
func SortedPackages(breakdown map[string]Counts) []string {
	keys := make([]string, 0, len(breakdown))
	for k := range breakdown {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
