package load

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/splitbft/splitbft/experiments/bench"
)

// ResultSchema versions the on-disk load-result format. Trajectory tooling
// refuses files with a schema it does not understand.
const ResultSchema = "splitbft-load/v1"

// LatencySummary is the quantile digest of one run. Durations marshal as
// integer nanoseconds.
type LatencySummary struct {
	Mean time.Duration `json:"mean_ns"`
	P50  time.Duration `json:"p50_ns"`
	P90  time.Duration `json:"p90_ns"`
	P95  time.Duration `json:"p95_ns"`
	P99  time.Duration `json:"p99_ns"`
	P999 time.Duration `json:"p999_ns"`
	Max  time.Duration `json:"max_ns"`
}

// Workload echoes the system configuration a run measured, so a trajectory
// point is only ever compared against its like.
type Workload struct {
	Transport     string `json:"transport"` // "inproc" | "tcp"
	App           string `json:"app"`
	Auth          string `json:"auth"`
	Confidential  bool   `json:"confidential"`
	BatchSize     int    `json:"batch_size"`
	EcallBatch    int    `json:"ecall_batch"`
	VerifyWorkers int    `json:"verify_workers"`
	// Consensus is "trusted" for the counter-backed 2f+1 mode and empty
	// for classic — omitted from the JSON so trajectory points committed
	// before the mode existed keep comparing equal to fresh classic runs.
	Consensus string `json:"consensus,omitempty"`
	// ReadFrac and ReadLeases describe mixed read/write runs; both zero
	// values are omitted for the same backward-comparability reason as
	// Consensus, and both are comparable so Workload equality (the gate's
	// like-for-like check) keeps working with ==.
	ReadFrac   float64 `json:"read_frac,omitempty"`
	ReadLeases bool    `json:"read_leases,omitempty"`
}

// Result is the versioned machine-readable outcome of one load run — the
// unit of the committed perf trajectory (perf/BENCH_load_*.json).
type Result struct {
	Schema  string  `json:"schema"`
	Mode    string  `json:"mode"`    // "open" | "closed"
	Arrival string  `json:"arrival"` // "poisson" | "fixed" ("" when closed)
	Target  float64 `json:"target_rate_ops"`

	Clients  int           `json:"clients"`
	InFlight int           `json:"in_flight"`
	Queue    int           `json:"queue_depth"`
	Payload  int           `json:"payload_bytes"`
	Warmup   time.Duration `json:"warmup_ns"`
	Window   time.Duration `json:"window_ns"`

	Offered      uint64  `json:"offered_ops"`
	Achieved     uint64  `json:"achieved_ops"`
	Dropped      uint64  `json:"dropped_ops"`
	Errors       uint64  `json:"error_ops"`
	OfferedRate  float64 `json:"offered_ops_per_sec"`
	AchievedRate float64 `json:"achieved_ops_per_sec"`

	Latency  LatencySummary `json:"latency"`
	Workload Workload       `json:"workload"`
	Env      bench.Env      `json:"env"`

	// Per-class split of mixed runs; all omitted on single-class runs so
	// previously committed trajectory points round-trip unchanged.
	ReadOps      uint64          `json:"read_ops,omitempty"`
	WriteOps     uint64          `json:"write_ops,omitempty"`
	ReadRate     float64         `json:"read_ops_per_sec,omitempty"`
	WriteRate    float64         `json:"write_ops_per_sec,omitempty"`
	ReadLatency  *LatencySummary `json:"read_latency,omitempty"`
	WriteLatency *LatencySummary `json:"write_latency,omitempty"`

	// Stages is the per-stage request-lifecycle latency breakdown of one
	// replica's tracer (-stage-breakdown runs only). It is omitted when
	// tracing is off so previously committed trajectory points round-trip
	// unchanged, and it is deliberately NOT part of the gate's workload
	// identity: a traced run hard-compares against a committed untraced
	// point, which is exactly how the observability overhead is gated.
	Stages []StageLatency `json:"stages,omitempty"`
}

// StageLatency is one row of a traced run's per-stage latency breakdown.
type StageLatency struct {
	Stage string        `json:"stage"`
	Count uint64        `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// FormatStages renders the per-stage breakdown as an aligned table.
func FormatStages(stages []StageLatency) string {
	if len(stages) == 0 {
		return "  (no traced spans)\n"
	}
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("  %-16s %10s %12s %12s %12s %12s\n", "stage", "spans", "mean", "p50", "p99", "max"))
	for _, s := range stages {
		sb.WriteString(fmt.Sprintf("  %-16s %10d %12v %12v %12v %12v\n",
			s.Stage, s.Count,
			s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
			s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond)))
	}
	return sb.String()
}

// summarize digests a histogram into the quantile summary.
func summarize(h *Histogram) LatencySummary {
	return LatencySummary{
		Mean: h.Mean(),
		P50:  h.Quantile(0.50),
		P90:  h.Quantile(0.90),
		P95:  h.Quantile(0.95),
		P99:  h.Quantile(0.99),
		P999: h.Quantile(0.999),
		Max:  h.Max(),
	}
}

// NewResult stamps raw run stats into a versioned Result.
func NewResult(cfg Config, st Stats, wl Workload) Result {
	r := Result{
		Schema:       ResultSchema,
		Mode:         st.Mode,
		Arrival:      arrivalLabel(cfg, st),
		Target:       cfg.Rate,
		Clients:      len(cfg.Clients),
		InFlight:     cfg.MaxInFlight,
		Queue:        cfg.QueueDepth,
		Payload:      cfg.Payload,
		Warmup:       cfg.Warmup,
		Window:       st.Window,
		Offered:      st.Offered,
		Achieved:     st.Achieved,
		Dropped:      st.Dropped,
		Errors:       st.Errors,
		OfferedRate:  st.OfferedRate(),
		AchievedRate: st.AchievedRate(),
		Latency:      summarize(&st.Hist),
		Workload:     wl,
		Env:          bench.CollectEnv(),
	}
	if cfg.ReadFrac > 0 {
		r.ReadOps = st.Reads
		r.WriteOps = st.Writes
		r.ReadRate = st.ReadRate()
		r.WriteRate = st.WriteRate()
		rl, wlat := summarize(&st.ReadHist), summarize(&st.WriteHist)
		r.ReadLatency, r.WriteLatency = &rl, &wlat
	}
	return r
}

func arrivalLabel(cfg Config, st Stats) string {
	if st.Mode == "closed" {
		return ""
	}
	return string(cfg.Arrival)
}

// WriteResult writes a Result as indented JSON, creating parent
// directories as needed.
func WriteResult(path string, r Result) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("load: result dir: %w", err)
		}
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("load: marshal result: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("load: write %s: %w", path, err)
	}
	return nil
}

// ReadResult loads a committed trajectory point, refusing unknown schemas.
func ReadResult(path string) (Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Result{}, fmt.Errorf("load: read %s: %w", path, err)
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return Result{}, fmt.Errorf("load: parse %s: %w", path, err)
	}
	if r.Schema != ResultSchema {
		return Result{}, fmt.Errorf("load: %s has schema %q, want %q", path, r.Schema, ResultSchema)
	}
	return r, nil
}

// GateReport is the outcome of comparing a fresh run against a committed
// trajectory point.
type GateReport struct {
	// Hard is true when the environments matched and the thresholds were
	// enforced; false means the comparison ran advisorily (different
	// machine class, different calibration) and cannot fail the gate.
	Hard bool
	// Regressions lists threshold violations (empty = pass).
	Regressions []string
	// Notes carries advisory observations either way.
	Notes []string
}

// Pass reports whether the gate allows the change through: advisory
// comparisons always pass; hard ones pass without regressions.
func (g GateReport) Pass() bool { return !g.Hard || len(g.Regressions) == 0 }

// String renders the report for CI logs.
func (g GateReport) String() string {
	var sb strings.Builder
	if g.Hard {
		sb.WriteString("gate: hard comparison\n")
	} else {
		sb.WriteString("gate: ADVISORY comparison (thresholds not enforced)\n")
	}
	for _, n := range g.Notes {
		sb.WriteString("  note: " + n + "\n")
	}
	for _, r := range g.Regressions {
		sb.WriteString("  REGRESSION: " + r + "\n")
	}
	if g.Pass() {
		sb.WriteString("  result: PASS\n")
	} else {
		sb.WriteString("  result: FAIL\n")
	}
	return sb.String()
}

// latencySlack is the absolute floor on the p99 ceiling's headroom; see
// the comment at its use in CompareTrajectory.
const latencySlack = 100 * time.Millisecond

// CompareTrajectory gates cur against the committed point prev with a
// noise band (0.15 = ±15%, sized for the 1-CPU container's run-to-run
// variance). Throughput must not fall below prev·(1−band); p99 latency
// must not exceed prev·(1+3·band), with at least latencySlack of
// headroom — the tail gets the wider band because a single scheduling
// hiccup lands there first. The gate hardens only
// when the runs are genuinely comparable: same schema, same workload,
// same target rate and same machine class (bench.Env.Comparable);
// anything else downgrades to an advisory report that cannot fail CI —
// noise-awareness means refusing to call a machine swap a regression.
func CompareTrajectory(prev, cur Result, band float64) GateReport {
	var g GateReport
	if band <= 0 {
		band = 0.15
	}
	hard := true
	note := func(format string, args ...any) {
		g.Notes = append(g.Notes, fmt.Sprintf(format, args...))
	}
	if prev.Schema != cur.Schema {
		hard = false
		note("schema changed (%s → %s)", prev.Schema, cur.Schema)
	}
	if prev.Mode != cur.Mode || prev.Arrival != cur.Arrival || prev.Target != cur.Target ||
		prev.Payload != cur.Payload || prev.InFlight != cur.InFlight {
		hard = false
		note("load calibration changed (mode/arrival/target/payload/in-flight differ) — re-seed the trajectory point")
	}
	if prev.Workload != cur.Workload {
		hard = false
		note("workload configuration changed (%+v → %+v) — re-seed the trajectory point", prev.Workload, cur.Workload)
	}
	if !prev.Env.Comparable(cur.Env) {
		hard = false
		note("environments differ (%d CPU %s/%s vs %d CPU %s/%s) — cross-machine numbers are reported, not gated",
			prev.Env.NumCPU, prev.Env.GOOS, prev.Env.GOARCH,
			cur.Env.NumCPU, cur.Env.GOOS, cur.Env.GOARCH)
	}
	g.Hard = hard

	tputFloor := prev.AchievedRate * (1 - band)
	note("throughput %.0f ops/s vs committed %.0f ops/s (floor %.0f)",
		cur.AchievedRate, prev.AchievedRate, tputFloor)
	if cur.AchievedRate < tputFloor {
		g.Regressions = append(g.Regressions,
			fmt.Sprintf("achieved throughput %.0f ops/s below %.0f (committed %.0f ops/s − %.0f%% band)",
				cur.AchievedRate, tputFloor, prev.AchievedRate, band*100))
	}
	latCeil := time.Duration(float64(prev.Latency.P99) * (1 + 3*band))
	// Absolute slack floor: on a small box a single ~60ms scheduling
	// hiccup delays every queued arrival behind it, and with a few
	// thousand samples those ops ARE the p99. A multiplicative band over
	// a millisecond-scale baseline cannot absorb that, so the ceiling
	// never sits closer than latencySlack above the committed p99 —
	// sustained queueing regressions still blow well past it.
	if min := prev.Latency.P99 + latencySlack; latCeil < min {
		latCeil = min
	}
	note("p99 %s vs committed %s (ceiling %s)", cur.Latency.P99, prev.Latency.P99, latCeil)
	if prev.Latency.P99 > 0 && cur.Latency.P99 > latCeil {
		g.Regressions = append(g.Regressions,
			fmt.Sprintf("p99 latency %s above %s (committed %s + %.0f%% band)",
				cur.Latency.P99, latCeil, prev.Latency.P99, 3*band*100))
	}
	if cur.Dropped > 0 || cur.Errors > 0 {
		note("run shed %d ops and saw %d errors", cur.Dropped, cur.Errors)
	}
	if cur.Offered > 0 && prev.Dropped == 0 && cur.Dropped*10 > cur.Offered {
		g.Regressions = append(g.Regressions,
			fmt.Sprintf("dropped %d of %d offered ops (>10%%) where the committed point dropped none",
				cur.Dropped, cur.Offered))
	}
	if !hard {
		// Advisory regressions would be confusing: report them as notes.
		for _, r := range g.Regressions {
			note("would flag under a hard gate: %s", r)
		}
		g.Regressions = nil
	}
	return g
}
