package load

import "github.com/splitbft/splitbft/internal/obs"

// Histogram is the shared log-bucketed latency recorder, promoted from
// this package into internal/obs so the replica-side observability layer
// (stage-latency breakdowns, /metrics quantiles) and the load generator
// agree on one recorder with one merge semantics. The alias keeps every
// existing call site and the on-disk JSON produced from it unchanged.
type Histogram = obs.Histogram
