package load

import (
	"fmt"
	"strings"
	"time"

	"github.com/splitbft/splitbft"
)

// The read-lease ablation measures the lease-anchored local read fast path
// against the agreement baseline: the same 90/10 open-loop read/write mix
// is offered twice — leases off (every GET runs full agreement) and leases
// on (lease-holding Execution compartments answer GETs locally) — and the
// read-class throughput is compared. It lives in this package rather than
// experiments/bench because the acceptance metric is open-loop (bench's
// closed-loop clients would hide the queueing collapse of the baseline),
// and this package owns the open-loop generator.

// ReadLeasePoint is one measurement of the read-lease ablation.
type ReadLeasePoint struct {
	// Leases reports whether the local read fast path was enabled.
	Leases bool `json:"leases"`
	// Result is the full versioned load result for the run.
	Result Result `json:"result"`
	// LocalReads counts reads served on the fast path across the cluster
	// (0 when leases are off — the invariant the ablation also checks).
	LocalReads uint64 `json:"local_reads"`
	// LeaseGrants counts leases issued by the primary's counter enclave.
	LeaseGrants uint64 `json:"lease_grants"`
}

// ReadLeaseConfig parameterizes the ablation. The zero value selects the
// committed defaults: a 4-replica in-process cluster on the load gate's
// calibration (batch 1, ecall batch 16, one verify worker), a 90/10 mix
// on a fixed arrival schedule, and an offered rate chosen to exceed the
// agreement path's read capacity so the fast path's headroom is visible.
type ReadLeaseConfig struct {
	Replicas int           // cluster size; default 4
	Clients  int           // client connections; default 4
	Rate     float64       // offered ops/s; default 4000
	ReadFrac float64       // read fraction; default 0.9
	Warmup   time.Duration // untimed ramp-up; default 1s
	Measure  time.Duration // measurement window; default 3s
	InFlight int           // worker pool; default 64
	Queue    int           // dispatch queue; default 256
	Seed     int64         // arrival seed; default 1
	// Trace enables request-lifecycle tracing on the cluster; each point's
	// Result gains the primary's per-stage latency breakdown.
	Trace bool
}

func (c ReadLeaseConfig) withDefaults() ReadLeaseConfig {
	if c.Replicas <= 0 {
		c.Replicas = 4
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Rate <= 0 {
		c.Rate = 4000
	}
	if c.ReadFrac <= 0 {
		c.ReadFrac = 0.9
	}
	if c.Warmup <= 0 {
		c.Warmup = time.Second
	}
	if c.Measure <= 0 {
		c.Measure = 3 * time.Second
	}
	if c.InFlight <= 0 {
		c.InFlight = 64
	}
	if c.Queue <= 0 {
		c.Queue = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ReadLeaseAblation runs the mixed workload twice — leases off, then on —
// and returns both points. Identical protocol, identical schedule, same
// calibration; only the read path differs.
func ReadLeaseAblation(cfg ReadLeaseConfig) ([]ReadLeasePoint, error) {
	cfg = cfg.withDefaults()
	out := make([]ReadLeasePoint, 0, 2)
	for _, leases := range []bool{false, true} {
		pt, err := runReadLeasePoint(cfg, leases)
		if err != nil {
			return out, fmt.Errorf("read-lease ablation (leases=%v): %w", leases, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

func runReadLeasePoint(cfg ReadLeaseConfig, leases bool) (ReadLeasePoint, error) {
	opts := []splitbft.Option{
		splitbft.WithKVStore(),
		splitbft.WithBatchSize(1),
		splitbft.WithEcallBatch(16),
		splitbft.WithVerifyWorkers(1),
		splitbft.WithReadLeases(leases),
	}
	if cfg.Trace {
		opts = append(opts, splitbft.WithObservability())
	}
	cluster, err := splitbft.NewCluster(cfg.Replicas, opts...)
	if err != nil {
		return ReadLeasePoint{}, fmt.Errorf("start cluster: %w", err)
	}
	defer cluster.Close()

	invokers := make([]Invoker, 0, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		cl, err := cluster.NewClient(uint32(300 + i))
		if err != nil {
			return ReadLeasePoint{}, fmt.Errorf("client %d: %w", i, err)
		}
		if err := cl.Attest(); err != nil {
			return ReadLeasePoint{}, fmt.Errorf("client %d attestation: %w", i, err)
		}
		invokers = append(invokers, cl)
	}

	value := defaultPayload(10)
	lcfg := Config{
		Rate:        cfg.Rate,
		Arrival:     ArrivalFixed,
		Warmup:      cfg.Warmup,
		Duration:    cfg.Measure,
		MaxInFlight: cfg.InFlight,
		QueueDepth:  cfg.Queue,
		Clients:     invokers,
		MakeOp: func(worker int, seq uint64) []byte {
			return splitbft.EncodePut(fmt.Sprintf("ablate-w%d", worker), value)
		},
		MakeRead: func(worker int, seq uint64) []byte {
			// Reads hit the key the same worker's writes churn, so the mix
			// exercises read-after-write traffic, not cold misses.
			return splitbft.EncodeGet(fmt.Sprintf("ablate-w%d", worker))
		},
		ReadFrac: cfg.ReadFrac,
		Payload:  10,
		Seed:     cfg.Seed,
	}
	st, err := Run(lcfg)
	if err != nil {
		return ReadLeasePoint{}, err
	}
	wl := Workload{
		Transport:     "inproc",
		App:           "kvs",
		Auth:          "sig",
		BatchSize:     1,
		EcallBatch:    16,
		VerifyWorkers: 1,
		ReadFrac:      cfg.ReadFrac,
		ReadLeases:    leases,
	}
	pt := ReadLeasePoint{Leases: leases, Result: NewResult(lcfg, st, wl)}
	for _, n := range cluster.Nodes() {
		pt.LocalReads += n.LocalReads()
	}
	pt.LeaseGrants = cluster.Node(0).CryptoStats().LeaseGrants
	if cfg.Trace {
		pt.Result.Stages = NodeStages(cluster.Node(0))
	}
	return pt, nil
}

// NodeStages converts a traced node's per-stage latency breakdown into the
// load result's JSON shape. The view is that single replica's — here the
// primary's: write stages are complete on it, while with leases on it
// serves only its round-robin share of the reads.
func NodeStages(n *splitbft.Node) []StageLatency {
	stats := n.StageLatencies()
	out := make([]StageLatency, len(stats))
	for i, s := range stats {
		out[i] = StageLatency{Stage: s.Stage, Count: s.Count, Mean: s.Mean, P50: s.P50, P99: s.P99, Max: s.Max}
	}
	return out
}

// ReadLeaseSpeedup is the read-class throughput ratio of the lease-enabled
// run over the baseline (0 when either point is missing or idle).
func ReadLeaseSpeedup(pts []ReadLeasePoint) float64 {
	var off, on float64
	for _, p := range pts {
		if p.Leases {
			on = p.Result.ReadRate
		} else {
			off = p.Result.ReadRate
		}
	}
	if off <= 0 {
		return 0
	}
	return on / off
}

// FormatReadLeaseAblation renders the ablation as an aligned table plus
// the read-throughput speedup line.
func FormatReadLeaseAblation(pts []ReadLeasePoint) string {
	var sb strings.Builder
	sb.WriteString("read-lease ablation — open-loop read/write mix, leases off vs on\n")
	sb.WriteString(fmt.Sprintf("%-7s %10s %10s %10s %9s %9s %9s %8s %11s %7s\n",
		"leases", "offered/s", "reads/s", "writes/s",
		"read p50", "read p99", "write p99", "dropped", "local-reads", "grants"))
	for _, p := range pts {
		mode := "off"
		if p.Leases {
			mode = "on"
		}
		r := p.Result
		var rp50, rp99, wp99 time.Duration
		if r.ReadLatency != nil {
			rp50, rp99 = r.ReadLatency.P50, r.ReadLatency.P99
		}
		if r.WriteLatency != nil {
			wp99 = r.WriteLatency.P99
		}
		sb.WriteString(fmt.Sprintf("%-7s %10.0f %10.0f %10.0f %9s %9s %9s %8d %11d %7d\n",
			mode, r.OfferedRate, r.ReadRate, r.WriteRate,
			rp50.Round(time.Microsecond), rp99.Round(time.Microsecond),
			wp99.Round(time.Microsecond), r.Dropped, p.LocalReads, p.LeaseGrants))
	}
	if s := ReadLeaseSpeedup(pts); s > 0 {
		sb.WriteString(fmt.Sprintf("\nread throughput speedup (leases on / off): %.2fx\n", s))
	}
	for _, p := range pts {
		if len(p.Result.Stages) == 0 {
			continue
		}
		mode := "off"
		if p.Leases {
			mode = "on"
		}
		sb.WriteString(fmt.Sprintf("\nstage latency breakdown, leases %s (primary's view):\n", mode))
		sb.WriteString(FormatStages(p.Result.Stages))
	}
	return sb.String()
}
