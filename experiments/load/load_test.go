package load

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stallService is a synthetic system under test: Invoke costs a small
// fixed service time, except while a stall is armed, during which every
// call blocks until the stall lifts. Concurrency-safe and shared between
// the open- and closed-loop measurements so both see the same behavior.
type stallService struct {
	service time.Duration

	mu   sync.RWMutex
	gate chan struct{} // nil = no stall; otherwise closed when the stall lifts
}

func newStallService(service time.Duration) *stallService {
	return &stallService{service: service}
}

func (s *stallService) BeginStall() {
	s.mu.Lock()
	s.gate = make(chan struct{})
	s.mu.Unlock()
}

func (s *stallService) EndStall() {
	s.mu.Lock()
	if s.gate != nil {
		close(s.gate)
		s.gate = nil
	}
	s.mu.Unlock()
}

func (s *stallService) Invoke(op []byte) ([]byte, error) {
	s.mu.RLock()
	gate := s.gate
	s.mu.RUnlock()
	if gate != nil {
		<-gate
	}
	time.Sleep(s.service)
	return op, nil
}

// TestCoordinatedOmission is the acceptance test for the open-loop
// harness: a server stall injected mid-run MUST surface in the open-loop
// p99 (arrivals kept coming during the stall; their queueing delay is
// measured from intended arrival time) and MUST be essentially invisible
// in a closed-loop measurement of the same scenario (the blocked workers
// simply stopped offering load — only a handful of in-flight ops ever
// observe the stall, far too few to reach p99). This is coordinated
// omission made reproducible.
func TestCoordinatedOmission(t *testing.T) {
	const (
		service = time.Millisecond
		stall   = 400 * time.Millisecond
		window  = 1200 * time.Millisecond
	)
	run := func(closed bool) Stats {
		svc := newStallService(service)
		done := make(chan struct{})
		go func() {
			defer close(done)
			// Stall the middle third of the measurement window.
			time.Sleep(window / 3)
			svc.BeginStall()
			time.Sleep(stall)
			svc.EndStall()
		}()
		st, err := Run(Config{
			Rate:        500,
			Arrival:     ArrivalFixed, // deterministic schedule for the test
			Duration:    window,
			MaxInFlight: 32,
			QueueDepth:  4096, // deep queue: measure the stall, don't shed it
			Clients:     []Invoker{svc},
			Seed:        1,
			ClosedLoop:  closed,
		})
		if err != nil {
			t.Fatal(err)
		}
		<-done
		return st
	}

	open := run(false)
	closed := run(true)

	if open.Achieved == 0 || closed.Achieved == 0 {
		t.Fatalf("no ops measured: open %d, closed %d", open.Achieved, closed.Achieved)
	}
	openP99 := open.Hist.Quantile(0.99)
	closedP99 := closed.Hist.Quantile(0.99)
	t.Logf("open-loop:   %d ops, p50 %v, p99 %v, max %v (dropped %d)",
		open.Achieved, open.Hist.Quantile(0.5), openP99, open.Hist.Max(), open.Dropped)
	t.Logf("closed-loop: %d ops, p50 %v, p99 %v, max %v",
		closed.Achieved, closed.Hist.Quantile(0.5), closedP99, closed.Hist.Max())

	// Open loop: ~200 arrivals land inside the 400ms stall and queue; the
	// latest of them wait nearly the full stall. p99 must show a large
	// fraction of it.
	if openP99 < stall/4 {
		t.Fatalf("open-loop p99 %v does not surface the %v stall", openP99, stall)
	}
	// Closed loop: only the ≤32 in-flight ops span the stall; with ~2ms
	// service time the window yields thousands of measured ops, so those
	// few cannot reach p99. The stall must be hidden — that is the bug
	// this harness exists to avoid.
	if closedP99 > stall/4 {
		t.Fatalf("closed-loop p99 %v unexpectedly surfaces the stall — the omission demonstration broke", closedP99)
	}
	// And the closed loop's max still sees it (the few stalled ops), which
	// is precisely why "max looks fine, p99 looks fine" closed-loop
	// reports are misleading: the mass of delayed demand never existed.
	if closed.Hist.Max() < stall/2 {
		t.Fatalf("closed-loop max %v should still show the stall via the blocked in-flight ops", closed.Hist.Max())
	}
}

// TestOpenLoopOfferedRate: the scheduler must hold the configured arrival
// rate regardless of service behavior (that is what "open loop" means).
func TestOpenLoopOfferedRate(t *testing.T) {
	svc := newStallService(200 * time.Microsecond)
	st, err := Run(Config{
		Rate:        400,
		Arrival:     ArrivalPoisson,
		Duration:    time.Second,
		Warmup:      100 * time.Millisecond,
		MaxInFlight: 16,
		Clients:     []Invoker{svc},
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.OfferedRate() < 300 || st.OfferedRate() > 500 {
		t.Fatalf("offered rate %.0f ops/s not within 25%% of the 400 ops/s target", st.OfferedRate())
	}
	if st.Achieved+st.Errors+st.Dropped != st.Offered {
		t.Fatalf("accounting leak: achieved %d + errors %d + dropped %d != offered %d",
			st.Achieved, st.Errors, st.Dropped, st.Offered)
	}
}

// TestOpenLoopDropAccounting: with a tiny queue and a service that blocks
// outright, arrivals must be shed at the door and counted — never silently
// unscheduled.
func TestOpenLoopDropAccounting(t *testing.T) {
	svc := newStallService(time.Millisecond)
	svc.BeginStall() // nothing completes during the schedule
	// Release the blocked workers shortly after the schedule ends so Run's
	// drain (which waits for in-flight ops) can complete.
	go func() {
		time.Sleep(400 * time.Millisecond)
		svc.EndStall()
	}()
	st, err := Run(Config{
		Rate:        500,
		Arrival:     ArrivalFixed,
		Duration:    300 * time.Millisecond,
		MaxInFlight: 2,
		QueueDepth:  2,
		Clients:     []Invoker{svc},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped == 0 {
		t.Fatal("fully stalled service with a depth-2 queue must shed load")
	}
	if st.Achieved+st.Errors+st.Dropped != st.Offered {
		t.Fatalf("accounting leak: achieved %d + errors %d + dropped %d != offered %d",
			st.Achieved, st.Errors, st.Dropped, st.Offered)
	}
}

// errInvoker fails every call.
type errInvoker struct{ calls atomic.Uint64 }

func (e *errInvoker) Invoke(op []byte) ([]byte, error) {
	e.calls.Add(1)
	return nil, errTest
}

var errTest = errorString("invoke failed")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestOpenLoopErrorAccounting(t *testing.T) {
	inv := &errInvoker{}
	st, err := Run(Config{
		Rate:        300,
		Arrival:     ArrivalFixed,
		Duration:    200 * time.Millisecond,
		MaxInFlight: 8,
		Clients:     []Invoker{inv},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors == 0 || st.Achieved != 0 {
		t.Fatalf("error accounting: achieved %d, errors %d", st.Achieved, st.Errors)
	}
}

func TestConfigValidation(t *testing.T) {
	svc := newStallService(0)
	if _, err := Run(Config{Duration: time.Second, Rate: 10}); err == nil {
		t.Fatal("missing clients accepted")
	}
	if _, err := Run(Config{Clients: []Invoker{svc}, Rate: 10}); err == nil {
		t.Fatal("missing duration accepted")
	}
	if _, err := Run(Config{Clients: []Invoker{svc}, Duration: time.Second}); err == nil {
		t.Fatal("open loop without rate accepted")
	}
	if _, err := Run(Config{Clients: []Invoker{svc}, Duration: time.Second, Rate: 10, Arrival: "burst"}); err == nil {
		t.Fatal("unknown arrival process accepted")
	}
}

// TestGateComparable pins the regression-gate semantics: same-environment
// regressions beyond the band fail hard; cross-environment comparisons
// are advisory and always pass.
func TestGateComparable(t *testing.T) {
	base := Result{
		Schema:       ResultSchema,
		Mode:         "open",
		Arrival:      "fixed",
		Target:       200,
		InFlight:     64,
		Payload:      10,
		AchievedRate: 1000,
		// P99 well above latencySlack so the multiplicative band, not the
		// absolute slack floor, sets the ceiling under test.
		Latency: LatencySummary{P99: 500 * time.Millisecond},
	}
	base.Env.NumCPU = 1
	base.Env.GOMAXPROCS = 1
	base.Env.GOOS, base.Env.GOARCH = "linux", "amd64"

	// Within the band: pass.
	cur := base
	cur.AchievedRate = 900 // −10% with a 15% band
	if g := CompareTrajectory(base, cur, 0.15); !g.Pass() || !g.Hard {
		t.Fatalf("in-band run failed the gate: %s", g)
	}
	// Throughput below the band: hard fail.
	cur = base
	cur.AchievedRate = 800 // −20%
	if g := CompareTrajectory(base, cur, 0.15); g.Pass() {
		t.Fatalf("20%% throughput regression passed a 15%% gate: %s", g)
	}
	// p99 blown past the widened latency band: hard fail.
	cur = base
	cur.Latency.P99 = time.Second // 2× with a ceiling of 1.45×
	if g := CompareTrajectory(base, cur, 0.15); g.Pass() {
		t.Fatalf("2× p99 regression passed the gate: %s", g)
	}
	// A tail blip within the absolute slack floor: pass. On a small box a
	// lone scheduling hiccup can multiply a millisecond-scale p99 many
	// times over without any code regression.
	small := base
	small.Latency.P99 = 2 * time.Millisecond
	cur = small
	cur.Latency.P99 = 60 * time.Millisecond
	if g := CompareTrajectory(small, cur, 0.15); !g.Pass() {
		t.Fatalf("sub-slack tail blip failed the gate: %s", g)
	}
	cur.Latency.P99 = 200 * time.Millisecond // past slack too: hard fail
	if g := CompareTrajectory(small, cur, 0.15); g.Pass() {
		t.Fatalf("beyond-slack p99 regression passed the gate: %s", g)
	}
	// Different machine class: advisory, never fails.
	cur = base
	cur.AchievedRate = 100
	cur.Env.NumCPU = 8
	cur.Env.GOMAXPROCS = 8
	g := CompareTrajectory(base, cur, 0.15)
	if !g.Pass() || g.Hard {
		t.Fatalf("cross-machine comparison must be advisory: %s", g)
	}
	// Changed calibration: advisory.
	cur = base
	cur.Target = 400
	cur.AchievedRate = 100
	if g := CompareTrajectory(base, cur, 0.15); !g.Pass() || g.Hard {
		t.Fatalf("changed-calibration comparison must be advisory: %s", g)
	}
}
