// Package load is the open-loop load-generation harness. The bench
// package's closed-loop clients (N workers issuing the next request only
// after the previous reply) measure service time but hide queueing delay:
// when the system stalls, a closed-loop client simply stops offering load,
// so the stall barely registers in its latency distribution — the classic
// coordinated-omission trap. This package generates load the way real
// traffic arrives: requests are scheduled on a wall-clock arrival process
// (Poisson or fixed-interval) at a configured target rate, independent of
// how fast the system answers, and every latency is measured from the
// request's *intended* arrival time. Queueing delay — including delay
// spent waiting for a free in-flight slot — lands in the recorded tail,
// where it belongs.
package load

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Invoker is the client surface the generator drives: one synchronous
// operation against the system under test. *splitbft.Client satisfies it.
type Invoker interface {
	Invoke(op []byte) ([]byte, error)
}

// ReadInvoker is the optional read-path surface: clients that distinguish
// read-only operations (e.g. the lease-anchored local read fast path)
// implement it, and the generator issues read-class operations through it.
// Clients without it get reads through Invoke — the mixed workload still
// runs, just without a separate read path.
type ReadInvoker interface {
	InvokeRead(op []byte) ([]byte, error)
}

// invokeRead issues a read-class op through the client's read path when it
// has one.
func invokeRead(cl Invoker, op []byte) ([]byte, error) {
	if r, ok := cl.(ReadInvoker); ok {
		return r.InvokeRead(op)
	}
	return cl.Invoke(op)
}

// Arrival selects the inter-arrival process.
type Arrival string

// Supported arrival processes.
const (
	// ArrivalPoisson draws exponential inter-arrival gaps — memoryless
	// arrivals, the standard open-workload model.
	ArrivalPoisson Arrival = "poisson"
	// ArrivalFixed spaces arrivals exactly 1/rate apart — a deterministic
	// schedule, useful for calibrated regression runs where Poisson
	// burstiness would add variance.
	ArrivalFixed Arrival = "fixed"
)

// Config parameterizes one load run.
type Config struct {
	// Rate is the target arrival rate in operations per second (> 0).
	Rate float64
	// Arrival is the inter-arrival process; default ArrivalPoisson.
	Arrival Arrival
	// Warmup is untimed ramp-up before the measurement window.
	Warmup time.Duration
	// Duration is the measurement window (> 0).
	Duration time.Duration
	// MaxInFlight bounds concurrent outstanding operations (the worker
	// pool size). Arrivals that find all workers busy queue up to
	// QueueDepth deep — their wait is part of their measured latency —
	// and beyond that are dropped and counted. Default 64.
	MaxInFlight int
	// QueueDepth is the dispatch queue capacity beyond the in-flight
	// bound. Default 4 × MaxInFlight.
	QueueDepth int
	// Clients are the connections operations fan out over, round-robin
	// per worker. At least one is required.
	Clients []Invoker
	// MakeOp builds the operation for (worker, seq); nil sends Payload
	// raw bytes (suitable only for echo-style fakes — real deployments
	// pass an application encoder).
	MakeOp func(worker int, seq uint64) []byte
	// Payload is the default op size in bytes when MakeOp is nil.
	Payload int
	// ReadFrac is the fraction of operations issued as reads, in [0, 1].
	// Classification is deterministic in the arrival sequence number (not
	// random), so a given (rate, seed, frac) configuration offers an
	// identical schedule every run — regression runs stay comparable.
	// Read-class operations are built by MakeRead and issued through the
	// client's read path (ReadInvoker) when it has one. 0 disables the
	// mixed workload.
	ReadFrac float64
	// MakeRead builds the read operation for (worker, seq); required when
	// ReadFrac > 0.
	MakeRead func(worker int, seq uint64) []byte
	// Seed makes the Poisson schedule reproducible; 0 means 1.
	Seed int64
	// ClosedLoop switches the generator to the closed-loop comparison
	// mode: MaxInFlight workers issue back-to-back synchronous ops and
	// latency is measured from the actual call start. This is the
	// coordinated-omission-PRONE measurement, kept only so the two
	// semantics can be compared with one tool (and proven different by
	// the tests). Rate and QueueDepth are ignored.
	ClosedLoop bool
}

func (c Config) withDefaults() (Config, error) {
	if len(c.Clients) == 0 {
		return c, errors.New("load: no clients")
	}
	if c.Duration <= 0 {
		return c, errors.New("load: Duration must be positive")
	}
	if !c.ClosedLoop && c.Rate <= 0 {
		return c, errors.New("load: Rate must be positive in open-loop mode")
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalPoisson
	}
	if c.Arrival != ArrivalPoisson && c.Arrival != ArrivalFixed {
		return c, fmt.Errorf("load: unknown arrival process %q", c.Arrival)
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxInFlight
	}
	if c.Payload <= 0 {
		c.Payload = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ReadFrac < 0 || c.ReadFrac > 1 {
		return c, fmt.Errorf("load: ReadFrac %v outside [0, 1]", c.ReadFrac)
	}
	if c.ReadFrac > 0 && c.MakeRead == nil {
		return c, errors.New("load: ReadFrac > 0 requires MakeRead")
	}
	return c, nil
}

// isRead classifies one arrival purely as a function of its sequence
// number, Bresenham-style: reads land wherever the running count
// floor(seq·frac) increments, which spreads the two classes evenly through
// the schedule instead of batching them (a 90/10 mix issues w r r r r r
// r r r r w r …, not 900 reads then 100 writes).
func (c Config) isRead(seq uint64) bool {
	if c.ReadFrac <= 0 {
		return false
	}
	return uint64(float64(seq+1)*c.ReadFrac) > uint64(float64(seq)*c.ReadFrac)
}

// job is one scheduled arrival.
type job struct {
	intended time.Time
	seq      uint64
	measured bool
}

// workerStats accumulates per-worker results, merged after the run. The
// per-class histograms share the aggregate's exact-merge property: the
// merged read histogram equals one recorder having seen every read.
type workerStats struct {
	hist      Histogram
	readHist  Histogram
	writeHist Histogram
	achieved  uint64
	errors    uint64
}

// record books one completed-ok operation into the aggregate and, in
// mixed-workload runs, its class histogram.
func (ws *workerStats) record(lat time.Duration, mixed, read bool) {
	ws.achieved++
	ws.hist.Record(lat)
	if !mixed {
		return
	}
	if read {
		ws.readHist.Record(lat)
	} else {
		ws.writeHist.Record(lat)
	}
}

// Run executes one load run and returns its Stats. Open-loop mode: a
// scheduler thread issues arrivals on the configured process; MaxInFlight
// workers consume them; each operation's latency is completion minus
// INTENDED arrival — queueing delay included, coordinated omission
// excluded. Closed-loop mode: workers loop synchronously and measure from
// the actual call start.
func Run(cfg Config) (Stats, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Stats{}, err
	}
	if cfg.ClosedLoop {
		return runClosed(cfg), nil
	}
	return runOpen(cfg), nil
}

func runOpen(cfg Config) Stats {
	jobs := make(chan job, cfg.QueueDepth)
	stats := make([]workerStats, cfg.MaxInFlight)
	payload := defaultPayload(cfg.Payload)

	var wg sync.WaitGroup
	for w := 0; w < cfg.MaxInFlight; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := &stats[w]
			cl := cfg.Clients[w%len(cfg.Clients)]
			for j := range jobs {
				read := cfg.isRead(j.seq)
				var err error
				if read {
					_, err = invokeRead(cl, cfg.MakeRead(w, j.seq))
				} else {
					op := payload
					if cfg.MakeOp != nil {
						op = cfg.MakeOp(w, j.seq)
					}
					_, err = cl.Invoke(op)
				}
				// Latency from the intended arrival: if this op sat in
				// the dispatch queue behind a stall, that wait is real
				// user-visible latency and is measured as such.
				lat := time.Since(j.intended)
				if !j.measured {
					continue
				}
				if err != nil {
					ws.errors++
					continue
				}
				ws.record(lat, cfg.ReadFrac > 0, read)
			}
		}(w)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	gap := func() time.Duration {
		if cfg.Arrival == ArrivalFixed {
			return time.Duration(float64(time.Second) / cfg.Rate)
		}
		return time.Duration(rng.ExpFloat64() * float64(time.Second) / cfg.Rate)
	}

	start := time.Now()
	measureStart := start.Add(cfg.Warmup)
	end := measureStart.Add(cfg.Duration)
	var offered, dropped uint64
	var seq uint64
	next := start
	for next.Before(end) {
		// Sleep until the intended arrival; a late wakeup issues every
		// due arrival immediately with intended times untouched — the
		// schedule never adapts to the system under test.
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		j := job{intended: next, seq: seq, measured: !next.Before(measureStart)}
		seq++
		if j.measured {
			offered++
		}
		select {
		case jobs <- j:
		default:
			// Queue full: the op is shed at the door. Explicit drop
			// accounting — a drop is a failed offered op, not a
			// silently shortened schedule.
			if j.measured {
				dropped++
			}
		}
		next = next.Add(gap())
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(measureStart)
	tail := elapsed - cfg.Duration
	if tail < 0 {
		tail = 0
	}

	s := Stats{
		Mode:     "open",
		Offered:  offered,
		Dropped:  dropped,
		Window:   cfg.Duration,
		Elapsed:  elapsed,
		TailWait: tail,
	}
	mergeWorkers(&s, stats)
	return s
}

// mergeWorkers folds per-worker recorders into the run's Stats; the
// per-class split totals come from the merged histograms themselves.
func mergeWorkers(s *Stats, stats []workerStats) {
	for w := range stats {
		s.Achieved += stats[w].achieved
		s.Errors += stats[w].errors
		s.Hist.Merge(&stats[w].hist)
		s.ReadHist.Merge(&stats[w].readHist)
		s.WriteHist.Merge(&stats[w].writeHist)
	}
	s.Reads = s.ReadHist.Count()
	s.Writes = s.WriteHist.Count()
}

func runClosed(cfg Config) Stats {
	stats := make([]workerStats, cfg.MaxInFlight)
	payload := defaultPayload(cfg.Payload)
	start := time.Now()
	measureStart := start.Add(cfg.Warmup)
	end := measureStart.Add(cfg.Duration)

	var wg sync.WaitGroup
	for w := 0; w < cfg.MaxInFlight; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := &stats[w]
			cl := cfg.Clients[w%len(cfg.Clients)]
			var seq uint64
			for {
				now := time.Now()
				if !now.Before(end) {
					return
				}
				read := cfg.isRead(seq)
				var err error
				if read {
					_, err = invokeRead(cl, cfg.MakeRead(w, seq))
				} else {
					op := payload
					if cfg.MakeOp != nil {
						op = cfg.MakeOp(w, seq)
					}
					_, err = cl.Invoke(op)
				}
				seq++
				done := time.Now()
				// Classic closed-loop accounting: latency from the
				// actual call start, counted when the op completes
				// inside the window. An op stalled by the server simply
				// delays the NEXT send — the omission this mode exists
				// to demonstrate.
				if done.Before(measureStart) || !done.Before(end) {
					continue
				}
				if err != nil {
					ws.errors++
					continue
				}
				ws.record(done.Sub(now), cfg.ReadFrac > 0, read)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(measureStart)

	s := Stats{Mode: "closed", Window: cfg.Duration, Elapsed: elapsed}
	mergeWorkers(&s, stats)
	// A closed loop offers exactly what it achieves — that asymmetry IS
	// coordinated omission, kept visible in the numbers.
	s.Offered = s.Achieved + s.Errors
	return s
}

func defaultPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte('a' + i%26)
	}
	return p
}

// Stats is the raw outcome of one Run, before environment stamping.
type Stats struct {
	Mode     string // "open" | "closed"
	Offered  uint64 // measured-window arrivals (open) or completions (closed)
	Achieved uint64 // completed without error in the window
	Dropped  uint64 // shed at the dispatch-queue door (open loop only)
	Errors   uint64
	Window   time.Duration // configured measurement window
	Elapsed  time.Duration // wall time from window start to last completion
	TailWait time.Duration // completion drain past the window's end
	Hist     Histogram

	// Per-class split, populated only on mixed (ReadFrac > 0) runs. Reads
	// and Writes sum to Achieved; each class keeps its own exact-merge
	// histogram so a fast read path cannot hide a slow write tail in the
	// aggregate (or vice versa).
	Reads     uint64
	Writes    uint64
	ReadHist  Histogram
	WriteHist Histogram
}

// ReadRate is the read-class throughput in ops/s over the window (0 on
// single-class runs).
func (s Stats) ReadRate() float64 {
	if s.Window <= 0 {
		return 0
	}
	return float64(s.Reads) / s.Window.Seconds()
}

// WriteRate is the write-class throughput in ops/s over the window.
func (s Stats) WriteRate() float64 {
	if s.Window <= 0 {
		return 0
	}
	return float64(s.Writes) / s.Window.Seconds()
}

// OfferedRate is the offered load in ops/s over the measurement window.
func (s Stats) OfferedRate() float64 {
	if s.Window <= 0 {
		return 0
	}
	return float64(s.Offered) / s.Window.Seconds()
}

// AchievedRate is the completed-ok throughput in ops/s over the window.
func (s Stats) AchievedRate() float64 {
	if s.Window <= 0 {
		return 0
	}
	return float64(s.Achieved) / s.Window.Seconds()
}
