package faultmodel

import (
	"strings"
	"testing"
	"testing/quick"
)

func spec(t *testing.T, p Protocol) Spec {
	t.Helper()
	for _, s := range Specs() {
		if s.Protocol == p {
			return s
		}
	}
	t.Fatalf("no spec for %v", p)
	return Spec{}
}

func TestPBFTToleratesUpToF(t *testing.T) {
	s := spec(t, PBFT)
	for f := 1; f <= 3; f++ {
		for hosts := 0; hosts <= f; hosts++ {
			out := Evaluate(s, f, Scenario{FaultyHosts: hosts})
			if !out.Live || !out.Safe {
				t.Fatalf("PBFT f=%d hosts=%d should be live+safe", f, hosts)
			}
			if out.Confidential {
				t.Fatal("PBFT must never be confidential")
			}
		}
		out := Evaluate(s, f, Scenario{FaultyHosts: f + 1})
		if out.Live || out.Safe {
			t.Fatalf("PBFT f=%d must fail with %d faulty hosts", f, f+1)
		}
	}
}

func TestHybridBreaksOnOneByzantineTEE(t *testing.T) {
	s := spec(t, Hybrid)
	ok := Evaluate(s, 1, Scenario{FaultyHosts: 1})
	if !ok.Live || !ok.Safe {
		t.Fatal("hybrid with f faulty hosts and correct TEEs should work")
	}
	bad := Evaluate(s, 1, Scenario{FaultyEnclaves: map[string]int{"tee": 1}})
	if bad.Safe {
		t.Fatal("hybrid must lose safety with a single Byzantine TEE")
	}
}

func TestSplitBFTSafetyWithAllHostsCompromised(t *testing.T) {
	s := spec(t, SplitBFT)
	for f := 1; f <= 3; f++ {
		n := s.Replicas(f)
		out := Evaluate(s, f, Scenario{FaultyHosts: n})
		if !out.Safe {
			t.Fatalf("SplitBFT f=%d must stay safe with all %d hosts compromised", f, n)
		}
		if out.Live {
			t.Fatalf("SplitBFT f=%d cannot be live with all hosts compromised", f)
		}
	}
}

func TestSplitBFTToleratesFEnclavesPerCompartment(t *testing.T) {
	s := spec(t, SplitBFT)
	f := 1
	// One faulty enclave of each type (the Figure 1 scenario): 3 total
	// faults, more than f replicas, yet safe.
	sc := Scenario{FaultyEnclaves: map[string]int{"prep": 1, "conf": 1, "exec": 1}}
	out := Evaluate(s, f, sc)
	if !out.Safe {
		t.Fatal("SplitBFT must stay safe with f faulty enclaves per compartment type")
	}
	if out.Confidential {
		t.Fatal("confidentiality requires all execution enclaves correct")
	}
	// Exceed f in one compartment: safety is gone.
	sc2 := Scenario{FaultyEnclaves: map[string]int{"prep": 2}}
	if Evaluate(s, f, sc2).Safe {
		t.Fatal("SplitBFT must lose safety with f+1 faulty enclaves of one type")
	}
}

func TestSplitBFTConfidentialityOnlyNeedsExecEnclaves(t *testing.T) {
	s := spec(t, SplitBFT)
	out := Evaluate(s, 1, Scenario{
		FaultyHosts:    4,
		FaultyEnclaves: map[string]int{"prep": 1, "conf": 1},
	})
	if !out.Confidential {
		t.Fatal("confidentiality must survive host + prep/conf enclave faults")
	}
	out = Evaluate(s, 1, Scenario{FaultyEnclaves: map[string]int{"exec": 1}})
	if out.Confidential {
		t.Fatal("one faulty execution enclave must break confidentiality")
	}
	if !out.Safe {
		t.Fatal("one faulty execution enclave must not break integrity")
	}
}

func TestQuickSplitBFTSafetyIndependentOfHosts(t *testing.T) {
	s := spec(t, SplitBFT)
	f := 2
	fn := func(hosts uint8, prep, conf, exec uint8) bool {
		sc := Scenario{
			FaultyHosts: int(hosts % 8),
			FaultyEnclaves: map[string]int{
				"prep": int(prep % 3), "conf": int(conf % 3), "exec": int(exec % 3),
			},
		}
		out := Evaluate(s, f, sc)
		// Safety must be exactly "≤ f faults per compartment type".
		wantSafe := sc.FaultyEnclaves["prep"] <= f &&
			sc.FaultyEnclaves["conf"] <= f && sc.FaultyEnclaves["exec"] <= f
		return out.Safe == wantSafe
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1(1)
	if len(rows) != 3 {
		t.Fatalf("Table 1 has %d rows, want 3", len(rows))
	}
	pbft, hybrid, split := rows[0], rows[1], rows[2]
	if pbft.Replicas != "3f+1" || hybrid.Replicas != "2f+1" || split.Replicas != "3f+1" {
		t.Fatalf("replica columns wrong: %v %v %v", pbft.Replicas, hybrid.Replicas, split.Replicas)
	}
	if pbft.LivenessHost != "1" || hybrid.LivenessHost != "1" || split.LivenessHost != "1" {
		t.Fatal("all protocols tolerate f host faults for liveness")
	}
	// SplitBFT integrity survives all n hosts; PBFT/hybrid only f.
	if split.IntegrityHost != "4" {
		t.Fatalf("SplitBFT integrity hosts = %s, want 4 (=n)", split.IntegrityHost)
	}
	if pbft.IntegrityHost != "1" || hybrid.IntegrityHost != "1" {
		t.Fatal("PBFT/hybrid integrity must cap at f hosts")
	}
	if hybrid.IntegrityEnc != "0" {
		t.Fatal("hybrid tolerates zero Byzantine enclaves")
	}
	if split.ConfidentialHst != "4" {
		t.Fatalf("SplitBFT confidentiality hosts = %s, want 4", split.ConfidentialHst)
	}
	if pbft.ConfidentialHst != "0" {
		t.Fatal("PBFT offers no confidentiality")
	}
	text := FormatTable(rows)
	for _, want := range []string{"PBFT", "Hybrid", "SplitBFT", "f_prep"} {
		if !strings.Contains(text, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, text)
		}
	}
}
