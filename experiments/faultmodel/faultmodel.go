// Package faultmodel computes the fault-tolerance comparison of Table 1 in
// the paper: for PBFT, TEE-based hybrid protocols (MinBFT/CheapBFT-style),
// and SplitBFT, it derives how many faults of each kind (host environments,
// enclaves per compartment type) each protocol tolerates while preserving
// liveness, integrity, and confidentiality.
//
// The derivations are mechanical consequences of each protocol's quorum
// structure rather than hard-coded strings, so the table regenerates from
// the model, and property tests can probe specific fault scenarios.
package faultmodel

import (
	"fmt"
	"strings"
)

// Protocol identifies a system in the comparison.
type Protocol int

// The compared systems.
const (
	PBFT Protocol = iota
	Hybrid
	SplitBFT
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case PBFT:
		return "PBFT"
	case Hybrid:
		return "Hybrid Protocols"
	case SplitBFT:
		return "SplitBFT"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// CompartmentKinds are the SplitBFT compartment types.
var CompartmentKinds = []string{"prep", "conf", "exec"}

// Spec describes a protocol's structural properties for a fault budget f.
type Spec struct {
	Protocol Protocol
	// Replicas returns the replica count needed to tolerate f faults.
	Replicas func(f int) int
	// UsesTEE reports whether the protocol depends on trusted execution.
	UsesTEE bool
	// TEEMayFail reports whether the protocol's safety survives Byzantine
	// TEEs (SplitBFT) or assumes they can only crash (hybrids).
	TEEMayFail bool
}

// Specs returns the three compared protocol specifications.
func Specs() []Spec {
	return []Spec{
		{Protocol: PBFT, Replicas: func(f int) int { return 3*f + 1 }},
		{Protocol: Hybrid, Replicas: func(f int) int { return 2*f + 1 }, UsesTEE: true},
		{Protocol: SplitBFT, Replicas: func(f int) int { return 3*f + 1 }, UsesTEE: true, TEEMayFail: true},
	}
}

// Scenario is a concrete fault assignment to evaluate.
type Scenario struct {
	// FaultyHosts is the number of replicas whose untrusted environment
	// (or, for PBFT, the whole replica) is Byzantine.
	FaultyHosts int
	// FaultyEnclaves maps a compartment kind ("prep", "conf", "exec" for
	// SplitBFT; "tee" for hybrids) to the number of Byzantine enclaves of
	// that kind, each on a distinct replica.
	FaultyEnclaves map[string]int
}

// Outcome is what a protocol guarantees under a scenario.
type Outcome struct {
	Live            bool
	Safe            bool // integrity: no two correct parties diverge
	Confidential    bool // client payloads stay secret
	Explanation     string
	failedThreshold string
}

// Evaluate derives the outcome of running protocol spec with parameter f
// under the given scenario. It encodes the quorum arguments from §2:
//
//   - PBFT: all three properties need faulty replicas ≤ f; there is no
//     confidentiality at all (state is plaintext on every replica).
//   - Hybrid: liveness/integrity need faulty hosts ≤ f AND zero Byzantine
//     enclaves (the trusted subsystem is assumed fail-stop); no
//     confidentiality.
//   - SplitBFT: liveness needs faulty hosts ≤ f; integrity needs ≤ f
//     Byzantine enclaves of EACH compartment type, independent of how many
//     hosts are compromised (up to all n); confidentiality needs all
//     Execution enclaves correct, again independent of hosts.
func Evaluate(spec Spec, f int, sc Scenario) Outcome {
	n := spec.Replicas(f)
	hosts := sc.FaultyHosts
	if hosts > n {
		hosts = n
	}
	switch spec.Protocol {
	case PBFT:
		ok := hosts <= f
		return Outcome{
			Live:         ok,
			Safe:         ok,
			Confidential: false,
			Explanation:  fmt.Sprintf("replica = unit of failure; quorum intersection needs ≥ %d correct of %d", 2*f+1, n),
		}
	case Hybrid:
		tees := sc.FaultyEnclaves["tee"]
		live := hosts <= f && tees == 0
		safe := hosts <= f && tees == 0
		return Outcome{
			Live:         live,
			Safe:         safe,
			Confidential: false,
			Explanation:  "trusted counter assumed fail-stop: a single Byzantine TEE forges attestations and breaks agreement",
		}
	case SplitBFT:
		live := hosts <= f
		safe := true
		var broken []string
		for _, kind := range CompartmentKinds {
			if sc.FaultyEnclaves[kind] > f {
				safe = false
				broken = append(broken, kind)
			}
		}
		// A Byzantine enclave also renders its host environment faulty
		// (§2.1), and any enclave fault can stall its replica: liveness
		// additionally requires total distinct faulty replicas ≤ f. We
		// approximate distinctness by the max per-kind count plus hosts
		// (the paper places each fault on a different replica).
		maxEnc := 0
		for _, kind := range CompartmentKinds {
			if sc.FaultyEnclaves[kind] > maxEnc {
				maxEnc = sc.FaultyEnclaves[kind]
			}
		}
		if hosts+maxEnc > f {
			live = false
		}
		conf := sc.FaultyEnclaves["exec"] == 0
		expl := "safety rides on per-compartment quorums: up to f Byzantine enclaves of each type are masked"
		if !safe {
			expl = fmt.Sprintf("more than f=%d Byzantine enclaves in compartment(s) %s break the quorum", f, strings.Join(broken, ","))
		}
		return Outcome{Live: live, Safe: safe, Confidential: conf, Explanation: expl}
	default:
		return Outcome{}
	}
}

// Row is one line of Table 1, in the paper's notation.
type Row struct {
	Work            string
	Replicas        string
	TEE             string
	TEEMayFail      string
	LivenessHost    string
	IntegrityEnc    string
	IntegrityHost   string
	ConfidentialEnc string
	ConfidentialHst string
}

// Table1 regenerates the paper's Table 1 from the model by probing
// Evaluate with increasing fault counts and reporting the largest tolerated
// value in each dimension.
func Table1(f int) []Row {
	rows := make([]Row, 0, 3)
	for _, spec := range Specs() {
		n := spec.Replicas(f)
		row := Row{
			Work:     spec.Protocol.String(),
			Replicas: replicasExpr(spec.Protocol),
			TEE:      checkmark(spec.UsesTEE),
		}
		if spec.UsesTEE {
			row.TEEMayFail = checkmark(spec.TEEMayFail)
		} else {
			row.TEEMayFail = "-"
		}
		// Liveness: max faulty hosts tolerated.
		row.LivenessHost = fmt.Sprintf("%d", maxTolerated(n, func(k int) bool {
			return Evaluate(spec, f, Scenario{FaultyHosts: k}).Live
		}))
		// Integrity vs Byzantine enclaves.
		switch spec.Protocol {
		case PBFT:
			row.IntegrityEnc = "-"
			row.IntegrityHost = fmt.Sprintf("%d", maxTolerated(n, func(k int) bool {
				return Evaluate(spec, f, Scenario{FaultyHosts: k}).Safe
			}))
		case Hybrid:
			row.IntegrityEnc = "0"
			row.IntegrityHost = fmt.Sprintf("%d", maxTolerated(n, func(k int) bool {
				return Evaluate(spec, f, Scenario{FaultyHosts: k}).Safe
			}))
		case SplitBFT:
			// f per compartment type, written as the paper does.
			row.IntegrityEnc = fmt.Sprintf("f_prep ∧ f_conf ∧ f_exec (f=%d each)", f)
			// Hosts: safety independent of host compromise — all n.
			row.IntegrityHost = fmt.Sprintf("%d", maxTolerated(n, func(k int) bool {
				return Evaluate(spec, f, Scenario{FaultyHosts: k}).Safe
			}))
		}
		// Confidentiality.
		switch spec.Protocol {
		case PBFT, Hybrid:
			row.ConfidentialEnc = "-"
			row.ConfidentialHst = "0"
		case SplitBFT:
			row.ConfidentialEnc = "0_exec"
			row.ConfidentialHst = fmt.Sprintf("%d", maxTolerated(n, func(k int) bool {
				return Evaluate(spec, f, Scenario{FaultyHosts: k}).Confidential
			}))
		}
		rows = append(rows, row)
	}
	return rows
}

// maxTolerated returns the largest k in [0, n] for which ok(k) holds for
// all values up to k, or 0 if ok(0) fails.
func maxTolerated(n int, ok func(int) bool) int {
	best := 0
	for k := 0; k <= n; k++ {
		if !ok(k) {
			break
		}
		best = k
	}
	return best
}

func replicasExpr(p Protocol) string {
	if p == Hybrid {
		return "2f+1"
	}
	return "3f+1"
}

func checkmark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// FormatTable renders rows as an aligned text table matching the paper's
// column layout.
func FormatTable(rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %-9s %-4s %-8s %-9s %-36s %-10s %-16s %-6s\n",
		"Work", "#Replicas", "TEE", "TEE-Byz", "Live(hst)", "Integrity(enclave)", "Integ(hst)", "Confid(enclave)", "C(hst)")
	sb.WriteString(strings.Repeat("-", 122) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %-9s %-4s %-8s %-9s %-36s %-10s %-16s %-6s\n",
			r.Work, r.Replicas, r.TEE, r.TEEMayFail, r.LivenessHost,
			r.IntegrityEnc, r.IntegrityHost, r.ConfidentialEnc, r.ConfidentialHst)
	}
	return sb.String()
}
