package splitbft

import (
	"time"

	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/obs"
	"github.com/splitbft/splitbft/internal/transport"
)

// Metric is one observability sample: a Prometheus-style series name —
// possibly carrying {key="value"} labels, e.g. a compartment — and its
// current value. Metrics snapshots are pull-style: the hot paths keep
// cheap atomic counters and the registry reads them only when asked.
type Metric struct {
	Name  string
	Value float64
}

// StageLatency is the latency profile of one request-lifecycle stage, as
// measured by the tracer between consecutive stamps at the untrusted
// compartment boundaries. The synthetic "end-to-end" (and, with leased
// reads, "end-to-end-read") rows span a request's first to last stamp.
type StageLatency struct {
	Stage string
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Metrics returns the node's current observability samples, sorted by
// series name. Nil without WithObservability.
func (n *Node) Metrics() []Metric {
	reg := n.observer.Registry()
	if reg == nil {
		return nil
	}
	samples := reg.Gather()
	out := make([]Metric, len(samples))
	for i, s := range samples {
		out[i] = Metric{Name: s.Name, Value: s.Value}
	}
	return out
}

// StageLatencies returns the per-stage latency breakdown of the traced
// requests since the last reset, in lifecycle order, stages that never
// completed omitted. Nil without WithObservability.
func (n *Node) StageLatencies() []StageLatency {
	tr := n.observer.Trace()
	if tr == nil {
		return nil
	}
	stats := tr.StageStats()
	out := make([]StageLatency, len(stats))
	for i, s := range stats {
		out[i] = StageLatency{Stage: s.Stage, Count: s.Count, Mean: s.Mean, P50: s.P50, P99: s.P99, Max: s.Max}
	}
	return out
}

// ResetStats zeroes every measurement surface of the node in one call:
// the per-compartment ecall, crypto and cache counters, the broker's
// message counters, the protocol-event counters, the metrics registry and
// the tracer. Use it to open a measurement window — resetting surfaces
// one by one (the pre-observability API) mixed measurement epochs,
// because counters zeroed at slightly different times disagreed about
// when the window began. Works with or without WithObservability.
func (n *Node) ResetStats() {
	if reg := n.observer.Registry(); reg != nil {
		// Reset zeroes the registry's own instruments and then runs the
		// replica's reset hook, which clears every underlying source —
		// one atomic epoch boundary for all surfaces.
		reg.Reset()
		return
	}
	n.replica.ResetAllStats()
}

// MetricsAddr returns the bound address of the HTTP introspection
// endpoint ("" when WithMetricsAddr was not given or the node is not
// started) — useful with ":0", which picks a free port.
func (n *Node) MetricsAddr() string {
	if n.metrics == nil {
		return ""
	}
	return n.metrics.Addr()
}

// nodeSource adapts a Node to the introspection server's Source interface
// without exposing internal observability types on the public Node API.
type nodeSource struct{ n *Node }

func (s nodeSource) Gather() []obs.Sample {
	return s.n.observer.Registry().Gather()
}

func (s nodeSource) StageStats() []obs.StageStat {
	return s.n.observer.Trace().StageStats()
}

func (s nodeSource) Spans(limit int) []obs.Span {
	return s.n.observer.Trace().Spans(limit)
}

func (s nodeSource) TraceEpoch() time.Time {
	return s.n.observer.Trace().Epoch()
}

// Health assembles the /healthz view: compartment liveness and WAL state
// come from the replica; peer reachability from an active connectivity
// probe — a single out-of-band byte sent to every peer endpoint, dropped
// by the receiver's classify stage. A send the transport refuses (dead
// TCP connection and failed redial, departed in-process endpoint) marks
// the peer unreachable.
func (s nodeSource) Health() obs.Health {
	n := s.n
	h := obs.Health{Healthy: true, Compartments: make(map[string]bool, 3)}
	for name, alive := range n.replica.EnclavesAlive() {
		h.Compartments[name] = alive
		if !alive {
			h.Healthy = false
		}
	}
	switch err := n.replica.WALError(); {
	case n.opts.persistDir == "":
		h.WAL = "off"
	case err != nil:
		h.WAL = err.Error()
		h.Healthy = false
	default:
		h.WAL = "ok"
	}
	conn := n.conn
	// A transport that can answer reachability directly (the simulated
	// network knows its blocked links) beats the send-probe: a partition
	// swallows sends without an error, so send success alone would report
	// a partitioned peer as healthy.
	prober, _ := conn.(interface{ Reachable(transport.Endpoint) bool })
	for id := 0; id < n.opts.n; id++ {
		if uint32(id) == n.id {
			continue
		}
		reachable := false
		switch {
		case prober != nil:
			reachable = prober.Reachable(transport.ReplicaEndpoint(uint32(id)))
		case conn != nil:
			reachable = conn.Send(transport.ReplicaEndpoint(uint32(id)), []byte{messages.ProbePing}) == nil
		}
		h.Peers = append(h.Peers, obs.PeerHealth{ID: uint32(id), Reachable: reachable})
		if !reachable {
			h.Healthy = false
		}
	}
	return h
}

// startMetrics binds the introspection endpoint if WithMetricsAddr was
// given; called from Start after the transport is up.
func (n *Node) startMetrics() error {
	if n.opts.metricsAddr == "" || n.metrics != nil {
		return nil
	}
	srv := obs.NewServer(n.opts.metricsAddr, nodeSource{n})
	if err := srv.Start(); err != nil {
		return err
	}
	n.metrics = srv
	return nil
}

// stopMetrics tears the introspection endpoint down; called from Stop and
// Crash before the transport detaches so no handler scrapes a dead node.
func (n *Node) stopMetrics() {
	if n.metrics != nil {
		n.metrics.Close()
		n.metrics = nil
	}
}
