package splitbft

import (
	"errors"
	"fmt"
	"time"

	"github.com/splitbft/splitbft/internal/core"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/transport"
)

// Node is one SplitBFT replica: three compartment enclaves (Preparation,
// Confirmation, Execution) plus the untrusted broker, bound to a
// transport. Build standalone TCP nodes with NewNode; in-process groups
// with NewCluster.
type Node struct {
	id      uint32
	opts    options
	app     Application
	replica *core.Replica

	started bool
	stopped bool
	tcp     *transport.TCPNode
	conn    transport.Conn
}

// EnclaveStat is one compartment's ecall profile (the Figure 4
// instrumentation). Count is the number of trusted-boundary crossings;
// Msgs the messages they delivered — with WithEcallBatch one crossing may
// carry many messages, and Msgs/Count is the achieved amortization.
type EnclaveStat struct {
	Role  Role
	Count uint64
	Msgs  uint64
	Mean  time.Duration
	Total time.Duration
}

// MsgsPerEcall returns the achieved ecall batch amortization factor (1.0
// when batching is off, 0 before any traffic).
func (s EnclaveStat) MsgsPerEcall() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Msgs) / float64(s.Count)
}

// VerifyCacheStats reports how effective a node's signature-verification
// caches are: hits are signature checks whose Ed25519 cost was skipped
// because an identical (message, signature, signer) triple had already
// verified. With the pipeline off, hits come from retransmits and
// view-change replays; with WithVerifyWorkers on, they additionally count
// the serial handler pass consuming the parallel workers' warm pass, so a
// pipelined node reads ~50% even without any retransmission.
type VerifyCacheStats struct {
	Hits   uint64
	Misses uint64
}

// HitRate returns hits/(hits+misses), or 0 when nothing was looked up.
func (s VerifyCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewNode builds replica id of a deployment. The transport comes from
// WithTransportTCP (standalone processes; requires WithKeySeed so separate
// processes agree on enclave keys). For in-process groups use NewCluster,
// which wires nodes to a shared simulated network instead.
//
// The node is inert until Start.
func NewNode(id uint32, opts ...Option) (*Node, error) {
	o := buildOptions(opts)
	if o.simnet == nil && len(o.tcpAddrs) == 0 {
		return nil, errors.New("splitbft: NewNode requires WithTransportTCP (or construction through NewCluster)")
	}
	if len(o.tcpAddrs) > 0 && len(o.keySeed) == 0 {
		return nil, errors.New("splitbft: the TCP transport requires WithKeySeed — separate processes cannot otherwise agree on enclave keys")
	}
	if err := o.resolveGroup(); err != nil {
		return nil, err
	}
	if int(id) >= o.n {
		return nil, fmt.Errorf("splitbft: node id %d out of range [0, %d)", id, o.n)
	}
	reg := o.registry
	if reg == nil {
		reg = crypto.NewRegistry()
		if len(o.keySeed) > 0 {
			if err := core.RegisterDeterministicKeys(reg, o.keySeed, o.n); err != nil {
				return nil, err
			}
		}
	}
	application := o.application()
	replica, err := core.NewReplica(core.Config{
		N: o.n, F: o.f, ID: id,
		Registry:           reg,
		MACSecret:          o.secret(),
		KeySeed:            o.keySeed,
		App:                application,
		Confidential:       o.confidential,
		Cost:               o.costModel(),
		SingleThread:       o.singleThread,
		EcallBatch:         o.ecallBatch,
		VerifyWorkers:      o.verifyWorkers,
		CheckpointInterval: o.checkpointInterval,
		BatchSize:          o.batchSize,
		BatchTimeout:       o.batchTimeout,
		RequestTimeout:     o.requestTimeout,
	})
	if err != nil {
		return nil, err
	}
	return &Node{id: id, opts: o, app: application, replica: replica}, nil
}

// Start attaches the node to its transport and begins processing. It is
// idempotent while running; a node cannot restart after Stop (the broker
// threads terminate permanently — build a fresh Node instead).
func (n *Node) Start() error {
	if n.stopped {
		return errors.New("splitbft: node cannot restart after Stop — create a new Node")
	}
	if n.started {
		return nil
	}
	if n.opts.simnet != nil {
		conn, err := n.opts.simnet.Join(transport.ReplicaEndpoint(n.id), n.replica.Handler())
		if err != nil {
			return err
		}
		n.conn = conn
	} else {
		addrs := make(map[uint32]string, n.opts.n)
		for i, a := range n.opts.tcpAddrs {
			addrs[uint32(i)] = a
		}
		listen := n.opts.listenAddr
		if listen == "" {
			listen = addrs[n.id]
		}
		tcp, err := transport.ListenTCP(transport.ReplicaEndpoint(n.id), listen, addrs, n.replica.Handler())
		if err != nil {
			return fmt.Errorf("splitbft: node %d listen on %q: %w (use WithListenAddr when the advertised address is not locally bindable)", n.id, listen, err)
		}
		n.tcp = tcp
		n.conn = tcp
	}
	n.replica.Start(n.conn)
	n.started = true
	return nil
}

// Stop terminates the node's broker threads and detaches its transport.
// Stopping is permanent: a stopped node cannot be restarted.
func (n *Node) Stop() {
	if n.started {
		n.replica.Stop()
		_ = n.conn.Close()
		n.started = false
	}
	n.stopped = true
}

// ID returns the node's replica ID.
func (n *Node) ID() uint32 { return n.id }

// Addr returns the TCP listen address ("" for in-process nodes), useful
// when listening on an ephemeral port.
func (n *Node) Addr() string {
	if n.tcp == nil {
		return ""
	}
	return n.tcp.Addr()
}

// App returns this node's application instance, for state inspection in
// tests and examples (e.g. asserting replica digests agree).
func (n *Node) App() Application { return n.app }

// CrashEnclave kills one compartment enclave — the fault-injection handle
// behind the paper's Figure 1 scenario: SplitBFT stays safe with one
// faulty enclave of each type on different replicas, more faults than
// classical BFT's f whole replicas.
func (n *Node) CrashEnclave(role Role) { n.replica.CrashEnclave(role) }

// ExecutedOps returns the number of client operations this node replied
// to.
func (n *Node) ExecutedOps() uint64 { return n.replica.ExecutedOps() }

// Batches returns the number of batches submitted for ordering.
func (n *Node) Batches() uint64 { return n.replica.Batches() }

// Suspects returns how many times the failure detector fired.
func (n *Node) Suspects() uint64 { return n.replica.Suspects() }

// PersistedBlocks returns the number of sealed blocks written through the
// persistence ocall (zero for non-persisting applications).
func (n *Node) PersistedBlocks() int { return n.replica.PersistedBlocks() }

// EnclaveStats returns the per-compartment ecall profile in pipeline order
// (Preparation, Confirmation, Execution).
func (n *Node) EnclaveStats() []EnclaveStat {
	snap := n.replica.EnclaveStats()
	out := make([]EnclaveStat, 0, 3)
	for _, role := range CompartmentRoles() {
		s := snap[role]
		out = append(out, EnclaveStat{Role: role, Count: s.Count, Msgs: s.Msgs, Mean: s.Mean, Total: s.Total})
	}
	return out
}

// VerifyCacheStats returns the node's summed signature-verification cache
// counters across its three compartments.
func (n *Node) VerifyCacheStats() VerifyCacheStats {
	s := n.replica.VerifyCacheStats()
	return VerifyCacheStats{Hits: s.Hits, Misses: s.Misses}
}

// DedupedMsgs returns how many byte-identical retransmits the untrusted
// classify stage dropped before they paid for an enclave crossing.
func (n *Node) DedupedMsgs() uint64 { return n.replica.DedupedMsgs() }

// DroppedGarbage returns how many malformed inbound messages the
// untrusted classify stage dropped before they paid for an enclave
// crossing.
func (n *Node) DroppedGarbage() uint64 { return n.replica.DroppedGarbage() }

// ResetEnclaveStats zeroes the per-compartment ecall statistics.
func (n *Node) ResetEnclaveStats() { n.replica.ResetEnclaveStats() }
