package splitbft

import (
	"errors"
	"fmt"
	"time"

	"github.com/splitbft/splitbft/internal/core"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/obs"
	"github.com/splitbft/splitbft/internal/store"
	"github.com/splitbft/splitbft/internal/transport"
)

// Node is one SplitBFT replica: three compartment enclaves (Preparation,
// Confirmation, Execution) plus the untrusted broker, bound to a
// transport. Build standalone TCP nodes with NewNode; in-process groups
// with NewCluster.
type Node struct {
	id      uint32
	opts    options
	reg     *crypto.Registry
	app     Application
	replica *core.Replica

	started bool
	stopped bool
	tcp     *transport.TCPNode
	conn    transport.Conn

	// observer is the node's observability spine (nil without
	// WithObservability); it survives restarts so measurement epochs span
	// a node's whole lifetime, while each rebuilt replica re-registers its
	// collectors against it. metrics is the opt-in HTTP introspection
	// endpoint (nil without WithMetricsAddr or while not started).
	observer *obs.Observer
	metrics  *obs.Server

	// clock and disk are the chaos fault-injection handles. Both live on
	// the Node, not the replica, so injected skew and disk faults survive
	// Restart (each rebuilt replica is handed the same objects) — a chaos
	// plan that skews a clock and later restarts the node keeps the skew,
	// matching a machine whose system clock is simply wrong.
	clock *core.SkewClock
	disk  *store.FaultInjector
}

// EnclaveStat is one compartment's ecall profile (the Figure 4
// instrumentation). Count is the number of trusted-boundary crossings;
// Msgs the messages they delivered — with WithEcallBatch one crossing may
// carry many messages, and Msgs/Count is the achieved amortization.
type EnclaveStat struct {
	Role  Role
	Count uint64
	Msgs  uint64
	Mean  time.Duration
	Total time.Duration
}

// MsgsPerEcall returns the achieved ecall batch amortization factor (1.0
// when batching is off, 0 before any traffic).
func (s EnclaveStat) MsgsPerEcall() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Msgs) / float64(s.Count)
}

// VerifyCacheStats reports how effective a node's signature-verification
// caches are: hits are signature checks whose Ed25519 cost was skipped
// because an identical (message, signature, signer) triple had already
// verified. With the pipeline off, hits come from retransmits and
// view-change replays; with WithVerifyWorkers on, they additionally count
// the serial handler pass consuming the parallel workers' warm pass, so a
// pipelined node reads ~50% even without any retransmission.
type VerifyCacheStats struct {
	Hits   uint64
	Misses uint64
}

// HitRate returns hits/(hits+misses), or 0 when nothing was looked up.
func (s VerifyCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewNode builds replica id of a deployment. The transport comes from
// WithTransportTCP (standalone processes; requires WithKeySeed so separate
// processes agree on enclave keys). For in-process groups use NewCluster,
// which wires nodes to a shared simulated network instead.
//
// The node is inert until Start.
func NewNode(id uint32, opts ...Option) (*Node, error) {
	o := buildOptions(opts)
	if o.simnet == nil && len(o.tcpAddrs) == 0 {
		return nil, errors.New("splitbft: NewNode requires WithTransportTCP (or construction through NewCluster)")
	}
	if len(o.tcpAddrs) > 0 && len(o.keySeed) == 0 {
		return nil, errors.New("splitbft: the TCP transport requires WithKeySeed — separate processes cannot otherwise agree on enclave keys")
	}
	if err := o.resolveGroup(); err != nil {
		return nil, err
	}
	if int(id) >= o.n {
		return nil, fmt.Errorf("splitbft: node id %d out of range [0, %d)", id, o.n)
	}
	if o.persistDir != "" && len(o.keySeed) == 0 {
		return nil, errors.New("splitbft: WithPersistence requires WithKeySeed — sealed state must be recoverable under re-derived enclave keys")
	}
	reg := o.registry
	if reg == nil {
		reg = crypto.NewRegistry()
	}
	if len(o.keySeed) > 0 {
		// Pre-register every replica's derived enclave keys. Beyond the
		// multi-process case this matters for recovery: a node restarted
		// before its peers (e.g. a whole cluster rebooting over existing
		// data directories) must be able to verify peer signatures while
		// replaying its WAL.
		if err := core.RegisterDeterministicKeys(reg, o.keySeed, o.n); err != nil {
			return nil, err
		}
	}
	n := &Node{id: id, opts: o, reg: reg, clock: new(core.SkewClock), disk: new(store.FaultInjector)}
	if o.obsOn {
		n.observer = obs.NewObserver(o.traceSample)
	}
	if err := n.buildReplica(); err != nil {
		return nil, err
	}
	return n, nil
}

// buildReplica constructs the node's core replica (a fresh application
// instance plus three enclaves); with persistence enabled, construction
// runs recovery before returning.
func (n *Node) buildReplica() error {
	o := &n.opts
	authMode, err := o.agreementAuthMode()
	if err != nil {
		return err
	}
	consensus, err := o.consensusModeVal()
	if err != nil {
		return err
	}
	application := o.application()
	// A rebuilt replica registers fresh stat collectors; drop the dead
	// replica's first so the registry never reads freed state (no-op on a
	// nil observer or first build).
	n.observer.Registry().DropCollectors()
	replica, err := core.NewReplica(core.Config{
		N: o.n, F: o.f, ID: n.id,
		Registry:           n.reg,
		MACSecret:          o.secret(),
		KeySeed:            o.keySeed,
		App:                application,
		Confidential:       o.confidential,
		AgreementAuth:      authMode,
		ConsensusMode:      consensus,
		Cost:               o.costModel(),
		SingleThread:       o.singleThread,
		EcallBatch:         o.ecallBatch,
		VerifyWorkers:      o.verifyWorkers,
		DataDir:            o.nodeDataDir(n.id),
		CheckpointInterval: o.checkpointInterval,
		BatchSize:          o.batchSize,
		BatchTimeout:       o.batchTimeout,
		RequestTimeout:     o.requestTimeout,
		ReadLeases:         o.readLeases,
		LeaseTTL:           o.leaseTTL,
		Obs:                n.observer,
		Clock:              n.clock,
		DiskFaults:         n.disk,
	})
	if err != nil {
		return err
	}
	n.app = application
	n.replica = replica
	return nil
}

// Start attaches the node to its transport and begins processing. It is
// idempotent while running. After Stop or Crash the broker threads are
// gone for good — use Restart, which rebuilds the replica (recovering
// from the durability store when WithPersistence is set) before starting
// again.
func (n *Node) Start() error {
	if n.stopped {
		return errors.New("splitbft: node cannot Start after Stop or Crash — use Restart")
	}
	if n.started {
		return nil
	}
	if n.opts.simnet != nil {
		conn, err := n.opts.simnet.Join(transport.ReplicaEndpoint(n.id), n.replica.Handler())
		if err != nil {
			return err
		}
		n.conn = conn
	} else {
		addrs := make(map[uint32]string, n.opts.n)
		for i, a := range n.opts.tcpAddrs {
			addrs[uint32(i)] = a
		}
		listen := n.opts.listenAddr
		if listen == "" {
			listen = addrs[n.id]
		}
		tcp, err := transport.ListenTCP(transport.ReplicaEndpoint(n.id), listen, addrs, n.replica.Handler())
		if err != nil {
			return fmt.Errorf("splitbft: node %d listen on %q: %w (use WithListenAddr when the advertised address is not locally bindable)", n.id, listen, err)
		}
		n.tcp = tcp
		n.conn = tcp
	}
	n.replica.Start(n.conn)
	n.started = true
	if err := n.startMetrics(); err != nil {
		n.Stop()
		return fmt.Errorf("splitbft: node %d metrics endpoint on %q: %w", n.id, n.opts.metricsAddr, err)
	}
	return nil
}

// Stop terminates the node's broker threads, flushes and closes its
// durability stores, and detaches its transport. A stopped node cannot
// Start again, but with WithPersistence it can Restart: recovery rebuilds
// the replica from the sealed stores.
func (n *Node) Stop() {
	n.stopMetrics()
	// A never-started replica still owns resources (durability stores,
	// their committer goroutines), so release runs regardless of started;
	// stopping an idle broker is a no-op.
	if !n.stopped {
		n.replica.Stop()
	}
	if n.started {
		_ = n.conn.Close()
		n.started = false
	}
	n.stopped = true
}

// Crash kills the node abruptly — the SIGKILL-equivalent fault-injection
// handle behind the recovery scenarios. Unlike Stop, nothing is flushed:
// the durability stores drop their un-fsynced group-commit tail, exactly
// the window a real kill would lose. Use Restart to bring the node back.
func (n *Node) Crash() {
	n.stopMetrics()
	if !n.stopped {
		n.replica.Crash()
	}
	if n.started {
		_ = n.conn.Close()
		n.started = false
	}
	n.stopped = true
}

// Restart brings a stopped or crashed node back: it rebuilds the replica —
// with WithPersistence, recovering compartment state from the newest
// sealed snapshot plus a WAL replay — and reattaches the transport. The
// remaining gap (whatever committed while the node was down, plus any
// un-fsynced tail a crash lost) is closed through the ordinary
// checkpoint/state-transfer path once peers' traffic flows again. Without
// persistence the node comes back empty and state-transfers everything,
// like a brand-new replica.
func (n *Node) Restart() error {
	// Always release the previous replica first — even one that never
	// started holds the durability stores open, and two live stores must
	// never own one WAL directory.
	n.Stop()
	if err := n.buildReplica(); err != nil {
		return fmt.Errorf("splitbft: restart node %d: %w", n.id, err)
	}
	n.stopped = false
	n.tcp = nil
	return n.Start()
}

// RecoveryStats reports what the node reconstructed from its durability
// stores when its replica was last built (all zeros without
// WithPersistence, or before any restart wrote state).
type RecoveryStats struct {
	// Snapshots is how many compartments restored a sealed snapshot (0–3).
	Snapshots int
	// WALRecords is the number of write-ahead-log records replayed.
	WALRecords uint64
	// Replay is the time spent replaying them through the enclaves.
	Replay time.Duration
	// Total is the end-to-end recovery time (open, unseal, import,
	// replay).
	Total time.Duration
}

// ReplayOpsPerSec returns the WAL replay throughput (0 before any replay).
func (s RecoveryStats) ReplayOpsPerSec() float64 {
	if s.Replay <= 0 || s.WALRecords == 0 {
		return 0
	}
	return float64(s.WALRecords) / s.Replay.Seconds()
}

// RecoveryStats returns the node's last recovery profile.
func (n *Node) RecoveryStats() RecoveryStats {
	s := n.replica.Recovery()
	return RecoveryStats{
		Snapshots:  s.Snapshots,
		WALRecords: s.WALRecords,
		Replay:     s.Replay,
		Total:      s.Total,
	}
}

// ID returns the node's replica ID.
func (n *Node) ID() uint32 { return n.id }

// Addr returns the TCP listen address ("" for in-process nodes), useful
// when listening on an ephemeral port.
func (n *Node) Addr() string {
	if n.tcp == nil {
		return ""
	}
	return n.tcp.Addr()
}

// App returns this node's application instance, for state inspection in
// tests and examples (e.g. asserting replica digests agree).
func (n *Node) App() Application { return n.app }

// CrashEnclave kills one compartment enclave — the fault-injection handle
// behind the paper's Figure 1 scenario: SplitBFT stays safe with one
// faulty enclave of each type on different replicas, more faults than
// classical BFT's f whole replicas.
func (n *Node) CrashEnclave(role Role) { n.replica.CrashEnclave(role) }

// ExecutedOps returns the number of client operations this node replied
// to.
func (n *Node) ExecutedOps() uint64 { return n.replica.ExecutedOps() }

// Batches returns the number of batches submitted for ordering.
func (n *Node) Batches() uint64 { return n.replica.Batches() }

// Suspects returns how many times the failure detector fired.
func (n *Node) Suspects() uint64 { return n.replica.Suspects() }

// PersistedBlocks returns the number of sealed blocks written through the
// persistence ocall (zero for non-persisting applications).
func (n *Node) PersistedBlocks() int { return n.replica.PersistedBlocks() }

// EnclaveStats returns the per-compartment ecall profile in pipeline order
// (Preparation, Confirmation, Execution).
func (n *Node) EnclaveStats() []EnclaveStat {
	snap := n.replica.EnclaveStats()
	out := make([]EnclaveStat, 0, 3)
	for _, role := range CompartmentRoles() {
		s := snap[role]
		out = append(out, EnclaveStat{Role: role, Count: s.Count, Msgs: s.Msgs, Mean: s.Mean, Total: s.Total})
	}
	return out
}

// VerifyCacheStats returns the node's summed signature-verification cache
// counters across its three compartments.
func (n *Node) VerifyCacheStats() VerifyCacheStats {
	s := n.replica.VerifyCacheStats()
	return VerifyCacheStats{Hits: s.Hits, Misses: s.Misses}
}

// CryptoStats reports the node's agreement-crypto workload, summed over
// its three compartments: how many Ed25519 verifications actually ran
// (cache hits excluded), the wall time they consumed, and how many
// agreement-MAC (HMAC) verifications ran. The sig/MAC split is what the
// `splitbft-bench -exp auth` ablation reports: with WithAgreementAuth
// ("mac") the Ed25519 verify load of the normal case collapses to the
// view-change path. The counter pair instruments the trusted consensus
// mode (`-exp consensus`): attestations the node's counter enclave
// created, and attestation checks that stood in for Prepare quorums.
//
// The snapshot is assembled from atomic counters (and the counter
// enclave's internal lock), so Node.CryptoStats is safe to call from
// concurrent readers while traffic flows; each field is individually
// consistent, the set is not an atomic cut.
type CryptoStats struct {
	SigVerifies     uint64
	SigTime         time.Duration
	MACVerifies     uint64
	CounterCreates  uint64
	CounterVerifies uint64
	// LeaseGrants counts read leases this node's counter enclave issued
	// (non-zero only on a primary with WithReadLeases); LeaseVerifies
	// counts lease attestations its Execution compartment checked.
	LeaseGrants   uint64
	LeaseVerifies uint64
}

// SigCPUFraction returns Ed25519-verify CPU-seconds per wall-clock
// second over the interval (0 when elapsed is unknown or nothing ran).
// SigTime sums over the three compartments, which verify concurrently,
// so on multi-core hosts the value can exceed 1.0 — it is a CPU-load
// figure, not a share of the window; only on a single core do the two
// coincide.
func (s CryptoStats) SigCPUFraction(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(s.SigTime) / float64(elapsed)
}

// CryptoStats returns the node's crypto-op counters (reset together with
// the enclave statistics).
func (n *Node) CryptoStats() CryptoStats {
	s := n.replica.VerifierStats()
	return CryptoStats{
		SigVerifies:     s.SigVerifies,
		SigTime:         s.SigTime,
		MACVerifies:     s.MACVerifies,
		CounterCreates:  n.replica.CounterCreates(),
		CounterVerifies: s.CounterVerifies,
		LeaseGrants:     n.replica.LeaseGrants(),
		LeaseVerifies:   s.LeaseVerifies,
	}
}

// LocalReads returns how many read operations this node's Execution
// compartment served on the lease-anchored fast path — locally, with no
// agreement round (always zero without WithReadLeases).
func (n *Node) LocalReads() uint64 { return n.replica.LocalReads() }

// DedupedMsgs returns how many byte-identical retransmits the untrusted
// classify stage dropped before they paid for an enclave crossing.
func (n *Node) DedupedMsgs() uint64 { return n.replica.DedupedMsgs() }

// DroppedGarbage returns how many malformed inbound messages the
// untrusted classify stage dropped before they paid for an enclave
// crossing.
func (n *Node) DroppedGarbage() uint64 { return n.replica.DroppedGarbage() }

// ResetEnclaveStats zeroes every measurement surface of the node.
//
// Deprecated: it is now an alias for ResetStats. It historically reset
// only the enclave-adjacent counters, which left the broker's counters on
// the old epoch; callers mixing both surfaces over one window measured
// across inconsistent epochs.
func (n *Node) ResetEnclaveStats() { n.ResetStats() }
