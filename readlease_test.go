package splitbft_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/splitbft/splitbft"
)

// sumLocalReads totals the fast-path reads served across a cluster.
func sumLocalReads(cluster *splitbft.Cluster) uint64 {
	var total uint64
	for _, n := range cluster.Nodes() {
		total += n.LocalReads()
	}
	return total
}

// TestReadLeaseFastPath is the end-to-end acceptance path for the local
// read fast path: with WithReadLeases, GETs are served by lease-holding
// replicas without an agreement round, results stay correct, and the lease
// counters surface through the stats API.
func TestReadLeaseFastPath(t *testing.T) {
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithReadLeases(true),
		splitbft.WithBatchSize(1),
		splitbft.WithNetworkSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cl, err := cluster.NewClient(200)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Put("balance", []byte("42")); err != nil {
		t.Fatalf("PUT: %v", err)
	}
	// The write replies carry the applied sequence, and the put's batch
	// piggybacked lease grants to every replica, so subsequent reads can
	// go local. Spread enough reads that the round-robin hits everyone.
	const reads = 24
	for i := 0; i < reads; i++ {
		res, err := cl.Get("balance")
		if err != nil {
			t.Fatalf("GET %d: %v", i, err)
		}
		if string(res) != "42" {
			t.Fatalf("GET %d = %q, want 42", i, res)
		}
	}
	if got := sumLocalReads(cluster); got == 0 {
		t.Fatal("no reads were served on the local fast path")
	}
	if got := cluster.Node(0).CryptoStats().LeaseGrants; got == 0 {
		t.Fatal("primary's counter enclave granted no leases")
	}
	var verifies uint64
	for _, n := range cluster.Nodes() {
		verifies += n.CryptoStats().LeaseVerifies
	}
	if verifies == 0 {
		t.Fatal("no lease attestations were verified")
	}
}

// TestReadLeaseReadYourWrites interleaves writes and session-consistency
// reads in a confidential deployment: every read must observe the
// client's own latest write, no matter which replica serves it — the
// MinSeq watermark at work, end to end through the sealed payload path.
func TestReadLeaseReadYourWrites(t *testing.T) {
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithReadLeases(true),
		splitbft.WithReadConsistency("session"),
		splitbft.WithConfidential(),
		splitbft.WithBatchSize(1),
		splitbft.WithNetworkSeed(9),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cl, err := cluster.NewClient(201)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Attest(); err != nil {
		t.Fatalf("attestation: %v", err)
	}

	for i := 0; i < 8; i++ {
		want := fmt.Sprintf("v%d", i)
		if _, err := cl.Put("session-key", []byte(want)); err != nil {
			t.Fatalf("PUT %d: %v", i, err)
		}
		got, err := cl.Get("session-key")
		if err != nil {
			t.Fatalf("GET %d: %v", i, err)
		}
		if string(got) != want {
			t.Fatalf("read-your-writes violated: GET after PUT %q returned %q", want, got)
		}
	}
}

// TestReadLeaseLedgerParity runs the same workload on two clusters — read
// leases on and off — and requires identical application state on every
// replica: the read fast path must never perturb the write ledger.
func TestReadLeaseLedgerParity(t *testing.T) {
	run := func(leases bool) [32]byte {
		cluster, err := splitbft.NewCluster(4,
			splitbft.WithReadLeases(leases),
			splitbft.WithBatchSize(1),
			splitbft.WithNetworkSeed(13),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer cluster.Close()
		cl, err := cluster.NewClient(202)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		for i := 0; i < 6; i++ {
			if _, err := cl.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatalf("PUT %d: %v", i, err)
			}
			if _, err := cl.Get(fmt.Sprintf("k%d", i)); err != nil {
				t.Fatalf("GET %d: %v", i, err)
			}
		}
		if _, err := cl.Delete("k0"); err != nil {
			t.Fatalf("DELETE: %v", err)
		}
		waitForAgreement(t, cluster, []int{0, 1, 2, 3})
		return cluster.Node(0).App().Digest()
	}
	withLeases := run(true)
	withoutLeases := run(false)
	if withLeases != withoutLeases {
		t.Fatal("ledger diverged between lease-enabled and lease-disabled runs")
	}
}

// TestReadLeaseExpiryFallback kills every replica's lease source — the
// primary's Preparation enclave — and verifies reads still answer
// correctly through the agreement fallback once leases expire. Slow
// because it must outwait a real lease TTL and a view change.
func TestReadLeaseExpiryFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("outwaits a lease TTL and a view change")
	}
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithReadLeases(true),
		splitbft.WithLeaseTTL(400*time.Millisecond),
		splitbft.WithRequestTimeout(200*time.Millisecond),
		splitbft.WithBatchSize(1),
		splitbft.WithNetworkSeed(17),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cl, err := cluster.NewClient(203)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Put("durable", []byte("yes")); err != nil {
		t.Fatalf("PUT: %v", err)
	}
	// Depose the primary: its Preparation enclave dies, leases stop
	// renewing, and a view change elects replica 1. Reads must keep
	// answering "yes" throughout — first on residual leases, then via
	// fallback, then on the new primary's leases.
	cluster.Node(0).CrashEnclave(splitbft.RolePreparation)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		res, err := cl.Get("durable")
		if err == nil && string(res) != "yes" {
			t.Fatalf("stale or wrong read during failover: %q", res)
		}
		if time.Now().After(deadline.Add(-8 * time.Second)) {
			break // a couple of seconds of hammering is plenty
		}
		time.Sleep(50 * time.Millisecond)
	}
	res, err := cl.Get("durable")
	if err != nil {
		t.Fatalf("read unavailable after failover: %v", err)
	}
	if string(res) != "yes" {
		t.Fatalf("read after failover = %q, want yes", res)
	}
}
