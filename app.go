package splitbft

import (
	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/tee"
)

// Application is the deterministic state machine replicated by the
// protocol. It executes inside the Execution enclave: its state never
// leaves the trusted boundary unencrypted.
type Application = app.Application

// Persister is implemented by applications (like the Blockchain) that
// durably persist state; the Execution compartment seals their writes and
// routes them through an ocall to untrusted storage.
type Persister = app.Persister

// PersistFunc writes one sealed state blob to untrusted storage.
type PersistFunc = app.PersistFunc

// KVStore is the key-value store application from the paper's evaluation.
type KVStore = app.KVS

// Blockchain is the distributed-ledger application from the paper's second
// use case (§6): ordered operations accumulate into hash-linked blocks,
// sealed inside the Execution enclave before persistence.
type Blockchain = app.Blockchain

// BlockHeader summarizes one committed block for chain verification.
type BlockHeader = app.BlockHeader

// DefaultBlockSize is the paper's blockchain block size (five operations).
const DefaultBlockSize = app.DefaultBlockSize

// NewKVStore creates an empty key-value store application.
func NewKVStore() *KVStore { return app.NewKVS() }

// NewBlockchain creates a ledger application producing blocks of blockSize
// transactions (blockSize <= 0 means DefaultBlockSize). persist may be nil:
// replicas built by this package wire sealed persistence automatically.
func NewBlockchain(blockSize int, persist PersistFunc) *Blockchain {
	return app.NewBlockchain(blockSize, persist)
}

// VerifyChain checks the hash linkage of a blockchain header sequence and
// reports the first broken link, or nil for a valid chain.
func VerifyChain(headers []BlockHeader) error { return app.VerifyChain(headers) }

// EncodePut encodes a key-value store PUT operation for Client.Invoke.
func EncodePut(key string, value []byte) []byte { return app.EncodePut(key, value) }

// EncodeGet encodes a key-value store GET operation.
func EncodeGet(key string) []byte { return app.EncodeGet(key) }

// EncodeDelete encodes a key-value store DELETE operation.
func EncodeDelete(key string) []byte { return app.EncodeDelete(key) }

// Digest is a SHA-256 state digest, as returned by Application.Digest.
type Digest = crypto.Digest

// Role identifies a protocol participant class; the three compartment
// roles name the enclaves of one replica for fault injection and
// statistics.
type Role = crypto.Role

// The three compartment roles of a SplitBFT replica.
const (
	RolePreparation  = crypto.RolePreparation
	RoleConfirmation = crypto.RoleConfirmation
	RoleExecution    = crypto.RoleExecution
)

// CompartmentRoles returns the three compartment roles in pipeline order
// (Preparation, Confirmation, Execution).
func CompartmentRoles() []Role {
	return []Role{RolePreparation, RoleConfirmation, RoleExecution}
}

// CostModel prices the simulated SGX substrate: enclave transition and
// memory-copy costs charged per ecall/ocall.
type CostModel = tee.CostModel

// DefaultCostModel returns the hardware cost model measured in the paper
// (enclave transitions cost ~8640 cycles).
func DefaultCostModel() CostModel { return tee.DefaultCostModel() }

// SimulationCostModel returns the SGX simulation-mode model: no transition
// cost, matching the paper's "Simulation" series.
func SimulationCostModel() CostModel { return tee.SimulationCostModel() }

// ZeroCostModel disables all cost charging.
func ZeroCostModel() CostModel { return tee.ZeroCostModel() }
