package splitbft_test

import (
	"net/http"
	"testing"
	"time"

	"github.com/splitbft/splitbft"
	"github.com/splitbft/splitbft/experiments/chaos"
)

// TestChaosPlans runs every named fault plan end to end with read leases
// on and persistence enabled — the configuration with the most moving
// parts — and requires every safety invariant to hold. kitchen-sink is the
// combined schedule: partition + crash-restart + disk-stall + clock skew +
// enclave crash in one run.
func TestChaosPlans(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos plans take seconds each")
	}
	for _, plan := range chaos.PlanNames() {
		plan := plan
		t.Run(plan, func(t *testing.T) {
			rep, err := chaos.Run(chaos.Config{
				Seed:       2026,
				Plan:       plan,
				Duration:   3 * time.Second,
				ReadLeases: true,
				DataDir:    t.TempDir(),
			})
			if err != nil {
				t.Fatalf("Run(%s): %v", plan, err)
			}
			if rep.Failed() {
				t.Fatalf("plan %s violated invariants:\n%s", plan, rep.Dump())
			}
			if rep.Writes == 0 {
				t.Fatalf("plan %s: workload made no progress", plan)
			}
		})
	}
}

// TestChaosTrustedMode runs the combined schedule under the 2f+1
// trusted-counter consensus mode with MAC agreement.
func TestChaosTrustedMode(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos plans take seconds each")
	}
	rep, err := chaos.Run(chaos.Config{
		Seed:       2026,
		Plan:       "kitchen-sink",
		Duration:   3 * time.Second,
		Consensus:  "trusted",
		Auth:       "mac",
		ReadLeases: true,
		DataDir:    t.TempDir(),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Failed() {
		t.Fatalf("trusted-mode kitchen-sink violated invariants:\n%s", rep.Dump())
	}
}

// TestRetransmitBackoffBounded pins the client's retransmit backoff: under
// a total partition the resend interval doubles (with jitter) up to 8× the
// base, so a 5-second outage provokes a handful of resends, not the
// ~50 a fixed 100ms period would send.
func TestRetransmitBackoffBounded(t *testing.T) {
	cluster, err := splitbft.NewCluster(4, splitbft.WithNetworkSeed(71))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cl, err := cluster.NewClient(100,
		splitbft.WithRetransmitInterval(100*time.Millisecond),
		splitbft.WithInvokeTimeout(5*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put("k", []byte("warm")); err != nil {
		t.Fatalf("warm-up PUT: %v", err)
	}
	base := cl.Resends()

	cluster.Partition(0, 1, 2, 3) // client can reach nothing
	if _, err := cl.Put("k", []byte("lost")); err == nil {
		t.Fatal("PUT succeeded with every replica unreachable")
	}
	resends := cl.Resends() - base
	// Backoff schedule from 100ms: ~100+200+400+800+800… covers 5s in
	// ~8 resends; jitter (±25%) can stretch that to ~11. A fixed interval
	// would need ~50.
	if resends < 2 || resends > 16 {
		t.Fatalf("resends over a 5s partition = %d, want 2..16 (backoff not in effect?)", resends)
	}

	cluster.Heal()
	if _, err := cl.Put("k", []byte("back")); err != nil {
		t.Fatalf("PUT after heal: %v", err)
	}
}

// TestPartitionStrandsClient covers the client-inclusive partition: a
// client stranded with a minority replica cannot commit (it reaches fewer
// than 2f+1 replicas), a majority-side client keeps committing, and the
// stranded client recovers after Heal.
func TestPartitionStrandsClient(t *testing.T) {
	cluster, err := splitbft.NewCluster(4, splitbft.WithNetworkSeed(72))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	stranded, err := cluster.NewClient(7, splitbft.WithInvokeTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := cluster.NewClient(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stranded.Put("s", []byte("1")); err != nil {
		t.Fatalf("warm-up PUT: %v", err)
	}

	cluster.PartitionWithClients([]uint32{7}, 3)
	if _, err := stranded.Put("s", []byte("2")); err == nil {
		t.Fatal("stranded client committed with only a minority reachable")
	}
	if _, err := healthy.Put("h", []byte("1")); err != nil {
		t.Fatalf("majority-side client blocked by the partition: %v", err)
	}

	cluster.Heal()
	if _, err := stranded.Put("s", []byte("3")); err != nil {
		t.Fatalf("stranded client still failing after heal: %v", err)
	}
}

// TestPartitionFlipsHealthAndViewChange drives the liveness surfaces with
// a partition rather than a crash: the isolated view-0 primary is alive
// but unreachable, so a live peer's /healthz flips to 503, the remaining
// trio elects a new view (the view_changes counter advances), and healthz
// recovers after Heal.
func TestPartitionFlipsHealthAndViewChange(t *testing.T) {
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithObservability(),
		splitbft.WithMetricsAddr("127.0.0.1:0"),
		splitbft.WithBatchSize(1),
		splitbft.WithRequestTimeout(300*time.Millisecond),
		splitbft.WithNetworkSeed(73),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cl, err := cluster.NewClient(100, splitbft.WithInvokeTimeout(20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put("k", []byte("1")); err != nil {
		t.Fatalf("warm-up PUT: %v", err)
	}

	addr := cluster.Node(1).MetricsAddr()
	waitHealth := func(wantCode int) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		var code int
		var body string
		for time.Now().Before(deadline) {
			body, code = scrape(t, addr, "/healthz")
			if code == wantCode {
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
		t.Fatalf("healthz stuck at %d, want %d; last body:\n%s", code, wantCode, body)
	}

	waitHealth(http.StatusOK)
	cluster.Partition(0) // the view-0 primary: partitioned, not crashed
	waitHealth(http.StatusServiceUnavailable)

	// A write across the partition forces the trio through a view change.
	if _, err := cl.Put("k", []byte("2")); err != nil {
		t.Fatalf("PUT across view change: %v", err)
	}
	if v, ok := metricValue(t, cluster.Node(1), "splitbft_view_changes_total"); !ok || v < 1 {
		t.Fatalf("view_changes_total = %v (present=%v), want >= 1", v, ok)
	}

	cluster.Heal()
	waitHealth(http.StatusOK)
}
