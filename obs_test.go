package splitbft_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/splitbft/splitbft"
)

// metricValue scans the node's gathered samples for an exact series name
// (including any rendered labels) and returns its value.
func metricValue(t *testing.T, n *splitbft.Node, name string) (float64, bool) {
	t.Helper()
	for _, m := range n.Metrics() {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// scrape fetches one introspection endpoint and returns body and status.
func scrape(t *testing.T, addr, path string) (string, int) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return "", 0
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s%s read: %v", addr, path, err)
	}
	return string(b), resp.StatusCode
}

// tracedSpan mirrors the /debug/trace JSON span shape.
type tracedSpan struct {
	Client uint32           `json:"client"`
	TS     uint64           `json:"ts"`
	Seq    uint64           `json:"seq"`
	Read   bool             `json:"read"`
	Stages map[string]int64 `json:"stages"`
}

// writeChain is every stage a committed write must traverse on the replica
// that proposed it (the primary): classify on arrival, enqueue into the
// Preparation ecall, the agreement stamps, execution, and the reply send.
var writeChain = []string{"classify", "enqueue", "preprepare", "prepare-cert", "commit", "execute", "reply"}

func completeWriteSpans(t *testing.T, addr string) []tracedSpan {
	t.Helper()
	body, code := scrape(t, addr, "/debug/trace?limit=1024")
	if code != http.StatusOK {
		return nil
	}
	var out struct {
		Spans []tracedSpan `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("trace body not JSON: %v\n%s", err, body)
	}
	var complete []tracedSpan
	for _, sp := range out.Spans {
		if sp.Read {
			continue
		}
		ok := true
		for _, st := range writeChain {
			if _, stamped := sp.Stages[st]; !stamped {
				ok = false
				break
			}
		}
		if ok {
			complete = append(complete, sp)
		}
	}
	return complete
}

// TestTraceSpanChainCompleteness drives committed writes through an
// observability-enabled cluster and requires every one of them to surface
// on the primary as a finished span stamped at all seven write stages.
func TestTraceSpanChainCompleteness(t *testing.T) {
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithObservability(),
		splitbft.WithMetricsAddr("127.0.0.1:0"),
		splitbft.WithBatchSize(1),
		splitbft.WithNetworkSeed(41),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	cl, err := cluster.NewClient(100)
	if err != nil {
		t.Fatal(err)
	}
	const ops = 15
	for i := 0; i < ops; i++ {
		if _, err := cl.Put("trace-key", []byte{byte(i)}); err != nil {
			t.Fatalf("PUT %d: %v", i, err)
		}
	}

	addr := cluster.Node(0).MetricsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr empty with WithMetricsAddr set")
	}
	// The reply is sent before the span's Finish is necessarily visible to
	// a concurrent scrape, so poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	var complete []tracedSpan
	for time.Now().Before(deadline) {
		if complete = completeWriteSpans(t, addr); len(complete) >= ops {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(complete) < ops {
		body, _ := scrape(t, addr, "/debug/trace?limit=1024")
		t.Fatalf("only %d/%d committed writes produced complete span chains; ring:\n%s",
			len(complete), ops, body)
	}

	// The per-stage summary the bench tables print must cover the chain too.
	stages := cluster.Node(0).StageLatencies()
	names := make(map[string]bool, len(stages))
	for _, s := range stages {
		names[s.Stage] = true
		if s.Count == 0 || s.Max <= 0 {
			t.Fatalf("stage %q has empty summary: %+v", s.Stage, s)
		}
	}
	for _, want := range append(append([]string{}, writeChain[1:]...), "end-to-end") {
		if !names[want] {
			t.Fatalf("stage summary missing %q: %v", want, stages)
		}
	}
}

// TestMetricsEndpointScrapeCluster checks the Prometheus rendering of a
// live cluster: protocol counters present, per-compartment labels on the
// enclave series, and the Go facade agreeing with the scrape.
func TestMetricsEndpointScrapeCluster(t *testing.T) {
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithObservability(),
		splitbft.WithMetricsAddr("127.0.0.1:0"),
		splitbft.WithBatchSize(1),
		splitbft.WithNetworkSeed(42),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	cl, err := cluster.NewClient(100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := cl.Put("scrape-key", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	body, code := scrape(t, cluster.Node(0).MetricsAddr(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, series := range []string{
		"splitbft_executed_ops_total",
		"splitbft_batches_total",
		`splitbft_ecalls_total{compartment="preparation"}`,
		`splitbft_ecalls_total{compartment="confirmation"}`,
		`splitbft_ecalls_total{compartment="execution"}`,
		`splitbft_sig_verifies_total{compartment="preparation"}`,
		"splitbft_view_changes_total",
		"splitbft_dedup_drops_total",
		`splitbft_stage_spans_total{stage="end-to-end"}`,
	} {
		if !strings.Contains(body, series) {
			t.Fatalf("/metrics missing %s:\n%s", series, body)
		}
	}

	if v, ok := metricValue(t, cluster.Node(0), "splitbft_executed_ops_total"); !ok || v < 5 {
		t.Fatalf("executed_ops sample = %v (present=%v), want >= 5", v, ok)
	}
	if got := float64(cluster.Node(0).ExecutedOps()); got < 5 {
		t.Fatalf("ExecutedOps = %v, want >= 5", got)
	}
}

// TestTraceSpanChainAcrossViewChange forces a view change by partitioning
// the view-0 primary and requires the write that crossed the view change
// to surface as a complete span chain on the NEW primary — the span began
// there as a backup and must survive re-proposal under a new sequence.
func TestTraceSpanChainAcrossViewChange(t *testing.T) {
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithObservability(),
		splitbft.WithMetricsAddr("127.0.0.1:0"),
		splitbft.WithBatchSize(1),
		splitbft.WithRequestTimeout(300*time.Millisecond),
		splitbft.WithNetworkSeed(43),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	cl, err := cluster.NewClient(100, splitbft.WithInvokeTimeout(20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put("account", []byte("100")); err != nil {
		t.Fatalf("PUT: %v", err)
	}

	cluster.Partition(0) // cut the view-0 primary off
	if _, err := cl.Put("account", []byte("200")); err != nil {
		t.Fatalf("PUT across view change: %v", err)
	}
	waitForAgreement(t, cluster, []int{1, 2, 3})

	// Replica 1 is the view-1 primary: it proposed the re-transmitted
	// request, so its tracer must hold the complete chain.
	addr := cluster.Node(1).MetricsAddr()
	deadline := time.Now().Add(15 * time.Second)
	found := false
	for time.Now().Before(deadline) && !found {
		if len(completeWriteSpans(t, addr)) >= 1 {
			found = true
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !found {
		t.Fatal("no complete span chain on the new primary after the view change")
	}
	if v, ok := metricValue(t, cluster.Node(1), "splitbft_view_changes_total"); !ok || v < 1 {
		t.Fatalf("view_changes_total = %v (present=%v), want >= 1", v, ok)
	}

	cluster.Heal()
	if _, err := cl.Put("account", []byte("300")); err != nil {
		t.Fatalf("PUT after heal: %v", err)
	}
}

// TestHealthzFlipsOnCrashAndRestart exercises the liveness probe: healthy
// while the full cluster answers pings, 503 naming the crashed peer while
// one replica is down, healthy again after it restarts.
func TestHealthzFlipsOnCrashAndRestart(t *testing.T) {
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithObservability(),
		splitbft.WithMetricsAddr("127.0.0.1:0"),
		splitbft.WithBatchSize(1),
		splitbft.WithNetworkSeed(44),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	addr := cluster.Node(0).MetricsAddr()

	waitHealth := func(wantCode int, check func(body string) bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		var body string
		var code int
		for time.Now().Before(deadline) {
			body, code = scrape(t, addr, "/healthz")
			if code == wantCode && (check == nil || check(body)) {
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
		t.Fatalf("healthz stuck at %d, want %d; last body:\n%s", code, wantCode, body)
	}

	waitHealth(http.StatusOK, nil)

	cluster.CrashNode(3)
	waitHealth(http.StatusServiceUnavailable, func(body string) bool {
		var h struct {
			Healthy bool `json:"healthy"`
			Peers   []struct {
				ID        uint32 `json:"id"`
				Reachable bool   `json:"reachable"`
			} `json:"peers"`
		}
		if err := json.Unmarshal([]byte(body), &h); err != nil || h.Healthy {
			return false
		}
		for _, p := range h.Peers {
			if p.ID == 3 {
				return !p.Reachable
			}
		}
		return false
	})

	if err := cluster.RestartNode(3); err != nil {
		t.Fatalf("restart: %v", err)
	}
	waitHealth(http.StatusOK, nil)
}

// TestMetricResetStatsSingleEpoch pins the satellite fix: one ResetStats
// call zeroes every surface — enclave counters, protocol counters, and the
// tracer — so a measurement window can never mix epochs.
func TestMetricResetStatsSingleEpoch(t *testing.T) {
	cluster, err := splitbft.NewCluster(4,
		splitbft.WithObservability(),
		splitbft.WithBatchSize(1),
		splitbft.WithNetworkSeed(45),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	cl, err := cluster.NewClient(100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := cl.Put("epoch-key", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	n := cluster.Node(0)
	if n.ExecutedOps() == 0 {
		t.Fatal("no ops recorded before reset")
	}
	if len(n.StageLatencies()) == 0 {
		t.Fatal("no traced stages before reset")
	}

	n.ResetStats()

	if got := n.ExecutedOps(); got != 0 {
		t.Fatalf("ExecutedOps after reset = %d, want 0", got)
	}
	if v, ok := metricValue(t, n, "splitbft_executed_ops_total"); !ok || v != 0 {
		t.Fatalf("executed_ops sample after reset = %v (present=%v), want 0", v, ok)
	}
	if st := n.StageLatencies(); len(st) != 0 {
		t.Fatalf("stage latencies survived reset: %+v", st)
	}
	if es := n.EnclaveStats(); es[0].Count != 0 || es[1].Count != 0 || es[2].Count != 0 {
		t.Fatalf("enclave ecall counts survived reset: %+v", es)
	}

	// Without observability the same call must still reset the replica
	// surfaces, and the metrics facade reports nothing rather than lying.
	plain, err := splitbft.NewCluster(4, splitbft.WithBatchSize(1), splitbft.WithNetworkSeed(46))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	pcl, err := plain.NewClient(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pcl.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	pn := plain.Node(0)
	if pn.Metrics() != nil {
		t.Fatal("Metrics() non-nil without observability")
	}
	if pn.MetricsAddr() != "" {
		t.Fatal("MetricsAddr() non-empty without observability")
	}
	pn.ResetStats()
	if got := pn.ExecutedOps(); got != 0 {
		t.Fatalf("plain ResetStats left ExecutedOps = %d", got)
	}
}
