package splitbft

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/defaults"
	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/tee"
	"github.com/splitbft/splitbft/internal/transport"
)

// Defaults applied when the corresponding option is not given. They are
// shared with the internal replica and client packages, so the public
// surface and the protocol engine cannot drift apart.
const (
	// DefaultBatchSize is the batched-mode batch size (paper §6).
	DefaultBatchSize = defaults.BatchSize
	// DefaultBatchTimeout bounds how long a primary waits to fill a batch.
	DefaultBatchTimeout = defaults.BatchTimeout
	// DefaultRequestTimeout is the replica failure-detector timeout.
	DefaultRequestTimeout = defaults.RequestTimeout
	// DefaultRetransmitInterval is the client resend period, aligned with
	// DefaultRequestTimeout so one resend reaches the backups per
	// failure-detector period.
	DefaultRetransmitInterval = defaults.RetransmitInterval
	// DefaultInvokeTimeout bounds one client invocation end-to-end.
	DefaultInvokeTimeout = defaults.InvokeTimeout
	// DefaultCheckpointInterval is the distance between checkpoints.
	DefaultCheckpointInterval = defaults.CheckpointInterval
)

// Option configures a Node, Client or Cluster. Options that don't apply to
// the entity being built are ignored, so one option list can parameterize a
// whole deployment (NewCluster forwards its options to every Node and to
// clients created through Cluster.NewClient).
type Option func(*options)

// options is the resolved configuration shared by the three constructors.
type options struct {
	n, f int
	fSet bool

	newApp       func() Application
	confidential bool
	cost         CostModel
	costSet      bool
	singleThread bool

	ecallBatch    int
	verifyWorkers int
	agreementAuth string
	consensusMode string
	commitRule    string

	readLeases      bool
	readConsistency string
	leaseTTL        time.Duration

	batchSize          int
	batchTimeout       time.Duration
	requestTimeout     time.Duration
	checkpointInterval uint64

	keySeed []byte

	persistDir string

	obsOn       bool
	metricsAddr string
	traceSample int

	tcpAddrs   []string
	listenAddr string

	invokeTimeout time.Duration
	retransmit    time.Duration

	netSeed int64

	// Wiring installed by NewCluster: in-process deployments share one
	// simulated network, key registry and MAC secret.
	simnet    *transport.SimNet
	registry  *crypto.Registry
	macSecret []byte
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// resolveGroup derives and validates the replica-group shape (n, f). When n
// was not fixed by a cluster it comes from the TCP address list; f defaults
// to the largest tolerable threshold — (n-1)/3 in classic consensus,
// (n-1)/2 in trusted consensus, whose groups are 2f+1.
func (o *options) resolveGroup() error {
	if o.n == 0 {
		o.n = len(o.tcpAddrs)
	}
	if o.n == 0 {
		return errors.New("splitbft: group size unknown — use WithTransportTCP or build through NewCluster")
	}
	mode, err := o.consensusModeVal()
	if err != nil {
		return err
	}
	if !o.fSet {
		if mode == messages.ConsensusTrusted {
			o.f = (o.n - 1) / 2
		} else {
			o.f = (o.n - 1) / 3
		}
	}
	if !messages.ValidConsensus(mode, o.n, o.f) {
		if mode == messages.ConsensusTrusted {
			return fmt.Errorf("splitbft: n must equal 2f+1 in trusted consensus mode (n=%d, f=%d)", o.n, o.f)
		}
		return fmt.Errorf("splitbft: n must equal 3f+1 (n=%d, f=%d)", o.n, o.f)
	}
	if _, err := o.replyQuorum(); err != nil {
		return err
	}
	if len(o.tcpAddrs) > 0 && len(o.tcpAddrs) != o.n {
		return fmt.Errorf("splitbft: WithTransportTCP needs one address per replica (%d addresses, n=%d)", len(o.tcpAddrs), o.n)
	}
	return nil
}

// secret returns the shared MAC secret for this deployment.
func (o *options) secret() []byte {
	if len(o.macSecret) > 0 {
		return o.macSecret
	}
	return o.keySeed
}

// costModel returns the enclave cost model, defaulting to the hardware
// model (real enclave-transition costs).
func (o *options) costModel() CostModel {
	if o.costSet {
		return o.cost
	}
	return tee.DefaultCostModel()
}

// application instantiates this replica's application, defaulting to a
// fresh key-value store.
func (o *options) application() Application {
	if o.newApp != nil {
		return o.newApp()
	}
	return NewKVStore()
}

// WithFaults fixes the fault threshold f. The group size must equal 3f+1.
// Default: the largest threshold the group tolerates, (n-1)/3.
func WithFaults(f int) Option {
	return func(o *options) { o.f = f; o.fSet = true }
}

// WithApp installs the replicated application. The factory runs once per
// replica: every replica needs its own state-machine instance. Default:
// NewKVStore.
func WithApp(newApp func() Application) Option {
	return func(o *options) { o.newApp = newApp }
}

// WithKVStore selects the key-value store application (the default),
// readable in option lists that spell out the workload.
func WithKVStore() Option {
	return func(o *options) { o.newApp = func() Application { return NewKVStore() } }
}

// WithBlockchain selects the blockchain (distributed ledger) application
// with the given block size; blockSize <= 0 means DefaultBlockSize. Blocks
// are sealed inside the Execution enclave and persisted through an ocall.
func WithBlockchain(blockSize int) Option {
	return func(o *options) {
		o.newApp = func() Application { return NewBlockchain(blockSize, nil) }
	}
}

// WithConfidential enables end-to-end encrypted requests and replies
// (paper §4.1). Clients must Attest before invoking: the attestation
// handshake verifies every Execution enclave and provisions the session
// key.
func WithConfidential() Option {
	return func(o *options) { o.confidential = true }
}

// WithCostModel replaces the enclave cost model. Default:
// DefaultCostModel (hardware transition costs); SimulationCostModel
// removes them; ZeroCostModel disables all charging.
func WithCostModel(m CostModel) Option {
	return func(o *options) { o.cost = m; o.costSet = true }
}

// WithBatchSize sets how many requests are ordered per batch; 1 disables
// batching. Default DefaultBatchSize.
func WithBatchSize(n int) Option {
	return func(o *options) { o.batchSize = n }
}

// WithBatchTimeout bounds how long the primary waits to fill a batch.
// Default DefaultBatchTimeout.
func WithBatchTimeout(d time.Duration) Option {
	return func(o *options) { o.batchTimeout = d }
}

// WithRequestTimeout sets the replica failure-detector timeout: how long an
// ordered request may stay unexecuted before the primary is suspected and a
// view change begins. Default DefaultRequestTimeout.
func WithRequestTimeout(d time.Duration) Option {
	return func(o *options) { o.requestTimeout = d }
}

// WithCheckpointInterval sets the distance between checkpoints. Default
// DefaultCheckpointInterval.
func WithCheckpointInterval(n uint64) Option {
	return func(o *options) { o.checkpointInterval = n }
}

// WithSingleThread serializes all ecalls of a replica through one
// dispatcher thread (the paper's single-threaded configuration,
// Figure 3a).
func WithSingleThread() Option {
	return func(o *options) { o.singleThread = true }
}

// WithEcallBatch lets one trusted-boundary crossing deliver up to n queued
// messages (the staged pipeline's batched-ecall stage): each enclave
// dispatcher drains its queue and invokes the enclave once per batch,
// amortizing the per-transition cost the paper identifies as the dominant
// enclave overhead. n <= 1 (the default) delivers one message per
// crossing, the paper's baseline behavior. Batching changes scheduling
// only — handlers still run serially in submission order — so results are
// identical with and without it.
func WithEcallBatch(n int) Option {
	return func(o *options) { o.ecallBatch = n }
}

// WithVerifyWorkers fans the signature verifications of a batched ecall
// out to a pool of n workers inside each enclave before the serial handler
// pass (verifications of distinct messages are independent). Handler state
// updates stay on the single protocol thread, so ordering — and therefore
// every ledger and checkpoint digest — remains deterministic. n <= 1 (the
// default) verifies inline. Effective only together with WithEcallBatch.
func WithVerifyWorkers(n int) Option {
	return func(o *options) { o.verifyWorkers = n }
}

// WithAgreementAuth selects how replicas authenticate normal-case
// agreement traffic (PrePrepare/Prepare/Commit/Checkpoint) to each other:
//
//   - "sig" (the default): every message carries an Ed25519 signature
//     from its sending compartment — the paper's baseline, transferable
//     to third parties.
//   - "mac": the trusted-compartment fast path. Attested agreement
//     enclaves derive pairwise symmetric keys from the X25519 exchange
//     performed at registration and authenticate with HMAC vectors
//     (~100× cheaper than Ed25519 on the verify side). Ed25519 remains
//     where third-party verifiability is required — ViewChange/NewView —
//     and the certificates they carry become single enclave-signed
//     digests of the locally validated quorum instead of 2f+1 signature
//     bundles.
//
// All nodes of a deployment must use the same mode. MAC mode leans on the
// compartment trust model: a fully compromised (not merely crashed)
// agreement enclave could vouch for quorums it never saw; see the README
// authentication section for what degrades.
func WithAgreementAuth(mode string) Option {
	return func(o *options) { o.agreementAuth = mode }
}

// agreementAuthMode resolves the option string ("" defaults to sig).
func (o *options) agreementAuthMode() (messages.AuthMode, error) {
	switch o.agreementAuth {
	case "", "sig":
		return messages.AuthSig, nil
	case "mac":
		return messages.AuthMAC, nil
	default:
		return messages.AuthSig, fmt.Errorf("splitbft: unknown agreement auth mode %q (want \"sig\" or \"mac\")", o.agreementAuth)
	}
}

// WithConsensusMode selects the agreement variant:
//
//   - "classic" (the default): three-phase PBFT over n = 3f+1 replicas —
//     PrePrepare, an all-to-all Prepare round, Commit — with 2f+1 quorums.
//     Safety holds even if whole replicas (including their enclaves) are
//     byzantine, up to f of them.
//   - "trusted": the hybrid fast path in the MinBFT/CheapBFT lineage. Each
//     replica gains a trusted monotonic counter enclave; the leader binds
//     every PrePrepare to the next counter value, and because counter
//     values are gap-free and never reusable, a counter-valid proposal
//     cannot be equivocated — replicas commit directly off it, skipping
//     the Prepare round (one full all-to-all phase plus its verification)
//     entirely. Groups shrink to n = 2f+1 with f+1 quorums.
//
// All nodes of a deployment must use the same mode. Trusted mode composes
// with either WithAgreementAuth and with WithPersistence; it leans on the
// compartment trust model — see the README consensus section for what
// degrades if a counter enclave is compromised rather than crashed.
func WithConsensusMode(mode string) Option {
	return func(o *options) { o.consensusMode = mode }
}

// consensusModeVal resolves the option string ("" defaults to classic).
func (o *options) consensusModeVal() (messages.ConsensusMode, error) {
	switch o.consensusMode {
	case "", "classic":
		return messages.ConsensusClassic, nil
	case "trusted":
		return messages.ConsensusTrusted, nil
	default:
		return messages.ConsensusClassic, fmt.Errorf("splitbft: unknown consensus mode %q (want \"classic\" or \"trusted\")", o.consensusMode)
	}
}

// WithCommitRule selects the reply quorum a Client waits for before
// accepting a result (the DuoBFT-style dual-commit knob):
//
//   - "trusted" (the default): f+1 matching replies. At least one comes
//     from a correct replica that executed the operation, which is the
//     standard PBFT client rule and the fast path in trusted consensus.
//   - "full": 2f+1 matching replies — the conservative rule. The result is
//     backed by a full commit quorum of replicas that all executed it,
//     which in trusted consensus mode means the client no longer depends
//     on the counter enclaves of the f fastest replicas alone.
//
// The rule is client-local: replicas execute and reply identically under
// either, so clients with different rules can share one deployment.
func WithCommitRule(rule string) Option {
	return func(o *options) { o.commitRule = rule }
}

// replyQuorum resolves the commit rule to a reply-quorum size for this
// group shape (0 never reaches the client: resolveGroup ran first).
func (o *options) replyQuorum() (int, error) {
	switch o.commitRule {
	case "", "trusted":
		return o.f + 1, nil
	case "full":
		return 2*o.f + 1, nil
	default:
		return 0, fmt.Errorf("splitbft: unknown commit rule %q (want \"trusted\" or \"full\")", o.commitRule)
	}
}

// WithReadLeases toggles the leased local read fast path. When on:
//
//   - The primary's trusted counter enclave issues time-bounded read leases
//     to every replica, piggybacked on proposal and checkpoint traffic and
//     renewed on a dedicated lease clock. Grants are ack-fenced: real
//     (installable) grants go out only while 2f+1 holders have freshly
//     acked, so a primary partitioned into a minority cannot keep
//     extending leases.
//   - A lease-holding replica's Execution compartment serves Client read
//     operations locally: no PrePrepare, no quorum, one attested reply.
//     Reads spread round-robin across the group, so read throughput scales
//     with n instead of being serialized through agreement. Linearizable
//     reads are confirmed with a batched read-index round to the primary
//     (the read waits until local execution reaches the primary's proposal
//     frontier sampled after the read arrived), so a read observes every
//     write acknowledged before it began.
//   - Replicas fail closed. A leaseless, expiring, or lagging replica
//     refuses and the client transparently re-issues the read through the
//     agreement path, so reads are never stale — at worst slower.
//
// Leases are anchored in the same trusted counter that orders proposals
// (and revoked by view changes: a new primary additionally fences writes
// for 2.5× the lease TTL so no old-view lease can miss a new-view write),
// so the fast path leans on the compartment trust model exactly as the
// trusted consensus mode does. Cross-view safety assumes bounded clock
// skew between replicas (see WithLeaseTTL); within a view the read index
// makes no timing assumption. It works in either consensus mode. All
// nodes of a deployment must agree on the setting. See the README
// read-path section for the soundness argument.
func WithReadLeases(on bool) Option {
	return func(o *options) { o.readLeases = on }
}

// WithReadConsistency selects the consistency level of leased reads:
//
//   - "linearizable" (the default): the serving replica confirms each read
//     with a batched read-index round — it waits until it has applied
//     everything the primary had proposed when the read arrived — so the
//     read reflects every operation acknowledged to any client before it
//     was issued.
//   - "session": the replica only needs to have applied this client's own
//     observed prefix (read-your-writes + monotonic reads). Weaker across
//     clients, but skips the read-index round entirely and admits local
//     reads on replicas that lag the primary.
//
// The level is client-local; it has no effect without WithReadLeases.
func WithReadConsistency(level string) Option {
	return func(o *options) { o.readConsistency = level }
}

// readLinearizable resolves the consistency string ("" defaults to
// linearizable).
func (o *options) readLinearizable() (bool, error) {
	switch o.readConsistency {
	case "", "linearizable":
		return true, nil
	case "session":
		return false, nil
	default:
		return true, fmt.Errorf("splitbft: unknown read consistency %q (want \"linearizable\" or \"session\")", o.readConsistency)
	}
}

// WithLeaseTTL bounds a read lease's validity from its grant time (leases
// renew at a quarter of it; holders stop serving a clock-skew margin of
// an eighth before expiry). Shorter TTLs tighten the window in which a
// deposed primary's final leases can linger; longer ones tolerate more
// clock skew between replicas. The TTL is clamped to a quarter of the
// request timeout — a lease must never outlive failure detection, and the
// new primary's 2.5×TTL write fence has to fit inside one detection
// period — and defaults to that maximum. Only meaningful with
// WithReadLeases.
func WithLeaseTTL(d time.Duration) Option {
	return func(o *options) { o.leaseTTL = d }
}

// WithObservability enables the node's observability layer: the metrics
// registry (every stat surface published as Prometheus-style series) and
// the request-lifecycle tracer, which stamps each sampled request at the
// untrusted compartment boundaries (classify, ecall enqueue, PrePrepare,
// prepare-certificate, commit, execute, reply — and for leased reads:
// arrive, read-index, serve). Spans carry protocol identifiers only —
// client ID, timestamp, sequence number — never operation payloads, so
// traces leak nothing the untrusted broker cannot already see.
//
// Off (the default), every instrumentation hook degrades to a nil check
// and the request path allocates nothing for observability.
func WithObservability() Option {
	return func(o *options) { o.obsOn = true }
}

// WithTraceSample records every nth request in the lifecycle tracer
// (1 — the default — traces everything). Sampling bounds tracer overhead
// under sustained load; metrics are unaffected. Implies WithObservability
// for n >= 1.
func WithTraceSample(n int) Option {
	return func(o *options) {
		if n >= 1 {
			o.obsOn = true
		}
		o.traceSample = n
	}
}

// WithMetricsAddr starts the node's HTTP introspection endpoint on addr
// at Start, serving /metrics (Prometheus text format), /healthz (JSON;
// 200 only while every peer answers a connectivity probe, all three
// compartment enclaves are alive and the durability store has not
// failed — 503 otherwise) and /debug/trace (recent sampled spans as
// JSON). ":0" picks a free port — read it back with Node.MetricsAddr.
// Implies WithObservability.
func WithMetricsAddr(addr string) Option {
	return func(o *options) {
		o.metricsAddr = addr
		if addr != "" {
			o.obsOn = true
		}
	}
}

// WithKeySeed derives all enclave keys and client MAC keys
// deterministically from seed, standing in for the attestation-based
// key-exchange ceremony of a real SGX deployment. Every node and client of
// one deployment must share the seed. Required for the TCP transport
// (separate processes cannot otherwise agree on keys); in-process clusters
// may omit it to get fresh random keys.
func WithKeySeed(seed []byte) Option {
	return func(o *options) { o.keySeed = append([]byte(nil), seed...) }
}

// WithPersistence enables the sealed durability subsystem: each node keeps
// a per-compartment write-ahead log plus sealed state snapshots under
// dir/replica-<id>/, written with group-commit fsync batching and garbage
// collected at stable checkpoints. NewNode — and Node.Restart — recover
// compartment state from the newest sealed snapshot, replay the log, and
// close any remaining gap through peer state transfer once the node
// rejoins. Everything on disk is AEAD-sealed under keys derived from the
// enclave identities, so WithPersistence requires WithKeySeed (a restarted
// process must re-derive the same sealing keys, and without the seed
// nothing on disk can be read).
func WithPersistence(dir string) Option {
	return func(o *options) { o.persistDir = dir }
}

// nodeDataDir returns the per-replica durability directory ("" when
// persistence is off).
func (o *options) nodeDataDir(id uint32) string {
	if o.persistDir == "" {
		return ""
	}
	return filepath.Join(o.persistDir, fmt.Sprintf("replica-%d", id))
}

// WithTransportTCP deploys over TCP: addrs lists every replica's address,
// indexed by replica ID. A Node listens on the address at its own ID
// (override with WithListenAddr); a Client dials all of them. The group
// size n is taken from len(addrs); surrounding whitespace per address is
// ignored. Requires WithKeySeed.
func WithTransportTCP(addrs ...string) Option {
	return func(o *options) {
		o.tcpAddrs = make([]string, 0, len(addrs))
		for _, a := range addrs {
			o.tcpAddrs = append(o.tcpAddrs, strings.TrimSpace(a))
		}
	}
}

// SplitAddrs splits a comma-separated replica address list into the form
// WithTransportTCP takes — a convenience for CLI wrappers taking the list
// as one flag. An empty string yields nil.
func SplitAddrs(list string) []string {
	if list == "" {
		return nil
	}
	return strings.Split(list, ",")
}

// WithListenAddr overrides the address a TCP Node binds, when it differs
// from the advertised address in the WithTransportTCP list (e.g. binding
// ":7000" while peers dial "host:7000").
func WithListenAddr(addr string) Option {
	return func(o *options) { o.listenAddr = addr }
}

// WithInvokeTimeout bounds one client invocation end-to-end, across
// retransmissions and view changes. Default DefaultInvokeTimeout.
func WithInvokeTimeout(d time.Duration) Option {
	return func(o *options) { o.invokeTimeout = d }
}

// WithRetransmitInterval sets how long a client waits for a reply quorum
// before resending to all replicas. Default DefaultRetransmitInterval.
func WithRetransmitInterval(d time.Duration) Option {
	return func(o *options) { o.retransmit = d }
}

// WithNetworkSeed seeds the in-process simulated network's fault
// randomness (NewCluster only), making fault schedules reproducible.
func WithNetworkSeed(seed int64) Option {
	return func(o *options) { o.netSeed = seed }
}

// withClusterWiring is how NewCluster shares its network, registry and MAC
// secret with the nodes and clients it builds. Appended after user options
// so it always wins.
func withClusterWiring(n int, netw *transport.SimNet, reg *crypto.Registry, secret []byte) Option {
	return func(o *options) {
		o.n = n
		o.simnet = netw
		o.registry = reg
		o.macSecret = secret
		o.tcpAddrs = nil
	}
}
