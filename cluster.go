package splitbft

import (
	"fmt"
	"sync"

	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/transport"
)

// defaultClusterSecret seeds pairwise MAC keys for in-process clusters
// when no WithKeySeed is given. Sharing a compile-time constant is fine
// there: all parties live in one address space anyway.
var defaultClusterSecret = []byte("splitbft-cluster-secret")

// Cluster is an in-process N-replica deployment over a simulated network —
// the harness behind the examples, the public-API tests and the benchmark
// suite. All nodes share one key registry (the stand-in for the
// deployment-time attestation ceremony) and are started on return from
// NewCluster.
type Cluster struct {
	n, f     int
	net      *transport.SimNet
	registry *crypto.Registry
	secret   []byte
	baseOpts []Option
	nodes    []*Node

	mu        sync.Mutex
	clients   []*Client
	clientIDs map[uint32]bool
	cut       [][2]transport.Endpoint
	closed    bool
}

// NewCluster builds and starts an n-replica in-process deployment. Options
// apply to every node; clients created with Cluster.NewClient inherit them
// too, so e.g. WithConfidential configures both sides consistently.
func NewCluster(n int, opts ...Option) (*Cluster, error) {
	o := buildOptions(opts)
	o.n = n
	o.tcpAddrs = nil
	if err := o.resolveGroup(); err != nil {
		return nil, err
	}
	secret := o.secret()
	if len(secret) == 0 {
		secret = defaultClusterSecret
	}
	c := &Cluster{
		n: o.n, f: o.f,
		net:       transport.NewSimNet(o.netSeed),
		registry:  crypto.NewRegistry(),
		secret:    secret,
		baseOpts:  opts,
		clientIDs: make(map[uint32]bool),
	}
	for i := 0; i < n; i++ {
		node, err := NewNode(uint32(i), c.wire(opts)...)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("splitbft: cluster node %d: %w", i, err)
		}
		c.nodes = append(c.nodes, node)
	}
	// Start only after every node registered its enclave keys: replicas
	// verify each other's messages against the shared registry.
	for _, node := range c.nodes {
		if err := node.Start(); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// wire appends the cluster's shared network, registry and secret to an
// option list, after user options so the wiring always wins.
func (c *Cluster) wire(opts []Option) []Option {
	out := make([]Option, 0, len(opts)+1)
	out = append(out, opts...)
	return append(out, withClusterWiring(c.n, c.net, c.registry, c.secret))
}

// N returns the number of replicas.
func (c *Cluster) N() int { return c.n }

// F returns the fault threshold.
func (c *Cluster) F() int { return c.f }

// Node returns replica i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Nodes returns all replicas in ID order.
func (c *Cluster) Nodes() []*Node { return append([]*Node(nil), c.nodes...) }

// NewClient attaches a new client to the cluster. It inherits the
// cluster's options (confidentiality, fault threshold); per-client options
// like WithInvokeTimeout may override them. Confidential clients must
// still Attest before invoking — kept explicit so callers control when the
// n attestation handshakes run (and can run them concurrently).
func (c *Cluster) NewClient(id uint32, opts ...Option) (*Client, error) {
	// Reserve the ID first: a duplicate would silently replace the first
	// client's network endpoint and hijack its replies.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.clientIDs[id] {
		c.mu.Unlock()
		return nil, fmt.Errorf("splitbft: client ID %d already attached to this cluster", id)
	}
	c.clientIDs[id] = true
	c.mu.Unlock()

	all := make([]Option, 0, len(c.baseOpts)+len(opts))
	all = append(all, c.baseOpts...)
	all = append(all, opts...)
	cl, err := NewClient(id, c.wire(all)...)
	if err != nil {
		c.mu.Lock()
		delete(c.clientIDs, id)
		c.mu.Unlock()
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		cl.Close()
		return nil, ErrClosed
	}
	c.clients = append(c.clients, cl)
	return cl, nil
}

// CrashNode kills replica id abruptly (the SIGKILL analog): enclaves die,
// the durability stores drop their un-fsynced tail, and the node leaves
// the network. The rest of the cluster keeps running; bring the replica
// back with RestartNode.
func (c *Cluster) CrashNode(id int) { c.nodes[id].Crash() }

// RestartNode restarts a stopped or crashed replica. With WithPersistence
// it recovers from its sealed durability store (snapshot + WAL replay) and
// then catches up with the group via state transfer; without persistence
// it rejoins empty and state-transfers everything.
func (c *Cluster) RestartNode(id int) error { return c.nodes[id].Restart() }

// Partition cuts the listed replicas off from the rest of the deployment —
// the other replicas and every client created so far — while links among
// the listed replicas stay up. Messages across the cut are silently
// dropped, like a network partition. Heal restores all links.
func (c *Cluster) Partition(ids ...int) {
	in := make(map[int]bool, len(ids))
	for _, id := range ids {
		in[id] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	block := func(a, b transport.Endpoint) {
		c.net.Block(a, b)
		c.cut = append(c.cut, [2]transport.Endpoint{a, b})
	}
	for _, id := range ids {
		ep := transport.ReplicaEndpoint(uint32(id))
		for other := 0; other < c.n; other++ {
			if !in[other] {
				block(ep, transport.ReplicaEndpoint(uint32(other)))
			}
		}
		for _, cl := range c.clients {
			block(ep, transport.ClientEndpoint(cl.ID()))
		}
	}
}

// Heal restores every link cut by Partition.
func (c *Cluster) Heal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, pair := range c.cut {
		c.net.Unblock(pair[0], pair[1])
	}
	c.cut = nil
}

// Close stops all clients, nodes and the network.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	clients := c.clients
	c.clients = nil
	c.mu.Unlock()
	for _, cl := range clients {
		cl.Close()
	}
	for _, node := range c.nodes {
		node.Stop()
	}
	c.net.Close()
}
