package splitbft

import (
	"time"

	"github.com/splitbft/splitbft/internal/store"
	"github.com/splitbft/splitbft/internal/transport"
)

// This file is the facade's chaos fault-injection surface: the handles the
// experiments/chaos harness (and tests) drive to inject network, disk and
// clock faults into a live cluster. Everything here injects faults the
// protocol claims to tolerate — safety must hold through any combination;
// only availability may suffer.

// NetFaults configures probabilistic message faults on the simulated
// network: drop, duplication, reordering (bounded by Jitter) and delay.
type NetFaults = transport.Faults

// DiskFaults is the per-node disk fault injector: write errors and fsync
// errors trip the store's sticky-failure barrier (the node's compartments
// go mute rather than equivocate), a stall models a degraded device.
type DiskFaults = store.FaultInjector

// SetClockSkew offsets this node's lease clock by d (negative d runs the
// clock slow). Only the lease-safety paths — grant freshness, holder-side
// validity, the new-primary write fence — read the skewed clock; the lease
// design budgets TTL/8 for skew, and chaos plans probe that bound. The
// skew survives Restart, like a machine whose system clock is simply
// wrong.
func (n *Node) SetClockSkew(d time.Duration) { n.clock.SetSkew(d) }

// ClockSkew returns the node's current lease-clock offset.
func (n *Node) ClockSkew() time.Duration { return n.clock.Skew() }

// DiskFaults returns the node's disk fault injector, shared by all three
// compartment durability stores (inert without WithPersistence). Injected
// write/fsync errors are sticky per store — like a real device error, only
// a restart (which reopens the stores) brings the node's log back.
func (n *Node) DiskFaults() *DiskFaults { return n.disk }

// Resends returns how many times this client retransmitted a write — the
// observable surface of the client's retransmit backoff.
func (c *Client) Resends() uint64 { return c.inner.Resends() }

// Net returns the cluster's simulated network — the low-level chaos
// handle for per-link fault configuration and asymmetric partitions
// (Cluster.Partition and friends cover the common symmetric cases).
func (c *Cluster) Net() *transport.SimNet { return c.net }

// SetNetFaults installs a global fault configuration on every link of the
// cluster's network (per-link overrides installed via Net() still win).
func (c *Cluster) SetNetFaults(f NetFaults) { c.net.SetFaults(f) }

// ClearNetFaults removes the global fault configuration and every
// per-link override.
func (c *Cluster) ClearNetFaults() {
	c.net.SetFaults(NetFaults{})
	c.net.ClearAllLinkFaults()
}

// PartitionWithClients cuts the listed replicas off from the rest of the
// deployment exactly like Partition, except that the named clients are
// stranded *inside* the partition with the listed replicas: their links to
// the listed side stay up and their links to the majority side are cut.
// It models a client that went down with its nearest replicas — with
// fewer than 2f+1 reachable replicas its writes cannot commit until Heal.
func (c *Cluster) PartitionWithClients(clientIDs []uint32, ids ...int) {
	in := make(map[int]bool, len(ids))
	for _, id := range ids {
		in[id] = true
	}
	stranded := make(map[uint32]bool, len(clientIDs))
	for _, id := range clientIDs {
		stranded[id] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	block := func(a, b transport.Endpoint) {
		c.net.Block(a, b)
		c.cut = append(c.cut, [2]transport.Endpoint{a, b})
	}
	for _, id := range ids {
		ep := transport.ReplicaEndpoint(uint32(id))
		for other := 0; other < c.n; other++ {
			if !in[other] {
				block(ep, transport.ReplicaEndpoint(uint32(other)))
			}
		}
		// Majority-side clients lose the listed replicas, as in Partition.
		for _, cl := range c.clients {
			if !stranded[cl.ID()] {
				block(ep, transport.ClientEndpoint(cl.ID()))
			}
		}
	}
	// Stranded clients lose the majority side instead.
	for clID := range stranded {
		cep := transport.ClientEndpoint(clID)
		for other := 0; other < c.n; other++ {
			if !in[other] {
				block(cep, transport.ReplicaEndpoint(uint32(other)))
			}
		}
	}
}
