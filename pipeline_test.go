package splitbft_test

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/splitbft/splitbft"
)

// runLedgerScenario drives a seeded 4-replica blockchain cluster through a
// fixed operation script — sequential transactions from one client with a
// forced view change in the middle — and returns the surviving replicas'
// final snapshots. The script is fully deterministic at the application
// level: one client issues transactions back to back (each waits for its
// reply quorum), and the view change is injected at a quiescent point, so
// the committed transaction sequence — and therefore every ledger byte and
// checkpoint (snapshot) digest — must be identical for any scheduling of
// the replica internals.
func runLedgerScenario(t *testing.T, opts ...splitbft.Option) [][]byte {
	t.Helper()
	base := []splitbft.Option{
		splitbft.WithBlockchain(4), // small blocks: several seal during the run
		splitbft.WithBatchSize(1),
		splitbft.WithNetworkSeed(77),
		splitbft.WithKeySeed([]byte("pipeline-determinism")),
		splitbft.WithRequestTimeout(300 * time.Millisecond),
	}
	cluster, err := splitbft.NewCluster(4, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cl, err := cluster.NewClient(500, splitbft.WithInvokeTimeout(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tx := func(i int) []byte { return []byte(fmt.Sprintf("tx-%02d", i)) }
	for i := 0; i < 8; i++ {
		if _, err := cl.Invoke(tx(i)); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	// Quiesce, then force a view change by partitioning the view-0
	// primary. Injecting at a quiescent point keeps the scenario
	// deterministic across schedulings: no slot is in flight, so the new
	// view re-proposes nothing and sequence numbers stay aligned.
	waitForAgreement(t, cluster, []int{0, 1, 2, 3})
	cluster.Partition(0)
	if _, err := cl.Invoke(tx(8)); err != nil {
		t.Fatalf("tx across view change: %v", err)
	}
	for i := 9; i < 16; i++ {
		if _, err := cl.Invoke(tx(i)); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	// Replica 0 missed slots while partitioned and (below the checkpoint
	// interval) cannot state-transfer them back; compare the replicas that
	// ran the whole scenario.
	waitForAgreement(t, cluster, []int{1, 2, 3})
	var snaps [][]byte
	for _, id := range []int{1, 2, 3} {
		bc := cluster.Node(id).App().(*splitbft.Blockchain)
		if err := splitbft.VerifyChain(bc.Headers()); err != nil {
			t.Fatalf("replica %d chain: %v", id, err)
		}
		if bc.Height() != 4 { // 16 transactions, block size 4
			t.Fatalf("replica %d height = %d, want 4", id, bc.Height())
		}
		snaps = append(snaps, bc.Snapshot())
	}
	return snaps
}

// TestPipelineDeterminism is the safety check for the staged pipeline:
// batched ecalls plus a parallel verification pool must not be able to
// change any agreed byte. A pipelined run (WithEcallBatch + 8 verify
// workers) and the paper's fully serialized single-thread configuration
// replay the same seeded scenario — including a forced view change — and
// every replica ledger snapshot must be byte-identical across replicas and
// across the two configurations.
func TestPipelineDeterminism(t *testing.T) {
	// The verify pool clamps to GOMAXPROCS; raise it so the parallel
	// preprocessing genuinely runs even on single-core CI hosts.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	pipelined := runLedgerScenario(t,
		splitbft.WithEcallBatch(16),
		splitbft.WithVerifyWorkers(8),
	)
	serial := runLedgerScenario(t, splitbft.WithSingleThread())

	for i := 1; i < len(pipelined); i++ {
		if !bytes.Equal(pipelined[i], pipelined[0]) {
			t.Fatalf("pipelined replicas diverged: snapshot %d != snapshot 0", i)
		}
	}
	if !bytes.Equal(pipelined[0], serial[0]) {
		t.Fatal("pipelined ledger differs from the single-thread ledger: the parallel pipeline changed agreed state")
	}
}
