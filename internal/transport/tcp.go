package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// maxFrame bounds a single TCP frame; larger frames indicate corruption or
// attack and kill the connection.
const maxFrame = 1 << 26

// TCPNode is a Conn over real TCP sockets with 4-byte length-prefixed
// framing. Replicas listen and dial each other using a static address book;
// clients dial replicas and receive replies over their outbound connection.
type TCPNode struct {
	self  Endpoint
	h     Handler
	ln    net.Listener
	addrs map[uint32]string // replica ID -> address

	mu     sync.Mutex
	conns  map[Endpoint]*tcpPeer
	closed bool
	wg     sync.WaitGroup
}

type tcpPeer struct {
	c  net.Conn
	w  *bufio.Writer
	mu sync.Mutex // serializes frame writes
}

// ListenTCP starts a listening node (used by replicas). addrs maps every
// replica ID to its dialable address; handler receives inbound messages.
func ListenTCP(self Endpoint, listenAddr string, addrs map[uint32]string, h Handler) (*TCPNode, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	n := newTCPNode(self, addrs, h)
	n.ln = ln
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// DialTCP creates a non-listening node (used by clients).
func DialTCP(self Endpoint, addrs map[uint32]string, h Handler) *TCPNode {
	return newTCPNode(self, addrs, h)
}

func newTCPNode(self Endpoint, addrs map[uint32]string, h Handler) *TCPNode {
	book := make(map[uint32]string, len(addrs))
	for id, a := range addrs {
		book[id] = a
	}
	return &TCPNode{self: self, h: h, addrs: book, conns: make(map[Endpoint]*tcpPeer)}
}

// Addr returns the listener address, or "" for non-listening nodes.
func (n *TCPNode) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveConn(c)
		}()
	}
}

// serveConn reads the peer's handshake then pumps frames to the handler.
func (n *TCPNode) serveConn(c net.Conn) {
	r := bufio.NewReader(c)
	peer, err := readHandshake(r)
	if err != nil {
		c.Close()
		return
	}
	p := &tcpPeer{c: c, w: bufio.NewWriter(c)}
	n.mu.Lock()
	if old, ok := n.conns[peer]; ok {
		old.c.Close()
	}
	n.conns[peer] = p
	closed := n.closed
	n.mu.Unlock()
	if closed {
		c.Close()
		return
	}
	n.readLoop(peer, r, c)
}

func (n *TCPNode) readLoop(peer Endpoint, r *bufio.Reader, c net.Conn) {
	defer func() {
		c.Close()
		n.mu.Lock()
		if cur, ok := n.conns[peer]; ok && cur.c == c {
			delete(n.conns, peer)
		}
		n.mu.Unlock()
	}()
	for {
		data, err := readFrame(r)
		if err != nil {
			return
		}
		n.h(peer, data)
	}
}

// dial establishes an outbound connection to a replica in the address book.
func (n *TCPNode) dial(to Endpoint) (*tcpPeer, error) {
	if to.Kind != KindReplica {
		return nil, fmt.Errorf("%w: cannot dial %v (no address)", ErrUnknownEndpoint, to)
	}
	addr, ok := n.addrs[to.ID]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownEndpoint, to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %v at %s: %w", to, addr, err)
	}
	if err := writeHandshake(c, n.self); err != nil {
		c.Close()
		return nil, err
	}
	p := &tcpPeer{c: c, w: bufio.NewWriter(c)}
	n.mu.Lock()
	n.conns[to] = p
	n.mu.Unlock()
	// Replies and pushed messages arrive over this same connection.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.readLoop(to, bufio.NewReader(c), c)
	}()
	return p, nil
}

// Send implements Conn.
func (n *TCPNode) Send(to Endpoint, data []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	p, ok := n.conns[to]
	n.mu.Unlock()
	if !ok {
		var err error
		if p, err = n.dial(to); err != nil {
			return err
		}
	}
	if err := p.writeFrame(data); err != nil {
		n.mu.Lock()
		if cur, found := n.conns[to]; found && cur == p {
			delete(n.conns, to)
		}
		n.mu.Unlock()
		p.c.Close()
		return err
	}
	return nil
}

// BroadcastReplicas implements Conn.
func (n *TCPNode) BroadcastReplicas(data []byte) error {
	var firstErr error
	for id := range n.addrs {
		if n.self.Kind == KindReplica && n.self.ID == id {
			continue
		}
		if err := n.Send(ReplicaEndpoint(id), data); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close implements Conn.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]*tcpPeer, 0, len(n.conns))
	for _, p := range n.conns {
		conns = append(conns, p)
	}
	n.conns = make(map[Endpoint]*tcpPeer)
	n.mu.Unlock()
	if n.ln != nil {
		n.ln.Close()
	}
	for _, p := range conns {
		p.c.Close()
	}
	n.wg.Wait()
	return nil
}

func (p *tcpPeer) writeFrame(data []byte) error {
	if len(data) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(data))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := p.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := p.w.Write(data); err != nil {
		return err
	}
	return p.w.Flush()
}

func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.LittleEndian.Uint32(hdr[:])
	if size > maxFrame {
		return nil, fmt.Errorf("transport: inbound frame of %d bytes exceeds limit", size)
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	return data, nil
}

func writeHandshake(c net.Conn, self Endpoint) error {
	var hdr [5]byte
	hdr[0] = byte(self.Kind)
	binary.LittleEndian.PutUint32(hdr[1:], self.ID)
	_, err := c.Write(hdr[:])
	return err
}

func readHandshake(r *bufio.Reader) (Endpoint, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Endpoint{}, err
	}
	return Endpoint{Kind: EndpointKind(hdr[0]), ID: binary.LittleEndian.Uint32(hdr[1:])}, nil
}
