package transport

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collector is a thread-safe message sink used as a Handler in tests.
type collector struct {
	mu   sync.Mutex
	msgs []string
	ch   chan string
}

func newCollector() *collector {
	return &collector{ch: make(chan string, 1024)}
}

func (c *collector) handle(from Endpoint, data []byte) {
	s := fmt.Sprintf("%v:%s", from, data)
	c.mu.Lock()
	c.msgs = append(c.msgs, s)
	c.mu.Unlock()
	c.ch <- s
}

func (c *collector) wait(t *testing.T, want string) {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case got := <-c.ch:
			if got == want {
				return
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %q; have %v", want, c.snapshot())
		}
	}
}

func (c *collector) snapshot() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.msgs...)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func TestSimNetPointToPoint(t *testing.T) {
	net := NewSimNet(1)
	defer net.Close()
	c0 := newCollector()
	c1 := newCollector()
	conn0, err := net.Join(ReplicaEndpoint(0), c0.handle)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(ReplicaEndpoint(1), c1.handle); err != nil {
		t.Fatal(err)
	}
	if err := conn0.Send(ReplicaEndpoint(1), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	c1.wait(t, "replica-0:hello")
	if c0.count() != 0 {
		t.Fatal("sender received its own point-to-point message")
	}
}

func TestSimNetBroadcastExcludesSelf(t *testing.T) {
	net := NewSimNet(1)
	defer net.Close()
	cols := make([]*collector, 4)
	conns := make([]Conn, 4)
	for i := 0; i < 4; i++ {
		cols[i] = newCollector()
		c, err := net.Join(ReplicaEndpoint(uint32(i)), cols[i].handle)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	if err := conns[2].BroadcastReplicas([]byte("b")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if i == 2 {
			continue
		}
		cols[i].wait(t, "replica-2:b")
	}
	time.Sleep(10 * time.Millisecond)
	if cols[2].count() != 0 {
		t.Fatal("broadcast delivered to sender")
	}
}

func TestSimNetUnknownEndpoint(t *testing.T) {
	net := NewSimNet(1)
	defer net.Close()
	conn, err := net.Join(ReplicaEndpoint(0), func(Endpoint, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(ReplicaEndpoint(9), []byte("x")); err == nil {
		t.Fatal("send to unknown endpoint succeeded")
	}
}

func TestSimNetSenderBufferReuse(t *testing.T) {
	net := NewSimNet(1)
	defer net.Close()
	col := newCollector()
	if _, err := net.Join(ReplicaEndpoint(1), col.handle); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Join(ReplicaEndpoint(0), func(Endpoint, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte("aaaa")
	if err := conn.Send(ReplicaEndpoint(1), buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "bbbb") // mutate after send
	col.wait(t, "replica-0:aaaa")
}

func TestSimNetBlockAndUnblock(t *testing.T) {
	net := NewSimNet(1)
	defer net.Close()
	col := newCollector()
	if _, err := net.Join(ReplicaEndpoint(1), col.handle); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Join(ReplicaEndpoint(0), func(Endpoint, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	net.Block(ReplicaEndpoint(0), ReplicaEndpoint(1))
	if err := conn.Send(ReplicaEndpoint(1), []byte("lost")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if col.count() != 0 {
		t.Fatal("blocked link delivered a message")
	}
	net.Unblock(ReplicaEndpoint(0), ReplicaEndpoint(1))
	if err := conn.Send(ReplicaEndpoint(1), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, "replica-0:ok")
}

func TestSimNetIsolate(t *testing.T) {
	net := NewSimNet(1)
	defer net.Close()
	col := newCollector()
	if _, err := net.Join(ReplicaEndpoint(1), col.handle); err != nil {
		t.Fatal(err)
	}
	conn0, err := net.Join(ReplicaEndpoint(0), func(Endpoint, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	conn2, err := net.Join(ReplicaEndpoint(2), func(Endpoint, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	net.Isolate(ReplicaEndpoint(0))
	if err := conn0.Send(ReplicaEndpoint(1), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := conn2.Send(ReplicaEndpoint(1), []byte("y")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, "replica-2:y")
	for _, m := range col.snapshot() {
		if m == "replica-0:x" {
			t.Fatal("isolated node's message delivered")
		}
	}
}

func TestSimNetDropFaults(t *testing.T) {
	net := NewSimNet(42)
	defer net.Close()
	var received atomic.Int64
	if _, err := net.Join(ReplicaEndpoint(1), func(Endpoint, []byte) { received.Add(1) }); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Join(ReplicaEndpoint(0), func(Endpoint, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	net.SetFaults(Faults{DropProb: 0.5})
	const total = 400
	for i := 0; i < total; i++ {
		if err := conn.Send(ReplicaEndpoint(1), []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	got := received.Load()
	if got < total/4 || got > total*3/4 {
		t.Fatalf("with 50%% drop, delivered %d/%d — outside sanity band", got, total)
	}
}

func TestSimNetDuplicates(t *testing.T) {
	net := NewSimNet(7)
	defer net.Close()
	var received atomic.Int64
	if _, err := net.Join(ReplicaEndpoint(1), func(Endpoint, []byte) { received.Add(1) }); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Join(ReplicaEndpoint(0), func(Endpoint, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	net.SetFaults(Faults{DupProb: 1.0})
	for i := 0; i < 10; i++ {
		if err := conn.Send(ReplicaEndpoint(1), []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	if got := received.Load(); got != 20 {
		t.Fatalf("with DupProb=1, delivered %d, want 20", got)
	}
}

func TestSimNetObserverSeesTraffic(t *testing.T) {
	net := NewSimNet(1)
	defer net.Close()
	var seen atomic.Int64
	net.AddObserver(func(from, to Endpoint, data []byte) {
		if bytes.Contains(data, []byte("secret")) {
			seen.Add(1)
		}
	})
	if _, err := net.Join(ReplicaEndpoint(1), func(Endpoint, []byte) {}); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Join(ReplicaEndpoint(0), func(Endpoint, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(ReplicaEndpoint(1), []byte("a secret message")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if seen.Load() != 1 {
		t.Fatal("observer did not see the message")
	}
}

func TestSimNetCloseRejectsSends(t *testing.T) {
	net := NewSimNet(1)
	conn, err := net.Join(ReplicaEndpoint(0), func(Endpoint, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	net.Close()
	if err := conn.Send(ReplicaEndpoint(0), []byte("x")); err == nil {
		t.Fatal("send on closed network succeeded")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	colServer := newCollector()
	server, err := ListenTCP(ReplicaEndpoint(0), "127.0.0.1:0", nil, colServer.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	addrs := map[uint32]string{0: server.Addr()}
	colClient := newCollector()
	client := DialTCP(ClientEndpoint(5), addrs, colClient.handle)
	defer client.Close()

	if err := client.Send(ReplicaEndpoint(0), []byte("request")); err != nil {
		t.Fatal(err)
	}
	colServer.wait(t, "client-5:request")

	// The server replies over the client's inbound connection.
	if err := server.Send(ClientEndpoint(5), []byte("reply")); err != nil {
		t.Fatal(err)
	}
	colClient.wait(t, "replica-0:reply")
}

func TestTCPReplicaMesh(t *testing.T) {
	const n = 3
	cols := make([]*collector, n)
	nodes := make([]*TCPNode, n)
	addrs := make(map[uint32]string, n)
	for i := 0; i < n; i++ {
		cols[i] = newCollector()
		node, err := ListenTCP(ReplicaEndpoint(uint32(i)), "127.0.0.1:0", nil, cols[i].handle)
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		nodes[i] = node
		addrs[uint32(i)] = node.Addr()
	}
	for i := 0; i < n; i++ {
		nodes[i].addrs = addrs
	}
	if err := nodes[0].BroadcastReplicas([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	cols[1].wait(t, "replica-0:hi")
	cols[2].wait(t, "replica-0:hi")
	if cols[0].count() != 0 {
		t.Fatal("broadcast reached the sender")
	}
}

func TestTCPLargeFrame(t *testing.T) {
	col := newCollector()
	server, err := ListenTCP(ReplicaEndpoint(0), "127.0.0.1:0", nil, func(from Endpoint, data []byte) {
		col.handle(from, []byte(fmt.Sprintf("%d", len(data))))
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client := DialTCP(ClientEndpoint(1), map[uint32]string{0: server.Addr()}, func(Endpoint, []byte) {})
	defer client.Close()
	big := make([]byte, 1<<20)
	if err := client.Send(ReplicaEndpoint(0), big); err != nil {
		t.Fatal(err)
	}
	col.wait(t, fmt.Sprintf("client-1:%d", 1<<20))
}

func TestTCPSendToUnknown(t *testing.T) {
	client := DialTCP(ClientEndpoint(1), nil, func(Endpoint, []byte) {})
	defer client.Close()
	if err := client.Send(ReplicaEndpoint(3), []byte("x")); err == nil {
		t.Fatal("send without address book entry succeeded")
	}
	if err := client.Send(ClientEndpoint(2), []byte("x")); err == nil {
		t.Fatal("client-to-client send succeeded")
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	server, err := ListenTCP(ReplicaEndpoint(0), "127.0.0.1:0", nil, func(Endpoint, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	if err := server.Send(ReplicaEndpoint(1), []byte("x")); err == nil {
		t.Fatal("send after close succeeded")
	}
}

func TestEndpointString(t *testing.T) {
	if got := ReplicaEndpoint(3).String(); got != "replica-3" {
		t.Fatalf("String = %q", got)
	}
	if got := ClientEndpoint(9).String(); got != "client-9" {
		t.Fatalf("String = %q", got)
	}
}

// TestSimNetLinkFaultsOverrideGlobal pins that a per-link override beats
// the global configuration, including a zero override that makes one link
// perfect while the rest of the network drops everything.
func TestSimNetLinkFaultsOverrideGlobal(t *testing.T) {
	net := NewSimNet(11)
	defer net.Close()
	var got1, got2 atomic.Int64
	if _, err := net.Join(ReplicaEndpoint(1), func(Endpoint, []byte) { got1.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(ReplicaEndpoint(2), func(Endpoint, []byte) { got2.Add(1) }); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Join(ReplicaEndpoint(0), func(Endpoint, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	net.SetFaults(Faults{DropProb: 1.0})
	net.SetLinkFaults(ReplicaEndpoint(0), ReplicaEndpoint(1), Faults{})
	for i := 0; i < 20; i++ {
		if err := conn.Send(ReplicaEndpoint(1), []byte("m")); err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(ReplicaEndpoint(2), []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	if got := got1.Load(); got != 20 {
		t.Fatalf("overridden link delivered %d/20", got)
	}
	if got := got2.Load(); got != 0 {
		t.Fatalf("global-drop link delivered %d/0", got)
	}
	// Clearing the override puts the link back under the global config.
	net.ClearLinkFaults(ReplicaEndpoint(0), ReplicaEndpoint(1))
	for i := 0; i < 20; i++ {
		if err := conn.Send(ReplicaEndpoint(1), []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	if got := got1.Load(); got != 20 {
		t.Fatalf("cleared link delivered %d new messages, want 0", got-20)
	}
}

// TestSimNetBlockOneWay pins asymmetric partitions: 0→1 cut, 1→0 alive.
func TestSimNetBlockOneWay(t *testing.T) {
	net := NewSimNet(3)
	defer net.Close()
	var at0, at1 atomic.Int64
	conn0, err := net.Join(ReplicaEndpoint(0), func(Endpoint, []byte) { at0.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	conn1, err := net.Join(ReplicaEndpoint(1), func(Endpoint, []byte) { at1.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	net.BlockOneWay(ReplicaEndpoint(0), ReplicaEndpoint(1))
	if err := conn0.Send(ReplicaEndpoint(1), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := conn1.Send(ReplicaEndpoint(0), []byte("y")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if at1.Load() != 0 {
		t.Fatal("blocked direction delivered")
	}
	if at0.Load() != 1 {
		t.Fatal("open direction did not deliver")
	}
	net.UnblockOneWay(ReplicaEndpoint(0), ReplicaEndpoint(1))
	if err := conn0.Send(ReplicaEndpoint(1), []byte("x")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if at1.Load() != 1 {
		t.Fatal("healed direction did not deliver")
	}
}

// faultTrace drives a fixed message schedule over two independent links
// and records the per-link fault-decision sequence.
func faultTrace(t *testing.T, seed int64) map[string][]string {
	t.Helper()
	net := NewSimNet(seed)
	defer net.Close()
	for id := uint32(1); id <= 2; id++ {
		if _, err := net.Join(ReplicaEndpoint(id), func(Endpoint, []byte) {}); err != nil {
			t.Fatal(err)
		}
	}
	conn, err := net.Join(ReplicaEndpoint(0), func(Endpoint, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	trace := make(map[string][]string)
	var mu sync.Mutex
	net.SetFaultObserver(func(ev FaultEvent) {
		mu.Lock()
		k := ev.From.String() + ">" + ev.To.String()
		trace[k] = append(trace[k], fmt.Sprintf("drop=%v dup=%v delay=%v", ev.Drop, ev.Dup, ev.Delay))
		mu.Unlock()
	})
	net.SetFaults(Faults{DropProb: 0.3, DupProb: 0.2, ReorderProb: 0.5, Jitter: time.Millisecond})
	for i := 0; i < 50; i++ {
		if err := conn.Send(ReplicaEndpoint(1), []byte("a")); err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(ReplicaEndpoint(2), []byte("b")); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	return trace
}

// TestSimNetReplayEquality pins determinism: the same seed must yield the
// same per-link fault-decision sequence, and a different seed must not.
func TestSimNetReplayEquality(t *testing.T) {
	a := faultTrace(t, 99)
	b := faultTrace(t, 99)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different fault sequences:\n%v\nvs\n%v", a, b)
	}
	c := faultTrace(t, 100)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}
