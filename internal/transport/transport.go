// Package transport provides message delivery between replicas and clients:
// an in-process simulated network with fault injection (drop, delay,
// reorder, duplicate, partition) for tests and benchmarks, and a TCP
// transport with length-prefixed framing for distributed deployments.
//
// The network model matches the paper (§2.1): unreliable, may discard,
// reorder and delay messages, but not indefinitely — so the simnet's fault
// injectors are probabilistic, never permanent unless a partition is
// explicitly installed.
package transport

import (
	"errors"
	"fmt"
)

// EndpointKind distinguishes replica and client endpoints.
type EndpointKind uint8

// Endpoint kinds.
const (
	KindReplica EndpointKind = iota
	KindClient
)

// Endpoint names a network participant.
type Endpoint struct {
	Kind EndpointKind
	ID   uint32
}

// ReplicaEndpoint returns the endpoint for replica id.
func ReplicaEndpoint(id uint32) Endpoint { return Endpoint{Kind: KindReplica, ID: id} }

// ClientEndpoint returns the endpoint for client id.
func ClientEndpoint(id uint32) Endpoint { return Endpoint{Kind: KindClient, ID: id} }

// String implements fmt.Stringer.
func (e Endpoint) String() string {
	if e.Kind == KindReplica {
		return fmt.Sprintf("replica-%d", e.ID)
	}
	return fmt.Sprintf("client-%d", e.ID)
}

// Handler receives inbound messages. Handlers for one endpoint are invoked
// sequentially in delivery order; implementations that need concurrency
// hand off internally.
type Handler func(from Endpoint, data []byte)

// Conn is one endpoint's attachment to a network.
type Conn interface {
	// Send delivers data to one endpoint. Delivery is best-effort:
	// a nil error means the message was accepted for delivery, not that it
	// arrived.
	Send(to Endpoint, data []byte) error
	// BroadcastReplicas sends to every replica except the sender itself.
	BroadcastReplicas(data []byte) error
	// Close detaches the endpoint. Further Sends fail.
	Close() error
}

// ErrClosed is returned by operations on a closed Conn or network.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownEndpoint is returned when sending to an endpoint that never
// joined the network.
var ErrUnknownEndpoint = errors.New("transport: unknown endpoint")
