package transport

import (
	"math/rand"
	"sync"
	"time"
)

// Faults configures probabilistic link faults on a SimNet. Probabilities
// are in [0,1]. The zero value is a perfect network.
type Faults struct {
	// DropProb drops a message entirely.
	DropProb float64
	// DupProb delivers a message twice.
	DupProb float64
	// ReorderProb delays a message by a random extra jitter, letting later
	// messages overtake it.
	ReorderProb float64
	// Delay is the base one-way latency applied to every message.
	Delay time.Duration
	// Jitter is the maximum extra latency for reordered messages.
	Jitter time.Duration
}

// Observer sees every message accepted for delivery, before faults are
// applied. Used by confidentiality tests to assert that no plaintext ever
// crosses the wire. It must not retain or mutate data.
type Observer func(from, to Endpoint, data []byte)

// FaultEvent records one fault decision taken on a directed link. The
// chaos harness uses the stream of these both as metrics input and to pin
// replay equality: identical seeds must produce identical decision
// sequences per link.
type FaultEvent struct {
	From, To Endpoint
	Drop     bool
	Dup      bool
	Delay    time.Duration
}

// FaultObserver sees every fault decision taken on a faulty link. It is
// invoked inline on the sender's goroutine and must be cheap.
type FaultObserver func(ev FaultEvent)

// linkState carries a directed link's fault configuration and its own
// seeded RNG stream. Giving each link an independent stream (derived
// deterministically from the master seed and the endpoint pair) means the
// decision sequence on one link does not depend on how concurrent traffic
// on other links interleaves — the property the replay-equality tests pin.
type linkState struct {
	mu        sync.Mutex
	rng       *rand.Rand
	faults    Faults
	hasFaults bool
}

// SimNet is an in-process message network connecting replicas and clients.
// Delivery to each endpoint is sequential (one dispatcher goroutine per
// endpoint); cross-endpoint ordering is unspecified, and fault injection
// can drop, duplicate, delay and reorder individual messages — globally or
// per directed link.
type SimNet struct {
	mu        sync.RWMutex
	nodes     map[Endpoint]*simConn
	replicas  map[uint32]*simConn
	faults    Faults
	seed      int64
	links     map[[2]Endpoint]*linkState
	observers []Observer
	faultObs  FaultObserver
	blocked   map[[2]Endpoint]bool
	closed    bool
}

// NewSimNet creates an empty simulated network. The seed drives all fault
// randomness, making fault schedules reproducible.
func NewSimNet(seed int64) *SimNet {
	return &SimNet{
		nodes:    make(map[Endpoint]*simConn),
		replicas: make(map[uint32]*simConn),
		seed:     seed,
		links:    make(map[[2]Endpoint]*linkState),
		blocked:  make(map[[2]Endpoint]bool),
	}
}

// SetFaults installs the fault configuration for all links without a
// per-link override.
func (n *SimNet) SetFaults(f Faults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faults = f
}

// SetLinkFaults installs a fault configuration for the directed link
// from→to, overriding the global configuration on that link (including
// with a zero Faults, which makes the link perfect).
func (n *SimNet) SetLinkFaults(from, to Endpoint, f Faults) {
	ls := n.linkFor(from, to)
	ls.mu.Lock()
	ls.faults = f
	ls.hasFaults = true
	ls.mu.Unlock()
}

// ClearLinkFaults removes the per-link override on from→to; the link
// falls back to the global fault configuration.
func (n *SimNet) ClearLinkFaults(from, to Endpoint) {
	ls := n.linkFor(from, to)
	ls.mu.Lock()
	ls.faults = Faults{}
	ls.hasFaults = false
	ls.mu.Unlock()
}

// ClearAllLinkFaults removes every per-link override.
func (n *SimNet) ClearAllLinkFaults() {
	n.mu.RLock()
	states := make([]*linkState, 0, len(n.links))
	for _, ls := range n.links {
		states = append(states, ls)
	}
	n.mu.RUnlock()
	for _, ls := range states {
		ls.mu.Lock()
		ls.faults = Faults{}
		ls.hasFaults = false
		ls.mu.Unlock()
	}
}

// SetFaultObserver installs the (single) fault-decision observer. Pass nil
// to remove it.
func (n *SimNet) SetFaultObserver(o FaultObserver) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faultObs = o
}

// linkSeed derives a per-link RNG seed from the master seed and the
// directed endpoint pair with a splitmix64-style mix, so every link gets
// an independent but reproducible stream.
func linkSeed(seed int64, from, to Endpoint) int64 {
	z := uint64(seed)
	for _, e := range [2]Endpoint{from, to} {
		z += uint64(e.ID) | uint64(e.Kind)<<32 | 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return int64(z)
}

// linkFor returns (lazily creating) the state of the directed link
// from→to.
func (n *SimNet) linkFor(from, to Endpoint) *linkState {
	k := [2]Endpoint{from, to}
	n.mu.RLock()
	ls := n.links[k]
	n.mu.RUnlock()
	if ls != nil {
		return ls
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if ls = n.links[k]; ls == nil {
		ls = &linkState{rng: rand.New(rand.NewSource(linkSeed(n.seed, from, to)))}
		n.links[k] = ls
	}
	return ls
}

// AddObserver registers an observer for all traffic.
func (n *SimNet) AddObserver(o Observer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.observers = append(n.observers, o)
}

// Block cuts the link between a and b in both directions until Unblock.
func (n *SimNet) Block(a, b Endpoint) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[[2]Endpoint{a, b}] = true
	n.blocked[[2]Endpoint{b, a}] = true
}

// Unblock heals the link between a and b.
func (n *SimNet) Unblock(a, b Endpoint) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, [2]Endpoint{a, b})
	delete(n.blocked, [2]Endpoint{b, a})
}

// BlockOneWay cuts only the from→to direction of a link, modelling an
// asymmetric partition (from's messages vanish; to can still reach from).
func (n *SimNet) BlockOneWay(from, to Endpoint) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[[2]Endpoint{from, to}] = true
}

// UnblockOneWay heals only the from→to direction.
func (n *SimNet) UnblockOneWay(from, to Endpoint) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, [2]Endpoint{from, to})
}

// HealAll removes every directional block installed on the network.
func (n *SimNet) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for k := range n.blocked {
		delete(n.blocked, k)
	}
}

// Isolate blocks all links to and from e (a crashed or partitioned node).
func (n *SimNet) Isolate(e Endpoint) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for other := range n.nodes {
		if other != e {
			n.blocked[[2]Endpoint{e, other}] = true
			n.blocked[[2]Endpoint{other, e}] = true
		}
	}
}

// Join attaches an endpoint with its inbound handler and returns its Conn.
func (n *SimNet) Join(self Endpoint, h Handler) (Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	c := &simConn{
		net:   n,
		self:  self,
		h:     h,
		inbox: make(chan inboundMsg, 4096),
		done:  make(chan struct{}),
	}
	n.nodes[self] = c
	if self.Kind == KindReplica {
		n.replicas[self.ID] = c
	}
	go c.dispatch()
	return c, nil
}

// Close shuts down the network and all attached endpoints.
func (n *SimNet) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	for _, c := range n.nodes {
		c.closeLocked()
	}
}

type inboundMsg struct {
	from Endpoint
	data []byte
}

type simConn struct {
	net   *SimNet
	self  Endpoint
	h     Handler
	inbox chan inboundMsg

	closeOnce sync.Once
	done      chan struct{}
}

func (c *simConn) dispatch() {
	for {
		select {
		case <-c.done:
			return
		case m := <-c.inbox:
			c.h(m.from, m.data)
		}
	}
}

// Send implements Conn.
func (c *simConn) Send(to Endpoint, data []byte) error {
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	return c.net.deliver(c.self, to, data)
}

// Reachable reports whether a message sent to the endpoint right now
// would be delivered rather than silently dropped by a partition. The
// health probe prefers this over a fire-and-forget send: on a simulated
// network a blocked link swallows messages without an error (exactly like
// a real partition), so send success proves nothing about connectivity.
func (c *simConn) Reachable(to Endpoint) bool {
	select {
	case <-c.done:
		return false
	default:
	}
	c.net.mu.RLock()
	defer c.net.mu.RUnlock()
	if c.net.closed {
		return false
	}
	if _, ok := c.net.nodes[to]; !ok {
		return false
	}
	return !c.net.blocked[[2]Endpoint{c.self, to}]
}

// BroadcastReplicas implements Conn.
func (c *simConn) BroadcastReplicas(data []byte) error {
	c.net.mu.RLock()
	ids := make([]uint32, 0, len(c.net.replicas))
	for id := range c.net.replicas {
		if !(c.self.Kind == KindReplica && c.self.ID == id) {
			ids = append(ids, id)
		}
	}
	c.net.mu.RUnlock()
	for _, id := range ids {
		if err := c.Send(ReplicaEndpoint(id), data); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Conn.
func (c *simConn) Close() error {
	c.net.mu.Lock()
	defer c.net.mu.Unlock()
	c.closeLocked()
	delete(c.net.nodes, c.self)
	if c.self.Kind == KindReplica {
		delete(c.net.replicas, c.self.ID)
	}
	return nil
}

func (c *simConn) closeLocked() {
	c.closeOnce.Do(func() { close(c.done) })
}

// deliver applies observers and faults, then enqueues the message at the
// destination. Data is copied once on acceptance so senders may reuse
// buffers.
func (n *SimNet) deliver(from, to Endpoint, data []byte) error {
	n.mu.RLock()
	dst, ok := n.nodes[to]
	blocked := n.blocked[[2]Endpoint{from, to}]
	faults := n.faults
	observers := n.observers
	faultObs := n.faultObs
	closed := n.closed
	n.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	for _, o := range observers {
		o(from, to, data)
	}
	if !ok {
		return ErrUnknownEndpoint
	}
	if blocked {
		return nil // silently dropped, like a partition
	}

	// Fault decisions draw from the link's own seeded stream under the
	// link's own lock: concurrent traffic on other links cannot perturb
	// this link's decision sequence, and the draw is race-free.
	ls := n.linkFor(from, to)
	ls.mu.Lock()
	if ls.hasFaults {
		faults = ls.faults
	}
	drop := faults.DropProb > 0 && ls.rng.Float64() < faults.DropProb
	dup := faults.DupProb > 0 && ls.rng.Float64() < faults.DupProb
	extra := time.Duration(0)
	if faults.ReorderProb > 0 && ls.rng.Float64() < faults.ReorderProb && faults.Jitter > 0 {
		extra = time.Duration(ls.rng.Int63n(int64(faults.Jitter)))
	}
	ls.mu.Unlock()

	if faultObs != nil && faults != (Faults{}) {
		faultObs(FaultEvent{From: from, To: to, Drop: drop, Dup: dup, Delay: faults.Delay + extra})
	}
	if drop {
		return nil
	}
	msg := inboundMsg{from: from, data: append([]byte(nil), data...)}
	copies := 1
	if dup {
		copies = 2
	}
	delay := faults.Delay + extra
	for i := 0; i < copies; i++ {
		if delay > 0 {
			time.AfterFunc(delay, func() { dst.enqueue(msg) })
		} else {
			dst.enqueue(msg)
		}
	}
	return nil
}

func (c *simConn) enqueue(m inboundMsg) {
	select {
	case <-c.done:
	case c.inbox <- m:
	}
}
