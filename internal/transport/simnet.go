package transport

import (
	"math/rand"
	"sync"
	"time"
)

// Faults configures probabilistic link faults on a SimNet. Probabilities
// are in [0,1]. The zero value is a perfect network.
type Faults struct {
	// DropProb drops a message entirely.
	DropProb float64
	// DupProb delivers a message twice.
	DupProb float64
	// ReorderProb delays a message by a random extra jitter, letting later
	// messages overtake it.
	ReorderProb float64
	// Delay is the base one-way latency applied to every message.
	Delay time.Duration
	// Jitter is the maximum extra latency for reordered messages.
	Jitter time.Duration
}

// Observer sees every message accepted for delivery, before faults are
// applied. Used by confidentiality tests to assert that no plaintext ever
// crosses the wire. It must not retain or mutate data.
type Observer func(from, to Endpoint, data []byte)

// SimNet is an in-process message network connecting replicas and clients.
// Delivery to each endpoint is sequential (one dispatcher goroutine per
// endpoint); cross-endpoint ordering is unspecified, and fault injection
// can drop, duplicate, delay and reorder individual messages.
type SimNet struct {
	mu        sync.RWMutex
	nodes     map[Endpoint]*simConn
	replicas  map[uint32]*simConn
	faults    Faults
	rng       *rand.Rand
	rngMu     sync.Mutex
	observers []Observer
	blocked   map[[2]Endpoint]bool
	closed    bool
}

// NewSimNet creates an empty simulated network. The seed drives all fault
// randomness, making fault schedules reproducible.
func NewSimNet(seed int64) *SimNet {
	return &SimNet{
		nodes:    make(map[Endpoint]*simConn),
		replicas: make(map[uint32]*simConn),
		rng:      rand.New(rand.NewSource(seed)),
		blocked:  make(map[[2]Endpoint]bool),
	}
}

// SetFaults installs the fault configuration for all links.
func (n *SimNet) SetFaults(f Faults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faults = f
}

// AddObserver registers an observer for all traffic.
func (n *SimNet) AddObserver(o Observer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.observers = append(n.observers, o)
}

// Block cuts the link between a and b in both directions until Unblock.
func (n *SimNet) Block(a, b Endpoint) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[[2]Endpoint{a, b}] = true
	n.blocked[[2]Endpoint{b, a}] = true
}

// Unblock heals the link between a and b.
func (n *SimNet) Unblock(a, b Endpoint) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, [2]Endpoint{a, b})
	delete(n.blocked, [2]Endpoint{b, a})
}

// Isolate blocks all links to and from e (a crashed or partitioned node).
func (n *SimNet) Isolate(e Endpoint) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for other := range n.nodes {
		if other != e {
			n.blocked[[2]Endpoint{e, other}] = true
			n.blocked[[2]Endpoint{other, e}] = true
		}
	}
}

// Join attaches an endpoint with its inbound handler and returns its Conn.
func (n *SimNet) Join(self Endpoint, h Handler) (Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	c := &simConn{
		net:   n,
		self:  self,
		h:     h,
		inbox: make(chan inboundMsg, 4096),
		done:  make(chan struct{}),
	}
	n.nodes[self] = c
	if self.Kind == KindReplica {
		n.replicas[self.ID] = c
	}
	go c.dispatch()
	return c, nil
}

// Close shuts down the network and all attached endpoints.
func (n *SimNet) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	for _, c := range n.nodes {
		c.closeLocked()
	}
}

func (n *SimNet) random() *rand.Rand { return n.rng }

type inboundMsg struct {
	from Endpoint
	data []byte
}

type simConn struct {
	net   *SimNet
	self  Endpoint
	h     Handler
	inbox chan inboundMsg

	closeOnce sync.Once
	done      chan struct{}
}

func (c *simConn) dispatch() {
	for {
		select {
		case <-c.done:
			return
		case m := <-c.inbox:
			c.h(m.from, m.data)
		}
	}
}

// Send implements Conn.
func (c *simConn) Send(to Endpoint, data []byte) error {
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	return c.net.deliver(c.self, to, data)
}

// BroadcastReplicas implements Conn.
func (c *simConn) BroadcastReplicas(data []byte) error {
	c.net.mu.RLock()
	ids := make([]uint32, 0, len(c.net.replicas))
	for id := range c.net.replicas {
		if !(c.self.Kind == KindReplica && c.self.ID == id) {
			ids = append(ids, id)
		}
	}
	c.net.mu.RUnlock()
	for _, id := range ids {
		if err := c.Send(ReplicaEndpoint(id), data); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Conn.
func (c *simConn) Close() error {
	c.net.mu.Lock()
	defer c.net.mu.Unlock()
	c.closeLocked()
	delete(c.net.nodes, c.self)
	if c.self.Kind == KindReplica {
		delete(c.net.replicas, c.self.ID)
	}
	return nil
}

func (c *simConn) closeLocked() {
	c.closeOnce.Do(func() { close(c.done) })
}

// deliver applies observers and faults, then enqueues the message at the
// destination. Data is copied once on acceptance so senders may reuse
// buffers.
func (n *SimNet) deliver(from, to Endpoint, data []byte) error {
	n.mu.RLock()
	dst, ok := n.nodes[to]
	blocked := n.blocked[[2]Endpoint{from, to}]
	faults := n.faults
	observers := n.observers
	closed := n.closed
	n.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	for _, o := range observers {
		o(from, to, data)
	}
	if !ok {
		return ErrUnknownEndpoint
	}
	if blocked {
		return nil // silently dropped, like a partition
	}

	n.rngMu.Lock()
	drop := faults.DropProb > 0 && n.random().Float64() < faults.DropProb
	dup := faults.DupProb > 0 && n.random().Float64() < faults.DupProb
	extra := time.Duration(0)
	if faults.ReorderProb > 0 && n.random().Float64() < faults.ReorderProb && faults.Jitter > 0 {
		extra = time.Duration(n.random().Int63n(int64(faults.Jitter)))
	}
	n.rngMu.Unlock()

	if drop {
		return nil
	}
	msg := inboundMsg{from: from, data: append([]byte(nil), data...)}
	copies := 1
	if dup {
		copies = 2
	}
	delay := faults.Delay + extra
	for i := 0; i < copies; i++ {
		if delay > 0 {
			time.AfterFunc(delay, func() { dst.enqueue(msg) })
		} else {
			dst.enqueue(msg)
		}
	}
	return nil
}

func (c *simConn) enqueue(m inboundMsg) {
	select {
	case <-c.done:
	case c.inbox <- m:
	}
}
