package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Observer bundles the two observability surfaces a replica threads
// through its layers: the metrics registry and the lifecycle tracer. A
// nil *Observer disables everything — the accessors below return nil, and
// every instrument method is nil-safe.
type Observer struct {
	Reg    *Registry
	Tracer *Tracer
}

// NewObserver builds a registry plus a tracer recording every
// traceSample-th request.
func NewObserver(traceSample int) *Observer {
	return &Observer{Reg: NewRegistry(), Tracer: NewTracer(traceSample)}
}

// Registry returns the metrics registry, nil on a nil observer.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Trace returns the tracer, nil on a nil observer.
func (o *Observer) Trace() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// PeerHealth is one peer's reachability as seen from this replica.
type PeerHealth struct {
	ID        uint32 `json:"id"`
	Reachable bool   `json:"reachable"`
}

// Health is the /healthz payload: Healthy only when every peer answers
// the connectivity probe, all three compartments are alive, and the
// durability store has not failed. It deliberately flips on the FIRST
// unreachable peer — before quorum is lost — because an operator wants to
// repair degraded redundancy, not be told once the system is already
// stalled.
type Health struct {
	Healthy      bool            `json:"healthy"`
	Peers        []PeerHealth    `json:"peers,omitempty"`
	Compartments map[string]bool `json:"compartments"`
	WAL          string          `json:"wal"` // "ok", "off", or the sticky failure
}

// Source is what the introspection server scrapes — implemented by the
// replica facade so this package needs no knowledge of nodes.
type Source interface {
	Gather() []Sample
	StageStats() []StageStat
	Spans(limit int) []Span
	TraceEpoch() time.Time
	Health() Health
}

// Server is the opt-in HTTP introspection endpoint of one replica:
// /metrics (Prometheus text format), /healthz (JSON, 200/503) and
// /debug/trace (recent sampled spans as JSON).
type Server struct {
	src Source
	ln  net.Listener
	srv *http.Server
}

// NewServer builds a server scraping src; Start binds and serves.
func NewServer(addr string, src Source) *Server {
	mux := http.NewServeMux()
	s := &Server{src: src, srv: &http.Server{Addr: addr, Handler: mux}}
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/debug/trace", s.trace)
	return s
}

// Start binds the listen address (":0" picks a free port — see Addr) and
// serves in the background until Close.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.srv.Addr)
	if err != nil {
		return fmt.Errorf("obs: metrics listener: %w", err)
	}
	s.ln = ln
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	return nil
}

// Addr returns the bound listen address, empty before Start.
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server and releases the port.
func (s *Server) Close() {
	if s == nil || s.ln == nil {
		return
	}
	s.srv.Close() //nolint:errcheck
	s.ln = nil
}

// metrics renders every gathered sample in the Prometheus text exposition
// format, hand-rolled over stdlib: one "name value" line per series.
// Histogram-backed stage latencies are exported as summary-style quantile
// series rather than thousands of raw log buckets.
func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, sm := range s.src.Gather() {
		fmt.Fprintf(w, "%s %s\n", sm.Name, formatValue(sm.Value))
	}
	for _, st := range s.src.StageStats() {
		fmt.Fprintf(w, "%s %d\n", Label("splitbft_stage_spans_total", "stage", st.Stage), st.Count)
		fmt.Fprintf(w, "%s %d\n", Label("splitbft_stage_latency_ns", "stage", st.Stage, "quantile", "0.5"), int64(st.P50))
		fmt.Fprintf(w, "%s %d\n", Label("splitbft_stage_latency_ns", "stage", st.Stage, "quantile", "0.99"), int64(st.P99))
	}
}

// formatValue renders integral floats without an exponent or trailing
// zeros — counters should read as counts.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// healthz answers 200 with the Health JSON when healthy, 503 otherwise.
func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	h := s.src.Health()
	w.Header().Set("Content-Type", "application/json")
	if !h.Healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h) //nolint:errcheck
}

// traceSpan is the JSON form of one completed span: stage-name →
// nanosecond offset from the epoch. Payloads never appear — the tracer
// records timestamps and protocol identifiers only.
type traceSpan struct {
	Client uint32           `json:"client"`
	TS     uint64           `json:"ts"`
	Seq    uint64           `json:"seq,omitempty"`
	Read   bool             `json:"read,omitempty"`
	Stages map[string]int64 `json:"stages"`
}

// trace serves the recent completed spans (?limit=N, default 256).
func (s *Server) trace(w http.ResponseWriter, r *http.Request) {
	limit := 256
	if q := r.URL.Query().Get("limit"); q != "" {
		if n, err := strconv.Atoi(q); err == nil && n > 0 {
			limit = n
		}
	}
	spans := s.src.Spans(limit)
	out := struct {
		Epoch time.Time   `json:"epoch"`
		Spans []traceSpan `json:"spans"`
	}{Epoch: s.src.TraceEpoch(), Spans: make([]traceSpan, 0, len(spans))}
	for i := range spans {
		sp := &spans[i]
		out.Spans = append(out.Spans, traceSpan{
			Client: sp.Key.Client,
			TS:     sp.Key.TS,
			Seq:    sp.Seq,
			Read:   sp.Read,
			Stages: sp.Stages(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out) //nolint:errcheck
}
