package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestMetricRegistryGatherSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Add(3)
	r.Counter("alpha").Inc()
	r.Gauge("mid").Set(-7)
	r.Collect(func(emit func(string, float64)) {
		emit("beta", 2.5)
	})
	got := r.Gather()
	want := []Sample{{"alpha", 1}, {"beta", 2.5}, {"mid", -7}, {"zeta", 3}}
	if len(got) != len(want) {
		t.Fatalf("gathered %d samples, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestMetricRegistryResetRunsHooks(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	c.Add(41)
	hooked := 0
	r.OnReset(func() { hooked++ })
	r.Reset()
	if c.Value() != 0 {
		t.Fatalf("counter survived reset: %d", c.Value())
	}
	if hooked != 1 {
		t.Fatalf("reset hook ran %d times, want 1", hooked)
	}
	// DropCollectors removes the hook with the collectors: a restarted
	// replica re-registers both, and a stale hook would reset freed state.
	r.DropCollectors()
	r.Reset()
	if hooked != 1 {
		t.Fatalf("dropped hook still ran (%d)", hooked)
	}
}

func TestMetricLabelRendering(t *testing.T) {
	if got := Label("a_total"); got != "a_total" {
		t.Fatalf("unlabeled = %q", got)
	}
	got := Label("a_total", "compartment", "preparation", "k", "v")
	want := `a_total{compartment="preparation",k="v"}`
	if got != want {
		t.Fatalf("labeled = %q, want %q", got, want)
	}
}

// TestMetricNilInstrumentsZeroAlloc pins the off-switch contract: with
// observability disabled every hook is a method on a nil receiver, and the
// request hot path must not allocate for it.
func TestMetricNilInstrumentsZeroAlloc(t *testing.T) {
	var c *Counter
	var g *Gauge
	var reg *Registry
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(9)
		g.Add(-1)
		reg.Counter("x").Inc()
		tr.Begin(1, 2, false)
		tr.Stamp(1, 2, StageEnqueue)
		tr.Link(7, 1, 2)
		tr.StampSeq(7, StagePrepareCert)
		tr.CommitVote(7, 3)
		tr.StampActiveReads(StageReadIndex)
		tr.Finish(1, 2, StageReply)
		tr.OnViewChange()
	})
	if allocs != 0 {
		t.Fatalf("disabled observability hot path allocates %.1f per op, want 0", allocs)
	}
}

func TestTracerWriteChainComplete(t *testing.T) {
	tr := NewTracer(1)
	tr.Begin(9, 100, false)
	tr.Stamp(9, 100, StageEnqueue)
	tr.Link(5, 9, 100)
	tr.StampSeq(5, StagePrepareCert)
	for i := 0; i < 3; i++ {
		tr.CommitVote(5, 3)
	}
	tr.Stamp(9, 100, StageExecute)
	tr.Finish(9, 100, StageReply)

	spans := tr.Spans(10)
	if len(spans) != 1 {
		t.Fatalf("got %d finished spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Seq != 5 || sp.Read {
		t.Fatalf("span identity wrong: %+v", sp)
	}
	for s := StageClassify; s <= StageReply; s++ {
		if !sp.Stamped(s) {
			t.Fatalf("stage %v missing from %v", s, sp.Stages())
		}
	}
	stats := tr.StageStats()
	var names []string
	for _, st := range stats {
		names = append(names, st.Stage)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"enqueue", "preprepare", "prepare-cert", "commit", "execute", "reply", "end-to-end"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("stage stats missing %q: %v", want, joined)
		}
	}
	if begun, finished, dropped := tr.Counts(); begun != 1 || finished != 1 || dropped != 0 {
		t.Fatalf("counts = %d/%d/%d, want 1/1/0", begun, finished, dropped)
	}
}

// TestTracerCommitOutrunsLink covers the recovering-replica order: the
// commit quorum is observed before the PrePrepare links the span, and the
// late Link must still pick up the Commit stamp via the -1 sentinel.
func TestTracerCommitOutrunsLink(t *testing.T) {
	tr := NewTracer(1)
	tr.Begin(1, 1, false)
	for i := 0; i < 3; i++ {
		tr.CommitVote(8, 3)
	}
	tr.Link(8, 1, 1)
	tr.Finish(1, 1, StageReply)
	sp := tr.Spans(1)[0]
	if !sp.Stamped(StageCommit) {
		t.Fatalf("late-linked span lost its commit stamp: %v", sp.Stages())
	}
}

func TestTracerSamplingAndRetransmits(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 9; i++ {
		tr.Begin(1, uint64(100+i), false)
	}
	if begun, _, _ := tr.Counts(); begun != 3 {
		t.Fatalf("sample=3 over 9 arrivals begun %d spans, want 3", begun)
	}
	// A retransmit of an in-flight request must not restart its span.
	tr2 := NewTracer(1)
	tr2.Begin(2, 7, false)
	tr2.Stamp(2, 7, StageEnqueue)
	tr2.Begin(2, 7, false)
	tr2.Finish(2, 7, StageReply)
	sp := tr2.Spans(1)[0]
	if !sp.Stamped(StageEnqueue) {
		t.Fatal("retransmitted Begin restarted the span")
	}
}

func TestTracerViewChangeVoidsVotes(t *testing.T) {
	tr := NewTracer(1)
	tr.Begin(1, 1, false)
	tr.Link(4, 1, 1)
	tr.CommitVote(4, 3)
	tr.CommitVote(4, 3)
	tr.OnViewChange() // old-view votes cannot certify the new view
	tr.CommitVote(4, 3)
	tr.CommitVote(4, 3)
	tr.Finish(1, 1, StageReply)
	if sp := tr.Spans(1)[0]; sp.Stamped(StageCommit) {
		t.Fatal("two post-view-change votes reached a quorum of three")
	}
}

func TestTracerReadChain(t *testing.T) {
	tr := NewTracer(1)
	tr.Begin(3, 50, true)
	tr.StampActiveReads(StageReadIndex)
	tr.Finish(3, 50, StageReadServe)
	sp := tr.Spans(1)[0]
	if !sp.Read {
		t.Fatal("read span not marked read")
	}
	for _, s := range []Stage{StageReadArrive, StageReadIndex, StageReadServe} {
		if !sp.Stamped(s) {
			t.Fatalf("read stage %v missing: %v", s, sp.Stages())
		}
	}
	var sawReadE2E bool
	for _, st := range tr.StageStats() {
		if st.Stage == "end-to-end-read" {
			sawReadE2E = true
		}
	}
	if !sawReadE2E {
		t.Fatal("no end-to-end-read row in stage stats")
	}
}

// fakeSource feeds the HTTP server deterministic data.
type fakeSource struct {
	healthy bool
	tracer  *Tracer
}

func (f *fakeSource) Gather() []Sample {
	return []Sample{{Name: `x_total{compartment="preparation"}`, Value: 42}, {Name: "y_ratio", Value: 0.5}}
}
func (f *fakeSource) StageStats() []StageStat { return f.tracer.StageStats() }
func (f *fakeSource) Spans(limit int) []Span  { return f.tracer.Spans(limit) }
func (f *fakeSource) TraceEpoch() time.Time   { return f.tracer.Epoch() }
func (f *fakeSource) Health() Health {
	return Health{
		Healthy:      f.healthy,
		Peers:        []PeerHealth{{ID: 1, Reachable: f.healthy}},
		Compartments: map[string]bool{"preparation": true, "confirmation": true, "execution": true},
		WAL:          "off",
	}
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	tr := NewTracer(1)
	tr.Begin(1, 1, false)
	tr.Link(2, 1, 1)
	tr.Finish(1, 1, StageReply)
	src := &fakeSource{healthy: true, tracer: tr}
	srv := NewServer("127.0.0.1:0", src)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	body, ct, code := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "x_total{compartment=\"preparation\"} 42\n") {
		t.Fatalf("/metrics missing integer-rendered counter:\n%s", body)
	}
	if !strings.Contains(body, "y_ratio 0.5\n") {
		t.Fatalf("/metrics missing float sample:\n%s", body)
	}
	if !strings.Contains(body, `splitbft_stage_spans_total{stage="preprepare"}`) {
		t.Fatalf("/metrics missing stage summary:\n%s", body)
	}

	if _, _, code := httpGet(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthy /healthz status %d, want 200", code)
	}
	src.healthy = false
	body, _, code = httpGet(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy /healthz status %d, want 503", code)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz body not JSON: %v\n%s", err, body)
	}
	if h.Healthy || len(h.Peers) != 1 || h.Peers[0].Reachable {
		t.Fatalf("healthz payload wrong: %+v", h)
	}

	body, ct, code = httpGet(t, base+"/debug/trace?limit=5")
	if code != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/debug/trace status %d type %q", code, ct)
	}
	var out struct {
		Epoch time.Time `json:"epoch"`
		Spans []struct {
			Client uint32           `json:"client"`
			Seq    uint64           `json:"seq"`
			Stages map[string]int64 `json:"stages"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("trace body not JSON: %v\n%s", err, body)
	}
	if len(out.Spans) != 1 || out.Spans[0].Seq != 2 || out.Spans[0].Client != 1 {
		t.Fatalf("trace spans wrong: %+v", out.Spans)
	}
	if _, ok := out.Spans[0].Stages["preprepare"]; !ok {
		t.Fatalf("trace span missing preprepare stage: %+v", out.Spans[0].Stages)
	}
}

func httpGet(t *testing.T, url string) (body, contentType string, status int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", url, err)
	}
	return string(b), resp.Header.Get("Content-Type"), resp.StatusCode
}

func TestMetricFormatValue(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{{42, "42"}, {0, "0"}, {1e9, "1000000000"}, {0.25, "0.25"}} {
		if got := formatValue(tc.in); got != tc.want {
			t.Fatalf("formatValue(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
