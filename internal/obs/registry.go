// Package obs is the unified observability layer: a dependency-free
// metrics registry, a request-lifecycle tracer stamped at the untrusted
// compartment boundaries, and an HTTP introspection server exposing both.
//
// Design constraints, in order:
//
//  1. Zero cost when off. Every hook in the hot path is a method on a
//     possibly-nil receiver that returns immediately; with observability
//     disabled the compiled code is a nil check.
//  2. Allocation-free metrics. Counters and gauges are single atomics;
//     recording never allocates. Aggregation (Gather) happens on the
//     scrape path, not the request path.
//  3. Enclaves stay opaque. Everything in this package runs in the
//     untrusted environment and observes only what the environment can
//     already see: message arrivals, queue hand-offs and replies. No
//     payload bytes — which are ciphertext in confidential mode anyway —
//     ever enter a metric label or a trace.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe on a
// nil receiver (no-ops), so call sites need no "is observability on"
// branching of their own.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is a metric that can go up and down. Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Sample is one gathered metric reading.
type Sample struct {
	Name  string // fully rendered series name, labels included
	Value float64
}

// CollectFunc lets an existing stat surface feed the registry without
// migrating its internal counters: at gather time it emits one sample per
// series. Collectors run on the scrape path only, so they may take locks
// and read snapshot structs freely.
type CollectFunc func(emit func(name string, value float64))

// Registry holds every metric of one replica. Counter and Gauge hand out
// live instruments for hot-path recording; Collect registers pull-style
// sources for stats that already exist elsewhere (enclave ecall counters,
// verifier stats, store stats). Gather merges both into one sorted
// snapshot.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	collectors []CollectFunc
	resets     []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Safe on a nil registry (returns a nil, no-op counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Safe on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Collect registers a pull-style sample source. Safe on a nil registry.
func (r *Registry) Collect(fn CollectFunc) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// OnReset registers a hook run by Reset, for stat surfaces that live
// outside the registry (caches, verifiers, tracers). Safe on a nil
// registry.
func (r *Registry) OnReset(fn func()) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resets = append(r.resets, fn)
}

// DropCollectors removes every registered collector and reset hook,
// keeping the live counters and gauges. A replica restart re-registers
// its collectors against the same registry; without this, the old
// replica's closures would keep emitting stale readings alongside the new
// ones.
func (r *Registry) DropCollectors() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = nil
	r.resets = nil
}

// Gather snapshots every registered series, sorted by name. A collector
// emitting a name that collides with a direct counter/gauge simply yields
// two samples; exporters render both (Prometheus treats that as a scrape
// error, so collectors use distinct names by convention).
func (r *Registry) Gather() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Sample, 0, len(r.counters)+len(r.gauges)+16)
	for name, c := range r.counters {
		out = append(out, Sample{Name: name, Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Sample{Name: name, Value: float64(g.Value())})
	}
	collectors := append([]CollectFunc(nil), r.collectors...)
	r.mu.Unlock()
	// Collectors run outside the registry lock: they take their own locks
	// (enclave stats, store stats) and must not order against ours.
	emit := func(name string, value float64) {
		out = append(out, Sample{Name: name, Value: value})
	}
	for _, fn := range collectors {
		fn(emit)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reset zeroes every counter and gauge and runs the registered reset
// hooks — one atomic epoch boundary for all stat surfaces, so ratios
// computed after a reset (cache hit rate, signature CPU fraction) never
// mix numerators and denominators from different epochs.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.Set(0)
	}
	resets := append([]func(){}, r.resets...)
	r.mu.Unlock()
	for _, fn := range resets {
		fn()
	}
}

// Label renders a series name with labels in Prometheus text form:
// Label("splitbft_ecalls_total", "compartment", "preparation") returns
// `splitbft_ecalls_total{compartment="preparation"}`. Call it at
// registration time and keep the returned string — rendering per scrape
// (let alone per request) is wasted work.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(kv[i+1])
		b.WriteByte('"')
	}
	b.WriteString("}")
	return b.String()
}
