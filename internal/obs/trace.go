package obs

import (
	"sync"
	"time"
)

// Stage identifies one point in a request's lifecycle where the untrusted
// environment can stamp a timestamp. Write-path requests walk Classify
// through Reply; lease-served reads walk ReadArrive through ReadServe.
// Everything between two stamps — including all enclave-internal work — is
// attributed to the later stage: the environment sees requests enter and
// leave compartments, never what happens inside them.
type Stage uint8

// Lifecycle stages, in chain order.
const (
	// StageClassify: the request arrived and was parsed, deduplicated and
	// classified by the untrusted broker.
	StageClassify Stage = iota
	// StageEnqueue: the request was batched and framed into the
	// Preparation compartment's ecall queue (the proposal hand-off).
	StageEnqueue
	// StagePrePrepare: the PrePrepare carrying the request's batch was
	// observed — the proposal holds an agreement sequence number.
	StagePrePrepare
	// StagePrepareCert: this replica's own Commit left the Confirmation
	// compartment, proving it assembled a prepare certificate.
	StagePrepareCert
	// StageCommit: the n−f-th Commit for the batch's sequence number was
	// observed — a commit certificate exists.
	StageCommit
	// StageExecute: the Execution compartment emitted the client reply —
	// the operation has been applied.
	StageExecute
	// StageReply: the reply was handed to the transport.
	StageReply
	// StageReadArrive: a lease-path ReadRequest arrived at the broker.
	StageReadArrive
	// StageReadIndex: a read-index confirmation round was observed while
	// the read was pending (linearizable leased reads only).
	StageReadIndex
	// StageReadServe: the ReadReply was handed to the transport.
	StageReadServe

	numStages
)

// String returns the stage's short name, used in tables and trace JSON.
func (s Stage) String() string {
	switch s {
	case StageClassify:
		return "classify"
	case StageEnqueue:
		return "enqueue"
	case StagePrePrepare:
		return "preprepare"
	case StagePrepareCert:
		return "prepare-cert"
	case StageCommit:
		return "commit"
	case StageExecute:
		return "execute"
	case StageReply:
		return "reply"
	case StageReadArrive:
		return "read-arrive"
	case StageReadIndex:
		return "read-index"
	case StageReadServe:
		return "read-serve"
	}
	return "unknown"
}

// SpanKey identifies one request: client requests are unique per
// (ClientID, Timestamp) — the same pair the protocol's exactly-once
// semantics key on.
type SpanKey struct {
	Client uint32
	TS     uint64
}

// Span is one request's recorded lifecycle. T holds nanosecond offsets
// from the tracer's epoch, one per stage; 0 means the stage was never
// observed on this replica (a follower, for example, never classifies the
// requests the primary batches).
type Span struct {
	Key  SpanKey
	Seq  uint64 // agreement sequence number, once known
	Read bool   // lease-path read chain
	T    [numStages]int64
}

// Stamped reports whether stage s was observed.
func (sp *Span) Stamped(s Stage) bool { return sp.T[s] != 0 }

// Stages returns the observed stages as a name → nanosecond-offset map,
// for JSON export. Allocates; not for the hot path.
func (sp *Span) Stages() map[string]int64 {
	m := make(map[string]int64, len(sp.T))
	for i, t := range sp.T {
		if t != 0 {
			m[Stage(i).String()] = t
		}
	}
	return m
}

// firstLast returns the earliest and latest stamped offsets of the span's
// chain (write or read), or ok=false if fewer than two stages stamped.
func (sp *Span) firstLast() (first, last int64, ok bool) {
	lo, hi := sp.chain()
	for i := lo; i <= hi; i++ {
		if sp.T[i] == 0 {
			continue
		}
		if first == 0 {
			first = sp.T[i]
		}
		last = sp.T[i]
	}
	return first, last, last > first
}

// chain returns the inclusive stage range of the span's lifecycle chain.
func (sp *Span) chain() (Stage, Stage) {
	if sp.Read {
		return StageReadArrive, StageReadServe
	}
	return StageClassify, StageReply
}

const (
	// maxActive bounds the in-flight span table: a stalled system must not
	// let the tracer grow without bound. Arrivals beyond the cap are
	// counted as dropped, not recorded.
	maxActive = 4096
	// doneRing is the completed-span ring capacity served by /debug/trace.
	doneRing = 1024
	// sweepAt triggers a stale-entry sweep of the seq index: view changes
	// re-propose batches under new sequence numbers and abandon the old
	// ones, so the index sheds entries whose spans are no longer live.
	sweepAt = 4096
)

// Tracer records sampled request-lifecycle spans. All stamping methods are
// nil-safe no-ops, so disabled tracing costs one nil check per hook. A
// single mutex guards the span tables: tracing is opt-in and sampled, and
// correctness of cross-stage linking matters more than shaving the last
// contention here.
type Tracer struct {
	epoch  time.Time
	sample uint64 // record every sample-th request; 1 = all

	mu       sync.Mutex
	arrivals uint64
	active   map[SpanKey]*Span
	bySeq    map[uint64][]SpanKey
	commits  map[uint64]int
	done     [doneRing]Span
	doneLen  int
	doneNext int
	seg      [numStages]Histogram
	e2e      Histogram // write chain, first stamp → reply
	readE2E  Histogram // read chain, arrive → serve
	begun    uint64
	finished uint64
	dropped  uint64
}

// NewTracer returns a tracer recording every sample-th request (sample ≤ 1
// records everything).
func NewTracer(sample int) *Tracer {
	if sample < 1 {
		sample = 1
	}
	return &Tracer{
		epoch:   time.Now(),
		sample:  uint64(sample),
		active:  make(map[SpanKey]*Span),
		bySeq:   make(map[uint64][]SpanKey),
		commits: make(map[uint64]int),
	}
}

func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

// Begin opens a span for a newly arrived request, stamping Classify (or
// ReadArrive for lease-path reads). Sampling and the active-table cap are
// decided here; every later stamp on an unsampled request is a map miss.
func (t *Tracer) Begin(client uint32, ts uint64, read bool) {
	if t == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.arrivals++
	if (t.arrivals-1)%t.sample != 0 {
		return
	}
	key := SpanKey{Client: client, TS: ts}
	if sp := t.active[key]; sp != nil {
		return // retransmission of an in-flight request
	}
	if len(t.active) >= maxActive {
		t.dropped++
		return
	}
	sp := &Span{Key: key, Read: read}
	if read {
		sp.T[StageReadArrive] = now
	} else {
		sp.T[StageClassify] = now
	}
	t.active[key] = sp
	t.begun++
}

// Stamp records stage s for an in-flight request, if it is being traced.
// Later stamps of the same stage overwrite earlier ones: a view change
// re-proposes batches, and the span should describe the attempt that
// actually committed.
func (t *Tracer) Stamp(client uint32, ts uint64, s Stage) {
	if t == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if sp := t.active[SpanKey{Client: client, TS: ts}]; sp != nil {
		sp.T[s] = now
	}
}

// Link associates an in-flight request with an agreement sequence number
// and stamps PrePrepare — called when the untrusted side observes the
// PrePrepare carrying the request's batch. Re-linking under a new sequence
// number (view-change re-proposal) re-stamps and re-indexes the span.
func (t *Tracer) Link(seq uint64, client uint32, ts uint64) {
	if t == nil {
		return
	}
	now := t.now()
	key := SpanKey{Client: client, TS: ts}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := t.active[key]
	if sp == nil {
		return
	}
	sp.Seq = seq
	sp.T[StagePrePrepare] = now
	t.bySeq[seq] = append(t.bySeq[seq], key)
	// Commits can outrun the PrePrepare on a recovering or partitioned
	// replica; if the quorum already arrived, stamp Commit now rather than
	// losing the stage.
	if t.commits[seq] < 0 && sp.T[StageCommit] == 0 {
		if sp.T[StagePrepareCert] == 0 {
			sp.T[StagePrepareCert] = now
		}
		sp.T[StageCommit] = now
	}
	if len(t.bySeq) > sweepAt {
		t.sweepLocked()
	}
}

// StampSeq stamps stage s on every in-flight request linked to seq.
func (t *Tracer) StampSeq(seq uint64, s Stage) {
	if t == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stampSeqLocked(seq, s, now)
}

func (t *Tracer) stampSeqLocked(seq uint64, s Stage, now int64) {
	for _, key := range t.bySeq[seq] {
		if sp := t.active[key]; sp != nil {
			sp.T[s] = now
		}
	}
}

// CommitVote counts one observed Commit for seq; when the count reaches
// need (the commit quorum, n−f), every linked span gets its Commit stamp.
// A negative stored count marks "quorum already reached" so spans linked
// afterwards still pick the stage up (see Link).
func (t *Tracer) CommitVote(seq uint64, need int) {
	if t == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.commits[seq]
	if n < 0 {
		return // quorum already stamped
	}
	n++
	if n < need {
		t.commits[seq] = n
		return
	}
	t.commits[seq] = -1
	// A commit quorum proves prepare certificates existed cluster-wide,
	// but this replica's own Commit — the event that stamps PrepareCert —
	// may never leave its Confirmation compartment when pipelined peer
	// commits outran its prepare processing. Backfill the stage so a
	// committed request still yields a complete chain; the zero-width
	// prepare-cert→commit segment is honest about what was observed.
	for _, key := range t.bySeq[seq] {
		if sp := t.active[key]; sp != nil && sp.T[StagePrepareCert] == 0 {
			sp.T[StagePrepareCert] = now
		}
	}
	t.stampSeqLocked(seq, StageCommit, now)
}

// StampActiveReads stamps stage s on every in-flight read span that has
// not yet reached it. Read-index confirmation rounds are batched over all
// pending reads inside the Execution enclave, so the environment cannot
// attribute a round to one request — it attributes the round to every read
// it finds pending, which is exactly the set the round confirms.
func (t *Tracer) StampActiveReads(s Stage) {
	if t == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sp := range t.active {
		if sp.Read && sp.T[s] == 0 {
			sp.T[s] = now
		}
	}
}

// Finish stamps the terminal stage (Reply or ReadServe), folds the span's
// per-stage deltas into the stage histograms and retires it into the
// completed ring.
func (t *Tracer) Finish(client uint32, ts uint64, s Stage) {
	if t == nil {
		return
	}
	now := t.now()
	key := SpanKey{Client: client, TS: ts}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := t.active[key]
	if sp == nil {
		return
	}
	sp.T[s] = now
	delete(t.active, key)
	t.unlinkLocked(sp.Seq, key)
	t.recordLocked(sp)
	t.done[t.doneNext] = *sp
	t.doneNext = (t.doneNext + 1) % doneRing
	if t.doneLen < doneRing {
		t.doneLen++
	}
	t.finished++
	if len(t.active) == 0 {
		// Quiescent point: drop whatever the view-change churn left in
		// the seq index wholesale instead of sweeping entry by entry.
		if len(t.bySeq) > 0 {
			t.bySeq = make(map[uint64][]SpanKey)
		}
		if len(t.commits) > 0 {
			t.commits = make(map[uint64]int)
		}
	}
}

// recordLocked folds one finished span into the stage histograms. Each
// stage's histogram records the time from the previous observed stage —
// so a follower span missing Classify/Enqueue still contributes its
// PrePrepare→Reply segments, and the segments always sum to the span's
// observed end-to-end time.
func (t *Tracer) recordLocked(sp *Span) {
	lo, hi := sp.chain()
	prev := int64(0)
	for i := lo; i <= hi; i++ {
		ts := sp.T[i]
		if ts == 0 {
			continue
		}
		if prev != 0 {
			d := ts - prev
			if d < 0 {
				d = 0 // re-stamped across a view change; clamp
			}
			t.seg[i].Record(time.Duration(d))
		}
		prev = ts
	}
	if first, last, ok := sp.firstLast(); ok {
		if sp.Read {
			t.readE2E.Record(time.Duration(last - first))
		} else {
			t.e2e.Record(time.Duration(last - first))
		}
	}
}

// unlinkLocked removes key from seq's index entry, dropping the entry
// (and its commit count) when it empties.
func (t *Tracer) unlinkLocked(seq uint64, key SpanKey) {
	keys := t.bySeq[seq]
	for i, k := range keys {
		if k == key {
			keys[i] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
			break
		}
	}
	if len(keys) == 0 {
		delete(t.bySeq, seq)
		delete(t.commits, seq)
	} else {
		t.bySeq[seq] = keys
	}
}

// sweepLocked drops seq-index entries whose spans have all retired —
// sequence numbers abandoned by view-change re-proposals.
func (t *Tracer) sweepLocked() {
	for seq, keys := range t.bySeq {
		live := keys[:0]
		for _, k := range keys {
			if _, ok := t.active[k]; ok {
				live = append(live, k)
			}
		}
		if len(live) == 0 {
			delete(t.bySeq, seq)
			delete(t.commits, seq)
		} else {
			t.bySeq[seq] = live
		}
	}
}

// OnViewChange voids the pending commit-vote counts: votes from the old
// view cannot certify a sequence number in the new one. In-flight spans
// stay — their requests will be re-proposed and re-stamped.
func (t *Tracer) OnViewChange() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.commits) > 0 {
		t.commits = make(map[uint64]int)
	}
}

// StageStat summarizes one lifecycle stage: Count spans passed through it,
// and the latency columns describe the time spent reaching it from the
// previous observed stage.
type StageStat struct {
	Stage string
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// StageStats snapshots the per-stage latency breakdown of every finished
// span, ending with the end-to-end rows. Stages never observed are
// omitted.
func (t *Tracer) StageStats() []StageStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageStat, 0, numStages+2)
	for i := range t.seg {
		h := &t.seg[i]
		if h.Count() == 0 {
			continue
		}
		out = append(out, statFrom(Stage(i).String(), h))
	}
	if t.e2e.Count() > 0 {
		out = append(out, statFrom("end-to-end", &t.e2e))
	}
	if t.readE2E.Count() > 0 {
		out = append(out, statFrom("end-to-end-read", &t.readE2E))
	}
	return out
}

func statFrom(name string, h *Histogram) StageStat {
	return StageStat{
		Stage: name,
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// Spans returns up to limit recently completed spans, oldest first.
func (t *Tracer) Spans(limit int) []Span {
	if t == nil || limit <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.doneLen
	if n > limit {
		n = limit
	}
	out := make([]Span, 0, n)
	start := t.doneNext - n
	if start < 0 {
		start += doneRing
	}
	for i := 0; i < n; i++ {
		out = append(out, t.done[(start+i)%doneRing])
	}
	return out
}

// Counts returns how many spans were begun, finished and dropped (at the
// active-table cap) since the last reset.
func (t *Tracer) Counts() (begun, finished, dropped uint64) {
	if t == nil {
		return 0, 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.begun, t.finished, t.dropped
}

// Epoch returns the wall-clock instant span offsets are relative to.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Reset drops all spans, counts and histograms. The epoch is kept: spans
// stamped concurrently with a reset must not go negative.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.arrivals, t.begun, t.finished, t.dropped = 0, 0, 0, 0
	t.active = make(map[SpanKey]*Span)
	t.bySeq = make(map[uint64][]SpanKey)
	t.commits = make(map[uint64]int)
	t.doneLen, t.doneNext = 0, 0
	for i := range t.seg {
		t.seg[i].Reset()
	}
	t.e2e.Reset()
	t.readE2E.Reset()
}
