package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram must read as all zeros")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.Record(7 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 7*time.Millisecond || got > time.Duration(float64(7*time.Millisecond)*1.02) {
			t.Fatalf("Quantile(%v) = %v, want ~7ms within bucket error", q, got)
		}
	}
	if h.Max() != 7*time.Millisecond || h.Min() != 7*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

// TestHistogramQuantileAccuracy checks the log-bucket quantiles against
// exact sorted-slice quantiles on a broad random distribution: the error
// bound is the sub-bucket resolution (~1.6%), conservative side only.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	n := 50000
	vals := make([]int64, n)
	for i := range vals {
		// Log-uniform over ~6 orders of magnitude: 1µs .. ~1s.
		v := int64(float64(time.Microsecond) * math.Pow(10, rng.Float64()*6))
		vals[i] = v
		h.Record(time.Duration(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		idx := int(q*float64(n)) - 1
		if idx < 0 {
			idx = 0
		}
		exact := vals[idx]
		got := int64(h.Quantile(q))
		// Upper-edge reporting: got >= exact (never flattering) and within
		// one sub-bucket (~1.6%) plus rank-rounding slack.
		if got < exact {
			t.Fatalf("q%.3f: histogram %d below exact %d — quantiles must be conservative", q, got, exact)
		}
		if float64(got) > float64(exact)*1.05 {
			t.Fatalf("q%.3f: histogram %d exceeds exact %d by more than 5%%", q, got, exact)
		}
	}
}

// TestHistogramMergeEqualsCombined: merging two histograms must be exact —
// identical buckets, counts, min/max/mean and quantiles as one histogram
// fed both streams.
func TestHistogramMergeEqualsCombined(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b, both Histogram
	for i := 0; i < 10000; i++ {
		d := time.Duration(rng.Int63n(int64(300 * time.Millisecond)))
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
		both.Record(d)
	}
	a.Merge(&b)
	if a.Count() != both.Count() {
		t.Fatalf("merged count %d != combined %d", a.Count(), both.Count())
	}
	if a.Min() != both.Min() || a.Max() != both.Max() || a.Mean() != both.Mean() {
		t.Fatalf("merged min/max/mean diverge: %v/%v/%v vs %v/%v/%v",
			a.Min(), a.Max(), a.Mean(), both.Min(), both.Max(), both.Mean())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Fatalf("q%.3f: merged %v != combined %v", q, a.Quantile(q), both.Quantile(q))
		}
	}
}

func TestHistogramMergeIntoEmpty(t *testing.T) {
	var a, b Histogram
	b.Record(5 * time.Millisecond)
	b.Record(50 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 2 || a.Min() != 5*time.Millisecond || a.Max() != 50*time.Millisecond {
		t.Fatalf("merge into empty lost state: count=%d min=%v max=%v", a.Count(), a.Min(), a.Max())
	}
	// Merging an empty histogram must be a no-op.
	var empty Histogram
	before := a.Quantile(0.5)
	a.Merge(&empty)
	if a.Count() != 2 || a.Quantile(0.5) != before {
		t.Fatal("merging an empty histogram changed state")
	}
}

// TestBucketIndexMonotonic pins the bucket function: indices are monotonic
// in the value and every bucket's upper edge is ≥ the values mapped to it.
func TestBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<40 + 12345, 1 << 62} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d: not monotonic", v, idx, prev)
		}
		if upper := bucketUpper(idx); upper < v {
			t.Fatalf("bucketUpper(%d) = %d < value %d", idx, upper, v)
		}
		prev = idx
	}
}
