package obs

import (
	"math"
	"math/bits"
	"time"
)

// The histogram is HdrHistogram-style: values (latencies in nanoseconds)
// are binned into power-of-two octaves, each octave subdivided into
// 2^subBucketBits linear sub-buckets. Quantile lookups therefore carry at
// most 2^-subBucketBits ≈ 1.6% relative error while the whole recorder is
// one fixed 4 KiB-entry array — no per-sample allocation, O(1) record,
// trivially mergeable across workers. Recording is O(1) and lock-free from
// the owner's perspective; concurrent use goes through per-worker
// histograms merged after the run (see the load generator) or behind the
// tracer's lock.
const (
	subBucketBits = 6 // 64 sub-buckets per octave: ≤ ~1.6% relative error
	subBuckets    = 1 << subBucketBits
	// histBuckets covers the full int64 nanosecond range: values below
	// subBuckets map 1:1, every further octave adds subBuckets entries.
	histBuckets = (64 - subBucketBits) * subBuckets
)

// Histogram is a log-bucketed latency recorder. The zero value is ready to
// use. It is not safe for concurrent use — give each worker its own and
// Merge them.
type Histogram struct {
	counts [histBuckets]uint64
	total  uint64
	sum    int64 // nanoseconds; mean only, quantiles come from buckets
	max    int64
	min    int64
}

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	// Shift so the value fits in [subBuckets, 2*subBuckets): the exponent
	// picks the octave, the remaining top bits the linear sub-bucket.
	exp := bits.Len64(u) - subBucketBits - 1
	return exp*subBuckets + int(u>>uint(exp))
}

// bucketUpper returns the inclusive upper edge of a bucket, so quantiles
// report "at most this" — conservative, never flattering.
func bucketUpper(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	exp := idx/subBuckets - 1
	return (int64(idx%subBuckets+subBuckets+1) << uint(exp)) - 1
}

// Record adds one latency observation. Negative durations (clock trouble)
// clamp to zero rather than corrupting the state.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += v
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Max returns the largest recorded value exactly (not bucket-quantized).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Min returns the smallest recorded value exactly.
func (h *Histogram) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Mean returns the arithmetic mean of all recorded values.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.total))
}

// Quantile returns the latency at quantile q in [0, 1]: the bucket upper
// edge below which at least q·Count observations fall (the exact maximum
// for q = 1). Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q >= 1 {
		return time.Duration(h.max)
	}
	if q < 0 {
		q = 0
	}
	// ceil(q*total) with a floor of 1: the smallest rank covering q.
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i]
		if seen >= rank {
			upper := bucketUpper(i)
			if upper > h.max {
				upper = h.max // never report beyond the observed maximum
			}
			return time.Duration(upper)
		}
	}
	return time.Duration(h.max)
}

// Merge folds other into h. Merging bucket arrays is exact: quantiles of
// the merged histogram equal those of one histogram having recorded both
// streams.
func (h *Histogram) Merge(other *Histogram) {
	if other.total == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
	h.sum += other.sum
}

// Reset returns the histogram to its zero state.
func (h *Histogram) Reset() {
	*h = Histogram{}
}
