package genset

import "testing"

func TestContainsAdd(t *testing.T) {
	s := New[int](8)
	if s.Contains(1) {
		t.Fatal("empty set contains 1")
	}
	s.Add(1)
	if !s.Contains(1) {
		t.Fatal("added key missing")
	}
}

func TestRotationEvictsOldest(t *testing.T) {
	s := New[int](4) // generations of 2
	for i := 0; i < 6; i++ {
		s.Add(i)
	}
	if s.Len() > 4 {
		t.Fatalf("set holds %d keys, cap 4", s.Len())
	}
	if !s.Contains(5) {
		t.Fatal("most recent key evicted")
	}
	if s.Contains(0) {
		t.Fatal("oldest key survived repeated rotation")
	}
}

func TestTimedRotationBound(t *testing.T) {
	s := New[int](100)
	s.Add(1)
	s.Rotate() // generation 1: key moves to prev
	if !s.Contains(1) {
		t.Fatal("key evicted after one rotation")
	}
	s.Rotate() // generation 2: key gone
	if s.Contains(1) {
		t.Fatal("untouched key survived two rotations")
	}
}

func TestContainsPromoteSurvivesRotation(t *testing.T) {
	s := New[int](100)
	s.Add(1)
	s.Rotate()
	if !s.ContainsPromote(1) {
		t.Fatal("promote lookup missed")
	}
	s.Rotate() // the promoted copy rides in the newer generation
	if !s.Contains(1) {
		t.Fatal("promoted key did not survive rotation")
	}
}
