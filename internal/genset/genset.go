// Package genset provides a bounded two-generation set, the eviction
// structure shared by the broker's retransmit filter and the
// signature-verification cache: membership is checked against both
// generations, inserts go to the newer one, and rotation — on fill or on a
// caller's clock — discards the older generation wholesale. Eviction is
// O(1) amortized with no per-entry bookkeeping, at the cost of a coarse
// (generation-granular) recency notion, which is exactly right for caches
// whose entries are pure performance hints.
package genset

// Set is a two-generation set. The zero value is not usable; construct
// with New. It is not safe for concurrent use; callers synchronize.
type Set[K comparable] struct {
	cur, prev map[K]struct{}
	perGen    int
}

// New returns a set holding roughly `entries` keys (two generations of
// entries/2, minimum one each).
func New[K comparable](entries int) *Set[K] {
	perGen := entries / 2
	if perGen < 1 {
		perGen = 1
	}
	return &Set[K]{
		cur:    make(map[K]struct{}, perGen),
		prev:   map[K]struct{}{},
		perGen: perGen,
	}
}

// Contains reports whether k is in either generation.
func (s *Set[K]) Contains(k K) bool {
	if _, ok := s.cur[k]; ok {
		return true
	}
	_, ok := s.prev[k]
	return ok
}

// ContainsPromote is Contains, additionally promoting a key found only in
// the older generation into the newer one so entries in active use survive
// rotation.
func (s *Set[K]) ContainsPromote(k K) bool {
	if _, ok := s.cur[k]; ok {
		return true
	}
	if _, ok := s.prev[k]; ok {
		s.add(k)
		return true
	}
	return false
}

// Add inserts k into the newer generation, rotating when it fills.
func (s *Set[K]) Add(k K) { s.add(k) }

func (s *Set[K]) add(k K) {
	s.cur[k] = struct{}{}
	if len(s.cur) >= s.perGen {
		s.Rotate()
	}
}

// Rotate ages the newer generation into the older slot, discarding the
// previous older generation. A key inserted and never touched again
// survives at most two rotations.
func (s *Set[K]) Rotate() {
	s.prev = s.cur
	s.cur = make(map[K]struct{}, s.perGen)
}

// Len returns the number of keys currently held across both generations
// (keys present in both are counted twice; it is a bound, not an exact
// cardinality).
func (s *Set[K]) Len() int { return len(s.cur) + len(s.prev) }
