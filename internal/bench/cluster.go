package bench

import (
	"fmt"
	"sync"
	"time"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/client"
	"github.com/splitbft/splitbft/internal/core"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/pbft"
	"github.com/splitbft/splitbft/internal/tee"
	"github.com/splitbft/splitbft/internal/transport"
)

// benchN and benchF fix the replica group size to the paper's deployment
// (four SGX machines, f = 1).
const (
	benchN = 4
	benchF = 1
)

// benchSecret seeds the pairwise MAC keys for a benchmark cluster.
var benchSecret = []byte("splitbft-bench-secret")

// stoppable abstracts over the two replica implementations for teardown
// and metrics.
type stoppable interface {
	Stop()
}

// clusterHandle owns a running benchmark cluster and its clients.
type clusterHandle struct {
	net      *transport.SimNet
	replicas []stoppable
	clients  []*client.Client
	// splitReplicas is non-nil for SplitBFT systems (for enclave stats).
	splitReplicas []*core.Replica
}

func (h *clusterHandle) close() {
	for _, cl := range h.clients {
		cl.Close()
	}
	for _, r := range h.replicas {
		r.Stop()
	}
	h.net.Close()
}

// buildApp constructs the application instance for one replica.
func buildApp(sys System) app.Application {
	if sys.IsBlockchain() {
		return app.NewBlockchain(app.DefaultBlockSize, nil)
	}
	return app.NewKVS()
}

// startCluster launches the replica group for a system configuration and
// attaches cfg.Clients clients, attesting them when confidential.
func startCluster(cfg RunConfig) (*clusterHandle, error) {
	h := &clusterHandle{net: transport.NewSimNet(42)}
	reg := crypto.NewRegistry()

	batchSize := 1
	batchTimeout := time.Millisecond
	if cfg.Batched {
		batchSize = 200
		if cfg.BatchSizeOverride > 0 {
			batchSize = cfg.BatchSizeOverride
		}
		batchTimeout = 10 * time.Millisecond
	}
	// A generous request timeout keeps the failure detector quiet under
	// benchmark load (there are no faults to detect here).
	const requestTimeout = 5 * time.Second

	if cfg.System.IsSplit() {
		cost := tee.DefaultCostModel()
		if cfg.System == SplitKVSSimulation {
			cost = tee.SimulationCostModel()
		}
		if cfg.CostOverride != nil {
			cost = *cfg.CostOverride
		}
		for i := 0; i < benchN; i++ {
			rcfg := core.Config{
				N: benchN, F: benchF, ID: uint32(i),
				Registry:       reg,
				MACSecret:      benchSecret,
				App:            buildApp(cfg.System),
				Confidential:   true,
				Cost:           cost,
				SingleThread:   cfg.System == SplitKVSSingleThread,
				BatchSize:      batchSize,
				BatchTimeout:   batchTimeout,
				RequestTimeout: requestTimeout,
			}
			r, err := core.NewReplica(rcfg)
			if err != nil {
				h.close()
				return nil, fmt.Errorf("bench: replica %d: %w", i, err)
			}
			h.replicas = append(h.replicas, r)
			h.splitReplicas = append(h.splitReplicas, r)
		}
		for i, r := range h.splitReplicas {
			conn, err := h.net.Join(transport.ReplicaEndpoint(uint32(i)), r.Handler())
			if err != nil {
				h.close()
				return nil, err
			}
			r.Start(conn)
		}
	} else {
		keys := make([]*crypto.KeyPair, benchN)
		for i := range keys {
			keys[i] = crypto.MustGenerateKeyPair()
			reg.Register(pbft.ReplicaIdentity(uint32(i)), keys[i].Public)
		}
		for i := 0; i < benchN; i++ {
			rcfg := pbft.Config{
				N: benchN, F: benchF, ID: uint32(i),
				Key:            keys[i],
				Registry:       reg,
				MACs:           crypto.NewMACStore(benchSecret, pbft.ReplicaIdentity(uint32(i))),
				App:            buildApp(cfg.System),
				BatchSize:      batchSize,
				BatchTimeout:   batchTimeout,
				RequestTimeout: requestTimeout,
			}
			r, err := pbft.NewReplica(rcfg)
			if err != nil {
				h.close()
				return nil, fmt.Errorf("bench: replica %d: %w", i, err)
			}
			conn, err := h.net.Join(transport.ReplicaEndpoint(uint32(i)), r.Handler())
			if err != nil {
				h.close()
				return nil, err
			}
			r.Start(conn)
			h.replicas = append(h.replicas, r)
		}
	}

	// Clients.
	for c := 0; c < cfg.Clients; c++ {
		id := uint32(1000 + c)
		ccfg := client.Config{
			ID: id, N: benchN, F: benchF,
			MACs:               crypto.NewMACStore(benchSecret, crypto.Identity{ReplicaID: id, Role: crypto.RoleClient}),
			RetransmitInterval: 2 * time.Second,
			Timeout:            30 * time.Second,
		}
		if cfg.System.IsSplit() {
			ccfg.AuthReceivers = core.RequestAuthReceivers(benchN)
			ccfg.ReplyRole = crypto.RoleExecution
			ccfg.Confidential = true
			ccfg.Registry = reg
			ccfg.ExecMeasurement = core.ExecutionMeasurement()
		} else {
			ccfg.AuthReceivers = pbft.BaselineAuthReceivers(benchN)
			ccfg.ReplyRole = crypto.RoleReplica
		}
		cl, err := client.New(ccfg)
		if err != nil {
			h.close()
			return nil, err
		}
		conn, err := h.net.Join(transport.ClientEndpoint(id), cl.Handler())
		if err != nil {
			h.close()
			return nil, err
		}
		cl.Start(conn)
		h.clients = append(h.clients, cl)
	}
	// Attest concurrently: with 150 clients the handshakes are the setup
	// bottleneck otherwise.
	if cfg.System.IsSplit() {
		var wg sync.WaitGroup
		errCh := make(chan error, len(h.clients))
		for _, cl := range h.clients {
			wg.Add(1)
			go func(cl *client.Client) {
				defer wg.Done()
				if err := cl.Attest(); err != nil {
					errCh <- err
				}
			}(cl)
		}
		wg.Wait()
		close(errCh)
		if err := <-errCh; err != nil {
			h.close()
			return nil, fmt.Errorf("bench: attestation: %w", err)
		}
	}
	return h, nil
}
