// Package ring provides a growable circular buffer used on the replica hot
// paths: the broker's ecall queues and the request batch buffers (both in
// the SplitBFT broker and the PBFT baseline).
//
// It exists to fix two pathologies of the naive `items = items[1:]` /
// `append(nil, items[take:]...)` idioms: popping from the front of a slice
// is O(n) in the remaining elements, and slicing off the front pins the
// popped elements' memory in the backing array until the next reallocation.
// The ring pops in O(1), zeroes vacated slots so popped values are
// collectable immediately, and reuses its backing array indefinitely once
// it has grown to the high-water depth.
package ring

// Buffer is a growable FIFO ring buffer. The zero value is an empty buffer
// ready for use. It is not safe for concurrent use; callers synchronize.
type Buffer[T any] struct {
	buf  []T
	head int // index of the oldest element
	n    int // number of elements
}

// Len returns the number of buffered elements.
func (r *Buffer[T]) Len() int { return r.n }

// Cap returns the current capacity of the backing array.
func (r *Buffer[T]) Cap() int { return len(r.buf) }

// Push appends v at the tail, growing the backing array if full.
func (r *Buffer[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

// Pop removes and returns the head element. The vacated slot is zeroed so
// the popped value's referents become collectable.
func (r *Buffer[T]) Pop() (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v, true
}

// PopN removes up to max head elements, appending them to dst (which may
// be nil) and returning the result. It lets callers drain in batches while
// reusing one scratch slice across drains.
func (r *Buffer[T]) PopN(dst []T, max int) []T {
	if max > r.n {
		max = r.n
	}
	for i := 0; i < max; i++ {
		v, _ := r.Pop()
		dst = append(dst, v)
	}
	return dst
}

// Peek returns the head element without removing it.
func (r *Buffer[T]) Peek() (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	return r.buf[r.head], true
}

// Reset drops all elements, zeroing the backing array so referents become
// collectable, but keeps the capacity for reuse.
func (r *Buffer[T]) Reset() {
	var zero T
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)%len(r.buf)] = zero
	}
	r.head, r.n = 0, 0
}

// grow doubles the backing array (minimum 16) and linearizes the elements
// to the front.
func (r *Buffer[T]) grow() {
	newCap := 2 * len(r.buf)
	if newCap < 16 {
		newCap = 16
	}
	buf := make([]T, newCap)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}
