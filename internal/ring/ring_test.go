package ring

import "testing"

func TestPushPopFIFO(t *testing.T) {
	var r Buffer[int]
	for i := 0; i < 100; i++ {
		r.Push(i)
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d, want 100", r.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = (%d, %v)", i, v, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop from empty buffer succeeded")
	}
}

func TestWrapAround(t *testing.T) {
	var r Buffer[int]
	// Interleave pushes and pops so head wraps around the backing array
	// many times at a small steady-state depth.
	next := 0
	for i := 0; i < 1000; i++ {
		for j := 0; j < 3; j++ {
			r.Push(i*3 + j)
		}
		for j := 0; j < 3; j++ {
			v, ok := r.Pop()
			if !ok || v != next {
				t.Fatalf("Pop = (%d, %v), want %d", v, ok, next)
			}
			next++
		}
	}
	if r.Cap() > 16 {
		t.Fatalf("steady-state depth 3 grew the buffer to cap %d", r.Cap())
	}
}

func TestPopN(t *testing.T) {
	var r Buffer[int]
	for i := 0; i < 10; i++ {
		r.Push(i)
	}
	got := r.PopN(nil, 4)
	if len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("PopN(4) = %v", got)
	}
	// Drain more than remain: returns what is there.
	got = r.PopN(got[:0], 100)
	if len(got) != 6 || got[0] != 4 || got[5] != 9 {
		t.Fatalf("PopN(100) = %v", got)
	}
	if r.Len() != 0 {
		t.Fatalf("Len after drain = %d", r.Len())
	}
}

func TestPeekAndReset(t *testing.T) {
	var r Buffer[string]
	if _, ok := r.Peek(); ok {
		t.Fatal("Peek on empty buffer succeeded")
	}
	r.Push("a")
	r.Push("b")
	if v, ok := r.Peek(); !ok || v != "a" {
		t.Fatalf("Peek = (%q, %v)", v, ok)
	}
	if r.Len() != 2 {
		t.Fatal("Peek consumed an element")
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset left elements behind")
	}
	r.Push("c")
	if v, _ := r.Pop(); v != "c" {
		t.Fatal("push after Reset broken")
	}
}

// TestPopZeroesSlot verifies popped slots do not pin their referents: the
// memory-pinning half of the O(n) slice-pop bug this type replaces.
func TestPopZeroesSlot(t *testing.T) {
	var r Buffer[*int]
	x := new(int)
	r.Push(x)
	r.Pop()
	// The backing array must no longer hold the pointer.
	for i := range r.buf {
		if r.buf[i] != nil {
			t.Fatal("popped slot still references the element")
		}
	}
	r.Push(new(int))
	r.Push(new(int))
	r.PopN(nil, 2)
	for i := range r.buf {
		if r.buf[i] != nil {
			t.Fatal("PopN left a referenced slot behind")
		}
	}
}
