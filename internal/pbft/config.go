// Package pbft implements the non-compartmentalized PBFT baseline the paper
// evaluates SplitBFT against (§6): Castro–Liskov PBFT with request
// batching, checkpointing and view changes. Requests and replies are
// authenticated with HMAC vectors, replica-to-replica messages with ED25519
// signatures, matching the paper's Themis-derived configuration.
//
// The replica runs the core protocol on a single goroutine; message
// authentication and networking run on a worker pool, mirroring the paper's
// description of the baseline ("networking and message authentication are
// parallelized, but the core protocol is not").
package pbft

import (
	"errors"
	"time"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
)

// Defaults for Config fields left zero.
const (
	DefaultCheckpointInterval = 128
	DefaultWatermarkWindow    = 2 * DefaultCheckpointInterval
	DefaultBatchSize          = 200
	DefaultBatchTimeout       = 10 * time.Millisecond
	DefaultRequestTimeout     = 500 * time.Millisecond
	DefaultVerifyWorkers      = 4
)

// Config parameterizes one PBFT replica.
type Config struct {
	// N is the number of replicas (3F+1); F the fault threshold.
	N, F int
	// ID is this replica's index in [0, N).
	ID uint32

	// Key signs all protocol messages (the replica is one unit of failure).
	Key *crypto.KeyPair
	// Registry resolves peer public keys.
	Registry *crypto.Registry
	// MACs authenticates client requests and replies.
	MACs *crypto.MACStore

	// App is the replicated application.
	App app.Application

	// CheckpointInterval is the number of sequence numbers between
	// checkpoints; WatermarkWindow bounds how far ahead of the low
	// watermark the replica accepts proposals.
	CheckpointInterval uint64
	WatermarkWindow    uint64

	// BatchSize and BatchTimeout control request batching at the primary:
	// a batch is cut when BatchSize requests are buffered or BatchTimeout
	// elapses since the first buffered request. BatchSize 1 disables
	// batching (every request is ordered alone).
	BatchSize    int
	BatchTimeout time.Duration

	// RequestTimeout is how long a replica waits for progress on a pending
	// request before suspecting the primary and starting a view change.
	RequestTimeout time.Duration

	// VerifyWorkers sets the authentication worker pool size.
	VerifyWorkers int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = DefaultCheckpointInterval
	}
	if c.WatermarkWindow == 0 {
		c.WatermarkWindow = DefaultWatermarkWindow
	}
	if c.BatchSize == 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.BatchTimeout == 0 {
		c.BatchTimeout = DefaultBatchTimeout
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.VerifyWorkers == 0 {
		c.VerifyWorkers = DefaultVerifyWorkers
	}
	return c
}

func (c Config) validate() error {
	if c.N != 3*c.F+1 || c.F < 0 {
		return errors.New("pbft: N must equal 3F+1")
	}
	if int(c.ID) >= c.N {
		return errors.New("pbft: ID out of range")
	}
	if c.Key == nil || c.Registry == nil || c.MACs == nil {
		return errors.New("pbft: Key, Registry and MACs are required")
	}
	if c.App == nil {
		return errors.New("pbft: App is required")
	}
	return nil
}

// ReplicaIdentity returns the identity replica id signs with in the
// baseline scheme.
func ReplicaIdentity(id uint32) crypto.Identity {
	return crypto.Identity{ReplicaID: id, Role: crypto.RoleReplica}
}

// BaselineAuthReceivers returns the MAC-vector receiver layout baseline
// clients use: one MAC per replica, indexed by replica ID.
func BaselineAuthReceivers(n int) []crypto.Identity {
	out := make([]crypto.Identity, n)
	for i := range out {
		out[i] = ReplicaIdentity(uint32(i))
	}
	return out
}

// quorum returns the 2f+1 certificate size.
func (c Config) quorum() int { return 2*c.F + 1 }

// verifier builds the message verifier for the baseline scheme.
func (c Config) verifier() (*messages.Verifier, error) {
	return messages.NewVerifier(c.N, c.F, c.Registry, messages.BaselineScheme())
}
