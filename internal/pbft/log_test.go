package pbft

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
)

func TestInLogSlotIdentity(t *testing.T) {
	l := newInLog()
	s1 := l.slot(0, 5)
	s2 := l.slot(0, 5)
	if s1 != s2 {
		t.Fatal("slot() must return the same slot for the same coordinates")
	}
	if s3 := l.slot(1, 5); s3 == s1 {
		t.Fatal("slots are per (view, seq)")
	}
	if _, ok := l.peek(0, 5); !ok {
		t.Fatal("peek missed an existing slot")
	}
	if _, ok := l.peek(9, 9); ok {
		t.Fatal("peek invented a slot")
	}
}

func TestInLogGC(t *testing.T) {
	l := newInLog()
	for seq := uint64(1); seq <= 10; seq++ {
		l.slot(0, seq)
		l.addCheckpoint(&messages.Checkpoint{Seq: seq, Replica: 0})
	}
	l.gc(5)
	for seq := uint64(1); seq <= 5; seq++ {
		if _, ok := l.peek(0, seq); ok {
			t.Fatalf("slot %d survived gc(5)", seq)
		}
	}
	for seq := uint64(6); seq <= 10; seq++ {
		if _, ok := l.peek(0, seq); !ok {
			t.Fatalf("slot %d lost by gc(5)", seq)
		}
	}
	// Checkpoints strictly below the stable seq are pruned; the stable
	// one itself is retained (it feeds ViewChange certificates).
	if _, ok := l.checkpoints[4]; ok {
		t.Fatal("checkpoint 4 survived gc(5)")
	}
	if _, ok := l.checkpoints[5]; !ok {
		t.Fatal("stable checkpoint 5 must be retained")
	}
}

func TestAddCheckpointDedups(t *testing.T) {
	l := newInLog()
	c := &messages.Checkpoint{Seq: 5, Replica: 2}
	set := l.addCheckpoint(c)
	if len(set) != 1 {
		t.Fatalf("set = %d", len(set))
	}
	set = l.addCheckpoint(&messages.Checkpoint{Seq: 5, Replica: 2, Sig: []byte("other")})
	if len(set) != 1 {
		t.Fatal("duplicate sender accepted")
	}
	set = l.addCheckpoint(&messages.Checkpoint{Seq: 5, Replica: 3})
	if len(set) != 2 {
		t.Fatal("distinct sender not added")
	}
}

// preparedSlot builds a prepared slot with the given digest at (view, seq).
func preparedSlot(view, seq uint64, digest crypto.Digest, twoF int) *slot {
	s := newSlot()
	s.prePrepare = &messages.PrePrepare{View: view, Seq: seq, Digest: digest, Replica: uint32(view % 4)}
	for r := 0; r < twoF+1; r++ {
		id := uint32(r + 1)
		s.prepares[id] = &messages.Prepare{View: view, Seq: seq, Digest: digest, Replica: id}
	}
	s.prepared = true
	return s
}

func TestPrepareCertsAbove(t *testing.T) {
	l := newInLog()
	d1 := crypto.HashData([]byte("1"))
	d2 := crypto.HashData([]byte("2"))
	l.slots[0] = map[uint64]*slot{
		3: preparedSlot(0, 3, d1, 2),
		5: preparedSlot(0, 5, d1, 2),
		7: {prePrepare: &messages.PrePrepare{View: 0, Seq: 7, Digest: d1}}, // not prepared
	}
	// Seq 5 also prepared in view 1 with a different digest: the higher
	// view must win.
	l.slots[1] = map[uint64]*slot{5: preparedSlot(1, 5, d2, 2)}

	certs := l.prepareCertsAbove(3, 2)
	if len(certs) != 1 {
		t.Fatalf("got %d certs, want 1 (only seq 5; 3 is at the watermark, 7 unprepared)", len(certs))
	}
	if certs[0].Seq() != 5 || certs[0].View() != 1 || certs[0].Digest() != d2 {
		t.Fatalf("cert = v%d n%d %v, want v1 n5 d2", certs[0].View(), certs[0].Seq(), certs[0].Digest())
	}
	if len(certs[0].Prepares) != 2 {
		t.Fatalf("cert carries %d prepares, want exactly 2f=2", len(certs[0].Prepares))
	}
	if len(certs[0].PrePrepare.Batch.Requests) != 0 {
		t.Fatal("certificate PrePrepare must be stripped of request bodies")
	}
}

func TestPrepareCertsSorted(t *testing.T) {
	l := newInLog()
	d := crypto.HashData([]byte("d"))
	l.slots[0] = map[uint64]*slot{
		9: preparedSlot(0, 9, d, 2),
		4: preparedSlot(0, 4, d, 2),
		6: preparedSlot(0, 6, d, 2),
	}
	certs := l.prepareCertsAbove(0, 2)
	if len(certs) != 3 {
		t.Fatalf("got %d certs", len(certs))
	}
	for i := 1; i < len(certs); i++ {
		if certs[i].Seq() < certs[i-1].Seq() {
			t.Fatal("certificates not sorted by sequence")
		}
	}
}

func TestBuildPrepareCertInsufficient(t *testing.T) {
	d := crypto.HashData([]byte("d"))
	s := newSlot()
	s.prePrepare = &messages.PrePrepare{View: 0, Seq: 1, Digest: d}
	s.prepares[1] = &messages.Prepare{View: 0, Seq: 1, Digest: d, Replica: 1}
	if pc := buildPrepareCert(s, 2); pc != nil {
		t.Fatal("certificate built from a single prepare")
	}
	// Prepares for a different digest must not count.
	other := crypto.HashData([]byte("other"))
	s.prepares[2] = &messages.Prepare{View: 0, Seq: 1, Digest: other, Replica: 2}
	if pc := buildPrepareCert(s, 2); pc != nil {
		t.Fatal("certificate built from mismatched prepares")
	}
}

func TestClientEntryWindow(t *testing.T) {
	e := &clientEntry{}
	if _, done := e.executed(1); done {
		t.Fatal("fresh entry reports executed")
	}
	rep := &messages.Reply{Timestamp: 5}
	e.record(5, rep)
	got, done := e.executed(5)
	if !done || got != rep {
		t.Fatal("recorded reply not found")
	}
	if _, done := e.executed(4); done {
		t.Fatal("unexecuted lower timestamp reported executed")
	}
	// Out-of-order execution within the window works.
	e.record(3, &messages.Reply{Timestamp: 3})
	if _, done := e.executed(3); !done {
		t.Fatal("out-of-order record lost")
	}
	// Far beyond the window, old timestamps are treated as executed (no
	// replay) even though the cached reply is gone.
	e.record(5+2*clientReplyWindow, &messages.Reply{})
	rep2, done := e.executed(1)
	if !done || rep2 != nil {
		t.Fatalf("ancient timestamp: done=%v rep=%v, want done with no cached reply", done, rep2)
	}
}

func TestClientEntryPruning(t *testing.T) {
	e := &clientEntry{}
	for ts := uint64(1); ts <= 5*clientReplyWindow; ts++ {
		e.record(ts, &messages.Reply{Timestamp: ts})
	}
	if len(e.replies) > 2*clientReplyWindow {
		t.Fatalf("reply cache grew to %d entries (window %d)", len(e.replies), clientReplyWindow)
	}
	// Recent timestamps keep their cached replies.
	if rep, done := e.executed(5 * clientReplyWindow); !done || rep == nil {
		t.Fatal("most recent reply evicted")
	}
}

func TestQuickClientEntryNeverExecutesTwice(t *testing.T) {
	f := func(tss []uint16) bool {
		e := &clientEntry{}
		executions := make(map[uint64]int)
		for _, raw := range tss {
			ts := uint64(raw%300) + 1
			if _, done := e.executed(ts); done {
				continue
			}
			executions[ts]++
			e.record(ts, &messages.Reply{Timestamp: ts})
		}
		for ts, n := range executions {
			if n > 1 {
				t.Logf("timestamp %d executed %d times", ts, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	kp := crypto.MustGenerateKeyPair()
	base := Config{
		N: 4, F: 1, ID: 0,
		Key:      kp,
		Registry: crypto.NewRegistry(),
		MACs:     crypto.NewMACStore([]byte("s"), ReplicaIdentity(0)),
	}
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"bad quorum", func(c *Config) { c.N = 5 }},
		{"id out of range", func(c *Config) { c.ID = 4; c.App = nil }},
		{"missing key", func(c *Config) { c.Key = nil }},
		{"missing app", func(c *Config) { c.App = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mod(&cfg)
			if _, err := NewReplica(cfg); err == nil {
				t.Fatalf("config %s accepted", tc.name)
			}
		})
	}
}

func TestBaselineAuthReceivers(t *testing.T) {
	rs := BaselineAuthReceivers(4)
	if len(rs) != 4 {
		t.Fatalf("len = %d", len(rs))
	}
	for i, r := range rs {
		if r.ReplicaID != uint32(i) || r.Role != crypto.RoleReplica {
			t.Fatalf("receiver %d = %+v", i, r)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := Config{}.withDefaults()
	for name, got := range map[string]bool{
		"checkpoint interval": c.CheckpointInterval == DefaultCheckpointInterval,
		"watermark window":    c.WatermarkWindow == DefaultWatermarkWindow,
		"batch size":          c.BatchSize == DefaultBatchSize,
		"batch timeout":       c.BatchTimeout == DefaultBatchTimeout,
		"request timeout":     c.RequestTimeout == DefaultRequestTimeout,
		"verify workers":      c.VerifyWorkers == DefaultVerifyWorkers,
	} {
		if !got {
			t.Fatalf("default not applied: %s", name)
		}
	}
}

func TestReplicaIdentityString(t *testing.T) {
	id := ReplicaIdentity(3)
	if got := fmt.Sprintf("%d/%v", id.ReplicaID, id.Role); got != "3/replica" {
		t.Fatalf("identity = %s", got)
	}
}
