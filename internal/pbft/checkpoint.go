package pbft

import (
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
)

// makeCheckpoint snapshots the application, stores the snapshot, and
// broadcasts a signed Checkpoint for seq.
func (r *Replica) makeCheckpoint(seq uint64) {
	snap := r.cfg.App.Snapshot()
	r.snapshots[seq] = snap
	c := &messages.Checkpoint{Seq: seq, StateDigest: crypto.HashData(snap), Replica: r.cfg.ID}
	c.Sig = r.sign(c.SigningBytes())
	set := r.log.addCheckpoint(c)
	r.broadcast(c)
	r.maybeStable(seq, set)
}

// onCheckpoint collects checkpoint votes from peers.
func (r *Replica) onCheckpoint(c *messages.Checkpoint) {
	if c.Seq <= r.lowWatermark {
		return
	}
	set := r.log.addCheckpoint(c)
	r.maybeStable(c.Seq, set)
}

// maybeStable fires when 2f+1 matching Checkpoints exist for seq: the
// checkpoint becomes stable, the watermark advances, and the log is
// garbage collected.
func (r *Replica) maybeStable(seq uint64, set map[uint32]*messages.Checkpoint) {
	if seq <= r.lowWatermark {
		return
	}
	byDigest := make(map[crypto.Digest][]*messages.Checkpoint)
	for _, c := range set {
		byDigest[c.StateDigest] = append(byDigest[c.StateDigest], c)
	}
	for digest, cs := range byDigest {
		if len(cs) < r.cfg.quorum() {
			continue
		}
		cert := messages.CheckpointCert{Seq: seq, StateDigest: digest}
		for _, c := range cs[:r.cfg.quorum()] {
			cert.Proof = append(cert.Proof, *c)
		}
		r.installStable(cert)
		return
	}
}

// installStable advances the stable checkpoint to cert, garbage-collecting
// everything at or below it. If this replica has not executed up to the
// stable point it starts state transfer.
func (r *Replica) installStable(cert messages.CheckpointCert) {
	if cert.Seq <= r.lowWatermark {
		return
	}
	r.lowWatermark = cert.Seq
	r.stableCert = cert
	r.mStable.Store(cert.Seq)
	r.log.gc(cert.Seq)
	for seq := range r.snapshots {
		if seq < cert.Seq {
			delete(r.snapshots, seq)
		}
	}
	for seq := range r.committedBatches {
		if seq <= cert.Seq {
			delete(r.committedBatches, seq)
		}
	}
	for seq := range r.committedNull {
		if seq <= cert.Seq {
			delete(r.committedNull, seq)
		}
	}
	if r.lastExec < cert.Seq {
		// We fell behind: our own snapshot cannot exist, fetch state.
		r.requestState(cert)
	}
}

// requestState asks a replica that contributed to the stable certificate
// for the snapshot.
func (r *Replica) requestState(cert messages.CheckpointCert) {
	req := &messages.StateRequest{Seq: cert.Seq, Replica: r.cfg.ID}
	for i := range cert.Proof {
		if cert.Proof[i].Replica != r.cfg.ID {
			r.sendReplica(cert.Proof[i].Replica, req)
			return
		}
	}
}

// onStateRequest serves a snapshot to a lagging peer.
func (r *Replica) onStateRequest(req *messages.StateRequest) {
	snap, ok := r.snapshots[req.Seq]
	if !ok || r.stableCert.Seq != req.Seq {
		return
	}
	rep := &messages.StateReply{Cert: r.stableCert, Snapshot: snap, Replica: r.cfg.ID}
	r.sendReplica(req.Replica, rep)
}

// onStateReply installs a verified snapshot: the certificate was already
// signature-checked; here the snapshot hash is matched against it.
func (r *Replica) onStateReply(rep *messages.StateReply) {
	if rep.Cert.Seq <= r.lastExec {
		return // no longer behind
	}
	if crypto.HashData(rep.Snapshot) != rep.Cert.StateDigest {
		r.mDropped.Add(1)
		return
	}
	if err := r.cfg.App.Restore(rep.Snapshot); err != nil {
		r.mDropped.Add(1)
		return
	}
	r.snapshots[rep.Cert.Seq] = rep.Snapshot
	r.lastExec = rep.Cert.Seq
	r.mLastExec.Store(rep.Cert.Seq)
	if rep.Cert.Seq > r.lowWatermark {
		r.lowWatermark = rep.Cert.Seq
		r.stableCert = rep.Cert
		r.log.gc(rep.Cert.Seq)
	}
	r.progressMade()
	r.tryExecute()
}
