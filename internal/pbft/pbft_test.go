package pbft

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/client"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/transport"
)

// cluster is a 4-replica PBFT test harness over a simulated network.
type cluster struct {
	t        *testing.T
	n, f     int
	net      *transport.SimNet
	reg      *crypto.Registry
	secret   []byte
	replicas []*Replica
	apps     []*app.KVS
	clients  []*client.Client
}

// newCluster starts n PBFT replicas with KVS applications. mod can tweak
// each replica's Config before start.
func newCluster(t *testing.T, n, f int, mod func(*Config)) *cluster {
	t.Helper()
	c := &cluster{
		t: t, n: n, f: f,
		net:    transport.NewSimNet(1),
		reg:    crypto.NewRegistry(),
		secret: []byte("pbft-test-secret"),
	}
	keys := make([]*crypto.KeyPair, n)
	for i := 0; i < n; i++ {
		keys[i] = crypto.MustGenerateKeyPair()
		c.reg.Register(ReplicaIdentity(uint32(i)), keys[i].Public)
	}
	for i := 0; i < n; i++ {
		kvs := app.NewKVS()
		c.apps = append(c.apps, kvs)
		cfg := Config{
			N: n, F: f, ID: uint32(i),
			Key:      keys[i],
			Registry: c.reg,
			MACs:     crypto.NewMACStore(c.secret, ReplicaIdentity(uint32(i))),
			App:      kvs,
			// Test-friendly defaults: small batches, fast timers.
			BatchSize:      1,
			BatchTimeout:   2 * time.Millisecond,
			RequestTimeout: 250 * time.Millisecond,
		}
		if mod != nil {
			mod(&cfg)
		}
		r, err := NewReplica(cfg)
		if err != nil {
			t.Fatal(err)
		}
		conn, err := c.net.Join(transport.ReplicaEndpoint(uint32(i)), r.Handler())
		if err != nil {
			t.Fatal(err)
		}
		r.Start(conn)
		c.replicas = append(c.replicas, r)
	}
	t.Cleanup(c.stop)
	return c
}

func (c *cluster) stop() {
	for _, cl := range c.clients {
		cl.Close()
	}
	for _, r := range c.replicas {
		r.Stop()
	}
	c.net.Close()
}

// client creates and attaches a new client with the given ID.
func (c *cluster) client(id uint32) *client.Client {
	return c.clientT(id, 8*time.Second)
}

// clientT creates a client with a custom per-invoke timeout.
func (c *cluster) clientT(id uint32, timeout time.Duration) *client.Client {
	c.t.Helper()
	cl, err := client.New(client.Config{
		ID: id, N: c.n, F: c.f,
		MACs:               crypto.NewMACStore(c.secret, crypto.Identity{ReplicaID: id, Role: crypto.RoleClient}),
		AuthReceivers:      BaselineAuthReceivers(c.n),
		ReplyRole:          crypto.RoleReplica,
		RetransmitInterval: 300 * time.Millisecond,
		Timeout:            timeout,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	conn, err := c.net.Join(transport.ClientEndpoint(id), cl.Handler())
	if err != nil {
		c.t.Fatal(err)
	}
	cl.Start(conn)
	c.clients = append(c.clients, cl)
	return cl
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestBasicReplication(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	cl := c.client(100)
	res, err := cl.Invoke(app.EncodePut("greeting", []byte("hello")))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, []byte("OK")) {
		t.Fatalf("put result = %q", res)
	}
	res, err = cl.Invoke(app.EncodeGet("greeting"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, []byte("hello")) {
		t.Fatalf("get result = %q", res)
	}
	// All replicas converge to identical state.
	waitFor(t, 3*time.Second, "replica convergence", func() bool {
		d := c.apps[0].Digest()
		for _, a := range c.apps[1:] {
			if a.Digest() != d {
				return false
			}
		}
		return true
	})
}

func TestSequentialOperations(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	cl := c.client(100)
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("k%d", i%5)
		if _, err := cl.Invoke(app.EncodePut(key, []byte(fmt.Sprintf("v%d", i)))); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	res, err := cl.Invoke(app.EncodeGet("k4"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, []byte("v29")) {
		t.Fatalf("final read = %q, want v29", res)
	}
	waitFor(t, 2*time.Second, "primary executes 31 ops", func() bool {
		return c.replicas[0].ExecutedOps() >= 31
	})
}

func TestBatchedMode(t *testing.T) {
	c := newCluster(t, 4, 1, func(cfg *Config) {
		cfg.BatchSize = 10
		cfg.BatchTimeout = 5 * time.Millisecond
	})
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		cl := c.client(uint32(200 + i))
		wg.Add(1)
		go func(cl *client.Client, id int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, err := cl.Invoke(app.EncodePut(fmt.Sprintf("c%d-%d", id, j), []byte("v"))); err != nil {
					errs <- fmt.Errorf("client %d op %d: %w", id, j, err)
					return
				}
			}
		}(cl, i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "all replicas executed 80 ops", func() bool {
		for _, r := range c.replicas {
			if r.ExecutedOps() < 80 {
				return false
			}
		}
		return true
	})
}

func TestCheckpointAdvancesWatermark(t *testing.T) {
	c := newCluster(t, 4, 1, func(cfg *Config) {
		cfg.CheckpointInterval = 8
		cfg.WatermarkWindow = 16
	})
	cl := c.client(100)
	for i := 0; i < 20; i++ {
		if _, err := cl.Invoke(app.EncodePut(fmt.Sprintf("k%d", i), []byte("v"))); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	waitFor(t, 3*time.Second, "stable checkpoint >= 16 on all replicas", func() bool {
		for _, r := range c.replicas {
			if r.StableCheckpoint() < 16 {
				return false
			}
		}
		return true
	})
}

func TestViewChangeOnPrimaryFailure(t *testing.T) {
	c := newCluster(t, 4, 1, func(cfg *Config) {
		cfg.RequestTimeout = 150 * time.Millisecond
	})
	cl := c.client(100)
	// Establish normal operation in view 0.
	if _, err := cl.Invoke(app.EncodePut("a", []byte("1"))); err != nil {
		t.Fatal(err)
	}
	// Kill the primary.
	c.net.Isolate(transport.ReplicaEndpoint(0))
	// The next request must still complete after a view change.
	res, err := cl.Invoke(app.EncodePut("b", []byte("2")))
	if err != nil {
		t.Fatalf("request did not survive primary failure: %v", err)
	}
	if !bytes.Equal(res, []byte("OK")) {
		t.Fatalf("result = %q", res)
	}
	for _, r := range c.replicas[1:] {
		if r.View() == 0 {
			t.Fatalf("replica %d still in view 0 after primary failure", r.cfg.ID)
		}
	}
	// And the system keeps working in the new view.
	if _, err := cl.Invoke(app.EncodePut("c", []byte("3"))); err != nil {
		t.Fatal(err)
	}
}

func TestViewChangePreservesCommittedState(t *testing.T) {
	c := newCluster(t, 4, 1, func(cfg *Config) {
		cfg.RequestTimeout = 150 * time.Millisecond
	})
	cl := c.client(100)
	for i := 0; i < 5; i++ {
		if _, err := cl.Invoke(app.EncodePut(fmt.Sprintf("pre%d", i), []byte("x"))); err != nil {
			t.Fatal(err)
		}
	}
	c.net.Isolate(transport.ReplicaEndpoint(0))
	if _, err := cl.Invoke(app.EncodePut("post", []byte("y"))); err != nil {
		t.Fatal(err)
	}
	// Reads of pre-view-change writes must still succeed (safety across
	// view changes).
	res, err := cl.Invoke(app.EncodeGet("pre3"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, []byte("x")) {
		t.Fatalf("lost committed write across view change: %q", res)
	}
}

func TestLaggingReplicaCatchesUpViaStateTransfer(t *testing.T) {
	c := newCluster(t, 4, 1, func(cfg *Config) {
		cfg.CheckpointInterval = 5
		cfg.WatermarkWindow = 10
	})
	cl := c.client(100)
	// Cut replica 3 off; the other three keep the protocol live.
	c.net.Isolate(transport.ReplicaEndpoint(3))
	for i := 0; i < 12; i++ {
		if _, err := cl.Invoke(app.EncodePut(fmt.Sprintf("k%d", i), []byte("v"))); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	// Heal and keep going: replica 3 must catch up via checkpoints/state
	// transfer.
	for i := 0; i < c.n; i++ {
		c.net.Unblock(transport.ReplicaEndpoint(3), transport.ReplicaEndpoint(uint32(i)))
	}
	c.net.Unblock(transport.ReplicaEndpoint(3), transport.ClientEndpoint(100))
	for i := 12; i < 25; i++ {
		if _, err := cl.Invoke(app.EncodePut(fmt.Sprintf("k%d", i), []byte("v"))); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	// Event-driven convergence: keep a trickle of read-only ops flowing
	// until the laggard's state matches, instead of stopping traffic and
	// waiting on a fixed deadline. The old passive wait was load-flaky
	// (~1/5 under -count=5): commits past the final stable checkpoint
	// could fly by while replica 3's state transfer was still in flight,
	// and with traffic stopped nothing ever retransmitted the tail. Each
	// trickled Get advances the sequence number, so every
	// CheckpointInterval rounds produce a fresh stable certificate that
	// re-triggers state transfer; reads leave the compared KVS state
	// untouched, and the loop exits on the convergence event itself.
	deadline := time.Now().Add(20 * time.Second)
	for c.apps[3].Digest() != c.apps[0].Digest() {
		if time.Now().After(deadline) {
			t.Fatal("replica 3 did not converge via state transfer")
		}
		if _, err := cl.Invoke(app.EncodeGet("k0")); err != nil {
			t.Fatalf("convergence nudge: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestDuplicateRequestsExecuteOnce(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	cl := c.client(100)
	if _, err := cl.Invoke(app.EncodePut("ctr", []byte("1"))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "replica 1 executes the first op", func() bool {
		return c.replicas[1].ExecutedOps() == 1
	})
	before := c.replicas[1].ExecutedOps()
	// Retransmissions happen inside Invoke automatically; instead force
	// duplicates by sending the same raw request repeatedly via a second
	// network identity. Craft the request exactly as the client would.
	macs := crypto.NewMACStore(c.secret, crypto.Identity{ReplicaID: 100, Role: crypto.RoleClient})
	req := &clientRequest{clientID: 100, timestamp: 1, payload: app.EncodePut("ctr", []byte("1"))}
	raw := req.marshal(macs, c.n)
	conn, err := c.net.Join(transport.ClientEndpoint(999), func(transport.Endpoint, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for id := 0; id < c.n; id++ {
			if err := conn.Send(transport.ReplicaEndpoint(uint32(id)), raw); err != nil {
				t.Fatal(err)
			}
		}
	}
	time.Sleep(300 * time.Millisecond)
	if got := c.replicas[1].ExecutedOps(); got != before {
		t.Fatalf("duplicates executed: ops %d -> %d", before, got)
	}
}

func TestTamperedRequestRejected(t *testing.T) {
	c := newCluster(t, 4, 1, nil)
	// A request MAC'd with the wrong secret must be dropped by all
	// replicas.
	macs := crypto.NewMACStore([]byte("wrong-secret"), crypto.Identity{ReplicaID: 100, Role: crypto.RoleClient})
	req := &clientRequest{clientID: 100, timestamp: 1, payload: app.EncodePut("x", []byte("1"))}
	raw := req.marshal(macs, c.n)
	conn, err := c.net.Join(transport.ClientEndpoint(100), func(transport.Endpoint, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < c.n; id++ {
		if err := conn.Send(transport.ReplicaEndpoint(uint32(id)), raw); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(200 * time.Millisecond)
	for i, r := range c.replicas {
		if r.ExecutedOps() != 0 {
			t.Fatalf("replica %d executed a forged request", i)
		}
		if r.DroppedMsgs() == 0 {
			t.Fatalf("replica %d did not count the forged request as dropped", i)
		}
	}
}

func TestFaultyNetworkStillLive(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection timing test")
	}
	c := newCluster(t, 4, 1, func(cfg *Config) {
		cfg.RequestTimeout = 200 * time.Millisecond
	})
	c.net.SetFaults(transport.Faults{DropProb: 0.02, ReorderProb: 0.2, Jitter: 2 * time.Millisecond})
	cl := c.clientT(100, 30*time.Second)
	for i := 0; i < 15; i++ {
		if _, err := cl.Invoke(app.EncodePut(fmt.Sprintf("k%d", i), []byte("v"))); err != nil {
			for j, r := range c.replicas {
				t.Logf("replica %d: view=%d inVC=%v lastExec=%d stable=%d",
					j, r.View(), r.InViewChange(), r.LastExecuted(), r.StableCheckpoint())
			}
			t.Fatalf("op %d under faulty network: %v", i, err)
		}
	}
}

// clientRequest builds raw Request envelopes for adversarial tests.
type clientRequest struct {
	clientID  uint32
	timestamp uint64
	payload   []byte
}

func (cr *clientRequest) marshal(macs *crypto.MACStore, n int) []byte {
	req := &messages.Request{
		ClientID:  cr.clientID,
		Timestamp: cr.timestamp,
		Payload:   cr.payload,
	}
	req.Auth = macs.Authenticate(req.AuthenticatedBytes(), BaselineAuthReceivers(n))
	return messages.Marshal(req)
}
