package pbft

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/ring"
	"github.com/splitbft/splitbft/internal/transport"
)

// event is one unit of work for the protocol loop: a verified inbound
// message or an internal timer tick.
type event struct {
	from transport.Endpoint
	msg  messages.Message
}

// Replica is one PBFT replica. Create with NewReplica, attach a transport
// connection, then Start. All protocol state is owned by a single event
// loop goroutine; public getters read atomics.
type Replica struct {
	cfg  Config
	ver  *messages.Verifier
	conn transport.Conn

	rawCh  chan rawMsg
	events chan event
	stop   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once

	// Protocol state: owned by the run loop.
	view         uint64
	nextSeq      uint64 // next sequence the primary assigns
	log          *inLog
	lowWatermark uint64
	stableCert   messages.CheckpointCert
	snapshots    map[uint64][]byte
	lastExec     uint64
	clients      clientTable
	// committedBatches holds batches committed but not yet executed,
	// keyed by sequence number.
	committedBatches map[uint64]*messages.Batch
	committedNull    map[uint64]bool
	// batchStore caches request bodies by batch digest so batches
	// re-proposed after a view change can still execute (bodies are
	// stripped from certificates).
	batchStore map[crypto.Digest]*messages.Batch

	// Batching. pendingReqs is a ring so cutting a batch never re-copies
	// the remainder (the old O(n) slice-shift pinned freed memory and went
	// quadratic under load).
	pendingReqs   ring.Buffer[messages.Request]
	pendingDigest map[digestKey]bool
	batchSince    time.Time

	// View-change machinery.
	inViewChange bool
	vcTarget     uint64
	vcBackoff    uint
	vcDeadline   time.Time
	myVC         *messages.ViewChange
	lastNewView  *messages.NewView
	viewChanges  map[uint64]map[uint32]*messages.ViewChange
	pendingSince map[digestKey]time.Time
	lastProgress time.Time

	// Metrics (atomics, readable from any goroutine).
	mView     atomic.Uint64
	mExecuted atomic.Uint64
	mLastExec atomic.Uint64
	mDropped  atomic.Uint64
	mStable   atomic.Uint64
	mInVC     atomic.Bool
}

type rawMsg struct {
	from transport.Endpoint
	data []byte
}

// NewReplica builds a replica from cfg.
func NewReplica(cfg Config) (*Replica, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ver, err := cfg.verifier()
	if err != nil {
		return nil, err
	}
	r := &Replica{
		cfg:              cfg,
		ver:              ver,
		rawCh:            make(chan rawMsg, 8192),
		events:           make(chan event, 8192),
		stop:             make(chan struct{}),
		log:              newInLog(),
		snapshots:        make(map[uint64][]byte),
		clients:          make(clientTable),
		committedBatches: make(map[uint64]*messages.Batch),
		committedNull:    make(map[uint64]bool),
		batchStore:       make(map[crypto.Digest]*messages.Batch),
		pendingDigest:    make(map[digestKey]bool),
		viewChanges:      make(map[uint64]map[uint32]*messages.ViewChange),
		pendingSince:     make(map[digestKey]time.Time),
		lastProgress:     time.Now(),
	}
	// Genesis snapshot so the zero checkpoint certificate is restorable.
	r.snapshots[0] = cfg.App.Snapshot()
	return r, nil
}

// Handler returns the transport handler feeding this replica. Attach it
// when joining the network, before Start.
func (r *Replica) Handler() transport.Handler {
	return func(from transport.Endpoint, data []byte) {
		select {
		case r.rawCh <- rawMsg{from: from, data: data}:
		case <-r.stop:
		}
	}
}

// Start begins processing with the given connection.
func (r *Replica) Start(conn transport.Conn) {
	r.conn = conn
	for i := 0; i < r.cfg.VerifyWorkers; i++ {
		r.wg.Add(1)
		go r.verifyWorker()
	}
	r.wg.Add(1)
	go r.run()
}

// Stop terminates the replica. It is idempotent.
func (r *Replica) Stop() {
	r.once.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// View returns the replica's current view.
func (r *Replica) View() uint64 { return r.mView.Load() }

// LastExecuted returns the highest executed sequence number.
func (r *Replica) LastExecuted() uint64 { return r.mLastExec.Load() }

// ExecutedOps returns the total number of client operations executed.
func (r *Replica) ExecutedOps() uint64 { return r.mExecuted.Load() }

// DroppedMsgs returns how many inbound messages failed verification.
func (r *Replica) DroppedMsgs() uint64 { return r.mDropped.Load() }

// StableCheckpoint returns the sequence number of the latest stable
// checkpoint (the low watermark).
func (r *Replica) StableCheckpoint() uint64 { return r.mStable.Load() }

// InViewChange reports whether the replica is between a ViewChange and the
// corresponding NewView.
func (r *Replica) InViewChange() bool { return r.mInVC.Load() }

// primary reports the primary of view v.
func (r *Replica) primary(v uint64) uint32 { return uint32(v % uint64(r.cfg.N)) }

// isPrimary reports whether this replica leads view v.
func (r *Replica) isPrimary(v uint64) bool { return r.primary(v) == r.cfg.ID }

// verifyWorker authenticates inbound messages off the protocol loop
// (parallelized authentication, as in the paper's baseline).
func (r *Replica) verifyWorker() {
	defer r.wg.Done()
	for {
		select {
		case <-r.stop:
			return
		case raw := <-r.rawCh:
			m, err := messages.Unmarshal(raw.data)
			if err != nil {
				r.mDropped.Add(1)
				continue
			}
			if err := r.verify(raw.from, m); err != nil {
				r.mDropped.Add(1)
				continue
			}
			select {
			case r.events <- event{from: raw.from, msg: m}:
			case <-r.stop:
				return
			}
		}
	}
}

// verify authenticates one message by type. View/watermark filtering
// happens later in the protocol loop; this is pure authentication.
func (r *Replica) verify(from transport.Endpoint, m messages.Message) error {
	switch msg := m.(type) {
	case *messages.Request:
		return r.verifyRequest(msg)
	case *messages.PrePrepare:
		return r.ver.VerifyPrePrepare(msg, true)
	case *messages.Prepare:
		return r.ver.VerifyPrepare(msg)
	case *messages.Commit:
		return r.ver.VerifyCommit(msg)
	case *messages.Checkpoint:
		return r.ver.VerifyCheckpoint(msg)
	case *messages.ViewChange:
		return r.ver.VerifyViewChange(msg)
	case *messages.NewView:
		return r.ver.VerifyNewView(msg)
	case *messages.StateRequest:
		return nil // contents are harmless; rate limiting is out of scope
	case *messages.StateReply:
		return r.ver.VerifyCheckpointCert(&msg.Cert)
	default:
		return fmt.Errorf("pbft: unexpected message type %v", m.MsgType())
	}
}

// verifyRequest checks the client's MAC for this replica.
func (r *Replica) verifyRequest(req *messages.Request) error {
	client := crypto.Identity{ReplicaID: req.ClientID, Role: crypto.RoleClient}
	return r.cfg.MACs.VerifyIndexed(req.AuthenticatedBytes(), req.Auth, int(r.cfg.ID), client)
}

// tickInterval is the protocol loop's coarse timer resolution.
func (r *Replica) tickInterval() time.Duration {
	d := r.cfg.BatchTimeout / 2
	if d <= 0 || d > 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	return d
}

// run is the single-threaded protocol loop.
func (r *Replica) run() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.tickInterval())
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			r.onTick()
		case ev := <-r.events:
			r.dispatch(ev)
		}
	}
}

func (r *Replica) dispatch(ev event) {
	switch msg := ev.msg.(type) {
	case *messages.Request:
		r.onRequest(msg)
	case *messages.PrePrepare:
		r.onPrePrepare(msg)
	case *messages.Prepare:
		r.onPrepare(msg)
	case *messages.Commit:
		r.onCommit(msg)
	case *messages.Checkpoint:
		r.onCheckpoint(msg)
	case *messages.ViewChange:
		r.onViewChange(msg)
	case *messages.NewView:
		r.onNewView(msg)
	case *messages.StateRequest:
		r.onStateRequest(msg)
	case *messages.StateReply:
		r.onStateReply(msg)
	}
}

// onTick drives batch cutting and failure detection.
func (r *Replica) onTick() {
	now := time.Now()
	// Cut a batch on timeout.
	if r.isPrimary(r.view) && !r.inViewChange && r.pendingReqs.Len() > 0 &&
		now.Sub(r.batchSince) >= r.cfg.BatchTimeout {
		r.cutBatch()
	}
	// Suspect the primary when a pending request has seen no progress.
	r.checkRequestTimeouts(now)
}

// sign signs with the replica key.
func (r *Replica) sign(b []byte) []byte { return r.cfg.Key.Sign(b) }

// broadcast marshals and sends to all other replicas.
func (r *Replica) broadcast(m messages.Message) {
	if r.conn == nil {
		return
	}
	_ = r.conn.BroadcastReplicas(messages.Marshal(m))
}

// sendReplica marshals and sends to one replica.
func (r *Replica) sendReplica(id uint32, m messages.Message) {
	if r.conn == nil || id == r.cfg.ID {
		return
	}
	_ = r.conn.Send(transport.ReplicaEndpoint(id), messages.Marshal(m))
}

// sendClient marshals and sends to a client.
func (r *Replica) sendClient(clientID uint32, m messages.Message) {
	if r.conn == nil {
		return
	}
	_ = r.conn.Send(transport.ClientEndpoint(clientID), messages.Marshal(m))
}

// inWindow reports whether seq falls in the active watermark window.
func (r *Replica) inWindow(seq uint64) bool {
	return seq > r.lowWatermark && seq <= r.lowWatermark+r.cfg.WatermarkWindow
}

// progressMade resets the failure-detection clock.
func (r *Replica) progressMade() { r.lastProgress = time.Now() }
