package pbft

import (
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
)

// slot tracks the agreement progress of one sequence number in one view.
// It is part of the input log 𝑖𝑛 from the PBFT I/O-automaton model.
type slot struct {
	prePrepare *messages.PrePrepare
	prepares   map[uint32]*messages.Prepare
	commits    map[uint32]*messages.Commit
	prepared   bool
	committed  bool
	executed   bool
}

func newSlot() *slot {
	return &slot{
		prepares: make(map[uint32]*messages.Prepare),
		commits:  make(map[uint32]*messages.Commit),
	}
}

// inLog is the message log of a replica, keyed by (view, seq). It also
// tracks checkpoints. GC discards entries at or below the stable sequence
// number.
type inLog struct {
	slots map[uint64]map[uint64]*slot // view -> seq -> slot
	// checkpoints collects Checkpoint messages per sequence number.
	checkpoints map[uint64]map[uint32]*messages.Checkpoint
}

func newInLog() *inLog {
	return &inLog{
		slots:       make(map[uint64]map[uint64]*slot),
		checkpoints: make(map[uint64]map[uint32]*messages.Checkpoint),
	}
}

// slot returns (creating) the slot for (view, seq).
func (l *inLog) slot(view, seq uint64) *slot {
	vs, ok := l.slots[view]
	if !ok {
		vs = make(map[uint64]*slot)
		l.slots[view] = vs
	}
	s, ok := vs[seq]
	if !ok {
		s = newSlot()
		vs[seq] = s
	}
	return s
}

// peek returns the slot for (view, seq) if it exists.
func (l *inLog) peek(view, seq uint64) (*slot, bool) {
	vs, ok := l.slots[view]
	if !ok {
		return nil, false
	}
	s, ok := vs[seq]
	return s, ok
}

// addCheckpoint records a Checkpoint message, returning the set collected
// for its sequence number.
func (l *inLog) addCheckpoint(c *messages.Checkpoint) map[uint32]*messages.Checkpoint {
	m, ok := l.checkpoints[c.Seq]
	if !ok {
		m = make(map[uint32]*messages.Checkpoint)
		l.checkpoints[c.Seq] = m
	}
	if _, dup := m[c.Replica]; !dup {
		m[c.Replica] = c
	}
	return m
}

// gc discards all slots and checkpoint sets at or below stableSeq.
// Checkpoint messages for stableSeq itself are retained (they form the
// stable certificate carried in ViewChanges).
func (l *inLog) gc(stableSeq uint64) {
	for view, vs := range l.slots {
		for seq := range vs {
			if seq <= stableSeq {
				delete(vs, seq)
			}
		}
		if len(vs) == 0 {
			delete(l.slots, view)
		}
	}
	for seq := range l.checkpoints {
		if seq < stableSeq {
			delete(l.checkpoints, seq)
		}
	}
}

// prepareCertsAbove extracts a prepare certificate for every prepared slot
// with seq > stableSeq in any view, keeping the certificate from the
// highest view per sequence number. Used to build ViewChange messages.
func (l *inLog) prepareCertsAbove(stableSeq uint64, twoF int) []messages.PrepareCert {
	best := make(map[uint64]*messages.PrepareCert)
	for _, vs := range l.slots {
		for seq, s := range vs {
			if seq <= stableSeq || !s.prepared || s.prePrepare == nil {
				continue
			}
			pc := buildPrepareCert(s, twoF)
			if pc == nil {
				continue
			}
			if cur, ok := best[seq]; !ok || pc.View() > cur.View() {
				best[seq] = pc
			}
		}
	}
	out := make([]messages.PrepareCert, 0, len(best))
	for _, pc := range best {
		out = append(out, *pc)
	}
	sortPrepareCerts(out)
	return out
}

// buildPrepareCert assembles a certificate from a prepared slot, selecting
// exactly twoF matching prepares.
func buildPrepareCert(s *slot, twoF int) *messages.PrepareCert {
	pc := &messages.PrepareCert{PrePrepare: *s.prePrepare.StripBatch()}
	for _, p := range s.prepares {
		if p.Digest == s.prePrepare.Digest && len(pc.Prepares) < twoF {
			pc.Prepares = append(pc.Prepares, *p)
		}
	}
	if len(pc.Prepares) < twoF {
		return nil
	}
	return pc
}

func sortPrepareCerts(pcs []messages.PrepareCert) {
	// Insertion sort by sequence: certificate counts are small.
	for i := 1; i < len(pcs); i++ {
		for j := i; j > 0 && pcs[j].Seq() < pcs[j-1].Seq(); j-- {
			pcs[j], pcs[j-1] = pcs[j-1], pcs[j]
		}
	}
}

// clientReplyWindow bounds how many recent replies are cached per client.
// It must exceed the maximum number of outstanding requests per client
// (the paper's batched configuration uses 40).
const clientReplyWindow = 128

// clientEntry records exactly-once execution state per client. Because the
// batched configuration allows many outstanding requests per client,
// batches can execute a client's timestamps out of order; a single
// "highest timestamp" check would drop the lower ones. Instead a window of
// recent replies is cached, keyed by timestamp.
type clientEntry struct {
	maxExecuted uint64
	replies     map[uint64]*messages.Reply
}

// executed reports whether ts was already executed, returning the cached
// reply when still in the window.
func (e *clientEntry) executed(ts uint64) (*messages.Reply, bool) {
	if rep, ok := e.replies[ts]; ok {
		return rep, true
	}
	// Below the cache window: executed long ago (or never — either way it
	// is too old to order again without risking duplicate execution).
	if e.maxExecuted >= clientReplyWindow && ts <= e.maxExecuted-clientReplyWindow {
		return nil, true
	}
	return nil, false
}

// record stores a reply and prunes the window.
func (e *clientEntry) record(ts uint64, rep *messages.Reply) {
	if e.replies == nil {
		e.replies = make(map[uint64]*messages.Reply)
	}
	e.replies[ts] = rep
	if ts > e.maxExecuted {
		e.maxExecuted = ts
	}
	if len(e.replies) > 2*clientReplyWindow {
		for old := range e.replies {
			if e.maxExecuted >= clientReplyWindow && old <= e.maxExecuted-clientReplyWindow {
				delete(e.replies, old)
			}
		}
	}
}

// clientTable is the per-client execution bookkeeping.
type clientTable map[uint32]*clientEntry

func (t clientTable) entry(clientID uint32) *clientEntry {
	e, ok := t[clientID]
	if !ok {
		e = &clientEntry{}
		t[clientID] = e
	}
	return e
}

// digestKey keys pending-request bookkeeping by request digest.
type digestKey = crypto.Digest
