package pbft

import (
	"time"

	"github.com/splitbft/splitbft/internal/messages"
)

// checkRequestTimeouts suspects the primary when a tracked request has been
// pending longer than the request timeout without any execution progress,
// and escalates to further views if the view change itself stalls.
func (r *Replica) checkRequestTimeouts(now time.Time) {
	if len(r.pendingSince) == 0 && !r.inViewChange {
		return
	}
	timeout := r.cfg.RequestTimeout
	if r.inViewChange {
		// Escalate to the next view only after the exponential-backoff
		// deadline (PBFT doubles the view-change timeout per view to
		// guarantee convergence when replicas chase each other's views).
		if now.After(r.vcDeadline) {
			r.vcBackoff++
			r.startViewChange(r.vcTarget + 1)
			return
		}
		// While waiting, periodically rebroadcast our ViewChange: it or
		// the NewView may have been lost, and an installed primary answers
		// a redundant ViewChange by resending its NewView.
		if now.Sub(r.lastProgress) > 2*timeout && r.myVC != nil {
			r.progressMade()
			r.broadcast(r.myVC)
		}
		return
	}
	oldest := now
	for _, since := range r.pendingSince {
		if since.Before(oldest) {
			oldest = since
		}
	}
	if now.Sub(oldest) > timeout && now.Sub(r.lastProgress) > timeout {
		r.startViewChange(r.view + 1)
	}
}

// startViewChange abandons the current view and broadcasts a ViewChange
// for target.
func (r *Replica) startViewChange(target uint64) {
	if target <= r.view && r.inViewChange && target <= r.vcTarget {
		return
	}
	r.inViewChange = true
	r.mInVC.Store(true)
	r.vcTarget = target
	r.view = target
	r.mView.Store(target)
	r.progressMade()
	// Drop the batching buffer: a new primary will re-order client
	// requests on retransmission.
	r.pendingReqs.Reset()
	r.pendingDigest = make(map[digestKey]bool)

	vc := &messages.ViewChange{
		NewViewNum: target,
		Stable:     r.stableCert,
		Prepared:   r.log.prepareCertsAbove(r.lowWatermark, 2*r.cfg.F),
		Replica:    r.cfg.ID,
	}
	vc.Sig = r.sign(vc.SigningBytes())
	r.myVC = vc
	backoff := r.vcBackoff
	if backoff > 6 {
		backoff = 6
	}
	r.vcDeadline = time.Now().Add(2 * r.cfg.RequestTimeout << backoff)
	r.recordViewChange(vc)
	r.broadcast(vc)
	r.maybeNewView(target)
}

// onViewChange collects ViewChange votes and joins view changes already
// supported by f+1 replicas (the PBFT liveness rule).
func (r *Replica) onViewChange(vc *messages.ViewChange) {
	if vc.NewViewNum <= r.view && !r.inViewChange {
		// A peer is still trying to enter a view we already installed: if
		// we are its primary, retransmit the NewView (it may have been
		// lost; without this the peer is stuck forever).
		if r.isPrimary(r.view) && r.lastNewView != nil && r.lastNewView.View == r.view {
			r.sendReplica(vc.Replica, r.lastNewView)
		}
		return
	}
	r.recordViewChange(vc)
	// Join rule: f+1 distinct replicas asking for a view above ours.
	if vc.NewViewNum > r.view {
		above := make(map[uint32]bool)
		minTarget := vc.NewViewNum
		for target, set := range r.viewChanges {
			if target <= r.view {
				continue
			}
			for id := range set {
				above[id] = true
			}
			if target < minTarget {
				minTarget = target
			}
		}
		if len(above) > r.cfg.F {
			r.startViewChange(minTarget)
			return
		}
	}
	r.maybeNewView(vc.NewViewNum)
}

func (r *Replica) recordViewChange(vc *messages.ViewChange) {
	set, ok := r.viewChanges[vc.NewViewNum]
	if !ok {
		set = make(map[uint32]*messages.ViewChange)
		r.viewChanges[vc.NewViewNum] = set
	}
	if _, dup := set[vc.Replica]; !dup {
		set[vc.Replica] = vc
	}
}

// maybeNewView fires at the new primary once 2f+1 ViewChanges for target
// have been collected: it computes and broadcasts the NewView and installs
// the new view locally.
func (r *Replica) maybeNewView(target uint64) {
	if !r.isPrimary(target) || target < r.view || !r.inViewChange || target != r.vcTarget {
		return
	}
	set := r.viewChanges[target]
	if len(set) < r.cfg.quorum() {
		return
	}
	vcs := make([]messages.ViewChange, 0, r.cfg.quorum())
	for _, vc := range set {
		vcs = append(vcs, *vc)
		if len(vcs) == r.cfg.quorum() {
			break
		}
	}
	stable, pps := messages.ComputeNewViewPrePrepares(target, r.cfg.ID, vcs, r.sign)
	nv := &messages.NewView{
		View:        target,
		ViewChanges: vcs,
		Stable:      stable,
		PrePrepares: pps,
		Replica:     r.cfg.ID,
	}
	nv.Sig = r.sign(nv.SigningBytes())
	r.lastNewView = nv
	r.broadcast(nv)
	r.installNewView(nv)
}

// onNewView installs a verified NewView at a backup.
func (r *Replica) onNewView(nv *messages.NewView) {
	if nv.View < r.view || (nv.View == r.view && !r.inViewChange) {
		return
	}
	r.installNewView(nv)
}

// installNewView moves the replica into nv.View: applies the stable
// checkpoint, replays the re-issued PrePrepares, and resumes normal
// operation.
func (r *Replica) installNewView(nv *messages.NewView) {
	r.view = nv.View
	r.mView.Store(nv.View)
	r.inViewChange = false
	r.mInVC.Store(false)
	r.vcBackoff = 0
	r.progressMade()
	if nv.Stable.Seq > r.lowWatermark {
		r.installStable(nv.Stable)
	}
	maxSeq := r.lowWatermark
	for i := range nv.PrePrepares {
		pp := &nv.PrePrepares[i]
		if pp.Seq > maxSeq {
			maxSeq = pp.Seq
		}
		if pp.Seq <= r.lowWatermark {
			continue
		}
		s := r.log.slot(pp.View, pp.Seq)
		s.prePrepare = pp
		if !r.isPrimary(nv.View) {
			p := &messages.Prepare{View: pp.View, Seq: pp.Seq, Digest: pp.Digest, Replica: r.cfg.ID}
			p.Sig = r.sign(p.SigningBytes())
			s.prepares[r.cfg.ID] = p
			r.broadcast(p)
		}
		r.maybePrepared(pp.View, pp.Seq)
	}
	if r.isPrimary(nv.View) && maxSeq > r.nextSeq {
		r.nextSeq = maxSeq
	}
	if r.nextSeq < r.lowWatermark {
		r.nextSeq = r.lowWatermark
	}
	// Forget view-change votes for this and lower views.
	for target := range r.viewChanges {
		if target <= nv.View {
			delete(r.viewChanges, target)
		}
	}
}
