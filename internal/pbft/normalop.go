package pbft

import (
	"time"

	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
)

// onRequest handles an authenticated client request: exactly-once
// bookkeeping, batching at the primary, and failure-detection tracking at
// the backups.
func (r *Replica) onRequest(req *messages.Request) {
	entry := r.clients.entry(req.ClientID)
	if rep, done := entry.executed(req.Timestamp); done {
		// Executed before: retransmit the cached reply if still held.
		if rep != nil {
			r.sendClient(req.ClientID, rep)
		}
		return
	}
	d := req.Digest()
	if _, pending := r.pendingSince[d]; !pending {
		r.pendingSince[d] = time.Now()
	}
	// Batch at the primary. Retransmissions re-enter the batch buffer even
	// if already tracked: after a view change the new primary must propose
	// requests it previously only observed as a backup. The exactly-once
	// client table makes re-proposals harmless.
	if r.isPrimary(r.view) && !r.inViewChange && !r.pendingDigest[d] {
		if r.pendingReqs.Len() == 0 {
			r.batchSince = time.Now()
		}
		r.pendingDigest[d] = true
		r.pendingReqs.Push(*req)
		if r.pendingReqs.Len() >= r.cfg.BatchSize {
			r.cutBatch()
		}
	}
}

// cutBatch turns the buffered requests into a PrePrepare and starts
// agreement for the next sequence number.
func (r *Replica) cutBatch() {
	if r.pendingReqs.Len() == 0 {
		return
	}
	if !r.inWindow(r.nextSeq + 1) {
		return // window full; wait for a checkpoint to advance
	}
	take := r.pendingReqs.Len()
	if take > r.cfg.BatchSize {
		take = r.cfg.BatchSize
	}
	batch := messages.Batch{Requests: r.pendingReqs.PopN(make([]messages.Request, 0, take), take)}
	for i := range batch.Requests {
		delete(r.pendingDigest, batch.Requests[i].Digest())
	}
	r.batchSince = time.Now()

	r.nextSeq++
	pp := &messages.PrePrepare{
		View:    r.view,
		Seq:     r.nextSeq,
		Digest:  batch.Digest(),
		Replica: r.cfg.ID,
		Batch:   batch,
	}
	pp.Sig = r.sign(pp.SigningBytes())
	r.storePrePrepare(pp)
	r.broadcast(pp)
	r.maybePrepared(pp.View, pp.Seq)
}

// storePrePrepare records a PrePrepare in the log and caches its batch
// body for post-view-change execution.
func (r *Replica) storePrePrepare(pp *messages.PrePrepare) {
	s := r.log.slot(pp.View, pp.Seq)
	s.prePrepare = pp
	if len(pp.Batch.Requests) > 0 {
		b := pp.Batch
		r.batchStore[pp.Digest] = &b
	}
}

// onPrePrepare handles the primary's proposal at a backup.
func (r *Replica) onPrePrepare(pp *messages.PrePrepare) {
	if pp.View != r.view || r.inViewChange || !r.inWindow(pp.Seq) {
		return
	}
	if r.isPrimary(r.view) {
		return // primaries do not take proposals from others in their view
	}
	s := r.log.slot(pp.View, pp.Seq)
	if s.prePrepare != nil {
		if s.prePrepare.Digest != pp.Digest {
			// Equivocation by the primary: keep the first, let the timer
			// drive a view change.
			return
		}
		if len(s.prePrepare.Batch.Requests) == 0 && len(pp.Batch.Requests) > 0 {
			r.storePrePrepare(pp) // upgrade a body-less entry from a NewView
		}
	} else {
		r.storePrePrepare(pp)
		p := &messages.Prepare{View: pp.View, Seq: pp.Seq, Digest: pp.Digest, Replica: r.cfg.ID}
		p.Sig = r.sign(p.SigningBytes())
		s.prepares[r.cfg.ID] = p
		r.broadcast(p)
	}
	r.maybePrepared(pp.View, pp.Seq)
}

// onPrepare collects backup votes.
func (r *Replica) onPrepare(p *messages.Prepare) {
	if p.View != r.view || r.inViewChange || !r.inWindow(p.Seq) {
		return
	}
	s := r.log.slot(p.View, p.Seq)
	if _, dup := s.prepares[p.Replica]; dup {
		return
	}
	s.prepares[p.Replica] = p
	r.maybePrepared(p.View, p.Seq)
}

// maybePrepared fires when a slot has a PrePrepare plus 2f matching
// Prepares: the replica commits to the order by broadcasting a Commit.
func (r *Replica) maybePrepared(view, seq uint64) {
	s, ok := r.log.peek(view, seq)
	if !ok || s.prepared || s.prePrepare == nil {
		return
	}
	matching := 0
	for _, p := range s.prepares {
		if p.Digest == s.prePrepare.Digest {
			matching++
		}
	}
	if matching < 2*r.cfg.F {
		return
	}
	s.prepared = true
	c := &messages.Commit{View: view, Seq: seq, Digest: s.prePrepare.Digest, Replica: r.cfg.ID}
	c.Sig = r.sign(c.SigningBytes())
	s.commits[r.cfg.ID] = c
	r.broadcast(c)
	r.maybeCommitted(view, seq)
}

// onCommit collects commit votes.
func (r *Replica) onCommit(c *messages.Commit) {
	if c.View != r.view || r.inViewChange || !r.inWindow(c.Seq) {
		return
	}
	s := r.log.slot(c.View, c.Seq)
	if _, dup := s.commits[c.Replica]; dup {
		return
	}
	s.commits[c.Replica] = c
	r.maybeCommitted(c.View, c.Seq)
}

// maybeCommitted fires when a prepared slot has 2f+1 matching Commits:
// the batch is committed-local and queued for in-order execution.
func (r *Replica) maybeCommitted(view, seq uint64) {
	s, ok := r.log.peek(view, seq)
	if !ok || !s.prepared || s.committed || s.prePrepare == nil {
		return
	}
	matching := 0
	for _, c := range s.commits {
		if c.Digest == s.prePrepare.Digest {
			matching++
		}
	}
	if matching < r.cfg.quorum() {
		return
	}
	s.committed = true
	if s.prePrepare.Digest.IsZero() {
		r.committedNull[seq] = true
	} else if batch, ok := r.batchStore[s.prePrepare.Digest]; ok {
		r.committedBatches[seq] = batch
	} else {
		// Body unknown (committed via a post-view-change certificate).
		// Execution stalls until state transfer catches this replica up.
		r.committedNull[seq] = false
	}
	r.tryExecute()
}

// tryExecute executes committed batches strictly in sequence order.
func (r *Replica) tryExecute() {
	for {
		next := r.lastExec + 1
		if next <= r.lowWatermark {
			// Covered by a stable checkpoint; state transfer handles it.
			return
		}
		if r.committedNull[next] {
			delete(r.committedNull, next)
			r.lastExec = next
			r.mLastExec.Store(next)
			r.afterExecute(next)
			continue
		}
		batch, ok := r.committedBatches[next]
		if !ok {
			return
		}
		delete(r.committedBatches, next)
		r.executeBatch(batch)
		r.lastExec = next
		r.mLastExec.Store(next)
		r.afterExecute(next)
	}
}

// executeBatch runs every request in the batch against the application,
// replies to clients, and maintains the exactly-once table.
func (r *Replica) executeBatch(batch *messages.Batch) {
	for i := range batch.Requests {
		req := &batch.Requests[i]
		entry := r.clients.entry(req.ClientID)
		delete(r.pendingSince, req.Digest())
		if rep, done := entry.executed(req.Timestamp); done {
			if rep != nil {
				r.sendClient(req.ClientID, rep)
			}
			continue // duplicate within/across batches
		}
		result := r.cfg.App.Execute(req.ClientID, req.Payload)
		rep := &messages.Reply{
			View:      r.view,
			ClientID:  req.ClientID,
			Timestamp: req.Timestamp,
			Replica:   r.cfg.ID,
			Result:    result,
		}
		rep.MAC = r.cfg.MACs.MAC(rep.AuthenticatedBytes(),
			crypto.Identity{ReplicaID: req.ClientID, Role: crypto.RoleClient})
		entry.record(req.Timestamp, rep)
		r.mExecuted.Add(1)
		r.sendClient(req.ClientID, rep)
	}
	r.progressMade()
}

// afterExecute produces a checkpoint at interval boundaries.
func (r *Replica) afterExecute(seq uint64) {
	r.progressMade()
	if seq%r.cfg.CheckpointInterval != 0 {
		return
	}
	r.makeCheckpoint(seq)
}
