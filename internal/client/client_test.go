package client

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/transport"
)

// fakeReplicaGroup emulates n replicas answering client requests directly
// over the simnet, without running any agreement — enough to unit-test the
// client's quorum, retransmission, and authentication logic in isolation.
type fakeReplicaGroup struct {
	t      *testing.T
	n, f   int
	secret []byte
	net    *transport.SimNet

	mu sync.Mutex
	// respond computes a reply payload per replica; nil suppresses the
	// reply (to exercise retransmission and partial quorums).
	respond func(replica uint32, req *messages.Request) []byte
	// seen counts requests per replica.
	seen map[uint32]int
}

func newFakeGroup(t *testing.T, respond func(uint32, *messages.Request) []byte) *fakeReplicaGroup {
	t.Helper()
	g := &fakeReplicaGroup{
		t: t, n: 4, f: 1,
		secret:  []byte("client-test-secret"),
		net:     transport.NewSimNet(1),
		respond: respond,
		seen:    make(map[uint32]int),
	}
	for i := 0; i < g.n; i++ {
		id := uint32(i)
		macs := crypto.NewMACStore(g.secret, crypto.Identity{ReplicaID: id, Role: crypto.RoleReplica})
		// The handler needs the conn to reply; bind it after Join.
		var conn transport.Conn
		handler := func(from transport.Endpoint, data []byte) {
			m, err := messages.Unmarshal(data)
			if err != nil {
				return
			}
			req, ok := m.(*messages.Request)
			if !ok {
				return
			}
			g.mu.Lock()
			g.seen[id]++
			fn := g.respond
			g.mu.Unlock()
			if fn == nil {
				return
			}
			result := fn(id, req)
			if result == nil {
				return
			}
			rep := &messages.Reply{
				ClientID:  req.ClientID,
				Timestamp: req.Timestamp,
				Replica:   id,
				Result:    result,
			}
			rep.MAC = macs.MAC(rep.AuthenticatedBytes(),
				crypto.Identity{ReplicaID: req.ClientID, Role: crypto.RoleClient})
			_ = conn.Send(from, messages.Marshal(rep))
		}
		c, err := g.net.Join(transport.ReplicaEndpoint(id), handler)
		if err != nil {
			t.Fatal(err)
		}
		conn = c
	}
	t.Cleanup(g.net.Close)
	return g
}

func (g *fakeReplicaGroup) requests(replica uint32) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.seen[replica]
}

func (g *fakeReplicaGroup) client(t *testing.T, timeout time.Duration) *Client {
	t.Helper()
	cl, err := New(Config{
		ID: 100, N: g.n, F: g.f,
		MACs: crypto.NewMACStore(g.secret, crypto.Identity{ReplicaID: 100, Role: crypto.RoleClient}),
		AuthReceivers: func() []crypto.Identity {
			out := make([]crypto.Identity, g.n)
			for i := range out {
				out[i] = crypto.Identity{ReplicaID: uint32(i), Role: crypto.RoleReplica}
			}
			return out
		}(),
		ReplyRole:          crypto.RoleReplica,
		RetransmitInterval: 100 * time.Millisecond,
		Timeout:            timeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := g.net.Join(transport.ClientEndpoint(100), cl.Handler())
	if err != nil {
		t.Fatal(err)
	}
	cl.Start(conn)
	t.Cleanup(cl.Close)
	return cl
}

func TestClientCollectsQuorum(t *testing.T) {
	g := newFakeGroup(t, func(uint32, *messages.Request) []byte { return []byte("result") })
	cl := g.client(t, 2*time.Second)
	res, err := cl.Invoke([]byte("op"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, []byte("result")) {
		t.Fatalf("result = %q", res)
	}
}

func TestClientNeedsFPlusOneMatching(t *testing.T) {
	// Only one replica answers: f+1 = 2 matching replies never arrive.
	g := newFakeGroup(t, func(id uint32, _ *messages.Request) []byte {
		if id == 0 {
			return []byte("lonely")
		}
		return nil
	})
	cl := g.client(t, 400*time.Millisecond)
	if _, err := cl.Invoke([]byte("op")); err == nil {
		t.Fatal("single reply satisfied the quorum")
	}
}

func TestClientToleratesDivergentMinority(t *testing.T) {
	// One Byzantine replica replies garbage; the other three agree. The
	// client must return the majority result.
	g := newFakeGroup(t, func(id uint32, _ *messages.Request) []byte {
		if id == 3 {
			return []byte("evil")
		}
		return []byte("good")
	})
	cl := g.client(t, 2*time.Second)
	res, err := cl.Invoke([]byte("op"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, []byte("good")) {
		t.Fatalf("client returned minority result %q", res)
	}
}

func TestClientRejectsBadReplyMAC(t *testing.T) {
	// Replies computed with the wrong MAC secret must be ignored.
	wrong := crypto.NewMACStore([]byte("wrong"), crypto.Identity{ReplicaID: 0, Role: crypto.RoleReplica})
	g := newFakeGroup(t, nil)
	g.mu.Lock()
	g.respond = nil
	g.mu.Unlock()
	// Custom responder producing bad MACs for all replicas.
	var mu sync.Mutex
	badMACs := 0
	g.mu.Lock()
	g.respond = func(id uint32, req *messages.Request) []byte {
		mu.Lock()
		badMACs++
		mu.Unlock()
		return []byte("x")
	}
	g.mu.Unlock()
	_ = wrong
	// Instead of plumbing bad MACs through the fake group, verify directly
	// via onReply: a reply with a corrupted MAC is dropped.
	cl := g.client(t, 300*time.Millisecond)
	rep := &messages.Reply{ClientID: 100, Timestamp: 1, Replica: 0, Result: []byte("x")}
	rep.MAC = [crypto.MACSize]byte{1, 2, 3} // garbage
	cl.onReply(rep)
	cl.mu.Lock()
	pending := len(cl.pending)
	cl.mu.Unlock()
	if pending != 0 {
		t.Fatal("forged reply created pending state")
	}
}

func TestClientRetransmits(t *testing.T) {
	// Replicas stay silent for the first two deliveries, then answer:
	// the client's retransmission must eventually succeed.
	var mu sync.Mutex
	drops := make(map[uint32]int)
	g := newFakeGroup(t, nil)
	g.mu.Lock()
	g.respond = func(id uint32, _ *messages.Request) []byte {
		mu.Lock()
		defer mu.Unlock()
		drops[id]++
		if drops[id] <= 2 {
			return nil
		}
		return []byte("late")
	}
	g.mu.Unlock()
	cl := g.client(t, 5*time.Second)
	start := time.Now()
	res, err := cl.Invoke([]byte("op"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, []byte("late")) {
		t.Fatalf("result = %q", res)
	}
	if time.Since(start) < 150*time.Millisecond {
		t.Fatal("success came before any retransmission was possible")
	}
	// A "late" reply implies its replica had already seen 3 deliveries, so
	// at least one replica must be at >= 3. (Asserting on one specific
	// replica would race: Invoke returns on a reply quorum while the last
	// retransmission round may still be in flight to the others.)
	maxSeen := 0
	for id := uint32(0); id < 4; id++ {
		if n := g.requests(id); n > maxSeen {
			maxSeen = n
		}
	}
	if maxSeen < 3 {
		t.Fatalf("max requests seen by any replica = %d, want >= 3 (retransmissions)", maxSeen)
	}
}

func TestClientConcurrentInvokes(t *testing.T) {
	g := newFakeGroup(t, func(_ uint32, req *messages.Request) []byte {
		return append([]byte("r"), req.Payload...)
	})
	cl := g.client(t, 3*time.Second)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			op := []byte{byte(i)}
			res, err := cl.Invoke(op)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(res, append([]byte("r"), op...)) {
				t.Errorf("cross-talk between concurrent invokes: %q", res)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	g := newFakeGroup(t, nil) // nobody answers
	cl := g.client(t, 10*time.Second)
	done := make(chan error, 1)
	go func() {
		_, err := cl.Invoke([]byte("op"))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cl.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Invoke succeeded after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Invoke did not return after Close")
	}
	if _, err := cl.Invoke([]byte("op2")); err == nil {
		t.Fatal("Invoke on closed client succeeded")
	}
}

func TestClientConfidentialRequiresAttest(t *testing.T) {
	g := newFakeGroup(t, nil)
	cl, err := New(Config{
		ID: 100, N: g.n, F: g.f,
		MACs:          crypto.NewMACStore(g.secret, crypto.Identity{ReplicaID: 100, Role: crypto.RoleClient}),
		AuthReceivers: []crypto.Identity{{ReplicaID: 0, Role: crypto.RoleReplica}},
		ReplyRole:     crypto.RoleReplica,
		Confidential:  true,
		Registry:      crypto.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := g.net.Join(transport.ClientEndpoint(101), cl.Handler())
	if err != nil {
		t.Fatal(err)
	}
	cl.Start(conn)
	defer cl.Close()
	if _, err := cl.Invoke([]byte("op")); err != ErrNotAttested {
		t.Fatalf("Invoke before Attest = %v, want ErrNotAttested", err)
	}
}

func TestClientConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	macs := crypto.NewMACStore([]byte("s"), crypto.Identity{ReplicaID: 1, Role: crypto.RoleClient})
	if _, err := New(Config{MACs: macs}); err == nil {
		t.Fatal("config without receivers accepted")
	}
	if _, err := New(Config{
		MACs:          macs,
		AuthReceivers: []crypto.Identity{{ReplicaID: 0, Role: crypto.RoleReplica}},
		Confidential:  true,
	}); err == nil {
		t.Fatal("confidential config without registry accepted")
	}
}

func TestADFunctionsAreDistinct(t *testing.T) {
	if bytes.Equal(RequestAD(1, 2), RequestAD(1, 3)) {
		t.Fatal("RequestAD must depend on timestamp")
	}
	if bytes.Equal(RequestAD(1, 2), RequestAD(2, 2)) {
		t.Fatal("RequestAD must depend on client")
	}
	if !bytes.Equal(ReplyAD(1, 2), ReplyAD(1, 2)) {
		t.Fatal("ReplyAD must be deterministic")
	}
	if bytes.Equal(ProvisionAD(1), ProvisionAD(2)) {
		t.Fatal("ProvisionAD must depend on client")
	}
}
