// Package client implements the SplitBFT/PBFT client library: request
// authentication (HMAC vectors), reply-quorum collection (f+1 matching
// replies), retransmission, and — for the confidential SplitBFT mode —
// enclave attestation, session-key provisioning and end-to-end payload
// encryption (paper §4.1).
package client

import (
	"bytes"
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/defaults"
	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/tee"
	"github.com/splitbft/splitbft/internal/transport"
)

// Errors returned by Invoke and Attest.
var (
	ErrTimeout     = errors.New("client: request timed out")
	ErrClosed      = errors.New("client: closed")
	ErrNotAttested = errors.New("client: confidential mode requires Attest first")
)

// Config parameterizes a client.
type Config struct {
	// ID is the client's unique identifier.
	ID uint32
	// N and F describe the replica group.
	N, F int
	// MACs holds the client's pairwise MAC keys.
	MACs *crypto.MACStore
	// AuthReceivers is the request MAC-vector layout (one identity per
	// slot). Baseline: one slot per replica. SplitBFT: Preparation then
	// Execution enclaves.
	AuthReceivers []crypto.Identity
	// ReplyRole is the role whose identity authenticates replies
	// (RoleReplica for the baseline, RoleExecution for SplitBFT).
	ReplyRole crypto.Role
	// Consensus is the deployment's consensus mode; the client needs it to
	// validate the group shape (trusted groups are 2F+1, not 3F+1) when it
	// builds a verifier for the attestation handshake.
	Consensus messages.ConsensusMode
	// ReplyQuorum is how many matching replies resolve an invocation
	// (the dual-commit knob): 0 defaults to F+1 — the fast trusted-commit
	// rule — while 2F+1 is the conservative full-commit rule.
	ReplyQuorum int
	// Confidential enables end-to-end payload encryption to the Execution
	// enclaves. Requires Attest before Invoke.
	Confidential bool
	// Registry and ExecMeasurement verify attestation quotes in
	// confidential mode.
	Registry        *crypto.Registry
	ExecMeasurement crypto.Digest
	// ReadLeases routes InvokeRead through the lease-anchored local read
	// fast path: the read goes to a single replica (spread round-robin
	// across the group) and one attested reply resolves it. A refused or
	// lost fast-path read falls back to the full agreement path, so the
	// worst case is one extra round-trip on top of a classic read. Off,
	// InvokeRead is identical to Invoke.
	ReadLeases bool
	// ReadLinearizable selects the consistency level of leased reads:
	// true (linearizable) requires the serving replica to have applied
	// everything proposed up to its lease grant; false (session) only
	// requires it to have applied this client's own writes
	// (read-your-writes + monotonic reads). Both levels require a valid
	// lease; session merely relaxes the freshness anchor.
	ReadLinearizable bool
	// RetransmitInterval is how long to wait for a reply quorum before
	// resending the request to all replicas. Default
	// defaults.RetransmitInterval, aligned with the replica failure
	// detector's request timeout.
	RetransmitInterval time.Duration
	// Timeout bounds one Invoke end-to-end. Default
	// defaults.InvokeTimeout.
	Timeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.RetransmitInterval == 0 {
		c.RetransmitInterval = defaults.RetransmitInterval
	}
	if c.Timeout == 0 {
		c.Timeout = defaults.InvokeTimeout
	}
	if c.ReplyQuorum == 0 {
		c.ReplyQuorum = c.F + 1
	}
	return c
}

// call tracks one in-flight request.
type call struct {
	done    chan []byte // resolved result (plaintext)
	replies map[uint32][]byte
	sealed  bool // whether results must be decrypted before matching
}

// Client is a closed-loop BFT client. It is safe for concurrent Invokes;
// each concurrent Invoke uses a distinct timestamp.
type Client struct {
	cfg  Config
	conn transport.Conn

	ts atomic.Uint64

	// watermark is the highest agreement sequence this client has observed
	// applied (from write replies and read replies). It is the MinSeq floor
	// for session-consistency reads: a replica may only answer once it has
	// applied at least this far, which yields read-your-writes and
	// monotonic reads across replicas.
	watermark atomic.Uint64
	// readRR spreads fast-path reads round-robin across replicas; seeded
	// with the client ID so a fleet of clients doesn't converge on one
	// replica.
	readRR atomic.Uint32
	// resends counts write retransmissions (see Resends).
	resends atomic.Uint64

	mu           sync.Mutex
	pending      map[uint64]*call
	pendingReads map[uint64]chan *messages.ReadReply
	closed       bool

	// Confidential-mode session state.
	sessionKey crypto.SessionKey
	sendSess   *crypto.Session
	recvSess   *crypto.Session
	attested   atomic.Bool

	// attestation handshake plumbing
	attestMu sync.Mutex
	quoteCh  chan *messages.AttestQuote
}

// New builds a client from cfg.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.MACs == nil {
		return nil, errors.New("client: MACs required")
	}
	if len(cfg.AuthReceivers) == 0 {
		return nil, errors.New("client: AuthReceivers required")
	}
	if cfg.Confidential && cfg.Registry == nil {
		return nil, errors.New("client: confidential mode requires Registry")
	}
	c := &Client{
		cfg:          cfg,
		pending:      make(map[uint64]*call),
		pendingReads: make(map[uint64]chan *messages.ReadReply),
		quoteCh:      make(chan *messages.AttestQuote, 16),
	}
	c.readRR.Store(cfg.ID)
	// Timestamps seed from the wall clock (as in PBFT) rather than zero:
	// exactly-once execution is keyed by (client, timestamp), so a
	// restarted client process reusing its ID must not collide with its
	// predecessor's timestamps — it would be served stale cached replies
	// instead of executing. Within one process the counter stays strictly
	// monotonic regardless of clock behavior.
	c.ts.Store(uint64(time.Now().UnixNano()))
	return c, nil
}

// Handler returns the transport handler for this client's endpoint.
func (c *Client) Handler() transport.Handler {
	return func(from transport.Endpoint, data []byte) {
		m, err := messages.Unmarshal(data)
		if err != nil {
			return
		}
		switch msg := m.(type) {
		case *messages.Reply:
			c.onReply(msg)
		case *messages.ReadReply:
			c.onReadReply(msg)
		case *messages.AttestQuote:
			select {
			case c.quoteCh <- msg:
			default:
			}
		}
	}
}

// Start attaches the transport connection.
func (c *Client) Start(conn transport.Conn) { c.conn = conn }

// Close fails all pending calls.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for ts, call := range c.pending {
		close(call.done)
		delete(c.pending, ts)
	}
	for ts, ch := range c.pendingReads {
		close(ch)
		delete(c.pendingReads, ts)
	}
}

// Attest runs the attestation + key-provisioning handshake with every
// replica's Execution enclave and installs the service-wide session key
// s_enc (paper §4.1). It must complete before confidential Invokes.
func (c *Client) Attest() error {
	if !c.cfg.Confidential {
		return nil
	}
	c.attestMu.Lock()
	defer c.attestMu.Unlock()
	if c.attested.Load() {
		return nil
	}
	ecdhKey, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return fmt.Errorf("client ECDH key: %w", err)
	}
	var clientPub [32]byte
	copy(clientPub[:], ecdhKey.PublicKey().Bytes())
	var nonce [32]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return fmt.Errorf("client nonce: %w", err)
	}
	sessionKey, err := crypto.NewSessionKey()
	if err != nil {
		return err
	}

	ver, err := messages.NewVerifierMode(c.cfg.N, c.cfg.F, c.cfg.Registry, messages.SplitScheme(), c.cfg.Consensus)
	if err != nil {
		return err
	}
	req := &messages.AttestRequest{ClientID: c.cfg.ID, Nonce: nonce, ClientPub: clientPub}
	data := messages.Marshal(req)
	for id := uint32(0); int(id) < c.cfg.N; id++ {
		if err := c.conn.Send(transport.ReplicaEndpoint(id), data); err != nil {
			return err
		}
	}
	// Collect quotes from all n Execution enclaves, wrap s_enc to each.
	provisioned := make(map[uint32]bool)
	deadline := time.After(c.cfg.Timeout)
	for len(provisioned) < c.cfg.N {
		select {
		case <-deadline:
			return fmt.Errorf("%w: attested %d/%d enclaves", ErrTimeout, len(provisioned), c.cfg.N)
		case q := <-c.quoteCh:
			if provisioned[q.Replica] || q.Nonce != nonce {
				continue
			}
			if err := ver.VerifyQuote(q, c.cfg.ExecMeasurement, nonce); err != nil {
				continue // forged or stale quote; keep waiting for a real one
			}
			peer, err := ecdh.X25519().NewPublicKey(q.EnclavePub[:])
			if err != nil {
				continue
			}
			shared, err := ecdhKey.ECDH(peer)
			if err != nil {
				continue
			}
			wrapKey := tee.DeriveSessionKey(shared)
			wrapSess, err := crypto.NewSession(wrapKey, 0)
			if err != nil {
				continue
			}
			prov := &messages.ProvisionKey{
				ClientID:   c.cfg.ID,
				Replica:    q.Replica,
				WrappedKey: wrapSess.Seal(sessionKey[:], ProvisionAD(c.cfg.ID)),
			}
			if err := c.conn.Send(transport.ReplicaEndpoint(q.Replica), messages.Marshal(prov)); err != nil {
				return err
			}
			provisioned[q.Replica] = true
		}
	}
	c.sessionKey = sessionKey
	if c.sendSess, err = crypto.NewSession(sessionKey, 0); err != nil {
		return err
	}
	// recvSess decrypts replies from any replica (nonces carried in-band).
	if c.recvSess, err = crypto.NewSession(sessionKey, 1); err != nil {
		return err
	}
	c.attested.Store(true)
	return nil
}

// ProvisionAD binds the wrapped session-key blob to the provisioning
// client; the Execution compartment computes the same bytes when
// unwrapping.
func ProvisionAD(clientID uint32) []byte {
	e := messages.NewEncoder(8)
	e.U32(clientID)
	return e.Bytes()
}

// RequestAD binds a confidential payload to (client, timestamp); it is the
// AES-GCM associated data for request payloads. Exported because the
// Execution compartment must compute the same bytes.
func RequestAD(clientID uint32, timestamp uint64) []byte {
	e := messages.NewEncoder(12)
	e.U32(clientID)
	e.U64(timestamp)
	return e.Bytes()
}

// ReplyAD binds a confidential reply to (client, timestamp). The replica ID
// is intentionally excluded so honest replicas produce comparable
// ciphertext contents (plaintexts are compared after decryption anyway).
func ReplyAD(clientID uint32, timestamp uint64) []byte {
	e := messages.NewEncoder(12)
	e.U32(clientID)
	e.U64(timestamp)
	return e.Bytes()
}

// Invoke submits op and blocks until f+1 matching replies arrive or the
// timeout expires. In confidential mode op is encrypted end-to-end and the
// returned result is the decrypted plaintext.
func (c *Client) Invoke(op []byte) ([]byte, error) {
	if c.cfg.Confidential && !c.attested.Load() {
		return nil, ErrNotAttested
	}
	ts := c.ts.Add(1)
	payload := op
	if c.cfg.Confidential {
		payload = c.sendSess.Seal(op, RequestAD(c.cfg.ID, ts))
	}
	req := &messages.Request{ClientID: c.cfg.ID, Timestamp: ts, Payload: payload}
	auth := c.cfg.MACs.Authenticate(req.AuthenticatedBytes(), c.cfg.AuthReceivers)
	req.Auth = auth
	data := messages.Marshal(req)

	ca := &call{
		done:    make(chan []byte, 1),
		replies: make(map[uint32][]byte),
		sealed:  c.cfg.Confidential,
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.pending[ts] = ca
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, ts)
		c.mu.Unlock()
	}()

	// A replica that cannot be reached (crashed, restarting, partitioned
	// away) is a fault the protocol tolerates: a failed send must look
	// like a lost message — the reply quorum and retransmission handle it
	// — not abort the invocation. Only a totally unreachable group is an
	// error.
	send := func() error {
		var firstErr error
		sent := 0
		for id := uint32(0); int(id) < c.cfg.N; id++ {
			if err := c.conn.Send(transport.ReplicaEndpoint(id), data); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			sent++
		}
		if sent == 0 {
			return firstErr
		}
		return nil
	}
	if err := send(); err != nil {
		return nil, err
	}
	// Retransmission backs off exponentially (with jitter) instead of
	// firing at a fixed period: during a view change or partition every
	// stranded client would otherwise resend to all N replicas every
	// interval, and the synchronized storm slows the very recovery it is
	// waiting for. The first resend still happens after one interval (so
	// failure detection is not delayed), later ones spread out, capped at
	// eight intervals so a healed cluster is re-contacted promptly.
	deadline := time.After(c.cfg.Timeout)
	backoff := c.cfg.RetransmitInterval
	maxBackoff := 8 * c.cfg.RetransmitInterval
	retry := time.NewTimer(jitter(backoff))
	defer retry.Stop()
	for {
		select {
		case res, ok := <-ca.done:
			if !ok {
				return nil, ErrClosed
			}
			return res, nil
		case <-retry.C:
			if err := send(); err != nil {
				return nil, err
			}
			c.resends.Add(1)
			backoff *= 2
			if backoff > maxBackoff {
				backoff = maxBackoff
			}
			retry.Reset(jitter(backoff))
		case <-deadline:
			return nil, fmt.Errorf("%w: op after %v", ErrTimeout, c.cfg.Timeout)
		}
	}
}

// jitter spreads a backoff delay uniformly over [3d/4, 5d/4) so concurrent
// clients' retransmissions desynchronize while the expected period stays d.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d - d/4 + time.Duration(mrand.Int63n(int64(d)/2))
}

// Resends returns how many write retransmissions this client has sent —
// the backoff behavior's observable surface, pinned by chaos tests.
func (c *Client) Resends() uint64 { return c.resends.Load() }

// InvokeRead submits a read-only operation. With ReadLeases off it is
// exactly Invoke. With ReadLeases on it first tries the local-read fast
// path — one ReadRequest to one replica, one attested ReadReply back — and
// falls back to the agreement path whenever the fast path refuses (replica
// leaseless, lease near expiry, replica behind the session watermark, app
// says the op isn't side-effect-free) or the reply doesn't arrive within
// one retransmit interval. The fallback makes the fast path purely an
// optimization: reads are never served stale, only slower.
func (c *Client) InvokeRead(op []byte) ([]byte, error) {
	if !c.cfg.ReadLeases {
		return c.Invoke(op)
	}
	if c.cfg.Confidential && !c.attested.Load() {
		return nil, ErrNotAttested
	}
	ts := c.ts.Add(1)
	payload := op
	if c.cfg.Confidential {
		payload = c.sendSess.Seal(op, RequestAD(c.cfg.ID, ts))
	}
	target := (c.readRR.Add(1) - 1) % uint32(c.cfg.N)
	req := &messages.ReadRequest{
		ClientID:     c.cfg.ID,
		Timestamp:    ts,
		MinSeq:       c.watermark.Load(),
		Linearizable: c.cfg.ReadLinearizable,
		Payload:      payload,
	}
	req.MAC = c.cfg.MACs.MAC(req.AuthenticatedBytes(),
		crypto.Identity{ReplicaID: target, Role: c.cfg.ReplyRole})

	ch := make(chan *messages.ReadReply, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.pendingReads[ts] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pendingReads, ts)
		c.mu.Unlock()
	}()

	if err := c.conn.Send(transport.ReplicaEndpoint(target), messages.Marshal(req)); err != nil {
		return c.Invoke(op)
	}
	timer := time.NewTimer(c.cfg.RetransmitInterval)
	defer timer.Stop()
	select {
	case rep, ok := <-ch:
		if !ok {
			return nil, ErrClosed
		}
		if rep.OK {
			result := rep.Result
			if c.cfg.Confidential {
				pt, err := c.recvSess.Open(result, ReplyAD(rep.ClientID, rep.Timestamp))
				if err != nil {
					return c.Invoke(op)
				}
				result = pt
			}
			c.advanceWatermark(rep.AppliedSeq)
			return result, nil
		}
		// Explicit refusal: the replica answered but would not serve the
		// read locally. Order it instead.
		return c.Invoke(op)
	case <-timer.C:
		return c.Invoke(op)
	}
}

// onReadReply verifies a fast-path read reply's MAC and hands it to the
// waiting InvokeRead. Refusals are delivered too — an explicit no is the
// signal to fall back immediately instead of burning the full interval.
func (c *Client) onReadReply(rep *messages.ReadReply) {
	if rep.ClientID != c.cfg.ID {
		return
	}
	sender := crypto.Identity{ReplicaID: rep.Replica, Role: c.cfg.ReplyRole}
	if err := c.cfg.MACs.VerifySingle(rep.AuthenticatedBytes(), rep.MAC, sender); err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ch, ok := c.pendingReads[rep.Timestamp]
	if !ok {
		return
	}
	select {
	case ch <- rep:
	default:
	}
}

// advanceWatermark raises the session watermark to seq (monotonic).
func (c *Client) advanceWatermark(seq uint64) {
	for {
		cur := c.watermark.Load()
		if seq <= cur || c.watermark.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// onReply verifies a reply MAC, decrypts confidential results, and resolves
// the pending call once ReplyQuorum replicas agree on the result.
func (c *Client) onReply(rep *messages.Reply) {
	if rep.ClientID != c.cfg.ID {
		return
	}
	sender := crypto.Identity{ReplicaID: rep.Replica, Role: c.cfg.ReplyRole}
	if err := c.cfg.MACs.VerifySingle(rep.AuthenticatedBytes(), rep.MAC, sender); err != nil {
		return
	}
	// The reply is MAC-authenticated by an Execution compartment, which is
	// trusted under the fault model, so its applied sequence is honest:
	// advance the session watermark so later leased reads see this write.
	c.advanceWatermark(rep.Seq)
	result := rep.Result
	c.mu.Lock()
	defer c.mu.Unlock()
	ca, ok := c.pending[rep.Timestamp]
	if !ok {
		return
	}
	if ca.sealed {
		pt, err := c.recvSess.Open(result, ReplyAD(rep.ClientID, rep.Timestamp))
		if err != nil {
			return
		}
		result = pt
	}
	if _, dup := ca.replies[rep.Replica]; dup {
		return
	}
	ca.replies[rep.Replica] = result
	matching := 0
	for _, other := range ca.replies {
		if bytes.Equal(other, result) {
			matching++
		}
	}
	if matching >= c.cfg.ReplyQuorum {
		select {
		case ca.done <- result:
		default:
		}
	}
}
