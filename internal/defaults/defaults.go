// Package defaults holds the protocol and client timing defaults shared
// by the replica side (internal/core), the client library
// (internal/client), and the public splitbft facade. Keeping them in one
// leaf package guarantees the replica's failure-detector timeout and the
// client's retransmission interval cannot silently drift apart: a client
// that retransmits faster than replicas suspect the primary would turn
// every network hiccup into duplicate ordering work, and one that
// retransmits slower would stall liveness probes.
package defaults

import "time"

// Agreement-layer defaults (replica side).
const (
	// CheckpointInterval is the sequence-number distance between
	// checkpoints.
	CheckpointInterval uint64 = 128
	// WatermarkWindow is the width of the active sequence-number window.
	WatermarkWindow uint64 = 2 * CheckpointInterval
	// BatchSize is the paper's batched-mode batch size (§6).
	BatchSize = 200
	// BatchTimeout bounds how long the broker waits to fill a batch.
	BatchTimeout = 10 * time.Millisecond
	// RequestTimeout is the replica failure-detector timeout: how long an
	// ordered request may stay unexecuted before the primary is suspected.
	RequestTimeout = 500 * time.Millisecond
)

// Client-side defaults. RetransmitInterval deliberately equals
// RequestTimeout so one client resend per failure-detector period reaches
// the backup replicas that drive a view change.
const (
	// RetransmitInterval is how long a client waits for a reply quorum
	// before resending a request to all replicas.
	RetransmitInterval = RequestTimeout
	// InvokeTimeout bounds one client invocation end-to-end, across
	// retransmissions and view changes.
	InvokeTimeout = 10 * time.Second
)
