package messages

import (
	"testing"

	"github.com/splitbft/splitbft/internal/crypto"
)

// benchPrePrepare builds a realistic PrePrepare with a small batch, the
// workhorse message of the agreement hot path.
func benchPrePrepare(reqs int) *PrePrepare {
	b := Batch{Requests: make([]Request, reqs)}
	for i := range b.Requests {
		b.Requests[i] = Request{
			ClientID:  uint32(1000 + i),
			Timestamp: uint64(i + 1),
			Payload:   []byte("0123456789"),
			Auth:      crypto.Authenticator{MACs: make([][crypto.MACSize]byte, 8)},
		}
	}
	return &PrePrepare{View: 3, Seq: 42, Digest: b.Digest(), Replica: 3, Batch: b, Sig: make([]byte, 64)}
}

func BenchmarkCodecEncode(b *testing.B) {
	pp := benchPrePrepare(10)
	b.Run("Marshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = Marshal(pp)
		}
	})
	b.Run("AppendMessage", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 4096)
		for i := 0; i < b.N; i++ {
			buf = AppendMessage(buf[:0], pp)
		}
	})
	b.Run("BatchDigest", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = pp.Batch.Digest()
		}
	})
	b.Run("SigningBytes", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = pp.SigningBytes()
		}
	})
}

// benchVerifier builds a verifier over a 4-replica registry plus a signed
// Prepare from replica 1.
func benchVerifier(b testing.TB, cached bool) (*Verifier, *Prepare) {
	reg := crypto.NewRegistry()
	keys := make([]*crypto.KeyPair, 4)
	for i := range keys {
		keys[i] = crypto.MustGenerateKeyPair()
		reg.Register(crypto.Identity{ReplicaID: uint32(i), Role: crypto.RolePreparation}, keys[i].Public)
	}
	ver, err := NewVerifier(4, 1, reg, SplitScheme())
	if err != nil {
		b.Fatal(err)
	}
	if cached {
		ver.Cache = NewVerifyCache(1024)
	}
	p := &Prepare{View: 0, Seq: 7, Digest: crypto.HashData([]byte("d")), Replica: 1}
	p.Sig = keys[1].Sign(p.SigningBytes())
	return ver, p
}

func BenchmarkVerifyCached(b *testing.B) {
	b.Run("Cold", func(b *testing.B) {
		// No cache: every verification pays the Ed25519 cost.
		ver, p := benchVerifier(b, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ver.VerifyPrepare(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Hot", func(b *testing.B) {
		// Cache on and warmed: retransmits skip the Ed25519 work.
		ver, p := benchVerifier(b, true)
		if err := ver.VerifyPrepare(p); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ver.VerifyPrepare(p); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if s := ver.Cache.Stats(); s.Hits == 0 {
			b.Fatal("cache never hit")
		}
	})
}

func TestVerifyCacheHitsAndStats(t *testing.T) {
	ver, p := benchVerifier(t, true)
	for i := 0; i < 3; i++ {
		if err := ver.VerifyPrepare(p); err != nil {
			t.Fatal(err)
		}
	}
	s := ver.Cache.Stats()
	if s.Misses != 1 || s.Hits != 2 {
		t.Fatalf("stats = %+v, want 1 miss then 2 hits", s)
	}
	if got := s.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate = %v, want 2/3", got)
	}
	ver.Cache.Reset()
	if s := ver.Cache.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
	// Entries survive a counter reset: the next lookup is still a hit.
	if err := ver.VerifyPrepare(p); err != nil {
		t.Fatal(err)
	}
	if s := ver.Cache.Stats(); s.Hits != 1 {
		t.Fatalf("stats after reset+verify = %+v, want a hit", s)
	}
}

func TestVerifyCacheNeverCachesFailures(t *testing.T) {
	ver, p := benchVerifier(t, true)
	forged := *p
	forged.Sig = make([]byte, 64) // invalid signature
	for i := 0; i < 2; i++ {
		if err := ver.VerifyPrepare(&forged); err == nil {
			t.Fatal("forged Prepare verified")
		}
	}
	// Both attempts were recomputed misses; nothing was cached for them.
	if s := ver.Cache.Stats(); s.Hits != 0 || s.Misses != 2 {
		t.Fatalf("stats = %+v, want 0 hits / 2 misses", s)
	}
	// The genuine message still verifies.
	if err := ver.VerifyPrepare(p); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCacheKeyBindsSignature(t *testing.T) {
	// Two different valid signatures over the same bytes (Ed25519 is
	// deterministic, so simulate by signer identity differences): a cache
	// entry must never validate a different (signer, bytes, sig) triple.
	ver, p := benchVerifier(t, true)
	if err := ver.VerifyPrepare(p); err != nil {
		t.Fatal(err)
	}
	tampered := *p
	tampered.Seq = 8 // changes SigningBytes; old sig must not carry over
	if err := ver.VerifyPrepare(&tampered); err == nil {
		t.Fatal("tampered Prepare passed via cache")
	}
}

func TestVerifyCacheEviction(t *testing.T) {
	c := NewVerifyCache(4) // two generations of 2
	keys := make([]verifyKey, 6)
	for i := range keys {
		keys[i] = verifyKey{signer: crypto.Identity{ReplicaID: uint32(i)}, sum: crypto.HashData([]byte{byte(i)})}
		c.store(keys[i])
	}
	// The most recent entries survive; storing never grows beyond 2 gens.
	if c.set.Len() > 4 {
		t.Fatalf("cache holds %d entries, cap 4", c.set.Len())
	}
	if !c.lookup(keys[5]) {
		t.Fatal("most recent entry evicted")
	}
	if c.lookup(keys[0]) {
		t.Fatal("oldest entry survived two generations of churn")
	}
}
