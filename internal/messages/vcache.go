package messages

import (
	"sync"
	"sync/atomic"

	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/genset"
)

// verifyKey identifies one successful signature verification: the signer
// identity plus a digest binding the signed bytes and the signature value.
type verifyKey struct {
	signer crypto.Identity
	sum    crypto.Digest
}

// VerifyCache memoizes successful signature verifications, keyed by
// (digest, signer), so a (message, signature, signer) triple pays the
// Ed25519 cost once. Two kinds of repeats profit: retransmits and
// view-change replays (the same Prepares, Commits and
// certificate-embedded PrePrepares verified again and again), and — with
// the parallel verify pool enabled — the serial handler pass consuming
// the verifications the preprocessing workers computed.
//
// Only successes are cached: a forged signature is recomputed (and
// rejected) every time, so an attacker cannot poison the cache, and a key
// replaced in the Registry cannot resurrect stale failures. Eviction is
// generational (genset.Set) with promotion for entries in active use;
// everything an entry attests is a pure function of (bytes, signature,
// registered key), so eviction is only ever a performance event.
//
// The cache is safe for concurrent use; in SplitBFT each compartment owns
// its own cache, mirroring the paper's rule that compartments share no
// state — the parallel preprocessing pool inside one enclave is the only
// concurrent writer.
type VerifyCache struct {
	mu         sync.Mutex
	set        *genset.Set[verifyKey]
	hits, miss atomic.Uint64
}

// NewVerifyCache returns a cache holding roughly `entries` verifications.
// entries <= 0 picks a default suited to a replica's in-flight window.
func NewVerifyCache(entries int) *VerifyCache {
	if entries <= 0 {
		entries = 8192
	}
	return &VerifyCache{set: genset.New[verifyKey](entries)}
}

// lookup reports whether k is cached, counting the hit or miss.
func (c *VerifyCache) lookup(k verifyKey) bool {
	c.mu.Lock()
	ok := c.set.ContainsPromote(k)
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.miss.Add(1)
	}
	return ok
}

// store records a successful verification.
func (c *VerifyCache) store(k verifyKey) {
	c.mu.Lock()
	c.set.Add(k)
	c.mu.Unlock()
}

// VerifyCacheStats is a point-in-time snapshot of cache effectiveness:
// hits are signature checks whose Ed25519 scalar multiplication was
// skipped entirely.
type VerifyCacheStats struct {
	Hits   uint64
	Misses uint64
}

// HitRate returns hits/(hits+misses), or 0 when nothing was looked up.
func (s VerifyCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns the cumulative hit/miss counters.
func (c *VerifyCache) Stats() VerifyCacheStats {
	return VerifyCacheStats{Hits: c.hits.Load(), Misses: c.miss.Load()}
}

// Reset zeroes the hit/miss counters (between benchmark phases). Cached
// entries are kept: resetting effectiveness accounting must not cost
// recomputation.
func (c *VerifyCache) Reset() {
	c.hits.Store(0)
	c.miss.Store(0)
}
