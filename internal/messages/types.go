package messages

import (
	"fmt"

	"github.com/splitbft/splitbft/internal/crypto"
)

// Type identifies a wire message kind in the envelope header.
type Type uint8

// Wire message types. The numeric values are part of the wire format.
const (
	TRequest Type = iota + 1
	TPrePrepare
	TPrepare
	TCommit
	TReply
	TCheckpoint
	TViewChange
	TNewView
	TAttestRequest
	TAttestQuote
	TProvisionKey
	TStateRequest
	TStateReply
	TSuspect
	TBatchFetch
	TBatchReply
	TStateProbe
	TLeaseGrant
	TReadRequest
	TReadReply
	TLeaseAck
	TReadIndex
	TReadIndexReply
)

// String returns the conventional protocol name for the message type.
func (t Type) String() string {
	switch t {
	case TRequest:
		return "Request"
	case TPrePrepare:
		return "PrePrepare"
	case TPrepare:
		return "Prepare"
	case TCommit:
		return "Commit"
	case TReply:
		return "Reply"
	case TCheckpoint:
		return "Checkpoint"
	case TViewChange:
		return "ViewChange"
	case TNewView:
		return "NewView"
	case TAttestRequest:
		return "AttestRequest"
	case TAttestQuote:
		return "AttestQuote"
	case TProvisionKey:
		return "ProvisionKey"
	case TStateRequest:
		return "StateRequest"
	case TStateReply:
		return "StateReply"
	case TSuspect:
		return "Suspect"
	case TBatchFetch:
		return "BatchFetch"
	case TBatchReply:
		return "BatchReply"
	case TStateProbe:
		return "StateProbe"
	case TLeaseGrant:
		return "LeaseGrant"
	case TReadRequest:
		return "ReadRequest"
	case TReadReply:
		return "ReadReply"
	case TLeaseAck:
		return "LeaseAck"
	case TReadIndex:
		return "ReadIndex"
	case TReadIndexReply:
		return "ReadIndexReply"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ProbePing is the single-byte out-of-band connectivity probe the health
// endpoint sends to each peer replica: it collides with no wire Type, so
// the receiving broker's classify stage drops it as an unknown type
// without decoding anything. Reaching the peer's transport is the whole
// point — a forged or replayed ping can cost bandwidth only.
const ProbePing byte = 0xFE

// Message is implemented by every wire message.
type Message interface {
	// MsgType returns the envelope type tag.
	MsgType() Type
	// encodeBody appends the message body (everything after the type tag).
	encodeBody(e *Encoder)
	// decodeBody parses the message body.
	decodeBody(d *Decoder)
}

// Request is a client operation submitted for ordering. The Payload is
// opaque to the ordering compartments: for confidential applications it is
// an AES-GCM ciphertext only the Execution enclaves can open.
type Request struct {
	ClientID  uint32
	Timestamp uint64 // client-local sequence number, provides exactly-once
	Payload   []byte
	// Auth carries one MAC per receiver; the receiver layout is fixed per
	// system (see RequestAuthReceivers and BaselineAuthReceivers).
	Auth crypto.Authenticator
}

// MsgType implements Message.
func (*Request) MsgType() Type { return TRequest }

// Digest returns the request digest covering the authenticated fields
// (client, timestamp, payload) but not the MAC vector, which differs per
// receiver set.
func (r *Request) Digest() crypto.Digest {
	e := GetEncoder()
	r.encodeAuthenticated(e)
	d := crypto.HashData(e.Bytes())
	PutEncoder(e)
	return d
}

// encodeAuthenticated encodes the fields covered by MACs and digests.
func (r *Request) encodeAuthenticated(e *Encoder) {
	e.U32(r.ClientID)
	e.U64(r.Timestamp)
	e.VarBytes(r.Payload)
}

// AuthenticatedBytes returns the bytes the client MACs are computed over.
func (r *Request) AuthenticatedBytes() []byte {
	e := NewEncoder(16 + len(r.Payload))
	r.encodeAuthenticated(e)
	return e.Bytes()
}

// AppendAuthenticated appends the MAC-covered bytes to a caller-provided
// (typically pooled) encoder — the allocation-free sibling of
// AuthenticatedBytes for per-request hot paths.
func (r *Request) AppendAuthenticated(e *Encoder) {
	r.encodeAuthenticated(e)
}

func (r *Request) encodeBody(e *Encoder) {
	r.encodeAuthenticated(e)
	e.U32(uint32(len(r.Auth.MACs)))
	for _, m := range r.Auth.MACs {
		e.MAC(m)
	}
}

func (r *Request) decodeBody(d *Decoder) {
	r.ClientID = d.U32()
	r.Timestamp = d.U64()
	r.Payload = d.VarBytes()
	n := d.Count(4096)
	if n == 0 {
		return
	}
	r.Auth.MACs = make([][crypto.MACSize]byte, n)
	for i := 0; i < n; i++ {
		r.Auth.MACs[i] = d.MAC()
	}
}

// Batch groups client requests ordered under one sequence number. Batching
// happens in the untrusted environment (paper §3.2) and the batch digest is
// what the agreement protocol orders.
type Batch struct {
	Requests []Request
}

// Digest returns the batch digest: the hash over the ordered request
// digests. Ordering is significant.
func (b *Batch) Digest() crypto.Digest {
	e := GetEncoder()
	for i := range b.Requests {
		d := b.Requests[i].Digest()
		e.Digest(d)
	}
	d := crypto.HashData(e.Bytes())
	PutEncoder(e)
	return d
}

func (b *Batch) encode(e *Encoder) {
	e.U32(uint32(len(b.Requests)))
	for i := range b.Requests {
		b.Requests[i].encodeBody(e)
	}
}

// MarshalBatch encodes a standalone batch, used for the environment's
// NewBatch ecall into the Preparation compartment (batching happens in the
// untrusted environment, §3.2).
func MarshalBatch(b *Batch) []byte {
	e := NewEncoder(256)
	b.encode(e)
	return e.Bytes()
}

// AppendBatch appends the MarshalBatch encoding of b to dst and returns
// the extended slice, for callers framing batches into pooled buffers.
func AppendBatch(dst []byte, b *Batch) []byte {
	e := Encoder{buf: dst}
	b.encode(&e)
	return e.buf
}

// UnmarshalBatch reverses MarshalBatch.
func UnmarshalBatch(data []byte) (*Batch, error) {
	d := NewDecoder(data)
	var b Batch
	b.decode(d)
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return &b, nil
}

func (b *Batch) decode(d *Decoder) {
	n := d.Count(1 << 16)
	if n == 0 {
		return
	}
	b.Requests = make([]Request, n)
	for i := 0; i < n; i++ {
		b.Requests[i].decodeBody(d)
	}
}

// PrePrepare is the primary's ordering proposal for one sequence number in
// one view. The signature (or, in MAC mode, the authenticator vector)
// covers (view, seq, digest, replica); the batch body is bound
// transitively through the digest.
type PrePrepare struct {
	View    uint64
	Seq     uint64
	Digest  crypto.Digest // batch digest
	Replica uint32        // proposing replica (primary of View)
	Batch   Batch         // full requests; may be empty in certificates
	Sig     []byte
	// Auth is the MAC-mode authenticator vector over SigningBytes, laid
	// out per AgreementAuthReceivers(TPrePrepare, n). Empty in sig mode.
	Auth crypto.Authenticator
	// CtrVal/CtrSig bind the proposal to the primary's trusted monotonic
	// counter in trusted consensus mode: CtrSig is the counter enclave's
	// attestation over (Replica, CtrVal, CounterDigest(pp)). Because the
	// bound digest covers the full signed header, the attestation cannot be
	// replayed for a different view, sequence, batch, or proposer. Zero and
	// empty in classic mode.
	CtrVal uint64
	CtrSig []byte
}

// MsgType implements Message.
func (*PrePrepare) MsgType() Type { return TPrePrepare }

// SigningBytes returns the bytes the signature covers.
func (p *PrePrepare) SigningBytes() []byte {
	e := NewEncoder(64)
	e.U8(uint8(TPrePrepare))
	e.U64(p.View)
	e.U64(p.Seq)
	e.Digest(p.Digest)
	e.U32(p.Replica)
	return e.Bytes()
}

// StripBatch returns a copy of p without the request bodies, as embedded in
// prepare certificates and ViewChange messages.
func (p *PrePrepare) StripBatch() *PrePrepare {
	cp := *p
	cp.Batch = Batch{}
	return &cp
}

// StripAuth returns a copy of p without batch, signature or authenticator
// vector — the bare header embedded in MAC-mode certificates, whose
// authenticity rides on the certificate vouch instead. The counter
// attestation (CtrVal/CtrSig) is kept: in trusted consensus mode it is
// itself the transferable proof a certificate carries.
func (p *PrePrepare) StripAuth() *PrePrepare {
	cp := *p
	cp.Batch = Batch{}
	cp.Sig = nil
	cp.Auth = crypto.Authenticator{}
	return &cp
}

func (p *PrePrepare) encodeBody(e *Encoder) {
	e.U64(p.View)
	e.U64(p.Seq)
	e.Digest(p.Digest)
	e.U32(p.Replica)
	p.Batch.encode(e)
	e.VarBytes(p.Sig)
	e.Auth(p.Auth)
	e.U64(p.CtrVal)
	e.VarBytes(p.CtrSig)
}

func (p *PrePrepare) decodeBody(d *Decoder) {
	p.View = d.U64()
	p.Seq = d.U64()
	p.Digest = d.Digest()
	p.Replica = d.U32()
	p.Batch.decode(d)
	p.Sig = d.VarBytes()
	p.Auth = d.Auth()
	p.CtrVal = d.U64()
	p.CtrSig = d.VarBytes()
}

// Prepare is a backup's vote that it received the primary's PrePrepare for
// (View, Seq, Digest).
type Prepare struct {
	View    uint64
	Seq     uint64
	Digest  crypto.Digest
	Replica uint32
	Sig     []byte
	// Auth is the MAC-mode authenticator vector (one slot per Confirmation
	// compartment). Empty in sig mode.
	Auth crypto.Authenticator
}

// MsgType implements Message.
func (*Prepare) MsgType() Type { return TPrepare }

// SigningBytes returns the bytes the signature covers.
func (p *Prepare) SigningBytes() []byte {
	e := NewEncoder(64)
	e.U8(uint8(TPrepare))
	e.U64(p.View)
	e.U64(p.Seq)
	e.Digest(p.Digest)
	e.U32(p.Replica)
	return e.Bytes()
}

func (p *Prepare) encodeBody(e *Encoder) {
	e.U64(p.View)
	e.U64(p.Seq)
	e.Digest(p.Digest)
	e.U32(p.Replica)
	e.VarBytes(p.Sig)
	e.Auth(p.Auth)
}

func (p *Prepare) decodeBody(d *Decoder) {
	p.View = d.U64()
	p.Seq = d.U64()
	p.Digest = d.Digest()
	p.Replica = d.U32()
	p.Sig = d.VarBytes()
	p.Auth = d.Auth()
}

// Commit is a replica's vote that a prepare certificate exists for
// (View, Seq, Digest).
type Commit struct {
	View    uint64
	Seq     uint64
	Digest  crypto.Digest
	Replica uint32
	Sig     []byte
	// Auth is the MAC-mode authenticator vector (one slot per Execution
	// compartment). Empty in sig mode.
	Auth crypto.Authenticator
}

// MsgType implements Message.
func (*Commit) MsgType() Type { return TCommit }

// SigningBytes returns the bytes the signature covers.
func (c *Commit) SigningBytes() []byte {
	e := NewEncoder(64)
	e.U8(uint8(TCommit))
	e.U64(c.View)
	e.U64(c.Seq)
	e.Digest(c.Digest)
	e.U32(c.Replica)
	return e.Bytes()
}

func (c *Commit) encodeBody(e *Encoder) {
	e.U64(c.View)
	e.U64(c.Seq)
	e.Digest(c.Digest)
	e.U32(c.Replica)
	e.VarBytes(c.Sig)
	e.Auth(c.Auth)
}

func (c *Commit) decodeBody(d *Decoder) {
	c.View = d.U64()
	c.Seq = d.U64()
	c.Digest = d.Digest()
	c.Replica = d.U32()
	c.Sig = d.VarBytes()
	c.Auth = d.Auth()
}

// Reply carries an execution result back to the client. For confidential
// applications Result is ciphertext under the client's session key. The MAC
// authenticates the reply from the executing enclave to the client.
type Reply struct {
	View      uint64
	ClientID  uint32
	Timestamp uint64
	Replica   uint32
	// Seq is the agreement sequence number the operation executed at. The
	// client keeps the highest Seq it has seen as its session watermark, so
	// a later session-consistent read can require at least this much
	// history from whichever replica serves it. Zero where the executing
	// engine does not track it (the monolithic pbft baseline).
	Seq    uint64
	Result []byte
	MAC    [crypto.MACSize]byte
}

// MsgType implements Message.
func (*Reply) MsgType() Type { return TReply }

// AuthenticatedBytes returns the bytes the reply MAC covers.
func (r *Reply) AuthenticatedBytes() []byte {
	e := NewEncoder(32 + len(r.Result))
	e.U8(uint8(TReply))
	e.U64(r.View)
	e.U32(r.ClientID)
	e.U64(r.Timestamp)
	e.U32(r.Replica)
	e.U64(r.Seq)
	e.VarBytes(r.Result)
	return e.Bytes()
}

func (r *Reply) encodeBody(e *Encoder) {
	e.U64(r.View)
	e.U32(r.ClientID)
	e.U64(r.Timestamp)
	e.U32(r.Replica)
	e.U64(r.Seq)
	e.VarBytes(r.Result)
	e.MAC(r.MAC)
}

func (r *Reply) decodeBody(d *Decoder) {
	r.View = d.U64()
	r.ClientID = d.U32()
	r.Timestamp = d.U64()
	r.Replica = d.U32()
	r.Seq = d.U64()
	r.Result = d.VarBytes()
	r.MAC = d.MAC()
}

// Suspect is an environment-level notification that the request timer
// expired, prompting the Confirmation compartment to start a view change.
// It is local to a replica (environment → enclave) and unauthenticated: a
// forged Suspect can only cost liveness, never safety (paper P1).
type Suspect struct {
	Replica uint32
	View    uint64 // the view being suspected
}

// MsgType implements Message.
func (*Suspect) MsgType() Type { return TSuspect }

func (s *Suspect) encodeBody(e *Encoder) {
	e.U32(s.Replica)
	e.U64(s.View)
}

func (s *Suspect) decodeBody(d *Decoder) {
	s.Replica = d.U32()
	s.View = d.U64()
}

// BatchFetch asks peer Execution compartments for the request bodies of a
// batch that committed here but whose PrePrepare never arrived (e.g. it
// was lost while this replica was down). It is unauthenticated: answering
// it leaks nothing (bodies are broadcast in PrePrepares anyway, and
// confidential payloads inside are ciphertext), and a forged fetch can
// only cost bandwidth.
type BatchFetch struct {
	Seq     uint64
	Digest  crypto.Digest // the committed batch digest
	Replica uint32        // requester
}

// MsgType implements Message.
func (*BatchFetch) MsgType() Type { return TBatchFetch }

func (f *BatchFetch) encodeBody(e *Encoder) {
	e.U64(f.Seq)
	e.Digest(f.Digest)
	e.U32(f.Replica)
}

func (f *BatchFetch) decodeBody(d *Decoder) {
	f.Seq = d.U64()
	f.Digest = d.Digest()
	f.Replica = d.U32()
}

// StateProbe asks peer Execution compartments whether the cluster has
// advanced past the sender's state — the rejoin nudge a recovered replica
// broadcasts while it may still be behind, so its outage gap closes even
// on an idle cluster where no checkpoint traffic flows. Have carries the
// sender's highest applied sequence; peers whose stable checkpoint is
// newer answer with a StateReply. It is unauthenticated: the reply is a
// certificate-carrying StateReply the receiver fully verifies, so a
// forged probe can only cost bandwidth (bounded by the broker's
// reflection budget, like BatchFetch).
type StateProbe struct {
	Have    uint64
	Replica uint32 // prober
}

// MsgType implements Message.
func (s *StateProbe) MsgType() Type { return TStateProbe }

func (s *StateProbe) encodeBody(e *Encoder) {
	e.U64(s.Have)
	e.U32(s.Replica)
}

func (s *StateProbe) decodeBody(d *Decoder) {
	s.Have = d.U64()
	s.Replica = d.U32()
}

// BatchReply answers a BatchFetch with the full request bodies. It needs
// no signature: the requester holds a commit certificate binding Seq to
// Digest, and verifies the carried batch hashes to exactly that digest —
// the reply is self-certifying.
type BatchReply struct {
	Seq     uint64
	Digest  crypto.Digest
	Batch   Batch
	Replica uint32 // responder
}

// MsgType implements Message.
func (*BatchReply) MsgType() Type { return TBatchReply }

func (r *BatchReply) encodeBody(e *Encoder) {
	e.U64(r.Seq)
	e.Digest(r.Digest)
	r.Batch.encode(e)
	e.U32(r.Replica)
}

func (r *BatchReply) decodeBody(d *Decoder) {
	r.Seq = d.U64()
	r.Digest = d.Digest()
	r.Batch.decode(d)
	r.Replica = d.U32()
}

// LeaseGrant distributes a read lease from the primary's trusted counter
// enclave to one replica's Execution compartment. The signature is the
// counter enclave's Ed25519 attestation over the lease fields (see
// crypto.LeaseSigningBytes), so the grant needs no transport-level
// authentication of its own: a forged or replayed grant either fails the
// signature check or re-delivers a lease the holder already has.
type LeaseGrant struct {
	Granter   uint32 // primary replica owning the counter
	Holder    uint32 // replica authorized to serve local reads
	View      uint64 // view the lease is valid in (view change revokes)
	AnchorSeq uint64 // primary's proposal frontier at grant time (informational)
	CtrVal    uint64 // counter position at grant time
	Expiry    int64  // UnixNano wall-clock bound
	// Probe marks a non-servable grant: the holder acknowledges it (proving
	// reachability to the granter) but never installs it. The primary sends
	// probes until a quorum of fresh LeaseAcks authorizes real grants, so a
	// primary cut off from a quorum can never keep leases alive.
	Probe bool
	Sig   []byte // counter-enclave signature (RoleCounter key)
}

// MsgType implements Message.
func (*LeaseGrant) MsgType() Type { return TLeaseGrant }

func (g *LeaseGrant) encodeBody(e *Encoder) {
	e.U32(g.Granter)
	e.U32(g.Holder)
	e.U64(g.View)
	e.U64(g.AnchorSeq)
	e.U64(g.CtrVal)
	e.U64(uint64(g.Expiry))
	e.Bool(g.Probe)
	e.VarBytes(g.Sig)
}

func (g *LeaseGrant) decodeBody(d *Decoder) {
	g.Granter = d.U32()
	g.Holder = d.U32()
	g.View = d.U64()
	g.AnchorSeq = d.U64()
	g.CtrVal = d.U64()
	g.Expiry = int64(d.U64())
	g.Probe = d.Bool()
	g.Sig = d.VarBytes()
}

// ReadRequest asks one replica's Execution compartment to serve a read
// locally under its lease, without running agreement. MinSeq is the
// client's session watermark: the replica must have applied at least that
// sequence before answering, which yields read-your-writes in session mode
// and, combined with the lease admission rules, linearizability in
// linearizable mode. The MAC authenticates client → target Execution
// enclave (a single MAC, not a vector — the request goes to one replica).
type ReadRequest struct {
	ClientID     uint32
	Timestamp    uint64 // client-local sequence number (read namespace)
	MinSeq       uint64 // lowest applied sequence acceptable to the client
	Linearizable bool   // false = explicit session consistency
	Payload      []byte // read-only operation (ciphertext when confidential)
	MAC          [crypto.MACSize]byte
}

// MsgType implements Message.
func (*ReadRequest) MsgType() Type { return TReadRequest }

// AuthenticatedBytes returns the bytes the request MAC covers.
func (r *ReadRequest) AuthenticatedBytes() []byte {
	e := NewEncoder(32 + len(r.Payload))
	e.U8(uint8(TReadRequest))
	e.U32(r.ClientID)
	e.U64(r.Timestamp)
	e.U64(r.MinSeq)
	e.Bool(r.Linearizable)
	e.VarBytes(r.Payload)
	return e.Bytes()
}

func (r *ReadRequest) encodeBody(e *Encoder) {
	e.U32(r.ClientID)
	e.U64(r.Timestamp)
	e.U64(r.MinSeq)
	e.Bool(r.Linearizable)
	e.VarBytes(r.Payload)
	e.MAC(r.MAC)
}

func (r *ReadRequest) decodeBody(d *Decoder) {
	r.ClientID = d.U32()
	r.Timestamp = d.U64()
	r.MinSeq = d.U64()
	r.Linearizable = d.Bool()
	r.Payload = d.VarBytes()
	r.MAC = d.MAC()
}

// ReadReply answers a ReadRequest. OK=false is an explicit, authenticated
// refusal (no lease, lease expired or near expiry, applied index behind
// the admission bound): the client falls back to the agreement path
// immediately instead of waiting out a timeout. AppliedSeq is the
// replica's applied sequence at serve time and advances the client's
// session watermark. A single verified reply is accepted — the lease, not
// a reply quorum, carries the linearizability argument.
type ReadReply struct {
	Replica    uint32
	ClientID   uint32
	Timestamp  uint64
	View       uint64
	AppliedSeq uint64
	OK         bool
	Result     []byte
	MAC        [crypto.MACSize]byte
}

// MsgType implements Message.
func (*ReadReply) MsgType() Type { return TReadReply }

// AuthenticatedBytes returns the bytes the reply MAC covers.
func (r *ReadReply) AuthenticatedBytes() []byte {
	e := NewEncoder(40 + len(r.Result))
	e.U8(uint8(TReadReply))
	e.U32(r.Replica)
	e.U32(r.ClientID)
	e.U64(r.Timestamp)
	e.U64(r.View)
	e.U64(r.AppliedSeq)
	e.Bool(r.OK)
	e.VarBytes(r.Result)
	return e.Bytes()
}

func (r *ReadReply) encodeBody(e *Encoder) {
	e.U32(r.Replica)
	e.U32(r.ClientID)
	e.U64(r.Timestamp)
	e.U64(r.View)
	e.U64(r.AppliedSeq)
	e.Bool(r.OK)
	e.VarBytes(r.Result)
	e.MAC(r.MAC)
}

func (r *ReadReply) decodeBody(d *Decoder) {
	r.Replica = d.U32()
	r.ClientID = d.U32()
	r.Timestamp = d.U64()
	r.View = d.U64()
	r.AppliedSeq = d.U64()
	r.OK = d.Bool()
	r.Result = d.VarBytes()
	r.MAC = d.MAC()
}

// LeaseAck acknowledges a verified LeaseGrant back to the granting
// primary's Preparation compartment. Expiry echoes the acknowledged grant
// round's expiry and doubles as the round nonce: the granter keeps only
// the per-holder maximum and treats a holder as reachable while that
// maximum lies in the future, so replaying an old ack can never refresh a
// holder. Acks are what authorize real (servable) grants — a primary
// holding fresh acks from a quorum is provably not cut off in a minority
// partition.
type LeaseAck struct {
	Holder uint32 // acknowledging replica (its Execution compartment signs)
	View   uint64 // holder's current view; must match the granter's
	Expiry int64  // echoed grant-round expiry (UnixNano)
	Sig    []byte
	// Auth is the MAC-mode authenticator vector (one slot per Preparation
	// compartment). Empty in sig mode.
	Auth crypto.Authenticator
}

// MsgType implements Message.
func (*LeaseAck) MsgType() Type { return TLeaseAck }

// SigningBytes returns the bytes the signature covers.
func (a *LeaseAck) SigningBytes() []byte {
	e := NewEncoder(32)
	e.U8(uint8(TLeaseAck))
	e.U32(a.Holder)
	e.U64(a.View)
	e.U64(uint64(a.Expiry))
	return e.Bytes()
}

func (a *LeaseAck) encodeBody(e *Encoder) {
	e.U32(a.Holder)
	e.U64(a.View)
	e.U64(uint64(a.Expiry))
	e.VarBytes(a.Sig)
	e.Auth(a.Auth)
}

func (a *LeaseAck) decodeBody(d *Decoder) {
	a.Holder = d.U32()
	a.View = d.U64()
	a.Expiry = int64(d.U64())
	a.Sig = d.VarBytes()
	a.Auth = d.Auth()
}

// ReadIndex asks the primary's Preparation compartment for its current
// proposal frontier — the read-index confirmation of the linearizable
// read fast path. A write acknowledged to any client has committed, hence
// was proposed, hence its sequence number is at or below the frontier the
// primary reports for any query sent afterwards; a holder that waits
// until it has applied the frontier therefore observes every completed
// write. Epoch orders this holder's queries so a stale reply cannot
// confirm a later read.
type ReadIndex struct {
	Holder uint32 // querying replica (its Execution compartment signs)
	View   uint64 // holder's current view; the primary answers only its own
	Epoch  uint64 // holder-local query sequence number
	Sig    []byte
	// Auth is the MAC-mode authenticator vector (one slot per Preparation
	// compartment). Empty in sig mode.
	Auth crypto.Authenticator
}

// MsgType implements Message.
func (*ReadIndex) MsgType() Type { return TReadIndex }

// SigningBytes returns the bytes the signature covers.
func (r *ReadIndex) SigningBytes() []byte {
	e := NewEncoder(32)
	e.U8(uint8(TReadIndex))
	e.U32(r.Holder)
	e.U64(r.View)
	e.U64(r.Epoch)
	return e.Bytes()
}

func (r *ReadIndex) encodeBody(e *Encoder) {
	e.U32(r.Holder)
	e.U64(r.View)
	e.U64(r.Epoch)
	e.VarBytes(r.Sig)
	e.Auth(r.Auth)
}

func (r *ReadIndex) decodeBody(d *Decoder) {
	r.Holder = d.U32()
	r.View = d.U64()
	r.Epoch = d.U64()
	r.Sig = d.VarBytes()
	r.Auth = d.Auth()
}

// ReadIndexReply answers a ReadIndex with the primary's proposal frontier.
// Frontier is the highest sequence number the primary's Preparation
// compartment has assigned in the reply's view; view changes install the
// frontier at or above every slot that could have committed earlier, so
// the bound survives primary turnover.
type ReadIndexReply struct {
	Replica  uint32 // answering primary
	View     uint64
	Epoch    uint64 // echoed query epoch
	Frontier uint64 // primary's highest assigned sequence number
	Sig      []byte
	// Auth is the MAC-mode authenticator vector (one slot per Execution
	// compartment). Empty in sig mode.
	Auth crypto.Authenticator
}

// MsgType implements Message.
func (*ReadIndexReply) MsgType() Type { return TReadIndexReply }

// SigningBytes returns the bytes the signature covers.
func (r *ReadIndexReply) SigningBytes() []byte {
	e := NewEncoder(40)
	e.U8(uint8(TReadIndexReply))
	e.U32(r.Replica)
	e.U64(r.View)
	e.U64(r.Epoch)
	e.U64(r.Frontier)
	return e.Bytes()
}

func (r *ReadIndexReply) encodeBody(e *Encoder) {
	e.U32(r.Replica)
	e.U64(r.View)
	e.U64(r.Epoch)
	e.U64(r.Frontier)
	e.VarBytes(r.Sig)
	e.Auth(r.Auth)
}

func (r *ReadIndexReply) decodeBody(d *Decoder) {
	r.Replica = d.U32()
	r.View = d.U64()
	r.Epoch = d.U64()
	r.Frontier = d.U64()
	r.Sig = d.VarBytes()
	r.Auth = d.Auth()
}
