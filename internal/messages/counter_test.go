package messages

import (
	"strings"
	"testing"

	"github.com/splitbft/splitbft/internal/crypto"
)

// newTrustedFixture builds a fully keyed 2f+1 trusted-consensus group:
// per-replica compartment keys plus the counter enclaves' attestation
// keys. The tests below play the byzantine leader against it — forging,
// gapping, replaying and transplanting counter attestations — and expect
// the Verifier to reject every variant.
func newTrustedFixture(t *testing.T, scheme SignerScheme) *fixture {
	t.Helper()
	fx := &fixture{t: t, n: 3, f: 1, reg: crypto.NewRegistry(), keys: make(map[crypto.Identity]*crypto.KeyPair)}
	roles := []crypto.Role{
		crypto.RoleReplica, crypto.RolePreparation, crypto.RoleConfirmation,
		crypto.RoleExecution, crypto.RoleCounter,
	}
	for r := 0; r < fx.n; r++ {
		for _, role := range roles {
			id := crypto.Identity{ReplicaID: uint32(r), Role: role}
			kp := crypto.MustGenerateKeyPair()
			fx.keys[id] = kp
			fx.reg.Register(id, kp.Public)
		}
	}
	ver, err := NewVerifierMode(fx.n, fx.f, fx.reg, scheme, ConsensusTrusted)
	if err != nil {
		t.Fatal(err)
	}
	fx.ver = ver
	return fx
}

// attest binds value to pp exactly as the owning replica's counter
// enclave would: the attestation signs the counter-digest of the
// proposal, so it is transferable but not transplantable.
func (fx *fixture) attest(pp *PrePrepare, value uint64) {
	pp.CtrVal = value
	msg := crypto.CounterSigningBytes(pp.Replica, value, CounterDigest(pp))
	pp.CtrSig = fx.sign(pp.Replica, crypto.RoleCounter, msg)
}

func TestValidConsensusGroupSizes(t *testing.T) {
	cases := []struct {
		mode ConsensusMode
		n, f int
		ok   bool
	}{
		{ConsensusClassic, 4, 1, true},
		{ConsensusClassic, 3, 1, false},
		{ConsensusClassic, 7, 2, true},
		{ConsensusTrusted, 3, 1, true},
		{ConsensusTrusted, 4, 1, false},
		{ConsensusTrusted, 5, 2, true},
		{ConsensusTrusted, 3, -1, false},
	}
	for _, c := range cases {
		if got := ValidConsensus(c.mode, c.n, c.f); got != c.ok {
			t.Errorf("ValidConsensus(%v, n=%d, f=%d) = %v, want %v", c.mode, c.n, c.f, got, c.ok)
		}
	}
	if _, err := NewVerifierMode(4, 1, crypto.NewRegistry(), SplitScheme(), ConsensusTrusted); err == nil {
		t.Fatal("trusted verifier accepted a 3f+1 group")
	}
}

// TestTrustedCounterAttestationChecks walks the byzantine-leader attack
// surface of the counter binding: each tampered proposal must fail
// VerifyCounterAt while the honest one passes.
func TestTrustedCounterAttestationChecks(t *testing.T) {
	fx := newTrustedFixture(t, SplitScheme())

	good := fx.prePrepare(0, 1, testBatch(1))
	fx.attest(good, 1)
	if err := fx.ver.VerifyCounterAt(good, 0, 0); err != nil {
		t.Fatalf("honest counter-bound PrePrepare rejected: %v", err)
	}

	// Missing attestation: a classic-mode proposal leaking into a trusted
	// group must not commit.
	bare := fx.prePrepare(0, 1, testBatch(1))
	if err := fx.ver.VerifyCounterAt(bare, 0, 0); err == nil {
		t.Fatal("PrePrepare without counter attestation accepted")
	}

	// Forged: right value, but signed outside the counter enclave (here:
	// with the leader's Preparation key).
	forged := fx.prePrepare(0, 1, testBatch(1))
	forged.CtrVal = 1
	forged.CtrSig = fx.sign(0, crypto.RolePreparation,
		crypto.CounterSigningBytes(0, 1, CounterDigest(forged)))
	if err := fx.ver.VerifyCounterAt(forged, 0, 0); err == nil {
		t.Fatal("forged counter attestation accepted")
	}

	// Gapped: the leader skips a counter value. The affine assignment law
	// CtrVal = base + (Seq - seqBase) breaks and the proposal is rejected
	// even though the attestation signature itself is genuine.
	gapped := fx.prePrepare(0, 1, testBatch(1))
	fx.attest(gapped, 2)
	if err := fx.ver.VerifyCounterAt(gapped, 0, 0); err == nil {
		t.Fatal("gapped counter value accepted")
	}
	// ...and the mirror image: reusing an old value for a later slot.
	reused := fx.prePrepare(0, 2, testBatch(2))
	fx.attest(reused, 1)
	if err := fx.ver.VerifyCounterAt(reused, 0, 0); err == nil {
		t.Fatal("replayed (reused) counter value accepted")
	}

	// Replayed attestation: a genuine attestation lifted from one proposal
	// onto a different batch at the same slot — the equivocation attack the
	// counter exists to kill. The digest binding breaks the signature.
	pa := fx.prePrepare(0, 1, testBatch(1))
	fx.attest(pa, 1)
	pb := fx.prePrepare(0, 1, testBatch(2))
	pb.CtrVal, pb.CtrSig = pa.CtrVal, pa.CtrSig
	if err := fx.ver.VerifyCounterAt(pb, 0, 0); err == nil {
		t.Fatal("counter attestation replayed onto a different batch accepted")
	}

	// Transplanted: a genuine attestation from ANOTHER replica's counter
	// enclave. The verifier looks the key up under the proposer's identity,
	// so replica 1's signature never validates a proposal claiming to be
	// replica 0's.
	tp := fx.prePrepare(0, 1, testBatch(1))
	tp.CtrVal = 1
	tp.CtrSig = fx.sign(1, crypto.RoleCounter,
		crypto.CounterSigningBytes(1, 1, CounterDigest(tp)))
	if err := fx.ver.VerifyCounterAt(tp, 0, 0); err == nil {
		t.Fatal("counter attestation transplanted from another replica accepted")
	}
}

// trustedPrepareCert builds what a trusted-mode replica stores as its
// prepared proof: the stripped proposal whose counter attestation IS the
// certificate — no Prepares.
func (fx *fixture) trustedPrepareCert(view, seq, ctr uint64, batch Batch) PrepareCert {
	pp := fx.prePrepare(view, seq, batch)
	fx.attest(pp, ctr)
	return PrepareCert{PrePrepare: *pp.StripAuth()}
}

func TestTrustedPrepareCertVerify(t *testing.T) {
	fx := newTrustedFixture(t, SplitScheme())
	pc := fx.trustedPrepareCert(0, 1, 1, testBatch(1))
	if err := fx.ver.VerifyPrepareCert(&pc); err != nil {
		t.Fatalf("trusted prepare cert rejected: %v", err)
	}
	if len(pc.Prepares) != 0 {
		t.Fatalf("trusted prepare cert carries %d Prepares, want none", len(pc.Prepares))
	}

	// A cert whose proposer is not the view's primary must fail even with
	// a genuine attestation from that replica's own counter enclave.
	rogue := fx.trustedPrepareCert(0, 1, 1, testBatch(1))
	rogue.PrePrepare.Replica = 1
	rogue.PrePrepare.CtrSig = fx.sign(1, crypto.RoleCounter,
		crypto.CounterSigningBytes(1, 1, CounterDigest(&rogue.PrePrepare)))
	if err := fx.ver.VerifyPrepareCert(&rogue); err == nil {
		t.Fatal("trusted prepare cert from non-primary accepted")
	}

	// Stripped of its attestation, the cert proves nothing.
	naked := fx.trustedPrepareCert(0, 1, 1, testBatch(1))
	naked.PrePrepare.CtrSig = nil
	if err := fx.ver.VerifyPrepareCert(&naked); err == nil {
		t.Fatal("trusted prepare cert without attestation accepted")
	}
}

// TestViewChangeStaleCounterClaim: a ViewChange must advertise a counter
// position at least as high as its own best certificate — understating it
// would let a colluding next leader re-assign already-used counter values
// to fresh proposals.
func TestViewChangeStaleCounterClaim(t *testing.T) {
	fx := newTrustedFixture(t, SplitScheme())
	pc := fx.trustedPrepareCert(0, 3, 3, testBatch(3))

	honest := ViewChange{NewViewNum: 1, Stable: CheckpointCert{}, Prepared: []PrepareCert{pc}, Replica: 2, HighCtr: 3}
	honest.Sig = fx.sign(2, fx.ver.Scheme.ViewChange, honest.SigningBytes())
	if err := fx.ver.VerifyViewChange(&honest); err != nil {
		t.Fatalf("honest ViewChange rejected: %v", err)
	}

	stale := ViewChange{NewViewNum: 1, Stable: CheckpointCert{}, Prepared: []PrepareCert{pc}, Replica: 2, HighCtr: 2}
	stale.Sig = fx.sign(2, fx.ver.Scheme.ViewChange, stale.SigningBytes())
	err := fx.ver.VerifyViewChange(&stale)
	if err == nil {
		t.Fatal("ViewChange with stale counter claim accepted")
	}
	if !strings.Contains(err.Error(), "stale claim") {
		t.Fatalf("unexpected rejection reason: %v", err)
	}
}

// TestTrustedNewViewCounterBase: the re-issued proposals in a NewView must
// consume FRESH counter values starting at the advertised CtrBase — a new
// leader reusing the old view's values (or skipping ahead) is rejected by
// every correct replica, so it can neither rewrite nor skip slots.
func TestTrustedNewViewCounterBase(t *testing.T) {
	fx := newTrustedFixture(t, SplitScheme())
	pc := fx.trustedPrepareCert(0, 1, 1, testBatch(1))

	mkVC := func(replica uint32) ViewChange {
		vc := ViewChange{NewViewNum: 1, Stable: CheckpointCert{}, Prepared: []PrepareCert{pc}, Replica: replica, HighCtr: 1}
		vc.Sig = fx.sign(replica, fx.ver.Scheme.ViewChange, vc.SigningBytes())
		return vc
	}
	vcs := []ViewChange{mkVC(1), mkVC(2)} // f+1 = 2 ViewChanges

	// The new primary (replica 1) re-issues seq 1. Its own counter has
	// already produced `base` values, so the re-issue consumes base+1.
	build := func(base uint64, reissueCtr uint64) *NewView {
		stable, pps := ComputeNewViewPrePrepares(1, 1, vcs, func(b []byte) []byte {
			return fx.sign(1, fx.ver.Scheme.PrePrepare, b)
		})
		for i := range pps {
			fx.attest(&pps[i], reissueCtr+uint64(i))
		}
		nv := &NewView{View: 1, Replica: 1, ViewChanges: vcs, Stable: stable, PrePrepares: pps, CtrBase: base}
		nv.Sig = fx.sign(1, fx.ver.Scheme.NewView, nv.SigningBytes())
		return nv
	}

	if err := fx.ver.VerifyNewView(build(7, 8)); err != nil {
		t.Fatalf("honest NewView rejected: %v", err)
	}
	if err := fx.ver.VerifyNewView(build(7, 3)); err == nil {
		t.Fatal("NewView re-issue with counter value below its base accepted")
	}
	if err := fx.ver.VerifyNewView(build(7, 9)); err == nil {
		t.Fatal("NewView re-issue skipping a counter value accepted")
	}
}
