// Package messages defines every wire message exchanged by SplitBFT and the
// PBFT baseline, together with a deterministic, hand-rolled binary codec.
//
// Determinism matters: protocol digests (request digests, batch digests,
// checkpoint digests) and signatures are computed over encoded bytes, so the
// same logical message must always encode to the same bytes. The codec is a
// simple little-endian, length-prefixed format with no reflection, mirroring
// the serde-based serialization the paper's implementation uses across the
// enclave boundary (§5).
package messages

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"github.com/splitbft/splitbft/internal/crypto"
)

// maxLen caps every length prefix read by the decoder so malformed or
// malicious inputs cannot trigger huge allocations.
const maxLen = 1 << 26 // 64 MiB

// ErrDecode wraps all decoding failures.
var ErrDecode = errors.New("messages: decode error")

// Encoder appends primitive values to a growing byte buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder with the given capacity hint.
func NewEncoder(sizeHint int) *Encoder {
	return &Encoder{buf: make([]byte, 0, sizeHint)}
}

// encoderPool recycles Encoders for encode-hash-discard and
// encode-verify-discard uses on the hot path (digests, signing bytes),
// where the buffer never outlives the call. Roughly half of all protocol
// encodes are of this shape.
var encoderPool = sync.Pool{New: func() any { return NewEncoder(256) }}

// GetEncoder returns a pooled Encoder, reset and ready for use. Callers
// MUST NOT let the buffer escape: hand it back with PutEncoder once the
// encoded bytes have been consumed (hashed, verified, copied). For buffers
// whose ownership transfers to the caller, use NewEncoder instead.
func GetEncoder() *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.Reset()
	return e
}

// PutEncoder returns a pooled Encoder. The encoded bytes become invalid.
func PutEncoder(e *Encoder) {
	// Do not pool pathological buffers (e.g. a full state snapshot): keep
	// the pool's steady-state footprint small.
	if cap(e.buf) <= 1<<16 {
		encoderPool.Put(e)
	}
}

// Reset truncates the encoder to empty, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends a single byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// VarBytes appends a uint32 length prefix followed by b.
func (e *Encoder) VarBytes(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Digest appends a fixed-size digest with no length prefix.
func (e *Encoder) Digest(d crypto.Digest) {
	e.buf = append(e.buf, d[:]...)
}

// MAC appends a fixed-size HMAC value.
func (e *Encoder) MAC(m [crypto.MACSize]byte) {
	e.buf = append(e.buf, m[:]...)
}

// Decoder consumes primitive values from a byte buffer. Errors are sticky:
// after the first failure all further reads return zero values and Err
// reports the original error.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps data for decoding. The decoder does not copy data;
// callers must not mutate it during decoding.
func NewDecoder(data []byte) *Decoder { return &Decoder{buf: data} }

// Err returns the first error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns an error if decoding failed or trailing bytes remain.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrDecode, len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrDecode, fmt.Sprintf(format, args...))
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.fail("need %d bytes, have %d", n, d.Remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads a single byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean encoded as one byte; any non-zero byte is true.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// VarBytes reads a length-prefixed byte slice. The result is a copy, so it
// stays valid after the input buffer is reused.
func (d *Decoder) VarBytes() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if n > maxLen {
		d.fail("length %d exceeds limit %d", n, maxLen)
		return nil
	}
	if n == 0 {
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Digest reads a fixed-size digest.
func (d *Decoder) Digest() crypto.Digest {
	var out crypto.Digest
	b := d.take(crypto.DigestSize)
	if b != nil {
		copy(out[:], b)
	}
	return out
}

// MAC reads a fixed-size HMAC value.
func (d *Decoder) MAC() [crypto.MACSize]byte {
	var out [crypto.MACSize]byte
	b := d.take(crypto.MACSize)
	if b != nil {
		copy(out[:], b)
	}
	return out
}

// Count reads a uint32 element count, bounding it by maxCount.
func (d *Decoder) Count(maxCount int) int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if int64(n) > int64(maxCount) {
		d.fail("count %d exceeds limit %d", n, maxCount)
		return 0
	}
	return int(n)
}
