package messages

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/splitbft/splitbft/internal/crypto"
)

func TestEncoderDecoderPrimitives(t *testing.T) {
	e := NewEncoder(0)
	e.U8(0xab)
	e.Bool(true)
	e.Bool(false)
	e.U32(0xdeadbeef)
	e.U64(0x0102030405060708)
	e.VarBytes([]byte("hello"))
	var dg crypto.Digest
	dg[0], dg[31] = 1, 2
	e.Digest(dg)
	var mac [crypto.MACSize]byte
	mac[5] = 9
	e.MAC(mac)

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 0xab {
		t.Fatalf("U8 = %x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Fatalf("U32 = %x", got)
	}
	if got := d.U64(); got != 0x0102030405060708 {
		t.Fatalf("U64 = %x", got)
	}
	if got := d.VarBytes(); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("VarBytes = %q", got)
	}
	if got := d.Digest(); got != dg {
		t.Fatal("Digest round trip failed")
	}
	if got := d.MAC(); got != mac {
		t.Fatal("MAC round trip failed")
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U64() // not enough bytes
	if d.Err() == nil {
		t.Fatal("expected error after short read")
	}
	first := d.Err()
	_ = d.U32()
	if d.Err() != first {
		t.Fatal("error should be sticky")
	}
	if d.VarBytes() != nil {
		t.Fatal("reads after error should return zero values")
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	e := NewEncoder(0)
	e.U32(7)
	e.U8(9) // trailing
	d := NewDecoder(e.Bytes())
	_ = d.U32()
	if err := d.Finish(); err == nil {
		t.Fatal("Finish should reject trailing bytes")
	}
}

func TestDecoderLengthLimits(t *testing.T) {
	e := NewEncoder(0)
	e.U32(1 << 30) // absurd length prefix
	d := NewDecoder(e.Bytes())
	if d.VarBytes() != nil || d.Err() == nil {
		t.Fatal("oversized VarBytes accepted")
	}
	d2 := NewDecoder(e.Bytes())
	d2.Count(10)
	if d2.Err() == nil {
		t.Fatal("oversized Count accepted")
	}
}

func TestVarBytesCopies(t *testing.T) {
	e := NewEncoder(0)
	e.VarBytes([]byte("abc"))
	buf := e.Bytes()
	d := NewDecoder(buf)
	got := d.VarBytes()
	buf[5] = 'X' // mutate the input after decoding
	if !bytes.Equal(got, []byte("abc")) {
		t.Fatal("VarBytes must copy out of the input buffer")
	}
}

// roundTrip marshals and unmarshals m, failing the test on any error, and
// returns the decoded message.
func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	data := Marshal(m)
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("unmarshal %T: %v", m, err)
	}
	if got.MsgType() != m.MsgType() {
		t.Fatalf("type changed: %v -> %v", m.MsgType(), got.MsgType())
	}
	return got
}

func sampleRequest(i int) Request {
	return Request{
		ClientID:  uint32(i),
		Timestamp: uint64(i * 100),
		Payload:   []byte{byte(i), 2, 3},
		Auth: crypto.Authenticator{MACs: [][crypto.MACSize]byte{
			{byte(i)}, {2}, {3}, {4},
		}},
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	var dg crypto.Digest
	dg[7] = 0x77
	req := sampleRequest(1)
	batch := Batch{Requests: []Request{sampleRequest(1), sampleRequest(2)}}
	pp := &PrePrepare{View: 3, Seq: 9, Digest: batch.Digest(), Replica: 3, Batch: batch, Sig: []byte("sig")}
	prep := &Prepare{View: 3, Seq: 9, Digest: dg, Replica: 1, Sig: []byte("s1")}
	com := &Commit{View: 3, Seq: 9, Digest: dg, Replica: 2, Sig: []byte("s2")}
	cp := &Checkpoint{Seq: 100, StateDigest: dg, Replica: 0, Sig: []byte("s3")}
	vc := &ViewChange{
		NewViewNum: 4,
		Stable:     CheckpointCert{Seq: 100, StateDigest: dg, Proof: []Checkpoint{*cp, *cp, *cp}},
		Prepared: []PrepareCert{{
			PrePrepare: *pp.StripBatch(),
			Prepares:   []Prepare{*prep, *prep},
		}},
		Replica: 1,
		Sig:     []byte("s4"),
	}
	nv := &NewView{
		View:        4,
		ViewChanges: []ViewChange{*vc},
		Stable:      vc.Stable,
		PrePrepares: []PrePrepare{*pp.StripBatch()},
		Replica:     0,
		Sig:         []byte("s5"),
	}
	msgs := []Message{
		&req,
		pp, prep, com, cp, vc, nv,
		&Reply{View: 1, ClientID: 5, Timestamp: 6, Replica: 2, Result: []byte("ok"), MAC: [crypto.MACSize]byte{1}},
		&Suspect{Replica: 2, View: 7},
		&AttestRequest{ClientID: 9, Nonce: [32]byte{1}, ClientPub: [32]byte{2}},
		&AttestQuote{Replica: 1, Role: uint8(crypto.RoleExecution), Measurement: dg, EnclavePub: [32]byte{3}, Nonce: [32]byte{1}, Sig: []byte("q")},
		&ProvisionKey{ClientID: 9, Replica: 1, WrappedKey: []byte("wrapped")},
		&StateRequest{Seq: 100, Replica: 3},
		&StateReply{Cert: vc.Stable, Snapshot: []byte("snap"), Replica: 0},
		&BatchFetch{Seq: 9, Digest: dg, Replica: 3},
		&BatchReply{Seq: 9, Digest: dg, Batch: pp.Batch, Replica: 0},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%T round trip mismatch:\n got %+v\nwant %+v", m, got, m)
		}
	}
}

func TestCheckpointCertStandaloneRoundTrip(t *testing.T) {
	dg := crypto.HashData([]byte("state"))
	cp := Checkpoint{Seq: 40, StateDigest: dg, Replica: 1, Sig: []byte("sig")}
	cert := CheckpointCert{Seq: 40, StateDigest: dg, Proof: []Checkpoint{cp, cp, cp}}
	got, err := UnmarshalCheckpointCert(cert.MarshalCert())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cert, got) {
		t.Fatalf("cert round trip mismatch:\n got %+v\nwant %+v", got, cert)
	}
	if _, err := UnmarshalCheckpointCert(cert.MarshalCert()[:10]); err == nil {
		t.Fatal("truncated certificate accepted")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Unmarshal([]byte{0xff, 1, 2}); err == nil {
		t.Fatal("unknown type accepted")
	}
	// Truncated PrePrepare.
	pp := &PrePrepare{View: 1, Seq: 2, Replica: 3, Sig: []byte("sig")}
	data := Marshal(pp)
	for _, cut := range []int{1, 5, len(data) - 1} {
		if _, err := Unmarshal(data[:cut]); err == nil {
			t.Fatalf("truncated input of %d bytes accepted", cut)
		}
	}
}

func TestRequestDigestStability(t *testing.T) {
	r1 := sampleRequest(1)
	r2 := sampleRequest(1)
	// Digest must ignore the MAC vector (it differs per receiver set).
	r2.Auth.MACs = nil
	if r1.Digest() != r2.Digest() {
		t.Fatal("request digest must not cover the authenticator")
	}
	r2.Payload = []byte("different")
	if r1.Digest() == r2.Digest() {
		t.Fatal("request digest must cover the payload")
	}
}

func TestBatchDigestOrderSensitive(t *testing.T) {
	a, b := sampleRequest(1), sampleRequest(2)
	b1 := Batch{Requests: []Request{a, b}}
	b2 := Batch{Requests: []Request{b, a}}
	if b1.Digest() == b2.Digest() {
		t.Fatal("batch digest must be order sensitive")
	}
}

func TestStripBatch(t *testing.T) {
	batch := Batch{Requests: []Request{sampleRequest(1)}}
	pp := &PrePrepare{View: 1, Seq: 2, Digest: batch.Digest(), Replica: 1, Batch: batch, Sig: []byte("x")}
	st := pp.StripBatch()
	if len(st.Batch.Requests) != 0 {
		t.Fatal("StripBatch left requests behind")
	}
	if len(pp.Batch.Requests) != 1 {
		t.Fatal("StripBatch mutated the original")
	}
	if st.Digest != pp.Digest || !bytes.Equal(st.Sig, pp.Sig) {
		t.Fatal("StripBatch changed header fields")
	}
}

func TestSigningBytesDomainSeparation(t *testing.T) {
	var dg crypto.Digest
	p := &Prepare{View: 1, Seq: 2, Digest: dg, Replica: 3}
	c := &Commit{View: 1, Seq: 2, Digest: dg, Replica: 3}
	if bytes.Equal(p.SigningBytes(), c.SigningBytes()) {
		t.Fatal("Prepare and Commit signing bytes must differ (type tag)")
	}
	pp := &PrePrepare{View: 1, Seq: 2, Digest: dg, Replica: 3}
	if bytes.Equal(p.SigningBytes(), pp.SigningBytes()) {
		t.Fatal("Prepare and PrePrepare signing bytes must differ")
	}
}

func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(client uint32, ts uint64, payload []byte, macSeed int64) bool {
		rng := rand.New(rand.NewSource(macSeed))
		n := rng.Intn(8)
		var macs [][crypto.MACSize]byte
		if n > 0 {
			macs = make([][crypto.MACSize]byte, n)
			for i := range macs {
				rng.Read(macs[i][:])
			}
		}
		r := &Request{ClientID: client, Timestamp: ts, Payload: payload, Auth: crypto.Authenticator{MACs: macs}}
		data := Marshal(r)
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		// Compare canonically re-encoded bytes: nil and empty slices are
		// indistinguishable on the wire, which is the property we need.
		return bytes.Equal(data, Marshal(got))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMarshalDeterministic(t *testing.T) {
	f := func(view, seq uint64, replica uint32, payload []byte) bool {
		var dg crypto.Digest
		copy(dg[:], payload)
		m1 := Marshal(&Commit{View: view, Seq: seq, Digest: dg, Replica: replica, Sig: payload})
		m2 := Marshal(&Commit{View: view, Seq: seq, Digest: dg, Replica: replica, Sig: payload})
		return bytes.Equal(m1, m2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnmarshalNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Unmarshal(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshalPrePrepare(b *testing.B) {
	batch := Batch{}
	for i := 0; i < 200; i++ {
		batch.Requests = append(batch.Requests, sampleRequest(i))
	}
	pp := &PrePrepare{View: 1, Seq: 2, Digest: batch.Digest(), Replica: 0, Batch: batch, Sig: make([]byte, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Marshal(pp)
	}
}

func BenchmarkUnmarshalPrePrepare(b *testing.B) {
	batch := Batch{}
	for i := 0; i < 200; i++ {
		batch.Requests = append(batch.Requests, sampleRequest(i))
	}
	pp := &PrePrepare{View: 1, Seq: 2, Digest: batch.Digest(), Replica: 0, Batch: batch, Sig: make([]byte, 64)}
	data := Marshal(pp)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}
