package messages

import (
	"errors"
	"testing"

	"github.com/splitbft/splitbft/internal/crypto"
)

// macVerifier builds a MAC-mode verifier for one compartment, with
// secret-derived pairwise stores standing in for the attested-ECDH keys
// (the derivation source is irrelevant to the verification logic).
func macVerifier(t *testing.T, self crypto.Identity) (*Verifier, *crypto.Registry) {
	t.Helper()
	reg := crypto.NewRegistry()
	v, err := NewVerifier(4, 1, reg, SplitScheme())
	if err != nil {
		t.Fatal(err)
	}
	v.Mode = AuthMAC
	v.Self = self
	v.MACs = crypto.NewMACStore([]byte("auth-test"), self)
	return v, reg
}

// senderMACs returns the matching pairwise store for a sending enclave.
func senderMACs(id crypto.Identity) *crypto.MACStore {
	return crypto.NewMACStore([]byte("auth-test"), id)
}

func TestAgreementAuthLayout(t *testing.T) {
	n := 4
	// PrePrepare/Checkpoint: all three compartments of every replica.
	rs := AgreementAuthReceivers(TPrePrepare, n)
	if len(rs) != 3*n {
		t.Fatalf("PrePrepare receiver set has %d entries, want %d", len(rs), 3*n)
	}
	if got := AgreementAuthIndex(TPrePrepare, n, crypto.Identity{ReplicaID: 2, Role: crypto.RoleConfirmation}); got != n+2 {
		t.Fatalf("conf-2 PrePrepare slot = %d, want %d", got, n+2)
	}
	if rs[n+2] != (crypto.Identity{ReplicaID: 2, Role: crypto.RoleConfirmation}) {
		t.Fatalf("layout/index disagree at slot %d: %v", n+2, rs[n+2])
	}
	// Prepare: Confirmation only.
	if len(AgreementAuthReceivers(TPrepare, n)) != n {
		t.Fatal("Prepare receiver set should be one block")
	}
	// Non-receivers index as -1.
	if AgreementAuthIndex(TPrepare, n, crypto.Identity{ReplicaID: 0, Role: crypto.RoleExecution}) != -1 {
		t.Fatal("Execution must not be a Prepare receiver")
	}
	if AgreementAuthIndex(TViewChange, n, crypto.Identity{ReplicaID: 0, Role: crypto.RoleConfirmation}) != -1 {
		t.Fatal("ViewChange is not MAC-authenticated")
	}
}

func TestMACPrepareVerifies(t *testing.T) {
	self := crypto.Identity{ReplicaID: 2, Role: crypto.RoleConfirmation}
	v, _ := macVerifier(t, self)
	sender := crypto.Identity{ReplicaID: 1, Role: crypto.RolePreparation}
	p := &Prepare{View: 0, Seq: 3, Digest: crypto.HashData([]byte("b")), Replica: 1}
	p.Auth = senderMACs(sender).Authenticate(p.SigningBytes(), AgreementAuthReceivers(TPrepare, 4))
	if err := v.VerifyPrepare(p); err != nil {
		t.Fatalf("valid MAC-mode Prepare rejected: %v", err)
	}
}

func TestMACForgedAuthenticatorRejected(t *testing.T) {
	self := crypto.Identity{ReplicaID: 2, Role: crypto.RoleConfirmation}
	v, _ := macVerifier(t, self)
	sender := crypto.Identity{ReplicaID: 1, Role: crypto.RolePreparation}
	p := &Prepare{View: 0, Seq: 3, Digest: crypto.HashData([]byte("b")), Replica: 1}
	p.Auth = senderMACs(sender).Authenticate(p.SigningBytes(), AgreementAuthReceivers(TPrepare, 4))
	p.Auth.MACs[2][0] ^= 1 // flip one bit of the slot addressed to self
	if err := v.VerifyPrepare(p); !errors.Is(err, ErrInvalid) {
		t.Fatalf("forged MAC accepted: %v", err)
	}
	// An empty vector must fail too, not index out of range into success.
	p.Auth = crypto.Authenticator{}
	if err := v.VerifyPrepare(p); !errors.Is(err, ErrInvalid) {
		t.Fatalf("missing authenticator accepted: %v", err)
	}
}

// TestMACWrongPairRejected covers the wrong-pair case: a MAC computed
// under the key of a different receiver pair lands in self's slot. Even
// though it is a "real" MAC by a real key holder, it does not verify
// under self's pairwise key.
func TestMACWrongPairRejected(t *testing.T) {
	self := crypto.Identity{ReplicaID: 2, Role: crypto.RoleConfirmation}
	v, _ := macVerifier(t, self)
	sender := crypto.Identity{ReplicaID: 1, Role: crypto.RolePreparation}
	p := &Prepare{View: 0, Seq: 3, Digest: crypto.HashData([]byte("b")), Replica: 1}
	p.Auth = senderMACs(sender).Authenticate(p.SigningBytes(), AgreementAuthReceivers(TPrepare, 4))
	// Swap self's slot with the (valid) MAC addressed to Confirmation 3.
	p.Auth.MACs[2] = p.Auth.MACs[3]
	if err := v.VerifyPrepare(p); !errors.Is(err, ErrInvalid) {
		t.Fatalf("wrong-pair MAC accepted: %v", err)
	}
}

// TestMACReplayedAuthenticatorRejected transplants the authenticator
// vector of one message onto another: MACs bind the full signing bytes,
// so a vector replayed under different content must fail.
func TestMACReplayedAuthenticatorRejected(t *testing.T) {
	self := crypto.Identity{ReplicaID: 2, Role: crypto.RoleConfirmation}
	v, _ := macVerifier(t, self)
	sender := crypto.Identity{ReplicaID: 1, Role: crypto.RolePreparation}
	donor := &Prepare{View: 0, Seq: 3, Digest: crypto.HashData([]byte("honest")), Replica: 1}
	donor.Auth = senderMACs(sender).Authenticate(donor.SigningBytes(), AgreementAuthReceivers(TPrepare, 4))
	if err := v.VerifyPrepare(donor); err != nil {
		t.Fatalf("donor message must verify: %v", err)
	}
	for _, forged := range []*Prepare{
		{View: 0, Seq: 3, Digest: crypto.HashData([]byte("evil")), Replica: 1}, // different digest
		{View: 0, Seq: 4, Digest: donor.Digest, Replica: 1},                    // different slot
		{View: 1, Seq: 3, Digest: donor.Digest, Replica: 1},                    // different view
	} {
		forged.Auth = donor.Auth
		if err := v.VerifyPrepare(forged); !errors.Is(err, ErrInvalid) {
			t.Fatalf("replayed authenticator accepted on %+v: %v", forged, err)
		}
	}
}

// vouchedCertFixture registers an Ed25519 key for the attesting enclave
// and returns its pair for signing vouches.
func vouchedCertFixture(t *testing.T, reg *crypto.Registry, id crypto.Identity) *crypto.KeyPair {
	t.Helper()
	kp := crypto.MustGenerateKeyPair()
	reg.Register(id, kp.Public)
	return kp
}

func TestMACPrepareCertVouch(t *testing.T) {
	self := crypto.Identity{ReplicaID: 0, Role: crypto.RolePreparation}
	v, reg := macVerifier(t, self)
	attestor := crypto.Identity{ReplicaID: 3, Role: crypto.RoleConfirmation}
	kp := vouchedCertFixture(t, reg, attestor)

	pc := &PrepareCert{
		PrePrepare: PrePrepare{View: 2, Seq: 7, Digest: crypto.HashData([]byte("batch")), Replica: 2},
		Attestor:   3,
	}
	pc.Vouch = kp.Sign(PrepareCertClaim(pc.View(), pc.Seq(), pc.Digest()))
	if err := v.VerifyPrepareCert(pc); err != nil {
		t.Fatalf("valid vouched prepare cert rejected: %v", err)
	}

	// A vouch over a different claim must not transfer.
	bad := *pc
	bad.PrePrepare.Digest = crypto.HashData([]byte("other"))
	if err := v.VerifyPrepareCert(&bad); !errors.Is(err, ErrInvalid) {
		t.Fatalf("transplanted vouch accepted: %v", err)
	}
	// A vouch signed by a non-registered/forged key must fail.
	forged := *pc
	forged.Vouch = crypto.MustGenerateKeyPair().Sign(PrepareCertClaim(pc.View(), pc.Seq(), pc.Digest()))
	if err := v.VerifyPrepareCert(&forged); !errors.Is(err, ErrInvalid) {
		t.Fatalf("forged vouch accepted: %v", err)
	}
	// Sig-style certificates (no vouch) are refused in MAC mode: modes
	// must not be downgradable per message.
	unvouched := *pc
	unvouched.Vouch = nil
	if err := v.VerifyPrepareCert(&unvouched); !errors.Is(err, ErrInvalid) {
		t.Fatalf("unvouched cert accepted in MAC mode: %v", err)
	}
}

func TestMACCheckpointCertVouch(t *testing.T) {
	self := crypto.Identity{ReplicaID: 0, Role: crypto.RolePreparation}
	v, reg := macVerifier(t, self)
	attestor := crypto.Identity{ReplicaID: 1, Role: crypto.RoleExecution}
	kp := vouchedCertFixture(t, reg, attestor)

	cc := &CheckpointCert{Seq: 8, StateDigest: crypto.HashData([]byte("state")), Attestor: 1, AttestorRole: uint8(crypto.RoleExecution)}
	cc.Vouch = kp.Sign(CheckpointCertClaim(cc.Seq, cc.StateDigest))
	if err := v.VerifyCheckpointCert(cc); err != nil {
		t.Fatalf("valid vouched checkpoint cert rejected: %v", err)
	}
	// Genesis stays valid with no proof and no vouch.
	if err := v.VerifyCheckpointCert(&CheckpointCert{}); err != nil {
		t.Fatalf("genesis cert rejected: %v", err)
	}
	// Non-compartment attestor roles are refused (e.g. a client key).
	badRole := *cc
	badRole.AttestorRole = uint8(crypto.RoleClient)
	if err := v.VerifyCheckpointCert(&badRole); !errors.Is(err, ErrInvalid) {
		t.Fatalf("client-role attestor accepted: %v", err)
	}
	// The claim is domain-separated from protocol messages: a Checkpoint
	// signature over the same (seq, digest) fields must not validate as a
	// vouch.
	cp := &Checkpoint{Seq: cc.Seq, StateDigest: cc.StateDigest, Replica: 1}
	crossed := *cc
	crossed.Vouch = kp.Sign(cp.SigningBytes())
	if err := v.VerifyCheckpointCert(&crossed); !errors.Is(err, ErrInvalid) {
		t.Fatalf("checkpoint signature accepted as cert vouch: %v", err)
	}
}

// TestMACModeMessagesRoundTrip pins the extended wire format: Auth
// vectors and cert vouch fields survive Marshal/Unmarshal.
func TestMACModeMessagesRoundTrip(t *testing.T) {
	sender := crypto.NewMACStore([]byte("rt"), crypto.Identity{ReplicaID: 0, Role: crypto.RolePreparation})
	pp := &PrePrepare{View: 1, Seq: 2, Digest: crypto.HashData([]byte("d")), Replica: 0}
	pp.Auth = sender.Authenticate(pp.SigningBytes(), AgreementAuthReceivers(TPrePrepare, 4))
	raw := Marshal(pp)
	m, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	got := m.(*PrePrepare)
	if len(got.Auth.MACs) != 12 || got.Auth.MACs[5] != pp.Auth.MACs[5] {
		t.Fatalf("PrePrepare authenticator did not round-trip: %d MACs", len(got.Auth.MACs))
	}

	vc := &ViewChange{
		NewViewNum: 3,
		Stable:     CheckpointCert{Seq: 4, StateDigest: crypto.HashData([]byte("s")), Attestor: 2, AttestorRole: uint8(crypto.RoleConfirmation), Vouch: []byte("vouch-1")},
		Prepared: []PrepareCert{{
			PrePrepare: PrePrepare{View: 1, Seq: 5, Digest: crypto.HashData([]byte("p")), Replica: 1},
			Attestor:   2,
			Vouch:      []byte("vouch-2"),
		}},
		Replica: 2,
		Sig:     []byte("sig"),
	}
	m, err = Unmarshal(Marshal(vc))
	if err != nil {
		t.Fatal(err)
	}
	gotVC := m.(*ViewChange)
	if gotVC.Stable.Attestor != 2 || string(gotVC.Stable.Vouch) != "vouch-1" {
		t.Fatal("checkpoint cert vouch did not round-trip")
	}
	if len(gotVC.Prepared) != 1 || gotVC.Prepared[0].Attestor != 2 || string(gotVC.Prepared[0].Vouch) != "vouch-2" {
		t.Fatal("prepare cert vouch did not round-trip")
	}
}
