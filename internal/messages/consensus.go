package messages

import (
	"fmt"

	"github.com/splitbft/splitbft/internal/crypto"
)

// ConsensusMode selects the agreement protocol variant.
//
// ConsensusClassic is the paper's three-phase PBFT over n = 3f+1 replicas:
// equivocation by a faulty primary is caught by the all-to-all Prepare
// round, and every certificate needs 2f+1 votes.
//
// ConsensusTrusted is the TEE-BFT variant (MinBFT/CheapBFT lineage): the
// primary's trusted monotonic counter binds every PrePrepare to a unique,
// gap-free counter value, making equivocation impossible to produce rather
// than merely detectable. That removes the Prepare round entirely — a
// counter-valid PrePrepare is already a prepare certificate — and shrinks
// the replica group to n = 2f+1 with f+1 quorums. Soundness rests on the
// hybrid fault model: counter enclaves fail only by crashing, so any two
// f+1 quorums intersect in at least one replica whose enclaves followed
// the protocol.
type ConsensusMode uint8

// Consensus modes.
const (
	ConsensusClassic ConsensusMode = iota
	ConsensusTrusted
)

// String returns the option-string spelling of the mode.
func (m ConsensusMode) String() string {
	switch m {
	case ConsensusClassic:
		return "classic"
	case ConsensusTrusted:
		return "trusted"
	default:
		return fmt.Sprintf("consensus(%d)", uint8(m))
	}
}

// CounterDigest is the digest a PrePrepare's counter attestation binds: the
// hash of the signed header (view, seq, batch digest, proposer). Binding
// the full header means an attestation cannot be replayed for a different
// view, sequence number, batch, or proposer — the transplant/replay checks
// collapse into one digest comparison.
func CounterDigest(pp *PrePrepare) crypto.Digest {
	return crypto.HashData(pp.SigningBytes())
}

// ValidConsensus reports whether (n, f) is a valid group shape for mode:
// n = 3f+1 for classic PBFT, n = 2f+1 for trusted-counter consensus.
func ValidConsensus(mode ConsensusMode, n, f int) bool {
	if f < 0 {
		return false
	}
	if mode == ConsensusTrusted {
		return n == 2*f+1
	}
	return n == 3*f+1
}
