package messages

import (
	"strings"
	"testing"

	"github.com/splitbft/splitbft/internal/crypto"
)

// fixture holds a fully keyed 4-replica system for validation tests.
type fixture struct {
	t    *testing.T
	n, f int
	reg  *crypto.Registry
	keys map[crypto.Identity]*crypto.KeyPair
	ver  *Verifier
}

func newFixture(t *testing.T, scheme SignerScheme) *fixture {
	t.Helper()
	fx := &fixture{t: t, n: 4, f: 1, reg: crypto.NewRegistry(), keys: make(map[crypto.Identity]*crypto.KeyPair)}
	roles := []crypto.Role{
		crypto.RoleReplica, crypto.RolePreparation, crypto.RoleConfirmation, crypto.RoleExecution,
	}
	for r := 0; r < fx.n; r++ {
		for _, role := range roles {
			id := crypto.Identity{ReplicaID: uint32(r), Role: role}
			kp := crypto.MustGenerateKeyPair()
			fx.keys[id] = kp
			fx.reg.Register(id, kp.Public)
		}
	}
	ver, err := NewVerifier(fx.n, fx.f, fx.reg, scheme)
	if err != nil {
		t.Fatal(err)
	}
	fx.ver = ver
	return fx
}

func (fx *fixture) sign(replica uint32, role crypto.Role, msg []byte) []byte {
	kp, ok := fx.keys[crypto.Identity{ReplicaID: replica, Role: role}]
	if !ok {
		fx.t.Fatalf("no key for replica %d role %v", replica, role)
	}
	return kp.Sign(msg)
}

func (fx *fixture) prePrepare(view, seq uint64, batch Batch) *PrePrepare {
	pp := &PrePrepare{View: view, Seq: seq, Digest: batch.Digest(), Replica: fx.ver.Primary(view), Batch: batch}
	pp.Sig = fx.sign(pp.Replica, fx.ver.Scheme.PrePrepare, pp.SigningBytes())
	return pp
}

func (fx *fixture) prepare(view, seq uint64, d crypto.Digest, replica uint32) Prepare {
	p := Prepare{View: view, Seq: seq, Digest: d, Replica: replica}
	p.Sig = fx.sign(replica, fx.ver.Scheme.Prepare, p.SigningBytes())
	return p
}

func (fx *fixture) commit(view, seq uint64, d crypto.Digest, replica uint32) Commit {
	c := Commit{View: view, Seq: seq, Digest: d, Replica: replica}
	c.Sig = fx.sign(replica, fx.ver.Scheme.Commit, c.SigningBytes())
	return c
}

func (fx *fixture) checkpoint(seq uint64, d crypto.Digest, replica uint32) Checkpoint {
	c := Checkpoint{Seq: seq, StateDigest: d, Replica: replica}
	c.Sig = fx.sign(replica, fx.ver.Scheme.Checkpoint, c.SigningBytes())
	return c
}

func (fx *fixture) prepareCert(view, seq uint64, batch Batch) PrepareCert {
	pp := fx.prePrepare(view, seq, batch)
	var preps []Prepare
	primary := fx.ver.Primary(view)
	for r := uint32(0); len(preps) < 2*fx.f; r++ {
		if r == primary {
			continue
		}
		preps = append(preps, fx.prepare(view, seq, pp.Digest, r))
	}
	return PrepareCert{PrePrepare: *pp.StripBatch(), Prepares: preps}
}

func (fx *fixture) checkpointCert(seq uint64, d crypto.Digest) CheckpointCert {
	cc := CheckpointCert{Seq: seq, StateDigest: d}
	for r := 0; r < fx.ver.Quorum(); r++ {
		cc.Proof = append(cc.Proof, fx.checkpoint(seq, d, uint32(r)))
	}
	return cc
}

func (fx *fixture) viewChange(newView uint64, stable CheckpointCert, prepared []PrepareCert, replica uint32) ViewChange {
	vc := ViewChange{NewViewNum: newView, Stable: stable, Prepared: prepared, Replica: replica}
	vc.Sig = fx.sign(replica, fx.ver.Scheme.ViewChange, vc.SigningBytes())
	return vc
}

func testBatch(i int) Batch {
	return Batch{Requests: []Request{{ClientID: uint32(i), Timestamp: uint64(i), Payload: []byte{byte(i)}}}}
}

func TestVerifyPrePrepare(t *testing.T) {
	for _, scheme := range []SignerScheme{SplitScheme(), BaselineScheme()} {
		fx := newFixture(t, scheme)
		pp := fx.prePrepare(0, 1, testBatch(1))
		if err := fx.ver.VerifyPrePrepare(pp, true); err != nil {
			t.Fatalf("valid PrePrepare rejected: %v", err)
		}
		// Wrong proposer.
		bad := *pp
		bad.Replica = 1
		bad.Sig = fx.sign(1, scheme.PrePrepare, bad.SigningBytes())
		if err := fx.ver.VerifyPrePrepare(&bad, true); err == nil {
			t.Fatal("PrePrepare from non-primary accepted")
		}
		// Corrupt signature.
		bad2 := *pp
		bad2.Sig = append([]byte(nil), pp.Sig...)
		bad2.Sig[0] ^= 1
		if err := fx.ver.VerifyPrePrepare(&bad2, true); err == nil {
			t.Fatal("PrePrepare with bad signature accepted")
		}
		// Digest does not cover the batch.
		bad3 := *pp
		bad3.Batch = testBatch(2)
		if err := fx.ver.VerifyPrePrepare(&bad3, true); err == nil {
			t.Fatal("PrePrepare with mismatched batch accepted")
		}
		// Missing body when required.
		bad4 := *pp.StripBatch()
		if err := fx.ver.VerifyPrePrepare(&bad4, true); err == nil {
			t.Fatal("PrePrepare without batch accepted when body required")
		}
		if err := fx.ver.VerifyPrePrepare(&bad4, false); err != nil {
			t.Fatalf("stripped PrePrepare rejected for cert use: %v", err)
		}
	}
}

func TestVerifyPrepareRejectsPrimary(t *testing.T) {
	fx := newFixture(t, SplitScheme())
	var d crypto.Digest
	p := fx.prepare(0, 1, d, 1)
	if err := fx.ver.VerifyPrepare(&p); err != nil {
		t.Fatalf("valid Prepare rejected: %v", err)
	}
	// Primary of view 0 is replica 0.
	pp := Prepare{View: 0, Seq: 1, Digest: d, Replica: 0}
	pp.Sig = fx.sign(0, fx.ver.Scheme.Prepare, pp.SigningBytes())
	if err := fx.ver.VerifyPrepare(&pp); err == nil {
		t.Fatal("Prepare from the view's primary accepted")
	}
}

func TestVerifyCommitAndCheckpoint(t *testing.T) {
	fx := newFixture(t, SplitScheme())
	var d crypto.Digest
	c := fx.commit(2, 5, d, 3)
	if err := fx.ver.VerifyCommit(&c); err != nil {
		t.Fatalf("valid Commit rejected: %v", err)
	}
	c.Seq = 6 // tamper
	if err := fx.ver.VerifyCommit(&c); err == nil {
		t.Fatal("tampered Commit accepted")
	}
	cp := fx.checkpoint(100, d, 2)
	if err := fx.ver.VerifyCheckpoint(&cp); err != nil {
		t.Fatalf("valid Checkpoint rejected: %v", err)
	}
	cp.Replica = 99
	if err := fx.ver.VerifyCheckpoint(&cp); err == nil {
		t.Fatal("Checkpoint with out-of-range replica accepted")
	}
}

func TestVerifyPrepareCert(t *testing.T) {
	fx := newFixture(t, SplitScheme())
	pc := fx.prepareCert(0, 3, testBatch(3))
	if err := fx.ver.VerifyPrepareCert(&pc); err != nil {
		t.Fatalf("valid prepare cert rejected: %v", err)
	}
	// Too few prepares.
	short := pc
	short.Prepares = pc.Prepares[:1]
	if err := fx.ver.VerifyPrepareCert(&short); err == nil {
		t.Fatal("short prepare cert accepted")
	}
	// Duplicate sender.
	dup := pc
	dup.Prepares = []Prepare{pc.Prepares[0], pc.Prepares[0]}
	if err := fx.ver.VerifyPrepareCert(&dup); err == nil {
		t.Fatal("duplicate-sender prepare cert accepted")
	}
	// Mismatched digest inside.
	mism := pc
	other := fx.prepare(0, 3, crypto.HashData([]byte("other")), 2)
	mism.Prepares = []Prepare{pc.Prepares[0], other}
	if err := fx.ver.VerifyPrepareCert(&mism); err == nil {
		t.Fatal("mismatched prepare cert accepted")
	}
}

func TestVerifyCheckpointCert(t *testing.T) {
	fx := newFixture(t, SplitScheme())
	d := crypto.HashData([]byte("state"))
	cc := fx.checkpointCert(50, d)
	if err := fx.ver.VerifyCheckpointCert(&cc); err != nil {
		t.Fatalf("valid checkpoint cert rejected: %v", err)
	}
	genesis := CheckpointCert{}
	if err := fx.ver.VerifyCheckpointCert(&genesis); err != nil {
		t.Fatalf("genesis cert rejected: %v", err)
	}
	short := cc
	short.Proof = cc.Proof[:2]
	if err := fx.ver.VerifyCheckpointCert(&short); err == nil {
		t.Fatal("short checkpoint cert accepted")
	}
	dup := cc
	dup.Proof = []Checkpoint{cc.Proof[0], cc.Proof[0], cc.Proof[1]}
	if err := fx.ver.VerifyCheckpointCert(&dup); err == nil {
		t.Fatal("duplicate checkpoint cert accepted")
	}
}

func TestVerifyViewChange(t *testing.T) {
	fx := newFixture(t, SplitScheme())
	d := crypto.HashData([]byte("state"))
	stable := fx.checkpointCert(10, d)
	pc := fx.prepareCert(0, 12, testBatch(12))
	vc := fx.viewChange(1, stable, []PrepareCert{pc}, 2)
	if err := fx.ver.VerifyViewChange(&vc); err != nil {
		t.Fatalf("valid ViewChange rejected: %v", err)
	}
	// Prepare cert below the stable checkpoint.
	below := fx.prepareCert(0, 9, testBatch(9))
	bad := fx.viewChange(1, stable, []PrepareCert{below}, 2)
	if err := fx.ver.VerifyViewChange(&bad); err == nil ||
		!strings.Contains(err.Error(), "below stable") {
		t.Fatalf("prepare cert below stable accepted: %v", err)
	}
	// Prepare cert from a view >= the new view.
	fx2 := newFixture(t, SplitScheme())
	future := fx2.prepareCert(1, 12, testBatch(12))
	bad2 := fx2.viewChange(1, fx2.checkpointCert(10, d), []PrepareCert{future}, 2)
	if err := fx2.ver.VerifyViewChange(&bad2); err == nil {
		t.Fatal("prepare cert from future view accepted")
	}
}

// buildNewView constructs a NewView for view 1 out of 2f+1 ViewChanges,
// signing with the new primary (replica 1).
func buildNewView(fx *fixture, vcs []ViewChange) *NewView {
	primary := fx.ver.Primary(1)
	signFn := func(b []byte) []byte { return fx.sign(primary, fx.ver.Scheme.PrePrepare, b) }
	stable, pps := ComputeNewViewPrePrepares(1, primary, vcs, signFn)
	nv := &NewView{View: 1, ViewChanges: vcs, Stable: stable, PrePrepares: pps, Replica: primary}
	nv.Sig = fx.sign(primary, fx.ver.Scheme.NewView, nv.SigningBytes())
	return nv
}

func TestVerifyNewView(t *testing.T) {
	fx := newFixture(t, SplitScheme())
	d := crypto.HashData([]byte("state"))
	stable := fx.checkpointCert(10, d)
	pc12 := fx.prepareCert(0, 12, testBatch(12))

	var vcs []ViewChange
	for r := uint32(0); r < 3; r++ {
		prepared := []PrepareCert{}
		if r == 0 {
			prepared = append(prepared, pc12)
		}
		vcs = append(vcs, fx.viewChange(1, stable, prepared, r))
	}
	nv := buildNewView(fx, vcs)
	if err := fx.ver.VerifyNewView(nv); err != nil {
		t.Fatalf("valid NewView rejected: %v", err)
	}
	// Seq 11 has no certificate: it must be re-proposed as a null request,
	// and seq 12 must carry the prepared digest.
	if len(nv.PrePrepares) != 2 {
		t.Fatalf("NewView re-issued %d PrePrepares, want 2 (11 null, 12 prepared)", len(nv.PrePrepares))
	}
	if !nv.PrePrepares[0].Digest.IsZero() || nv.PrePrepares[0].Seq != 11 {
		t.Fatalf("slot 11 should be a null request, got seq=%d digest=%v",
			nv.PrePrepares[0].Seq, nv.PrePrepares[0].Digest)
	}
	if nv.PrePrepares[1].Digest != pc12.Digest() {
		t.Fatal("slot 12 lost its prepared digest")
	}

	// Tamper: swap the re-proposed digest (the paper's "false PrePrepares in
	// a NewView" corner case — the Preparation compartment must reject it).
	tampered := *nv
	tampered.PrePrepares = append([]PrePrepare(nil), nv.PrePrepares...)
	tampered.PrePrepares[1].Digest = crypto.HashData([]byte("evil"))
	tampered.PrePrepares[1].Sig = fx.sign(1, fx.ver.Scheme.PrePrepare, tampered.PrePrepares[1].SigningBytes())
	tampered.Sig = fx.sign(1, fx.ver.Scheme.NewView, tampered.SigningBytes())
	if err := fx.ver.VerifyNewView(&tampered); err == nil {
		t.Fatal("NewView with substituted PrePrepare digest accepted")
	}

	// Too few view changes.
	short := *nv
	short.ViewChanges = nv.ViewChanges[:2]
	short.Sig = fx.sign(1, fx.ver.Scheme.NewView, short.SigningBytes())
	if err := fx.ver.VerifyNewView(&short); err == nil {
		t.Fatal("NewView with 2 ViewChanges accepted")
	}

	// Wrong sender: replica 2 claims view 1.
	wrong := *nv
	wrong.Replica = 2
	wrong.Sig = fx.sign(2, fx.ver.Scheme.NewView, wrong.SigningBytes())
	if err := fx.ver.VerifyNewView(&wrong); err == nil {
		t.Fatal("NewView from non-primary accepted")
	}
}

func TestComputeNewViewPicksHighestView(t *testing.T) {
	fx := newFixture(t, SplitScheme())
	// Two certificates for seq 12: one from view 0, one from view 1 with a
	// different digest. The view-1 certificate must win.
	pcV0 := fx.prepareCert(0, 12, testBatch(1))
	pcV1 := fx.prepareCert(1, 12, testBatch(2))
	stable := CheckpointCert{Seq: 11}
	vcs := []ViewChange{
		fx.viewChange(2, stable, []PrepareCert{pcV0}, 0),
		fx.viewChange(2, stable, []PrepareCert{pcV1}, 1),
		fx.viewChange(2, stable, nil, 3),
	}
	_, pps := ComputeNewViewPrePrepares(2, fx.ver.Primary(2), vcs, nil)
	if len(pps) != 1 {
		t.Fatalf("got %d PrePrepares, want 1", len(pps))
	}
	if pps[0].Digest != pcV1.Digest() {
		t.Fatal("new view must re-propose the digest from the highest view")
	}
}

func TestVerifierRejectsBadConfig(t *testing.T) {
	if _, err := NewVerifier(4, 2, crypto.NewRegistry(), SplitScheme()); err == nil {
		t.Fatal("n != 3f+1 accepted")
	}
}

func TestVerifyQuote(t *testing.T) {
	fx := newFixture(t, SplitScheme())
	meas := crypto.HashData([]byte("enclave-code"))
	var nonce [32]byte
	nonce[0] = 7
	q := &AttestQuote{
		Replica: 1, Role: uint8(crypto.RoleExecution),
		Measurement: meas, EnclavePub: [32]byte{9}, Nonce: nonce,
	}
	q.Sig = fx.sign(1, crypto.RoleExecution, q.SigningBytes())
	if err := fx.ver.VerifyQuote(q, meas, nonce); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}
	if err := fx.ver.VerifyQuote(q, crypto.HashData([]byte("other")), nonce); err == nil {
		t.Fatal("quote with wrong measurement accepted")
	}
	var otherNonce [32]byte
	if err := fx.ver.VerifyQuote(q, meas, otherNonce); err == nil {
		t.Fatal("replayed quote accepted")
	}
}
