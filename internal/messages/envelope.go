package messages

import (
	"fmt"
)

// Marshal encodes m into a self-describing envelope: one type byte followed
// by the message body.
func Marshal(m Message) []byte {
	e := NewEncoder(128)
	e.U8(uint8(m.MsgType()))
	m.encodeBody(e)
	return e.Bytes()
}

// MarshalTo encodes m into the provided encoder, returning the encoder's
// buffer. It allows callers to reuse allocation across messages.
func MarshalTo(e *Encoder, m Message) []byte {
	e.U8(uint8(m.MsgType()))
	m.encodeBody(e)
	return e.Bytes()
}

// AppendMessage appends the Marshal encoding of m to dst and returns the
// extended slice — the allocation-free sibling of Marshal for pooled
// buffers.
func AppendMessage(dst []byte, m Message) []byte {
	e := Encoder{buf: dst}
	e.U8(uint8(m.MsgType()))
	m.encodeBody(&e)
	return e.buf
}

// Unmarshal decodes an envelope produced by Marshal. It returns a freshly
// allocated message of the concrete type.
func Unmarshal(data []byte) (Message, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty envelope", ErrDecode)
	}
	d := NewDecoder(data)
	m, err := newMessage(Type(d.U8()))
	if err != nil {
		return nil, err
	}
	m.decodeBody(d)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", m.MsgType(), err)
	}
	return m, nil
}

// newMessage allocates the zero value for a wire type.
func newMessage(t Type) (Message, error) {
	switch t {
	case TRequest:
		return &Request{}, nil
	case TPrePrepare:
		return &PrePrepare{}, nil
	case TPrepare:
		return &Prepare{}, nil
	case TCommit:
		return &Commit{}, nil
	case TReply:
		return &Reply{}, nil
	case TCheckpoint:
		return &Checkpoint{}, nil
	case TViewChange:
		return &ViewChange{}, nil
	case TNewView:
		return &NewView{}, nil
	case TAttestRequest:
		return &AttestRequest{}, nil
	case TAttestQuote:
		return &AttestQuote{}, nil
	case TProvisionKey:
		return &ProvisionKey{}, nil
	case TStateRequest:
		return &StateRequest{}, nil
	case TStateReply:
		return &StateReply{}, nil
	case TSuspect:
		return &Suspect{}, nil
	case TBatchFetch:
		return &BatchFetch{}, nil
	case TBatchReply:
		return &BatchReply{}, nil
	case TStateProbe:
		return &StateProbe{}, nil
	case TLeaseGrant:
		return &LeaseGrant{}, nil
	case TReadRequest:
		return &ReadRequest{}, nil
	case TReadReply:
		return &ReadReply{}, nil
	case TLeaseAck:
		return &LeaseAck{}, nil
	case TReadIndex:
		return &ReadIndex{}, nil
	case TReadIndexReply:
		return &ReadIndexReply{}, nil
	default:
		return nil, fmt.Errorf("%w: unknown message type %d", ErrDecode, uint8(t))
	}
}
