package messages

import (
	"github.com/splitbft/splitbft/internal/crypto"
)

// Checkpoint attests that the sender's application state at sequence number
// Seq has digest StateDigest. A quorum of 2f+1 matching Checkpoints forms a
// stable checkpoint certificate that allows garbage collection (§4.3).
type Checkpoint struct {
	Seq         uint64
	StateDigest crypto.Digest
	Replica     uint32
	Sig         []byte
	// Auth is the MAC-mode authenticator vector, laid out per
	// AgreementAuthReceivers(TCheckpoint, n): every compartment of every
	// replica runs the duplicated checkpoint handler. Empty in sig mode.
	Auth crypto.Authenticator
}

// MsgType implements Message.
func (*Checkpoint) MsgType() Type { return TCheckpoint }

// SigningBytes returns the bytes the signature covers.
func (c *Checkpoint) SigningBytes() []byte {
	e := NewEncoder(64)
	e.U8(uint8(TCheckpoint))
	e.U64(c.Seq)
	e.Digest(c.StateDigest)
	e.U32(c.Replica)
	return e.Bytes()
}

func (c *Checkpoint) encodeBody(e *Encoder) {
	e.U64(c.Seq)
	e.Digest(c.StateDigest)
	e.U32(c.Replica)
	e.VarBytes(c.Sig)
	e.Auth(c.Auth)
}

func (c *Checkpoint) decodeBody(d *Decoder) {
	c.Seq = d.U64()
	c.StateDigest = d.Digest()
	c.Replica = d.U32()
	c.Sig = d.VarBytes()
	c.Auth = d.Auth()
}

// PrepareCert is a prepare certificate: proof that a batch was prepared at
// (View, Seq), the unit carried by ViewChange messages. Its shape depends
// on the agreement authentication mode:
//
//   - Sig mode: one PrePrepare (request bodies stripped) plus 2f matching
//     Prepares from distinct replicas, each individually signed and
//     third-party verifiable.
//   - MAC mode: the bare PrePrepare header plus a single Vouch — the
//     Confirmation enclave that locally validated the MAC'd quorum signs
//     the aggregated claim (PrepareCertClaim). Sound because an attested
//     agreement enclave is trusted to collect the quorum correctly.
type PrepareCert struct {
	PrePrepare PrePrepare
	Prepares   []Prepare
	// Attestor identifies the replica whose Confirmation enclave signed
	// Vouch (MAC mode only).
	Attestor uint32
	Vouch    []byte
}

// View returns the certificate's view.
func (pc *PrepareCert) View() uint64 { return pc.PrePrepare.View }

// Seq returns the certificate's sequence number.
func (pc *PrepareCert) Seq() uint64 { return pc.PrePrepare.Seq }

// Digest returns the certified batch digest.
func (pc *PrepareCert) Digest() crypto.Digest { return pc.PrePrepare.Digest }

func (pc *PrepareCert) encode(e *Encoder) {
	pc.PrePrepare.encodeBody(e)
	e.U32(uint32(len(pc.Prepares)))
	for i := range pc.Prepares {
		pc.Prepares[i].encodeBody(e)
	}
	e.U32(pc.Attestor)
	e.VarBytes(pc.Vouch)
}

func (pc *PrepareCert) decode(d *Decoder) {
	pc.PrePrepare.decodeBody(d)
	n := d.Count(4096)
	if n > 0 {
		pc.Prepares = make([]Prepare, n)
		for i := 0; i < n; i++ {
			pc.Prepares[i].decodeBody(d)
		}
	}
	pc.Attestor = d.U32()
	pc.Vouch = d.VarBytes()
}

// CheckpointCert is a stable-checkpoint certificate. In sig mode Proof
// carries 2f+1 matching signed Checkpoints from distinct replicas; in MAC
// mode the compartment that locally validated the MAC'd quorum signs the
// aggregated claim instead (CheckpointCertClaim) — Proof stays empty and
// Vouch/Attestor/AttestorRole identify the single attesting enclave.
type CheckpointCert struct {
	Seq         uint64
	StateDigest crypto.Digest
	Proof       []Checkpoint
	// Attestor/AttestorRole identify the enclave that signed Vouch (MAC
	// mode only). Any of the three compartment roles may attest: each runs
	// the duplicated checkpoint handler and forms its own stable cert.
	Attestor     uint32
	AttestorRole uint8
	Vouch        []byte
}

func (cc *CheckpointCert) encode(e *Encoder) {
	e.U64(cc.Seq)
	e.Digest(cc.StateDigest)
	e.U32(uint32(len(cc.Proof)))
	for i := range cc.Proof {
		cc.Proof[i].encodeBody(e)
	}
	e.U32(cc.Attestor)
	e.U8(cc.AttestorRole)
	e.VarBytes(cc.Vouch)
}

// MarshalCert returns the standalone encoding of the certificate, used by
// the compartment state export (internal/core's persist path). Certificates
// embedded in wire messages are encoded inline instead.
func (cc *CheckpointCert) MarshalCert() []byte {
	e := NewEncoder(256)
	cc.encode(e)
	return e.Bytes()
}

// UnmarshalCheckpointCert reverses MarshalCert.
func UnmarshalCheckpointCert(data []byte) (CheckpointCert, error) {
	d := NewDecoder(data)
	var cc CheckpointCert
	cc.decode(d)
	if err := d.Finish(); err != nil {
		return CheckpointCert{}, err
	}
	return cc, nil
}

func (cc *CheckpointCert) decode(d *Decoder) {
	cc.Seq = d.U64()
	cc.StateDigest = d.Digest()
	n := d.Count(4096)
	if n > 0 {
		cc.Proof = make([]Checkpoint, n)
		for i := 0; i < n; i++ {
			cc.Proof[i].decodeBody(d)
		}
	}
	cc.Attestor = d.U32()
	cc.AttestorRole = d.U8()
	cc.Vouch = d.VarBytes()
}

// ViewChange announces that the sender wants to move to view NewViewNum. It
// carries the sender's latest stable checkpoint certificate and every
// prepare certificate above it, so the new primary can re-propose prepared
// batches (§4.4). In SplitBFT the Confirmation compartment sends it.
type ViewChange struct {
	NewViewNum uint64
	Stable     CheckpointCert
	Prepared   []PrepareCert
	Replica    uint32
	// HighCtr is the highest trusted-counter value among the PrePrepares
	// this replica accepted (trusted consensus mode only; zero in classic).
	// It must cover every certificate in Prepared — a ViewChange claiming a
	// counter position below its own certificates is stale and rejected —
	// so a new primary can see how far the previous leader's gap-free
	// assignment got.
	HighCtr uint64
	Sig     []byte
}

// MsgType implements Message.
func (*ViewChange) MsgType() Type { return TViewChange }

// SigningBytes returns the bytes the signature covers: everything except
// the signature itself.
func (v *ViewChange) SigningBytes() []byte {
	e := NewEncoder(256)
	e.U8(uint8(TViewChange))
	v.encodeUnsigned(e)
	return e.Bytes()
}

func (v *ViewChange) encodeUnsigned(e *Encoder) {
	e.U64(v.NewViewNum)
	v.Stable.encode(e)
	e.U32(uint32(len(v.Prepared)))
	for i := range v.Prepared {
		v.Prepared[i].encode(e)
	}
	e.U32(v.Replica)
	e.U64(v.HighCtr)
}

func (v *ViewChange) encodeBody(e *Encoder) {
	v.encodeUnsigned(e)
	e.VarBytes(v.Sig)
}

func (v *ViewChange) decodeBody(d *Decoder) {
	v.NewViewNum = d.U64()
	v.Stable.decode(d)
	n := d.Count(1 << 16)
	if n > 0 {
		v.Prepared = make([]PrepareCert, n)
		for i := 0; i < n; i++ {
			v.Prepared[i].decode(d)
		}
	}
	v.Replica = d.U32()
	v.HighCtr = d.U64()
	v.Sig = d.VarBytes()
}

// NewView is the new primary's view installation message. It proves the
// view change with 2f+1 ViewChanges, distributes the highest stable
// checkpoint, and re-issues PrePrepares for every prepared-but-unexecuted
// batch.
type NewView struct {
	View        uint64
	ViewChanges []ViewChange
	Stable      CheckpointCert
	PrePrepares []PrePrepare
	Replica     uint32
	// CtrBase is the new primary's trusted-counter position when it built
	// this NewView (trusted consensus mode only; zero in classic). The
	// re-issued PrePrepares consume CtrBase+1..CtrBase+k in sequence order,
	// and every later proposal in the view must satisfy
	// CtrVal = CtrBase + (Seq - Stable.Seq) — the affine law replicas
	// enforce, which is what makes slot reuse and slot skipping by the new
	// leader detectable.
	CtrBase uint64
	Sig     []byte
}

// MsgType implements Message.
func (*NewView) MsgType() Type { return TNewView }

// SigningBytes returns the bytes the signature covers.
func (nv *NewView) SigningBytes() []byte {
	e := NewEncoder(512)
	e.U8(uint8(TNewView))
	nv.encodeUnsigned(e)
	return e.Bytes()
}

func (nv *NewView) encodeUnsigned(e *Encoder) {
	e.U64(nv.View)
	e.U32(uint32(len(nv.ViewChanges)))
	for i := range nv.ViewChanges {
		nv.ViewChanges[i].encodeBody(e)
	}
	nv.Stable.encode(e)
	e.U32(uint32(len(nv.PrePrepares)))
	for i := range nv.PrePrepares {
		nv.PrePrepares[i].encodeBody(e)
	}
	e.U32(nv.Replica)
	e.U64(nv.CtrBase)
}

func (nv *NewView) encodeBody(e *Encoder) {
	nv.encodeUnsigned(e)
	e.VarBytes(nv.Sig)
}

func (nv *NewView) decodeBody(d *Decoder) {
	nv.View = d.U64()
	n := d.Count(4096)
	if n > 0 {
		nv.ViewChanges = make([]ViewChange, n)
		for i := 0; i < n; i++ {
			nv.ViewChanges[i].decodeBody(d)
		}
	}
	nv.Stable.decode(d)
	m := d.Count(1 << 16)
	if m > 0 {
		nv.PrePrepares = make([]PrePrepare, m)
		for i := 0; i < m; i++ {
			nv.PrePrepares[i].decodeBody(d)
		}
	}
	nv.Replica = d.U32()
	nv.CtrBase = d.U64()
	nv.Sig = d.VarBytes()
}

// StateRequest asks a peer for an application snapshot at or above Seq, used
// by lagging replicas after missing a stable checkpoint.
type StateRequest struct {
	Seq     uint64
	Replica uint32
}

// MsgType implements Message.
func (*StateRequest) MsgType() Type { return TStateRequest }

func (s *StateRequest) encodeBody(e *Encoder) {
	e.U64(s.Seq)
	e.U32(s.Replica)
}

func (s *StateRequest) decodeBody(d *Decoder) {
	s.Seq = d.U64()
	s.Replica = d.U32()
}

// StateReply carries an application snapshot together with the checkpoint
// certificate proving its digest; the receiver verifies the snapshot hash
// against the certificate before installing it.
type StateReply struct {
	Cert     CheckpointCert
	Snapshot []byte
	Replica  uint32
}

// MsgType implements Message.
func (*StateReply) MsgType() Type { return TStateReply }

func (s *StateReply) encodeBody(e *Encoder) {
	s.Cert.encode(e)
	e.VarBytes(s.Snapshot)
	e.U32(s.Replica)
}

func (s *StateReply) decodeBody(d *Decoder) {
	s.Cert.decode(d)
	s.Snapshot = d.VarBytes()
	s.Replica = d.U32()
}
