package messages

import (
	"github.com/splitbft/splitbft/internal/crypto"
)

// AuthMode selects how normal-case agreement traffic (PrePrepare, Prepare,
// Commit, Checkpoint) is authenticated between replicas.
//
// AuthSig is the paper's baseline: every message carries an Ed25519
// signature from its sending compartment, transferable to third parties —
// certificates are bundles of individually verifiable messages.
//
// AuthMAC is the trusted-compartment fast path: attested agreement
// enclaves establish pairwise symmetric keys (X25519 between enclave keys
// exchanged at registration) and authenticate normal-case traffic with
// HMAC vectors, one authenticator per receiving compartment. MACs are not
// transferable, so messages that third parties must be able to check keep
// Ed25519: ViewChange and NewView — and the certificates they carry shrink
// from 2f+1 signature bundles to a single enclave signature over the
// aggregated claim, sound because an attested enclave is trusted to have
// validated the quorum correctly before signing.
type AuthMode uint8

// Agreement authentication modes.
const (
	AuthSig AuthMode = iota
	AuthMAC
)

// String returns the facade-level spelling of the mode.
func (m AuthMode) String() string {
	if m == AuthMAC {
		return "mac"
	}
	return "sig"
}

// AgreementAuthReceivers returns the ordered MAC-vector layout for an
// agreement message type in a SplitBFT deployment of n replicas: exactly
// the compartments that verify the type, in a fixed order both sender and
// receivers compute independently.
//
//   - PrePrepare and Checkpoint are verified by all three compartments of
//     every replica (duplicated input logs, duplicated checkpoint
//     handlers): 3n entries, Preparation block then Confirmation block
//     then Execution block.
//   - Prepare is consumed only by Confirmation compartments: n entries.
//   - Commit is consumed only by Execution compartments: n entries.
//
// Other types return nil: they are not MAC-authenticated.
func AgreementAuthReceivers(t Type, n int) []crypto.Identity {
	roles := agreementAuthRoles(t)
	if roles == nil {
		return nil
	}
	out := make([]crypto.Identity, 0, len(roles)*n)
	for _, role := range roles {
		for i := 0; i < n; i++ {
			out = append(out, crypto.Identity{ReplicaID: uint32(i), Role: role})
		}
	}
	return out
}

// AgreementAuthIndex returns self's slot in the MAC vector of type t, or
// -1 when self is not a receiver of that type.
func AgreementAuthIndex(t Type, n int, self crypto.Identity) int {
	roles := agreementAuthRoles(t)
	for bi, role := range roles {
		if role == self.Role && int(self.ReplicaID) < n {
			return bi*n + int(self.ReplicaID)
		}
	}
	return -1
}

// agreementAuthRoles lists the receiver role blocks of a MAC-authenticated
// type, in vector order.
func agreementAuthRoles(t Type) []crypto.Role {
	switch t {
	case TPrePrepare, TCheckpoint:
		return []crypto.Role{crypto.RolePreparation, crypto.RoleConfirmation, crypto.RoleExecution}
	case TPrepare:
		return []crypto.Role{crypto.RoleConfirmation}
	case TCommit:
		return []crypto.Role{crypto.RoleExecution}
	case TLeaseAck, TReadIndex:
		// Holder Execution → granting primary's Preparation.
		return []crypto.Role{crypto.RolePreparation}
	case TReadIndexReply:
		// Primary Preparation → holder Execution.
		return []crypto.Role{crypto.RoleExecution}
	default:
		return nil
	}
}

// Domain-separation tags for certificate vouch signatures. They must not
// collide with the message-type bytes that prefix every SigningBytes
// payload, so a vouch can never be replayed as a protocol message (or vice
// versa).
const (
	sigTagPrepareCertVouch    = 0xF1
	sigTagCheckpointCertVouch = 0xF2
)

// PrepareCertClaim returns the bytes an enclave signs to vouch for a
// locally validated prepare certificate: "a prepare certificate for
// (view, seq, digest) exists". In MAC mode this single signature replaces
// the 2f+1 individually signed messages of the sig-mode certificate.
func PrepareCertClaim(view, seq uint64, digest crypto.Digest) []byte {
	e := NewEncoder(64)
	e.U8(sigTagPrepareCertVouch)
	e.U64(view)
	e.U64(seq)
	e.Digest(digest)
	return e.Bytes()
}

// CheckpointCertClaim returns the bytes an enclave signs to vouch for a
// locally validated stable-checkpoint certificate.
func CheckpointCertClaim(seq uint64, stateDigest crypto.Digest) []byte {
	e := NewEncoder(64)
	e.U8(sigTagCheckpointCertVouch)
	e.U64(seq)
	e.Digest(stateDigest)
	return e.Bytes()
}

// maxAuthMACs bounds decoded authenticator vectors (3n entries at the
// widest layout; 4096 allows deployments beyond a thousand replicas).
const maxAuthMACs = 4096

// Auth appends an authenticator vector: count then the fixed-size MACs.
func (e *Encoder) Auth(a crypto.Authenticator) {
	e.U32(uint32(len(a.MACs)))
	for _, m := range a.MACs {
		e.MAC(m)
	}
}

// Auth reads an authenticator vector written by Encoder.Auth.
func (d *Decoder) Auth() crypto.Authenticator {
	n := d.Count(maxAuthMACs)
	if n == 0 {
		return crypto.Authenticator{}
	}
	a := crypto.Authenticator{MACs: make([][crypto.MACSize]byte, n)}
	for i := 0; i < n; i++ {
		a.MACs[i] = d.MAC()
	}
	return a
}
