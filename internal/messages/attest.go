package messages

import (
	"github.com/splitbft/splitbft/internal/crypto"
)

// AttestRequest starts the client attestation handshake with an enclave
// (§4.1): the client challenges the enclave with a fresh nonce and supplies
// its X25519 public key for the session-key agreement.
type AttestRequest struct {
	ClientID  uint32
	Nonce     [32]byte
	ClientPub [32]byte // client's X25519 public key
}

// MsgType implements Message.
func (*AttestRequest) MsgType() Type { return TAttestRequest }

func (a *AttestRequest) encodeBody(e *Encoder) {
	e.U32(a.ClientID)
	e.buf = append(e.buf, a.Nonce[:]...)
	e.buf = append(e.buf, a.ClientPub[:]...)
}

func (a *AttestRequest) decodeBody(d *Decoder) {
	a.ClientID = d.U32()
	if b := d.take(32); b != nil {
		copy(a.Nonce[:], b)
	}
	if b := d.take(32); b != nil {
		copy(a.ClientPub[:], b)
	}
}

// AttestQuote is the enclave's attestation evidence: its measurement, its
// X25519 public key and the echoed nonce, signed by the enclave's identity
// key. It stands in for an SGX DCAP quote; verifying it against the expected
// measurement plays the role of quote verification.
type AttestQuote struct {
	Replica     uint32
	Role        uint8 // crypto.Role of the quoting enclave
	Measurement crypto.Digest
	EnclavePub  [32]byte // enclave's X25519 public key
	Nonce       [32]byte
	Sig         []byte
}

// MsgType implements Message.
func (*AttestQuote) MsgType() Type { return TAttestQuote }

// SigningBytes returns the bytes the quote signature covers.
func (a *AttestQuote) SigningBytes() []byte {
	e := NewEncoder(128)
	e.U8(uint8(TAttestQuote))
	e.U32(a.Replica)
	e.U8(a.Role)
	e.Digest(a.Measurement)
	e.buf = append(e.buf, a.EnclavePub[:]...)
	e.buf = append(e.buf, a.Nonce[:]...)
	return e.Bytes()
}

func (a *AttestQuote) encodeBody(e *Encoder) {
	e.U32(a.Replica)
	e.U8(a.Role)
	e.Digest(a.Measurement)
	e.buf = append(e.buf, a.EnclavePub[:]...)
	e.buf = append(e.buf, a.Nonce[:]...)
	e.VarBytes(a.Sig)
}

func (a *AttestQuote) decodeBody(d *Decoder) {
	a.Replica = d.U32()
	a.Role = d.U8()
	a.Measurement = d.Digest()
	if b := d.take(32); b != nil {
		copy(a.EnclavePub[:], b)
	}
	if b := d.take(32); b != nil {
		copy(a.Nonce[:], b)
	}
	a.Sig = d.VarBytes()
}

// ProvisionKey finalizes session setup (§4.1: "the client provides the
// execution enclave with a session key s_enc"). The client's service-wide
// session key is wrapped (AES-GCM) under the pairwise key derived from the
// X25519 handshake with this specific enclave, so only that enclave can
// unwrap it — the environment relays ciphertext.
type ProvisionKey struct {
	ClientID   uint32
	Replica    uint32
	WrappedKey []byte // Seal_{ECDH(client, enclave)}(s_enc)
}

// MsgType implements Message.
func (*ProvisionKey) MsgType() Type { return TProvisionKey }

func (p *ProvisionKey) encodeBody(e *Encoder) {
	e.U32(p.ClientID)
	e.U32(p.Replica)
	e.VarBytes(p.WrappedKey)
}

func (p *ProvisionKey) decodeBody(d *Decoder) {
	p.ClientID = d.U32()
	p.Replica = d.U32()
	p.WrappedKey = d.VarBytes()
}
