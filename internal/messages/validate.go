package messages

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/splitbft/splitbft/internal/crypto"
)

// ErrInvalid wraps all semantic validation failures (bad signatures, wrong
// senders, malformed certificates).
var ErrInvalid = errors.New("messages: invalid")

// SignerScheme maps each protocol message kind to the role whose key signs
// it. SplitBFT assigns different compartments to different messages; the
// PBFT baseline signs everything with the single replica key.
type SignerScheme struct {
	PrePrepare crypto.Role
	Prepare    crypto.Role
	Commit     crypto.Role
	Checkpoint crypto.Role
	ViewChange crypto.Role
	NewView    crypto.Role
}

// SplitScheme is the SplitBFT signer assignment (§3.2): Preparation signs
// PrePrepare/Prepare/NewView, Confirmation signs Commit/ViewChange, and
// Execution signs Checkpoints.
func SplitScheme() SignerScheme {
	return SignerScheme{
		PrePrepare: crypto.RolePreparation,
		Prepare:    crypto.RolePreparation,
		Commit:     crypto.RoleConfirmation,
		Checkpoint: crypto.RoleExecution,
		ViewChange: crypto.RoleConfirmation,
		NewView:    crypto.RolePreparation,
	}
}

// BaselineScheme is the plain-PBFT signer assignment: one key per replica.
func BaselineScheme() SignerScheme {
	return SignerScheme{
		PrePrepare: crypto.RoleReplica,
		Prepare:    crypto.RoleReplica,
		Commit:     crypto.RoleReplica,
		Checkpoint: crypto.RoleReplica,
		ViewChange: crypto.RoleReplica,
		NewView:    crypto.RoleReplica,
	}
}

// Verifier validates protocol messages and quorum certificates for a system
// of N = 3F+1 replicas under a signer scheme.
type Verifier struct {
	N      int
	F      int
	Reg    *crypto.Registry
	Scheme SignerScheme
	// Cache, when non-nil, memoizes successful signature verifications so
	// retransmits and view-change replays skip redundant Ed25519 work. It
	// never changes verification outcomes (only successes are cached).
	Cache *VerifyCache

	// Mode selects how normal-case agreement traffic is authenticated
	// (AuthSig default). In AuthMAC, MACs must hold the verifying
	// compartment's pairwise replica keys and Self its identity — the MAC
	// vector slot it checks is derived from both.
	Mode AuthMode
	MACs *crypto.MACStore
	Self crypto.Identity

	// Consensus selects the agreement variant (ConsensusClassic default).
	// In ConsensusTrusted, N must be 2F+1, Quorum shrinks to F+1, and
	// prepare certificates are counter attestations instead of Prepare
	// bundles.
	Consensus ConsensusMode

	// Crypto-op accounting for the auth ablation: how many Ed25519
	// verifications actually ran (cache hits excluded), the wall time they
	// took, and how many agreement-MAC verifications ran. Atomic — the
	// verify worker pool calls concurrently.
	sigOps   atomic.Uint64
	sigNanos atomic.Int64
	macOps   atomic.Uint64
	ctrOps   atomic.Uint64
	leaseOps atomic.Uint64
}

// VerifierStats is a snapshot of a Verifier's crypto-op counters.
type VerifierStats struct {
	// SigVerifies counts executed Ed25519 verifications (cache hits are
	// free and excluded); SigTime is the wall time they consumed.
	SigVerifies uint64
	SigTime     time.Duration
	// MACVerifies counts agreement-MAC (HMAC) verifications.
	MACVerifies uint64
	// CounterVerifies counts trusted-counter attestation checks (trusted
	// consensus mode). Cache-served re-checks are included: the number
	// attributes how often the counter stood in for a Prepare quorum, not
	// raw Ed25519 work (which SigVerifies/SigTime already capture).
	CounterVerifies uint64
	// LeaseVerifies counts read-lease attestation checks (read-lease fast
	// path). Like CounterVerifies it includes cache-served re-checks: the
	// number attributes how often a lease grant was validated, not raw
	// Ed25519 work.
	LeaseVerifies uint64
}

// Stats returns the verifier's crypto-op counters.
func (v *Verifier) Stats() VerifierStats {
	return VerifierStats{
		SigVerifies:     v.sigOps.Load(),
		SigTime:         time.Duration(v.sigNanos.Load()),
		MACVerifies:     v.macOps.Load(),
		CounterVerifies: v.ctrOps.Load(),
		LeaseVerifies:   v.leaseOps.Load(),
	}
}

// ResetStats zeroes the crypto-op counters (between benchmark phases).
func (v *Verifier) ResetStats() {
	v.sigOps.Store(0)
	v.sigNanos.Store(0)
	v.macOps.Store(0)
	v.ctrOps.Store(0)
	v.leaseOps.Store(0)
}

// VerifySig checks sig over msg under the key registered for signer,
// consulting the verification cache when one is installed. All signature
// checks in this package funnel through here.
func (v *Verifier) VerifySig(signer crypto.Identity, msg, sig []byte) error {
	if v.Cache == nil {
		return v.timedVerifyFrom(signer, msg, sig)
	}
	k := verifyKey{signer: signer, sum: crypto.HashConcat(msg, sig)}
	if v.Cache.lookup(k) {
		return nil
	}
	if err := v.timedVerifyFrom(signer, msg, sig); err != nil {
		return err
	}
	v.Cache.store(k)
	return nil
}

// timedVerifyFrom runs one Ed25519 verification, accounting for it.
func (v *Verifier) timedVerifyFrom(signer crypto.Identity, msg, sig []byte) error {
	begin := time.Now()
	err := v.Reg.VerifyFrom(signer, msg, sig)
	v.sigOps.Add(1)
	v.sigNanos.Add(int64(time.Since(begin)))
	return err
}

// verifyAuth checks the authenticity of one agreement message: the
// Ed25519 signature in sig mode, or — in MAC mode — the authenticator
// slot addressed to this compartment, under the pairwise key shared with
// the sending enclave.
func (v *Verifier) verifyAuth(t Type, signer crypto.Identity, signing, sig []byte, auth crypto.Authenticator) error {
	if v.Mode != AuthMAC {
		return v.VerifySig(signer, signing, sig)
	}
	if v.MACs == nil {
		return fmt.Errorf("%w: MAC mode without a pairwise key store", ErrInvalid)
	}
	idx := AgreementAuthIndex(t, v.N, v.Self)
	if idx < 0 {
		return fmt.Errorf("%w: %v/%v is not a %s receiver", ErrInvalid, v.Self.ReplicaID, v.Self.Role, t)
	}
	v.macOps.Add(1)
	return v.MACs.VerifyIndexed(signing, auth, idx, signer)
}

// NewVerifier builds a classic-consensus Verifier. N must be 3F+1 with
// F >= 0.
func NewVerifier(n, f int, reg *crypto.Registry, scheme SignerScheme) (*Verifier, error) {
	return NewVerifierMode(n, f, reg, scheme, ConsensusClassic)
}

// NewVerifierMode builds a Verifier for the given consensus mode: N must be
// 3F+1 in classic mode, 2F+1 in trusted mode, with F >= 0.
func NewVerifierMode(n, f int, reg *crypto.Registry, scheme SignerScheme, mode ConsensusMode) (*Verifier, error) {
	if !ValidConsensus(mode, n, f) {
		want := "3f+1"
		if mode == ConsensusTrusted {
			want = "2f+1"
		}
		return nil, fmt.Errorf("%w: n=%d must equal %s (f=%d, %s consensus)", ErrInvalid, n, want, f, mode)
	}
	return &Verifier{N: n, F: f, Reg: reg, Scheme: scheme, Consensus: mode}, nil
}

// Primary returns the primary replica for a view.
func (v *Verifier) Primary(view uint64) uint32 {
	return uint32(view % uint64(v.N))
}

// Quorum returns the certificate size: 2f+1 in classic consensus, f+1 in
// trusted consensus (any two quorums still intersect in one replica whose
// enclaves are, per the hybrid fault model, at worst crashed).
func (v *Verifier) Quorum() int {
	if v.Consensus == ConsensusTrusted {
		return v.F + 1
	}
	return 2*v.F + 1
}

func (v *Verifier) validReplica(id uint32) error {
	if int(id) >= v.N {
		return fmt.Errorf("%w: replica id %d out of range (n=%d)", ErrInvalid, id, v.N)
	}
	return nil
}

// VerifyPrePrepare checks the PrePrepare's authenticity (signature or MAC
// slot, per mode), that the proposer is the primary of its view, and that
// an included batch matches the digest. Empty-batch PrePrepares (as found
// in certificates or null requests) skip the batch check when the digest
// is also zero or when stripped for certs.
func (v *Verifier) VerifyPrePrepare(pp *PrePrepare, requireBatch bool) error {
	return v.checkPrePrepare(pp, requireBatch, true)
}

// VerifyReissuedPrePrepare validates a PrePrepare embedded in a NewView.
// In sig mode it carries the new primary's signature like a live one; in
// MAC mode it carries no authenticator of its own — the Ed25519 signature
// on the enclosing NewView (same signing compartment, verified by the
// caller) covers it — so only the structural checks run.
func (v *Verifier) VerifyReissuedPrePrepare(pp *PrePrepare) error {
	return v.checkPrePrepare(pp, false, v.Mode != AuthMAC)
}

func (v *Verifier) checkPrePrepare(pp *PrePrepare, requireBatch, needAuth bool) error {
	if err := v.validReplica(pp.Replica); err != nil {
		return err
	}
	if pp.Replica != v.Primary(pp.View) {
		return fmt.Errorf("%w: PrePrepare view %d from %d, primary is %d",
			ErrInvalid, pp.View, pp.Replica, v.Primary(pp.View))
	}
	if needAuth {
		signer := crypto.Identity{ReplicaID: pp.Replica, Role: v.Scheme.PrePrepare}
		if err := v.verifyAuth(TPrePrepare, signer, pp.SigningBytes(), pp.Sig, pp.Auth); err != nil {
			return fmt.Errorf("%w: PrePrepare(v=%d,n=%d): %v", ErrInvalid, pp.View, pp.Seq, err)
		}
	}
	hasBatch := len(pp.Batch.Requests) > 0
	if hasBatch {
		if got := pp.Batch.Digest(); got != pp.Digest {
			return fmt.Errorf("%w: PrePrepare batch digest %v != header digest %v",
				ErrInvalid, got, pp.Digest)
		}
	} else if requireBatch && !pp.Digest.IsZero() {
		return fmt.Errorf("%w: PrePrepare(v=%d,n=%d) missing batch body", ErrInvalid, pp.View, pp.Seq)
	}
	return nil
}

// VerifyCounter checks the trusted-counter attestation a PrePrepare
// carries: the counter enclave of the proposing replica must have signed
// (Replica, CtrVal, CounterDigest(pp)). Because the bound digest hashes
// the full signed header, a forged attestation fails the signature check,
// a transplanted one (lifted from another proposer) fails the key lookup
// and digest binding, and a replayed one (reused for a different view,
// sequence, or batch) fails the digest binding.
func (v *Verifier) VerifyCounter(pp *PrePrepare) error {
	if len(pp.CtrSig) == 0 {
		return fmt.Errorf("%w: PrePrepare(v=%d,n=%d) carries no counter attestation", ErrInvalid, pp.View, pp.Seq)
	}
	v.ctrOps.Add(1)
	signer := crypto.Identity{ReplicaID: pp.Replica, Role: crypto.RoleCounter}
	msg := crypto.CounterSigningBytes(pp.Replica, pp.CtrVal, CounterDigest(pp))
	if err := v.VerifySig(signer, msg, pp.CtrSig); err != nil {
		return fmt.Errorf("%w: PrePrepare(v=%d,n=%d) counter attestation: %v", ErrInvalid, pp.View, pp.Seq, err)
	}
	return nil
}

// VerifyCounterAt checks a live PrePrepare against the gap-free assignment
// law of the current view: with the view's counter base ctrBase pinned at
// sequence base seqBase (both zero in view 0, re-pinned by every NewView),
// the proposal at Seq must carry exactly CtrVal = ctrBase + (Seq-seqBase).
// Any gap, repeat, or fork in the leader's counter usage breaks the
// equation for some correct replica, which is what makes equivocation
// impossible to land rather than merely detectable.
func (v *Verifier) VerifyCounterAt(pp *PrePrepare, ctrBase, seqBase uint64) error {
	if pp.Seq <= seqBase {
		return fmt.Errorf("%w: PrePrepare(v=%d,n=%d) at or below counter base seq %d",
			ErrInvalid, pp.View, pp.Seq, seqBase)
	}
	if want := ctrBase + (pp.Seq - seqBase); pp.CtrVal != want {
		return fmt.Errorf("%w: PrePrepare(v=%d,n=%d) counter value %d breaks gap-free assignment (want %d)",
			ErrInvalid, pp.View, pp.Seq, pp.CtrVal, want)
	}
	return v.VerifyCounter(pp)
}

// VerifyLease checks a read-lease grant: the granter must be the primary
// of the lease's view and the signature must verify under the granter's
// counter-enclave key (RoleCounter) over the canonical lease layout. The
// time-validity and applied-index admission checks are the lease holder's
// job — this validates only provenance, so a grant forged by the untrusted
// environment or transplanted from another view/holder is rejected here.
func (v *Verifier) VerifyLease(g *LeaseGrant) error {
	if err := v.validReplica(g.Granter); err != nil {
		return err
	}
	if err := v.validReplica(g.Holder); err != nil {
		return err
	}
	if g.Granter != v.Primary(g.View) {
		return fmt.Errorf("%w: LeaseGrant for view %d from %d, primary is %d",
			ErrInvalid, g.View, g.Granter, v.Primary(g.View))
	}
	v.leaseOps.Add(1)
	signer := crypto.Identity{ReplicaID: g.Granter, Role: crypto.RoleCounter}
	msg := crypto.LeaseSigningBytes(g.Granter, g.Holder, g.View, g.AnchorSeq, g.CtrVal, g.Expiry, g.Probe)
	if err := v.VerifySig(signer, msg, g.Sig); err != nil {
		return fmt.Errorf("%w: LeaseGrant(v=%d,holder=%d): %v", ErrInvalid, g.View, g.Holder, err)
	}
	return nil
}

// VerifyLeaseAck checks a lease acknowledgement: the holder must be a
// valid replica and the message authenticated by its Execution compartment
// (signature or the Preparation-addressed MAC slot, per mode). Freshness —
// whether the echoed expiry still lies in the future and exceeds the
// holder's previous acks — is the granter's job.
func (v *Verifier) VerifyLeaseAck(a *LeaseAck) error {
	if err := v.validReplica(a.Holder); err != nil {
		return err
	}
	signer := crypto.Identity{ReplicaID: a.Holder, Role: crypto.RoleExecution}
	if err := v.verifyAuth(TLeaseAck, signer, a.SigningBytes(), a.Sig, a.Auth); err != nil {
		return fmt.Errorf("%w: LeaseAck(v=%d,holder=%d): %v", ErrInvalid, a.View, a.Holder, err)
	}
	return nil
}

// VerifyReadIndex checks a read-index query: the holder must be a valid
// replica and the message authenticated by its Execution compartment.
func (v *Verifier) VerifyReadIndex(r *ReadIndex) error {
	if err := v.validReplica(r.Holder); err != nil {
		return err
	}
	signer := crypto.Identity{ReplicaID: r.Holder, Role: crypto.RoleExecution}
	if err := v.verifyAuth(TReadIndex, signer, r.SigningBytes(), r.Sig, r.Auth); err != nil {
		return fmt.Errorf("%w: ReadIndex(v=%d,holder=%d): %v", ErrInvalid, r.View, r.Holder, err)
	}
	return nil
}

// VerifyReadIndexReply checks a read-index answer: the sender must be the
// primary of the reply's view and the message authenticated by its
// Preparation compartment — the same compartment that assigns sequence
// numbers, so the frontier carries the proposer's own authority.
func (v *Verifier) VerifyReadIndexReply(r *ReadIndexReply) error {
	if err := v.validReplica(r.Replica); err != nil {
		return err
	}
	if r.Replica != v.Primary(r.View) {
		return fmt.Errorf("%w: ReadIndexReply for view %d from %d, primary is %d",
			ErrInvalid, r.View, r.Replica, v.Primary(r.View))
	}
	signer := crypto.Identity{ReplicaID: r.Replica, Role: crypto.RolePreparation}
	if err := v.verifyAuth(TReadIndexReply, signer, r.SigningBytes(), r.Sig, r.Auth); err != nil {
		return fmt.Errorf("%w: ReadIndexReply(v=%d,epoch=%d): %v", ErrInvalid, r.View, r.Epoch, err)
	}
	return nil
}

// VerifyPrepare checks a Prepare signature and sender validity. Prepares
// must come from backups, not the view's primary.
func (v *Verifier) VerifyPrepare(p *Prepare) error {
	if err := v.validReplica(p.Replica); err != nil {
		return err
	}
	if p.Replica == v.Primary(p.View) {
		return fmt.Errorf("%w: Prepare from primary %d of view %d", ErrInvalid, p.Replica, p.View)
	}
	signer := crypto.Identity{ReplicaID: p.Replica, Role: v.Scheme.Prepare}
	if err := v.verifyAuth(TPrepare, signer, p.SigningBytes(), p.Sig, p.Auth); err != nil {
		return fmt.Errorf("%w: Prepare(v=%d,n=%d,r=%d): %v", ErrInvalid, p.View, p.Seq, p.Replica, err)
	}
	return nil
}

// VerifyCommit checks a Commit signature and sender validity.
func (v *Verifier) VerifyCommit(c *Commit) error {
	if err := v.validReplica(c.Replica); err != nil {
		return err
	}
	signer := crypto.Identity{ReplicaID: c.Replica, Role: v.Scheme.Commit}
	if err := v.verifyAuth(TCommit, signer, c.SigningBytes(), c.Sig, c.Auth); err != nil {
		return fmt.Errorf("%w: Commit(v=%d,n=%d,r=%d): %v", ErrInvalid, c.View, c.Seq, c.Replica, err)
	}
	return nil
}

// VerifyCheckpoint checks a Checkpoint signature.
func (v *Verifier) VerifyCheckpoint(c *Checkpoint) error {
	if err := v.validReplica(c.Replica); err != nil {
		return err
	}
	signer := crypto.Identity{ReplicaID: c.Replica, Role: v.Scheme.Checkpoint}
	if err := v.verifyAuth(TCheckpoint, signer, c.SigningBytes(), c.Sig, c.Auth); err != nil {
		return fmt.Errorf("%w: Checkpoint(n=%d,r=%d): %v", ErrInvalid, c.Seq, c.Replica, err)
	}
	return nil
}

// VerifyPrepareCert checks a full prepare certificate. Trusted consensus
// (either auth mode): the counter attestation on the stripped PrePrepare
// is the entire proof — an accepted counter-valid proposal is already
// prepared, and the attestation is transferable. Classic sig mode: a valid
// PrePrepare plus 2f valid matching Prepares from distinct backups. Classic
// MAC mode: the attesting Confirmation enclave's signature over the
// aggregated claim — the individual quorum messages were MAC'd to that
// enclave alone and are not transferable, so the single vouch is the whole
// proof.
func (v *Verifier) VerifyPrepareCert(pc *PrepareCert) error {
	if v.Consensus == ConsensusTrusted {
		if err := v.validReplica(pc.PrePrepare.Replica); err != nil {
			return fmt.Errorf("prepare cert: %w", err)
		}
		if pc.PrePrepare.Replica != v.Primary(pc.View()) {
			return fmt.Errorf("%w: prepare cert for view %d names proposer %d, primary is %d",
				ErrInvalid, pc.View(), pc.PrePrepare.Replica, v.Primary(pc.View()))
		}
		if err := v.VerifyCounter(&pc.PrePrepare); err != nil {
			return fmt.Errorf("prepare cert: %w", err)
		}
		return nil
	}
	if v.Mode == AuthMAC {
		if err := v.validReplica(pc.PrePrepare.Replica); err != nil {
			return fmt.Errorf("prepare cert: %w", err)
		}
		if pc.PrePrepare.Replica != v.Primary(pc.View()) {
			return fmt.Errorf("%w: prepare cert for view %d names proposer %d, primary is %d",
				ErrInvalid, pc.View(), pc.PrePrepare.Replica, v.Primary(pc.View()))
		}
		if err := v.validReplica(pc.Attestor); err != nil {
			return fmt.Errorf("prepare cert attestor: %w", err)
		}
		attestor := crypto.Identity{ReplicaID: pc.Attestor, Role: v.Scheme.ViewChange}
		claim := PrepareCertClaim(pc.View(), pc.Seq(), pc.Digest())
		if err := v.VerifySig(attestor, claim, pc.Vouch); err != nil {
			return fmt.Errorf("%w: prepare cert vouch (v=%d,n=%d): %v", ErrInvalid, pc.View(), pc.Seq(), err)
		}
		return nil
	}
	if err := v.VerifyPrePrepare(&pc.PrePrepare, false); err != nil {
		return fmt.Errorf("prepare cert: %w", err)
	}
	if len(pc.Prepares) < 2*v.F {
		return fmt.Errorf("%w: prepare cert has %d prepares, need %d", ErrInvalid, len(pc.Prepares), 2*v.F)
	}
	seen := make(map[uint32]bool, len(pc.Prepares))
	for i := range pc.Prepares {
		p := &pc.Prepares[i]
		if p.View != pc.PrePrepare.View || p.Seq != pc.PrePrepare.Seq || p.Digest != pc.PrePrepare.Digest {
			return fmt.Errorf("%w: prepare cert contains non-matching Prepare(v=%d,n=%d)",
				ErrInvalid, p.View, p.Seq)
		}
		if seen[p.Replica] {
			return fmt.Errorf("%w: prepare cert has duplicate Prepare from %d", ErrInvalid, p.Replica)
		}
		seen[p.Replica] = true
		if err := v.VerifyPrepare(p); err != nil {
			return fmt.Errorf("prepare cert: %w", err)
		}
	}
	return nil
}

// VerifyCheckpointCert checks a stable checkpoint certificate: in sig
// mode, 2f+1 valid matching Checkpoints from distinct replicas; in MAC
// mode, the attesting enclave's signature over the aggregated claim. The
// zero certificate (the genesis checkpoint at sequence 0) is always valid.
func (v *Verifier) VerifyCheckpointCert(cc *CheckpointCert) error {
	if cc.Seq == 0 && len(cc.Proof) == 0 && len(cc.Vouch) == 0 {
		return nil // genesis
	}
	if v.Mode == AuthMAC {
		if err := v.validReplica(cc.Attestor); err != nil {
			return fmt.Errorf("checkpoint cert attestor: %w", err)
		}
		role := crypto.Role(cc.AttestorRole)
		switch role {
		case crypto.RolePreparation, crypto.RoleConfirmation, crypto.RoleExecution:
		default:
			return fmt.Errorf("%w: checkpoint cert attestor role %v is not a compartment", ErrInvalid, role)
		}
		attestor := crypto.Identity{ReplicaID: cc.Attestor, Role: role}
		claim := CheckpointCertClaim(cc.Seq, cc.StateDigest)
		if err := v.VerifySig(attestor, claim, cc.Vouch); err != nil {
			return fmt.Errorf("%w: checkpoint cert vouch (n=%d): %v", ErrInvalid, cc.Seq, err)
		}
		return nil
	}
	if len(cc.Proof) < v.Quorum() {
		return fmt.Errorf("%w: checkpoint cert has %d proofs, need %d", ErrInvalid, len(cc.Proof), v.Quorum())
	}
	seen := make(map[uint32]bool, len(cc.Proof))
	for i := range cc.Proof {
		c := &cc.Proof[i]
		if c.Seq != cc.Seq || c.StateDigest != cc.StateDigest {
			return fmt.Errorf("%w: checkpoint cert contains non-matching Checkpoint(n=%d)", ErrInvalid, c.Seq)
		}
		if seen[c.Replica] {
			return fmt.Errorf("%w: checkpoint cert has duplicate Checkpoint from %d", ErrInvalid, c.Replica)
		}
		seen[c.Replica] = true
		if err := v.VerifyCheckpoint(c); err != nil {
			return fmt.Errorf("checkpoint cert: %w", err)
		}
	}
	return nil
}

// VerifyViewChange checks a ViewChange signature and its embedded
// certificates. Every prepared certificate must be above the stable
// checkpoint and from a view below the requested one.
func (v *Verifier) VerifyViewChange(vc *ViewChange) error {
	if err := v.validReplica(vc.Replica); err != nil {
		return err
	}
	signer := crypto.Identity{ReplicaID: vc.Replica, Role: v.Scheme.ViewChange}
	if err := v.VerifySig(signer, vc.SigningBytes(), vc.Sig); err != nil {
		return fmt.Errorf("%w: ViewChange(v=%d,r=%d): %v", ErrInvalid, vc.NewViewNum, vc.Replica, err)
	}
	if err := v.VerifyCheckpointCert(&vc.Stable); err != nil {
		return fmt.Errorf("ViewChange stable cert: %w", err)
	}
	for i := range vc.Prepared {
		pc := &vc.Prepared[i]
		if pc.Seq() <= vc.Stable.Seq {
			return fmt.Errorf("%w: ViewChange prepare cert at seq %d below stable %d",
				ErrInvalid, pc.Seq(), vc.Stable.Seq)
		}
		if pc.View() >= vc.NewViewNum {
			return fmt.Errorf("%w: ViewChange prepare cert from view %d >= new view %d",
				ErrInvalid, pc.View(), vc.NewViewNum)
		}
		if v.Consensus == ConsensusTrusted && pc.PrePrepare.CtrVal > vc.HighCtr {
			return fmt.Errorf("%w: ViewChange claims counter position %d below its own cert at %d (stale claim)",
				ErrInvalid, vc.HighCtr, pc.PrePrepare.CtrVal)
		}
		if err := v.VerifyPrepareCert(pc); err != nil {
			return fmt.Errorf("ViewChange: %w", err)
		}
	}
	return nil
}

// NewViewSigner signs the re-issued PrePrepares and the NewView itself; it
// is provided by the new primary's Preparation compartment (or replica).
type NewViewSigner func(signingBytes []byte) []byte

// ComputeNewViewPrePrepares derives the PrePrepares a new primary must
// re-issue from a set of ViewChanges, per the PBFT view-change rules: for
// every sequence number between the highest stable checkpoint (min-s) and
// the highest prepared sequence (max-s), re-propose the digest from the
// prepare certificate with the highest view, or a null request if no
// certificate covers that slot.
//
// The returned slice is sorted by sequence number. sign may be nil, in which
// case the PrePrepares carry no signature (used during validation, where
// only digests are compared).
func ComputeNewViewPrePrepares(view uint64, primary uint32, vcs []ViewChange, sign NewViewSigner) (stable CheckpointCert, pps []PrePrepare) {
	// min-s: the highest stable checkpoint among the view changes.
	for i := range vcs {
		if vcs[i].Stable.Seq >= stable.Seq {
			stable = vcs[i].Stable
		}
	}
	// max-s: the highest sequence in any prepare certificate.
	maxS := stable.Seq
	best := make(map[uint64]*PrepareCert)
	for i := range vcs {
		for j := range vcs[i].Prepared {
			pc := &vcs[i].Prepared[j]
			if pc.Seq() <= stable.Seq {
				continue
			}
			if pc.Seq() > maxS {
				maxS = pc.Seq()
			}
			cur, ok := best[pc.Seq()]
			if !ok || pc.View() > cur.View() {
				best[pc.Seq()] = pc
			}
		}
	}
	for seq := stable.Seq + 1; seq <= maxS; seq++ {
		pp := PrePrepare{View: view, Seq: seq, Replica: primary}
		if pc, ok := best[seq]; ok {
			pp.Digest = pc.Digest()
		} // else: null request, zero digest
		if sign != nil {
			pp.Sig = sign(pp.SigningBytes())
		}
		pps = append(pps, pp)
	}
	return stable, pps
}

// VerifyNewView checks a NewView message: the signature, that the sender is
// the primary of the new view, that it carries 2f+1 valid ViewChanges for
// that view from distinct replicas, and that the re-issued PrePrepares and
// stable checkpoint match an independent recomputation from the ViewChanges.
func (v *Verifier) VerifyNewView(nv *NewView) error {
	if err := v.validReplica(nv.Replica); err != nil {
		return err
	}
	if nv.Replica != v.Primary(nv.View) {
		return fmt.Errorf("%w: NewView(v=%d) from %d, primary is %d",
			ErrInvalid, nv.View, nv.Replica, v.Primary(nv.View))
	}
	signer := crypto.Identity{ReplicaID: nv.Replica, Role: v.Scheme.NewView}
	if err := v.VerifySig(signer, nv.SigningBytes(), nv.Sig); err != nil {
		return fmt.Errorf("%w: NewView(v=%d): %v", ErrInvalid, nv.View, err)
	}
	if len(nv.ViewChanges) < v.Quorum() {
		return fmt.Errorf("%w: NewView has %d ViewChanges, need %d",
			ErrInvalid, len(nv.ViewChanges), v.Quorum())
	}
	seen := make(map[uint32]bool, len(nv.ViewChanges))
	for i := range nv.ViewChanges {
		vc := &nv.ViewChanges[i]
		if vc.NewViewNum != nv.View {
			return fmt.Errorf("%w: NewView(v=%d) contains ViewChange for view %d",
				ErrInvalid, nv.View, vc.NewViewNum)
		}
		if seen[vc.Replica] {
			return fmt.Errorf("%w: NewView has duplicate ViewChange from %d", ErrInvalid, vc.Replica)
		}
		seen[vc.Replica] = true
		if err := v.VerifyViewChange(vc); err != nil {
			return fmt.Errorf("NewView: %w", err)
		}
	}
	wantStable, wantPPs := ComputeNewViewPrePrepares(nv.View, nv.Replica, nv.ViewChanges, nil)
	if nv.Stable.Seq != wantStable.Seq || nv.Stable.StateDigest != wantStable.StateDigest {
		return fmt.Errorf("%w: NewView stable checkpoint (n=%d) does not match recomputation (n=%d)",
			ErrInvalid, nv.Stable.Seq, wantStable.Seq)
	}
	if len(nv.PrePrepares) != len(wantPPs) {
		return fmt.Errorf("%w: NewView re-issues %d PrePrepares, recomputation yields %d",
			ErrInvalid, len(nv.PrePrepares), len(wantPPs))
	}
	for i := range wantPPs {
		got, want := &nv.PrePrepares[i], &wantPPs[i]
		if got.View != want.View || got.Seq != want.Seq || got.Digest != want.Digest || got.Replica != want.Replica {
			return fmt.Errorf("%w: NewView PrePrepare[%d] (n=%d,d=%v) mismatches recomputation (n=%d,d=%v)",
				ErrInvalid, i, got.Seq, got.Digest, want.Seq, want.Digest)
		}
		if err := v.VerifyReissuedPrePrepare(got); err != nil {
			return fmt.Errorf("NewView: %w", err)
		}
		if v.Consensus == ConsensusTrusted {
			// The new primary must consume fresh counter values
			// CtrBase+1..CtrBase+k across the re-issued slots in sequence
			// order — the base the whole view's affine law then hangs off.
			// Its counter enclave cannot re-sign old values, so a valid
			// attestation here also proves the value was never used before.
			if err := v.VerifyCounterAt(got, nv.CtrBase, wantStable.Seq); err != nil {
				return fmt.Errorf("NewView: %w", err)
			}
		}
	}
	return nil
}

// VerifyQuote checks an attestation quote signature against the registered
// identity key and the expected enclave measurement.
func (v *Verifier) VerifyQuote(q *AttestQuote, wantMeasurement crypto.Digest, wantNonce [32]byte) error {
	if err := v.validReplica(q.Replica); err != nil {
		return err
	}
	signer := crypto.Identity{ReplicaID: q.Replica, Role: crypto.Role(q.Role)}
	if err := v.Reg.VerifyFrom(signer, q.SigningBytes(), q.Sig); err != nil {
		return fmt.Errorf("%w: quote: %v", ErrInvalid, err)
	}
	if q.Measurement != wantMeasurement {
		return fmt.Errorf("%w: quote measurement %v != expected %v", ErrInvalid, q.Measurement, wantMeasurement)
	}
	if q.Nonce != wantNonce {
		return fmt.Errorf("%w: quote nonce mismatch (replay?)", ErrInvalid)
	}
	return nil
}
