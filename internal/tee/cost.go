// Package tee provides a simulated trusted-execution substrate standing in
// for Intel SGX (DESIGN.md §2). It reproduces the architectural properties
// the paper's evaluation measures:
//
//   - an explicit ecall/ocall boundary that serializes and copies data,
//   - a per-transition cost (the paper cites ≈8,640 cycles per transition,
//     from the HotCalls study),
//   - single-threaded enclave execution (one logical thread per enclave),
//   - sealing, monotonic counters, and attestation quotes.
//
// A "simulation mode" zeroes the transition cost only, mirroring SGX
// simulation mode in the paper's overhead analysis (§6): copies and
// serialization still happen.
package tee

import (
	"sync/atomic"
	"time"
)

// DefaultTransitionCycles is the per-transition (ecall or ocall round trip)
// CPU cost the paper cites from the HotCalls measurements.
const DefaultTransitionCycles = 8640

// DefaultCPUGHz matches the paper's Intel Xeon E-2288G at 3.7 GHz.
const DefaultCPUGHz = 3.7

// CostModel converts architectural costs (cycles) into wall-clock busy-wait
// time. The zero value charges nothing; use DefaultCostModel for the
// hardware-mode configuration and SimulationCostModel for SGX simulation
// mode.
type CostModel struct {
	// TransitionCycles is charged once per ecall and once per ocall.
	TransitionCycles uint64
	// CopyCyclesPerByte models EPC copy-in/copy-out bandwidth. The default
	// approximates ~8 GB/s effective enclave copy bandwidth.
	CopyCyclesPerByte float64
	// CPUGHz converts cycles to nanoseconds.
	CPUGHz float64
}

// DefaultCostModel returns the hardware-mode cost model used by the
// benchmarks: HotCalls transition cost at 3.7 GHz with ~0.45 cycles/byte
// copy cost.
func DefaultCostModel() CostModel {
	return CostModel{
		TransitionCycles:  DefaultTransitionCycles,
		CopyCyclesPerByte: 0.45,
		CPUGHz:            DefaultCPUGHz,
	}
}

// SimulationCostModel returns the SGX-simulation-mode model: transitions
// are free, but copies (and all the serialization around them) remain.
func SimulationCostModel() CostModel {
	m := DefaultCostModel()
	m.TransitionCycles = 0
	return m
}

// ZeroCostModel charges nothing at all; useful in unit tests where wall
// clock time must not depend on the cost model.
func ZeroCostModel() CostModel { return CostModel{} }

// cyclesToDuration converts a cycle count to wall-clock time under the
// model's clock rate.
func (m CostModel) cyclesToDuration(cycles float64) time.Duration {
	if m.CPUGHz <= 0 || cycles <= 0 {
		return 0
	}
	return time.Duration(cycles / m.CPUGHz * float64(time.Nanosecond))
}

// TransitionCost returns the wall-clock cost of one enclave transition.
func (m CostModel) TransitionCost() time.Duration {
	return m.cyclesToDuration(float64(m.TransitionCycles))
}

// CopyCost returns the wall-clock cost of copying n bytes across the
// enclave boundary.
func (m CostModel) CopyCost(n int) time.Duration {
	return m.cyclesToDuration(m.CopyCyclesPerByte * float64(n))
}

// chargeTransition busy-waits for one transition.
func (m CostModel) chargeTransition() { spinWait(m.TransitionCost()) }

// chargeCopy busy-waits for an n-byte boundary copy.
func (m CostModel) chargeCopy(n int) { spinWait(m.CopyCost(n)) }

// spinCount is a package-level sink defeating dead-code elimination of the
// spin loop.
var spinCount atomic.Uint64

// spinWait busy-waits for approximately d. Sleeping is useless at the
// microsecond scale these costs live at (timer granularity is coarser), so
// we spin on the monotonic clock exactly as a cycle-burning enclave
// transition would occupy the core.
func spinWait(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	n := uint64(0)
	for time.Now().Before(deadline) {
		n++
	}
	spinCount.Add(n)
}
