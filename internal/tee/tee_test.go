package tee

import (
	"bytes"
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/splitbft/splitbft/internal/crypto"
)

// echoCode is a trivial enclave program for runtime tests: it echoes its
// input back as a broadcast message and optionally performs an ocall.
type echoCode struct {
	meas      crypto.Digest
	doOcall   bool
	ocallName string
}

func (c *echoCode) Measurement() crypto.Digest { return c.meas }

func (c *echoCode) HandleECall(host Host, msg []byte) []OutMsg {
	if c.doOcall {
		if _, err := host.Ocall(c.ocallName, msg); err != nil {
			return nil
		}
	}
	return []OutMsg{{Kind: DestBroadcast, Payload: msg}}
}

func newTestEnclave(t *testing.T, code Code) *Enclave {
	t.Helper()
	e, err := NewEnclave(1, crypto.RoleExecution, code, ZeroCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEnclaveInvokeEcho(t *testing.T) {
	e := newTestEnclave(t, &echoCode{})
	out, err := e.Invoke([]byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !bytes.Equal(out[0].Payload, []byte("ping")) {
		t.Fatalf("echo = %+v", out)
	}
	snap := e.Stats()
	if snap.Count != 1 || snap.Mean <= 0 {
		t.Fatalf("stats = %+v, want one timed call", snap)
	}
}

func TestEnclaveInvokeCopiesInput(t *testing.T) {
	// The handler must not observe caller mutations after Invoke returns
	// (copy-in semantics of the enclave boundary).
	var captured []byte
	code := &captureCode{capture: &captured}
	e := newTestEnclave(t, code)
	in := []byte("original")
	if _, err := e.Invoke(in); err != nil {
		t.Fatal(err)
	}
	in[0] = 'X'
	if !bytes.Equal(captured, []byte("original")) {
		t.Fatal("enclave saw caller mutation: boundary must copy")
	}
}

type captureCode struct{ capture *[]byte }

func (c *captureCode) Measurement() crypto.Digest { return crypto.Digest{} }
func (c *captureCode) HandleECall(_ Host, msg []byte) []OutMsg {
	*c.capture = msg
	return nil
}

func TestEnclaveSingleThreaded(t *testing.T) {
	// Concurrent Invokes must serialize: max in-flight == 1.
	code := &concurrencyProbe{}
	e := newTestEnclave(t, code)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Invoke([]byte("x")); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if code.maxSeen > 1 {
		t.Fatalf("enclave ran %d handlers concurrently, want 1", code.maxSeen)
	}
	if e.Stats().Count != 16 {
		t.Fatalf("count = %d, want 16", e.Stats().Count)
	}
}

type concurrencyProbe struct {
	mu      sync.Mutex
	cur     int
	maxSeen int
}

func (c *concurrencyProbe) Measurement() crypto.Digest { return crypto.Digest{} }
func (c *concurrencyProbe) HandleECall(_ Host, _ []byte) []OutMsg {
	c.mu.Lock()
	c.cur++
	if c.cur > c.maxSeen {
		c.maxSeen = c.cur
	}
	c.mu.Unlock()
	time.Sleep(100 * time.Microsecond)
	c.mu.Lock()
	c.cur--
	c.mu.Unlock()
	return nil
}

func TestEnclaveCrash(t *testing.T) {
	e := newTestEnclave(t, &echoCode{})
	e.Crash()
	if _, err := e.Invoke([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Invoke after Crash = %v, want ErrCrashed", err)
	}
}

func TestOcallRegistryAndErrors(t *testing.T) {
	code := &echoCode{doOcall: true, ocallName: "fs.write"}
	e := newTestEnclave(t, code)
	// Unregistered ocall: handler swallows the error and emits nothing.
	out, err := e.Invoke([]byte("x"))
	if err != nil || len(out) != 0 {
		t.Fatalf("expected empty output on failed ocall, got %v/%v", out, err)
	}
	var got []byte
	e.RegisterOcall("fs.write", func(data []byte) ([]byte, error) {
		got = data
		return []byte("ack"), nil
	})
	if _, err := e.Invoke([]byte("block-7")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("block-7")) {
		t.Fatalf("ocall payload = %q", got)
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	e := newTestEnclave(t, &echoCode{})
	sealed, err := e.Seal([]byte("application state"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, []byte("application state")) {
		t.Fatal("sealed data leaks plaintext")
	}
	pt, err := e.Unseal(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, []byte("application state")) {
		t.Fatal("unseal round trip failed")
	}
	// A different enclave cannot unseal (sealing keys are per-enclave).
	other := newTestEnclave(t, &echoCode{})
	if _, err := other.Unseal(sealed); err == nil {
		t.Fatal("foreign enclave unsealed the data")
	}
}

func TestMonotonicCounters(t *testing.T) {
	e := newTestEnclave(t, &echoCode{})
	if got := e.MonotonicGet("view"); got != 0 {
		t.Fatalf("fresh counter = %d", got)
	}
	for i := uint64(1); i <= 5; i++ {
		if got := e.MonotonicInc("view"); got != i {
			t.Fatalf("inc %d = %d", i, got)
		}
	}
	if got := e.MonotonicInc("other"); got != 1 {
		t.Fatalf("independent counter = %d", got)
	}
	if got := e.MonotonicGet("view"); got != 5 {
		t.Fatalf("get = %d", got)
	}
}

func TestQuoteAndSessionDerivation(t *testing.T) {
	meas := crypto.HashData([]byte("exec-code"))
	e := newTestEnclave(t, &echoCode{meas: meas})
	var nonce [32]byte
	nonce[3] = 9
	q := e.Quote(nonce)
	if q.Measurement != meas || q.Nonce != nonce {
		t.Fatal("quote fields wrong")
	}
	if !crypto.Verify(e.PublicKey(), q.SigningBytes(), q.Sig) {
		t.Fatal("quote signature invalid")
	}

	// Client side of the handshake.
	clientKey, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var clientPub [32]byte
	copy(clientPub[:], clientKey.PublicKey().Bytes())

	enclaveSession, err := e.DeriveSession(clientPub)
	if err != nil {
		t.Fatal(err)
	}
	peerPub, err := ecdh.X25519().NewPublicKey(q.EnclavePub[:])
	if err != nil {
		t.Fatal(err)
	}
	shared, err := clientKey.ECDH(peerPub)
	if err != nil {
		t.Fatal(err)
	}
	clientSession := DeriveSessionKey(shared)
	if enclaveSession != clientSession {
		t.Fatal("client and enclave derived different session keys")
	}
}

func TestCostModelArithmetic(t *testing.T) {
	m := DefaultCostModel()
	tc := m.TransitionCost()
	// 8640 cycles at 3.7 GHz ≈ 2335 ns.
	if tc < 2*time.Microsecond || tc > 3*time.Microsecond {
		t.Fatalf("transition cost = %v, want ≈2.3µs", tc)
	}
	if m.CopyCost(0) != 0 {
		t.Fatal("zero-byte copy should cost nothing")
	}
	if m.CopyCost(1<<20) <= m.CopyCost(1<<10) {
		t.Fatal("copy cost must grow with size")
	}
	sim := SimulationCostModel()
	if sim.TransitionCost() != 0 {
		t.Fatal("simulation mode must zero transition cost")
	}
	if sim.CopyCost(1024) != m.CopyCost(1024) {
		t.Fatal("simulation mode must keep copy costs")
	}
	var zero CostModel
	if zero.TransitionCost() != 0 || zero.CopyCost(100) != 0 {
		t.Fatal("zero model must charge nothing")
	}
}

func TestCostModelChargesWallClock(t *testing.T) {
	m := CostModel{TransitionCycles: 370_000, CPUGHz: DefaultCPUGHz} // 100µs
	e, err := NewEnclave(0, crypto.RoleExecution, &echoCode{}, m)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := e.Invoke([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 90*time.Microsecond {
		t.Fatalf("ecall took %v, expected ≥ ~100µs transition charge", d)
	}
}

func TestTrustedCounter(t *testing.T) {
	tc, err := NewTrustedCounter(crypto.Identity{ReplicaID: 2, Role: crypto.RoleReplica})
	if err != nil {
		t.Fatal(err)
	}
	d1 := crypto.HashData([]byte("m1"))
	d2 := crypto.HashData([]byte("m2"))
	a1 := tc.CreateAttestation(d1)
	a2 := tc.CreateAttestation(d2)
	if a1.Value != 1 || a2.Value != 2 {
		t.Fatalf("counter values = %d,%d, want 1,2", a1.Value, a2.Value)
	}
	if !VerifyAttestation(tc.PublicKey(), a1) || !VerifyAttestation(tc.PublicKey(), a2) {
		t.Fatal("valid attestation rejected")
	}
	forged := a1
	forged.Digest = d2
	if VerifyAttestation(tc.PublicKey(), forged) {
		t.Fatal("forged attestation accepted: equivocation possible")
	}
	if tc.Value() != 2 {
		t.Fatalf("Value = %d", tc.Value())
	}
}

func TestQuickTrustedCounterMonotonic(t *testing.T) {
	tc, err := NewTrustedCounter(crypto.Identity{ReplicaID: 0, Role: crypto.RoleReplica})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	f := func(msg []byte) bool {
		att := tc.CreateAttestation(crypto.HashData(msg))
		ok := att.Value == last+1 && VerifyAttestation(tc.PublicKey(), att)
		last = att.Value
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSealRoundTrip(t *testing.T) {
	e := newTestEnclave(t, &echoCode{})
	f := func(data []byte) bool {
		sealed, err := e.Seal(data)
		if err != nil {
			return false
		}
		pt, err := e.Unseal(sealed)
		return err == nil && bytes.Equal(pt, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEcallRoundTrip(b *testing.B) {
	e, err := NewEnclave(0, crypto.RoleExecution, &echoCode{}, DefaultCostModel())
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Invoke(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEcallRoundTripSimulation(b *testing.B) {
	e, err := NewEnclave(0, crypto.RoleExecution, &echoCode{}, SimulationCostModel())
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Invoke(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// orderCode records the order messages reach the serial handler and which
// goroutine-visible preprocessing happened, for InvokeBatch tests.
type orderCode struct {
	mu      sync.Mutex
	handled [][]byte
	pre     [][]byte
}

func (c *orderCode) Measurement() crypto.Digest { return crypto.Digest{} }

func (c *orderCode) HandleECall(_ Host, msg []byte) []OutMsg {
	c.mu.Lock()
	c.handled = append(c.handled, msg)
	c.mu.Unlock()
	return []OutMsg{{Kind: DestBroadcast, Payload: msg}}
}

func (c *orderCode) Preprocess(_ Host, msg []byte) {
	c.mu.Lock()
	c.pre = append(c.pre, msg)
	c.mu.Unlock()
}

func TestInvokeBatchOrderAndOutputs(t *testing.T) {
	// The pool clamps to GOMAXPROCS (preprocessing is skipped without real
	// parallelism); raise it so the parallel path runs even on small CI
	// hosts — concurrency works fine with fewer physical cores.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	code := &orderCode{}
	e := newTestEnclave(t, code)
	e.SetVerifyWorkers(4)
	msgs := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d"), []byte("e")}
	out, err := e.InvokeBatch(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(msgs) {
		t.Fatalf("outputs = %d, want %d", len(out), len(msgs))
	}
	// Handlers ran serially in submission order regardless of the parallel
	// preprocessing pool: outputs and the handled log are both ordered.
	for i, m := range msgs {
		if !bytes.Equal(out[i].Payload, m) || !bytes.Equal(code.handled[i], m) {
			t.Fatalf("order broken at %d: out=%q handled=%q", i, out[i].Payload, code.handled[i])
		}
	}
	if len(code.pre) != len(msgs) {
		t.Fatalf("preprocessed %d messages, want %d", len(code.pre), len(msgs))
	}
}

func TestInvokeBatchChargesOneTransition(t *testing.T) {
	// With a transition-only cost model (no copy cost), a batch of n
	// messages must cost roughly one transition, not n.
	cost := CostModel{TransitionCycles: 40_000_000, CPUGHz: 1} // 40 ms per transition
	e, err := NewEnclave(1, crypto.RoleExecution, &echoCode{}, cost)
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([][]byte, 8)
	for i := range msgs {
		msgs[i] = []byte{byte(i)}
	}
	begin := time.Now()
	if _, err := e.InvokeBatch(msgs); err != nil {
		t.Fatal(err)
	}
	batched := time.Since(begin)
	if batched > 3*cost.TransitionCost() {
		t.Fatalf("batch of 8 cost %v, want ~1 transition (%v)", batched, cost.TransitionCost())
	}
	snap := e.Stats()
	if snap.Count != 1 || snap.Msgs != 8 {
		t.Fatalf("stats = %+v, want 1 crossing carrying 8 messages", snap)
	}
	if got := snap.MsgsPerCall(); got != 8 {
		t.Fatalf("MsgsPerCall = %v, want 8", got)
	}
}

func TestInvokeBatchCrashed(t *testing.T) {
	e := newTestEnclave(t, &echoCode{})
	e.Crash()
	if _, err := e.InvokeBatch([][]byte{[]byte("x")}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if out, err := e.InvokeBatch(nil); err != nil || out != nil {
		t.Fatalf("empty batch = (%v, %v), want (nil, nil)", out, err)
	}
}

func TestInvokeBatchCopiesInputs(t *testing.T) {
	var captured []byte
	code := &captureCode{capture: &captured}
	e := newTestEnclave(t, code)
	in := [][]byte{[]byte("original")}
	if _, err := e.InvokeBatch(in); err != nil {
		t.Fatal(err)
	}
	in[0][0] = 'X'
	if !bytes.Equal(captured, []byte("original")) {
		t.Fatal("enclave saw caller mutation: boundary must copy")
	}
}
