package tee

import (
	"testing"

	"github.com/splitbft/splitbft/internal/crypto"
)

type nopCode struct{}

func (nopCode) Measurement() crypto.Digest        { return crypto.HashData([]byte("nop")) }
func (nopCode) HandleECall(Host, []byte) []OutMsg { return nil }

// TestPairwiseMACSymmetry: both ends of an enclave pair must derive the
// same agreement-MAC key from the X25519 exchange, and distinct pairs
// must get distinct keys.
func TestPairwiseMACSymmetry(t *testing.T) {
	newEnc := func(id uint32, role crypto.Role) *Enclave {
		e, err := NewEnclave(id, role, nopCode{}, ZeroCostModel())
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a := newEnc(0, crypto.RolePreparation)
	b := newEnc(1, crypto.RoleConfirmation)
	c := newEnc(2, crypto.RoleConfirmation)

	ab, err := a.PairwiseMAC(b.ECDHPublicKey())
	if err != nil {
		t.Fatal(err)
	}
	ba, err := b.PairwiseMAC(a.ECDHPublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if ab != ba {
		t.Fatal("pairwise MAC keys are not symmetric")
	}
	ac, err := a.PairwiseMAC(c.ECDHPublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if ac == ab {
		t.Fatal("distinct pairs derived the same key")
	}
	// Pairwise keys must be domain-separated from client session keys
	// derived over the same exchange.
	sess, err := a.DeriveSession(b.ECDHPublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if [32]byte(sess) == [32]byte(ab) {
		t.Fatal("pairwise MAC key collides with the session key derivation")
	}
}
