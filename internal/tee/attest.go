package tee

import (
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/sha256"
	"fmt"

	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
)

// Quote produces the enclave's attestation evidence for a client challenge:
// the code measurement and the enclave's X25519 public key, bound to the
// client's nonce and signed by the enclave identity key. It stands in for
// an SGX DCAP quote (DESIGN.md §2).
func (e *Enclave) Quote(nonce [32]byte) *messages.AttestQuote {
	q := &messages.AttestQuote{
		Replica:     e.replicaID,
		Role:        uint8(e.role),
		Measurement: e.code.Measurement(),
		Nonce:       nonce,
	}
	copy(q.EnclavePub[:], e.ecdhKey.PublicKey().Bytes())
	q.Sig = e.Sign(q.SigningBytes())
	return q
}

// DeriveSession computes the session key shared with a client from the
// client's X25519 public key. Both sides arrive at the same key without it
// ever crossing the enclave boundary.
func (e *Enclave) DeriveSession(clientPub [32]byte) (crypto.SessionKey, error) {
	peer, err := ecdh.X25519().NewPublicKey(clientPub[:])
	if err != nil {
		return crypto.SessionKey{}, fmt.Errorf("tee: bad client ECDH key: %w", err)
	}
	shared, err := e.ecdhKey.ECDH(peer)
	if err != nil {
		return crypto.SessionKey{}, fmt.Errorf("tee: ECDH: %w", err)
	}
	return DeriveSessionKey(shared), nil
}

// DeriveSessionKey derives the AES session key from an X25519 shared
// secret with a single HKDF-style expansion. Exported so the client library
// performs the identical derivation.
func DeriveSessionKey(shared []byte) crypto.SessionKey {
	h := hmac.New(sha256.New, []byte("splitbft-session-v1"))
	h.Write(shared)
	var key crypto.SessionKey
	copy(key[:], h.Sum(nil))
	return key
}

// ECDHPublicKey returns the enclave's X25519 public key. It is registered
// alongside the Ed25519 identity key during the attestation ceremony so
// peer enclaves can establish pairwise agreement-MAC keys (the
// MAC-authenticated fast path).
func (e *Enclave) ECDHPublicKey() [32]byte {
	var pub [32]byte
	copy(pub[:], e.ecdhKey.PublicKey().Bytes())
	return pub
}

// PairwiseMAC derives the symmetric agreement-MAC key shared with a peer
// enclave from its attested X25519 public key. Both enclaves of a pair
// arrive at the same key (X25519 is symmetric and the expansion uses no
// direction-dependent input) without the key ever existing outside the two
// enclaves — the trusted-channel establishment the fast path rests on. The
// label domain-separates these keys from client session keys derived over
// the same exchange.
func (e *Enclave) PairwiseMAC(peerPub [32]byte) (crypto.MACKey, error) {
	peer, err := ecdh.X25519().NewPublicKey(peerPub[:])
	if err != nil {
		return crypto.MACKey{}, fmt.Errorf("tee: bad peer ECDH key: %w", err)
	}
	shared, err := e.ecdhKey.ECDH(peer)
	if err != nil {
		return crypto.MACKey{}, fmt.Errorf("tee: pairwise ECDH: %w", err)
	}
	h := hmac.New(sha256.New, []byte("splitbft-replica-mac-v1"))
	h.Write(shared)
	var key crypto.MACKey
	copy(key[:], h.Sum(nil))
	return key, nil
}
