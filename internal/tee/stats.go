package tee

import (
	"sync"
	"time"
)

// ECallStats accumulates per-enclave ecall timing, the instrumentation
// behind Figure 4 (average ecall latency per compartment). A "call" is one
// trusted-boundary crossing (Invoke or InvokeBatch); with batched ecalls
// one call may deliver many messages, so messages are counted separately.
type ECallStats struct {
	mu    sync.Mutex
	count uint64 // boundary crossings
	msgs  uint64 // messages delivered across them
	total time.Duration
	max   time.Duration
}

// start records the beginning of a crossing delivering n messages and
// returns the function that completes the measurement. The caller holds
// the enclave execution lock, but stats have their own lock so snapshots
// don't block execution.
func (s *ECallStats) start(n int) func() {
	begin := time.Now()
	return func() {
		d := time.Since(begin)
		s.mu.Lock()
		s.count++
		s.msgs += uint64(n)
		s.total += d
		if d > s.max {
			s.max = d
		}
		s.mu.Unlock()
	}
}

func (s *ECallStats) snapshot() ECallSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := ECallSnapshot{Count: s.count, Msgs: s.msgs, Total: s.total, Max: s.max}
	if s.count > 0 {
		snap.Mean = s.total / time.Duration(s.count)
	}
	return snap
}

func (s *ECallStats) reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count, s.msgs, s.total, s.max = 0, 0, 0, 0
}

// ECallSnapshot is a point-in-time copy of an enclave's ecall statistics.
type ECallSnapshot struct {
	// Count is the number of trusted-boundary crossings; Msgs the number
	// of messages they delivered. Msgs/Count is the achieved ecall batch
	// amortization (1.0 when batching is off).
	Count uint64
	Msgs  uint64
	Total time.Duration
	Mean  time.Duration
	Max   time.Duration
}

// MsgsPerCall returns the achieved batch amortization factor.
func (s ECallSnapshot) MsgsPerCall() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Msgs) / float64(s.Count)
}
