package tee

import (
	"sync"
	"time"
)

// ECallStats accumulates per-enclave ecall timing, the instrumentation
// behind Figure 4 (average ecall latency per compartment).
type ECallStats struct {
	mu    sync.Mutex
	count uint64
	total time.Duration
	max   time.Duration
}

// start records the beginning of an ecall and returns the function that
// completes the measurement. The caller holds the enclave execution lock,
// but stats have their own lock so snapshots don't block execution.
func (s *ECallStats) start() func() {
	begin := time.Now()
	return func() {
		d := time.Since(begin)
		s.mu.Lock()
		s.count++
		s.total += d
		if d > s.max {
			s.max = d
		}
		s.mu.Unlock()
	}
}

func (s *ECallStats) snapshot() ECallSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := ECallSnapshot{Count: s.count, Total: s.total, Max: s.max}
	if s.count > 0 {
		snap.Mean = s.total / time.Duration(s.count)
	}
	return snap
}

func (s *ECallStats) reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count, s.total, s.max = 0, 0, 0
}

// ECallSnapshot is a point-in-time copy of an enclave's ecall statistics.
type ECallSnapshot struct {
	Count uint64
	Total time.Duration
	Mean  time.Duration
	Max   time.Duration
}
