package tee

import (
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
)

// DestKind says where an enclave output message must be routed by the
// untrusted broker.
type DestKind uint8

// Destinations for enclave output messages.
const (
	// DestBroadcast sends to every replica (including looping back into the
	// local compartments, per the broker's routing table).
	DestBroadcast DestKind = iota
	// DestReplica sends to one replica's broker.
	DestReplica
	// DestClient sends to a client connection.
	DestClient
	// DestLocal delivers to another enclave on the same replica.
	DestLocal
)

// OutMsg is a serialized message leaving an enclave. The payload has
// already been copied out of the enclave (and charged for) by the runtime.
type OutMsg struct {
	Kind    DestKind
	ID      uint32      // replica ID (DestReplica) or client ID (DestClient)
	Local   crypto.Role // target compartment for DestLocal
	Payload []byte
}

// Host is the view of the runtime available to code running inside an
// enclave: signing with the enclave identity key, sealing, monotonic
// counters, and explicit ocalls into the untrusted environment.
type Host interface {
	// ReplicaID returns the hosting replica's ID.
	ReplicaID() uint32
	// Identity returns the enclave's identity (replica, role).
	Identity() crypto.Identity
	// Sign signs with the enclave's private identity key. The key never
	// leaves the enclave.
	Sign(msg []byte) []byte
	// Ocall invokes a named untrusted function, paying a transition plus
	// copy costs in both directions.
	Ocall(name string, data []byte) ([]byte, error)
	// Seal encrypts data under the enclave's sealing key (SGX sealing).
	Seal(data []byte) ([]byte, error)
	// Unseal reverses Seal.
	Unseal(sealed []byte) ([]byte, error)
	// MonotonicInc increments and returns the named monotonic counter.
	MonotonicInc(name string) uint64
	// MonotonicGet returns the named monotonic counter without changing it.
	MonotonicGet(name string) uint64
	// Quote produces attestation evidence bound to nonce (see attest.go).
	Quote(nonce [32]byte) *messages.AttestQuote
	// DeriveSession computes the key shared with a client's X25519 public
	// key; the enclave's ECDH private key never leaves the runtime.
	DeriveSession(clientPub [32]byte) (crypto.SessionKey, error)
}

// Code is the logic loaded into an enclave: a deserialize-handle-serialize
// event handler (P2: event handlers run to completion inside one
// compartment). Implementations must not retain the input slice.
type Code interface {
	// Measurement identifies the code for attestation (MRENCLAVE analog).
	Measurement() crypto.Digest
	// HandleECall processes one serialized message and returns any output
	// messages. It always runs single-threaded.
	HandleECall(host Host, msg []byte) []OutMsg
}

// Preprocessor is optionally implemented by enclave Code that can do
// stateless per-message work — decoding and signature verification — ahead
// of the serial handler pass. When the enclave's verify-worker pool is
// enabled, InvokeBatch fans Preprocess out across the batch before running
// HandleECall on each message in order.
//
// Contract: Preprocess must not mutate handler state; it may only warm
// caches that are themselves safe for concurrent use (e.g. a
// signature-verification cache). Calls may run concurrently with each
// other, never with HandleECall. Skipping Preprocess entirely must not
// change any HandleECall outcome — it is purely an accelerator, which is
// what keeps the parallel pipeline deterministic.
type Preprocessor interface {
	Preprocess(host Host, msg []byte)
}

// ErrNoOcall is returned by Host.Ocall for unregistered ocall names.
var ErrNoOcall = errors.New("tee: unregistered ocall")

// OcallFunc is an untrusted function the environment registers with an
// enclave.
type OcallFunc func(data []byte) ([]byte, error)

// Enclave is one simulated SGX enclave: identity keys, sealing key,
// monotonic counters, cost accounting, and the single-thread execution
// guarantee. Create with NewEnclave; drive with Invoke.
type Enclave struct {
	replicaID uint32
	role      crypto.Role
	code      Code
	cost      CostModel

	identityKey *crypto.KeyPair
	ecdhKey     *ecdh.PrivateKey
	sealKey     crypto.SessionKey
	// Sealing uses a per-boot subkey HMAC-derived from sealKey and a
	// random boot ID that prefixes every sealed blob: random 96-bit GCM
	// nonces are only safe for ~2^32 seals per key (NIST SP 800-38D), a
	// budget a long-lived replica's per-record WAL sealing would exhaust
	// under one never-rotated key. Each process lifetime gets a fresh
	// subkey; unsealing derives the subkey of whatever boot wrote the
	// blob from the embedded ID. sealSess is the cached AEAD for this
	// boot (sealing sits on the per-message WAL hot path, so the AES key
	// schedule is built once); unsealCache holds sessions for previously
	// seen boot IDs.
	bootID      [sealBootIDSize]byte
	sealSess    *crypto.Session
	unsealCache sync.Map // [sealBootIDSize]byte -> *crypto.Session

	execMu   sync.Mutex // enforces single-threaded enclave execution
	stats    ECallStats
	crashed  bool
	counters sync.Map // string -> *counterCell
	ocallsMu sync.RWMutex
	ocalls   map[string]OcallFunc

	// verifyWorkers bounds the preprocessing pool InvokeBatch fans
	// Preprocess calls out to; <= 1 disables preprocessing (the serial
	// handler verifies inline, exactly as single-message Invoke does).
	verifyWorkers int
}

type counterCell struct {
	mu sync.Mutex
	v  uint64
}

// NewEnclave creates and "launches" an enclave running code on the given
// replica. The identity key pair is generated inside; the public half is
// what gets registered after attestation.
func NewEnclave(replicaID uint32, role crypto.Role, code Code, cost CostModel) (*Enclave, error) {
	return NewEnclaveWithRand(replicaID, role, code, cost, nil)
}

// NewEnclaveWithRand is NewEnclave with an explicit entropy source for the
// enclave's keys. Multi-process deployments pass a crypto.KeyStream
// derived from a shared deployment secret so every process derives the
// same public keys (the stand-in for real attestation-based key exchange);
// nil uses crypto/rand.
func NewEnclaveWithRand(replicaID uint32, role crypto.Role, code Code, cost CostModel, rng io.Reader) (*Enclave, error) {
	if code == nil {
		return nil, errors.New("tee: nil enclave code")
	}
	if rng == nil {
		rng = rand.Reader
	}
	// Read order is part of the derivation contract: identity key first
	// (32 bytes; RegisterDeterministicKeys in the core package depends on
	// it), then the sealing key (32 bytes), then the ECDH key (32 bytes).
	// All three must re-derive identically from the same stream after a
	// restart: the sealing key so durable state can be unsealed, and the
	// ECDH key so a replayed ProvisionKey unwraps under the same pairwise
	// secret — a fresh ECDH key would silently drop every session
	// provisioned after the last snapshot. The ECDH bytes are read
	// directly and fed to NewPrivateKey because crypto/ecdh's GenerateKey
	// nondeterministically consumes an extra byte (randutil.MaybeReadByte)
	// and would break the contract.
	idKey, err := crypto.GenerateKeyPair(rng)
	if err != nil {
		return nil, fmt.Errorf("enclave identity key: %w", err)
	}
	var sealKey crypto.SessionKey
	if _, err := io.ReadFull(rng, sealKey[:]); err != nil {
		return nil, fmt.Errorf("enclave sealing key: %w", err)
	}
	var ecdhSeed [32]byte
	if _, err := io.ReadFull(rng, ecdhSeed[:]); err != nil {
		return nil, fmt.Errorf("enclave ECDH entropy: %w", err)
	}
	ek, err := ecdh.X25519().NewPrivateKey(ecdhSeed[:])
	if err != nil {
		return nil, fmt.Errorf("enclave ECDH key: %w", err)
	}
	// The boot ID is always fresh randomness (never from the derivation
	// stream): two boots from the same seed must seal under different
	// subkeys, that is the whole point.
	var bootID [sealBootIDSize]byte
	if _, err := io.ReadFull(rand.Reader, bootID[:]); err != nil {
		return nil, fmt.Errorf("enclave boot ID: %w", err)
	}
	sealSess, err := deriveSealSession(sealKey, bootID)
	if err != nil {
		return nil, fmt.Errorf("enclave sealing session: %w", err)
	}
	return &Enclave{
		replicaID:   replicaID,
		role:        role,
		code:        code,
		cost:        cost,
		identityKey: idKey,
		ecdhKey:     ek,
		sealKey:     sealKey,
		bootID:      bootID,
		sealSess:    sealSess,
		ocalls:      make(map[string]OcallFunc),
	}, nil
}

// sealBootIDSize is the length of the per-boot sealing salt prefixed to
// every sealed blob.
const sealBootIDSize = 16

// deriveSealSession builds the AEAD for one boot's sealing subkey.
func deriveSealSession(base crypto.SessionKey, bootID [sealBootIDSize]byte) (*crypto.Session, error) {
	mac := hmac.New(sha256.New, base[:])
	mac.Write([]byte("tee-seal-v1"))
	mac.Write(bootID[:])
	var sub crypto.SessionKey
	copy(sub[:], mac.Sum(nil))
	return crypto.NewSession(sub, 2)
}

// ReplicaID implements Host.
func (e *Enclave) ReplicaID() uint32 { return e.replicaID }

// Identity implements Host.
func (e *Enclave) Identity() crypto.Identity {
	return crypto.Identity{ReplicaID: e.replicaID, Role: e.role}
}

// PublicKey returns the enclave's identity public key for registration.
func (e *Enclave) PublicKey() []byte { return e.identityKey.Public }

// Measurement returns the loaded code's measurement.
func (e *Enclave) Measurement() crypto.Digest { return e.code.Measurement() }

// Sign implements Host.
func (e *Enclave) Sign(msg []byte) []byte { return e.identityKey.Sign(msg) }

// RegisterOcall installs an untrusted handler callable from enclave code.
// It is part of broker setup, before traffic flows.
func (e *Enclave) RegisterOcall(name string, fn OcallFunc) {
	e.ocallsMu.Lock()
	defer e.ocallsMu.Unlock()
	e.ocalls[name] = fn
}

// Ocall implements Host: it pays a transition plus copies in both
// directions, then runs the untrusted function.
func (e *Enclave) Ocall(name string, data []byte) ([]byte, error) {
	e.ocallsMu.RLock()
	fn, ok := e.ocalls[name]
	e.ocallsMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoOcall, name)
	}
	e.cost.chargeTransition()
	e.cost.chargeCopy(len(data))
	out, err := fn(copyBytes(data))
	if err != nil {
		return nil, err
	}
	e.cost.chargeCopy(len(out))
	return out, nil
}

// Seal implements Host: AES-GCM under this boot's sealing subkey, with
// the boot ID prepended (and bound as associated data) so any later boot
// of the same enclave identity can re-derive the right subkey. Nonces are
// random, not counted — safe within one boot's ≤2^32 seal budget, and a
// restart rotates the subkey before the budget matters.
func (e *Enclave) Seal(data []byte) ([]byte, error) {
	ct, err := e.sealSess.SealRandom(data, e.bootID[:])
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, sealBootIDSize+len(ct))
	out = append(out, e.bootID[:]...)
	return append(out, ct...), nil
}

// Unseal implements Host: it derives (and caches) the sealing subkey of
// whatever boot produced the blob. Only an enclave holding the same base
// sealing key — the same identity key stream — derives a subkey that
// opens it.
func (e *Enclave) Unseal(sealed []byte) ([]byte, error) {
	if len(sealed) < sealBootIDSize {
		return nil, errors.New("tee: sealed blob too short")
	}
	var boot [sealBootIDSize]byte
	copy(boot[:], sealed[:sealBootIDSize])
	var sess *crypto.Session
	if boot == e.bootID {
		sess = e.sealSess
	} else if cached, ok := e.unsealCache.Load(boot); ok {
		sess = cached.(*crypto.Session)
	} else {
		derived, err := deriveSealSession(e.sealKey, boot)
		if err != nil {
			return nil, err
		}
		e.unsealCache.Store(boot, derived)
		sess = derived
	}
	return sess.Open(sealed[sealBootIDSize:], boot[:])
}

// Durable is implemented by enclave code whose state can be exported for
// sealed storage and restored after a restart (the durability subsystem's
// per-compartment hooks). ExportState and ImportState run under the
// enclave's single execution thread, so they see quiescent handler state.
type Durable interface {
	// ExportState serializes the compartment state.
	ExportState() []byte
	// ImportState replaces the compartment state from an ExportState blob.
	ImportState(data []byte) error
	// StateEpoch identifies the current snapshot generation; it advances
	// when the compartment reaches a new durable point (in SplitBFT, when
	// its stable checkpoint moves). The environment snapshots when it
	// observes an advance.
	StateEpoch() uint64
}

// ErrNotDurable is returned by the state hooks when the loaded code does
// not implement Durable.
var ErrNotDurable = errors.New("tee: enclave code does not export state")

// SealState exports the compartment state and seals it under the enclave
// sealing key — the unit the snapshot store persists. Only an enclave with
// the same identity key stream (the same sealing key) can unseal it.
func (e *Enclave) SealState() ([]byte, error) {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	if e.crashed {
		return nil, ErrCrashed
	}
	d, ok := e.code.(Durable)
	if !ok {
		return nil, ErrNotDurable
	}
	return e.Seal(d.ExportState())
}

// UnsealState reverses SealState: it unseals the blob and installs the
// state into the loaded code. Unsealing fails — and the state is refused —
// when the blob was sealed by a different enclave identity or tampered
// with.
func (e *Enclave) UnsealState(sealed []byte) error {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	d, ok := e.code.(Durable)
	if !ok {
		return ErrNotDurable
	}
	pt, err := e.Unseal(sealed)
	if err != nil {
		return fmt.Errorf("tee: unseal state: %w", err)
	}
	return d.ImportState(pt)
}

// StateEpoch returns the loaded code's snapshot generation (0 when the
// code is not Durable). The broker polls it after ecalls to decide when a
// new sealed snapshot is due.
func (e *Enclave) StateEpoch() uint64 {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	if d, ok := e.code.(Durable); ok {
		return d.StateEpoch()
	}
	return 0
}

// MonotonicInc implements Host.
func (e *Enclave) MonotonicInc(name string) uint64 {
	cell, _ := e.counters.LoadOrStore(name, &counterCell{})
	c := cell.(*counterCell)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.v++
	return c.v
}

// MonotonicGet implements Host.
func (e *Enclave) MonotonicGet(name string) uint64 {
	cell, ok := e.counters.Load(name)
	if !ok {
		return 0
	}
	c := cell.(*counterCell)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// ErrCrashed is returned by Invoke after Crash was called: the environment
// can kill an enclave at any time (fail-stop from the enclave's view).
var ErrCrashed = errors.New("tee: enclave crashed")

// Crash marks the enclave as crashed; all further Invokes fail. It models
// the environment killing the enclave process (§2.1: an environment fault
// may render its compartments unavailable).
func (e *Enclave) Crash() {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	e.crashed = true
}

// Crashed reports whether the enclave has been crashed. The untrusted
// environment may ask (it could observe ErrCrashed from the next Invoke
// anyway); the health endpoint uses it for compartment liveness.
func (e *Enclave) Crashed() bool {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	return e.crashed
}

// SetVerifyWorkers bounds the enclave-side preprocessing pool used by
// InvokeBatch (n <= 1 disables it). It is part of enclave setup, before
// traffic flows.
func (e *Enclave) SetVerifyWorkers(n int) {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	e.verifyWorkers = n
}

// Invoke performs one ecall: it serializes the caller behind the enclave's
// single execution thread, charges the transition and copy costs, runs the
// handler, and charges copy-out for the results. The returned messages'
// payloads are fresh copies owned by the caller.
func (e *Enclave) Invoke(msg []byte) ([]OutMsg, error) {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	if e.crashed {
		return nil, ErrCrashed
	}
	stop := e.stats.start(1)
	e.cost.chargeTransition()
	e.cost.chargeCopy(len(msg))
	out := e.code.HandleECall(e, copyBytes(msg))
	for i := range out {
		e.cost.chargeCopy(len(out[i].Payload))
	}
	stop()
	return out, nil
}

// InvokeBatch delivers many queued ecalls in one trusted-boundary
// crossing: a single transition is charged for the whole batch (the
// HotCalls-style amortization SplitBFT's evaluation identifies as the
// dominant cost lever), every message still pays its copy-in, and the
// handler runs once per message in submission order on the enclave's
// single logical protocol thread. When the code implements Preprocessor
// and a verify-worker pool is configured, the stateless share of the work
// (decode + signature verification) is fanned out across the batch first;
// state updates remain strictly serial, so ordering stays deterministic.
//
// Outputs are returned concatenated in handler order. The returned
// payloads are fresh copies; the input buffers are not retained, so
// callers may recycle them immediately.
func (e *Enclave) InvokeBatch(msgs [][]byte) ([]OutMsg, error) {
	if len(msgs) == 0 {
		return nil, nil
	}
	e.execMu.Lock()
	defer e.execMu.Unlock()
	if e.crashed {
		return nil, ErrCrashed
	}
	stop := e.stats.start(len(msgs))
	e.cost.chargeTransition()
	inside := make([][]byte, len(msgs))
	for i, m := range msgs {
		e.cost.chargeCopy(len(m))
		inside[i] = copyBytes(m)
	}
	e.preprocess(inside)
	var out []OutMsg
	for _, m := range inside {
		out = append(out, e.code.HandleECall(e, m)...)
	}
	for i := range out {
		e.cost.chargeCopy(len(out[i].Payload))
	}
	stop()
	return out, nil
}

// preprocess fans the stateless per-message work out to a bounded set of
// workers. It runs under execMu, so workers never race with HandleECall.
// Workers are spawned per batch rather than kept in a persistent pool:
// enclaves have no teardown API, so long-lived workers would leak a
// goroutine set per enclave (benchmarks build clusters by the dozen), and
// the spawn cost (~1µs each) is noise against the ≥58µs Ed25519 verify
// every batched message carries. The worker count is clamped to the CPUs
// actually available: preprocessing re-does decode work the serial
// handler will repeat, which is a win only when real parallelism hides
// it — on a single-core host it would just be overhead, so it is skipped
// and the handler verifies inline.
func (e *Enclave) preprocess(msgs [][]byte) {
	pre, ok := e.code.(Preprocessor)
	if !ok || e.verifyWorkers <= 1 || len(msgs) < 2 {
		return
	}
	workers := e.verifyWorkers
	if nc := runtime.GOMAXPROCS(0); workers > nc {
		workers = nc
	}
	if workers > len(msgs) {
		workers = len(msgs)
	}
	if workers <= 1 {
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(msgs) {
					return
				}
				pre.Preprocess(e, msgs[i])
			}
		}()
	}
	wg.Wait()
}

// Stats returns a snapshot of the enclave's ecall statistics.
func (e *Enclave) Stats() ECallSnapshot { return e.stats.snapshot() }

// ResetStats zeroes the ecall statistics (used between benchmark phases).
func (e *Enclave) ResetStats() { e.stats.reset() }

func copyBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
