package tee

import (
	"encoding/binary"
	"sync"

	"github.com/splitbft/splitbft/internal/crypto"
)

// TrustedCounter is the minimal trusted subsystem used by hybrid BFT
// protocols (MinBFT, CheapBFT, Hybster): a monotonic counter whose
// attestations bind a unique, gap-free counter value to each message,
// preventing equivocation. It is included here as the comparison point of
// Table 1/Table 2 — SplitBFT explicitly does not rely on it for safety,
// since it assumes enclaves themselves may fail.
type TrustedCounter struct {
	mu   sync.Mutex
	id   crypto.Identity
	key  *crypto.KeyPair
	next uint64
}

// NewTrustedCounter creates a trusted counter owned by id.
func NewTrustedCounter(id crypto.Identity) (*TrustedCounter, error) {
	kp, err := crypto.GenerateKeyPair(nil)
	if err != nil {
		return nil, err
	}
	return &TrustedCounter{id: id, key: kp}, nil
}

// PublicKey returns the counter's attestation verification key.
func (t *TrustedCounter) PublicKey() []byte { return t.key.Public }

// CounterAttestation binds a counter value to a message digest.
type CounterAttestation struct {
	Replica uint32
	Value   uint64
	Digest  crypto.Digest
	Sig     []byte
}

func counterSigningBytes(replica uint32, value uint64, digest crypto.Digest) []byte {
	buf := make([]byte, 0, 4+8+crypto.DigestSize)
	buf = binary.LittleEndian.AppendUint32(buf, replica)
	buf = binary.LittleEndian.AppendUint64(buf, value)
	buf = append(buf, digest[:]...)
	return buf
}

// CreateAttestation assigns the next counter value to digest and returns a
// signed attestation. Values are strictly increasing with no gaps, so a
// verifier that tracks the last value per replica detects both equivocation
// (same value, two digests — impossible to produce) and suppression (gaps).
func (t *TrustedCounter) CreateAttestation(digest crypto.Digest) CounterAttestation {
	t.mu.Lock()
	t.next++
	v := t.next
	t.mu.Unlock()
	att := CounterAttestation{Replica: t.id.ReplicaID, Value: v, Digest: digest}
	att.Sig = t.key.Sign(counterSigningBytes(att.Replica, att.Value, att.Digest))
	return att
}

// Value returns the last assigned counter value.
func (t *TrustedCounter) Value() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// VerifyAttestation checks an attestation under the counter's public key.
func VerifyAttestation(pub []byte, att CounterAttestation) bool {
	return crypto.Verify(pub, counterSigningBytes(att.Replica, att.Value, att.Digest), att.Sig)
}
