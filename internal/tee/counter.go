package tee

import (
	"io"
	"sync"

	"github.com/splitbft/splitbft/internal/crypto"
)

// TrustedCounter is the minimal trusted subsystem used by hybrid BFT
// protocols (MinBFT, CheapBFT, Hybster): a monotonic counter whose
// attestations bind a unique, gap-free counter value to each message,
// preventing equivocation. Classic SplitBFT does not rely on it for
// safety — it assumes enclaves themselves may fail — but the trusted
// consensus mode (ConsensusTrusted) binds it into PrePrepare assignment
// to drop the Prepare phase and shrink the group to 2f+1.
type TrustedCounter struct {
	mu      sync.Mutex
	id      crypto.Identity
	key     *crypto.KeyPair
	next    uint64
	creates uint64
	grants  uint64
}

// NewTrustedCounter creates a trusted counter owned by id with a random
// attestation key.
func NewTrustedCounter(id crypto.Identity) (*TrustedCounter, error) {
	return NewTrustedCounterWithRand(id, nil)
}

// NewTrustedCounterWithRand is NewTrustedCounter with an explicit entropy
// source for the attestation key. Multi-process deployments pass a
// crypto.KeyStream derived from the shared deployment secret (its own
// stream, separate from the compartment enclaves' streams) so every
// process derives the same counter public keys; nil uses crypto/rand.
func NewTrustedCounterWithRand(id crypto.Identity, rng io.Reader) (*TrustedCounter, error) {
	kp, err := crypto.GenerateKeyPair(rng)
	if err != nil {
		return nil, err
	}
	return &TrustedCounter{id: id, key: kp}, nil
}

// PublicKey returns the counter's attestation verification key.
func (t *TrustedCounter) PublicKey() []byte { return t.key.Public }

// CounterAttestation binds a counter value to a message digest.
type CounterAttestation struct {
	Replica uint32
	Value   uint64
	Digest  crypto.Digest
	Sig     []byte
}

// CreateAttestation assigns the next counter value to digest and returns a
// signed attestation. Values are strictly increasing with no gaps, so a
// verifier that tracks the last value per replica detects both equivocation
// (same value, two digests — impossible to produce) and suppression (gaps).
func (t *TrustedCounter) CreateAttestation(digest crypto.Digest) CounterAttestation {
	t.mu.Lock()
	t.next++
	t.creates++
	v := t.next
	t.mu.Unlock()
	att := CounterAttestation{Replica: t.id.ReplicaID, Value: v, Digest: digest}
	att.Sig = t.key.Sign(crypto.CounterSigningBytes(att.Replica, att.Value, att.Digest))
	return att
}

// LeaseAttestation is a time-bounded read lease issued by the primary's
// counter enclave: it authorizes Holder's Execution compartment to serve
// reads locally while the lease is fresh. The lease binds the view it was
// issued in (a view change revokes every outstanding lease at once), the
// agreement sequence number the holder must have applied before serving
// (linearizability anchor), and the counter value at grant time.
type LeaseAttestation struct {
	Granter   uint32
	Holder    uint32
	View      uint64
	AnchorSeq uint64
	CtrVal    uint64
	Expiry    int64 // UnixNano wall-clock bound
	// Probe marks a reachability probe: holders acknowledge it but must
	// never install or serve under it.
	Probe bool
	Sig   []byte
}

// GrantLease issues a signed read lease to holder, anchored at the current
// counter position. The expiry is chosen by the caller (the Preparation
// compartment renews leases on the failure-detector clock), as is the
// probe flag (a probe is acknowledged, never installed); the counter only
// binds and signs, it does not keep lease state — revocation is by expiry
// and by view change, not by the counter.
func (t *TrustedCounter) GrantLease(holder uint32, view, anchorSeq uint64, expiry int64, probe bool) LeaseAttestation {
	t.mu.Lock()
	ctr := t.next
	t.grants++
	t.mu.Unlock()
	att := LeaseAttestation{
		Granter:   t.id.ReplicaID,
		Holder:    holder,
		View:      view,
		AnchorSeq: anchorSeq,
		CtrVal:    ctr,
		Expiry:    expiry,
		Probe:     probe,
	}
	att.Sig = t.key.Sign(crypto.LeaseSigningBytes(att.Granter, att.Holder, att.View, att.AnchorSeq, att.CtrVal, att.Expiry, att.Probe))
	return att
}

// LeaseGrants returns the number of leases granted since boot (or since
// the last ResetCreates). A statistic, like Creates.
func (t *TrustedCounter) LeaseGrants() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.grants
}

// Value returns the last assigned counter value.
func (t *TrustedCounter) Value() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Creates returns the number of attestations created since boot (or since
// the last ResetCreates). Unlike Value it is a statistic, not protocol
// state: Import after recovery restores Value but not Creates.
func (t *TrustedCounter) Creates() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.creates
}

// ResetCreates zeroes the creation and lease-grant statistics (between
// benchmark phases).
func (t *TrustedCounter) ResetCreates() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.creates = 0
	t.grants = 0
}

// Export returns the counter position for sealed persistence.
func (t *TrustedCounter) Export() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Import restores the counter position from a sealed snapshot. The counter
// never moves backward: a stale import below the current position is
// ignored, preserving monotonicity across overlapping recovery paths.
func (t *TrustedCounter) Import(next uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if next > t.next {
		t.next = next
	}
}

// VerifyAttestation checks an attestation under the counter's public key.
func VerifyAttestation(pub []byte, att CounterAttestation) bool {
	return crypto.Verify(pub, crypto.CounterSigningBytes(att.Replica, att.Value, att.Digest), att.Sig)
}

// VerifyLease checks a read lease under the granting counter's public key.
func VerifyLease(pub []byte, att LeaseAttestation) bool {
	return crypto.Verify(pub,
		crypto.LeaseSigningBytes(att.Granter, att.Holder, att.View, att.AnchorSeq, att.CtrVal, att.Expiry, att.Probe),
		att.Sig)
}
