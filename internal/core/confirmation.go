package core

import (
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/tee"
)

// confSlot is one (view, seq) entry in the Confirmation compartment's input
// log: the PrePrepare (stripped of request bodies) plus the Prepares
// collected towards a prepare certificate.
type confSlot struct {
	prePrepare *messages.PrePrepare
	prepares   map[uint32]*messages.Prepare
	committed  bool
}

// confirmation is the Confirmation compartment (§3.2): it confirms that a
// batch was prepared by a quorum — event handler (3), waiting for one
// PrePrepare plus 2f matching Prepares before emitting a Commit — and it
// initiates view changes (5). Per principle P5 its only cross-compartment
// transition, the Commit, rides on a full prepare certificate.
type confirmation struct {
	comState

	slots map[uint64]map[uint64]*confSlot // view → seq → slot
	// inViewChange is set after sending a ViewChange: the compartment then
	// no longer processes Prepares or sends Commits in the old view (§4.4).
	inViewChange bool
	// myVC is the last ViewChange we sent; it is rebroadcast when the
	// environment re-suspects while the view change is still incomplete
	// (the NewView may have been lost on an unreliable network).
	myVC *messages.ViewChange
	// vcResends counts rebroadcasts since myVC was created. Escalation to
	// the next view happens only after 2<<vcBackoff resends — exponential
	// backoff per view, so chasing views eventually converge (as in PBFT's
	// doubling view-change timeout).
	vcResends int
	vcBackoff uint
	// vcSeen tracks which replicas demanded which views, for the f+1 join
	// rule (liveness).
	vcSeen map[uint64]map[uint32]bool
	// highCtr is the highest trusted-counter value among accepted
	// PrePrepares (trusted consensus mode); it rides on our ViewChanges so
	// a new primary can see how far the old leader's gap-free assignment
	// got, and is persisted so a recovered replica never understates it.
	highCtr uint64
}

func newConfirmation(cfg Config, ver *messages.Verifier) *confirmation {
	return &confirmation{
		comState: newComState(cfg.N, cfg.F, cfg.ID, cfg.WatermarkWindow, ver),
		slots:    make(map[uint64]map[uint64]*confSlot),
		vcSeen:   make(map[uint64]map[uint32]bool),
	}
}

// Measurement implements tee.Code.
func (c *confirmation) Measurement() crypto.Digest { return measConfirmation }

// Preprocess implements tee.Preprocessor (see preparation.Preprocess).
func (c *confirmation) Preprocess(_ tee.Host, raw []byte) { prevalidate(c.ver, raw) }

// HandleECall implements tee.Code.
func (c *confirmation) HandleECall(host tee.Host, raw []byte) []tee.OutMsg {
	if len(raw) == 0 || raw[0] != ecallMessage {
		return nil
	}
	m, err := messages.Unmarshal(raw[1:])
	if err != nil {
		return nil
	}
	switch msg := m.(type) {
	case *messages.PrePrepare:
		return c.onPrePrepare(host, msg)
	case *messages.Prepare:
		return c.onPrepare(host, msg)
	case *messages.Suspect:
		return c.onSuspect(host, msg)
	case *messages.ViewChange:
		return c.onPeerViewChange(host, msg)
	case *messages.NewView:
		return c.onNewView(host, msg)
	case *messages.StateProbe:
		return c.onStateProbe(host, msg)
	case *messages.Checkpoint:
		c.onCheckpointGC(host, msg)
	}
	return nil
}

func (c *confirmation) slot(view, seq uint64) *confSlot {
	vs, ok := c.slots[view]
	if !ok {
		vs = make(map[uint64]*confSlot)
		c.slots[view] = vs
	}
	s, ok := vs[seq]
	if !ok {
		s = &confSlot{prepares: make(map[uint32]*messages.Prepare)}
		vs[seq] = s
	}
	return s
}

// onPrePrepare records the proposal side of a prepare certificate. The
// Confirmation compartment receives every PrePrepare duplicated into its
// input log (§3.2); request bodies are irrelevant here, only the header.
func (c *confirmation) onPrePrepare(host tee.Host, pp *messages.PrePrepare) []tee.OutMsg {
	if pp.View != c.view || c.inViewChange || !c.inWindow(pp.Seq) {
		return nil
	}
	if err := c.ver.VerifyPrePrepare(pp, false); err != nil {
		return nil
	}
	if c.trustedMode() {
		// The counter attestation replaces the Prepare quorum: only a
		// proposal satisfying the view's affine assignment law enters the
		// slot, and maybeCommit then needs no Prepares at all. Equivocation
		// cannot land — two digests at one slot would need the same counter
		// value twice, which the counter enclave never signs.
		if err := c.ver.VerifyCounterAt(pp, c.ctrBase, c.seqBase); err != nil {
			return nil
		}
	}
	s := c.slot(pp.View, pp.Seq)
	if s.prePrepare != nil {
		return nil // first proposal wins; equivocation costs liveness only
	}
	s.prePrepare = pp.StripBatch()
	if pp.CtrVal > c.highCtr {
		c.highCtr = pp.CtrVal
	}
	return c.maybeCommit(host, pp.View, pp.Seq)
}

// onPrepare collects Prepares from Preparation enclaves (event handler 3).
// In trusted consensus mode the phase does not exist: correct replicas never
// send Prepares and received ones are dropped unverified.
func (c *confirmation) onPrepare(host tee.Host, p *messages.Prepare) []tee.OutMsg {
	if c.trustedMode() || p.View != c.view || c.inViewChange || !c.inWindow(p.Seq) {
		return nil
	}
	s := c.slot(p.View, p.Seq)
	// Cheap redundancy checks before the expensive signature verification:
	// a sender slot is only ever occupied by a previously verified Prepare,
	// and a committed slot already holds a full certificate (prepareCerts
	// caps at 2f Prepares, so late extras can never be needed again).
	if _, dup := s.prepares[p.Replica]; dup || s.committed {
		return nil
	}
	if err := c.ver.VerifyPrepare(p); err != nil {
		return nil
	}
	s.prepares[p.Replica] = p
	return c.maybeCommit(host, p.View, p.Seq)
}

// maybeCommit emits the Commit once the slot holds a full prepare
// certificate: one PrePrepare plus 2f matching Prepares from distinct
// Preparation enclaves (P5: quorum-gated transition). In trusted consensus
// mode the counter-verified PrePrepare alone is the certificate — onPrePrepare
// only admits proposals passing the affine assignment law, so the Prepare
// round (and its all-to-all traffic plus verification) is skipped entirely.
func (c *confirmation) maybeCommit(host tee.Host, view, seq uint64) []tee.OutMsg {
	s := c.slot(view, seq)
	if s.committed || s.prePrepare == nil {
		return nil
	}
	need := 2 * c.f
	if c.trustedMode() {
		need = 0
	}
	matching := 0
	for _, p := range s.prepares {
		if p.Digest == s.prePrepare.Digest {
			matching++
		}
	}
	if matching < need {
		return nil
	}
	s.committed = true
	cm := &messages.Commit{View: view, Seq: seq, Digest: s.prePrepare.Digest, Replica: c.id}
	cm.Sig, cm.Auth = c.authenticate(host, messages.TCommit, cm.SigningBytes())
	return []tee.OutMsg{
		broadcastOut(cm),
		localOut(crypto.RoleExecution, cm),
	}
}

// onSuspect is the view-change trigger (event handler 5): the environment's
// request timer expired. Suspect messages are unauthenticated — a forged
// one can only force an unnecessary view change (liveness), never break
// safety. The ViewChange carries the stable checkpoint certificate and all
// prepare certificates from in_conf.
func (c *confirmation) onSuspect(host tee.Host, s *messages.Suspect) []tee.OutMsg {
	if c.inViewChange {
		// Still waiting for a NewView: resend our ViewChange (it or the
		// NewView may have been dropped); escalate only after the backoff
		// threshold (the new primary itself may be faulty).
		backoff := c.vcBackoff
		if backoff > 5 {
			backoff = 5
		}
		if c.vcResends < 2<<backoff && c.myVC != nil {
			c.vcResends++
			return []tee.OutMsg{
				broadcastOut(c.myVC),
				localOut(crypto.RolePreparation, c.myVC),
			}
		}
		c.vcBackoff++
		return c.startViewChange(host, c.view+1)
	}
	if s.View < c.view {
		return nil
	}
	return c.startViewChange(host, c.view+1)
}

func (c *confirmation) startViewChange(host tee.Host, target uint64) []tee.OutMsg {
	vc := &messages.ViewChange{
		NewViewNum: target,
		Stable:     c.stableCert,
		Prepared:   c.prepareCerts(host),
		Replica:    c.id,
		HighCtr:    c.highCtr,
	}
	// The ViewChange itself always carries an Ed25519 signature: it is
	// embedded wholesale in NewViews and must be third-party verifiable
	// even on the MAC fast path.
	vc.Sig = host.Sign(vc.SigningBytes())
	// Upon sending the ViewChange the enclave increases its view and stops
	// processing Prepares or sending Commits in the old view (§4.4).
	c.view = target
	c.inViewChange = true
	c.myVC = vc
	c.vcResends = 0
	return []tee.OutMsg{
		broadcastOut(vc),
		localOut(crypto.RolePreparation, vc),
	}
}

// prepareCerts extracts prepare certificates for every slot above the
// stable checkpoint that reached a certificate, best view per sequence.
// In sig mode each cert bundles the 2f signed Prepares; in MAC mode those
// Prepares were MAC'd to this enclave alone, so the cert is the bare
// proposal header plus this enclave's signature over the aggregated claim
// ("a prepare certificate for (view, seq, digest) exists").
func (c *confirmation) prepareCerts(host tee.Host) []messages.PrepareCert {
	best := make(map[uint64]*messages.PrepareCert)
	for _, vs := range c.slots {
		for seq, s := range vs {
			if seq <= c.lowWatermark || s.prePrepare == nil {
				continue
			}
			matching := 0
			for _, p := range s.prepares {
				if p.Digest == s.prePrepare.Digest {
					matching++
				}
			}
			if !c.trustedMode() && matching < 2*c.f {
				continue
			}
			var pc *messages.PrepareCert
			if c.trustedMode() {
				// The counter attestation (kept by StripAuth) is itself the
				// transferable proof, uniform across both auth modes: a slot
				// only holds a counter-valid proposal, and the attestation is
				// third-party verifiable.
				pc = &messages.PrepareCert{PrePrepare: *s.prePrepare.StripAuth()}
			} else if c.macMode() {
				pc = &messages.PrepareCert{
					PrePrepare: *s.prePrepare.StripAuth(),
					Attestor:   c.id,
				}
				pc.Vouch = host.Sign(messages.PrepareCertClaim(pc.View(), pc.Seq(), pc.Digest()))
			} else {
				pc = &messages.PrepareCert{PrePrepare: *s.prePrepare}
				for _, p := range s.prepares {
					if p.Digest == s.prePrepare.Digest && len(pc.Prepares) < 2*c.f {
						pc.Prepares = append(pc.Prepares, *p)
					}
				}
			}
			if cur, ok := best[seq]; !ok || pc.View() > cur.View() {
				best[seq] = pc
			}
		}
	}
	out := make([]messages.PrepareCert, 0, len(best))
	for _, pc := range best {
		out = append(out, *pc)
	}
	// Insertion sort by sequence number (small sets).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Seq() < out[j-1].Seq(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// probeTailBudget caps how many committed slots one StateProbe answer
// re-sends Commits for. A gap this path serves is by construction smaller
// than one checkpoint interval (anything larger has a stable checkpoint
// the Execution compartment answers with a snapshot), so the cap is slack;
// it only bounds the reply to a forged probe claiming Have far in the past.
const probeTailBudget = 64

// onStateProbe closes sub-checkpoint outage tails. A recovered replica
// probing with Have below slots this compartment already committed cannot
// be served by state transfer — no checkpoint newer than Have is stable —
// and on an idle cluster no traffic re-delivers the missed Commits. The
// input log still holds every committed slot above the watermark, so
// re-issue our Commit for each gap slot directly to the prober: once 2f+1
// Confirmation enclaves have answered, the prober holds full commit
// certificates and fetches the missing bodies over the (self-certifying)
// BatchReply path. Re-issued Commits are authenticated exactly like live
// ones, so a forged probe yields nothing a retransmission wouldn't.
func (c *confirmation) onStateProbe(host tee.Host, p *messages.StateProbe) []tee.OutMsg {
	if int(p.Replica) >= c.n || p.Replica == c.id || c.inViewChange {
		return nil
	}
	// Best (highest) view per committed sequence above the prober's
	// execution point — the same preference rule prepareCerts applies.
	type tailSlot struct {
		view   uint64
		digest crypto.Digest
	}
	best := make(map[uint64]tailSlot)
	for view, vs := range c.slots {
		for seq, s := range vs {
			if seq <= p.Have || !s.committed || s.prePrepare == nil {
				continue
			}
			if cur, ok := best[seq]; !ok || view > cur.view {
				best[seq] = tailSlot{view: view, digest: s.prePrepare.Digest}
			}
		}
	}
	if len(best) == 0 {
		return nil
	}
	seqs := make([]uint64, 0, len(best))
	for seq := range best {
		seqs = append(seqs, seq)
	}
	// Insertion sort by sequence number (small sets): execution consumes
	// slots strictly in order, so ascending delivery avoids re-stalls.
	for i := 1; i < len(seqs); i++ {
		for j := i; j > 0 && seqs[j] < seqs[j-1]; j-- {
			seqs[j], seqs[j-1] = seqs[j-1], seqs[j]
		}
	}
	if len(seqs) > probeTailBudget {
		seqs = seqs[:probeTailBudget]
	}
	out := make([]tee.OutMsg, 0, len(seqs))
	for _, seq := range seqs {
		ts := best[seq]
		cm := &messages.Commit{View: ts.view, Seq: seq, Digest: ts.digest, Replica: c.id}
		cm.Sig, cm.Auth = c.authenticate(host, messages.TCommit, cm.SigningBytes())
		out = append(out, replicaOut(p.Replica, cm))
	}
	return out
}

// onPeerViewChange implements the f+1 join rule: when more than f distinct
// replicas demand views above ours, join the smallest to preserve liveness.
func (c *confirmation) onPeerViewChange(host tee.Host, vc *messages.ViewChange) []tee.OutMsg {
	if vc.NewViewNum <= c.view {
		return nil
	}
	if err := c.ver.VerifyViewChange(vc); err != nil {
		return nil
	}
	set, ok := c.vcSeen[vc.NewViewNum]
	if !ok {
		set = make(map[uint32]bool)
		c.vcSeen[vc.NewViewNum] = set
	}
	set[vc.Replica] = true
	distinct := make(map[uint32]bool)
	minTarget := vc.NewViewNum
	for target, ids := range c.vcSeen {
		if target <= c.view {
			continue
		}
		for id := range ids {
			distinct[id] = true
		}
		if target < minTarget {
			minTarget = target
		}
	}
	if len(distinct) > c.f {
		return c.startViewChange(host, minTarget)
	}
	return nil
}

// onNewView applies the checkpoint and view number from a NewView without
// recomputing the re-issued PrePrepares from the ViewChanges — the paper's
// corner case: a NewView with false PrePrepares is accepted here but not by
// the Preparation compartment, and commits still need full prepare
// certificates (2f Prepares from correct Preparation enclaves), so safety
// holds (§4). The re-issued PrePrepares are ingested into the input log
// (after per-message signature checks) so the prepare certificates of the
// new view can complete.
func (c *confirmation) onNewView(host tee.Host, nv *messages.NewView) []tee.OutMsg {
	if c.trustedMode() && nv.View >= c.view {
		// With direct commits there are no Prepare votes from correct
		// Preparation enclaves to filter false re-issues, so the paper's
		// corner case no longer protects this compartment: it must validate
		// the NewView fully itself — including the recomputation from the
		// ViewChanges and the counter attestation on every re-issued slot —
		// before any re-issue can reach maybeCommit.
		if err := c.ver.VerifyNewView(nv); err != nil {
			return nil
		}
	}
	if !c.applyNewViewCheckpoint(nv) {
		return nil
	}
	c.inViewChange = false
	c.vcBackoff = 0
	c.gc()
	for target := range c.vcSeen {
		if target <= c.view {
			delete(c.vcSeen, target)
		}
	}
	var out []tee.OutMsg
	for i := range nv.PrePrepares {
		pp := &nv.PrePrepares[i]
		if pp.View != c.view || !c.inWindow(pp.Seq) {
			continue
		}
		// Re-issued proposals are validated like live ones in sig mode; in
		// MAC mode they carry no per-message authenticator and ride on the
		// NewView signature checked in applyNewViewCheckpoint above.
		if err := c.ver.VerifyReissuedPrePrepare(pp); err != nil {
			continue
		}
		s := c.slot(pp.View, pp.Seq)
		if s.prePrepare == nil {
			s.prePrepare = pp.StripBatch()
			if pp.CtrVal > c.highCtr {
				c.highCtr = pp.CtrVal
			}
			out = append(out, c.maybeCommit(host, pp.View, pp.Seq)...)
		}
	}
	return out
}

// onCheckpointGC is the duplicated checkpoint handler (9).
func (c *confirmation) onCheckpointGC(host tee.Host, cp *messages.Checkpoint) {
	cert := c.onCheckpoint(host, cp)
	if cert == nil {
		return
	}
	if c.advanceStable(*cert) {
		c.gc()
	}
}

// gc prunes slots at or below the watermark.
func (c *confirmation) gc() {
	for view, vs := range c.slots {
		for seq := range vs {
			if seq <= c.lowWatermark {
				delete(vs, seq)
			}
		}
		if len(vs) == 0 {
			delete(c.slots, view)
		}
	}
}
