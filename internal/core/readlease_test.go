package core

import (
	"testing"
	"time"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/tee"
)

// Lease-anchored local read tests: drive the Preparation (grantor) and
// Execution (holder) compartments directly, probing the fail-closed
// admission rules — an expired, revoked, forged, or missing lease must
// refuse the local read, never serve a stale one.

// leaseRig wires one primary Preparation enclave (replica 0, with the
// trusted counter) and all n Execution enclaves with read leases on.
type leaseRig struct {
	t       *testing.T
	n, f    int
	reg     *crypto.Registry
	secret  []byte
	counter *tee.TrustedCounter
	prep    *tee.Enclave
	execs   []*tee.Enclave
	codes   []*execution // white-box views of the Execution compartments
	apps    []*app.KVS
}

func newLeaseRig(t *testing.T, ttl time.Duration) *leaseRig {
	t.Helper()
	r := &leaseRig{t: t, n: 4, f: 1, reg: crypto.NewRegistry(), secret: []byte("lease-test")}
	ver, err := messages.NewVerifier(r.n, r.f, r.reg, messages.SplitScheme())
	if err != nil {
		t.Fatal(err)
	}
	ctrID := crypto.Identity{ReplicaID: 0, Role: crypto.RoleCounter}
	r.counter, err = tee.NewTrustedCounter(ctrID)
	if err != nil {
		t.Fatal(err)
	}
	r.reg.Register(ctrID, r.counter.PublicKey())
	for i := 0; i < r.n; i++ {
		kvs := app.NewKVS()
		r.apps = append(r.apps, kvs)
		cfg := Config{
			N: r.n, F: r.f, ID: uint32(i),
			Registry: r.reg, MACSecret: r.secret, App: kvs,
			ReadLeases: true, LeaseTTL: ttl,
		}.withDefaults()
		if i == 0 {
			prepCode := newPreparation(cfg, ver, r.counter)
			r.prep, err = tee.NewEnclave(0, crypto.RolePreparation, prepCode, tee.ZeroCostModel())
			if err != nil {
				t.Fatal(err)
			}
			r.reg.Register(r.prep.Identity(), r.prep.PublicKey())
		}
		code := newExecution(cfg, ver)
		enc, err := tee.NewEnclave(uint32(i), crypto.RoleExecution, code, tee.ZeroCostModel())
		if err != nil {
			t.Fatal(err)
		}
		r.reg.Register(enc.Identity(), enc.PublicKey())
		r.execs = append(r.execs, enc)
		r.codes = append(r.codes, code)
	}
	return r
}

// grants ticks the primary's Preparation compartment and collects the
// emitted lease grants, keyed by holder.
func (r *leaseRig) grants() map[uint32]*messages.LeaseGrant {
	r.t.Helper()
	out, err := r.prep.Invoke([]byte{ecallTick})
	if err != nil {
		r.t.Fatal(err)
	}
	got := make(map[uint32]*messages.LeaseGrant)
	for i := range out {
		m, err := messages.Unmarshal(out[i].Payload)
		if err != nil {
			r.t.Fatal(err)
		}
		if g, ok := m.(*messages.LeaseGrant); ok {
			got[g.Holder] = g
		}
	}
	return got
}

// deliver hands a lease grant to a replica's Execution enclave.
func (r *leaseRig) deliver(replica uint32, g *messages.LeaseGrant) {
	r.t.Helper()
	if _, err := r.execs[replica].Invoke(wrapMessage(messages.Marshal(g))); err != nil {
		r.t.Fatal(err)
	}
}

// read sends a MAC-authenticated ReadRequest to a replica's Execution
// enclave and returns the reply (nil when the enclave stayed silent).
func (r *leaseRig) read(replica uint32, ts, minSeq uint64, linearizable bool, op []byte) *messages.ReadReply {
	r.t.Helper()
	const clientID = 42
	macs := crypto.NewMACStore(r.secret, crypto.Identity{ReplicaID: clientID, Role: crypto.RoleClient})
	req := &messages.ReadRequest{
		ClientID: clientID, Timestamp: ts, MinSeq: minSeq,
		Linearizable: linearizable, Payload: op,
	}
	req.MAC = macs.MAC(req.AuthenticatedBytes(), crypto.Identity{ReplicaID: replica, Role: crypto.RoleExecution})
	out, err := r.execs[replica].Invoke(wrapMessage(messages.Marshal(req)))
	if err != nil {
		r.t.Fatal(err)
	}
	rep, ok := findMsg[*messages.ReadReply](r.t, out, tee.DestClient)
	if !ok {
		return nil
	}
	return rep
}

// TestLeaseLocalReadServes is the fast-path happy case: a granted,
// verified, in-view lease serves a linearizable read locally — one
// request, one attested reply, no agreement traffic.
func TestLeaseLocalReadServes(t *testing.T) {
	r := newLeaseRig(t, time.Second)
	grants := r.grants()
	if len(grants) != r.n {
		t.Fatalf("got %d grants, want %d", len(grants), r.n)
	}
	r.deliver(1, grants[1])
	rep := r.read(1, 1, 0, true, app.EncodeGet("missing"))
	if rep == nil || !rep.OK {
		t.Fatalf("leased linearizable read refused: %+v", rep)
	}
	if string(rep.Result) != "NOTFOUND" {
		t.Fatalf("read result = %q, want NOTFOUND", rep.Result)
	}
	if got := r.codes[1].localReads.Load(); got != 1 {
		t.Fatalf("localReads = %d, want 1", got)
	}
	if r.counter.LeaseGrants() == 0 {
		t.Fatal("counter recorded no lease grants")
	}
}

// TestLeaselessReadRefused: without a lease the Execution compartment must
// answer with an explicit refusal (so the client falls back immediately),
// not a result.
func TestLeaselessReadRefused(t *testing.T) {
	r := newLeaseRig(t, time.Second)
	rep := r.read(2, 1, 0, false, app.EncodeGet("k"))
	if rep == nil {
		t.Fatal("expected an explicit refusal reply, got silence")
	}
	if rep.OK {
		t.Fatal("leaseless replica served a local read")
	}
}

// TestLeaseWrongHolderIgnored: a grant addressed to another replica must
// not arm the fast path.
func TestLeaseWrongHolderIgnored(t *testing.T) {
	r := newLeaseRig(t, time.Second)
	grants := r.grants()
	r.deliver(2, grants[1]) // replica 2 gets replica 1's grant
	if rep := r.read(2, 1, 0, false, app.EncodeGet("k")); rep == nil || rep.OK {
		t.Fatalf("misaddressed grant armed the fast path: %+v", rep)
	}
}

// TestLeaseForgedSignatureRejected: a lease whose counter signature does
// not verify must be dropped — the broker relays grants, so a corrupt or
// malicious environment can tamper with them.
func TestLeaseForgedSignatureRejected(t *testing.T) {
	r := newLeaseRig(t, time.Second)
	grants := r.grants()
	g := *grants[1]
	g.AnchorSeq++ // payload no longer matches the signature
	r.deliver(1, &g)
	if rep := r.read(1, 1, 0, false, app.EncodeGet("k")); rep == nil || rep.OK {
		t.Fatalf("forged lease served a local read: %+v", rep)
	}
}

// TestLeaseExpiryFailsClosed: after the TTL passes, the ex-leaseholder —
// think of it as partitioned away from the primary, missing every renewal
// — must refuse local reads in both consistency modes.
func TestLeaseExpiryFailsClosed(t *testing.T) {
	ttl := 80 * time.Millisecond
	r := newLeaseRig(t, ttl)
	grants := r.grants()
	r.deliver(1, grants[1])
	if rep := r.read(1, 1, 0, true, app.EncodeGet("k")); rep == nil || !rep.OK {
		t.Fatalf("fresh lease refused: %+v", rep)
	}
	time.Sleep(ttl + 20*time.Millisecond)
	if rep := r.read(1, 2, 0, true, app.EncodeGet("k")); rep == nil || rep.OK {
		t.Fatal("expired lease served a linearizable read")
	}
	if rep := r.read(1, 3, 0, false, app.EncodeGet("k")); rep == nil || rep.OK {
		t.Fatal("expired lease served a session read")
	}
}

// TestLeaseViewChangeRevokes: a lease from a deposed view must stop
// serving the moment the holder learns of the new view, well before its
// timer expires — the counter-key revocation path.
func TestLeaseViewChangeRevokes(t *testing.T) {
	r := newLeaseRig(t, time.Minute) // nowhere near expiry
	grants := r.grants()
	r.deliver(1, grants[1])
	if rep := r.read(1, 1, 0, false, app.EncodeGet("k")); rep == nil || !rep.OK {
		t.Fatalf("fresh lease refused: %+v", rep)
	}
	// White-box: advance the compartment's view as an installed NewView
	// would (crafting a full valid NewView certificate is the view-change
	// tests' job); leaseValid must now refuse the view-0 lease.
	r.codes[1].view = 1
	if rep := r.read(1, 2, 0, false, app.EncodeGet("k")); rep == nil || rep.OK {
		t.Fatal("deposed view's lease served a local read")
	}
}

// TestSessionReadHonorsWatermark: a session read carries the client's
// MinSeq watermark; a replica that has not applied that far must refuse —
// this is what makes the fast path read-your-writes.
func TestSessionReadHonorsWatermark(t *testing.T) {
	r := newLeaseRig(t, time.Second)
	grants := r.grants()
	r.deliver(1, grants[1])
	if rep := r.read(1, 1, 5, false, app.EncodeGet("k")); rep == nil || rep.OK {
		t.Fatal("lagging replica served a session read past its watermark")
	}
	if rep := r.read(1, 2, 0, false, app.EncodeGet("k")); rep == nil || !rep.OK {
		t.Fatalf("watermark-satisfying session read refused: %+v", rep)
	}
}

// TestLinearizableReadHonorsAnchor: once the primary has assigned a
// sequence number, new leases anchor there, and a holder that has not yet
// executed it must refuse linearizable reads (the proposal could commit
// before the read returns) while still serving session reads.
func TestLinearizableReadHonorsAnchor(t *testing.T) {
	r := newLeaseRig(t, time.Second)
	req := testRequest(r.secret, r.n, 7, 1, app.EncodePut("k", []byte("v")))
	out, err := r.prep.Invoke(wrapBatch(&messages.Batch{Requests: []messages.Request{req}}))
	if err != nil {
		t.Fatal(err)
	}
	// The proposal's output carries the piggybacked grants, anchored at
	// the sequence it just assigned.
	var g *messages.LeaseGrant
	for i := range out {
		m, err := messages.Unmarshal(out[i].Payload)
		if err != nil {
			continue // ecall outputs include non-message payloads? no — but stay lenient
		}
		if lg, ok := m.(*messages.LeaseGrant); ok && lg.Holder == 1 {
			g = lg
		}
	}
	if g == nil {
		t.Fatal("proposal did not piggyback a lease grant for replica 1")
	}
	if g.AnchorSeq == 0 {
		t.Fatalf("post-proposal grant anchored at 0, want the assigned sequence")
	}
	r.deliver(1, g)
	if rep := r.read(1, 1, 0, true, app.EncodeGet("k")); rep == nil || rep.OK {
		t.Fatal("holder behind the lease anchor served a linearizable read")
	}
	if rep := r.read(1, 2, 0, false, app.EncodeGet("k")); rep == nil || !rep.OK {
		t.Fatalf("session read refused on a replica behind the anchor: %+v", rep)
	}
}

// TestReadsBypassReplyCache is the reply-cache regression: local reads are
// side-effect-free and single-shot, so they must never populate the
// exactly-once client bookkeeping the write path maintains — a read-heavy
// client would otherwise bloat enclave memory with useless entries.
func TestReadsBypassReplyCache(t *testing.T) {
	r := newLeaseRig(t, time.Second)
	grants := r.grants()
	r.deliver(1, grants[1])
	for ts := uint64(1); ts <= 64; ts++ {
		if rep := r.read(1, ts, 0, true, app.EncodeGet("k")); rep == nil || !rep.OK {
			t.Fatalf("read %d refused: %+v", ts, rep)
		}
	}
	if got := len(r.codes[1].clients); got != 0 {
		t.Fatalf("reply cache holds %d client entries after a read-only run, want 0", got)
	}
	if got := r.codes[1].localReads.Load(); got != 64 {
		t.Fatalf("localReads = %d, want 64", got)
	}
}
