package core

import (
	"testing"
	"time"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/tee"
)

// Lease-anchored local read tests: drive the Preparation (granter) and
// Execution (holder) compartments directly, probing the fail-closed
// admission rules — an expired, revoked, forged, probe-only, or missing
// lease must refuse the local read, and a linearizable read must never be
// served off lease state alone (it needs a read-index frontier sampled
// after its arrival).

// leaseRig wires one primary Preparation enclave (replica 0, with the
// trusted counter) and all n Execution enclaves with read leases on.
type leaseRig struct {
	t        *testing.T
	n, f     int
	reg      *crypto.Registry
	ver      *messages.Verifier
	secret   []byte
	counter  *tee.TrustedCounter
	prep     *tee.Enclave
	prepCode *preparation // white-box view of the granter
	execs    []*tee.Enclave
	codes    []*execution // white-box views of the Execution compartments
	apps     []*app.KVS
}

func newLeaseRig(t *testing.T, ttl time.Duration) *leaseRig {
	t.Helper()
	r := &leaseRig{t: t, n: 4, f: 1, reg: crypto.NewRegistry(), secret: []byte("lease-test")}
	ver, err := messages.NewVerifier(r.n, r.f, r.reg, messages.SplitScheme())
	if err != nil {
		t.Fatal(err)
	}
	r.ver = ver
	ctrID := crypto.Identity{ReplicaID: 0, Role: crypto.RoleCounter}
	r.counter, err = tee.NewTrustedCounter(ctrID)
	if err != nil {
		t.Fatal(err)
	}
	r.reg.Register(ctrID, r.counter.PublicKey())
	for i := 0; i < r.n; i++ {
		kvs := app.NewKVS()
		r.apps = append(r.apps, kvs)
		cfg := Config{
			N: r.n, F: r.f, ID: uint32(i),
			Registry: r.reg, MACSecret: r.secret, App: kvs,
			ReadLeases: true, LeaseTTL: ttl,
		}.withDefaults()
		if i == 0 {
			r.prepCode = newPreparation(cfg, ver, r.counter)
			r.prep, err = tee.NewEnclave(0, crypto.RolePreparation, r.prepCode, tee.ZeroCostModel())
			if err != nil {
				t.Fatal(err)
			}
			r.reg.Register(r.prep.Identity(), r.prep.PublicKey())
		}
		code := newExecution(cfg, ver)
		enc, err := tee.NewEnclave(uint32(i), crypto.RoleExecution, code, tee.ZeroCostModel())
		if err != nil {
			t.Fatal(err)
		}
		r.reg.Register(enc.Identity(), enc.PublicKey())
		r.execs = append(r.execs, enc)
		r.codes = append(r.codes, code)
	}
	return r
}

// scanMsg extracts the first message of a type from enclave outputs,
// regardless of destination (local and remote legs both matter here).
func scanMsg[T messages.Message](t *testing.T, out []tee.OutMsg) (T, bool) {
	t.Helper()
	var zero T
	for i := range out {
		m, err := messages.Unmarshal(out[i].Payload)
		if err != nil {
			continue // non-message payloads (none expected, but stay lenient)
		}
		if typed, ok := m.(T); ok {
			return typed, true
		}
	}
	return zero, false
}

// grants ticks the primary's Preparation compartment and collects the
// emitted lease grants, keyed by holder.
func (r *leaseRig) grants() map[uint32]*messages.LeaseGrant {
	r.t.Helper()
	out, err := r.prep.Invoke([]byte{ecallTick})
	if err != nil {
		r.t.Fatal(err)
	}
	return collectGrants(r.t, out)
}

func collectGrants(t *testing.T, out []tee.OutMsg) map[uint32]*messages.LeaseGrant {
	t.Helper()
	got := make(map[uint32]*messages.LeaseGrant)
	for i := range out {
		m, err := messages.Unmarshal(out[i].Payload)
		if err != nil {
			t.Fatal(err)
		}
		if g, ok := m.(*messages.LeaseGrant); ok {
			got[g.Holder] = g
		}
	}
	return got
}

// deliver hands a lease grant to a replica's Execution enclave, returning
// the LeaseAck it emits (nil when the grant was dropped).
func (r *leaseRig) deliver(replica uint32, g *messages.LeaseGrant) *messages.LeaseAck {
	r.t.Helper()
	out, err := r.execs[replica].Invoke(wrapMessage(messages.Marshal(g)))
	if err != nil {
		r.t.Fatal(err)
	}
	ack, _ := scanMsg[*messages.LeaseAck](r.t, out)
	return ack
}

// feedAck hands a holder's LeaseAck to the granter, returning any grant
// round it triggered (the arming round once the quorum forms).
func (r *leaseRig) feedAck(a *messages.LeaseAck) map[uint32]*messages.LeaseGrant {
	r.t.Helper()
	out, err := r.prep.Invoke(wrapMessage(messages.Marshal(a)))
	if err != nil {
		r.t.Fatal(err)
	}
	return collectGrants(r.t, out)
}

// armLeases runs the full probe → ack → grant handshake: the first round
// is probe-only, holders acknowledge, and the quorum of acks authorizes
// the real (servable) round, which is installed on every holder.
func (r *leaseRig) armLeases() map[uint32]*messages.LeaseGrant {
	r.t.Helper()
	probes := r.grants()
	if len(probes) != r.n {
		r.t.Fatalf("got %d probe grants, want %d", len(probes), r.n)
	}
	var real map[uint32]*messages.LeaseGrant
	for holder := uint32(0); int(holder) < r.n; holder++ {
		g, ok := probes[holder]
		if !ok {
			r.t.Fatalf("no probe grant for holder %d", holder)
		}
		if !g.Probe {
			r.t.Fatalf("pre-quorum grant to %d is not a probe", holder)
		}
		ack := r.deliver(holder, g)
		if ack == nil {
			r.t.Fatalf("holder %d did not acknowledge the probe", holder)
		}
		if round := r.feedAck(ack); len(round) > 0 {
			real = round
		}
	}
	if real == nil {
		r.t.Fatal("ack quorum did not trigger a servable grant round")
	}
	for holder := uint32(0); int(holder) < r.n; holder++ {
		g, ok := real[holder]
		if !ok {
			r.t.Fatalf("no servable grant for holder %d", holder)
		}
		if g.Probe {
			r.t.Fatal("post-quorum grant round is still probe-only")
		}
		r.deliver(holder, g)
	}
	return real
}

// renew runs one renewal round end to end (tick → grants → install →
// acks), keeping leases and the granter's reachability records fresh the
// way the broker's lease clock does. A no-op within the renewal throttle.
func (r *leaseRig) renew() {
	r.t.Helper()
	round := r.grants()
	for holder := uint32(0); int(holder) < r.n; holder++ {
		g, ok := round[holder]
		if !ok {
			continue
		}
		if ack := r.deliver(holder, g); ack != nil {
			r.feedAck(ack)
		}
	}
}

// read sends a MAC-authenticated ReadRequest to a replica's Execution
// enclave and returns the reply (nil when the enclave stayed silent). A
// linearizable read parks behind a read-index exchange; this helper
// shuttles the query to the primary's Preparation compartment and the
// frontier reply back, mimicking the broker.
func (r *leaseRig) read(replica uint32, ts, minSeq uint64, linearizable bool, op []byte) *messages.ReadReply {
	r.t.Helper()
	const clientID = 42
	macs := crypto.NewMACStore(r.secret, crypto.Identity{ReplicaID: clientID, Role: crypto.RoleClient})
	req := &messages.ReadRequest{
		ClientID: clientID, Timestamp: ts, MinSeq: minSeq,
		Linearizable: linearizable, Payload: op,
	}
	req.MAC = macs.MAC(req.AuthenticatedBytes(), crypto.Identity{ReplicaID: replica, Role: crypto.RoleExecution})
	out, err := r.execs[replica].Invoke(wrapMessage(messages.Marshal(req)))
	if err != nil {
		r.t.Fatal(err)
	}
	if rep, ok := findMsg[*messages.ReadReply](r.t, out, tee.DestClient); ok {
		return rep
	}
	ri, ok := scanMsg[*messages.ReadIndex](r.t, out)
	if !ok {
		return nil
	}
	pout, err := r.prep.Invoke(wrapMessage(messages.Marshal(ri)))
	if err != nil {
		r.t.Fatal(err)
	}
	rr, ok := scanMsg[*messages.ReadIndexReply](r.t, pout)
	if !ok {
		return nil // granter refused to answer (e.g. wrong view)
	}
	out, err = r.execs[replica].Invoke(wrapMessage(messages.Marshal(rr)))
	if err != nil {
		r.t.Fatal(err)
	}
	rep, ok := findMsg[*messages.ReadReply](r.t, out, tee.DestClient)
	if !ok {
		return nil
	}
	return rep
}

// TestLeaseLocalReadServes is the fast-path happy case: a granted,
// verified, in-view, ack-armed lease serves a linearizable read locally —
// one read-index round trip to the primary, one attested reply, no
// agreement round.
func TestLeaseLocalReadServes(t *testing.T) {
	r := newLeaseRig(t, time.Second)
	r.armLeases()
	rep := r.read(1, 1, 0, true, app.EncodeGet("missing"))
	if rep == nil || !rep.OK {
		t.Fatalf("leased linearizable read refused: %+v", rep)
	}
	if string(rep.Result) != "NOTFOUND" {
		t.Fatalf("read result = %q, want NOTFOUND", rep.Result)
	}
	if got := r.codes[1].localReads.Load(); got != 1 {
		t.Fatalf("localReads = %d, want 1", got)
	}
	if r.counter.LeaseGrants() == 0 {
		t.Fatal("counter recorded no lease grants")
	}
}

// TestLeaselessReadRefused: without a lease the Execution compartment must
// answer with an explicit refusal (so the client falls back immediately),
// not a result.
func TestLeaselessReadRefused(t *testing.T) {
	r := newLeaseRig(t, time.Second)
	rep := r.read(2, 1, 0, false, app.EncodeGet("k"))
	if rep == nil {
		t.Fatal("expected an explicit refusal reply, got silence")
	}
	if rep.OK {
		t.Fatal("leaseless replica served a local read")
	}
}

// TestProbeGrantNotServable: a probe grant is a reachability check, not a
// lease — a holder that installed nothing but probes must refuse reads in
// both consistency modes.
func TestProbeGrantNotServable(t *testing.T) {
	r := newLeaseRig(t, time.Second)
	probes := r.grants()
	if !probes[1].Probe {
		t.Fatal("first grant round is not probe-only")
	}
	r.deliver(1, probes[1])
	if rep := r.read(1, 1, 0, false, app.EncodeGet("k")); rep == nil || rep.OK {
		t.Fatalf("probe grant served a session read: %+v", rep)
	}
	if rep := r.read(1, 2, 0, true, app.EncodeGet("k")); rep == nil || rep.OK {
		t.Fatalf("probe grant served a linearizable read: %+v", rep)
	}
}

// TestGrantsProbeUntilAckQuorum: real grants require 2f+1 fresh holder
// acks — with fewer, every round stays probe-only. This is the fence that
// stops a primary partitioned with a minority from keeping its holders'
// leases alive forever.
func TestGrantsProbeUntilAckQuorum(t *testing.T) {
	r := newLeaseRig(t, time.Second)
	probes := r.grants()
	// Two acks: one short of the 2f+1 = 3 quorum.
	for holder := uint32(0); holder < 2; holder++ {
		ack := r.deliver(holder, probes[holder])
		if ack == nil {
			t.Fatalf("holder %d did not ack", holder)
		}
		if round := r.feedAck(ack); len(round) != 0 {
			t.Fatalf("grant round issued below ack quorum (after %d acks)", holder+1)
		}
	}
	// The third ack completes the quorum: the arming round must follow at
	// once, and it must be servable.
	ack := r.deliver(2, probes[2])
	round := r.feedAck(ack)
	if len(round) != r.n {
		t.Fatalf("quorum-completing ack triggered %d grants, want %d", len(round), r.n)
	}
	if round[1].Probe {
		t.Fatal("post-quorum grant round is still probe-only")
	}
}

// TestLeaseAckReplayRejected: a replayed ack must not count toward the
// quorum — each holder's record is monotonic in the echoed round nonce, so
// the broker (or a Byzantine peer) cannot simulate reachability by
// repeating one holder's ack.
func TestLeaseAckReplayRejected(t *testing.T) {
	r := newLeaseRig(t, time.Second)
	probes := r.grants()
	ack0 := r.deliver(0, probes[0])
	ack1 := r.deliver(1, probes[1])
	r.feedAck(ack0)
	r.feedAck(ack1)
	// Replays of both recorded acks: still only two distinct holders.
	if round := r.feedAck(ack0); len(round) != 0 {
		t.Fatal("replayed ack triggered a grant round")
	}
	if round := r.feedAck(ack1); len(round) != 0 {
		t.Fatal("replayed ack triggered a grant round")
	}
	if r.prepCode.acksFresh(time.Now()) {
		t.Fatal("two holders plus replays counted as an ack quorum")
	}
	// A genuine third holder completes it.
	if round := r.feedAck(r.deliver(2, probes[2])); len(round) == 0 {
		t.Fatal("third distinct ack did not complete the quorum")
	}
}

// TestLeaseWrongHolderIgnored: a grant addressed to another replica must
// not arm the fast path.
func TestLeaseWrongHolderIgnored(t *testing.T) {
	r := newLeaseRig(t, time.Second)
	grants := r.grants()
	if ack := r.deliver(2, grants[1]); ack != nil { // replica 2 gets replica 1's grant
		t.Fatal("misaddressed grant was acknowledged")
	}
	if rep := r.read(2, 1, 0, false, app.EncodeGet("k")); rep == nil || rep.OK {
		t.Fatalf("misaddressed grant armed the fast path: %+v", rep)
	}
}

// TestLeaseForgedSignatureRejected: a lease whose counter signature does
// not verify must be dropped — the broker relays grants, so a corrupt or
// malicious environment can tamper with them. Flipping the probe flag is
// the most dangerous forgery (it would turn a reachability probe into a
// servable lease), so it is covered explicitly.
func TestLeaseForgedSignatureRejected(t *testing.T) {
	r := newLeaseRig(t, time.Second)
	grants := r.grants()
	g := *grants[1]
	g.AnchorSeq++ // payload no longer matches the signature
	if ack := r.deliver(1, &g); ack != nil {
		t.Fatal("forged lease was acknowledged")
	}
	probe := *grants[1]
	probe.Probe = false // probe laundered into a servable lease
	if ack := r.deliver(1, &probe); ack != nil {
		t.Fatal("probe-flag forgery was acknowledged")
	}
	if rep := r.read(1, 1, 0, false, app.EncodeGet("k")); rep == nil || rep.OK {
		t.Fatalf("forged lease served a local read: %+v", rep)
	}
}

// TestLeaseExpiryFailsClosed: after the TTL passes, the ex-leaseholder —
// think of it as partitioned away from the primary, missing every renewal
// — must refuse local reads in both consistency modes.
func TestLeaseExpiryFailsClosed(t *testing.T) {
	ttl := 80 * time.Millisecond
	r := newLeaseRig(t, ttl)
	r.armLeases()
	if rep := r.read(1, 1, 0, true, app.EncodeGet("k")); rep == nil || !rep.OK {
		t.Fatalf("fresh lease refused: %+v", rep)
	}
	time.Sleep(ttl + 20*time.Millisecond)
	if rep := r.read(1, 2, 0, true, app.EncodeGet("k")); rep == nil || rep.OK {
		t.Fatal("expired lease served a linearizable read")
	}
	if rep := r.read(1, 3, 0, false, app.EncodeGet("k")); rep == nil || rep.OK {
		t.Fatal("expired lease served a session read")
	}
}

// TestLeaseViewChangeRevokes: a lease from a deposed view must stop
// serving the moment the holder learns of the new view, well before its
// timer expires — the view-match revocation path.
func TestLeaseViewChangeRevokes(t *testing.T) {
	r := newLeaseRig(t, time.Second)
	r.armLeases()
	if rep := r.read(1, 1, 0, false, app.EncodeGet("k")); rep == nil || !rep.OK {
		t.Fatalf("fresh lease refused: %+v", rep)
	}
	// White-box: advance the compartment's view as an installed NewView
	// would (crafting a full valid NewView certificate is the view-change
	// tests' job); leaseValid must now refuse the view-0 lease.
	r.codes[1].view = 1
	if rep := r.read(1, 2, 0, false, app.EncodeGet("k")); rep == nil || rep.OK {
		t.Fatal("deposed view's lease served a local read")
	}
	if rep := r.read(1, 3, 0, true, app.EncodeGet("k")); rep == nil || rep.OK {
		t.Fatal("deposed view's lease served a linearizable read")
	}
}

// TestSessionReadHonorsWatermark: a session read carries the client's
// MinSeq watermark; a replica that has not applied that far must refuse —
// this is what makes the fast path read-your-writes.
func TestSessionReadHonorsWatermark(t *testing.T) {
	r := newLeaseRig(t, time.Second)
	r.armLeases()
	if rep := r.read(1, 1, 5, false, app.EncodeGet("k")); rep == nil || rep.OK {
		t.Fatal("lagging replica served a session read past its watermark")
	}
	if rep := r.read(1, 2, 0, false, app.EncodeGet("k")); rep == nil || !rep.OK {
		t.Fatalf("watermark-satisfying session read refused: %+v", rep)
	}
}

// TestLinearizableReadSeesPostGrantWrite is the stale-read regression the
// read-index confirmation exists for: a write proposed AFTER the holder's
// lease was granted must be observed by a later linearizable read, or the
// read must wait. Anchoring admission at grant time (the old AnchorSeq
// check) failed exactly this: the lease predates the write, so a lagging
// holder under a still-valid lease would serve the stale value.
func TestLinearizableReadSeesPostGrantWrite(t *testing.T) {
	r := newLeaseRig(t, time.Second)
	r.armLeases() // leases granted with nothing proposed yet

	// A write is proposed (and, on a quorum elsewhere, committed and acked)
	// after the grants went out. Holder 1 has not executed it.
	req := testRequest(r.secret, r.n, 7, 1, app.EncodePut("k", []byte("v")))
	if _, err := r.prep.Invoke(wrapBatch(&messages.Batch{Requests: []messages.Request{req}})); err != nil {
		t.Fatal(err)
	}

	// The linearizable read must NOT be served: the primary's frontier (1)
	// is ahead of the holder's applied index (0), so the read parks.
	if rep := r.read(1, 1, 0, true, app.EncodeGet("k")); rep != nil {
		t.Fatalf("linearizable read answered while behind the frontier: %+v", rep)
	}
	if got := len(r.codes[1].riPending); got != 1 {
		t.Fatalf("pending linearizable reads = %d, want 1", got)
	}

	// A session read (weaker contract, no cross-client recency) still
	// serves off the applied index.
	if rep := r.read(1, 2, 0, false, app.EncodeGet("k")); rep == nil || !rep.OK {
		t.Fatalf("session read refused on a replica behind the frontier: %+v", rep)
	}

	// Once the holder catches up past the frontier, the parked read is
	// served by the next flush (white-box: executing the slot for real is
	// the commit-path tests' job).
	r.codes[1].lastExec = 1
	r.apps[1].Execute(7, app.EncodePut("k", []byte("v")))
	out, err := r.execs[1].Invoke([]byte{ecallTick})
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := findMsg[*messages.ReadReply](t, out, tee.DestClient)
	if !ok || !rep.OK {
		t.Fatalf("caught-up holder did not serve the parked read: %+v", rep)
	}
	if string(rep.Result) != "v" {
		t.Fatalf("parked read returned %q, want the post-grant write %q", rep.Result, "v")
	}
	if got := len(r.codes[1].riPending); got != 0 {
		t.Fatalf("pending linearizable reads = %d after flush, want 0", got)
	}
}

// TestReadReplayDropped: a replayed (or timestamp-reordered) ReadRequest
// must be dropped before any MAC or application work — the replay guard
// that stops the broker from burning enclave CPU with one captured
// authenticated read.
func TestReadReplayDropped(t *testing.T) {
	r := newLeaseRig(t, time.Second)
	r.armLeases()
	if rep := r.read(1, 5, 0, false, app.EncodeGet("k")); rep == nil || !rep.OK {
		t.Fatalf("fresh read refused: %+v", rep)
	}
	if rep := r.read(1, 5, 0, false, app.EncodeGet("k")); rep != nil {
		t.Fatalf("replayed read was answered: %+v", rep)
	}
	if rep := r.read(1, 3, 0, false, app.EncodeGet("k")); rep != nil {
		t.Fatalf("stale-timestamp read was answered: %+v", rep)
	}
	if got := r.codes[1].localReads.Load(); got != 1 {
		t.Fatalf("localReads = %d, want 1 (replays must not serve)", got)
	}
}

// TestLeaseTTLClampedToDetectionPeriod: a lease must never outlive
// view-change detection, whatever the caller asked for — withDefaults
// clamps the TTL to RequestTimeout/4 (and defaults a zero TTL there).
func TestLeaseTTLClampedToDetectionPeriod(t *testing.T) {
	base := Config{RequestTimeout: 400 * time.Millisecond}
	if got := base.withDefaults().LeaseTTL; got != 100*time.Millisecond {
		t.Fatalf("default LeaseTTL = %v, want RequestTimeout/4 = 100ms", got)
	}
	base.LeaseTTL = 2 * time.Second // 5× the detection period: unsafe
	if got := base.withDefaults().LeaseTTL; got != 100*time.Millisecond {
		t.Fatalf("oversized LeaseTTL clamped to %v, want 100ms", got)
	}
	base.LeaseTTL = 20 * time.Millisecond // below the clamp: honored
	if got := base.withDefaults().LeaseTTL; got != 20*time.Millisecond {
		t.Fatalf("small LeaseTTL rewritten to %v, want 20ms", got)
	}
}

// TestNewPrimaryWriteFence: a primary taking over a lease-enabled
// deployment must not assign fresh proposals until every lease its
// predecessor could have kept alive has expired — otherwise a partitioned
// holder could serve a linearizable read missing a write the new view
// already acknowledged.
func TestNewPrimaryWriteFence(t *testing.T) {
	r := newLeaseRig(t, time.Second)
	cfg := Config{
		N: r.n, F: r.f, ID: 1,
		Registry: r.reg, MACSecret: r.secret, App: app.NewKVS(),
		ReadLeases: true, LeaseTTL: time.Second,
	}.withDefaults()
	code := newPreparation(cfg, r.ver, r.counter)
	enc, err := tee.NewEnclave(1, crypto.RolePreparation, code, tee.ZeroCostModel())
	if err != nil {
		t.Fatal(err)
	}
	r.reg.Register(enc.Identity(), enc.PublicKey())

	// White-box view install: replica 1 becomes the primary of view 1 (the
	// full NewView certificate path is the view-change tests' job).
	code.installView(1, messages.CheckpointCert{}, nil, 0)
	if code.leaseFence.IsZero() {
		t.Fatal("view install did not arm the write fence")
	}
	req := testRequest(r.secret, r.n, 7, 1, app.EncodePut("k", []byte("v")))
	out, err := enc.Invoke(wrapBatch(&messages.Batch{Requests: []messages.Request{req}}))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := scanMsg[*messages.PrePrepare](t, out); ok {
		t.Fatal("fenced new primary proposed a fresh batch")
	}
	if got := len(code.fenced); got != 1 {
		t.Fatalf("fenced batches parked = %d, want 1", got)
	}
	// Fence passed: the lease tick flushes the parked batch — no client
	// retransmission needed (that dependency would race the failure
	// detector into another view change).
	code.leaseFence = time.Now().Add(-time.Millisecond)
	out, err = enc.Invoke([]byte{ecallTick})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := scanMsg[*messages.PrePrepare](t, out); !ok {
		t.Fatal("lease tick did not flush the parked batch after the fence")
	}
	// And fresh batches flow directly again.
	req2 := testRequest(r.secret, r.n, 7, 2, app.EncodePut("k", []byte("w")))
	out, err = enc.Invoke(wrapBatch(&messages.Batch{Requests: []messages.Request{req2}}))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := scanMsg[*messages.PrePrepare](t, out); !ok {
		t.Fatal("post-fence proposal did not go out")
	}
}

// TestReadsBypassReplyCache is the reply-cache regression: local reads are
// side-effect-free and single-shot, so they must never populate the
// exactly-once client bookkeeping the write path maintains — a read-heavy
// client would otherwise bloat enclave memory with useless entries.
func TestReadsBypassReplyCache(t *testing.T) {
	r := newLeaseRig(t, time.Second)
	r.armLeases()
	for ts := uint64(1); ts <= 64; ts++ {
		// Keep the lease renewed across the loop — the TTL is clamped to
		// RequestTimeout/4, which a 64-read loop can outlive under -race.
		r.renew()
		if rep := r.read(1, ts, 0, true, app.EncodeGet("k")); rep == nil || !rep.OK {
			t.Fatalf("read %d refused: %+v", ts, rep)
		}
	}
	if got := len(r.codes[1].clients); got != 0 {
		t.Fatalf("reply cache holds %d client entries after a read-only run, want 0", got)
	}
	if got := r.codes[1].localReads.Load(); got != 64 {
		t.Fatalf("localReads = %d, want 64", got)
	}
}
