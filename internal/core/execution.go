package core

import (
	"sort"
	"sync/atomic"
	"time"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/client"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/tee"
)

// execReplyWindow bounds the per-client reply cache; it must exceed the
// maximum outstanding requests per client (40 in the paper's batched
// configuration).
const execReplyWindow = 128

// execClient is the per-client exactly-once bookkeeping inside the
// Execution enclave. A window of recent replies is cached per timestamp:
// with many outstanding requests per client, batches execute a client's
// timestamps out of order, so a single highest-timestamp check would
// silently drop requests.
type execClient struct {
	maxExecuted uint64
	replies     map[uint64]*messages.Reply
}

// executed reports whether ts was already executed, returning the cached
// reply when still held.
func (e *execClient) executed(ts uint64) (*messages.Reply, bool) {
	if rep, ok := e.replies[ts]; ok {
		return rep, true
	}
	if e.maxExecuted >= execReplyWindow && ts <= e.maxExecuted-execReplyWindow {
		return nil, true
	}
	return nil, false
}

// record stores a reply and prunes the cache window.
func (e *execClient) record(ts uint64, rep *messages.Reply) {
	if e.replies == nil {
		e.replies = make(map[uint64]*messages.Reply)
	}
	e.replies[ts] = rep
	if ts > e.maxExecuted {
		e.maxExecuted = ts
	}
	if len(e.replies) > 2*execReplyWindow {
		for old := range e.replies {
			if e.maxExecuted >= execReplyWindow && old <= e.maxExecuted-execReplyWindow {
				delete(e.replies, old)
			}
		}
	}
}

// execution is the Execution compartment (§3.2): it collects a quorum of
// Commits (event handler 4), executes authenticated requests against the
// application state it hosts, replies to clients, and originates
// Checkpoints (8). In confidential mode it is the only component that ever
// sees request/reply plaintext: payloads are decrypted after the commit
// certificate is verified and results are encrypted before they leave the
// enclave (opportunity o3).
type execution struct {
	comState
	macs         *crypto.MACStore
	confidential bool
	ckptInterval uint64
	app          app.Application

	// batches caches request bodies by batch digest: PrePrepares are
	// duplicated into this compartment precisely because Commits carry
	// only hashes (§3.2). batchSeq records the highest sequence a digest
	// was proposed at, for watermark-based eviction.
	batches  map[crypto.Digest]*messages.Batch
	batchSeq map[crypto.Digest]uint64
	commits  map[uint64]map[uint64]map[uint32]*messages.Commit // view → seq → sender
	// committed maps a sequence number to its decided digest (first valid
	// commit certificate wins; safety guarantees uniqueness).
	committed map[uint64]crypto.Digest
	lastExec  uint64

	clients    map[uint32]*execClient
	sessions   map[uint32]*crypto.Session
	clientPubs map[uint32][32]byte
	// sessionKeys mirrors sessions with the raw key material so sealed
	// state exports can reconstruct the sessions after a restart (the
	// AEAD inside crypto.Session is not serializable).
	sessionKeys map[uint32]crypto.SessionKey

	snapshots map[uint64][]byte
	// probing/probesLeft drive the rejoin nudge: while armed (set by
	// finishRecovery after a restart), every environment tick broadcasts a
	// StateProbe so peers whose stable checkpoint is ahead push the gap
	// closed even when no protocol traffic flows (the idle-cluster rejoin
	// case). Probing disarms when a state transfer lands or the budget
	// runs out — a recovered replica that was never behind stops nudging
	// after probeBudget unanswered rounds.
	probing    bool
	probesLeft int

	// Read-lease state (ReadLeases deployments). lease is the verified
	// grant currently held — deliberately NOT part of the sealed persistent
	// state: a restarted replica comes back leaseless and refuses local
	// reads (fail-closed) until the primary re-grants. leaseMargin is the
	// near-expiry refusal margin, the clock-skew allowance: this replica
	// stops serving that long before the nominal expiry, so a primary and
	// holder whose clocks disagree by less than the margin never disagree
	// about whether a lease was live.
	leases      bool
	lease       *messages.LeaseGrant
	leaseMargin time.Duration
	clock       *SkewClock
	localReads  atomic.Uint64
	// Protocol-event counters the observability layer reads from the
	// untrusted side (the localReads pattern): plain atomics, never part
	// of the sealed persistent state, safe for the environment to read
	// while the protocol thread writes.
	evLeaseRefusals  atomic.Uint64
	evReadIndexes    atomic.Uint64
	evStallFetches   atomic.Uint64
	evProbesSent     atomic.Uint64
	evProbesAnswered atomic.Uint64
	// readHigh tracks, per client, the highest ReadRequest timestamp already
	// accepted past MAC verification. Clients never reuse a read timestamp,
	// so anything at or below the watermark is a replay (or stale
	// retransmit): it is dropped before any MAC, AEAD or application work —
	// a replayed authenticated read must not burn enclave CPU forever.
	readHigh map[uint32]uint64

	// Read-index confirmation state (linearizable reads). A linearizable
	// read is never served off lease state alone: the holder first asks the
	// primary's Preparation compartment for its proposal frontier with a
	// ReadIndex query sent AFTER the read arrived. Any write acknowledged to
	// any client before the query was proposed at or below that frontier, so
	// once lastExec covers it the read observes every prior acked write.
	// Queries are batched by epoch: one query is in flight at a time, reads
	// arriving meanwhile wait for the next epoch (their frontier must be
	// sampled after their arrival).
	riPending []pendingRead
	// riSentEpoch is the epoch of the last query sent; riInFlight whether
	// its reply is still outstanding.
	riSentEpoch uint64
	riInFlight  bool
	// riAckedEpoch/riAckedFrontier are the newest confirmed epoch and its
	// frontier. The frontier only grows within a view (nextSeq is
	// monotonic), so serving older epochs against the newest frontier is
	// conservative, never unsound.
	riAckedEpoch    uint64
	riAckedFrontier uint64

	// stallSeq/stallTicks drive the missing-body retransmission trigger:
	// when execution blocks on a committed slot whose body is absent,
	// every further ecall ticks the counter, and a fetch goes out each
	// time it crosses the threshold. Commits legitimately overtake their
	// PrePrepare in the input queue all the time — eager fetching on
	// first sight would flood peers with full-body replies for gaps that
	// resolve by themselves a few queue positions later; and the periodic
	// re-fetch (rather than a one-shot) means a request or reply lost to
	// a partition is simply retried under the next burst of traffic.
	stallSeq   uint64
	stallTicks int
}

// missingBodyFetchAfter is how many subsequent ecalls a committed slot may
// stay blocked on a missing body before a BatchFetch goes out (and between
// re-sends while it stays blocked). Transient queue reordering resolves
// well below it; a genuinely lost body (e.g. committed from a recovered
// WAL whose PrePrepare fell in the un-fsynced tail) crosses it as soon as
// any traffic flows.
const missingBodyFetchAfter = 32

// pendingRead is a linearizable read parked until its read-index epoch is
// confirmed and applied. seenTick ages it out: a read still pending after a
// full failure-detector period is refused — its client has long since
// fallen back to the agreement path.
type pendingRead struct {
	req      *messages.ReadRequest
	epoch    uint64
	seenTick bool
}

// riPendingMax bounds the pending-read queue; admission past it refuses
// immediately (the client falls back to agreement, losing only latency).
const riPendingMax = 4096

// probeBudget bounds how many environment ticks a recovered replica
// broadcasts StateProbes for. Peers answer only while actually ahead, so
// a replica that recovered fully current drains the budget quietly; a
// genuinely behind one is answered on the first delivered probe, and if
// every probe is lost the ordinary traffic-driven checkpoint/state-
// transfer path still covers the gap — probing is a nudge, not the only
// mechanism.
const probeBudget = 32

func newExecution(cfg Config, ver *messages.Verifier) *execution {
	e := &execution{
		comState: newComState(cfg.N, cfg.F, cfg.ID, cfg.WatermarkWindow, ver),
		macs: crypto.NewMACStore(cfg.MACSecret,
			crypto.Identity{ReplicaID: cfg.ID, Role: crypto.RoleExecution}),
		confidential: cfg.Confidential,
		ckptInterval: cfg.CheckpointInterval,
		app:          cfg.App,
		leases:       cfg.ReadLeases,
		leaseMargin:  cfg.LeaseTTL / 8,
		clock:        cfg.Clock,
		batches:      make(map[crypto.Digest]*messages.Batch),
		batchSeq:     make(map[crypto.Digest]uint64),
		commits:      make(map[uint64]map[uint64]map[uint32]*messages.Commit),
		committed:    make(map[uint64]crypto.Digest),
		clients:      make(map[uint32]*execClient),
		sessions:     make(map[uint32]*crypto.Session),
		clientPubs:   make(map[uint32][32]byte),
		sessionKeys:  make(map[uint32]crypto.SessionKey),
		snapshots:    make(map[uint64][]byte),
		readHigh:     make(map[uint32]uint64),
	}
	e.snapshots[0] = e.snapshotState()
	return e
}

// snapshotState builds the checkpoint snapshot: the application state
// wrapped with the exactly-once skip state of the reply caches (client
// IDs, executed-timestamp high-water marks and the cached timestamp
// window). Checkpoint digests are compared across replicas, so the
// encoding is canonical (sorted) and carries no reply bodies — those
// differ per replica (Replica field, MAC). Without this state a replica
// that catches up by state transfer would re-execute a client request
// that the primary re-ordered after a retransmit, forking its history
// from replicas whose warm caches skip the duplicate.
func (e *execution) snapshotState() []byte {
	enc := messages.NewEncoder(256)
	ids := make([]uint32, 0, len(e.clients))
	for id := range e.clients {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	enc.U32(uint32(len(ids)))
	for _, id := range ids {
		cl := e.clients[id]
		enc.U32(id)
		enc.U64(cl.maxExecuted)
		tss := make([]uint64, 0, len(cl.replies))
		for ts := range cl.replies {
			tss = append(tss, ts)
		}
		sort.Slice(tss, func(i, j int) bool { return tss[i] < tss[j] })
		enc.U32(uint32(len(tss)))
		for _, ts := range tss {
			enc.U64(ts)
		}
	}
	enc.VarBytes(e.app.Snapshot())
	return enc.Bytes()
}

// restoreState installs a checkpoint snapshot produced by snapshotState:
// the application state plus the reply-cache skip state. Skip entries are
// merged into (never replace) the live caches — every restored timestamp
// was executed in the history the snapshot covers, so skipping it can only
// be correct; existing entries keep their reply bodies for resends.
// Restored entries without a body cause duplicates to be skipped silently,
// which is safe: ordering already happened, and live replicas answer the
// retransmit from their caches.
func (e *execution) restoreState(snap []byte) error {
	d := messages.NewDecoder(snap)
	type skipState struct {
		maxExecuted uint64
		timestamps  []uint64
	}
	restored := make(map[uint32]skipState)
	n := d.Count(1 << 20)
	for i := 0; i < n; i++ {
		id := d.U32()
		st := skipState{maxExecuted: d.U64()}
		m := d.Count(1 << 20)
		for j := 0; j < m; j++ {
			st.timestamps = append(st.timestamps, d.U64())
		}
		restored[id] = st
	}
	appState := d.VarBytes()
	if err := d.Finish(); err != nil {
		return err
	}
	if err := e.app.Restore(appState); err != nil {
		return err
	}
	for id, st := range restored {
		cl, ok := e.clients[id]
		if !ok {
			cl = &execClient{}
			e.clients[id] = cl
		}
		if st.maxExecuted > cl.maxExecuted {
			cl.maxExecuted = st.maxExecuted
		}
		for _, ts := range st.timestamps {
			if cl.replies == nil {
				cl.replies = make(map[uint64]*messages.Reply)
			}
			if _, have := cl.replies[ts]; !have {
				cl.replies[ts] = nil
			}
		}
	}
	return nil
}

// Measurement implements tee.Code.
func (e *execution) Measurement() crypto.Digest { return measExecution }

// Preprocess implements tee.Preprocessor (see preparation.Preprocess).
func (e *execution) Preprocess(_ tee.Host, raw []byte) { prevalidate(e.ver, raw) }

// HandleECall implements tee.Code.
func (e *execution) HandleECall(host tee.Host, raw []byte) []tee.OutMsg {
	if len(raw) == 1 && raw[0] == ecallTick {
		// Environment timer tick: no message, just the liveness nudges.
		out := e.onProbeTick()
		if more := e.tickStall(); more != nil {
			out = append(out, more...)
		}
		return append(out, e.onReadTick(host)...)
	}
	out := e.handleMessage(host, raw)
	if more := e.tickStall(); more != nil {
		out = append(out, more...)
	}
	if len(e.riPending) > 0 {
		// Any message may have advanced lastExec past a confirmed frontier:
		// serve what became servable.
		out = append(out, e.flushReads()...)
	}
	return out
}

func (e *execution) handleMessage(host tee.Host, raw []byte) []tee.OutMsg {
	if len(raw) == 0 || raw[0] != ecallMessage {
		return nil
	}
	m, err := messages.Unmarshal(raw[1:])
	if err != nil {
		return nil
	}
	switch msg := m.(type) {
	case *messages.PrePrepare:
		return e.onPrePrepare(host, msg)
	case *messages.Commit:
		return e.onCommit(host, msg)
	case *messages.Checkpoint:
		return e.onCheckpointMsg(host, msg)
	case *messages.NewView:
		return e.onNewView(host, msg)
	case *messages.AttestRequest:
		return e.onAttestRequest(host, msg)
	case *messages.ProvisionKey:
		e.onProvisionKey(host, msg)
	case *messages.StateRequest:
		return e.onStateRequest(msg)
	case *messages.StateReply:
		return e.onStateReply(host, msg)
	case *messages.BatchFetch:
		return e.onBatchFetch(msg)
	case *messages.BatchReply:
		return e.onBatchReply(host, msg)
	case *messages.StateProbe:
		return e.onStateProbe(msg)
	case *messages.LeaseGrant:
		return e.onLeaseGrant(host, msg)
	case *messages.ReadRequest:
		return e.onReadRequest(host, msg)
	case *messages.ReadIndexReply:
		return e.onReadIndexReply(host, msg)
	}
	return nil
}

// onLeaseGrant acknowledges and (for non-probe grants) installs a verified
// read lease addressed to this replica. Grants carry the counter enclave's
// signature, so the untrusted broker cannot mint one; grants for any view
// but the compartment's current one are dead on arrival — neither acked
// nor installed — which is what makes a quorum of acks a proof that the
// granter is the primary of the view 2f+1 Execution compartments actually
// inhabit. A replayed old grant is rejected by the freshness comparison
// (it can only lower the expiry), and its ack cannot refresh the granter's
// reachability record (the echoed expiry is monotonically tracked there).
func (e *execution) onLeaseGrant(host tee.Host, g *messages.LeaseGrant) []tee.OutMsg {
	if !e.leases || g.Holder != e.id {
		return nil
	}
	if err := e.ver.VerifyLease(g); err != nil {
		return nil
	}
	if g.View != e.view {
		return nil
	}
	// Ack every verified current-view grant, probe or real, echoing its
	// expiry as the round nonce: the granter needs a quorum of fresh acks
	// before it may issue servable (non-probe) grants.
	ack := &messages.LeaseAck{Holder: e.id, View: g.View, Expiry: g.Expiry}
	ack.Sig, ack.Auth = e.authenticate(host, messages.TLeaseAck, ack.SigningBytes())
	var out []tee.OutMsg
	if g.Granter == e.id {
		out = append(out, localOut(crypto.RolePreparation, ack))
	} else if int(g.Granter) < e.n {
		out = append(out, replicaOut(g.Granter, ack))
	}
	if g.Probe {
		return out // reachability probe: acknowledged, never installed
	}
	if cur := e.lease; cur != nil && cur.View == g.View && g.Expiry <= cur.Expiry {
		return out // stale or duplicate grant
	}
	e.lease = g
	return out
}

// leaseValid reports whether the held lease authorizes serving local reads
// right now: it must exist, match the compartment's current view (a view
// change revokes every outstanding lease instantly on correct replicas),
// and be more than the clock-skew margin away from expiry. Fail-closed on
// every branch — a refusal only pushes the client onto the agreement path.
func (e *execution) leaseValid(now time.Time) bool {
	g := e.lease
	if g == nil || g.View != e.view {
		return false
	}
	return now.UnixNano()+int64(e.leaseMargin) < g.Expiry
}

// onReadRequest admits a read under the held lease — the whole point of
// the lease fast path: no PrePrepare, no quorum, one attested reply.
// Session reads are answered immediately off the applied index; a
// linearizable read is parked until a read-index frontier sampled after
// its arrival is confirmed and applied. Refusals are explicit (OK=false)
// so the client falls back to agreement immediately. The reply cache
// (execClient) is deliberately untouched: leased reads are
// side-effect-free and unordered, so caching them would pollute the
// exactly-once bookkeeping of the write path.
func (e *execution) onReadRequest(host tee.Host, r *messages.ReadRequest) []tee.OutMsg {
	if !e.leases {
		return nil
	}
	if r.Timestamp <= e.readHigh[r.ClientID] {
		// Replay (or stale retransmit): clients never reuse a read
		// timestamp, so drop before any MAC, AEAD or application work.
		return nil
	}
	clientID := crypto.Identity{ReplicaID: r.ClientID, Role: crypto.RoleClient}
	if err := e.macs.VerifySingle(r.AuthenticatedBytes(), r.MAC, clientID); err != nil {
		return nil // unauthenticated: drop, like any forged client traffic
	}
	e.readHigh[r.ClientID] = r.Timestamp
	if r.Linearizable {
		return e.admitLinearizableRead(host, r)
	}
	return []tee.OutMsg{e.answerRead(r)}
}

// answerRead runs the serve checks and builds the (served or refused)
// ReadReply for r.
func (e *execution) answerRead(r *messages.ReadRequest) tee.OutMsg {
	rep := &messages.ReadReply{
		Replica:    e.id,
		ClientID:   r.ClientID,
		Timestamp:  r.Timestamp,
		View:       e.view,
		AppliedSeq: e.lastExec,
	}
	if result, ok := e.serveLocalRead(r); ok {
		rep.OK = true
		rep.Result = result
		e.localReads.Add(1)
	}
	clientID := crypto.Identity{ReplicaID: r.ClientID, Role: crypto.RoleClient}
	rep.MAC = e.macs.MAC(rep.AuthenticatedBytes(), clientID)
	return clientOut(r.ClientID, rep)
}

// refuseRead builds an explicit OK=false reply: the client's signal to
// take the agreement path.
func (e *execution) refuseRead(r *messages.ReadRequest) tee.OutMsg {
	e.evLeaseRefusals.Add(1)
	rep := &messages.ReadReply{
		Replica:    e.id,
		ClientID:   r.ClientID,
		Timestamp:  r.Timestamp,
		View:       e.view,
		AppliedSeq: e.lastExec,
	}
	rep.MAC = e.macs.MAC(rep.AuthenticatedBytes(),
		crypto.Identity{ReplicaID: r.ClientID, Role: crypto.RoleClient})
	return clientOut(r.ClientID, rep)
}

// admitLinearizableRead parks a linearizable read behind a read-index
// confirmation. The read's epoch names the first query sent at or after
// its arrival: if no query is in flight one goes out now; otherwise the
// read waits for the round after the in-flight one — the in-flight query
// was sent before this read arrived, so its frontier could miss a write
// acked in between (exactly the stale-read hazard of anchoring reads at
// grant time).
func (e *execution) admitLinearizableRead(host tee.Host, r *messages.ReadRequest) []tee.OutMsg {
	if _, ok := e.app.(app.ReadExecutor); !ok {
		return []tee.OutMsg{e.refuseRead(r)}
	}
	if !e.leaseValid(e.clock.Now()) || len(e.riPending) >= riPendingMax {
		return []tee.OutMsg{e.refuseRead(r)}
	}
	var out []tee.OutMsg
	epoch := e.riSentEpoch + 1
	if !e.riInFlight {
		e.riSentEpoch = epoch
		e.riInFlight = true
		out = append(out, e.sendReadIndex(host))
	}
	e.riPending = append(e.riPending, pendingRead{req: r, epoch: epoch})
	return out
}

// sendReadIndex (re)transmits the current epoch's frontier query to the
// primary's Preparation compartment.
func (e *execution) sendReadIndex(host tee.Host) tee.OutMsg {
	e.evReadIndexes.Add(1)
	ri := &messages.ReadIndex{Holder: e.id, View: e.view, Epoch: e.riSentEpoch}
	ri.Sig, ri.Auth = e.authenticate(host, messages.TReadIndex, ri.SigningBytes())
	if p := e.primary(e.view); p != e.id {
		return replicaOut(p, ri)
	}
	return localOut(crypto.RolePreparation, ri)
}

// onReadIndexReply confirms a frontier for the in-flight epoch, serves
// everything it unblocks, and starts the next round if reads arrived while
// the query was out.
func (e *execution) onReadIndexReply(host tee.Host, rep *messages.ReadIndexReply) []tee.OutMsg {
	if !e.leases || rep.View != e.view || !e.riInFlight || rep.Epoch != e.riSentEpoch {
		return nil
	}
	if err := e.ver.VerifyReadIndexReply(rep); err != nil {
		return nil
	}
	e.riInFlight = false
	e.riAckedEpoch = rep.Epoch
	e.riAckedFrontier = rep.Frontier
	out := e.flushReads()
	for _, pr := range e.riPending {
		if pr.epoch > e.riAckedEpoch {
			e.riSentEpoch++
			e.riInFlight = true
			out = append(out, e.sendReadIndex(host))
			break
		}
	}
	return out
}

// flushReads settles every pending linearizable read whose outcome is now
// decided: refuse all of them the moment the lease stops being valid
// (fail-closed — the client falls back to agreement), serve those whose
// confirmed frontier is applied.
func (e *execution) flushReads() []tee.OutMsg {
	if len(e.riPending) == 0 {
		return nil
	}
	valid := e.leaseValid(e.clock.Now())
	var out []tee.OutMsg
	keep := e.riPending[:0]
	for _, pr := range e.riPending {
		switch {
		case !valid:
			out = append(out, e.refuseRead(pr.req))
		case pr.epoch <= e.riAckedEpoch && e.lastExec >= e.riAckedFrontier:
			out = append(out, e.answerRead(pr.req))
		default:
			keep = append(keep, pr)
		}
	}
	for i := len(keep); i < len(e.riPending); i++ {
		e.riPending[i] = pendingRead{} // drop refs for GC
	}
	e.riPending = keep
	return out
}

// onReadTick runs read-path maintenance on the environment's
// failure-detector tick: settle what the clock decided, age out reads
// whose client has long since fallen back (anything pending a full
// detector period), and retransmit a lost frontier query.
func (e *execution) onReadTick(host tee.Host) []tee.OutMsg {
	if !e.leases {
		return nil
	}
	out := e.flushReads()
	keep := e.riPending[:0]
	for i := range e.riPending {
		pr := e.riPending[i]
		if pr.seenTick {
			out = append(out, e.refuseRead(pr.req))
			continue
		}
		pr.seenTick = true
		keep = append(keep, pr)
	}
	for i := len(keep); i < len(e.riPending); i++ {
		e.riPending[i] = pendingRead{}
	}
	e.riPending = keep
	if e.riInFlight && len(e.riPending) > 0 {
		out = append(out, e.sendReadIndex(host))
	}
	return out
}

// serveLocalRead runs the admission checks and, when they pass, executes
// the read against the application without ordering it. Admission:
//
//   - the application must expose a side-effect-free read path
//     (app.ReadExecutor) — anything else must be ordered;
//   - the lease must be valid at serve time (view match, not near expiry);
//   - the applied index must cover the client's session watermark
//     (read-your-writes + monotonic reads). Linearizable reads carry an
//     additional admission — a read-index frontier confirmed after arrival
//     and applied — enforced by the pending-read machinery before this
//     function runs.
func (e *execution) serveLocalRead(r *messages.ReadRequest) ([]byte, bool) {
	ra, ok := e.app.(app.ReadExecutor)
	if !ok {
		return nil, false
	}
	if !e.leaseValid(e.clock.Now()) {
		return nil, false
	}
	if e.lastExec < r.MinSeq {
		return nil, false
	}
	op := r.Payload
	var sess *crypto.Session
	if e.confidential {
		sess, ok = e.sessions[r.ClientID]
		if !ok {
			return nil, false
		}
		pt, err := sess.Open(r.Payload, client.RequestAD(r.ClientID, r.Timestamp))
		if err != nil {
			return nil, false
		}
		op = pt
	}
	result, ok := ra.ExecuteRead(r.ClientID, op)
	if !ok {
		return nil, false // not a read-only op: it must go through agreement
	}
	if e.confidential {
		result = sess.Seal(result, client.ReplyAD(r.ClientID, r.Timestamp))
	}
	return result, true
}

// onPrePrepare caches the full request bodies for later execution.
func (e *execution) onPrePrepare(host tee.Host, pp *messages.PrePrepare) []tee.OutMsg {
	if !e.inWindow(pp.Seq) {
		return nil
	}
	if err := e.ver.VerifyPrePrepare(pp, true); err != nil {
		return nil
	}
	if _, dup := e.batches[pp.Digest]; !dup {
		b := pp.Batch
		e.batches[pp.Digest] = &b
	}
	if pp.Seq > e.batchSeq[pp.Digest] {
		e.batchSeq[pp.Digest] = pp.Seq
	}
	return e.tryExecute(host)
}

// onCommit is event handler (4): collect 2f+1 matching Commits from
// distinct Confirmation enclaves (P5), then execute in order.
func (e *execution) onCommit(host tee.Host, c *messages.Commit) []tee.OutMsg {
	if !e.inWindow(c.Seq) || c.Seq <= e.lastExec {
		return nil
	}
	if _, done := e.committed[c.Seq]; done {
		return nil
	}
	if err := e.ver.VerifyCommit(c); err != nil {
		return nil
	}
	vs, ok := e.commits[c.View]
	if !ok {
		vs = make(map[uint64]map[uint32]*messages.Commit)
		e.commits[c.View] = vs
	}
	set, ok := vs[c.Seq]
	if !ok {
		set = make(map[uint32]*messages.Commit)
		vs[c.Seq] = set
	}
	if _, dup := set[c.Replica]; dup {
		return nil
	}
	set[c.Replica] = c
	matching := 0
	for _, cm := range set {
		if cm.Digest == c.Digest {
			matching++
		}
	}
	if matching < e.quorum() {
		return nil
	}
	e.committed[c.Seq] = c.Digest
	delete(vs, c.Seq)
	return e.tryExecute(host)
}

// tryExecute executes committed batches strictly in sequence order,
// producing replies and periodic checkpoints.
func (e *execution) tryExecute(host tee.Host) []tee.OutMsg {
	var out []tee.OutMsg
	for {
		next := e.lastExec + 1
		if next <= e.lowWatermark {
			return out // covered by a stable checkpoint; state transfer
		}
		digest, ok := e.committed[next]
		if !ok {
			return out
		}
		if digest.IsZero() {
			// Null request from a view change: advance without effect.
			delete(e.committed, next)
			e.lastExec = next
			out = append(out, e.maybeCheckpoint(host, next)...)
			continue
		}
		batch, ok := e.batches[digest]
		if !ok {
			// The body never arrived (lost PrePrepare, or it committed
			// while this replica was down): arm the stall detector —
			// tickStall asks peers to retransmit the gap if the slot
			// stays blocked, instead of waiting for the next checkpoint
			// to trigger state transfer.
			if e.stallSeq != next {
				e.stallSeq = next
				e.stallTicks = 0
			}
			return out
		}
		delete(e.committed, next)
		e.lastExec = next
		out = append(out, e.executeBatch(host, batch)...)
		out = append(out, e.maybeCheckpoint(host, next)...)
	}
}

// executeBatch authenticates, decrypts, executes and answers every request
// in a batch.
func (e *execution) executeBatch(host tee.Host, batch *messages.Batch) []tee.OutMsg {
	out := make([]tee.OutMsg, 0, len(batch.Requests))
	for i := range batch.Requests {
		req := &batch.Requests[i]
		entry, ok := e.clients[req.ClientID]
		if !ok {
			entry = &execClient{}
			e.clients[req.ClientID] = entry
		}
		if rep, done := entry.executed(req.Timestamp); done {
			if rep != nil {
				out = append(out, clientOut(req.ClientID, rep))
			}
			continue
		}
		result := e.executeOne(req)
		rep := &messages.Reply{
			View:      e.view,
			ClientID:  req.ClientID,
			Timestamp: req.Timestamp,
			Replica:   e.id,
			Seq:       e.lastExec,
			Result:    result,
		}
		rep.MAC = e.macs.MAC(rep.AuthenticatedBytes(),
			crypto.Identity{ReplicaID: req.ClientID, Role: crypto.RoleClient})
		entry.record(req.Timestamp, rep)
		out = append(out, clientOut(req.ClientID, rep))
	}
	_ = host
	return out
}

// executeOne runs a single request: MAC check, decryption, application
// execution, and reply encryption. Every failure path degrades to a no-op
// result (§4.1) — ordering already happened, so the slot must advance.
func (e *execution) executeOne(req *messages.Request) []byte {
	clientID := crypto.Identity{ReplicaID: req.ClientID, Role: crypto.RoleClient}
	slot := e.n + int(e.id) // Execution MACs follow the Preparation block
	enc := messages.GetEncoder()
	req.AppendAuthenticated(enc)
	err := e.macs.VerifyIndexed(enc.Bytes(), req.Auth, slot, clientID)
	messages.PutEncoder(enc)
	if err != nil {
		return app.NoOpResult
	}
	op := req.Payload
	var sess *crypto.Session
	if e.confidential {
		var ok bool
		sess, ok = e.sessions[req.ClientID]
		if !ok {
			return app.NoOpResult // no session: cannot decrypt, no-op
		}
		pt, err := sess.Open(req.Payload, client.RequestAD(req.ClientID, req.Timestamp))
		if err != nil {
			return app.NoOpResult // corrupted ciphertext: no-op
		}
		op = pt
	}
	result := e.app.Execute(req.ClientID, op)
	if e.confidential {
		result = sess.Seal(result, client.ReplyAD(req.ClientID, req.Timestamp))
	}
	return result
}

// tickStall runs once per ecall: while execution is blocked on a
// committed slot whose body is missing, the counter advances, and after
// missingBodyFetchAfter messages a retransmission request goes out.
func (e *execution) tickStall() []tee.OutMsg {
	next := e.lastExec + 1
	if e.stallSeq != next {
		return nil // not armed, or execution moved past the stall
	}
	digest, committed := e.committed[next]
	if !committed || digest.IsZero() {
		e.stallSeq = 0
		return nil
	}
	if _, have := e.batches[digest]; have {
		e.stallSeq = 0 // body arrived; tryExecute will consume it
		return nil
	}
	e.stallTicks++
	if e.stallTicks < missingBodyFetchAfter {
		return nil
	}
	e.stallTicks = 0 // periodic: re-fetch if the slot stays blocked
	return e.fetchBody(next, digest)
}

// fetchBody broadcasts a BatchFetch for a committed sequence number whose
// request bodies are missing. The checkpoint-driven state-transfer path
// still covers the gap if every fetch is lost — this is the fast path,
// not the only one.
func (e *execution) fetchBody(seq uint64, digest crypto.Digest) []tee.OutMsg {
	e.evStallFetches.Add(1)
	return []tee.OutMsg{broadcastOut(&messages.BatchFetch{Seq: seq, Digest: digest, Replica: e.id})}
}

// onBatchFetch serves a peer's missing-body request from the batch cache.
func (e *execution) onBatchFetch(f *messages.BatchFetch) []tee.OutMsg {
	if int(f.Replica) >= e.n || f.Replica == e.id {
		return nil
	}
	b, ok := e.batches[f.Digest]
	if !ok {
		return nil
	}
	return []tee.OutMsg{replicaOut(f.Replica,
		&messages.BatchReply{Seq: f.Seq, Digest: f.Digest, Batch: *b, Replica: e.id})}
}

// onBatchReply installs a retransmitted batch body. The reply needs no
// signature: it is only accepted for a slot this compartment already holds
// a commit certificate for, and the batch must hash to the certified
// digest — a forged body cannot match.
func (e *execution) onBatchReply(host tee.Host, r *messages.BatchReply) []tee.OutMsg {
	want, committed := e.committed[r.Seq]
	if !committed || want != r.Digest {
		return nil // not waiting on this slot: refuse (bounds the cache)
	}
	if _, have := e.batches[r.Digest]; have {
		return nil
	}
	if r.Batch.Digest() != r.Digest {
		return nil // forged or corrupted body
	}
	b := r.Batch
	e.batches[r.Digest] = &b
	if r.Seq > e.batchSeq[r.Digest] {
		e.batchSeq[r.Digest] = r.Seq
	}
	return e.tryExecute(host)
}

// maybeCheckpoint originates a Checkpoint at interval boundaries (event
// handler 8): the Execution compartment holds the application state, so it
// is the source of checkpoints (§3.2).
func (e *execution) maybeCheckpoint(host tee.Host, seq uint64) []tee.OutMsg {
	if seq%e.ckptInterval != 0 {
		return nil
	}
	snap := e.snapshotState()
	e.snapshots[seq] = snap
	cp := &messages.Checkpoint{Seq: seq, StateDigest: crypto.HashData(snap), Replica: e.id}
	cp.Sig, cp.Auth = e.authenticate(host, messages.TCheckpoint, cp.SigningBytes())
	out := []tee.OutMsg{
		broadcastOut(cp),
		localOut(crypto.RolePreparation, cp),
		localOut(crypto.RoleConfirmation, cp),
	}
	// Count our own checkpoint towards stability.
	out = append(out, e.onCheckpointMsg(host, cp)...)
	return out
}

// onCheckpointMsg collects checkpoint votes and garbage-collects once
// stable.
func (e *execution) onCheckpointMsg(host tee.Host, c *messages.Checkpoint) []tee.OutMsg {
	cert := e.onCheckpoint(host, c)
	if cert == nil {
		return nil
	}
	return e.installStable(host, *cert)
}

func (e *execution) installStable(_ tee.Host, cert messages.CheckpointCert) []tee.OutMsg {
	if !e.advanceStable(cert) {
		return nil
	}
	e.gc()
	if e.lastExec < cert.Seq {
		// Fell behind the group: fetch the snapshot from a replica that
		// contributed to the certificate. A MAC-mode cert names no voters
		// (single vouch) — if its attestor is a peer, ask there; a cert
		// this compartment attested itself identifies nobody ahead, so
		// broadcast the request and take the first verifying reply.
		for i := range cert.Proof {
			if cert.Proof[i].Replica != e.id {
				return []tee.OutMsg{replicaOut(cert.Proof[i].Replica,
					&messages.StateRequest{Seq: cert.Seq, Replica: e.id})}
			}
		}
		if len(cert.Vouch) > 0 {
			req := &messages.StateRequest{Seq: cert.Seq, Replica: e.id}
			if cert.Attestor != e.id {
				return []tee.OutMsg{replicaOut(cert.Attestor, req)}
			}
			return []tee.OutMsg{broadcastOut(req)}
		}
	}
	return nil
}

// onProbeTick runs on every environment timer tick: while the rejoin
// nudge is armed, broadcast a StateProbe announcing how far this replica
// got, so any peer whose stable checkpoint is ahead answers with the
// snapshot — closing a post-restart outage gap without client traffic.
func (e *execution) onProbeTick() []tee.OutMsg {
	if !e.probing {
		return nil
	}
	if e.probesLeft <= 0 {
		e.probing = false
		return nil
	}
	e.probesLeft--
	e.evProbesSent.Add(1)
	have := e.lastExec
	if e.stableCert.Seq > have {
		have = e.stableCert.Seq
	}
	out := []tee.OutMsg{broadcastOut(&messages.StateProbe{Have: have, Replica: e.id})}
	// Sub-checkpoint outage tail: peers answer a probe below any stable
	// checkpoint by re-sending their Commits for the gap slots (there is
	// no snapshot to transfer), so the next slot may already hold a
	// certificate whose body never arrived. An idle cluster generates no
	// ecall traffic to advance the stall counter, so fetch the body on the
	// probe clock instead of waiting out tickStall.
	next := e.lastExec + 1
	if digest, ok := e.committed[next]; ok && !digest.IsZero() {
		if _, cached := e.batches[digest]; !cached {
			out = append(out, e.fetchBody(next, digest)...)
		}
	}
	return out
}

// onStateProbe answers a peer's rejoin nudge when this replica's stable
// checkpoint is ahead of the prober: the reply is a full StateReply whose
// certificate the prober verifies, so serving a forged probe leaks
// nothing and cannot corrupt anyone (bandwidth only, budgeted by the
// broker alongside BatchFetch).
func (e *execution) onStateProbe(p *messages.StateProbe) []tee.OutMsg {
	if int(p.Replica) >= e.n || p.Replica == e.id {
		return nil
	}
	if e.stableCert.Seq <= p.Have {
		return nil // prober is current (or ahead): nothing to offer
	}
	snap, ok := e.snapshots[e.stableCert.Seq]
	if !ok {
		return nil
	}
	e.evProbesAnswered.Add(1)
	return []tee.OutMsg{replicaOut(p.Replica,
		&messages.StateReply{Cert: e.stableCert, Snapshot: snap, Replica: e.id})}
}

// onNewView applies the view and checkpoint (handler 7'), and records the
// re-issued proposal digests so commits in the new view can execute. The
// embedded PrePrepares are not validated here (only Preparation does), but
// execution still requires a commit certificate per slot, so a forged
// NewView cannot make this compartment execute anything (§4).
func (e *execution) onNewView(host tee.Host, nv *messages.NewView) []tee.OutMsg {
	if !e.applyNewViewCheckpoint(nv) {
		return nil
	}
	// Drop a lease from a deposed view eagerly. leaseValid would refuse it
	// anyway (view mismatch) — this just frees the reference.
	if e.lease != nil && e.lease.View != e.view {
		e.lease = nil
	}
	// Pending linearizable reads were waiting on a frontier from the deposed
	// primary: refuse them all (fail-closed), and forget the in-flight query
	// — a late reply for it fails the view check.
	var out []tee.OutMsg
	for i := range e.riPending {
		out = append(out, e.refuseRead(e.riPending[i].req))
		e.riPending[i] = pendingRead{}
	}
	e.riPending = e.riPending[:0]
	e.riInFlight = false
	e.gc()
	return append(out, e.tryExecute(host)...)
}

// onAttestRequest answers a client attestation challenge with this
// enclave's quote and remembers the client's ECDH key for provisioning.
func (e *execution) onAttestRequest(host tee.Host, ar *messages.AttestRequest) []tee.OutMsg {
	e.clientPubs[ar.ClientID] = ar.ClientPub
	return []tee.OutMsg{clientOut(ar.ClientID, host.Quote(ar.Nonce))}
}

// onProvisionKey unwraps the client's session key s_enc (§4.1) under the
// X25519-derived pairwise key and installs the session.
func (e *execution) onProvisionKey(host tee.Host, pk *messages.ProvisionKey) {
	pub, ok := e.clientPubs[pk.ClientID]
	if !ok {
		return
	}
	wrapKey, err := host.DeriveSession(pub)
	if err != nil {
		return
	}
	wrapSess, err := crypto.NewSession(wrapKey, 0)
	if err != nil {
		return
	}
	keyBytes, err := wrapSess.Open(pk.WrappedKey, client.ProvisionAD(pk.ClientID))
	if err != nil || len(keyBytes) != crypto.SessionKeySize {
		return
	}
	var sk crypto.SessionKey
	copy(sk[:], keyBytes)
	// Re-provisioning the same key must not reset the nonce counter: a WAL
	// replay of this ProvisionKey after a recovered snapshot would
	// otherwise rewind the session below nonces already used on the wire.
	if cur, ok := e.sessionKeys[pk.ClientID]; ok && cur == sk {
		return
	}
	// Direction 10+id keeps reply nonces disjoint across the n Execution
	// enclaves sharing s_enc.
	sess, err := crypto.NewSession(sk, byte(10+e.id))
	if err != nil {
		return
	}
	e.sessions[pk.ClientID] = sess
	e.sessionKeys[pk.ClientID] = sk
}

// onStateRequest serves the stable snapshot to a lagging peer.
func (e *execution) onStateRequest(req *messages.StateRequest) []tee.OutMsg {
	snap, ok := e.snapshots[req.Seq]
	if !ok || e.stableCert.Seq != req.Seq || int(req.Replica) >= e.n || req.Replica == e.id {
		return nil
	}
	return []tee.OutMsg{replicaOut(req.Replica,
		&messages.StateReply{Cert: e.stableCert, Snapshot: snap, Replica: e.id})}
}

// onStateReply installs a verified snapshot and resumes execution.
func (e *execution) onStateReply(host tee.Host, rep *messages.StateReply) []tee.OutMsg {
	if rep.Cert.Seq <= e.lastExec {
		return nil
	}
	if err := e.ver.VerifyCheckpointCert(&rep.Cert); err != nil {
		return nil
	}
	if crypto.HashData(rep.Snapshot) != rep.Cert.StateDigest {
		return nil
	}
	if err := e.restoreState(rep.Snapshot); err != nil {
		return nil
	}
	e.snapshots[rep.Cert.Seq] = rep.Snapshot
	e.lastExec = rep.Cert.Seq
	e.advanceStable(rep.Cert)
	e.gc()
	// The outage gap just closed (to the group's stable point at least):
	// stop nudging peers.
	e.probing = false
	return e.tryExecute(host)
}

// gc prunes execution bookkeeping below the watermark.
func (e *execution) gc() {
	for view, vs := range e.commits {
		for seq := range vs {
			if seq <= e.lowWatermark {
				delete(vs, seq)
			}
		}
		if len(vs) == 0 {
			delete(e.commits, view)
		}
	}
	for seq := range e.committed {
		if seq <= e.lowWatermark {
			delete(e.committed, seq)
		}
	}
	for seq := range e.snapshots {
		if seq < e.lowWatermark {
			delete(e.snapshots, seq)
		}
	}
	// Batch bodies below the watermark can no longer be executed; drop
	// them to bound the cache.
	for d, seq := range e.batchSeq {
		if seq <= e.lowWatermark {
			delete(e.batchSeq, d)
			delete(e.batches, d)
		}
	}
}
