// Package core implements SplitBFT: PBFT compartmentalized into three
// independently-failing trusted compartments per replica (paper §3–§4).
//
//   - The Preparation compartment receives client batches, assigns sequence
//     numbers (primary), emits PrePrepares/Prepares, and creates/validates
//     NewView messages.
//   - The Confirmation compartment collects prepare certificates
//     (1 PrePrepare + 2f Prepares), emits Commits, and initiates view
//     changes.
//   - The Execution compartment collects commit certificates (2f+1
//     Commits), executes client requests against the application, replies
//     (encrypted) to clients, and originates Checkpoints.
//
// Each compartment runs inside a simulated SGX enclave (internal/tee) with
// its own key pair, log, view variable and watermarks; compartments only
// change state on quorum certificates (principle P5). The untrusted broker
// (environment) handles networking, batching and timers — all of which can
// only hurt liveness, never safety (principle P1).
package core

import (
	"errors"
	"time"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/defaults"
	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/obs"
	"github.com/splitbft/splitbft/internal/store"
	"github.com/splitbft/splitbft/internal/tee"
)

// Defaults for Config fields left zero, shared with the client library and
// the public facade through internal/defaults.
const (
	DefaultCheckpointInterval = defaults.CheckpointInterval
	DefaultWatermarkWindow    = defaults.WatermarkWindow
	DefaultBatchSize          = defaults.BatchSize
	DefaultBatchTimeout       = defaults.BatchTimeout
	DefaultRequestTimeout     = defaults.RequestTimeout
)

// Config parameterizes one SplitBFT replica (three enclaves plus broker).
type Config struct {
	// N is the number of replicas (3F+1); F the fault threshold.
	N, F int
	// ID is this replica's index in [0, N).
	ID uint32

	// Registry resolves enclave public keys; NewReplica registers this
	// replica's enclave keys into it (the deployment-time attestation
	// step).
	Registry *crypto.Registry
	// MACSecret derives the pairwise client MAC keys for the Preparation
	// and Execution enclaves.
	MACSecret []byte
	// KeySeed, when set, derives the enclave key pairs deterministically
	// so separate processes can compute each other's public keys with
	// RegisterDeterministicKeys — the multi-process stand-in for the
	// attestation-based key exchange. Leave nil for fresh random keys
	// (single-process deployments and tests).
	KeySeed []byte

	// App is the replicated application, run inside the Execution enclave.
	App app.Application
	// Confidential enables end-to-end encrypted requests/replies. Clients
	// must attest and provision a session key before invoking.
	Confidential bool

	// AgreementAuth selects how normal-case agreement traffic (PrePrepare,
	// Prepare, Commit, Checkpoint) is authenticated between replicas:
	// AuthSig (default) signs every message with the sending compartment's
	// Ed25519 key; AuthMAC authenticates with pairwise HMAC vectors over
	// attested-ECDH keys and shrinks view-change certificates to single
	// enclave-signed claims — the trusted-compartment fast path. All
	// replicas of a deployment must agree on the mode.
	AgreementAuth messages.AuthMode

	// ConsensusMode selects the agreement variant: ConsensusClassic
	// (default) runs three-phase PBFT over N = 3F+1; ConsensusTrusted binds
	// every PrePrepare to the primary's trusted monotonic counter, skips
	// the Prepare phase entirely, and runs over N = 2F+1 with F+1 quorums.
	// All replicas of a deployment must agree on the mode; it composes with
	// either AgreementAuth and with persistence.
	ConsensusMode messages.ConsensusMode

	// Cost is the enclave cost model (hardware, simulation, or zero).
	Cost tee.CostModel
	// SingleThread serializes all ecalls through one dispatcher goroutine
	// (the paper's single-threaded configuration in Figure 3a). Default is
	// one dispatcher per enclave plus the broker event loop.
	SingleThread bool

	// EcallBatch caps how many queued ecalls one trusted-boundary crossing
	// may deliver (Enclave.InvokeBatch): the dispatcher drains up to this
	// many messages per transition, amortizing the per-transition cost.
	// 0 or 1 delivers one message per crossing (the paper's baseline).
	EcallBatch int
	// VerifyWorkers bounds the enclave-side pool that signature
	// verifications of a batch are fanned out to before the serial handler
	// pass. 0 or 1 verifies inline on the protocol thread. Parallelism
	// never reorders state updates: handlers always apply serially in
	// submission order.
	VerifyWorkers int

	// DataDir enables the sealed durability subsystem: each compartment
	// keeps a write-ahead log of its delivered ecalls plus sealed state
	// snapshots under DataDir/<role>/, and NewReplica recovers compartment
	// state from them before the broker starts. Requires KeySeed — the
	// enclave sealing keys must be re-derivable after a restart, or nothing
	// written before the crash could ever be unsealed. Empty disables
	// persistence (all state is in enclave memory, as in the plain paper
	// configuration).
	DataDir string
	// FsyncInterval is the WAL group-commit period; records appended
	// within one interval share a single fsync. 0 means the store default
	// (2ms); negative fsyncs on every append.
	FsyncInterval time.Duration

	// Agreement parameters; see the pbft package for semantics.
	CheckpointInterval uint64
	WatermarkWindow    uint64
	BatchSize          int
	BatchTimeout       time.Duration
	RequestTimeout     time.Duration

	// Obs attaches the observability layer: the metrics registry collects
	// every stat surface of the replica and the tracer records sampled
	// request-lifecycle spans stamped at the untrusted compartment
	// boundaries. Nil disables observability entirely — every hook
	// degrades to a nil check on the hot path.
	Obs *obs.Observer

	// ReadLeases enables the lease-anchored local read fast path: the
	// primary's trusted counter enclave issues time-bounded read leases to
	// every replica (piggybacked on proposal traffic and renewed on the
	// failure-detector clock), and a lease-holding Execution compartment
	// serves ReadRequests locally — no agreement round. Works in either
	// consensus mode (it instantiates the counter enclave on its own in
	// classic mode). Leaseless or stale replicas refuse, and clients fall
	// back to the agreement path, so the worst case is classic read cost.
	ReadLeases bool
	// LeaseTTL bounds a read lease's validity from its grant time. It must
	// stay below the failure-detector period (RequestTimeout): leases are
	// the window in which a replica partitioned away from a view change can
	// still believe its lease, so they must expire before the rest of the
	// cluster has detected the failure, elected a new primary, and started
	// committing new writes. withDefaults therefore clamps LeaseTTL to
	// RequestTimeout/4 — a new primary's write fence (2.5×TTL) then still
	// fits inside one detection period. Renewal runs at TTL/4 and the
	// clock-skew margin is TTL/8. 0 means RequestTimeout/4.
	LeaseTTL time.Duration

	// Clock, when non-nil, replaces real time on the lease-safety paths
	// (grant freshness, holder validity, the new-primary write fence) so
	// chaos tests can inject per-replica clock skew. Nil reads real time.
	Clock *SkewClock
	// DiskFaults, when non-nil, is shared by all three compartments'
	// durability stores as their chaos fault injector (write error, fsync
	// error, slow-disk stall). Nil injects nothing.
	DiskFaults *store.FaultInjector
}

func (c Config) withDefaults() Config {
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = DefaultCheckpointInterval
	}
	if c.WatermarkWindow == 0 {
		c.WatermarkWindow = DefaultWatermarkWindow
	}
	if c.BatchSize == 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.BatchTimeout == 0 {
		c.BatchTimeout = DefaultBatchTimeout
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.EcallBatch < 1 {
		c.EcallBatch = 1
	}
	if c.VerifyWorkers < 1 {
		c.VerifyWorkers = 1
	}
	// Default and clamp: a lease must never outlive view-change detection
	// (the failure detector suspects after one RequestTimeout), or a
	// partitioned holder would serve stale reads while the new view commits
	// writes. RequestTimeout/4 leaves the new primary's 2.5×TTL write fence
	// inside a single detection period.
	if maxTTL := c.RequestTimeout / 4; c.LeaseTTL == 0 || c.LeaseTTL > maxTTL {
		c.LeaseTTL = maxTTL
	}
	return c
}

func (c Config) validate() error {
	if !messages.ValidConsensus(c.ConsensusMode, c.N, c.F) {
		if c.ConsensusMode == messages.ConsensusTrusted {
			return errors.New("core: N must equal 2F+1 in trusted consensus mode")
		}
		return errors.New("core: N must equal 3F+1")
	}
	if int(c.ID) >= c.N {
		return errors.New("core: ID out of range")
	}
	if c.Registry == nil {
		return errors.New("core: Registry is required")
	}
	if len(c.MACSecret) == 0 {
		return errors.New("core: MACSecret is required")
	}
	if c.App == nil {
		return errors.New("core: App is required")
	}
	if c.DataDir != "" && len(c.KeySeed) == 0 {
		return errors.New("core: DataDir (persistence) requires KeySeed — sealed state must be recoverable under re-derived enclave keys")
	}
	return nil
}

// RequestAuthReceivers returns the client MAC-vector layout for SplitBFT:
// first the n Preparation enclaves (which authenticate requests during
// ordering), then the n Execution enclaves (which authenticate before
// executing). Slot i belongs to Preparation enclave i; slot n+i to
// Execution enclave i.
func RequestAuthReceivers(n int) []crypto.Identity {
	out := make([]crypto.Identity, 0, 2*n)
	for i := 0; i < n; i++ {
		out = append(out, crypto.Identity{ReplicaID: uint32(i), Role: crypto.RolePreparation})
	}
	for i := 0; i < n; i++ {
		out = append(out, crypto.Identity{ReplicaID: uint32(i), Role: crypto.RoleExecution})
	}
	return out
}

// Compartment code measurements. In real SGX these would be MRENCLAVE
// values of the three (ideally diversely implemented) enclave binaries;
// here they are stable digests of the compartment names so attestation has
// something meaningful to check.
var (
	measPreparation  = crypto.HashData([]byte("splitbft/preparation/v1"))
	measConfirmation = crypto.HashData([]byte("splitbft/confirmation/v1"))
	measExecution    = crypto.HashData([]byte("splitbft/execution/v1"))
)

// ExecutionMeasurement returns the Execution compartment's measurement;
// clients verify attestation quotes against it before provisioning session
// keys.
func ExecutionMeasurement() crypto.Digest { return measExecution }

// PreparationMeasurement returns the Preparation compartment's measurement.
func PreparationMeasurement() crypto.Digest { return measPreparation }

// ConfirmationMeasurement returns the Confirmation compartment's
// measurement.
func ConfirmationMeasurement() crypto.Digest { return measConfirmation }

// Ecall payload tags: the first byte of every ecall distinguishes wire
// messages from environment-local calls.
const (
	ecallMessage byte = 1 // a messages.Marshal envelope follows
	ecallBatch   byte = 2 // a messages.MarshalBatch body follows (env → Preparation)
	// ecallTick is an empty periodic nudge from the environment's failure
	// detector into the Execution compartment (rejoin probing while a
	// recovered replica may be behind). Ticks carry no state the WAL must
	// replay and are never persisted.
	ecallTick byte = 3
)

// wrapMessage frames a wire message as an ecall payload.
func wrapMessage(data []byte) []byte {
	out := make([]byte, 0, len(data)+1)
	out = append(out, ecallMessage)
	return append(out, data...)
}

// wrapBatch frames a request batch as an ecall payload.
func wrapBatch(b *messages.Batch) []byte {
	body := messages.MarshalBatch(b)
	out := make([]byte, 0, len(body)+1)
	out = append(out, ecallBatch)
	return append(out, body...)
}
