package core

import (
	"bytes"
	"testing"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/tee"
)

// Compartment-level adversarial tests: drive the compartment code directly
// through the enclave runtime, playing a Byzantine peer-enclave that signs
// with real (compromised) keys. These probe the quorum rules (P5) at the
// finest granularity the paper argues about.

// harness wires n replicas' worth of compartment key material without
// brokers or networks: tests deliver ecalls by hand.
type harness struct {
	t   *testing.T
	n   int
	f   int
	reg *crypto.Registry
	// enclaves by (replica, role)
	enclaves map[crypto.Identity]*tee.Enclave
	apps     []*app.KVS
	cfgs     []Config
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	h := &harness{t: t, f: 1, reg: crypto.NewRegistry(), enclaves: make(map[crypto.Identity]*tee.Enclave)}
	h.n = 4
	secret := []byte("compartment-test")
	ver, err := messages.NewVerifier(h.n, h.f, h.reg, messages.SplitScheme())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < h.n; i++ {
		kvs := app.NewKVS()
		h.apps = append(h.apps, kvs)
		cfg := Config{N: h.n, F: h.f, ID: uint32(i), Registry: h.reg, MACSecret: secret, App: kvs}
		cfg = cfg.withDefaults()
		h.cfgs = append(h.cfgs, cfg)
		for role, code := range map[crypto.Role]tee.Code{
			crypto.RolePreparation:  newPreparation(cfg, ver, nil),
			crypto.RoleConfirmation: newConfirmation(cfg, ver),
			crypto.RoleExecution:    newExecution(cfg, ver),
		} {
			enc, err := tee.NewEnclave(uint32(i), role, code, tee.ZeroCostModel())
			if err != nil {
				t.Fatal(err)
			}
			h.reg.Register(enc.Identity(), enc.PublicKey())
			h.enclaves[crypto.Identity{ReplicaID: uint32(i), Role: role}] = enc
		}
	}
	return h
}

func (h *harness) enclave(replica uint32, role crypto.Role) *tee.Enclave {
	return h.enclaves[crypto.Identity{ReplicaID: replica, Role: role}]
}

// invoke delivers one wire message to an enclave.
func (h *harness) invoke(replica uint32, role crypto.Role, m messages.Message) []tee.OutMsg {
	h.t.Helper()
	out, err := h.enclave(replica, role).Invoke(wrapMessage(messages.Marshal(m)))
	if err != nil {
		h.t.Fatal(err)
	}
	return out
}

// sign signs with an enclave's key via a tiny passthrough ecall — for
// adversarial tests we extract signatures by reusing the enclave Host
// interface through direct key access instead: the harness generates its
// own Byzantine keys below, so this helper is only for correct messages
// built from outputs. (Kept minimal on purpose.)

// byzantineSigner registers a fresh key pair for an identity, replacing the
// honest enclave's key — modeling a compromised enclave whose signing key
// the adversary controls.
func (h *harness) byzantineSigner(replica uint32, role crypto.Role) *crypto.KeyPair {
	kp := crypto.MustGenerateKeyPair()
	h.reg.Register(crypto.Identity{ReplicaID: replica, Role: role}, kp.Public)
	return kp
}

func testRequest(macSecret []byte, n int, clientID uint32, ts uint64, op []byte) messages.Request {
	req := messages.Request{ClientID: clientID, Timestamp: ts, Payload: op}
	macs := crypto.NewMACStore(macSecret, crypto.Identity{ReplicaID: clientID, Role: crypto.RoleClient})
	req.Auth = macs.Authenticate(req.AuthenticatedBytes(), RequestAuthReceivers(n))
	return req
}

// findMsg extracts the first message of a type from enclave outputs.
func findMsg[T messages.Message](t *testing.T, out []tee.OutMsg, kind tee.DestKind) (T, bool) {
	t.Helper()
	var zero T
	for i := range out {
		if out[i].Kind != kind {
			continue
		}
		m, err := messages.Unmarshal(out[i].Payload)
		if err != nil {
			t.Fatal(err)
		}
		if typed, ok := m.(T); ok {
			return typed, true
		}
	}
	return zero, false
}

func TestPreparationProposesAndBacksUp(t *testing.T) {
	h := newHarness(t)
	req := testRequest([]byte("compartment-test"), h.n, 7, 1, app.EncodePut("k", []byte("v")))
	batch := &messages.Batch{Requests: []messages.Request{req}}

	// Primary (replica 0) proposes.
	out, err := h.enclave(0, crypto.RolePreparation).Invoke(wrapBatch(batch))
	if err != nil {
		t.Fatal(err)
	}
	pp, ok := findMsg[*messages.PrePrepare](t, out, tee.DestBroadcast)
	if !ok {
		t.Fatal("primary did not broadcast a PrePrepare")
	}
	if pp.Seq != 1 || pp.View != 0 || pp.Digest != batch.Digest() {
		t.Fatalf("PrePrepare = v%d n%d %v", pp.View, pp.Seq, pp.Digest)
	}
	// Local copies to Confirmation and Execution (duplicated input logs).
	locals := 0
	for _, m := range out {
		if m.Kind == tee.DestLocal {
			locals++
		}
	}
	if locals != 2 {
		t.Fatalf("primary emitted %d local copies, want 2 (conf+exec)", locals)
	}

	// A backup prepares it.
	out = h.invoke(1, crypto.RolePreparation, pp)
	prep, ok := findMsg[*messages.Prepare](t, out, tee.DestBroadcast)
	if !ok {
		t.Fatal("backup did not broadcast a Prepare")
	}
	if prep.Digest != pp.Digest || prep.Replica != 1 {
		t.Fatalf("Prepare = %+v", prep)
	}

	// Duplicate delivery: no second Prepare.
	out = h.invoke(1, crypto.RolePreparation, pp)
	if _, again := findMsg[*messages.Prepare](t, out, tee.DestBroadcast); again {
		t.Fatal("backup prepared the same slot twice")
	}
}

func TestPreparationIgnoresEquivocation(t *testing.T) {
	h := newHarness(t)
	// Compromise the primary's Preparation key and equivocate.
	byz := h.byzantineSigner(0, crypto.RolePreparation)
	mk := func(payload string) *messages.PrePrepare {
		req := testRequest([]byte("compartment-test"), h.n, 7, 1, []byte(payload))
		b := messages.Batch{Requests: []messages.Request{req}}
		pp := &messages.PrePrepare{View: 0, Seq: 1, Digest: b.Digest(), Replica: 0, Batch: b}
		pp.Sig = byz.Sign(pp.SigningBytes())
		return pp
	}
	pp1, pp2 := mk("one"), mk("two")
	out := h.invoke(1, crypto.RolePreparation, pp1)
	first, ok := findMsg[*messages.Prepare](t, out, tee.DestBroadcast)
	if !ok {
		t.Fatal("no prepare for the first proposal")
	}
	out = h.invoke(1, crypto.RolePreparation, pp2)
	if _, again := findMsg[*messages.Prepare](t, out, tee.DestBroadcast); again {
		t.Fatal("backup prepared a conflicting proposal: equivocation accepted")
	}
	if first.Digest != pp1.Digest {
		t.Fatal("prepared digest is not the first proposal's")
	}
}

func TestConfirmationRequiresFullCertificate(t *testing.T) {
	h := newHarness(t)
	byzPrep := h.byzantineSigner(0, crypto.RolePreparation)
	req := testRequest([]byte("compartment-test"), h.n, 7, 1, []byte("x"))
	b := messages.Batch{Requests: []messages.Request{req}}
	pp := &messages.PrePrepare{View: 0, Seq: 1, Digest: b.Digest(), Replica: 0, Batch: b}
	pp.Sig = byzPrep.Sign(pp.SigningBytes())

	conf := h.enclave(1, crypto.RoleConfirmation)
	if out, _ := conf.Invoke(wrapMessage(messages.Marshal(pp))); len(out) != 0 {
		t.Fatal("confirmation acted on a bare PrePrepare (violates P5)")
	}
	// One prepare (from a compromised backup key) is not enough: 2f = 2.
	byzP1 := h.byzantineSigner(1, crypto.RolePreparation)
	p1 := &messages.Prepare{View: 0, Seq: 1, Digest: pp.Digest, Replica: 1}
	p1.Sig = byzP1.Sign(p1.SigningBytes())
	if out, _ := conf.Invoke(wrapMessage(messages.Marshal(p1))); len(out) != 0 {
		t.Fatal("confirmation committed with a single Prepare")
	}
	// Duplicate prepare from the same sender must not count twice.
	if out, _ := conf.Invoke(wrapMessage(messages.Marshal(p1))); len(out) != 0 {
		t.Fatal("duplicate Prepare counted towards the quorum")
	}
	// The second distinct prepare completes the certificate.
	byzP2 := h.byzantineSigner(2, crypto.RolePreparation)
	p2 := &messages.Prepare{View: 0, Seq: 1, Digest: pp.Digest, Replica: 2}
	p2.Sig = byzP2.Sign(p2.SigningBytes())
	out, _ := conf.Invoke(wrapMessage(messages.Marshal(p2)))
	cm, ok := findMsg[*messages.Commit](t, out, tee.DestBroadcast)
	if !ok {
		t.Fatal("confirmation did not commit on a full certificate")
	}
	if cm.Digest != pp.Digest {
		t.Fatalf("commit digest %v != %v", cm.Digest, pp.Digest)
	}
}

func TestConfirmationRejectsMismatchedPrepares(t *testing.T) {
	h := newHarness(t)
	byzPrep := h.byzantineSigner(0, crypto.RolePreparation)
	req := testRequest([]byte("compartment-test"), h.n, 7, 1, []byte("x"))
	b := messages.Batch{Requests: []messages.Request{req}}
	pp := &messages.PrePrepare{View: 0, Seq: 1, Digest: b.Digest(), Replica: 0, Batch: b}
	pp.Sig = byzPrep.Sign(pp.SigningBytes())
	conf := h.enclave(1, crypto.RoleConfirmation)
	_, _ = conf.Invoke(wrapMessage(messages.Marshal(pp)))

	// Two prepares for a DIFFERENT digest must never commit the slot.
	other := crypto.HashData([]byte("other"))
	for r := uint32(1); r <= 2; r++ {
		byz := h.byzantineSigner(r, crypto.RolePreparation)
		p := &messages.Prepare{View: 0, Seq: 1, Digest: other, Replica: r}
		p.Sig = byz.Sign(p.SigningBytes())
		out, _ := conf.Invoke(wrapMessage(messages.Marshal(p)))
		if _, committed := findMsg[*messages.Commit](t, out, tee.DestBroadcast); committed {
			t.Fatal("confirmation committed a digest that does not match its PrePrepare")
		}
	}
}

func TestExecutionRequiresCommitQuorumAndBody(t *testing.T) {
	h := newHarness(t)
	secret := []byte("compartment-test")
	req := testRequest(secret, h.n, 7, 1, app.EncodePut("k", []byte("v")))
	b := messages.Batch{Requests: []messages.Request{req}}
	byzPrep := h.byzantineSigner(0, crypto.RolePreparation)
	pp := &messages.PrePrepare{View: 0, Seq: 1, Digest: b.Digest(), Replica: 0, Batch: b}
	pp.Sig = byzPrep.Sign(pp.SigningBytes())

	exec := h.enclave(3, crypto.RoleExecution)
	// Body arrives.
	if out, _ := exec.Invoke(wrapMessage(messages.Marshal(pp))); len(out) != 0 {
		t.Fatal("execution acted on a PrePrepare alone")
	}
	// 2f commits are not enough: quorum is 2f+1 = 3.
	for r := uint32(0); r < 2; r++ {
		byz := h.byzantineSigner(r, crypto.RoleConfirmation)
		c := &messages.Commit{View: 0, Seq: 1, Digest: pp.Digest, Replica: r}
		c.Sig = byz.Sign(c.SigningBytes())
		out, _ := exec.Invoke(wrapMessage(messages.Marshal(c)))
		if _, replied := findMsg[*messages.Reply](t, out, tee.DestClient); replied {
			t.Fatalf("execution replied with only %d commits", r+1)
		}
	}
	if h.apps[3].Len() != 0 {
		t.Fatal("state changed before the commit quorum")
	}
	byz := h.byzantineSigner(2, crypto.RoleConfirmation)
	c := &messages.Commit{View: 0, Seq: 1, Digest: pp.Digest, Replica: 2}
	c.Sig = byz.Sign(c.SigningBytes())
	out, _ := exec.Invoke(wrapMessage(messages.Marshal(c)))
	rep, ok := findMsg[*messages.Reply](t, out, tee.DestClient)
	if !ok {
		t.Fatal("execution did not reply after the commit quorum")
	}
	if !bytes.Equal(rep.Result, []byte("OK")) {
		t.Fatalf("result = %q", rep.Result)
	}
	if v, ok := h.apps[3].Get("k"); !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatal("state not applied")
	}
}

func TestExecutionStallsWithoutBody(t *testing.T) {
	h := newHarness(t)
	// Commits arrive for a digest whose batch body was never delivered:
	// execution must not invent state; it requests retransmission of the
	// gap and stalls until the body (or state transfer) arrives.
	digest := crypto.HashData([]byte("unknown-batch"))
	exec := h.enclave(3, crypto.RoleExecution)
	for r := uint32(0); r < 3; r++ {
		byz := h.byzantineSigner(r, crypto.RoleConfirmation)
		c := &messages.Commit{View: 0, Seq: 1, Digest: digest, Replica: r}
		c.Sig = byz.Sign(c.SigningBytes())
		out, _ := exec.Invoke(wrapMessage(messages.Marshal(c)))
		if _, replied := findMsg[*messages.Reply](t, out, tee.DestClient); replied {
			t.Fatal("execution executed a batch it never received")
		}
	}
	if h.apps[3].Len() != 0 {
		t.Fatal("execution mutated state without the request body")
	}
}

// TestExecutionFetchesMissingBody is the regression test for the stall at
// tryExecute: a committed slot whose PrePrepare body is missing must
// broadcast a BatchFetch (once), and a matching BatchReply must unblock
// execution — without waiting for checkpoint-driven state transfer.
func TestExecutionFetchesMissingBody(t *testing.T) {
	h := newHarness(t)
	secret := []byte("compartment-test")
	req := testRequest(secret, h.n, 7, 1, app.EncodePut("k", []byte("v")))
	b := messages.Batch{Requests: []messages.Request{req}}
	digest := b.Digest()

	exec := h.enclave(3, crypto.RoleExecution)
	var fetches int
	var lastCommit []byte
	for r := uint32(0); r < 3; r++ {
		byz := h.byzantineSigner(r, crypto.RoleConfirmation)
		c := &messages.Commit{View: 0, Seq: 1, Digest: digest, Replica: r}
		c.Sig = byz.Sign(c.SigningBytes())
		lastCommit = wrapMessage(messages.Marshal(c))
		out, _ := exec.Invoke(lastCommit)
		if _, ok := findMsg[*messages.BatchFetch](t, out, tee.DestBroadcast); ok {
			t.Fatal("fetch fired eagerly — transient reordering would flood peers")
		}
	}
	// The slot stays blocked while traffic keeps flowing (duplicate
	// commits stand in for it); each time the stall threshold is crossed,
	// one fetch goes out — periodic, so a fetch lost to the network gets
	// retried, but never a flood.
	for i := 0; i < 2*missingBodyFetchAfter; i++ {
		out, _ := exec.Invoke(lastCommit)
		if f, ok := findMsg[*messages.BatchFetch](t, out, tee.DestBroadcast); ok {
			fetches++
			if f.Seq != 1 || f.Digest != digest || f.Replica != 3 {
				t.Fatalf("BatchFetch = %+v", f)
			}
		}
	}
	if fetches != 2 {
		t.Fatalf("execution broadcast %d BatchFetches over 2 stall periods, want 2", fetches)
	}

	// A forged reply (different batch content) must be refused.
	bad := messages.Batch{Requests: []messages.Request{testRequest(secret, h.n, 8, 1, []byte("evil"))}}
	forged := &messages.BatchReply{Seq: 1, Digest: digest, Batch: bad, Replica: 0}
	if out, _ := exec.Invoke(wrapMessage(messages.Marshal(forged))); len(out) != 0 {
		t.Fatal("execution acted on a forged BatchReply")
	}
	if h.apps[3].Len() != 0 {
		t.Fatal("forged BatchReply mutated state")
	}

	// The genuine body unblocks the slot.
	good := &messages.BatchReply{Seq: 1, Digest: digest, Batch: b, Replica: 0}
	out, _ := exec.Invoke(wrapMessage(messages.Marshal(good)))
	rep, ok := findMsg[*messages.Reply](t, out, tee.DestClient)
	if !ok {
		t.Fatal("execution did not execute after the body arrived")
	}
	if !bytes.Equal(rep.Result, []byte("OK")) {
		t.Fatalf("result = %q", rep.Result)
	}
	if v, ok := h.apps[3].Get("k"); !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatal("state not applied after batch retransmission")
	}
}

// TestExecutionServesBatchFetch: a peer that holds the body answers a
// fetch with a BatchReply addressed to the requester.
func TestExecutionServesBatchFetch(t *testing.T) {
	h := newHarness(t)
	req := testRequest([]byte("compartment-test"), h.n, 7, 1, []byte("x"))
	b := messages.Batch{Requests: []messages.Request{req}}
	byzPrep := h.byzantineSigner(0, crypto.RolePreparation)
	pp := &messages.PrePrepare{View: 0, Seq: 1, Digest: b.Digest(), Replica: 0, Batch: b}
	pp.Sig = byzPrep.Sign(pp.SigningBytes())
	exec := h.enclave(1, crypto.RoleExecution)
	_, _ = exec.Invoke(wrapMessage(messages.Marshal(pp)))

	fetch := &messages.BatchFetch{Seq: 1, Digest: pp.Digest, Replica: 3}
	out, _ := exec.Invoke(wrapMessage(messages.Marshal(fetch)))
	reply, ok := findMsg[*messages.BatchReply](t, out, tee.DestReplica)
	if !ok {
		t.Fatal("peer did not serve the batch body")
	}
	if reply.Digest != pp.Digest || reply.Batch.Digest() != pp.Digest {
		t.Fatalf("served batch does not match: %+v", reply)
	}
	// Unknown digests and self-addressed fetches are ignored.
	unknown := &messages.BatchFetch{Seq: 2, Digest: crypto.HashData([]byte("nope")), Replica: 3}
	if out, _ := exec.Invoke(wrapMessage(messages.Marshal(unknown))); len(out) != 0 {
		t.Fatal("peer answered a fetch for a digest it does not hold")
	}
	self := &messages.BatchFetch{Seq: 1, Digest: pp.Digest, Replica: 1}
	if out, _ := exec.Invoke(wrapMessage(messages.Marshal(self))); len(out) != 0 {
		t.Fatal("peer answered its own fetch")
	}
}

// TestExecutionCatchesUpViaStateTransfer mirrors the pbft lagging-replica
// test at compartment granularity: after stalling on missing bodies, a
// verified StateReply (quorum checkpoint certificate + matching snapshot)
// must install the state and resume execution — the recovery half the
// stall test above never asserted.
func TestExecutionCatchesUpViaStateTransfer(t *testing.T) {
	h := newHarness(t)
	secret := []byte("compartment-test")
	exec := h.enclave(3, crypto.RoleExecution)

	// Stall: commits for seq 1 whose body never arrives.
	missing := crypto.HashData([]byte("lost-batch"))
	confKeys := make(map[uint32]*crypto.KeyPair)
	for r := uint32(0); r < 3; r++ {
		confKeys[r] = h.byzantineSigner(r, crypto.RoleConfirmation)
		c := &messages.Commit{View: 0, Seq: 1, Digest: missing, Replica: r}
		c.Sig = confKeys[r].Sign(c.SigningBytes())
		_, _ = exec.Invoke(wrapMessage(messages.Marshal(c)))
	}

	// Peers moved on to a stable checkpoint at seq 10; their state has two
	// keys this replica never executed.
	peerState := app.NewKVS()
	peerState.Execute(7, app.EncodePut("a", []byte("1")))
	peerState.Execute(7, app.EncodePut("b", []byte("2")))
	// Checkpoint snapshots wrap the app state with the reply-cache skip
	// state (empty here: the peers' cache contents are not under test).
	wrapEnc := messages.NewEncoder(256)
	wrapEnc.U32(0)
	wrapEnc.VarBytes(peerState.Snapshot())
	snap := wrapEnc.Bytes()
	cert := messages.CheckpointCert{Seq: 10, StateDigest: crypto.HashData(snap)}
	for r := uint32(0); r < 3; r++ {
		kp := h.byzantineSigner(r, crypto.RoleExecution)
		cp := messages.Checkpoint{Seq: 10, StateDigest: cert.StateDigest, Replica: r}
		cp.Sig = kp.Sign(cp.SigningBytes())
		cert.Proof = append(cert.Proof, cp)
	}
	// A tampered snapshot must be refused.
	if out, _ := exec.Invoke(wrapMessage(messages.Marshal(&messages.StateReply{
		Cert: cert, Snapshot: append([]byte("tamper"), snap...), Replica: 0,
	}))); len(out) != 0 {
		t.Fatal("execution installed a snapshot that does not match the certificate")
	}
	if h.apps[3].Len() != 0 {
		t.Fatal("tampered snapshot mutated state")
	}
	// The genuine transfer installs the state.
	_, _ = exec.Invoke(wrapMessage(messages.Marshal(&messages.StateReply{
		Cert: cert, Snapshot: snap, Replica: 0,
	})))
	if v, ok := h.apps[3].Get("a"); !ok || !bytes.Equal(v, []byte("1")) {
		t.Fatal("state transfer did not install the snapshot")
	}

	// And execution resumes past the transferred checkpoint: seq 11
	// commits with a delivered body must execute.
	req := testRequest(secret, h.n, 7, 1, app.EncodePut("c", []byte("3")))
	b := messages.Batch{Requests: []messages.Request{req}}
	byzPrep := h.byzantineSigner(0, crypto.RolePreparation)
	pp := &messages.PrePrepare{View: 0, Seq: 11, Digest: b.Digest(), Replica: 0, Batch: b}
	pp.Sig = byzPrep.Sign(pp.SigningBytes())
	_, _ = exec.Invoke(wrapMessage(messages.Marshal(pp)))
	var rep *messages.Reply
	for r := uint32(0); r < 3; r++ {
		c := &messages.Commit{View: 0, Seq: 11, Digest: pp.Digest, Replica: r}
		c.Sig = confKeys[r].Sign(c.SigningBytes())
		out, _ := exec.Invoke(wrapMessage(messages.Marshal(c)))
		if got, ok := findMsg[*messages.Reply](t, out, tee.DestClient); ok {
			rep = got
		}
	}
	if rep == nil {
		t.Fatal("execution did not resume after state transfer")
	}
	if v, ok := h.apps[3].Get("c"); !ok || !bytes.Equal(v, []byte("3")) {
		t.Fatal("post-catch-up execution did not apply")
	}
}

// TestCheckpointCarriesReplyCache pins the exactly-once contract across
// state transfer: checkpoint snapshots must carry the reply-cache skip
// state (so a replica that catches up by state transfer does not
// re-execute a request the primary re-ordered after a client retransmit),
// the checkpoint digest must NOT depend on reply bodies (those differ per
// replica in the Replica field and MAC, and would break checkpoint-vote
// agreement), and restore must merge the skip state into the live cache.
func TestCheckpointCarriesReplyCache(t *testing.T) {
	reg := crypto.NewRegistry()
	ver, err := messages.NewVerifier(4, 1, reg, messages.SplitScheme())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id uint32) *execution {
		cfg := Config{
			N: 4, F: 1, ID: id,
			Registry: reg, MACSecret: []byte("ckpt-test"), App: app.NewKVS(),
		}.withDefaults()
		return newExecution(cfg, ver)
	}

	a := mk(0)
	a.app.Execute(7, app.EncodePut("k", []byte("v")))
	a.clients[7] = &execClient{maxExecuted: 5, replies: map[uint64]*messages.Reply{
		3: {ClientID: 7, Timestamp: 3, Replica: 0, Result: []byte("r3")},
		5: {ClientID: 7, Timestamp: 5, Replica: 0, Result: []byte("r5")},
	}}
	snap := a.snapshotState()

	// Same history on replica 1: identical skip state, different reply
	// bodies (Replica field). The checkpoint digests must still agree.
	b := mk(1)
	b.app.Execute(7, app.EncodePut("k", []byte("v")))
	b.clients[7] = &execClient{maxExecuted: 5, replies: map[uint64]*messages.Reply{
		3: {ClientID: 7, Timestamp: 3, Replica: 1, Result: []byte("r3")},
		5: {ClientID: 7, Timestamp: 5, Replica: 1, Result: []byte("r5")},
	}}
	if crypto.HashData(snap) != crypto.HashData(b.snapshotState()) {
		t.Fatal("checkpoint digest depends on per-replica reply bodies")
	}

	// A replica catching up by state transfer inherits the skip state.
	c := mk(2)
	if err := c.restoreState(snap); err != nil {
		t.Fatalf("restoreState: %v", err)
	}
	if v, ok := c.app.(*app.KVS).Get("k"); !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatal("restoreState did not install the application state")
	}
	cl := c.clients[7]
	if cl == nil {
		t.Fatal("restoreState dropped the reply-cache skip state")
	}
	for _, ts := range []uint64{3, 5} {
		if _, done := cl.executed(ts); !done {
			t.Fatalf("timestamp %d executed before the checkpoint would re-execute after state transfer", ts)
		}
	}
	if _, done := cl.executed(6); done {
		t.Fatal("unexecuted timestamp reported as executed after state transfer")
	}

	// Merging must not clobber a live cache: existing reply bodies survive
	// so retransmits are still answered.
	d := mk(3)
	d.clients[7] = &execClient{maxExecuted: 3, replies: map[uint64]*messages.Reply{
		3: {ClientID: 7, Timestamp: 3, Replica: 3, Result: []byte("r3")},
	}}
	if err := d.restoreState(snap); err != nil {
		t.Fatalf("restoreState (merge): %v", err)
	}
	if rep, done := d.clients[7].executed(3); !done || rep == nil {
		t.Fatal("merge dropped a cached reply body")
	}
	if _, done := d.clients[7].executed(5); !done {
		t.Fatal("merge did not add the transferred skip entry")
	}
	if d.clients[7].maxExecuted != 5 {
		t.Fatalf("maxExecuted = %d after merge, want 5", d.clients[7].maxExecuted)
	}
}

func TestExecutionBadClientMACExecutesNoOp(t *testing.T) {
	h := newHarness(t)
	// Request with MACs under the wrong secret: ordered fine (we forge the
	// ordering), but execution must run a no-op.
	req := testRequest([]byte("wrong-secret"), h.n, 7, 1, app.EncodePut("k", []byte("v")))
	b := messages.Batch{Requests: []messages.Request{req}}
	byzPrep := h.byzantineSigner(0, crypto.RolePreparation)
	pp := &messages.PrePrepare{View: 0, Seq: 1, Digest: b.Digest(), Replica: 0, Batch: b}
	pp.Sig = byzPrep.Sign(pp.SigningBytes())
	exec := h.enclave(3, crypto.RoleExecution)
	_, _ = exec.Invoke(wrapMessage(messages.Marshal(pp)))
	var rep *messages.Reply
	for r := uint32(0); r < 3; r++ {
		byz := h.byzantineSigner(r, crypto.RoleConfirmation)
		c := &messages.Commit{View: 0, Seq: 1, Digest: pp.Digest, Replica: r}
		c.Sig = byz.Sign(c.SigningBytes())
		out, _ := exec.Invoke(wrapMessage(messages.Marshal(c)))
		if got, ok := findMsg[*messages.Reply](t, out, tee.DestClient); ok {
			rep = got
		}
	}
	if rep == nil {
		t.Fatal("no reply at all")
	}
	if !bytes.Equal(rep.Result, app.NoOpResult) {
		t.Fatalf("unauthenticated request executed: %q", rep.Result)
	}
	if h.apps[3].Len() != 0 {
		t.Fatal("unauthenticated request changed state")
	}
}

func TestPreparationDropsUnauthenticatedBatchRequests(t *testing.T) {
	h := newHarness(t)
	good := testRequest([]byte("compartment-test"), h.n, 7, 1, []byte("good"))
	bad := testRequest([]byte("wrong-secret"), h.n, 8, 1, []byte("bad"))
	batch := &messages.Batch{Requests: []messages.Request{good, bad}}
	out, err := h.enclave(0, crypto.RolePreparation).Invoke(wrapBatch(batch))
	if err != nil {
		t.Fatal(err)
	}
	pp, ok := findMsg[*messages.PrePrepare](t, out, tee.DestBroadcast)
	if !ok {
		t.Fatal("no proposal")
	}
	if len(pp.Batch.Requests) != 1 || pp.Batch.Requests[0].ClientID != 7 {
		t.Fatalf("proposal contains %d requests, want only the authenticated one", len(pp.Batch.Requests))
	}
}
