package core

import (
	"bytes"
	"testing"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/tee"
)

// Compartment-level adversarial tests: drive the compartment code directly
// through the enclave runtime, playing a Byzantine peer-enclave that signs
// with real (compromised) keys. These probe the quorum rules (P5) at the
// finest granularity the paper argues about.

// harness wires n replicas' worth of compartment key material without
// brokers or networks: tests deliver ecalls by hand.
type harness struct {
	t   *testing.T
	n   int
	f   int
	reg *crypto.Registry
	// enclaves by (replica, role)
	enclaves map[crypto.Identity]*tee.Enclave
	apps     []*app.KVS
	cfgs     []Config
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	h := &harness{t: t, f: 1, reg: crypto.NewRegistry(), enclaves: make(map[crypto.Identity]*tee.Enclave)}
	h.n = 4
	secret := []byte("compartment-test")
	ver, err := messages.NewVerifier(h.n, h.f, h.reg, messages.SplitScheme())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < h.n; i++ {
		kvs := app.NewKVS()
		h.apps = append(h.apps, kvs)
		cfg := Config{N: h.n, F: h.f, ID: uint32(i), Registry: h.reg, MACSecret: secret, App: kvs}
		cfg = cfg.withDefaults()
		h.cfgs = append(h.cfgs, cfg)
		for role, code := range map[crypto.Role]tee.Code{
			crypto.RolePreparation:  newPreparation(cfg, ver),
			crypto.RoleConfirmation: newConfirmation(cfg, ver),
			crypto.RoleExecution:    newExecution(cfg, ver),
		} {
			enc, err := tee.NewEnclave(uint32(i), role, code, tee.ZeroCostModel())
			if err != nil {
				t.Fatal(err)
			}
			h.reg.Register(enc.Identity(), enc.PublicKey())
			h.enclaves[crypto.Identity{ReplicaID: uint32(i), Role: role}] = enc
		}
	}
	return h
}

func (h *harness) enclave(replica uint32, role crypto.Role) *tee.Enclave {
	return h.enclaves[crypto.Identity{ReplicaID: replica, Role: role}]
}

// invoke delivers one wire message to an enclave.
func (h *harness) invoke(replica uint32, role crypto.Role, m messages.Message) []tee.OutMsg {
	h.t.Helper()
	out, err := h.enclave(replica, role).Invoke(wrapMessage(messages.Marshal(m)))
	if err != nil {
		h.t.Fatal(err)
	}
	return out
}

// sign signs with an enclave's key via a tiny passthrough ecall — for
// adversarial tests we extract signatures by reusing the enclave Host
// interface through direct key access instead: the harness generates its
// own Byzantine keys below, so this helper is only for correct messages
// built from outputs. (Kept minimal on purpose.)

// byzantineSigner registers a fresh key pair for an identity, replacing the
// honest enclave's key — modeling a compromised enclave whose signing key
// the adversary controls.
func (h *harness) byzantineSigner(replica uint32, role crypto.Role) *crypto.KeyPair {
	kp := crypto.MustGenerateKeyPair()
	h.reg.Register(crypto.Identity{ReplicaID: replica, Role: role}, kp.Public)
	return kp
}

func testRequest(macSecret []byte, n int, clientID uint32, ts uint64, op []byte) messages.Request {
	req := messages.Request{ClientID: clientID, Timestamp: ts, Payload: op}
	macs := crypto.NewMACStore(macSecret, crypto.Identity{ReplicaID: clientID, Role: crypto.RoleClient})
	req.Auth = macs.Authenticate(req.AuthenticatedBytes(), RequestAuthReceivers(n))
	return req
}

// findMsg extracts the first message of a type from enclave outputs.
func findMsg[T messages.Message](t *testing.T, out []tee.OutMsg, kind tee.DestKind) (T, bool) {
	t.Helper()
	var zero T
	for i := range out {
		if out[i].Kind != kind {
			continue
		}
		m, err := messages.Unmarshal(out[i].Payload)
		if err != nil {
			t.Fatal(err)
		}
		if typed, ok := m.(T); ok {
			return typed, true
		}
	}
	return zero, false
}

func TestPreparationProposesAndBacksUp(t *testing.T) {
	h := newHarness(t)
	req := testRequest([]byte("compartment-test"), h.n, 7, 1, app.EncodePut("k", []byte("v")))
	batch := &messages.Batch{Requests: []messages.Request{req}}

	// Primary (replica 0) proposes.
	out, err := h.enclave(0, crypto.RolePreparation).Invoke(wrapBatch(batch))
	if err != nil {
		t.Fatal(err)
	}
	pp, ok := findMsg[*messages.PrePrepare](t, out, tee.DestBroadcast)
	if !ok {
		t.Fatal("primary did not broadcast a PrePrepare")
	}
	if pp.Seq != 1 || pp.View != 0 || pp.Digest != batch.Digest() {
		t.Fatalf("PrePrepare = v%d n%d %v", pp.View, pp.Seq, pp.Digest)
	}
	// Local copies to Confirmation and Execution (duplicated input logs).
	locals := 0
	for _, m := range out {
		if m.Kind == tee.DestLocal {
			locals++
		}
	}
	if locals != 2 {
		t.Fatalf("primary emitted %d local copies, want 2 (conf+exec)", locals)
	}

	// A backup prepares it.
	out = h.invoke(1, crypto.RolePreparation, pp)
	prep, ok := findMsg[*messages.Prepare](t, out, tee.DestBroadcast)
	if !ok {
		t.Fatal("backup did not broadcast a Prepare")
	}
	if prep.Digest != pp.Digest || prep.Replica != 1 {
		t.Fatalf("Prepare = %+v", prep)
	}

	// Duplicate delivery: no second Prepare.
	out = h.invoke(1, crypto.RolePreparation, pp)
	if _, again := findMsg[*messages.Prepare](t, out, tee.DestBroadcast); again {
		t.Fatal("backup prepared the same slot twice")
	}
}

func TestPreparationIgnoresEquivocation(t *testing.T) {
	h := newHarness(t)
	// Compromise the primary's Preparation key and equivocate.
	byz := h.byzantineSigner(0, crypto.RolePreparation)
	mk := func(payload string) *messages.PrePrepare {
		req := testRequest([]byte("compartment-test"), h.n, 7, 1, []byte(payload))
		b := messages.Batch{Requests: []messages.Request{req}}
		pp := &messages.PrePrepare{View: 0, Seq: 1, Digest: b.Digest(), Replica: 0, Batch: b}
		pp.Sig = byz.Sign(pp.SigningBytes())
		return pp
	}
	pp1, pp2 := mk("one"), mk("two")
	out := h.invoke(1, crypto.RolePreparation, pp1)
	first, ok := findMsg[*messages.Prepare](t, out, tee.DestBroadcast)
	if !ok {
		t.Fatal("no prepare for the first proposal")
	}
	out = h.invoke(1, crypto.RolePreparation, pp2)
	if _, again := findMsg[*messages.Prepare](t, out, tee.DestBroadcast); again {
		t.Fatal("backup prepared a conflicting proposal: equivocation accepted")
	}
	if first.Digest != pp1.Digest {
		t.Fatal("prepared digest is not the first proposal's")
	}
}

func TestConfirmationRequiresFullCertificate(t *testing.T) {
	h := newHarness(t)
	byzPrep := h.byzantineSigner(0, crypto.RolePreparation)
	req := testRequest([]byte("compartment-test"), h.n, 7, 1, []byte("x"))
	b := messages.Batch{Requests: []messages.Request{req}}
	pp := &messages.PrePrepare{View: 0, Seq: 1, Digest: b.Digest(), Replica: 0, Batch: b}
	pp.Sig = byzPrep.Sign(pp.SigningBytes())

	conf := h.enclave(1, crypto.RoleConfirmation)
	if out, _ := conf.Invoke(wrapMessage(messages.Marshal(pp))); len(out) != 0 {
		t.Fatal("confirmation acted on a bare PrePrepare (violates P5)")
	}
	// One prepare (from a compromised backup key) is not enough: 2f = 2.
	byzP1 := h.byzantineSigner(1, crypto.RolePreparation)
	p1 := &messages.Prepare{View: 0, Seq: 1, Digest: pp.Digest, Replica: 1}
	p1.Sig = byzP1.Sign(p1.SigningBytes())
	if out, _ := conf.Invoke(wrapMessage(messages.Marshal(p1))); len(out) != 0 {
		t.Fatal("confirmation committed with a single Prepare")
	}
	// Duplicate prepare from the same sender must not count twice.
	if out, _ := conf.Invoke(wrapMessage(messages.Marshal(p1))); len(out) != 0 {
		t.Fatal("duplicate Prepare counted towards the quorum")
	}
	// The second distinct prepare completes the certificate.
	byzP2 := h.byzantineSigner(2, crypto.RolePreparation)
	p2 := &messages.Prepare{View: 0, Seq: 1, Digest: pp.Digest, Replica: 2}
	p2.Sig = byzP2.Sign(p2.SigningBytes())
	out, _ := conf.Invoke(wrapMessage(messages.Marshal(p2)))
	cm, ok := findMsg[*messages.Commit](t, out, tee.DestBroadcast)
	if !ok {
		t.Fatal("confirmation did not commit on a full certificate")
	}
	if cm.Digest != pp.Digest {
		t.Fatalf("commit digest %v != %v", cm.Digest, pp.Digest)
	}
}

func TestConfirmationRejectsMismatchedPrepares(t *testing.T) {
	h := newHarness(t)
	byzPrep := h.byzantineSigner(0, crypto.RolePreparation)
	req := testRequest([]byte("compartment-test"), h.n, 7, 1, []byte("x"))
	b := messages.Batch{Requests: []messages.Request{req}}
	pp := &messages.PrePrepare{View: 0, Seq: 1, Digest: b.Digest(), Replica: 0, Batch: b}
	pp.Sig = byzPrep.Sign(pp.SigningBytes())
	conf := h.enclave(1, crypto.RoleConfirmation)
	_, _ = conf.Invoke(wrapMessage(messages.Marshal(pp)))

	// Two prepares for a DIFFERENT digest must never commit the slot.
	other := crypto.HashData([]byte("other"))
	for r := uint32(1); r <= 2; r++ {
		byz := h.byzantineSigner(r, crypto.RolePreparation)
		p := &messages.Prepare{View: 0, Seq: 1, Digest: other, Replica: r}
		p.Sig = byz.Sign(p.SigningBytes())
		out, _ := conf.Invoke(wrapMessage(messages.Marshal(p)))
		if _, committed := findMsg[*messages.Commit](t, out, tee.DestBroadcast); committed {
			t.Fatal("confirmation committed a digest that does not match its PrePrepare")
		}
	}
}

func TestExecutionRequiresCommitQuorumAndBody(t *testing.T) {
	h := newHarness(t)
	secret := []byte("compartment-test")
	req := testRequest(secret, h.n, 7, 1, app.EncodePut("k", []byte("v")))
	b := messages.Batch{Requests: []messages.Request{req}}
	byzPrep := h.byzantineSigner(0, crypto.RolePreparation)
	pp := &messages.PrePrepare{View: 0, Seq: 1, Digest: b.Digest(), Replica: 0, Batch: b}
	pp.Sig = byzPrep.Sign(pp.SigningBytes())

	exec := h.enclave(3, crypto.RoleExecution)
	// Body arrives.
	if out, _ := exec.Invoke(wrapMessage(messages.Marshal(pp))); len(out) != 0 {
		t.Fatal("execution acted on a PrePrepare alone")
	}
	// 2f commits are not enough: quorum is 2f+1 = 3.
	for r := uint32(0); r < 2; r++ {
		byz := h.byzantineSigner(r, crypto.RoleConfirmation)
		c := &messages.Commit{View: 0, Seq: 1, Digest: pp.Digest, Replica: r}
		c.Sig = byz.Sign(c.SigningBytes())
		out, _ := exec.Invoke(wrapMessage(messages.Marshal(c)))
		if _, replied := findMsg[*messages.Reply](t, out, tee.DestClient); replied {
			t.Fatalf("execution replied with only %d commits", r+1)
		}
	}
	if h.apps[3].Len() != 0 {
		t.Fatal("state changed before the commit quorum")
	}
	byz := h.byzantineSigner(2, crypto.RoleConfirmation)
	c := &messages.Commit{View: 0, Seq: 1, Digest: pp.Digest, Replica: 2}
	c.Sig = byz.Sign(c.SigningBytes())
	out, _ := exec.Invoke(wrapMessage(messages.Marshal(c)))
	rep, ok := findMsg[*messages.Reply](t, out, tee.DestClient)
	if !ok {
		t.Fatal("execution did not reply after the commit quorum")
	}
	if !bytes.Equal(rep.Result, []byte("OK")) {
		t.Fatalf("result = %q", rep.Result)
	}
	if v, ok := h.apps[3].Get("k"); !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatal("state not applied")
	}
}

func TestExecutionStallsWithoutBody(t *testing.T) {
	h := newHarness(t)
	// Commits arrive for a digest whose batch body was never delivered:
	// execution must not invent state; it stalls until state transfer.
	digest := crypto.HashData([]byte("unknown-batch"))
	exec := h.enclave(3, crypto.RoleExecution)
	for r := uint32(0); r < 3; r++ {
		byz := h.byzantineSigner(r, crypto.RoleConfirmation)
		c := &messages.Commit{View: 0, Seq: 1, Digest: digest, Replica: r}
		c.Sig = byz.Sign(c.SigningBytes())
		out, _ := exec.Invoke(wrapMessage(messages.Marshal(c)))
		if _, replied := findMsg[*messages.Reply](t, out, tee.DestClient); replied {
			t.Fatal("execution executed a batch it never received")
		}
	}
	if h.apps[3].Len() != 0 {
		t.Fatal("execution mutated state without the request body")
	}
}

func TestExecutionBadClientMACExecutesNoOp(t *testing.T) {
	h := newHarness(t)
	// Request with MACs under the wrong secret: ordered fine (we forge the
	// ordering), but execution must run a no-op.
	req := testRequest([]byte("wrong-secret"), h.n, 7, 1, app.EncodePut("k", []byte("v")))
	b := messages.Batch{Requests: []messages.Request{req}}
	byzPrep := h.byzantineSigner(0, crypto.RolePreparation)
	pp := &messages.PrePrepare{View: 0, Seq: 1, Digest: b.Digest(), Replica: 0, Batch: b}
	pp.Sig = byzPrep.Sign(pp.SigningBytes())
	exec := h.enclave(3, crypto.RoleExecution)
	_, _ = exec.Invoke(wrapMessage(messages.Marshal(pp)))
	var rep *messages.Reply
	for r := uint32(0); r < 3; r++ {
		byz := h.byzantineSigner(r, crypto.RoleConfirmation)
		c := &messages.Commit{View: 0, Seq: 1, Digest: pp.Digest, Replica: r}
		c.Sig = byz.Sign(c.SigningBytes())
		out, _ := exec.Invoke(wrapMessage(messages.Marshal(c)))
		if got, ok := findMsg[*messages.Reply](t, out, tee.DestClient); ok {
			rep = got
		}
	}
	if rep == nil {
		t.Fatal("no reply at all")
	}
	if !bytes.Equal(rep.Result, app.NoOpResult) {
		t.Fatalf("unauthenticated request executed: %q", rep.Result)
	}
	if h.apps[3].Len() != 0 {
		t.Fatal("unauthenticated request changed state")
	}
}

func TestPreparationDropsUnauthenticatedBatchRequests(t *testing.T) {
	h := newHarness(t)
	good := testRequest([]byte("compartment-test"), h.n, 7, 1, []byte("good"))
	bad := testRequest([]byte("wrong-secret"), h.n, 8, 1, []byte("bad"))
	batch := &messages.Batch{Requests: []messages.Request{good, bad}}
	out, err := h.enclave(0, crypto.RolePreparation).Invoke(wrapBatch(batch))
	if err != nil {
		t.Fatal(err)
	}
	pp, ok := findMsg[*messages.PrePrepare](t, out, tee.DestBroadcast)
	if !ok {
		t.Fatal("no proposal")
	}
	if len(pp.Batch.Requests) != 1 || pp.Batch.Requests[0].ClientID != 7 {
		t.Fatalf("proposal contains %d requests, want only the authenticated one", len(pp.Batch.Requests))
	}
}
