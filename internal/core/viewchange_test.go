package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/transport"
)

// Additional view-change scenarios beyond the basic primary-failure test.

func TestSplitTwoSuccessiveViewChanges(t *testing.T) {
	c := newCluster(t, false, func(cfg *Config) {
		cfg.RequestTimeout = 150 * time.Millisecond
	})
	cl := c.client(100)
	if _, err := cl.Invoke(app.EncodePut("v0", []byte("a"))); err != nil {
		t.Fatal(err)
	}
	// Kill the view-0 primary; the cluster moves to view 1.
	c.net.Isolate(transport.ReplicaEndpoint(0))
	if _, err := cl.Invoke(app.EncodePut("v1", []byte("b"))); err != nil {
		t.Fatalf("first view change: %v", err)
	}
	// Kill the view-1 primary too. Only replicas 2 and 3 remain — that is
	// below the liveness quorum (2f+1 = 3), so instead of isolating we
	// crash replica 1's enclaves while keeping its broker routable, which
	// still forces a view change but... no: with 2 connected correct
	// replicas no quorum forms. Bring replica 0 back first.
	for i := 0; i < c.n; i++ {
		c.net.Unblock(transport.ReplicaEndpoint(0), transport.ReplicaEndpoint(uint32(i)))
	}
	c.net.Unblock(transport.ReplicaEndpoint(0), transport.ClientEndpoint(100))
	c.net.Isolate(transport.ReplicaEndpoint(1))
	if _, err := cl.Invoke(app.EncodePut("v2", []byte("c"))); err != nil {
		t.Fatalf("second view change: %v", err)
	}
	// All three writes survive.
	for key, want := range map[string]string{"v0": "a", "v1": "b", "v2": "c"} {
		res, err := cl.Invoke(app.EncodeGet(key))
		if err != nil {
			t.Fatalf("GET %s: %v", key, err)
		}
		if !bytes.Equal(res, []byte(want)) {
			t.Fatalf("GET %s = %q, want %q", key, res, want)
		}
	}
}

func TestSplitViewChangeWithBatching(t *testing.T) {
	c := newCluster(t, false, func(cfg *Config) {
		cfg.BatchSize = 8
		cfg.BatchTimeout = 5 * time.Millisecond
		cfg.RequestTimeout = 150 * time.Millisecond
	})
	cl := c.client(100)
	for i := 0; i < 10; i++ {
		if _, err := cl.Invoke(app.EncodePut(fmt.Sprintf("pre%d", i), []byte("x"))); err != nil {
			t.Fatal(err)
		}
	}
	c.net.Isolate(transport.ReplicaEndpoint(0))
	for i := 0; i < 10; i++ {
		if _, err := cl.Invoke(app.EncodePut(fmt.Sprintf("post%d", i), []byte("y"))); err != nil {
			t.Fatalf("post-VC op %d: %v", i, err)
		}
	}
	res, err := cl.Invoke(app.EncodeGet("pre5"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, []byte("x")) {
		t.Fatalf("lost batched pre-view-change write: %q", res)
	}
}

func TestSplitCrashedExecEnclaveDoesNotBlockQuorum(t *testing.T) {
	// With one Execution enclave down, replies come from the other three;
	// clients still reach their f+1 quorum, repeatedly.
	c := newCluster(t, false)
	c.replicas[2].CrashEnclave(crypto.RoleExecution)
	cl := c.client(100)
	for i := 0; i < 10; i++ {
		res, err := cl.Invoke(app.EncodePut(fmt.Sprintf("k%d", i), []byte("v")))
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if !bytes.Equal(res, []byte("OK")) {
			t.Fatalf("op %d = %q", i, res)
		}
	}
	if got := c.replicas[2].ExecutedOps(); got != 0 {
		t.Fatalf("crashed execution enclave produced %d replies", got)
	}
}

func TestSplitSuspectCounterAdvances(t *testing.T) {
	// With the primary partitioned, brokers must fire their failure
	// detectors (observable via the Suspects metric).
	c := newCluster(t, false, func(cfg *Config) {
		cfg.RequestTimeout = 200 * time.Millisecond
	})
	cl := c.client(100)
	if _, err := cl.Invoke(app.EncodePut("a", []byte("1"))); err != nil {
		t.Fatal(err)
	}
	c.net.Isolate(transport.ReplicaEndpoint(0))
	if _, err := cl.Invoke(app.EncodePut("b", []byte("2"))); err != nil {
		t.Fatal(err)
	}
	total := uint64(0)
	for _, r := range c.replicas[1:] {
		total += r.Suspects()
	}
	if total == 0 {
		t.Fatal("no broker ever suspected the dead primary")
	}
}
