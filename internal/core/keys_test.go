package core

import (
	"bytes"
	"testing"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/crypto"
)

func TestDeterministicKeysMatchEnclaves(t *testing.T) {
	seed := []byte("deployment-seed")
	reg1 := crypto.NewRegistry()
	r, err := NewReplica(Config{
		N: 4, F: 1, ID: 2,
		Registry: reg1, MACSecret: []byte("s"), KeySeed: seed,
		App: app.NewKVS(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	reg2 := crypto.NewRegistry()
	if err := RegisterDeterministicKeys(reg2, seed, 4); err != nil {
		t.Fatal(err)
	}
	for _, role := range []crypto.Role{crypto.RolePreparation, crypto.RoleConfirmation, crypto.RoleExecution} {
		id := crypto.Identity{ReplicaID: 2, Role: role}
		k1, err := reg1.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		k2, err := reg2.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(k1, k2) {
			t.Fatalf("derived key mismatch for %v", role)
		}
		// The X25519 keys behind MAC-mode pairwise channels must derive
		// identically too — a separate process computing a peer's ECDH key
		// from the seed must match the live enclave's.
		e1, err := reg1.LookupECDH(id)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := reg2.LookupECDH(id)
		if err != nil {
			t.Fatal(err)
		}
		if e1 != e2 {
			t.Fatalf("derived ECDH key mismatch for %v", role)
		}
	}
	// Different replicas and roles must get distinct keys.
	kA, _ := reg2.Lookup(crypto.Identity{ReplicaID: 0, Role: crypto.RolePreparation})
	kB, _ := reg2.Lookup(crypto.Identity{ReplicaID: 1, Role: crypto.RolePreparation})
	kC, _ := reg2.Lookup(crypto.Identity{ReplicaID: 0, Role: crypto.RoleExecution})
	if bytes.Equal(kA, kB) || bytes.Equal(kA, kC) {
		t.Fatal("derived keys must differ per identity")
	}
}
