package core

import (
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/tee"
)

// comState holds the bookkeeping every compartment type maintains
// separately: its own view variable (replicated across compartments per
// §3.2), its own low watermark, and its own collection of Checkpoint
// messages. The paper duplicates the checkpoint and new-view-checkpoint
// handlers (9, 7') in all compartments; this struct is that duplicated
// handler's state, instantiated once per compartment.
type comState struct {
	n, f int
	id   uint32
	ver  *messages.Verifier
	// rmacs holds this compartment enclave's pairwise agreement-MAC keys
	// (attested-ECDH with every peer compartment); nil in sig mode. It is
	// installed by NewReplica after the enclave launches, before traffic.
	rmacs *crypto.MACStore
	// authRecv caches the per-type MAC receiver layouts (MAC mode only;
	// the layouts are static per deployment size).
	authRecv map[messages.Type][]crypto.Identity

	view         uint64
	lowWatermark uint64
	window       uint64
	stableCert   messages.CheckpointCert

	// ctrBase/seqBase pin the trusted-counter affine law of the current
	// view (trusted consensus mode): an acceptable PrePrepare at Seq must
	// carry CtrVal = ctrBase + (Seq - seqBase). Both start at zero in view
	// 0 — the primary's counter and the sequence space advance in lockstep
	// from genesis — and are re-pinned by every NewView (CtrBase and the
	// stable checkpoint seq).
	ctrBase uint64
	seqBase uint64

	checkpoints map[uint64]map[uint32]*messages.Checkpoint
}

func newComState(n, f int, id uint32, window uint64, ver *messages.Verifier) comState {
	return comState{
		n: n, f: f, id: id, ver: ver, window: window,
		checkpoints: make(map[uint64]map[uint32]*messages.Checkpoint),
		authRecv:    make(map[messages.Type][]crypto.Identity),
	}
}

// macMode reports whether agreement traffic uses the MAC fast path.
func (s *comState) macMode() bool { return s.ver.Mode == messages.AuthMAC }

// trustedMode reports whether agreement runs the trusted-counter variant.
func (s *comState) trustedMode() bool { return s.ver.Consensus == messages.ConsensusTrusted }

// authReceivers returns (caching) the MAC-vector layout for a type.
func (s *comState) authReceivers(t messages.Type) []crypto.Identity {
	rs, ok := s.authRecv[t]
	if !ok {
		rs = messages.AgreementAuthReceivers(t, s.n)
		s.authRecv[t] = rs
	}
	return rs
}

// authenticate stamps an outbound agreement message: in sig mode the
// enclave signs it; in MAC mode it computes the pairwise authenticator
// vector for the type's receiver set. Exactly one of the two returns is
// non-empty.
func (s *comState) authenticate(host tee.Host, t messages.Type, signing []byte) ([]byte, crypto.Authenticator) {
	if !s.macMode() {
		return host.Sign(signing), crypto.Authenticator{}
	}
	return nil, s.rmacs.Authenticate(signing, s.authReceivers(t))
}

// quorum is the certificate size: 2f+1 in classic consensus, f+1 in
// trusted consensus (delegated to the verifier, the single source of the
// group-shape rules).
func (s *comState) quorum() int { return s.ver.Quorum() }

func (s *comState) primary(view uint64) uint32 { return uint32(view % uint64(s.n)) }

// inWindow reports whether seq is inside the active watermark window.
func (s *comState) inWindow(seq uint64) bool {
	return seq > s.lowWatermark && seq <= s.lowWatermark+s.window
}

// onCheckpoint is the duplicated checkpoint handler (event handler 9): it
// collects Execution-authenticated Checkpoints and returns a new stable
// certificate once 2f+1 match, or nil. The caller performs its
// compartment-specific GC. In sig mode the certificate bundles the 2f+1
// signed votes; in MAC mode the votes were MAC'd to this compartment
// alone, so the compartment signs the aggregated claim instead — the
// single enclave vouch that makes the cert third-party checkable.
func (s *comState) onCheckpoint(host tee.Host, c *messages.Checkpoint) *messages.CheckpointCert {
	if c.Seq <= s.lowWatermark {
		return nil
	}
	if err := s.ver.VerifyCheckpoint(c); err != nil {
		return nil
	}
	set, ok := s.checkpoints[c.Seq]
	if !ok {
		set = make(map[uint32]*messages.Checkpoint)
		s.checkpoints[c.Seq] = set
	}
	if _, dup := set[c.Replica]; dup {
		return nil
	}
	set[c.Replica] = c
	byDigest := make(map[crypto.Digest][]*messages.Checkpoint)
	for _, cp := range set {
		byDigest[cp.StateDigest] = append(byDigest[cp.StateDigest], cp)
	}
	for digest, cps := range byDigest {
		if len(cps) < s.quorum() {
			continue
		}
		cert := &messages.CheckpointCert{Seq: c.Seq, StateDigest: digest}
		if s.macMode() {
			cert.Attestor = s.id
			cert.AttestorRole = uint8(s.ver.Self.Role)
			cert.Vouch = host.Sign(messages.CheckpointCertClaim(c.Seq, digest))
		} else {
			for _, cp := range cps[:s.quorum()] {
				cert.Proof = append(cert.Proof, *cp)
			}
		}
		return cert
	}
	return nil
}

// advanceStable installs a stable checkpoint certificate, pruning the
// checkpoint collection. Returns true if the watermark moved.
func (s *comState) advanceStable(cert messages.CheckpointCert) bool {
	if cert.Seq <= s.lowWatermark {
		return false
	}
	s.lowWatermark = cert.Seq
	s.stableCert = cert
	for seq := range s.checkpoints {
		if seq < cert.Seq {
			delete(s.checkpoints, seq)
		}
	}
	return true
}

// applyNewViewCheckpoint is the duplicated new-view checkpoint handler
// (event handler 7'): every compartment validates the stable certificate in
// a NewView and applies it, updating its view if the NewView is newer. The
// PrePrepares in the NewView are NOT validated here — only the Preparation
// compartment does that (§4.4). Returns true if the view advanced.
func (s *comState) applyNewViewCheckpoint(nv *messages.NewView) bool {
	if nv.View < s.view {
		return false
	}
	// Signature of the new primary's Preparation enclave.
	signer := crypto.Identity{ReplicaID: nv.Replica, Role: crypto.RolePreparation}
	if nv.Replica != s.primary(nv.View) {
		return false
	}
	if err := s.ver.VerifySig(signer, nv.SigningBytes(), nv.Sig); err != nil {
		return false
	}
	if err := s.ver.VerifyCheckpointCert(&nv.Stable); err != nil {
		return false
	}
	advanced := nv.View > s.view || nv.View == s.view
	s.view = nv.View
	s.advanceStable(nv.Stable)
	if s.trustedMode() {
		// Re-pin the affine counter law for the new view: re-issued and
		// subsequent proposals consume nv.CtrBase+1.. from the new
		// primary's counter, sequence-aligned at the stable checkpoint.
		s.ctrBase, s.seqBase = nv.CtrBase, nv.Stable.Seq
	}
	return advanced
}

// prevalidate is the parallel-verify stage of the staged pipeline: the
// stateless share of message validation — decoding plus signature
// verification — run ahead of the serial handler pass to warm the
// compartment verifier's cache. The handlers then re-validate through the
// cache and skip the Ed25519 work.
//
// It upholds the tee.Preprocessor contract: no compartment state is
// touched (the Verifier is immutable and its cache is concurrency-safe),
// and skipping it entirely changes no handler outcome — which is what
// keeps the parallel stage deterministic.
func prevalidate(ver *messages.Verifier, raw []byte) {
	if len(raw) < 2 || raw[0] != ecallMessage {
		return
	}
	m, err := messages.Unmarshal(raw[1:])
	if err != nil {
		return
	}
	switch msg := m.(type) {
	case *messages.PrePrepare:
		_ = ver.VerifyPrePrepare(msg, false)
	case *messages.Prepare:
		_ = ver.VerifyPrepare(msg)
	case *messages.Commit:
		_ = ver.VerifyCommit(msg)
	case *messages.Checkpoint:
		_ = ver.VerifyCheckpoint(msg)
	case *messages.ViewChange:
		// Warms every certificate signature the view change carries.
		_ = ver.VerifyViewChange(msg)
	case *messages.NewView:
		_ = ver.VerifyNewView(msg)
	}
}

// localOut builds a DestLocal output message to another compartment on the
// same replica.
func localOut(role crypto.Role, m messages.Message) tee.OutMsg {
	return tee.OutMsg{Kind: tee.DestLocal, Local: role, Payload: messages.Marshal(m)}
}

// broadcastOut builds a DestBroadcast output message (network only; local
// copies are emitted explicitly so quorum logic treats them uniformly).
func broadcastOut(m messages.Message) tee.OutMsg {
	return tee.OutMsg{Kind: tee.DestBroadcast, Payload: messages.Marshal(m)}
}

// replicaOut builds a DestReplica output message.
func replicaOut(id uint32, m messages.Message) tee.OutMsg {
	return tee.OutMsg{Kind: tee.DestReplica, ID: id, Payload: messages.Marshal(m)}
}

// clientOut builds a DestClient output message.
func clientOut(clientID uint32, m messages.Message) tee.OutMsg {
	return tee.OutMsg{Kind: tee.DestClient, ID: clientID, Payload: messages.Marshal(m)}
}
