package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/client"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/transport"
)

// cluster is a 4-replica SplitBFT test harness over a simulated network.
type cluster struct {
	t        *testing.T
	n, f     int
	net      *transport.SimNet
	reg      *crypto.Registry
	secret   []byte
	replicas []*Replica
	kvs      []*app.KVS
	chains   []*app.Blockchain
	clients  []*client.Client
	conf     bool
}

type clusterOpt func(*Config)

func withConfidential(c *Config) { c.Confidential = true }
func withSingleThread(c *Config) { c.SingleThread = true }
func withBlockchain(_ *Config)   {} // marker; handled in newCluster
func withFastTimers(c *Config) {
	c.BatchSize = 1
	c.BatchTimeout = 2 * time.Millisecond
	c.RequestTimeout = 250 * time.Millisecond
}

// newCluster starts n SplitBFT replicas. useBlockchain selects the app.
func newCluster(t *testing.T, useBlockchain bool, opts ...clusterOpt) *cluster {
	t.Helper()
	c := &cluster{
		t: t, n: 4, f: 1,
		net:    transport.NewSimNet(1),
		reg:    crypto.NewRegistry(),
		secret: []byte("split-test-secret"),
	}
	for i := 0; i < c.n; i++ {
		var a app.Application
		if useBlockchain {
			bc := app.NewBlockchain(app.DefaultBlockSize, nil)
			c.chains = append(c.chains, bc)
			a = bc
		} else {
			kvs := app.NewKVS()
			c.kvs = append(c.kvs, kvs)
			a = kvs
		}
		cfg := Config{
			N: c.n, F: c.f, ID: uint32(i),
			Registry:  c.reg,
			MACSecret: c.secret,
			App:       a,
		}
		withFastTimers(&cfg)
		for _, opt := range opts {
			opt(&cfg)
		}
		c.conf = cfg.Confidential
		r, err := NewReplica(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.replicas = append(c.replicas, r)
	}
	for i, r := range c.replicas {
		conn, err := c.net.Join(transport.ReplicaEndpoint(uint32(i)), r.Handler())
		if err != nil {
			t.Fatal(err)
		}
		r.Start(conn)
	}
	t.Cleanup(c.stopAll)
	return c
}

func (c *cluster) stopAll() {
	for _, cl := range c.clients {
		cl.Close()
	}
	for _, r := range c.replicas {
		r.Stop()
	}
	c.net.Close()
}

// client creates, attaches, and (in confidential mode) attests a client.
func (c *cluster) client(id uint32) *client.Client {
	c.t.Helper()
	cl, err := client.New(client.Config{
		ID: id, N: c.n, F: c.f,
		MACs:               crypto.NewMACStore(c.secret, crypto.Identity{ReplicaID: id, Role: crypto.RoleClient}),
		AuthReceivers:      RequestAuthReceivers(c.n),
		ReplyRole:          crypto.RoleExecution,
		Confidential:       c.conf,
		Registry:           c.reg,
		ExecMeasurement:    ExecutionMeasurement(),
		RetransmitInterval: 300 * time.Millisecond,
		// Generous: view-change tests share the machine with CPU-heavy
		// benchmark packages under `go test ./...`, and the simulated
		// enclave-transition costs spin-wait.
		Timeout: 30 * time.Second,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	conn, err := c.net.Join(transport.ClientEndpoint(id), cl.Handler())
	if err != nil {
		c.t.Fatal(err)
	}
	cl.Start(conn)
	if err := cl.Attest(); err != nil {
		c.t.Fatalf("attest: %v", err)
	}
	c.clients = append(c.clients, cl)
	return cl
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSplitBasicReplication(t *testing.T) {
	c := newCluster(t, false)
	cl := c.client(100)
	res, err := cl.Invoke(app.EncodePut("greeting", []byte("hello")))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, []byte("OK")) {
		t.Fatalf("put result = %q", res)
	}
	res, err = cl.Invoke(app.EncodeGet("greeting"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, []byte("hello")) {
		t.Fatalf("get result = %q", res)
	}
	waitFor(t, 3*time.Second, "replica convergence", func() bool {
		d := c.kvs[0].Digest()
		for _, a := range c.kvs[1:] {
			if a.Digest() != d {
				return false
			}
		}
		return true
	})
}

func TestSplitConfidentialReplication(t *testing.T) {
	c := newCluster(t, false, withConfidential)
	cl := c.client(100)
	for i := 0; i < 10; i++ {
		res, err := cl.Invoke(app.EncodePut(fmt.Sprintf("k%d", i), []byte("secret-value")))
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if !bytes.Equal(res, []byte("OK")) {
			t.Fatalf("op %d result = %q", i, res)
		}
	}
	res, err := cl.Invoke(app.EncodeGet("k3"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, []byte("secret-value")) {
		t.Fatalf("get = %q", res)
	}
}

func TestSplitConfidentialityOnTheWire(t *testing.T) {
	// No plaintext of requests, keys or values may ever appear in any
	// network message: only the Execution enclaves hold the session key.
	c := newCluster(t, false, withConfidential)
	secretKey := "classified-key-material"
	secretVal := "top-secret-payload-42"
	var leaks int
	var mu sync.Mutex
	c.net.AddObserver(func(from, to transport.Endpoint, data []byte) {
		if bytes.Contains(data, []byte(secretKey)) || bytes.Contains(data, []byte(secretVal)) {
			mu.Lock()
			leaks++
			mu.Unlock()
		}
	})
	cl := c.client(100)
	if _, err := cl.Invoke(app.EncodePut(secretKey, []byte(secretVal))); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Invoke(app.EncodeGet(secretKey))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, []byte(secretVal)) {
		t.Fatalf("round trip = %q", res)
	}
	mu.Lock()
	defer mu.Unlock()
	if leaks != 0 {
		t.Fatalf("plaintext observed %d times on the wire", leaks)
	}
}

func TestSplitMultipleClients(t *testing.T) {
	c := newCluster(t, false, func(cfg *Config) {
		cfg.BatchSize = 10
		cfg.BatchTimeout = 5 * time.Millisecond
	})
	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		cl := c.client(uint32(200 + i))
		wg.Add(1)
		go func(cl *client.Client, id int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, err := cl.Invoke(app.EncodePut(fmt.Sprintf("c%d-%d", id, j), []byte("v"))); err != nil {
					errs <- fmt.Errorf("client %d op %d: %w", id, j, err)
					return
				}
			}
		}(cl, i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "all replicas reply to 60 ops", func() bool {
		for _, r := range c.replicas {
			if r.ExecutedOps() < 60 {
				return false
			}
		}
		return true
	})
}

func TestSplitBlockchain(t *testing.T) {
	c := newCluster(t, true, withConfidential)
	cl := c.client(100)
	// 12 transactions → 2 sealed blocks of 5 with 2 pending.
	for i := 0; i < 12; i++ {
		if _, err := cl.Invoke([]byte(fmt.Sprintf("tx-%d", i))); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	waitFor(t, 3*time.Second, "chains converge at height 2", func() bool {
		for _, bc := range c.chains {
			if bc.Height() != 2 {
				return false
			}
		}
		return true
	})
	for i, bc := range c.chains {
		if err := app.VerifyChain(bc.Headers()); err != nil {
			t.Fatalf("replica %d chain: %v", i, err)
		}
	}
	// Blocks are persisted via the sealed-ocall path, and the sealed bytes
	// must not contain transaction plaintext.
	for i, r := range c.replicas {
		if r.PersistedBlocks() != 2 {
			t.Fatalf("replica %d persisted %d blocks, want 2", i, r.PersistedBlocks())
		}
	}
	for _, blk := range c.replicas[0].broker.blocks {
		if bytes.Contains(blk, []byte("tx-")) {
			t.Fatal("persisted block leaks transaction plaintext")
		}
	}
}

func TestSplitSingleThreadMode(t *testing.T) {
	c := newCluster(t, false, withSingleThread)
	cl := c.client(100)
	for i := 0; i < 10; i++ {
		if _, err := cl.Invoke(app.EncodePut(fmt.Sprintf("k%d", i), []byte("v"))); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
}

func TestSplitViewChangeOnPrimaryFailure(t *testing.T) {
	c := newCluster(t, false, func(cfg *Config) {
		cfg.RequestTimeout = 150 * time.Millisecond
	})
	cl := c.client(100)
	if _, err := cl.Invoke(app.EncodePut("a", []byte("1"))); err != nil {
		t.Fatal(err)
	}
	c.net.Isolate(transport.ReplicaEndpoint(0))
	res, err := cl.Invoke(app.EncodePut("b", []byte("2")))
	if err != nil {
		t.Fatalf("request did not survive primary failure: %v", err)
	}
	if !bytes.Equal(res, []byte("OK")) {
		t.Fatalf("result = %q", res)
	}
	// Committed state survives the view change.
	res, err = cl.Invoke(app.EncodeGet("a"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, []byte("1")) {
		t.Fatalf("lost committed write: %q", res)
	}
}

func TestSplitToleratesOneFaultyEnclavePerType(t *testing.T) {
	// The Figure 1 scenario: one enclave of each compartment type fails,
	// each on a different replica — more total faults than f=1 replicas —
	// and the system must stay safe and live.
	c := newCluster(t, false)
	cl := c.client(100)
	if _, err := cl.Invoke(app.EncodePut("before", []byte("x"))); err != nil {
		t.Fatal(err)
	}
	c.replicas[1].CrashEnclave(crypto.RolePreparation)
	c.replicas[2].CrashEnclave(crypto.RoleConfirmation)
	c.replicas[3].CrashEnclave(crypto.RoleExecution)
	for i := 0; i < 5; i++ {
		res, err := cl.Invoke(app.EncodePut(fmt.Sprintf("after%d", i), []byte("y")))
		if err != nil {
			t.Fatalf("op %d with one faulty enclave per type: %v", i, err)
		}
		if !bytes.Equal(res, []byte("OK")) {
			t.Fatalf("op %d result = %q", i, res)
		}
	}
	// The three healthy-execution replicas converge; replica 3's app
	// is frozen at the time its Execution enclave crashed.
	waitFor(t, 3*time.Second, "healthy replicas converge", func() bool {
		d := c.kvs[0].Digest()
		return c.kvs[1].Digest() == d && c.kvs[2].Digest() == d
	})
}

func TestSplitCheckpointingUnderLoad(t *testing.T) {
	c := newCluster(t, false, func(cfg *Config) {
		cfg.CheckpointInterval = 8
		cfg.WatermarkWindow = 16
	})
	cl := c.client(100)
	// More sequence numbers than the window: progress proves checkpoints
	// advance the watermark (otherwise the window would exhaust and stall).
	for i := 0; i < 40; i++ {
		if _, err := cl.Invoke(app.EncodePut(fmt.Sprintf("k%d", i), []byte("v"))); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
}

func TestSplitLaggingReplicaCatchesUp(t *testing.T) {
	c := newCluster(t, false, func(cfg *Config) {
		cfg.CheckpointInterval = 5
		cfg.WatermarkWindow = 10
	})
	cl := c.client(100)
	c.net.Isolate(transport.ReplicaEndpoint(3))
	for i := 0; i < 12; i++ {
		if _, err := cl.Invoke(app.EncodePut(fmt.Sprintf("k%d", i), []byte("v"))); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	for i := 0; i < c.n; i++ {
		c.net.Unblock(transport.ReplicaEndpoint(3), transport.ReplicaEndpoint(uint32(i)))
	}
	c.net.Unblock(transport.ReplicaEndpoint(3), transport.ClientEndpoint(100))
	for i := 12; i < 25; i++ {
		if _, err := cl.Invoke(app.EncodePut(fmt.Sprintf("k%d", i), []byte("v"))); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	waitFor(t, 5*time.Second, "replica 3 converges", func() bool {
		return c.kvs[3].Digest() == c.kvs[0].Digest()
	})
}

func TestSplitUnattestedConfidentialClientGetsNoOp(t *testing.T) {
	// A client that never provisioned a session key sends garbage payload;
	// the Execution compartment must answer with the no-op result rather
	// than fail (§4.1).
	c := newCluster(t, false, withConfidential)
	// Attested client first, to prove the cluster works.
	good := c.client(100)
	if _, err := good.Invoke(app.EncodePut("a", []byte("1"))); err != nil {
		t.Fatal(err)
	}
	// Unattested client with valid MACs but unencrypted payload.
	bad, err := client.New(client.Config{
		ID: 101, N: c.n, F: c.f,
		MACs:          crypto.NewMACStore(c.secret, crypto.Identity{ReplicaID: 101, Role: crypto.RoleClient}),
		AuthReceivers: RequestAuthReceivers(c.n),
		ReplyRole:     crypto.RoleExecution,
		Timeout:       5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := c.net.Join(transport.ClientEndpoint(101), bad.Handler())
	if err != nil {
		t.Fatal(err)
	}
	bad.Start(conn)
	defer bad.Close()
	res, err := bad.Invoke(app.EncodePut("b", []byte("2")))
	if err != nil {
		t.Fatalf("no-op reply did not arrive: %v", err)
	}
	if !bytes.Equal(res, app.NoOpResult) {
		t.Fatalf("unattested client got %q, want no-op", res)
	}
	// State must be unaffected.
	got, err := good.Invoke(app.EncodeGet("b"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("NOTFOUND")) {
		t.Fatalf("unattested write took effect: %q", got)
	}
}
