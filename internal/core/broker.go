package core

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/tee"
	"github.com/splitbft/splitbft/internal/transport"
)

// ecall is one queued invocation of a local enclave.
type ecall struct {
	role    crypto.Role
	payload []byte
}

// queue is an unbounded FIFO of ecalls. Unboundedness removes any
// possibility of routing deadlock between enclave dispatchers (local
// outputs always enqueue without blocking); memory stays bounded by the
// protocol's watermark window in practice.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []ecall
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(e ecall) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, e)
	q.cond.Signal()
}

// pop blocks until an item is available or the queue closes.
func (q *queue) pop() (ecall, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return ecall{}, false
	}
	e := q.items[0]
	q.items = q.items[1:]
	return e, true
}

func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// reqKey identifies a pending client request for failure detection.
type reqKey struct {
	client uint32
	ts     uint64
}

// broker is the untrusted environment of a SplitBFT replica (§5): a shim
// layer where enclaves register. It handles all I/O for the enclaves —
// network sends, the ecall queues, request batching, and timers. It is
// untrusted: a compromised broker can drop, delay or misroute, costing
// liveness or availability, but never integrity or confidentiality.
type broker struct {
	cfg  Config
	conn transport.Conn

	enclaves map[crypto.Role]*tee.Enclave
	queues   []*queue // one per enclave, or a single shared queue

	mu           sync.Mutex
	pendingReqs  []messages.Request
	pendingKeys  map[reqKey]bool
	batchSince   time.Time
	viewEstimate uint64
	reqTimers    map[reqKey]time.Time
	lastSuspect  time.Time

	blocksMu sync.Mutex
	blocks   [][]byte // sealed blockchain blocks persisted via ocall

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup

	mReplies  atomic.Uint64
	mBatches  atomic.Uint64
	mSuspects atomic.Uint64
}

func newBroker(cfg Config, prep, conf, exec *tee.Enclave) *broker {
	b := &broker{
		cfg: cfg,
		enclaves: map[crypto.Role]*tee.Enclave{
			crypto.RolePreparation:  prep,
			crypto.RoleConfirmation: conf,
			crypto.RoleExecution:    exec,
		},
		pendingKeys: make(map[reqKey]bool),
		reqTimers:   make(map[reqKey]time.Time),
		stop:        make(chan struct{}),
	}
	if cfg.SingleThread {
		b.queues = []*queue{newQueue()}
	} else {
		b.queues = []*queue{newQueue(), newQueue(), newQueue()}
	}
	return b
}

// queueFor returns the queue serving a compartment.
func (b *broker) queueFor(role crypto.Role) *queue {
	if b.cfg.SingleThread {
		return b.queues[0]
	}
	switch role {
	case crypto.RolePreparation:
		return b.queues[0]
	case crypto.RoleConfirmation:
		return b.queues[1]
	default:
		return b.queues[2]
	}
}

// submit enqueues an ecall for a compartment.
func (b *broker) submit(role crypto.Role, payload []byte) {
	b.queueFor(role).push(ecall{role: role, payload: payload})
}

// start launches the dispatcher threads (one per enclave, matching the
// paper's "each enclave is associated with a thread that triggers ecalls";
// or a single thread in SingleThread mode) plus the event loop.
func (b *broker) start(conn transport.Conn) {
	b.conn = conn
	for _, q := range b.queues {
		b.wg.Add(1)
		go b.dispatch(q)
	}
	b.wg.Add(1)
	go b.eventLoop()
}

func (b *broker) stopAll() {
	b.once.Do(func() {
		close(b.stop)
		for _, q := range b.queues {
			q.close()
		}
	})
	b.wg.Wait()
}

// dispatch pops ecalls and drives the enclave, routing its outputs.
func (b *broker) dispatch(q *queue) {
	defer b.wg.Done()
	for {
		e, ok := q.pop()
		if !ok {
			return
		}
		enc := b.enclaves[e.role]
		out, err := enc.Invoke(e.payload)
		if err != nil {
			continue // crashed enclave: drop (availability loss only)
		}
		b.route(out)
	}
}

// route delivers enclave output messages.
func (b *broker) route(out []tee.OutMsg) {
	for i := range out {
		m := &out[i]
		switch m.Kind {
		case tee.DestBroadcast:
			if b.conn != nil {
				_ = b.conn.BroadcastReplicas(m.Payload)
			}
		case tee.DestReplica:
			if b.conn != nil {
				_ = b.conn.Send(transport.ReplicaEndpoint(m.ID), m.Payload)
			}
		case tee.DestClient:
			b.noteClientBound(m.Payload)
			if b.conn != nil {
				_ = b.conn.Send(transport.ClientEndpoint(m.ID), m.Payload)
			}
		case tee.DestLocal:
			b.submit(m.Local, wrapMessage(m.Payload))
		}
	}
}

// noteClientBound inspects outbound client traffic to clear request timers
// and count executed operations. The broker may read these envelopes — the
// confidential payload inside is ciphertext.
func (b *broker) noteClientBound(data []byte) {
	if len(data) == 0 || messages.Type(data[0]) != messages.TReply {
		return
	}
	m, err := messages.Unmarshal(data)
	if err != nil {
		return
	}
	rep := m.(*messages.Reply)
	b.mReplies.Add(1)
	b.mu.Lock()
	delete(b.reqTimers, reqKey{client: rep.ClientID, ts: rep.Timestamp})
	b.mu.Unlock()
}

// handler is the transport inbound path: route by envelope type to the
// compartments' input logs, duplicating messages exactly as §3.2
// prescribes.
func (b *broker) handler(from transport.Endpoint, data []byte) {
	if len(data) == 0 {
		return
	}
	switch messages.Type(data[0]) {
	case messages.TRequest:
		b.onClientRequest(data)
	case messages.TPrePrepare:
		// Duplicated into all three input logs (Preparation prepares it,
		// Confirmation matches it against Prepares, Execution needs the
		// request bodies).
		w := wrapMessage(data)
		b.submit(crypto.RolePreparation, w)
		b.submit(crypto.RoleConfirmation, w)
		b.submit(crypto.RoleExecution, w)
	case messages.TPrepare:
		b.submit(crypto.RoleConfirmation, wrapMessage(data))
	case messages.TCommit:
		b.submit(crypto.RoleExecution, wrapMessage(data))
	case messages.TCheckpoint:
		w := wrapMessage(data)
		b.submit(crypto.RolePreparation, w)
		b.submit(crypto.RoleConfirmation, w)
		b.submit(crypto.RoleExecution, w)
	case messages.TViewChange:
		w := wrapMessage(data)
		b.submit(crypto.RolePreparation, w)
		b.submit(crypto.RoleConfirmation, w)
	case messages.TNewView:
		b.observeNewView(data)
		w := wrapMessage(data)
		b.submit(crypto.RolePreparation, w)
		b.submit(crypto.RoleConfirmation, w)
		b.submit(crypto.RoleExecution, w)
	case messages.TAttestRequest, messages.TProvisionKey,
		messages.TStateRequest, messages.TStateReply:
		b.submit(crypto.RoleExecution, wrapMessage(data))
	}
	_ = from
}

// observeNewView updates the broker's view estimate so batching
// responsibility follows the primary. The estimate is untrusted and only
// affects liveness.
func (b *broker) observeNewView(data []byte) {
	m, err := messages.Unmarshal(data)
	if err != nil {
		return
	}
	nv := m.(*messages.NewView)
	b.mu.Lock()
	if nv.View > b.viewEstimate {
		b.viewEstimate = nv.View
	}
	b.mu.Unlock()
}

// believesPrimary reports whether this replica's Preparation compartment is
// the primary under the broker's view estimate.
func (b *broker) believesPrimaryLocked() bool {
	return uint32(b.viewEstimate%uint64(b.cfg.N)) == b.cfg.ID
}

// onClientRequest performs untrusted batching (§3.2: "we also place the
// batching of requests into the untrusted environment") and failure
// detection bookkeeping.
func (b *broker) onClientRequest(data []byte) {
	m, err := messages.Unmarshal(data)
	if err != nil {
		return
	}
	req := m.(*messages.Request)
	key := reqKey{client: req.ClientID, ts: req.Timestamp}
	var submitNow *messages.Batch
	b.mu.Lock()
	if _, ok := b.reqTimers[key]; !ok {
		b.reqTimers[key] = time.Now()
	}
	if b.believesPrimaryLocked() && !b.pendingKeys[key] {
		if len(b.pendingReqs) == 0 {
			b.batchSince = time.Now()
		}
		b.pendingKeys[key] = true
		b.pendingReqs = append(b.pendingReqs, *req)
		if len(b.pendingReqs) >= b.cfg.BatchSize {
			submitNow = b.takeBatchLocked()
		}
	}
	b.mu.Unlock()
	if submitNow != nil {
		b.submitBatch(submitNow)
	}
}

// takeBatchLocked removes up to BatchSize requests from the buffer.
func (b *broker) takeBatchLocked() *messages.Batch {
	if len(b.pendingReqs) == 0 {
		return nil
	}
	take := len(b.pendingReqs)
	if take > b.cfg.BatchSize {
		take = b.cfg.BatchSize
	}
	batch := &messages.Batch{Requests: b.pendingReqs[:take:take]}
	b.pendingReqs = append([]messages.Request(nil), b.pendingReqs[take:]...)
	for i := range batch.Requests {
		delete(b.pendingKeys, reqKey{
			client: batch.Requests[i].ClientID,
			ts:     batch.Requests[i].Timestamp,
		})
	}
	b.batchSince = time.Now()
	return batch
}

func (b *broker) submitBatch(batch *messages.Batch) {
	b.mBatches.Add(1)
	b.submit(crypto.RolePreparation, wrapBatch(batch))
}

// eventLoop drives batch timeouts and the request-timer failure detector.
func (b *broker) eventLoop() {
	defer b.wg.Done()
	tick := b.cfg.BatchTimeout / 2
	if tick <= 0 || tick > 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-ticker.C:
			b.onTick(time.Now())
		}
	}
}

func (b *broker) onTick(now time.Time) {
	var batch *messages.Batch
	suspect := false
	var suspectView uint64
	b.mu.Lock()
	if len(b.pendingReqs) > 0 && now.Sub(b.batchSince) >= b.cfg.BatchTimeout {
		batch = b.takeBatchLocked()
	}
	// Failure detection: any request pending longer than the timeout.
	if now.Sub(b.lastSuspect) > b.cfg.RequestTimeout {
		for key, since := range b.reqTimers {
			if now.Sub(since) > 10*b.cfg.RequestTimeout {
				delete(b.reqTimers, key) // stale entry (e.g. pre-dedup retransmit)
				continue
			}
			if now.Sub(since) > b.cfg.RequestTimeout {
				suspect = true
				suspectView = b.viewEstimate
				break
			}
		}
		if suspect {
			b.lastSuspect = now
			b.viewEstimate++ // batching duty may now be ours in v+1
		}
	}
	b.mu.Unlock()
	if batch != nil {
		b.submitBatch(batch)
	}
	if suspect {
		b.mSuspects.Add(1)
		s := &messages.Suspect{Replica: b.cfg.ID, View: suspectView}
		b.submit(crypto.RoleConfirmation, wrapMessage(messages.Marshal(s)))
	}
}

// persistBlock is the "fs.write" ocall target: it stores a sealed
// blockchain block in untrusted memory (standing in for protected-file I/O).
func (b *broker) persistBlock(data []byte) ([]byte, error) {
	b.blocksMu.Lock()
	defer b.blocksMu.Unlock()
	b.blocks = append(b.blocks, data)
	return nil, nil
}

// persistedBlocks returns how many sealed blocks were written.
func (b *broker) persistedBlocks() int {
	b.blocksMu.Lock()
	defer b.blocksMu.Unlock()
	return len(b.blocks)
}
