package core

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/genset"
	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/obs"
	"github.com/splitbft/splitbft/internal/ring"
	"github.com/splitbft/splitbft/internal/store"
	"github.com/splitbft/splitbft/internal/tee"
	"github.com/splitbft/splitbft/internal/transport"
)

// comStore pairs a compartment's durable store with its enclave and the
// snapshot-generation bookkeeping. lastEpoch is touched only by the
// dispatcher thread serving the compartment (or the single dispatcher in
// SingleThread mode), so it needs no lock; snapBusy is shared with the
// background snapshot writer.
type comStore struct {
	st  *store.Store
	enc *tee.Enclave
	// lastEpoch is the newest epoch whose snapshot durably landed; it is
	// atomic because the background writer advances it on success while
	// the dispatcher reads it.
	lastEpoch atomic.Uint64
	snapBusy  atomic.Bool
	// wg joins the in-flight background snapshot write: a store handoff
	// (Replica.Stop/Crash followed by a restart) must not leave the old
	// writer racing the new store for the directory.
	wg sync.WaitGroup
}

// drain waits for an in-flight background snapshot write to finish.
func (cs *comStore) drain() { cs.wg.Wait() }

// persistRun appends a run of same-compartment ecall payloads to the WAL
// before they are delivered. Append errors need no handling here: the
// store's failure is sticky, so the pre-route Sync in dispatch sees it
// and suppresses the outputs — a record lost with no output escaping is
// indistinguishable from a crash just before it, and the recovery path
// closes any such gap through peer state transfer. Environment timer
// ticks are skipped: they mutate no replayable state, and persisting one
// per detection period would grow an idle cluster's WAL forever.
func (cs *comStore) persistRun(run []ecall) {
	for k := range run {
		if len(run[k].payload) == 1 && run[k].payload[0] == ecallTick {
			continue
		}
		// Read-lease traffic is also skipped: leases, acks, and
		// read-index exchanges are deliberately ephemeral (a restarted
		// replica must come back leaseless and fail closed, and a replayed
		// frontier would be stale anyway) and local reads mutate no
		// replicated state, so replaying any of it would be wrong or
		// wasted.
		if len(run[k].payload) > 1 && run[k].payload[0] == ecallMessage {
			switch messages.Type(run[k].payload[1]) {
			case messages.TLeaseGrant, messages.TReadRequest,
				messages.TLeaseAck, messages.TReadIndex, messages.TReadIndexReply:
				continue
			}
		}
		_, _ = cs.st.Append(run[k].payload)
	}
}

// maybeSnapshot seals a state snapshot when the compartment's stable
// checkpoint advanced since the last one — tying snapshot cadence (and
// therefore WAL garbage collection) to the protocol's checkpoints. Only
// the state export runs on the dispatcher; the file write and its fsyncs
// happen on a background goroutine with the coverage index captured now,
// so checkpoint-sized I/O never stalls agreement traffic. One write is in
// flight at a time; a skipped epoch retries at the next advance.
func (cs *comStore) maybeSnapshot() {
	ep := cs.enc.StateEpoch()
	if ep <= cs.lastEpoch.Load() || cs.snapBusy.Load() {
		return
	}
	sealed, err := cs.enc.SealState()
	if err != nil {
		return // e.g. crashed enclave: no snapshot, WAL keeps growing
	}
	index := cs.st.Stats().NextIndex - 1
	cs.snapBusy.Store(true)
	cs.wg.Add(1)
	go func() {
		defer cs.wg.Done()
		// The epoch advances only when the snapshot durably landed, so a
		// failed write is retried at the next checkpoint advance rather
		// than silently skipped (which would leave the WAL growing
		// without GC until the crash after next).
		if cs.st.WriteSnapshotAt(sealed, index) == nil {
			cs.lastEpoch.Store(ep)
		}
		cs.snapBusy.Store(false)
	}()
}

// pooledBuf is a reference-counted ecall payload buffer recycled through a
// sync.Pool. Messages duplicated into several compartments' input logs
// (§3.2) share one buffer with one reference per queue; the enclave
// runtime copies payloads across the trusted boundary (and charges for
// it), so the untrusted-side buffer is dead as soon as its last ecall has
// been invoked and can be reused without another allocation — the pooled
// zero-copy path of the staged pipeline.
type pooledBuf struct {
	buf  []byte
	refs atomic.Int32
}

var bufPool = sync.Pool{New: func() any { return new(pooledBuf) }}

// newPooledBuf takes a buffer from the pool with refs references and at
// least sizeHint capacity, length zero.
func newPooledBuf(refs int32, sizeHint int) *pooledBuf {
	pb := bufPool.Get().(*pooledBuf)
	pb.refs.Store(refs)
	if cap(pb.buf) < sizeHint {
		pb.buf = make([]byte, 0, sizeHint)
	} else {
		pb.buf = pb.buf[:0]
	}
	return pb
}

// release drops one reference, returning the buffer to the pool when the
// last holder is done. Oversized one-off buffers (state snapshots) are let
// go to the GC instead so the pool's steady-state footprint stays small.
func (pb *pooledBuf) release() {
	if pb.refs.Add(-1) == 0 {
		if cap(pb.buf) <= 1<<16 {
			bufPool.Put(pb)
		}
	}
}

// frameMessage frames encoded wire-message bytes as an ecallMessage
// payload in a pooled buffer carrying refs references (one per
// destination queue). wrapMessage in config.go is the unpooled sibling
// with the same byte layout, kept for compartment-level tests.
func frameMessage(data []byte, refs int32) *pooledBuf {
	pb := newPooledBuf(refs, len(data)+1)
	pb.buf = append(pb.buf, ecallMessage)
	pb.buf = append(pb.buf, data...)
	return pb
}

// frameMsg is frameMessage for a not-yet-encoded message: it marshals
// straight into the pooled buffer.
func frameMsg(m messages.Message, refs int32) *pooledBuf {
	pb := newPooledBuf(refs, 64)
	pb.buf = append(pb.buf, ecallMessage)
	pb.buf = messages.AppendMessage(pb.buf, m)
	return pb
}

// frameBatch frames a request batch as an ecallBatch payload (single
// destination: the Preparation compartment).
func frameBatch(b *messages.Batch) *pooledBuf {
	pb := newPooledBuf(1, 64)
	pb.buf = append(pb.buf, ecallBatch)
	pb.buf = messages.AppendBatch(pb.buf, b)
	return pb
}

// ecall is one queued invocation of a local enclave.
type ecall struct {
	role    crypto.Role
	payload []byte
	pb      *pooledBuf // non-nil when payload is pooled; released post-ecall
}

// release returns a pooled payload to its pool once all sharers are done.
func (e *ecall) release() {
	if e.pb != nil {
		e.pb.release()
	}
}

// queue is an unbounded FIFO of ecalls over a ring buffer (O(1) push and
// pop, backing array reused at the high-water depth). Unboundedness
// removes any possibility of routing deadlock between enclave dispatchers
// (local outputs always enqueue without blocking); memory stays bounded by
// the protocol's watermark window in practice.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  ring.Buffer[ecall]
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(e ecall) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		e.release()
		return
	}
	q.items.Push(e)
	q.cond.Signal()
}

// pop blocks until an item is available or the queue closes (a closed
// queue still drains its backlog).
func (q *queue) pop() (ecall, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.items.Len() == 0 && !q.closed {
		q.cond.Wait()
	}
	return q.items.Pop()
}

// drain blocks like pop, then removes up to max items, appending them to
// dst so the dispatcher reuses one scratch slice across rounds.
func (q *queue) drain(dst []ecall, max int) ([]ecall, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.items.Len() == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.items.Len() == 0 {
		return dst, false
	}
	return q.items.PopN(dst, max), true
}

func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.items.Len()
}

func (q *queue) reset() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items.Reset()
}

func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// dedup is a bounded generational filter over raw inbound message bytes:
// byte-identical retransmits of agreement messages are dropped in the
// untrusted environment before they pay for an enclave crossing. It is
// untrusted-side, so a wrong drop is indistinguishable from a network drop
// (liveness only, never safety); rotation — on fill or on the failure
// detector's clock — guarantees a deliberate retransmission (e.g. a stuck
// replica re-sending its ViewChange) passes through again after at most
// two detection periods (an untouched entry survives one rotation in the
// older generation).
type dedup struct {
	mu  sync.Mutex
	set *genset.Set[crypto.Digest]
}

func newDedup(entries int) *dedup {
	return &dedup{set: genset.New[crypto.Digest](entries)}
}

// seen reports whether sum was recently submitted, recording it if not.
// Found entries are deliberately not re-armed: a suppressed resend must
// not extend its own suppression window.
func (d *dedup) seen(sum crypto.Digest) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.set.Contains(sum) {
		return true
	}
	d.set.Add(sum)
	return false
}

// rotate ages the filter (called from the broker's tick).
func (d *dedup) rotate() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.set.Rotate()
}

// reqKey identifies a pending client request for failure detection.
type reqKey struct {
	client uint32
	ts     uint64
}

// broker is the untrusted environment of a SplitBFT replica (§5): a shim
// layer where enclaves register. It handles all I/O for the enclaves —
// network sends, the ecall queues, request batching, and timers. It is
// untrusted: a compromised broker can drop, delay or misroute, costing
// liveness or availability, but never integrity or confidentiality.
//
// The inbound hot path is a staged pipeline: classify (decode + dedup on
// the transport threads, so garbage and retransmits never pay for an
// enclave crossing) → batch ecall (dispatchers drain their queues and
// deliver up to EcallBatch messages per trusted-boundary crossing) →
// parallel verify (the enclave fans signature checks out to its worker
// pool) → serial apply (handlers run one at a time in submission order).
type broker struct {
	cfg  Config
	conn transport.Conn

	enclaves map[crypto.Role]*tee.Enclave
	queues   []*queue // one per enclave, or a single shared queue
	dedup    *dedup
	// stores holds the per-compartment durability stores (nil map when
	// persistence is off). The map itself is read-only after construction.
	stores map[crypto.Role]*comStore

	mu           sync.Mutex
	pendingReqs  ring.Buffer[messages.Request]
	pendingKeys  map[reqKey]bool
	batchSince   time.Time
	viewEstimate uint64
	reqTimers    map[reqKey]time.Time
	// parked holds the body of every client request this replica has seen
	// but not yet observed a reply for, whether or not it is the primary.
	// Clients broadcast to all replicas, so a replica that becomes primary
	// mid-request can propose from here immediately instead of waiting for
	// the client's next (backed-off) retransmit. Pruned with reqTimers.
	parked      map[reqKey]*messages.Request
	lastSuspect time.Time
	lastRotate  time.Time
	lastLease   time.Time // last lease-clock tick into Preparation
	fetchBudget int       // remaining BatchFetch forwards this period

	blocksMu sync.Mutex
	blocks   [][]byte // sealed blockchain blocks persisted via ocall

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup

	mReplies atomic.Uint64
	mBatches atomic.Uint64

	mSuspects    atomic.Uint64
	mGarbage     atomic.Uint64 // malformed inbound messages dropped pre-ecall
	mDeduped     atomic.Uint64 // retransmits dropped pre-ecall
	mViewChanges atomic.Uint64 // view-estimate advances (observed NewView or own suspicion)

	// tr is the request-lifecycle tracer (nil when observability is off).
	// Every stamp below sits behind a nil check; the broker stamps spans at
	// exactly the points where requests cross a compartment boundary it can
	// see — it never looks inside enclaves, only at the traffic between
	// them.
	tr *obs.Tracer
}

// dedupEntries bounds each generation of the broker's retransmit filter.
const dedupEntries = 1 << 13

// fetchBudgetPerPeriod caps how many BatchFetch messages this replica
// serves per failure-detector period. BatchFetch is unauthenticated and
// its reply carries full request bodies addressed to the *claimed*
// requester, so without a bound, forged fetches would make every honest
// replica reflect amplified traffic at a victim. Genuine recovery needs a
// handful per period; the cap is untrusted-side, so over-dropping costs
// liveness only (the checkpoint state-transfer path remains).
const fetchBudgetPerPeriod = 128

func newBroker(cfg Config, prep, conf, exec *tee.Enclave, stores map[crypto.Role]*comStore) *broker {
	b := &broker{
		cfg: cfg,
		enclaves: map[crypto.Role]*tee.Enclave{
			crypto.RolePreparation:  prep,
			crypto.RoleConfirmation: conf,
			crypto.RoleExecution:    exec,
		},
		stores:      stores,
		dedup:       newDedup(dedupEntries),
		pendingKeys: make(map[reqKey]bool),
		reqTimers:   make(map[reqKey]time.Time),
		parked:      make(map[reqKey]*messages.Request),
		fetchBudget: fetchBudgetPerPeriod,
		stop:        make(chan struct{}),
		tr:          cfg.Obs.Trace(),
	}
	if cfg.SingleThread {
		b.queues = []*queue{newQueue()}
	} else {
		b.queues = []*queue{newQueue(), newQueue(), newQueue()}
	}
	return b
}

// queueFor returns the queue serving a compartment.
func (b *broker) queueFor(role crypto.Role) *queue {
	if b.cfg.SingleThread {
		return b.queues[0]
	}
	switch role {
	case crypto.RolePreparation:
		return b.queues[0]
	case crypto.RoleConfirmation:
		return b.queues[1]
	default:
		return b.queues[2]
	}
}

// submit enqueues an ecall for a compartment. pb may be nil for
// caller-owned payloads.
func (b *broker) submit(role crypto.Role, payload []byte, pb *pooledBuf) {
	b.queueFor(role).push(ecall{role: role, payload: payload, pb: pb})
}

// submitShared frames data once and enqueues it for several compartments,
// sharing the pooled buffer across their input logs.
func (b *broker) submitShared(data []byte, roles ...crypto.Role) {
	pb := frameMessage(data, int32(len(roles)))
	for _, role := range roles {
		b.submit(role, pb.buf, pb)
	}
}

// start launches the dispatcher threads (one per enclave, matching the
// paper's "each enclave is associated with a thread that triggers ecalls";
// or a single thread in SingleThread mode) plus the event loop.
func (b *broker) start(conn transport.Conn) {
	b.conn = conn
	for _, q := range b.queues {
		b.wg.Add(1)
		go b.dispatch(q)
	}
	b.wg.Add(1)
	go b.eventLoop()
}

func (b *broker) stopAll() {
	b.once.Do(func() {
		close(b.stop)
		for _, q := range b.queues {
			q.close()
		}
	})
	b.wg.Wait()
}

// dispatch drains ecalls in batches and drives the enclave, routing its
// outputs. Consecutive same-role runs within a drained batch are delivered
// through one InvokeBatch, amortizing the trusted-boundary transition.
func (b *broker) dispatch(q *queue) {
	defer b.wg.Done()
	maxBatch := b.cfg.EcallBatch
	if maxBatch < 1 {
		maxBatch = 1
	}
	var drained []ecall
	var payloads [][]byte
	for {
		var ok bool
		drained, ok = q.drain(drained[:0], maxBatch)
		if !ok {
			return
		}
		for i := 0; i < len(drained); {
			role := drained[i].role
			j := i + 1
			for j < len(drained) && drained[j].role == role {
				j++
			}
			run := drained[i:j]
			enc := b.enclaves[role]
			cs := b.stores[role]
			if cs != nil {
				// Write-ahead: the input log hits the WAL before the
				// enclave sees it, so replay covers everything delivered.
				cs.persistRun(run)
			}
			var out []tee.OutMsg
			var err error
			if len(run) == 1 {
				out, err = enc.Invoke(run[0].payload)
			} else {
				payloads = payloads[:0]
				for k := range run {
					payloads = append(payloads, run[k].payload)
				}
				out, err = enc.InvokeBatch(payloads)
			}
			for k := range run {
				run[k].release() // payloads were copied into the enclave
			}
			if err == nil {
				// Outputs must not escape before the inputs that caused
				// them are durable: a signed PrePrepare surviving a crash
				// that its WAL record did not would let the restarted
				// (amnesiac) enclave sign a conflicting proposal for the
				// same slot — the equivocation the proposal record exists
				// to prevent. So when the log cannot confirm durability
				// (its failure is sticky — a dead disk stays dead), the
				// outputs are dropped: the compartment goes mute, an
				// availability loss, never a safety one. Quiet
				// invocations stay on the amortized group-commit path.
				if cs != nil && len(out) > 0 {
					if cs.st.Sync() != nil {
						out = nil
					}
				}
				b.route(out)
				if cs != nil {
					cs.maybeSnapshot()
				}
			} // else crashed enclave: drop (availability loss only)
			i = j
		}
	}
}

// route delivers enclave output messages.
func (b *broker) route(out []tee.OutMsg) {
	for i := range out {
		m := &out[i]
		switch m.Kind {
		case tee.DestBroadcast:
			b.observeOutbound(m.Payload)
			if b.conn != nil {
				_ = b.conn.BroadcastReplicas(m.Payload)
			}
		case tee.DestReplica:
			b.observeOutbound(m.Payload)
			if b.conn != nil {
				_ = b.conn.Send(transport.ReplicaEndpoint(m.ID), m.Payload)
			}
		case tee.DestClient:
			client, ts, kind := b.noteClientBound(m.Payload)
			if b.conn != nil {
				_ = b.conn.Send(transport.ClientEndpoint(m.ID), m.Payload)
			}
			// The span closes after the transport hand-off, so the final
			// segment (execute → reply) covers the send itself.
			switch kind {
			case clientBoundReply:
				b.tr.Finish(client, ts, obs.StageReply)
			case clientBoundReadReply:
				b.tr.Finish(client, ts, obs.StageReadServe)
			}
		case tee.DestLocal:
			pb := frameMessage(m.Payload, 1)
			b.submit(m.Local, pb.buf, pb)
		}
	}
}

// observeOutbound stamps lifecycle spans from this replica's own outbound
// protocol traffic — the only untrusted-visible evidence of progress
// inside the enclaves. Free when tracing is off; when on it decodes only
// the three message kinds it cares about.
func (b *broker) observeOutbound(data []byte) {
	if b.tr == nil || len(data) == 0 {
		return
	}
	switch messages.Type(data[0]) {
	case messages.TPrePrepare:
		// Own proposal leaving the Preparation compartment: link the batch
		// members to their sequence number (followers link in handler).
		m, err := messages.Unmarshal(data)
		if err != nil {
			return
		}
		pp := m.(*messages.PrePrepare)
		for i := range pp.Batch.Requests {
			r := &pp.Batch.Requests[i]
			b.tr.Link(pp.Seq, r.ClientID, r.Timestamp)
		}
	case messages.TCommit:
		// Own Commit leaving the Confirmation compartment proves it holds a
		// prepare certificate; it also counts toward the commit quorum.
		m, err := messages.Unmarshal(data)
		if err != nil {
			return
		}
		c := m.(*messages.Commit)
		b.tr.StampSeq(c.Seq, obs.StagePrepareCert)
		b.tr.CommitVote(c.Seq, b.cfg.N-b.cfg.F)
	case messages.TReadIndex:
		// A frontier query leaving the Execution compartment confirms every
		// read pending at this moment (queries are batched per epoch).
		b.tr.StampActiveReads(obs.StageReadIndex)
	case messages.TNewView:
		// This replica is the new primary announcing the view change.
		m, err := messages.Unmarshal(data)
		if err != nil {
			return
		}
		b.observeNewView(m.(*messages.NewView))
	}
}

// Outbound client-traffic kinds noted by noteClientBound.
const (
	clientBoundOther = iota
	clientBoundReply
	clientBoundReadReply
)

// noteClientBound inspects outbound client traffic to clear request timers
// and count executed operations. The broker may read these envelopes — the
// confidential payload inside is ciphertext. It returns the request
// identity and kind so route can close the lifecycle span after the send.
func (b *broker) noteClientBound(data []byte) (client uint32, ts uint64, kind int) {
	if len(data) == 0 {
		return 0, 0, clientBoundOther
	}
	switch messages.Type(data[0]) {
	case messages.TReply:
		m, err := messages.Unmarshal(data)
		if err != nil {
			return 0, 0, clientBoundOther
		}
		rep := m.(*messages.Reply)
		b.mReplies.Add(1)
		b.mu.Lock()
		key := reqKey{client: rep.ClientID, ts: rep.Timestamp}
		delete(b.reqTimers, key)
		delete(b.parked, key)
		b.mu.Unlock()
		// The reply emerging from the Execution compartment is the
		// untrusted side's proof the operation was applied.
		b.tr.Stamp(rep.ClientID, rep.Timestamp, obs.StageExecute)
		return rep.ClientID, rep.Timestamp, clientBoundReply
	case messages.TReadReply:
		if b.tr == nil {
			return 0, 0, clientBoundOther
		}
		m, err := messages.Unmarshal(data)
		if err != nil {
			return 0, 0, clientBoundOther
		}
		rep := m.(*messages.ReadReply)
		return rep.ClientID, rep.Timestamp, clientBoundReadReply
	}
	return 0, 0, clientBoundOther
}

// handler is the transport inbound path — the classify stage of the
// pipeline. It fully decodes every message in the untrusted environment
// (on the transport threads, off the dispatcher hot path) so malformed
// input never pays for an enclave crossing, drops byte-identical
// retransmits of agreement messages, then routes by type to the
// compartments' input logs, duplicating messages exactly as §3.2
// prescribes.
func (b *broker) handler(from transport.Endpoint, data []byte) {
	if len(data) == 0 {
		return
	}
	t := messages.Type(data[0])
	if t == messages.TRequest {
		b.onClientRequest(data)
		return
	}
	switch t {
	case messages.TPrePrepare, messages.TPrepare, messages.TCommit,
		messages.TCheckpoint, messages.TViewChange, messages.TNewView,
		messages.TAttestRequest, messages.TProvisionKey,
		messages.TStateRequest, messages.TStateReply,
		messages.TBatchFetch, messages.TBatchReply, messages.TStateProbe,
		messages.TLeaseGrant, messages.TReadRequest,
		messages.TLeaseAck, messages.TReadIndex, messages.TReadIndexReply:
	default:
		return // unknown type
	}
	m, err := messages.Unmarshal(data)
	if err != nil {
		b.mGarbage.Add(1)
		return
	}
	switch t {
	case messages.TPrePrepare, messages.TPrepare, messages.TCommit,
		messages.TCheckpoint, messages.TViewChange, messages.TNewView:
		// Agreement traffic is deduplicated; the attest/state-transfer
		// family below is not — those exchanges rely on identical re-asks
		// getting through, and they are rare enough not to matter.
		if b.dedup.seen(crypto.HashData(data)) {
			b.mDeduped.Add(1)
			return
		}
	}
	switch t {
	case messages.TPrePrepare:
		if b.tr != nil {
			// Link the batch members to their sequence number so later
			// per-seq protocol events (commits) reach their spans.
			pp := m.(*messages.PrePrepare)
			for i := range pp.Batch.Requests {
				r := &pp.Batch.Requests[i]
				b.tr.Link(pp.Seq, r.ClientID, r.Timestamp)
			}
		}
		// Duplicated into all three input logs (Preparation prepares it,
		// Confirmation matches it against Prepares, Execution needs the
		// request bodies).
		b.submitShared(data, crypto.RolePreparation, crypto.RoleConfirmation, crypto.RoleExecution)
	case messages.TPrepare:
		b.submitShared(data, crypto.RoleConfirmation)
	case messages.TCommit:
		if b.tr != nil {
			c := m.(*messages.Commit)
			b.tr.CommitVote(c.Seq, b.cfg.N-b.cfg.F)
		}
		b.submitShared(data, crypto.RoleExecution)
	case messages.TCheckpoint:
		b.submitShared(data, crypto.RolePreparation, crypto.RoleConfirmation, crypto.RoleExecution)
	case messages.TViewChange:
		b.submitShared(data, crypto.RolePreparation, crypto.RoleConfirmation)
	case messages.TNewView:
		b.observeNewView(m.(*messages.NewView))
		b.submitShared(data, crypto.RolePreparation, crypto.RoleConfirmation, crypto.RoleExecution)
	case messages.TBatchFetch, messages.TStateProbe:
		// Unauthenticated ask-for-retransmission family whose answers carry
		// bulk data at the claimed requester: bounded per period — see
		// fetchBudgetPerPeriod.
		b.mu.Lock()
		allowed := b.fetchBudget > 0
		if allowed {
			b.fetchBudget--
		}
		b.mu.Unlock()
		if allowed {
			if t == messages.TStateProbe {
				// Confirmation answers with the sub-checkpoint Commit
				// tail, Execution with a snapshot once a newer checkpoint
				// is stable — together they cover outage gaps of any size.
				b.submitShared(data, crypto.RoleConfirmation, crypto.RoleExecution)
			} else {
				b.submitShared(data, crypto.RoleExecution)
			}
		}
	case messages.TLeaseGrant, messages.TReadRequest, messages.TReadIndexReply:
		if t == messages.TReadRequest && b.tr != nil {
			r := m.(*messages.ReadRequest)
			b.tr.Begin(r.ClientID, r.Timestamp, true)
		}
		// Read-lease fast path: all three terminate in the Execution
		// compartment. Not deduplicated — a retransmitted read must be
		// re-answered... by the enclave's replay guard, which drops it
		// cheaply (the reply could only have been refused or served once);
		// grants are unique per counter value and replies per epoch anyway.
		b.submitShared(data, crypto.RoleExecution)
	case messages.TLeaseAck, messages.TReadIndex:
		// Holder-to-granter legs of the lease fast path: both terminate in
		// the (primary's) Preparation compartment.
		b.submitShared(data, crypto.RolePreparation)
	default: // attest/provision/state-transfer family
		b.submitShared(data, crypto.RoleExecution)
	}
	_ = from
}

// observeNewView updates the broker's view estimate so batching
// responsibility follows the primary. The estimate is untrusted and only
// affects liveness. A NewView that actually advances the estimate counts
// as one observed view change (retransmits don't), and voids the
// tracer's pending commit-vote counts — votes from the deposed view
// cannot certify sequence numbers in the new one.
func (b *broker) observeNewView(nv *messages.NewView) {
	advanced := false
	var promoted *messages.Batch
	b.mu.Lock()
	if nv.View > b.viewEstimate {
		b.viewEstimate = nv.View
		advanced = true
		promoted = b.promoteParkedLocked()
	}
	b.mu.Unlock()
	if advanced {
		b.mViewChanges.Add(1)
		b.tr.OnViewChange()
	}
	if promoted != nil {
		b.submitBatch(promoted)
	}
}

// promoteParkedLocked queues every parked, not-yet-replied request for
// proposal if this replica now believes it holds batching duty. Clients
// broadcast each request to all replicas, but only the then-primary queues
// it on arrival — without promotion a new primary sits on a pending
// request until the client's next retransmit, while the failure detector
// keeps advancing views, so post-view-change liveness would hinge on the
// client's (exponentially backed-off) retransmit cadence. Re-proposing a
// request that already committed in an earlier view is safe: ordering it
// twice is filtered by the Execution compartments' exactly-once caches.
// Returns a full batch to submit (nil if below BatchSize — the batch
// timeout flushes the remainder).
func (b *broker) promoteParkedLocked() *messages.Batch {
	if !b.believesPrimaryLocked() || len(b.parked) == 0 {
		return nil
	}
	for key, req := range b.parked {
		if b.pendingKeys[key] {
			continue
		}
		if b.pendingReqs.Len() == 0 {
			b.batchSince = time.Now()
		}
		b.pendingKeys[key] = true
		b.pendingReqs.Push(*req)
	}
	if b.pendingReqs.Len() >= b.cfg.BatchSize {
		return b.takeBatchLocked()
	}
	return nil
}

// believesPrimary reports whether this replica's Preparation compartment is
// the primary under the broker's view estimate.
func (b *broker) believesPrimaryLocked() bool {
	return uint32(b.viewEstimate%uint64(b.cfg.N)) == b.cfg.ID
}

// onClientRequest performs untrusted batching (§3.2: "we also place the
// batching of requests into the untrusted environment") and failure
// detection bookkeeping.
func (b *broker) onClientRequest(data []byte) {
	m, err := messages.Unmarshal(data)
	if err != nil {
		b.mGarbage.Add(1)
		return
	}
	req := m.(*messages.Request)
	b.tr.Begin(req.ClientID, req.Timestamp, false)
	key := reqKey{client: req.ClientID, ts: req.Timestamp}
	var submitNow *messages.Batch
	b.mu.Lock()
	if _, ok := b.reqTimers[key]; !ok {
		b.reqTimers[key] = time.Now()
	}
	if _, ok := b.parked[key]; !ok {
		b.parked[key] = req
	}
	if b.believesPrimaryLocked() && !b.pendingKeys[key] {
		if b.pendingReqs.Len() == 0 {
			b.batchSince = time.Now()
		}
		b.pendingKeys[key] = true
		b.pendingReqs.Push(*req)
		if b.pendingReqs.Len() >= b.cfg.BatchSize {
			submitNow = b.takeBatchLocked()
		}
	}
	b.mu.Unlock()
	if submitNow != nil {
		b.submitBatch(submitNow)
	}
}

// takeBatchLocked removes up to BatchSize requests from the buffer.
func (b *broker) takeBatchLocked() *messages.Batch {
	if b.pendingReqs.Len() == 0 {
		return nil
	}
	take := b.pendingReqs.Len()
	if take > b.cfg.BatchSize {
		take = b.cfg.BatchSize
	}
	batch := &messages.Batch{
		Requests: b.pendingReqs.PopN(make([]messages.Request, 0, take), take),
	}
	for i := range batch.Requests {
		delete(b.pendingKeys, reqKey{
			client: batch.Requests[i].ClientID,
			ts:     batch.Requests[i].Timestamp,
		})
	}
	b.batchSince = time.Now()
	return batch
}

func (b *broker) submitBatch(batch *messages.Batch) {
	b.mBatches.Add(1)
	if b.tr != nil {
		for i := range batch.Requests {
			r := &batch.Requests[i]
			b.tr.Stamp(r.ClientID, r.Timestamp, obs.StageEnqueue)
		}
	}
	pb := frameBatch(batch)
	b.submit(crypto.RolePreparation, pb.buf, pb)
}

// eventLoop drives batch timeouts and the request-timer failure detector.
func (b *broker) eventLoop() {
	defer b.wg.Done()
	tick := b.cfg.BatchTimeout / 2
	if tick <= 0 || tick > 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-ticker.C:
			b.onTick(time.Now())
		}
	}
}

func (b *broker) onTick(now time.Time) {
	var batch *messages.Batch
	suspect := false
	var suspectView uint64
	b.mu.Lock()
	if b.pendingReqs.Len() > 0 && now.Sub(b.batchSince) >= b.cfg.BatchTimeout {
		batch = b.takeBatchLocked()
	}
	// Age the retransmit filter on the failure detector's clock so
	// deliberate resends (ViewChange rebroadcasts, NewView retransmits to
	// stragglers) are suppressed for at most two detection periods.
	tick := false
	if now.Sub(b.lastRotate) > b.cfg.RequestTimeout {
		b.lastRotate = now
		b.dedup.rotate()
		b.fetchBudget = fetchBudgetPerPeriod
		tick = true
	}
	leaseTick := false
	if b.cfg.ReadLeases && now.Sub(b.lastLease) > b.cfg.LeaseTTL/8 {
		b.lastLease = now
		leaseTick = true
	}
	// Failure detection: any request pending longer than the timeout.
	if now.Sub(b.lastSuspect) > b.cfg.RequestTimeout {
		for key, since := range b.reqTimers {
			if now.Sub(since) > 10*b.cfg.RequestTimeout {
				// Stale entry (e.g. pre-dedup retransmit, or a request
				// executed before a state transfer skipped this replica
				// past the reply). A still-live client retransmits well
				// inside this horizon and re-arms both maps.
				delete(b.reqTimers, key)
				delete(b.parked, key)
				continue
			}
			if now.Sub(since) > b.cfg.RequestTimeout {
				suspect = true
				suspectView = b.viewEstimate
				break
			}
		}
		if suspect {
			b.lastSuspect = now
			b.viewEstimate++ // batching duty may now be ours in v+1
		}
	}
	var promoted *messages.Batch
	if suspect {
		promoted = b.promoteParkedLocked()
	}
	b.mu.Unlock()
	if batch != nil {
		b.submitBatch(batch)
	}
	if promoted != nil {
		b.submitBatch(promoted)
	}
	if tick {
		// Periodic environment nudge into Execution: drives the rejoin
		// probe (and the missing-body stall detector) even when no
		// protocol traffic flows, and ages out parked linearizable reads.
		// Never persisted — see persistRun.
		b.submit(crypto.RoleExecution, []byte{ecallTick}, nil)
	}
	if leaseTick {
		// With read leases on, the Preparation compartment runs on its own
		// faster lease clock (TTL/8, well under the TTL/4 renewal period):
		// the primary renews leases on it even when no proposals flow, so
		// an idle cluster keeps serving local reads. Deliberately NOT the
		// Execution tick above — lease renewal must not drain Execution's
		// rejoin-probe budget or distort its stall detector.
		b.submit(crypto.RolePreparation, []byte{ecallTick}, nil)
	}
	if suspect {
		b.mSuspects.Add(1)
		// The suspect path advanced the view estimate without a NewView
		// (batching duty may already be ours), so it is a view change this
		// replica observed too — and the deposed view's pending commit
		// votes can no more certify the new view here than on the
		// NewView-observing path.
		b.mViewChanges.Add(1)
		b.tr.OnViewChange()
		pb := frameMsg(&messages.Suspect{Replica: b.cfg.ID, View: suspectView}, 1)
		b.submit(crypto.RoleConfirmation, pb.buf, pb)
	}
}

// persistBlock is the "fs.write" ocall target: it stores a sealed
// blockchain block in untrusted memory (standing in for protected-file I/O).
func (b *broker) persistBlock(data []byte) ([]byte, error) {
	b.blocksMu.Lock()
	defer b.blocksMu.Unlock()
	b.blocks = append(b.blocks, data)
	return nil, nil
}

// persistedBlocks returns how many sealed blocks were written.
func (b *broker) persistedBlocks() int {
	b.blocksMu.Lock()
	defer b.blocksMu.Unlock()
	return len(b.blocks)
}
