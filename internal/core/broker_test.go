package core

import (
	"sync"
	"testing"
	"time"

	"github.com/splitbft/splitbft/internal/app"
	"github.com/splitbft/splitbft/internal/crypto"
	"github.com/splitbft/splitbft/internal/messages"
	"github.com/splitbft/splitbft/internal/tee"
	"github.com/splitbft/splitbft/internal/transport"
)

func TestQueueFIFO(t *testing.T) {
	q := newQueue()
	for i := byte(0); i < 10; i++ {
		q.push(ecall{payload: []byte{i}})
	}
	for i := byte(0); i < 10; i++ {
		e, ok := q.pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		if e.payload[0] != i {
			t.Fatalf("out of order: got %d want %d", e.payload[0], i)
		}
	}
}

func TestQueueBlocksUntilPush(t *testing.T) {
	q := newQueue()
	got := make(chan ecall, 1)
	go func() {
		e, ok := q.pop()
		if ok {
			got <- e
		}
	}()
	select {
	case <-got:
		t.Fatal("pop returned from an empty queue")
	case <-time.After(20 * time.Millisecond):
	}
	q.push(ecall{payload: []byte("x")})
	select {
	case e := <-got:
		if string(e.payload) != "x" {
			t.Fatalf("payload = %q", e.payload)
		}
	case <-time.After(time.Second):
		t.Fatal("pop did not wake on push")
	}
}

func TestQueueCloseUnblocksAndRejects(t *testing.T) {
	q := newQueue()
	done := make(chan bool, 1)
	go func() {
		_, ok := q.pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("pop returned an item from a closed empty queue")
		}
	case <-time.After(time.Second):
		t.Fatal("close did not unblock pop")
	}
	q.push(ecall{payload: []byte("late")})
	if _, ok := q.pop(); ok {
		t.Fatal("push after close was accepted")
	}
}

func TestQueueConcurrentProducers(t *testing.T) {
	q := newQueue()
	const producers, per = 8, 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.push(ecall{payload: []byte{1}})
			}
		}()
	}
	wg.Wait()
	count := 0
	for q.len() > 0 {
		if _, ok := q.pop(); !ok {
			break
		}
		count++
	}
	if count != producers*per {
		t.Fatalf("drained %d items, want %d", count, producers*per)
	}
}

// TestQueueSteadyStateNoGrowth is the regression test for the O(n)
// slice-pop and its memory pinning: a queue cycled through 100k items at a
// small steady-state depth must neither slow down quadratically (the test
// would blow its deadline) nor grow its backing ring beyond the high-water
// depth.
func TestQueueSteadyStateNoGrowth(t *testing.T) {
	q := newQueue()
	const total, depth = 100_000, 32
	payload := []byte{ecallMessage}
	for i := 0; i < total; i++ {
		q.push(ecall{payload: payload})
		if i >= depth {
			if _, ok := q.pop(); !ok {
				t.Fatal("queue closed unexpectedly")
			}
		}
	}
	for q.len() > 0 {
		q.pop()
	}
	q.mu.Lock()
	capNow := q.items.Cap()
	q.mu.Unlock()
	if capNow > 4*depth {
		t.Fatalf("ring grew to cap %d at steady-state depth %d", capNow, depth)
	}
}

// TestQueueDrainBatches covers the batch-dispatch path: drain returns up
// to max items in FIFO order and keeps the remainder.
func TestQueueDrainBatches(t *testing.T) {
	q := newQueue()
	for i := byte(0); i < 10; i++ {
		q.push(ecall{payload: []byte{i}})
	}
	got, ok := q.drain(nil, 4)
	if !ok || len(got) != 4 {
		t.Fatalf("drain(4) = %d items, ok=%v", len(got), ok)
	}
	for i := byte(0); i < 4; i++ {
		if got[i].payload[0] != i {
			t.Fatalf("drained out of order: %v", got)
		}
	}
	got, ok = q.drain(got[:0], 100)
	if !ok || len(got) != 6 || got[0].payload[0] != 4 {
		t.Fatalf("second drain = %d items (ok=%v)", len(got), ok)
	}
	// A closed queue still hands out its backlog, then reports closure.
	q.push(ecall{payload: []byte{99}})
	q.close()
	if got, ok = q.drain(nil, 10); !ok || len(got) != 1 {
		t.Fatalf("drain after close = %d items, ok=%v", len(got), ok)
	}
	if _, ok = q.drain(nil, 10); ok {
		t.Fatal("empty closed queue reported items")
	}
}

func BenchmarkBrokerQueue(b *testing.B) {
	q := newQueue()
	payload := []byte{ecallMessage}
	b.Run("PushPop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.push(ecall{payload: payload})
			q.pop()
		}
	})
	b.Run("PushDrain64", func(b *testing.B) {
		var scratch []ecall
		for i := 0; i < b.N; i++ {
			for j := 0; j < 64; j++ {
				q.push(ecall{payload: payload})
			}
			scratch, _ = q.drain(scratch[:0], 64)
		}
		_ = scratch
	})
}

// newTestBroker builds a broker with live enclaves but no network.
func newTestBroker(t *testing.T, singleThread bool) (*broker, Config) {
	t.Helper()
	reg := crypto.NewRegistry()
	cfg := Config{
		N: 4, F: 1, ID: 0,
		Registry:  reg,
		MACSecret: []byte("broker-test"),
		App:       app.NewKVS(),
	}
	cfg.SingleThread = singleThread
	cfg = cfg.withDefaults()
	ver, err := messages.NewVerifier(cfg.N, cfg.F, reg, messages.SplitScheme())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(role crypto.Role, code tee.Code) *tee.Enclave {
		enc, err := tee.NewEnclave(0, role, code, tee.ZeroCostModel())
		if err != nil {
			t.Fatal(err)
		}
		reg.Register(enc.Identity(), enc.PublicKey())
		return enc
	}
	prep := mk(crypto.RolePreparation, newPreparation(cfg, ver, nil))
	conf := mk(crypto.RoleConfirmation, newConfirmation(cfg, ver))
	exec := mk(crypto.RoleExecution, newExecution(cfg, ver))
	return newBroker(cfg, prep, conf, exec, nil), cfg
}

func TestBrokerQueueTopology(t *testing.T) {
	multi, _ := newTestBroker(t, false)
	if len(multi.queues) != 3 {
		t.Fatalf("multithreaded broker has %d queues, want 3", len(multi.queues))
	}
	if multi.queueFor(crypto.RolePreparation) == multi.queueFor(crypto.RoleExecution) {
		t.Fatal("compartments share a queue in multithreaded mode")
	}
	single, _ := newTestBroker(t, true)
	if len(single.queues) != 1 {
		t.Fatalf("single-thread broker has %d queues, want 1", len(single.queues))
	}
	if single.queueFor(crypto.RolePreparation) != single.queueFor(crypto.RoleExecution) {
		t.Fatal("single-thread mode must funnel all ecalls into one queue")
	}
}

func TestBrokerRoutingTable(t *testing.T) {
	b, _ := newTestBroker(t, false)
	// Count what lands in each queue for each inbound message type.
	depth := func(q *queue) int { return q.len() }
	drain := func() {
		for _, q := range b.queues {
			q.reset()
		}
	}
	cases := []struct {
		msg              messages.Message
		prep, conf, exec int
	}{
		{&messages.PrePrepare{}, 1, 1, 1}, // duplicated into all three logs
		{&messages.Prepare{}, 0, 1, 0},
		{&messages.Commit{}, 0, 0, 1},
		{&messages.Checkpoint{}, 1, 1, 1},
		{&messages.ViewChange{}, 1, 1, 0},
		{&messages.NewView{}, 1, 1, 1},
		{&messages.AttestRequest{}, 0, 0, 1},
		{&messages.ProvisionKey{}, 0, 0, 1},
		{&messages.StateRequest{}, 0, 0, 1},
		{&messages.StateReply{}, 0, 0, 1},
	}
	for _, tc := range cases {
		drain()
		b.handler(transportEndpoint(), messages.Marshal(tc.msg))
		got := [3]int{
			depth(b.queueFor(crypto.RolePreparation)),
			depth(b.queueFor(crypto.RoleConfirmation)),
			depth(b.queueFor(crypto.RoleExecution)),
		}
		want := [3]int{tc.prep, tc.conf, tc.exec}
		if got != want {
			t.Errorf("%s routed %v, want %v", tc.msg.MsgType(), got, want)
		}
	}
}

func TestBrokerBatchesOnlyWhenPrimary(t *testing.T) {
	b, cfg := newTestBroker(t, false) // replica 0 is the view-0 primary
	req := testRequest(cfg.MACSecret, cfg.N, 9, 1, []byte("op"))
	b.onClientRequest(messages.Marshal(&req))
	b.mu.Lock()
	pending := b.pendingReqs.Len()
	b.mu.Unlock()
	if pending != 1 {
		t.Fatalf("primary broker buffered %d requests, want 1", pending)
	}
	// Advance the view estimate: replica 0 no longer believes it is the
	// primary, so it only tracks timers.
	b.mu.Lock()
	b.viewEstimate = 1
	b.pendingReqs.Reset()
	b.pendingKeys = map[reqKey]bool{}
	b.mu.Unlock()
	req2 := testRequest(cfg.MACSecret, cfg.N, 9, 2, []byte("op2"))
	b.onClientRequest(messages.Marshal(&req2))
	b.mu.Lock()
	pending = b.pendingReqs.Len()
	timers := len(b.reqTimers)
	b.mu.Unlock()
	if pending != 0 {
		t.Fatal("backup broker buffered a batch")
	}
	if timers == 0 {
		t.Fatal("backup broker must still track request timers")
	}
}

func TestBrokerBatchCutOnSize(t *testing.T) {
	b, cfg := newTestBroker(t, false)
	b.cfg.BatchSize = 3
	for ts := uint64(1); ts <= 3; ts++ {
		req := testRequest(cfg.MACSecret, cfg.N, 9, ts, []byte("op"))
		b.onClientRequest(messages.Marshal(&req))
	}
	// Batch of 3 must have been submitted to the Preparation queue.
	if got := b.mBatches.Load(); got != 1 {
		t.Fatalf("submitted %d batches, want 1", got)
	}
	q := b.queueFor(crypto.RolePreparation)
	e, ok := q.pop()
	if !ok || e.payload[0] != ecallBatch {
		t.Fatal("preparation queue does not hold a batch ecall")
	}
	batch, err := messages.UnmarshalBatch(e.payload[1:])
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Requests) != 3 {
		t.Fatalf("batch has %d requests", len(batch.Requests))
	}
	b.mu.Lock()
	if b.pendingReqs.Len() != 0 || len(b.pendingKeys) != 0 {
		t.Fatal("buffer not drained after the cut")
	}
	b.mu.Unlock()
}

func TestBrokerDuplicateRequestNotDoubleBatched(t *testing.T) {
	b, cfg := newTestBroker(t, false)
	req := testRequest(cfg.MACSecret, cfg.N, 9, 1, []byte("op"))
	raw := messages.Marshal(&req)
	b.onClientRequest(raw)
	b.onClientRequest(raw)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.pendingReqs.Len() != 1 {
		t.Fatalf("duplicate buffered: %d pending", b.pendingReqs.Len())
	}
}

func TestBrokerSuspectAfterTimeout(t *testing.T) {
	b, cfg := newTestBroker(t, false)
	b.cfg.RequestTimeout = 10 * time.Millisecond
	req := testRequest(cfg.MACSecret, cfg.N, 9, 1, []byte("op"))
	b.onClientRequest(messages.Marshal(&req))
	// Before the timeout: no suspect.
	b.onTick(time.Now())
	if b.mSuspects.Load() != 0 {
		t.Fatal("suspected before the timeout")
	}
	// After the timeout: exactly one suspect, then a cooldown.
	b.onTick(time.Now().Add(20 * time.Millisecond))
	if b.mSuspects.Load() != 1 {
		t.Fatalf("suspects = %d, want 1", b.mSuspects.Load())
	}
	q := b.queueFor(crypto.RoleConfirmation)
	e, ok := q.pop()
	if !ok {
		t.Fatal("no suspect ecall queued")
	}
	m, err := messages.Unmarshal(e.payload[1:])
	if err != nil {
		t.Fatal(err)
	}
	if m.MsgType() != messages.TSuspect {
		t.Fatalf("queued %v, want Suspect", m.MsgType())
	}
	// A reply for the pending request clears the timer: no more suspects.
	rep := &messages.Reply{ClientID: 9, Timestamp: 1, Replica: 0}
	b.noteClientBound(messages.Marshal(rep))
	b.onTick(time.Now().Add(100 * time.Millisecond))
	if b.mSuspects.Load() != 1 {
		t.Fatal("suspected after the request was answered")
	}
	if b.mReplies.Load() != 1 {
		t.Fatal("reply not counted")
	}
}

func TestBrokerViewEstimateFollowsNewView(t *testing.T) {
	b, _ := newTestBroker(t, false)
	nv := &messages.NewView{View: 3, Replica: 3}
	b.handler(transportEndpoint(), messages.Marshal(nv))
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.viewEstimate != 3 {
		t.Fatalf("view estimate = %d, want 3", b.viewEstimate)
	}
}

// transportEndpoint returns an arbitrary source endpoint for handler calls.
func transportEndpoint() transport.Endpoint { return transport.ClientEndpoint(99) }
